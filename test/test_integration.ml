(* End-to-end integration tests: the complete RCBR pipeline, from
   synthetic traffic through scheduling, signaling, admission and the
   headline claims of the paper (in miniature). *)

module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Sigma_rho = Rcbr_queue.Sigma_rho
module Fluid = Rcbr_queue.Fluid
module Schedule = Rcbr_core.Schedule
module Optimal = Rcbr_core.Optimal
module Online = Rcbr_core.Online
module Eb = Rcbr_effbw.Effective_bandwidth
module Chernoff = Rcbr_effbw.Chernoff
module Multiscale = Rcbr_markov.Multiscale
module Modulated = Rcbr_markov.Modulated
module Smg = Rcbr_sim.Smg
module Mbac = Rcbr_sim.Mbac
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor
module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path

let trace = Synthetic.star_wars ~frames:8_000 ~seed:100 ()
let buffer = 300_000.
let params = Optimal.default_params ~buffer ~cost_ratio:2e5 trace
let schedule = Optimal.solve params trace

(* 1. RCBR needs a tiny buffer where static CBR at near-mean rate needs
   an enormous one (the paper's introduction headline). *)
let test_small_buffer_vs_static () =
  let mean = Trace.mean_rate trace in
  (* Static service at 5% above the mean: how much buffer? *)
  let static_buffer =
    Sigma_rho.min_buffer ~trace ~rate:(1.05 *. mean) ~target_loss:1e-6 ()
  in
  Alcotest.(check bool) "static service needs orders of magnitude more" true
    (static_buffer > 20. *. buffer);
  (* RCBR with a 300 kb buffer loses nothing and reserves ~ the mean. *)
  let r = Schedule.simulate_buffer schedule ~trace ~capacity:buffer in
  Alcotest.(check bool) "RCBR loses nothing" true (Float.equal r.Fluid.bits_lost 0.);
  Alcotest.(check bool) "RCBR reserves near the mean" true
    (Schedule.mean_rate schedule < 1.15 *. mean)

(* 2. The offline optimum dominates the online heuristic on the
   efficiency/renegotiation-interval tradeoff (Fig. 2's gap). *)
let test_offline_beats_online () =
  let online = Online.run Online.default_params trace in
  let eff_opt = Schedule.bandwidth_efficiency schedule ~trace in
  let eff_online =
    Schedule.bandwidth_efficiency online.Online.schedule ~trace
  in
  let interval_opt = Schedule.mean_renegotiation_interval schedule in
  let interval_online =
    Schedule.mean_renegotiation_interval online.Online.schedule
  in
  (* The optimum renegotiates less often AND serves less bandwidth. *)
  Alcotest.(check bool) "longer intervals" true (interval_opt > interval_online);
  Alcotest.(check bool) "comparable or better efficiency" true
    (eff_opt >= eff_online -. 0.02)

(* 3. Analysis versus simulation: formula (9) predicts the simulated
   equivalent bandwidth of the multiscale model. *)
let test_formula9_predicts_simulation () =
  let ms = Multiscale.fig4_example () in
  let b = 30. and target = 1e-3 in
  let predicted = Eb.multiscale_equivalent_bandwidth ms ~buffer:b ~target_loss:target in
  (* Simulate the flattened chain through a buffer at that rate: the
     loss must be at or below target (the estimate is asymptotically
     tight but conservative for finite runs). *)
  let flat = Multiscale.flatten ms in
  let rng = Rcbr_util.Rng.create 5 in
  let data = Modulated.simulate flat rng ~steps:400_000 () in
  let t = Trace.create ~fps:1. data in
  let r = Fluid.run_constant ~capacity:b ~rate:predicted t in
  Alcotest.(check bool) "loss below target at predicted rate" true
    (Fluid.loss_fraction r <= target);
  (* And the prediction is not trivially the peak: well below it. *)
  Alcotest.(check bool) "nontrivial prediction" true
    (predicted < 0.95 *. Multiscale.peak_rate ms)

(* 4. Chernoff admission limit agrees with simulated failure rates. *)
let test_chernoff_consistent_with_simulation () =
  let marg = Schedule.marginal schedule in
  let capacity = 20. *. Trace.mean_rate trace in
  let n_max = Chernoff.max_calls marg ~capacity ~target:1e-3 in
  Alcotest.(check bool) "admits several calls" true (n_max >= 5);
  (* Simulate n_max randomly phased schedules on the link: loss should
     be small. *)
  let cfg =
    {
      Smg.trace;
      schedule;
      buffer;
      target_loss = 1e-3;
      replications = 3;
      seed = 11;
    }
  in
  let loss =
    Smg.rcbr_loss cfg ~n:n_max
      ~capacity_per_stream:(capacity /. float_of_int n_max)
  in
  Alcotest.(check bool) "simulated loss below 10x target" true (loss <= 1e-2)

(* 5. End-to-end signaling: play a schedule against a switch port and
   count denials; with capacity = schedule peak there are none. *)
let test_schedule_through_port () =
  let peak = Schedule.peak_rate schedule in
  let port = Port.create ~capacity:peak () in
  let path = Path.create_exn [ port ] ~vci:1 ~initial_rate:(Schedule.rate_at schedule 0) in
  let denied = ref 0 in
  Array.iter
    (fun seg ->
      if seg.Schedule.start_slot > 0 then
        match Path.renegotiate path seg.Schedule.rate with
        | `Granted -> ()
        | `Denied_at _ -> incr denied)
    (Schedule.segments schedule);
  Alcotest.(check int) "no denials at peak capacity" 0 !denied;
  Path.teardown path;
  Alcotest.(check bool) "clean teardown" true (Float.equal (Port.reserved port) 0.)

(* 6. Two schedules sharing a link below their joint peak suffer some
   denials but bookkeeping stays consistent. *)
let test_two_schedules_share_port () =
  let s1 = schedule in
  let s2 = Schedule.shift schedule ~slots:(Schedule.n_slots schedule / 2) in
  let capacity = 1.5 *. Schedule.peak_rate schedule in
  let port = Port.create ~capacity () in
  let p1 = Path.create_exn [ port ] ~vci:1 ~initial_rate:(Schedule.rate_at s1 0) in
  let p2 = Path.create_exn [ port ] ~vci:2 ~initial_rate:(Schedule.rate_at s2 0) in
  (* Interleave renegotiations in slot order. *)
  let events =
    List.sort compare
      (List.concat_map
         (fun (path_id, s) ->
           Array.to_list (Schedule.segments s)
           |> List.filter_map (fun seg ->
                  if seg.Schedule.start_slot = 0 then None
                  else Some (seg.Schedule.start_slot, path_id, seg.Schedule.rate)))
         [ (1, s1); (2, s2) ])
  in
  let granted = ref 0 and denied = ref 0 in
  List.iter
    (fun (_, path_id, rate) ->
      let path = if path_id = 1 then p1 else p2 in
      match Path.renegotiate path rate with
      | `Granted -> incr granted
      | `Denied_at _ -> incr denied)
    events;
  Alcotest.(check bool) "most renegotiations succeed" true (!granted > !denied);
  (* Invariant: port reservation equals the sum of current path rates. *)
  Alcotest.(check (float 1e-6)) "bookkeeping consistent"
    (Path.rate p1 +. Path.rate p2)
    (Port.reserved port)

(* 7. Full MBAC pipeline: memoryless is more aggressive than perfect
   knowledge on the same workload (Figs. 7-8's story). *)
let test_memoryless_more_aggressive () =
  let capacity = 12. *. Trace.mean_rate trace in
  let arrival_rate =
    1.5 *. capacity /. (Trace.mean_rate trace *. Schedule.duration schedule)
  in
  let cfg =
    Mbac.default_config ~schedule ~capacity ~arrival_rate ~target:1e-3 ~seed:17
  in
  let perfect =
    Mbac.run cfg
      ~controller:
        (Controller.perfect ~descriptor:(Descriptor.of_schedule schedule)
           ~capacity ~target:1e-3)
  in
  let memoryless =
    Mbac.run cfg ~controller:(Controller.memoryless ~capacity ~target:1e-3)
  in
  Alcotest.(check bool) "memoryless utilizes at least as much" true
    (memoryless.Mbac.utilization >= perfect.Mbac.utilization -. 0.02);
  Alcotest.(check bool) "memoryless fails at least as often" true
    (memoryless.Mbac.failure_probability
    >= perfect.Mbac.failure_probability -. 1e-9)

(* 8. The memory scheme is safer than memoryless under the same load. *)
let test_memory_safer_than_memoryless () =
  let capacity = 12. *. Trace.mean_rate trace in
  let arrival_rate =
    2.0 *. capacity /. (Trace.mean_rate trace *. Schedule.duration schedule)
  in
  let cfg =
    Mbac.default_config ~schedule ~capacity ~arrival_rate ~target:1e-3 ~seed:23
  in
  let memoryless =
    Mbac.run cfg ~controller:(Controller.memoryless ~capacity ~target:1e-3)
  in
  let memory =
    Mbac.run cfg ~controller:(Controller.memory ~capacity ~target:1e-3)
  in
  Alcotest.(check bool) "memory does not fail more" true
    (memory.Mbac.failure_probability
    <= memoryless.Mbac.failure_probability +. 1e-9)

(* 9. Trace persistence round-trips through scheduling. *)
let test_trace_file_roundtrip_schedule () =
  let path = Filename.temp_file "rcbr_int" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let small = Trace.sub trace ~pos:0 ~len:1_000 in
      Trace.save small path;
      let loaded = Trace.load path in
      let p = Optimal.default_params ~buffer ~cost_ratio:2e5 loaded in
      let s1 = Optimal.solve p small in
      let s2 = Optimal.solve p loaded in
      Alcotest.(check int) "same schedule from saved trace"
        (Schedule.n_renegotiations s1) (Schedule.n_renegotiations s2))

let () =
  Alcotest.run "rcbr_integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "small buffer vs static" `Quick
            test_small_buffer_vs_static;
          Alcotest.test_case "offline beats online" `Quick test_offline_beats_online;
          Alcotest.test_case "formula 9 vs simulation" `Quick
            test_formula9_predicts_simulation;
          Alcotest.test_case "chernoff vs simulation" `Quick
            test_chernoff_consistent_with_simulation;
          Alcotest.test_case "schedule through port" `Quick
            test_schedule_through_port;
          Alcotest.test_case "two schedules share port" `Quick
            test_two_schedules_share_port;
          Alcotest.test_case "memoryless aggressive" `Quick
            test_memoryless_more_aggressive;
          Alcotest.test_case "memory safer" `Quick test_memory_safer_than_memoryless;
          Alcotest.test_case "trace roundtrip" `Quick
            test_trace_file_roundtrip_schedule;
        ] );
    ]
