(* Unit and property tests for Rcbr_queue. *)

module Fluid = Rcbr_queue.Fluid
module Sigma_rho = Rcbr_queue.Sigma_rho
module Events = Rcbr_queue.Events
module Wheel = Rcbr_queue.Wheel
module Heap = Rcbr_util.Heap
module Trace = Rcbr_traffic.Trace

let check_close eps = Alcotest.(check (float eps))

(* --- Fluid primitives --- *)

let test_fluid_offer_drain () =
  let q = Fluid.create ~capacity:100. in
  check_close 1e-9 "no loss under capacity" 0. (Fluid.offer q 60.);
  check_close 1e-9 "backlog" 60. (Fluid.backlog q);
  check_close 1e-9 "overflow lost" 10. (Fluid.offer q 50.);
  check_close 1e-9 "full" 100. (Fluid.backlog q);
  Fluid.drain q 30.;
  check_close 1e-9 "drained" 70. (Fluid.backlog q);
  Fluid.drain q 1000.;
  check_close 1e-9 "clamped at zero" 0. (Fluid.backlog q);
  Fluid.offer q 10. |> ignore;
  Fluid.reset q;
  check_close 1e-9 "reset" 0. (Fluid.backlog q)

let test_run_constant_no_loss () =
  (* 10 bits per slot at 1 fps drained at 10 b/s: zero backlog. *)
  let t = Trace.create ~fps:1. (Array.make 20 10.) in
  let r = Fluid.run_constant ~capacity:5. ~rate:10. t in
  check_close 1e-9 "no loss" 0. r.Fluid.bits_lost;
  check_close 1e-9 "offered" 200. r.Fluid.bits_offered;
  check_close 1e-9 "loss fraction" 0. (Fluid.loss_fraction r)

let test_run_constant_with_loss () =
  (* One 100-bit frame into a 30-bit buffer drained at 10 b/s: the slot
     nets 100 - 10 = 90; 60 bits overflow. *)
  let t = Trace.create ~fps:1. [| 100.; 0.; 0. |] in
  let r = Fluid.run_constant ~capacity:30. ~rate:10. t in
  check_close 1e-9 "lost" 60. r.Fluid.bits_lost;
  check_close 1e-9 "max backlog" 30. r.Fluid.max_backlog;
  check_close 1e-9 "final" 10. r.Fluid.final_backlog

let test_run_schedule () =
  let t = Trace.create ~fps:1. [| 10.; 10.; 10. |] in
  (* Rate 0 then 30: backlog grows then shrinks. *)
  let rate_per_slot i = if i = 0 then 0. else 15. in
  let r = Fluid.run_schedule ~capacity:infinity ~rate_per_slot t in
  check_close 1e-9 "no loss with infinite buffer" 0. r.Fluid.bits_lost;
  check_close 1e-9 "final backlog" 0. r.Fluid.final_backlog;
  check_close 1e-9 "max backlog" 10. r.Fluid.max_backlog

let test_run_aggregate () =
  let a = Array.make 10 5. and b = Array.make 10 7. in
  let r = Fluid.run_aggregate ~capacity:infinity ~rate:12. ~fps:1. [| a; b |] in
  check_close 1e-9 "no loss at sum rate" 0. r.Fluid.bits_lost;
  check_close 1e-9 "offered" 120. r.Fluid.bits_offered

let test_empty_queue_zero_loss_fraction () =
  let t = Trace.create ~fps:1. [| 0.; 0. |] in
  let r = Fluid.run_constant ~capacity:1. ~rate:1. t in
  check_close 1e-9 "0/0 treated as 0" 0. (Fluid.loss_fraction r)

(* --- Sigma-rho --- *)

let sample_trace () =
  Rcbr_traffic.Synthetic.star_wars ~frames:5_000 ~seed:42 ()

let test_min_rate_bounds () =
  let trace = sample_trace () in
  let rate = Sigma_rho.min_rate ~trace ~buffer:300_000. ~target_loss:1e-6 () in
  Alcotest.(check bool) "above mean" true (rate > Trace.mean_rate trace);
  Alcotest.(check bool) "below peak" true (rate <= Trace.peak_rate trace)

let test_min_rate_achieves_target () =
  let trace = sample_trace () in
  let buffer = 300_000. and target_loss = 1e-4 in
  let rate = Sigma_rho.min_rate ~trace ~buffer ~target_loss () in
  let r = Fluid.run_constant ~capacity:buffer ~rate trace in
  Alcotest.(check bool) "meets target" true (Fluid.loss_fraction r <= target_loss);
  (* 1% below the minimum must violate the target. *)
  let r' = Fluid.run_constant ~capacity:buffer ~rate:(0.99 *. rate) trace in
  Alcotest.(check bool) "tight" true (Fluid.loss_fraction r' > target_loss)

let test_min_rate_monotone_in_buffer () =
  let trace = sample_trace () in
  let r1 = Sigma_rho.min_rate ~trace ~buffer:100_000. ~target_loss:1e-6 () in
  let r2 = Sigma_rho.min_rate ~trace ~buffer:1_000_000. ~target_loss:1e-6 () in
  let r3 = Sigma_rho.min_rate ~trace ~buffer:10_000_000. ~target_loss:1e-6 () in
  Alcotest.(check bool) "decreasing" true (r1 >= r2 && r2 >= r3)

let test_min_buffer_dual () =
  let trace = sample_trace () in
  let buffer = 500_000. and target_loss = 1e-4 in
  let rate = Sigma_rho.min_rate ~trace ~buffer ~target_loss () in
  let buffer' = Sigma_rho.min_buffer ~trace ~rate ~target_loss () in
  (* The dual buffer at the computed min rate cannot exceed the original. *)
  Alcotest.(check bool) "dual consistent" true (buffer' <= buffer *. 1.01)

let test_min_buffer_zero_loss_matches_backlog () =
  let trace = Trace.create ~fps:1. [| 0.; 30.; 0.; 0. |] in
  let b = Sigma_rho.min_buffer ~trace ~rate:10. ~target_loss:0. () in
  check_close 1e-6 "peak backlog" 20. b

let test_curve () =
  let trace = sample_trace () in
  let pts =
    Sigma_rho.curve ~trace ~buffers:[| 1e5; 1e6; 1e7 |] ~target_loss:1e-6 ()
  in
  Alcotest.(check int) "points" 3 (Array.length pts);
  let rates = Array.map snd pts in
  Alcotest.(check bool) "monotone" true (rates.(0) >= rates.(1) && rates.(1) >= rates.(2))

(* --- Events --- *)

let test_events_order () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:2. (fun _ -> log := 2 :: !log);
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:3. (fun _ -> log := 3 :: !log);
  Events.run e;
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] (List.rev !log);
  check_close 1e-9 "clock at last event" 3. (Events.now e)

let test_events_fifo_ties () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := "a" :: !log);
  Events.schedule e ~at:1. (fun _ -> log := "b" :: !log);
  Events.run e;
  Alcotest.(check (list string)) "scheduling order" [ "a"; "b" ] (List.rev !log)

let test_events_schedule_during_run () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun e ->
      log := 1 :: !log;
      Events.schedule_after e ~delay:0.5 (fun _ -> log := 2 :: !log));
  Events.run e;
  Alcotest.(check (list int)) "nested" [ 1; 2 ] (List.rev !log);
  check_close 1e-9 "clock" 1.5 (Events.now e)

let test_events_until () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:5. (fun _ -> log := 5 :: !log);
  Events.run ~until:2. e;
  Alcotest.(check (list int)) "stopped early" [ 1 ] (List.rev !log);
  Alcotest.(check int) "pending" 1 (Events.pending e);
  Events.run e;
  Alcotest.(check (list int)) "resumed" [ 1; 5 ] (List.rev !log)

let test_events_step () =
  let e = Events.create () in
  Alcotest.(check bool) "empty step" false (Events.step e);
  Events.schedule e ~at:1. (fun _ -> ());
  Alcotest.(check bool) "one step" true (Events.step e);
  Alcotest.(check bool) "drained" false (Events.step e)

let test_events_exactly_at_until () =
  (* The boundary the simulators rely on for their horizons: events at
     exactly [until] still fire, later ones stay pending. *)
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:2. (fun _ -> log := 2 :: !log);
  Events.schedule e ~at:2. (fun _ -> log := 3 :: !log);
  Events.schedule e ~at:(2. +. epsilon_float *. 4.) (fun _ -> log := 4 :: !log);
  Events.run ~until:2. e;
  Alcotest.(check (list int)) "boundary events fired" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "just-after stays pending" 1 (Events.pending e);
  check_close 1e-9 "clock at the boundary" 2. (Events.now e)

let test_events_fifo_ties_many () =
  (* Equal-time events fire in scheduling order even when interleaved
     with other times and added mid-run by an earlier tied event. *)
  let e = Events.create () in
  let log = ref [] in
  let mark v _ = log := v :: !log in
  Events.schedule e ~at:2. (mark "t2-a");
  Events.schedule e ~at:1. (fun e ->
      log := "t1-a" :: !log;
      (* A same-time event scheduled mid-run goes after the existing
         t = 1 entries (FIFO by scheduling order, not insertion time). *)
      Events.schedule e ~at:1. (mark "t1-d"));
  Events.schedule e ~at:2. (mark "t2-b");
  Events.schedule e ~at:1. (mark "t1-b");
  Events.schedule e ~at:1. (mark "t1-c");
  Events.run e;
  Alcotest.(check (list string)) "stable tie order"
    [ "t1-a"; "t1-b"; "t1-c"; "t1-d"; "t2-a"; "t2-b" ]
    (List.rev !log)

let test_events_pending_counts () =
  let e = Events.create () in
  Alcotest.(check int) "empty" 0 (Events.pending e);
  Events.schedule e ~at:1. (fun e ->
      Events.schedule_after e ~delay:1. (fun _ -> ()));
  Events.schedule e ~at:3. (fun _ -> ());
  Alcotest.(check int) "two scheduled" 2 (Events.pending e);
  ignore (Events.step e);
  Alcotest.(check int) "fired one, spawned one" 2 (Events.pending e);
  ignore (Events.step e);
  Alcotest.(check int) "one left" 1 (Events.pending e);
  Events.run e;
  Alcotest.(check int) "drained" 0 (Events.pending e)

let test_events_past_rejected () =
  let asserts f = try f (); false with Assert_failure _ -> true in
  let e = Events.create () in
  Events.schedule e ~at:2. (fun _ -> ());
  ignore (Events.step e);
  check_close 1e-9 "clock advanced" 2. (Events.now e);
  Alcotest.(check bool) "scheduling in the past rejected" true
    (asserts (fun () -> Events.schedule e ~at:1. (fun _ -> ())));
  Alcotest.(check bool) "negative delay rejected" true
    (asserts (fun () -> Events.schedule_after e ~delay:(-1.) (fun _ -> ())));
  (* Scheduling at exactly [now] is allowed and fires immediately. *)
  let fired = ref false in
  Events.schedule e ~at:2. (fun _ -> fired := true);
  Events.run e;
  Alcotest.(check bool) "at = now fires" true !fired

let test_events_advance_to () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:7. (fun _ -> log := 7 :: !log);
  Events.advance_to e ~at:5.;
  Alcotest.(check (list int)) "fired up to the bound" [ 1 ] (List.rev !log);
  check_close 1e-9 "clock lands on the bound, not the last event" 5.
    (Events.now e);
  (* Unlike [run ~until], scheduling anywhere in (last event, bound]
     is now in the past. *)
  let asserts f = try f (); false with Assert_failure _ -> true in
  Alcotest.(check bool) "past of the new clock rejected" true
    (asserts (fun () -> Events.schedule e ~at:4. (fun _ -> ())));
  Events.advance_to e ~at:5.;
  check_close 1e-9 "idempotent at the same bound" 5. (Events.now e);
  Events.advance_to e ~at:10.;
  Alcotest.(check (list int)) "rest fired" [ 1; 7 ] (List.rev !log);
  check_close 1e-9 "final clock" 10. (Events.now e)

let test_events_cancel_token () =
  let e = Events.create () in
  let log = ref [] in
  let t1 = Events.schedule_token e ~at:1. (fun _ -> log := 1 :: !log) in
  let t2 = Events.schedule_token e ~at:2. (fun _ -> log := 2 :: !log) in
  let t3 = Events.schedule_token e ~at:3. (fun _ -> log := 3 :: !log) in
  Alcotest.(check int) "all pending" 3 (Events.pending e);
  Events.cancel t2;
  Alcotest.(check bool) "cancelled" true (Events.cancelled t2);
  Alcotest.(check bool) "others live" false (Events.cancelled t1);
  Alcotest.(check int) "pending drops" 2 (Events.pending e);
  Events.cancel t2;
  (* double cancel is a no-op *)
  Alcotest.(check int) "still two" 2 (Events.pending e);
  Events.run e;
  Alcotest.(check (list int)) "cancelled event skipped" [ 1; 3 ]
    (List.rev !log);
  Alcotest.(check bool) "popped token reads cancelled" true
    (Events.cancelled t3);
  Events.cancel t3;
  (* cancelling after the pop is a no-op too *)
  Alcotest.(check (list int)) "log unchanged" [ 1; 3 ] (List.rev !log)

(* --- Wheel: the calendar queue behind Events --- *)

let test_wheel_order_and_ties () =
  let w = Wheel.create () in
  ignore (Wheel.push w ~time:2. "t2-a");
  ignore (Wheel.push w ~time:1. "t1-a");
  ignore (Wheel.push w ~time:2. "t2-b");
  ignore (Wheel.push w ~time:1. "t1-b");
  Alcotest.(check int) "length" 4 (Wheel.length w);
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "t1-a"))
    (Wheel.peek w);
  let popped = List.init 4 (fun _ -> Option.get (Wheel.pop w)) in
  Alcotest.(check (list (pair (float 0.) string)))
    "time order, FIFO within ties"
    [ (1., "t1-a"); (1., "t1-b"); (2., "t2-a"); (2., "t2-b") ]
    popped;
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

let test_wheel_cancel () =
  let w = Wheel.create () in
  let a = Wheel.push w ~time:1. "a" in
  let b = Wheel.push w ~time:2. "b" in
  let c = Wheel.push w ~time:3. "c" in
  Wheel.cancel w b;
  Alcotest.(check bool) "b dead" false (Wheel.live b);
  Alcotest.(check bool) "a live" true (Wheel.live a);
  Alcotest.(check int) "length skips cancelled" 2 (Wheel.length w);
  Wheel.cancel w b;
  Alcotest.(check int) "double cancel no-op" 2 (Wheel.length w);
  Alcotest.(check (option (pair (float 0.) string))) "pop a" (Some (1., "a"))
    (Wheel.pop w);
  Alcotest.(check bool) "popped is no longer live" false (Wheel.live a);
  Alcotest.(check (option (pair (float 0.) string))) "pop skips b"
    (Some (3., "c"))
    (Wheel.pop w);
  Wheel.cancel w c;
  (* cancel after pop: no-op *)
  Alcotest.(check (option (pair (float 0.) string))) "empty" None (Wheel.pop w)

let test_wheel_rejects_bad_times () =
  let w = Wheel.create () in
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "nan" true (raises (fun () -> Wheel.push w ~time:nan ()));
  Alcotest.(check bool) "inf" true
    (raises (fun () -> Wheel.push w ~time:infinity ()));
  Alcotest.(check bool) "negative" true
    (raises (fun () -> Wheel.push w ~time:(-1.) ()))

let test_wheel_grow_shrink () =
  (* Push enough to force several rebuilds, drain through the shrink
     path, and verify global order the whole way. *)
  let rng = Rcbr_util.Rng.create 11 in
  let w = Wheel.create () in
  let n = 50_000 in
  for i = 0 to n - 1 do
    ignore (Wheel.push w ~time:(Rcbr_util.Rng.float rng *. 1000.) i)
  done;
  Alcotest.(check int) "all live" n (Wheel.length w);
  let last = ref neg_infinity and count = ref 0 and ok = ref true in
  let rec drain () =
    match Wheel.pop w with
    | None -> ()
    | Some (t, _) ->
        if t < !last then ok := false;
        last := t;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "non-decreasing" true !ok;
  Alcotest.(check int) "all popped" n !count

(* --- Properties --- *)

let arrivals_gen =
  QCheck.Gen.(array_size (int_range 1 80) (float_range 0. 100.))

let prop_conservation =
  QCheck.Test.make ~name:"bits are conserved" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let r = Fluid.run_constant ~capacity:50. ~rate:20. t in
      (* offered = lost + final backlog + served, and served <= rate * T *)
      let served =
        r.Fluid.bits_offered -. r.Fluid.bits_lost -. r.Fluid.final_backlog
      in
      served >= -.1e-6
      && served <= (20. *. float_of_int (Array.length frames)) +. 1e-6)

let prop_loss_monotone_in_rate =
  QCheck.Test.make ~name:"loss decreases with drain rate" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let l1 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:40. ~rate:10. t)
      in
      let l2 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:40. ~rate:30. t)
      in
      l2 <= l1 +. 1e-9)

let prop_loss_monotone_in_buffer =
  QCheck.Test.make ~name:"loss decreases with buffer" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let l1 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:10. ~rate:15. t)
      in
      let l2 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:100. ~rate:15. t)
      in
      l2 <= l1 +. 1e-9)

let prop_infinite_buffer_no_loss =
  QCheck.Test.make ~name:"infinite buffer never loses" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let r = Fluid.run_constant ~capacity:infinity ~rate:5. t in
      Float.equal r.Fluid.bits_lost 0.)

(* Times drawn from a mix of a continuum and a coarse lattice, so
   duplicate timestamps (the FIFO tie case) occur constantly. *)
let times_gen =
  QCheck.Gen.(
    list_size (int_range 0 300)
      (oneof
         [
           float_range 0. 100.;
           map (fun i -> float_of_int i /. 4.) (int_range 0 64);
         ]))

let prop_wheel_equals_heap =
  QCheck.Test.make ~name:"wheel pop order = heap pop order" ~count:300
    (QCheck.make times_gen) (fun times ->
      let w = Wheel.create () and h = Heap.create () in
      List.iteri
        (fun i t ->
          ignore (Wheel.push w ~time:t i);
          Heap.push h ~priority:t i)
        times;
      let rec drain ok =
        match (Wheel.pop w, Heap.pop h) with
        | None, None -> ok
        | Some a, Some b -> drain (ok && a = b)
        | _ -> false
      in
      drain true)

(* Interleaved schedule/step: pops happen mid-stream, so the wheel's
   cursor has to chase the population backward and forward. *)
let ops_gen =
  QCheck.Gen.(
    list_size (int_range 0 300)
      (pair (int_range 0 3)
         (oneof
            [
              float_range 0. 50.;
              map (fun i -> float_of_int i /. 2.) (int_range 0 32);
            ])))

let prop_wheel_equals_heap_interleaved =
  QCheck.Test.make ~name:"wheel = heap under interleaved push/pop" ~count:300
    (QCheck.make ops_gen) (fun ops ->
      let w = Wheel.create () and h = Heap.create () in
      let seq = ref 0 in
      let ok =
        List.for_all
          (fun (kind, t) ->
            if kind < 3 then begin
              (* The event-engine invariant: never schedule before the
                 current minimum (the engine clock). *)
              let t =
                match Wheel.peek w with
                | Some (front, _) when t < front -> front
                | _ -> t
              in
              incr seq;
              ignore (Wheel.push w ~time:t !seq);
              Heap.push h ~priority:t !seq;
              true
            end
            else Wheel.pop w = Heap.pop h)
          ops
      in
      let rec drain ok =
        match (Wheel.pop w, Heap.pop h) with
        | None, None -> ok
        | Some a, Some b -> drain (ok && a = b)
        | _ -> false
      in
      drain ok)

(* Cancellation against a naive model: a list of (time, seq, alive)
   entries popped by linear minimum search. *)
let cancel_ops_gen =
  QCheck.Gen.(
    list_size (int_range 0 300)
      (triple (int_range 0 4)
         (oneof
            [
              float_range 0. 50.;
              map (fun i -> float_of_int i /. 2.) (int_range 0 32);
            ])
         (int_range 0 1000)))

let prop_wheel_cancel_model =
  QCheck.Test.make ~name:"wheel cancel = naive model" ~count:300
    (QCheck.make cancel_ops_gen) (fun ops ->
      let w = Wheel.create () in
      let handles = ref [||] in
      (* model: (time, seq, alive ref) in push order, index = seq *)
      let model = ref [] in
      let push_handle h = handles := Array.append !handles [| h |] in
      let model_pop () =
        let best = ref None in
        List.iter
          (fun (t, s, alive) ->
            if !alive then
              match !best with
              | Some (bt, bs, _) when (bt, bs) <= (t, s) -> ()
              | _ -> best := Some (t, s, alive))
          !model;
        match !best with
        | None -> None
        | Some (t, s, alive) ->
            alive := false;
            Some (t, s)
      in
      let ok = ref true in
      List.iter
        (fun (kind, t, k) ->
          let n = Array.length !handles in
          if kind <= 2 then begin
            let h = Wheel.push w ~time:t n in
            push_handle h;
            model := (t, n, ref true) :: !model
          end
          else if kind = 3 && n > 0 then begin
            let i = k mod n in
            Wheel.cancel w !handles.(i);
            let _, _, alive =
              List.find (fun (_, s, _) -> s = i) !model
            in
            alive := false
          end
          else if kind = 4 then
            if Wheel.pop w <> model_pop () then ok := false)
        ops;
      let rec drain () =
        let a = Wheel.pop w and b = model_pop () in
        if a <> b then ok := false;
        if a <> None || b <> None then drain ()
      in
      drain ();
      !ok)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_queue"
    [
      ( "fluid",
        [
          Alcotest.test_case "offer/drain" `Quick test_fluid_offer_drain;
          Alcotest.test_case "constant no loss" `Quick test_run_constant_no_loss;
          Alcotest.test_case "constant with loss" `Quick test_run_constant_with_loss;
          Alcotest.test_case "schedule" `Quick test_run_schedule;
          Alcotest.test_case "aggregate" `Quick test_run_aggregate;
          Alcotest.test_case "zero offered" `Quick test_empty_queue_zero_loss_fraction;
        ] );
      ( "sigma_rho",
        [
          Alcotest.test_case "bounds" `Quick test_min_rate_bounds;
          Alcotest.test_case "achieves target" `Quick test_min_rate_achieves_target;
          Alcotest.test_case "monotone in buffer" `Quick
            test_min_rate_monotone_in_buffer;
          Alcotest.test_case "dual buffer" `Quick test_min_buffer_dual;
          Alcotest.test_case "zero-loss buffer" `Quick
            test_min_buffer_zero_loss_matches_backlog;
          Alcotest.test_case "curve" `Quick test_curve;
        ] );
      ( "events",
        [
          Alcotest.test_case "order" `Quick test_events_order;
          Alcotest.test_case "fifo ties" `Quick test_events_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick
            test_events_schedule_during_run;
          Alcotest.test_case "until" `Quick test_events_until;
          Alcotest.test_case "step" `Quick test_events_step;
          Alcotest.test_case "exactly at until" `Quick
            test_events_exactly_at_until;
          Alcotest.test_case "fifo ties interleaved" `Quick
            test_events_fifo_ties_many;
          Alcotest.test_case "pending counts" `Quick test_events_pending_counts;
          Alcotest.test_case "past scheduling rejected" `Quick
            test_events_past_rejected;
          Alcotest.test_case "advance_to" `Quick test_events_advance_to;
          Alcotest.test_case "cancel token" `Quick test_events_cancel_token;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "order and ties" `Quick test_wheel_order_and_ties;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "bad times rejected" `Quick
            test_wheel_rejects_bad_times;
          Alcotest.test_case "grow and shrink" `Quick test_wheel_grow_shrink;
        ]
        @ q
            [
              prop_wheel_equals_heap;
              prop_wheel_equals_heap_interleaved;
              prop_wheel_cancel_model;
            ] );
      ( "properties",
        q
          [
            prop_conservation;
            prop_loss_monotone_in_rate;
            prop_loss_monotone_in_buffer;
            prop_infinite_buffer_no_loss;
          ] );
    ]
