(* Unit and property tests for Rcbr_queue. *)

module Fluid = Rcbr_queue.Fluid
module Sigma_rho = Rcbr_queue.Sigma_rho
module Events = Rcbr_queue.Events
module Trace = Rcbr_traffic.Trace

let check_close eps = Alcotest.(check (float eps))

(* --- Fluid primitives --- *)

let test_fluid_offer_drain () =
  let q = Fluid.create ~capacity:100. in
  check_close 1e-9 "no loss under capacity" 0. (Fluid.offer q 60.);
  check_close 1e-9 "backlog" 60. (Fluid.backlog q);
  check_close 1e-9 "overflow lost" 10. (Fluid.offer q 50.);
  check_close 1e-9 "full" 100. (Fluid.backlog q);
  Fluid.drain q 30.;
  check_close 1e-9 "drained" 70. (Fluid.backlog q);
  Fluid.drain q 1000.;
  check_close 1e-9 "clamped at zero" 0. (Fluid.backlog q);
  Fluid.offer q 10. |> ignore;
  Fluid.reset q;
  check_close 1e-9 "reset" 0. (Fluid.backlog q)

let test_run_constant_no_loss () =
  (* 10 bits per slot at 1 fps drained at 10 b/s: zero backlog. *)
  let t = Trace.create ~fps:1. (Array.make 20 10.) in
  let r = Fluid.run_constant ~capacity:5. ~rate:10. t in
  check_close 1e-9 "no loss" 0. r.Fluid.bits_lost;
  check_close 1e-9 "offered" 200. r.Fluid.bits_offered;
  check_close 1e-9 "loss fraction" 0. (Fluid.loss_fraction r)

let test_run_constant_with_loss () =
  (* One 100-bit frame into a 30-bit buffer drained at 10 b/s: the slot
     nets 100 - 10 = 90; 60 bits overflow. *)
  let t = Trace.create ~fps:1. [| 100.; 0.; 0. |] in
  let r = Fluid.run_constant ~capacity:30. ~rate:10. t in
  check_close 1e-9 "lost" 60. r.Fluid.bits_lost;
  check_close 1e-9 "max backlog" 30. r.Fluid.max_backlog;
  check_close 1e-9 "final" 10. r.Fluid.final_backlog

let test_run_schedule () =
  let t = Trace.create ~fps:1. [| 10.; 10.; 10. |] in
  (* Rate 0 then 30: backlog grows then shrinks. *)
  let rate_per_slot i = if i = 0 then 0. else 15. in
  let r = Fluid.run_schedule ~capacity:infinity ~rate_per_slot t in
  check_close 1e-9 "no loss with infinite buffer" 0. r.Fluid.bits_lost;
  check_close 1e-9 "final backlog" 0. r.Fluid.final_backlog;
  check_close 1e-9 "max backlog" 10. r.Fluid.max_backlog

let test_run_aggregate () =
  let a = Array.make 10 5. and b = Array.make 10 7. in
  let r = Fluid.run_aggregate ~capacity:infinity ~rate:12. ~fps:1. [| a; b |] in
  check_close 1e-9 "no loss at sum rate" 0. r.Fluid.bits_lost;
  check_close 1e-9 "offered" 120. r.Fluid.bits_offered

let test_empty_queue_zero_loss_fraction () =
  let t = Trace.create ~fps:1. [| 0.; 0. |] in
  let r = Fluid.run_constant ~capacity:1. ~rate:1. t in
  check_close 1e-9 "0/0 treated as 0" 0. (Fluid.loss_fraction r)

(* --- Sigma-rho --- *)

let sample_trace () =
  Rcbr_traffic.Synthetic.star_wars ~frames:5_000 ~seed:42 ()

let test_min_rate_bounds () =
  let trace = sample_trace () in
  let rate = Sigma_rho.min_rate ~trace ~buffer:300_000. ~target_loss:1e-6 () in
  Alcotest.(check bool) "above mean" true (rate > Trace.mean_rate trace);
  Alcotest.(check bool) "below peak" true (rate <= Trace.peak_rate trace)

let test_min_rate_achieves_target () =
  let trace = sample_trace () in
  let buffer = 300_000. and target_loss = 1e-4 in
  let rate = Sigma_rho.min_rate ~trace ~buffer ~target_loss () in
  let r = Fluid.run_constant ~capacity:buffer ~rate trace in
  Alcotest.(check bool) "meets target" true (Fluid.loss_fraction r <= target_loss);
  (* 1% below the minimum must violate the target. *)
  let r' = Fluid.run_constant ~capacity:buffer ~rate:(0.99 *. rate) trace in
  Alcotest.(check bool) "tight" true (Fluid.loss_fraction r' > target_loss)

let test_min_rate_monotone_in_buffer () =
  let trace = sample_trace () in
  let r1 = Sigma_rho.min_rate ~trace ~buffer:100_000. ~target_loss:1e-6 () in
  let r2 = Sigma_rho.min_rate ~trace ~buffer:1_000_000. ~target_loss:1e-6 () in
  let r3 = Sigma_rho.min_rate ~trace ~buffer:10_000_000. ~target_loss:1e-6 () in
  Alcotest.(check bool) "decreasing" true (r1 >= r2 && r2 >= r3)

let test_min_buffer_dual () =
  let trace = sample_trace () in
  let buffer = 500_000. and target_loss = 1e-4 in
  let rate = Sigma_rho.min_rate ~trace ~buffer ~target_loss () in
  let buffer' = Sigma_rho.min_buffer ~trace ~rate ~target_loss () in
  (* The dual buffer at the computed min rate cannot exceed the original. *)
  Alcotest.(check bool) "dual consistent" true (buffer' <= buffer *. 1.01)

let test_min_buffer_zero_loss_matches_backlog () =
  let trace = Trace.create ~fps:1. [| 0.; 30.; 0.; 0. |] in
  let b = Sigma_rho.min_buffer ~trace ~rate:10. ~target_loss:0. () in
  check_close 1e-6 "peak backlog" 20. b

let test_curve () =
  let trace = sample_trace () in
  let pts =
    Sigma_rho.curve ~trace ~buffers:[| 1e5; 1e6; 1e7 |] ~target_loss:1e-6 ()
  in
  Alcotest.(check int) "points" 3 (Array.length pts);
  let rates = Array.map snd pts in
  Alcotest.(check bool) "monotone" true (rates.(0) >= rates.(1) && rates.(1) >= rates.(2))

(* --- Events --- *)

let test_events_order () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:2. (fun _ -> log := 2 :: !log);
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:3. (fun _ -> log := 3 :: !log);
  Events.run e;
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] (List.rev !log);
  check_close 1e-9 "clock at last event" 3. (Events.now e)

let test_events_fifo_ties () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := "a" :: !log);
  Events.schedule e ~at:1. (fun _ -> log := "b" :: !log);
  Events.run e;
  Alcotest.(check (list string)) "scheduling order" [ "a"; "b" ] (List.rev !log)

let test_events_schedule_during_run () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun e ->
      log := 1 :: !log;
      Events.schedule_after e ~delay:0.5 (fun _ -> log := 2 :: !log));
  Events.run e;
  Alcotest.(check (list int)) "nested" [ 1; 2 ] (List.rev !log);
  check_close 1e-9 "clock" 1.5 (Events.now e)

let test_events_until () =
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:5. (fun _ -> log := 5 :: !log);
  Events.run ~until:2. e;
  Alcotest.(check (list int)) "stopped early" [ 1 ] (List.rev !log);
  Alcotest.(check int) "pending" 1 (Events.pending e);
  Events.run e;
  Alcotest.(check (list int)) "resumed" [ 1; 5 ] (List.rev !log)

let test_events_step () =
  let e = Events.create () in
  Alcotest.(check bool) "empty step" false (Events.step e);
  Events.schedule e ~at:1. (fun _ -> ());
  Alcotest.(check bool) "one step" true (Events.step e);
  Alcotest.(check bool) "drained" false (Events.step e)

let test_events_exactly_at_until () =
  (* The boundary the simulators rely on for their horizons: events at
     exactly [until] still fire, later ones stay pending. *)
  let e = Events.create () in
  let log = ref [] in
  Events.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Events.schedule e ~at:2. (fun _ -> log := 2 :: !log);
  Events.schedule e ~at:2. (fun _ -> log := 3 :: !log);
  Events.schedule e ~at:(2. +. epsilon_float *. 4.) (fun _ -> log := 4 :: !log);
  Events.run ~until:2. e;
  Alcotest.(check (list int)) "boundary events fired" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "just-after stays pending" 1 (Events.pending e);
  check_close 1e-9 "clock at the boundary" 2. (Events.now e)

let test_events_fifo_ties_many () =
  (* Equal-time events fire in scheduling order even when interleaved
     with other times and added mid-run by an earlier tied event. *)
  let e = Events.create () in
  let log = ref [] in
  let mark v _ = log := v :: !log in
  Events.schedule e ~at:2. (mark "t2-a");
  Events.schedule e ~at:1. (fun e ->
      log := "t1-a" :: !log;
      (* A same-time event scheduled mid-run goes after the existing
         t = 1 entries (FIFO by scheduling order, not insertion time). *)
      Events.schedule e ~at:1. (mark "t1-d"));
  Events.schedule e ~at:2. (mark "t2-b");
  Events.schedule e ~at:1. (mark "t1-b");
  Events.schedule e ~at:1. (mark "t1-c");
  Events.run e;
  Alcotest.(check (list string)) "stable tie order"
    [ "t1-a"; "t1-b"; "t1-c"; "t1-d"; "t2-a"; "t2-b" ]
    (List.rev !log)

let test_events_pending_counts () =
  let e = Events.create () in
  Alcotest.(check int) "empty" 0 (Events.pending e);
  Events.schedule e ~at:1. (fun e ->
      Events.schedule_after e ~delay:1. (fun _ -> ()));
  Events.schedule e ~at:3. (fun _ -> ());
  Alcotest.(check int) "two scheduled" 2 (Events.pending e);
  ignore (Events.step e);
  Alcotest.(check int) "fired one, spawned one" 2 (Events.pending e);
  ignore (Events.step e);
  Alcotest.(check int) "one left" 1 (Events.pending e);
  Events.run e;
  Alcotest.(check int) "drained" 0 (Events.pending e)

let test_events_past_rejected () =
  let asserts f = try f (); false with Assert_failure _ -> true in
  let e = Events.create () in
  Events.schedule e ~at:2. (fun _ -> ());
  ignore (Events.step e);
  check_close 1e-9 "clock advanced" 2. (Events.now e);
  Alcotest.(check bool) "scheduling in the past rejected" true
    (asserts (fun () -> Events.schedule e ~at:1. (fun _ -> ())));
  Alcotest.(check bool) "negative delay rejected" true
    (asserts (fun () -> Events.schedule_after e ~delay:(-1.) (fun _ -> ())));
  (* Scheduling at exactly [now] is allowed and fires immediately. *)
  let fired = ref false in
  Events.schedule e ~at:2. (fun _ -> fired := true);
  Events.run e;
  Alcotest.(check bool) "at = now fires" true !fired

(* --- Properties --- *)

let arrivals_gen =
  QCheck.Gen.(array_size (int_range 1 80) (float_range 0. 100.))

let prop_conservation =
  QCheck.Test.make ~name:"bits are conserved" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let r = Fluid.run_constant ~capacity:50. ~rate:20. t in
      (* offered = lost + final backlog + served, and served <= rate * T *)
      let served =
        r.Fluid.bits_offered -. r.Fluid.bits_lost -. r.Fluid.final_backlog
      in
      served >= -.1e-6
      && served <= (20. *. float_of_int (Array.length frames)) +. 1e-6)

let prop_loss_monotone_in_rate =
  QCheck.Test.make ~name:"loss decreases with drain rate" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let l1 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:40. ~rate:10. t)
      in
      let l2 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:40. ~rate:30. t)
      in
      l2 <= l1 +. 1e-9)

let prop_loss_monotone_in_buffer =
  QCheck.Test.make ~name:"loss decreases with buffer" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let l1 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:10. ~rate:15. t)
      in
      let l2 =
        Fluid.loss_fraction (Fluid.run_constant ~capacity:100. ~rate:15. t)
      in
      l2 <= l1 +. 1e-9)

let prop_infinite_buffer_no_loss =
  QCheck.Test.make ~name:"infinite buffer never loses" ~count:200
    (QCheck.make arrivals_gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let r = Fluid.run_constant ~capacity:infinity ~rate:5. t in
      Float.equal r.Fluid.bits_lost 0.)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_queue"
    [
      ( "fluid",
        [
          Alcotest.test_case "offer/drain" `Quick test_fluid_offer_drain;
          Alcotest.test_case "constant no loss" `Quick test_run_constant_no_loss;
          Alcotest.test_case "constant with loss" `Quick test_run_constant_with_loss;
          Alcotest.test_case "schedule" `Quick test_run_schedule;
          Alcotest.test_case "aggregate" `Quick test_run_aggregate;
          Alcotest.test_case "zero offered" `Quick test_empty_queue_zero_loss_fraction;
        ] );
      ( "sigma_rho",
        [
          Alcotest.test_case "bounds" `Quick test_min_rate_bounds;
          Alcotest.test_case "achieves target" `Quick test_min_rate_achieves_target;
          Alcotest.test_case "monotone in buffer" `Quick
            test_min_rate_monotone_in_buffer;
          Alcotest.test_case "dual buffer" `Quick test_min_buffer_dual;
          Alcotest.test_case "zero-loss buffer" `Quick
            test_min_buffer_zero_loss_matches_backlog;
          Alcotest.test_case "curve" `Quick test_curve;
        ] );
      ( "events",
        [
          Alcotest.test_case "order" `Quick test_events_order;
          Alcotest.test_case "fifo ties" `Quick test_events_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick
            test_events_schedule_during_run;
          Alcotest.test_case "until" `Quick test_events_until;
          Alcotest.test_case "step" `Quick test_events_step;
          Alcotest.test_case "exactly at until" `Quick
            test_events_exactly_at_until;
          Alcotest.test_case "fifo ties interleaved" `Quick
            test_events_fifo_ties_many;
          Alcotest.test_case "pending counts" `Quick test_events_pending_counts;
          Alcotest.test_case "past scheduling rejected" `Quick
            test_events_past_rejected;
        ] );
      ( "properties",
        q
          [
            prop_conservation;
            prop_loss_monotone_in_rate;
            prop_loss_monotone_in_buffer;
            prop_infinite_buffer_no_loss;
          ] );
    ]
