(* Unit and property tests for Rcbr_effbw: large-deviations machinery. *)

module Eb = Rcbr_effbw.Effective_bandwidth
module Chernoff = Rcbr_effbw.Chernoff
module Chain = Rcbr_markov.Chain
module Modulated = Rcbr_markov.Modulated
module Multiscale = Rcbr_markov.Multiscale

let check_close eps = Alcotest.(check (float eps))

let two_state_source p q ~low ~high =
  Modulated.create
    (Chain.create [| [| 1. -. p; p |]; [| q; 1. -. q |] |])
    ~rates:[| low; high |]

(* Closed-form log-MGF of a 2-state Markov additive process: log of the
   largest eigenvalue of diag(e^{theta r}) P. *)
let closed_form_log_mgf ~p ~q ~low ~high theta =
  let a = exp (theta *. low) *. (1. -. p) in
  let b = exp (theta *. low) *. p in
  let c = exp (theta *. high) *. q in
  let d = exp (theta *. high) *. (1. -. q) in
  let tr = a +. d and det = (a *. d) -. (b *. c) in
  log ((tr +. sqrt ((tr *. tr) -. (4. *. det))) /. 2.)

let test_log_mgf_zero () =
  let m = two_state_source 0.2 0.3 ~low:1. ~high:5. in
  check_close 1e-12 "Lambda(0)=0" 0. (Eb.log_mgf m ~theta:0.)

let test_log_mgf_closed_form () =
  let p = 0.2 and q = 0.3 and low = 1. and high = 5. in
  let m = two_state_source p q ~low ~high in
  List.iter
    (fun theta ->
      check_close 1e-6 "matches eigenvalue formula"
        (closed_form_log_mgf ~p ~q ~low ~high theta)
        (Eb.log_mgf m ~theta))
    [ 0.1; 0.5; 1.0; 2.0; -0.5 ]

let test_log_mgf_constant_source () =
  (* A deterministic source: Lambda(theta) = theta * rate. *)
  let m = Modulated.create (Chain.create [| [| 1. |] |]) ~rates:[| 7. |] in
  check_close 1e-9 "deterministic" 14. (Eb.log_mgf m ~theta:2.)

let test_effective_bandwidth_limits () =
  let m = two_state_source 0.2 0.3 ~low:1. ~high:5. in
  let mean = Modulated.mean_rate m in
  let peak = Modulated.peak_rate m in
  let small = Eb.effective_bandwidth m ~theta:1e-7 in
  let large = Eb.effective_bandwidth m ~theta:50. in
  check_close 1e-3 "theta->0 gives mean" mean small;
  check_close 0.15 "theta->inf approaches peak" peak large;
  Alcotest.(check bool) "between mean and peak" true (small <= large)

let test_effective_bandwidth_monotone () =
  let m = two_state_source 0.1 0.1 ~low:0. ~high:10. in
  let prev = ref 0. in
  List.iter
    (fun theta ->
      let eb = Eb.effective_bandwidth m ~theta in
      Alcotest.(check bool) "nondecreasing in theta" true (eb >= !prev -. 1e-9);
      prev := eb)
    [ 0.01; 0.1; 0.5; 1.; 2.; 5. ]

let test_equivalent_bandwidth_monotone_in_buffer () =
  let m = two_state_source 0.2 0.3 ~low:1. ~high:5. in
  let e1 = Eb.equivalent_bandwidth m ~buffer:1. ~target_loss:1e-6 in
  let e2 = Eb.equivalent_bandwidth m ~buffer:10. ~target_loss:1e-6 in
  let e3 = Eb.equivalent_bandwidth m ~buffer:100. ~target_loss:1e-6 in
  Alcotest.(check bool) "larger buffer needs less" true (e1 >= e2 && e2 >= e3)

let test_equivalent_bandwidth_monotone_in_loss () =
  let m = two_state_source 0.2 0.3 ~low:1. ~high:5. in
  let strict = Eb.equivalent_bandwidth m ~buffer:10. ~target_loss:1e-9 in
  let lax = Eb.equivalent_bandwidth m ~buffer:10. ~target_loss:1e-2 in
  Alcotest.(check bool) "stricter loss needs more" true (strict >= lax)

let test_decay_rate_inverse () =
  let m = two_state_source 0.2 0.3 ~low:1. ~high:5. in
  let rate = 4.0 in
  let theta = Eb.decay_rate m ~rate in
  check_close 1e-6 "EB(decay_rate(c)) = c" rate
    (Eb.effective_bandwidth m ~theta)

let test_decay_rate_extremes () =
  let m = two_state_source 0.2 0.3 ~low:1. ~high:5. in
  Alcotest.(check bool) "at peak infinite" true
    (Float.equal (Eb.decay_rate m ~rate:5.) infinity);
  check_close 1e-12 "below mean zero" 0.
    (Eb.decay_rate m ~rate:(Modulated.mean_rate m *. 0.5))

(* --- Multiscale equivalent bandwidth (formula 9) --- *)

let test_multiscale_formula9 () =
  let ms = Multiscale.fig4_example () in
  let per = Eb.subchain_equivalent_bandwidths ms ~buffer:5. ~target_loss:1e-6 in
  let total = Eb.multiscale_equivalent_bandwidth ms ~buffer:5. ~target_loss:1e-6 in
  check_close 1e-12 "max over subchains" (Array.fold_left Float.max 0. per) total;
  (* The worst subchain (action) should dominate. *)
  Alcotest.(check bool) "action dominates" true (total = per.(2))

let test_multiscale_exceeds_worst_mean () =
  (* Formula (9) implies the needed rate exceeds the max subchain mean. *)
  let ms = Multiscale.fig4_example () in
  let means = Multiscale.subchain_mean_rates ms in
  let worst_mean = Array.fold_left Float.max 0. means in
  let total = Eb.multiscale_equivalent_bandwidth ms ~buffer:50. ~target_loss:1e-6 in
  Alcotest.(check bool) "above max subchain mean" true (total > worst_mean)

let test_multiscale_vs_flattened_mean () =
  (* The multiscale equivalent bandwidth is far above the overall mean —
     the "wasteful static descriptor" effect of Section II. *)
  let ms = Multiscale.fig4_example () in
  let total = Eb.multiscale_equivalent_bandwidth ms ~buffer:20. ~target_loss:1e-6 in
  Alcotest.(check bool) "far above overall mean" true
    (total > 2. *. Multiscale.mean_rate ms)

(* --- Chernoff --- *)

let simple_marginal () = [| (0.7, 1.); (0.3, 5.) |]

let test_chernoff_validate () =
  Chernoff.validate (simple_marginal ());
  Alcotest.check_raises "sum != 1"
    (Invalid_argument "Chernoff: probabilities do not sum to 1") (fun () ->
      Chernoff.validate [| (0.5, 1.) |]);
  Alcotest.check_raises "negative"
    (Invalid_argument "Chernoff: negative probability") (fun () ->
      Chernoff.validate [| (-0.5, 1.); (1.5, 2.) |]);
  Alcotest.check_raises "empty" (Invalid_argument "Chernoff: empty marginal")
    (fun () -> Chernoff.validate [||])

let test_chernoff_mean_max () =
  let m = simple_marginal () in
  check_close 1e-12 "mean" 2.2 (Chernoff.mean m);
  check_close 1e-12 "max" 5. (Chernoff.max_level m);
  (* Zero-probability levels do not count toward the max. *)
  check_close 1e-12 "max ignores p=0" 5.
    (Chernoff.max_level [| (1., 5.); (0., 100.) |])

let test_chernoff_log_mgf () =
  let m = simple_marginal () in
  let direct theta = log ((0.7 *. exp theta) +. (0.3 *. exp (5. *. theta))) in
  List.iter
    (fun theta ->
      check_close 1e-9 "log mgf" (direct theta) (Chernoff.log_mgf m ~theta))
    [ 0.; 0.3; 1.; 2. ]

let test_rate_function_regions () =
  let m = simple_marginal () in
  check_close 1e-12 "zero below mean" 0. (Chernoff.rate_function m 2.);
  Alcotest.(check bool) "infinite above max" true
    (Float.equal (Chernoff.rate_function m 6.) infinity);
  let i = Chernoff.rate_function m 4. in
  Alcotest.(check bool) "positive in between" true (i > 0. && i < infinity)

let test_rate_function_at_max () =
  (* I(max) = -log P(max). *)
  let m = simple_marginal () in
  check_close 1e-4 "at max level" (-.log 0.3) (Chernoff.rate_function m 5.)

let test_overflow_estimate () =
  let m = simple_marginal () in
  let p1 = Chernoff.overflow_estimate m ~n:10 ~capacity_per_call:4. in
  let p2 = Chernoff.overflow_estimate m ~n:100 ~capacity_per_call:4. in
  Alcotest.(check bool) "valid probability" true (p1 > 0. && p1 <= 1.);
  Alcotest.(check bool) "more calls, smaller per-call overflow" true (p2 < p1);
  check_close 1e-12 "above max is impossible" 0.
    (Chernoff.overflow_estimate m ~n:10 ~capacity_per_call:10.)

let test_overflow_vs_exact_binomial () =
  (* For an on/off marginal the Chernoff estimate must upper-bound the
     exact binomial tail and be within a polynomial factor of it. *)
  let p_on = 0.3 in
  let m = [| (1. -. p_on, 0.); (p_on, 1.) |] in
  let n = 40 in
  let c = 0.5 in
  (* P(Binomial(40, 0.3) > 20) exactly. *)
  let log_choose n k =
    let acc = ref 0. in
    for i = 1 to k do
      acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
    done;
    !acc
  in
  let exact = ref 0. in
  for k = 21 to n do
    exact :=
      !exact
      +. exp
           (log_choose n k
           +. (float_of_int k *. log p_on)
           +. (float_of_int (n - k) *. log (1. -. p_on)))
  done;
  let estimate = Chernoff.overflow_estimate m ~n ~capacity_per_call:c in
  Alcotest.(check bool) "upper bound" true (estimate >= !exact *. 0.999);
  Alcotest.(check bool) "same order" true (estimate <= !exact *. 100.)

let test_capacity_for_target () =
  let m = simple_marginal () in
  let n = 50 and target = 1e-6 in
  let c = Chernoff.capacity_for_target m ~n ~target in
  Alcotest.(check bool) "meets target" true
    (Chernoff.overflow_estimate m ~n ~capacity_per_call:c <= target);
  Alcotest.(check bool) "above mean" true (c > Chernoff.mean m);
  Alcotest.(check bool) "below max" true (c <= Chernoff.max_level m)

let test_capacity_decreases_with_n () =
  (* The statistical multiplexing gain: more calls need less per-call
     capacity. *)
  let m = simple_marginal () in
  let c10 = Chernoff.capacity_for_target m ~n:10 ~target:1e-6 in
  let c100 = Chernoff.capacity_for_target m ~n:100 ~target:1e-6 in
  let c1000 = Chernoff.capacity_for_target m ~n:1000 ~target:1e-6 in
  Alcotest.(check bool) "decreasing" true (c10 >= c100 && c100 >= c1000);
  (* And it approaches the mean from above. *)
  Alcotest.(check bool) "approaches mean" true
    (c1000 -. Chernoff.mean m < 0.3 *. (c10 -. Chernoff.mean m))

let test_max_calls_boundary () =
  let m = simple_marginal () in
  let capacity = 100. and target = 1e-3 in
  let n = Chernoff.max_calls m ~capacity ~target in
  Alcotest.(check bool) "nonzero" true (n > 0);
  Alcotest.(check bool) "n fits" true
    (Chernoff.overflow_estimate m ~n
       ~capacity_per_call:(capacity /. float_of_int n)
    <= target);
  Alcotest.(check bool) "n+1 does not fit" true
    (Chernoff.overflow_estimate m ~n:(n + 1)
       ~capacity_per_call:(capacity /. float_of_int (n + 1))
    > target)

let test_max_calls_monotone_in_capacity () =
  let m = simple_marginal () in
  let n1 = Chernoff.max_calls m ~capacity:50. ~target:1e-3 in
  let n2 = Chernoff.max_calls m ~capacity:100. ~target:1e-3 in
  Alcotest.(check bool) "more capacity, more calls" true (n2 >= n1)

let test_max_calls_zero_capacity () =
  let m = simple_marginal () in
  Alcotest.(check int) "no capacity, no calls" 0
    (Chernoff.max_calls m ~capacity:0.5 ~target:1e-3)

(* --- Chernoff.Solver: warm-started fast path --- *)

module Solver = Chernoff.Solver

let test_solver_matches_cold () =
  (* Every solver query must return the exact float of the cold
     module-level function — this is the numerical contract the
     admission fast path relies on. *)
  let m = simple_marginal () in
  let s = Solver.of_marginal m in
  Alcotest.(check int) "levels" 2 (Solver.n_levels s);
  check_close 0. "mean" (Chernoff.mean m) (Solver.mean s);
  check_close 0. "max level" (Chernoff.max_level m) (Solver.max_level s);
  List.iter
    (fun theta ->
      check_close 0. "log mgf bit-identical" (Chernoff.log_mgf m ~theta)
        (Solver.log_mgf s ~theta))
    [ 0.; 0.3; 1.; 2. ];
  List.iter
    (fun c ->
      check_close 0. "rate function bit-identical"
        (Chernoff.rate_function m c) (Solver.rate_function s c))
    [ 1.5; 2.5; 4.; 5. ];
  check_close 0. "overflow bit-identical"
    (Chernoff.overflow_estimate m ~n:20 ~capacity_per_call:4.)
    (Solver.overflow_estimate s ~n:20 ~capacity_per_call:4.);
  check_close 0. "capacity bit-identical"
    (Chernoff.capacity_for_target m ~n:50 ~target:1e-6)
    (Solver.capacity_for_target s ~n:50 ~target:1e-6)

let test_solver_max_calls_warm () =
  (* Repeated queries exercise the warm-started integer search; each
     answer must equal the cold bisection. *)
  let m = simple_marginal () in
  let s = Solver.of_marginal m in
  List.iter
    (fun (capacity, target) ->
      Alcotest.(check int)
        (Printf.sprintf "capacity %.0f target %g" capacity target)
        (Chernoff.max_calls m ~capacity ~target)
        (Solver.max_calls s ~capacity ~target))
    [
      (100., 1e-3); (100., 1e-3); (101., 1e-3); (99., 1e-3); (200., 1e-3);
      (50., 1e-3); (100., 1e-6); (100., 1e-2); (0.5, 1e-3); (1000., 1e-4);
    ]

let test_solver_weighted_load () =
  (* reset/push/commit_weighted must normalize raw weights into the same
     distribution as the cold marginal. *)
  let s = Solver.create () in
  Solver.reset s;
  Solver.push s ~level:1. ~weight:7.;
  Solver.push s ~level:3. ~weight:0.;
  (* zero weight skipped *)
  Solver.push s ~level:5. ~weight:3.;
  Solver.commit_weighted s;
  Alcotest.(check int) "zero-weight level skipped" 2 (Solver.n_levels s);
  let m = simple_marginal () in
  check_close 0. "normalized mean" (Chernoff.mean m) (Solver.mean s);
  Alcotest.(check int) "same admission limit"
    (Chernoff.max_calls m ~capacity:100. ~target:1e-3)
    (Solver.max_calls s ~capacity:100. ~target:1e-3)

let test_solver_set_marginal_reuse () =
  (* Reloading a solver must not leak state from the previous marginal. *)
  let s = Solver.of_marginal [| (0.5, 1.); (0.5, 9.) |] in
  ignore (Solver.max_calls s ~capacity:80. ~target:1e-4);
  let m = simple_marginal () in
  Solver.set_marginal s m;
  Alcotest.(check int) "fresh answer after reload"
    (Chernoff.max_calls m ~capacity:80. ~target:1e-4)
    (Solver.max_calls s ~capacity:80. ~target:1e-4);
  let st = Solver.stats s in
  Alcotest.(check bool) "counters accumulate" true
    (st.Solver.mgf_evals > 0 && st.Solver.fits_evals > 0)

(* --- Properties --- *)

let marginal_gen =
  QCheck.Gen.(
    let* k = int_range 2 6 in
    let* ws = array_size (return k) (float_range 0.05 1.) in
    let* levels = array_size (return k) (float_range 0.1 10.) in
    let total = Array.fold_left ( +. ) 0. ws in
    Array.sort compare levels;
    (* Make levels strictly ascending to keep them distinct. *)
    Array.iteri (fun i l -> levels.(i) <- l +. (0.01 *. float_of_int i)) levels;
    return (Array.init k (fun i -> (ws.(i) /. total, levels.(i)))))

let prop_rate_function_nonneg =
  QCheck.Test.make ~name:"rate function is nonnegative" ~count:200
    (QCheck.make marginal_gen) (fun m ->
      let c = Chernoff.mean m +. (0.5 *. (Chernoff.max_level m -. Chernoff.mean m)) in
      Chernoff.rate_function m c >= 0.)

let prop_overflow_decreasing_in_c =
  QCheck.Test.make ~name:"overflow decreasing in capacity" ~count:200
    (QCheck.make marginal_gen) (fun m ->
      let mu = Chernoff.mean m and top = Chernoff.max_level m in
      let c1 = mu +. (0.3 *. (top -. mu)) in
      let c2 = mu +. (0.6 *. (top -. mu)) in
      Chernoff.overflow_estimate m ~n:20 ~capacity_per_call:c2
      <= Chernoff.overflow_estimate m ~n:20 ~capacity_per_call:c1 +. 1e-12)

let prop_solver_decisions_equal_cold =
  (* Property (b) of the admission fast path: a single warm solver
     answering a random query sequence gives the same admission limits
     as the cold bisection for every query — warm starts change probe
     points, never answers. *)
  let gen =
    QCheck.Gen.(
      let* m = marginal_gen in
      let* queries =
        list_size (int_range 1 20)
          (pair (float_range 0.5 500.) (oneofl [ 1e-2; 1e-3; 1e-4; 1e-6 ]))
      in
      return (m, queries))
  in
  QCheck.Test.make ~name:"warm solver equals cold max_calls" ~count:100
    (QCheck.make gen) (fun (m, queries) ->
      let s = Chernoff.Solver.of_marginal m in
      List.for_all
        (fun (capacity, target) ->
          Chernoff.Solver.max_calls s ~capacity ~target
          = Chernoff.max_calls m ~capacity ~target)
        queries)

let prop_eb_between_mean_and_peak =
  QCheck.Test.make ~name:"effective bandwidth in [mean, peak]" ~count:100
    QCheck.(pair (float_range 0.05 0.95) (float_range 0.05 0.95))
    (fun (p, q) ->
      let m = two_state_source p q ~low:1. ~high:9. in
      let eb = Eb.effective_bandwidth m ~theta:1. in
      eb >= Modulated.mean_rate m -. 1e-6
      && eb <= Modulated.peak_rate m +. 1e-6)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_effbw"
    [
      ( "log_mgf",
        [
          Alcotest.test_case "zero" `Quick test_log_mgf_zero;
          Alcotest.test_case "closed form" `Quick test_log_mgf_closed_form;
          Alcotest.test_case "constant source" `Quick test_log_mgf_constant_source;
        ] );
      ( "effective_bandwidth",
        [
          Alcotest.test_case "limits" `Quick test_effective_bandwidth_limits;
          Alcotest.test_case "monotone" `Quick test_effective_bandwidth_monotone;
          Alcotest.test_case "buffer monotonicity" `Quick
            test_equivalent_bandwidth_monotone_in_buffer;
          Alcotest.test_case "loss monotonicity" `Quick
            test_equivalent_bandwidth_monotone_in_loss;
          Alcotest.test_case "decay rate inverse" `Quick test_decay_rate_inverse;
          Alcotest.test_case "decay rate extremes" `Quick test_decay_rate_extremes;
        ] );
      ( "multiscale",
        [
          Alcotest.test_case "formula 9" `Quick test_multiscale_formula9;
          Alcotest.test_case "exceeds worst mean" `Quick
            test_multiscale_exceeds_worst_mean;
          Alcotest.test_case "static descriptor waste" `Quick
            test_multiscale_vs_flattened_mean;
        ] );
      ( "chernoff",
        [
          Alcotest.test_case "validate" `Quick test_chernoff_validate;
          Alcotest.test_case "mean/max" `Quick test_chernoff_mean_max;
          Alcotest.test_case "log mgf" `Quick test_chernoff_log_mgf;
          Alcotest.test_case "rate function regions" `Quick
            test_rate_function_regions;
          Alcotest.test_case "rate function at max" `Quick test_rate_function_at_max;
          Alcotest.test_case "overflow estimate" `Quick test_overflow_estimate;
          Alcotest.test_case "vs exact binomial" `Quick
            test_overflow_vs_exact_binomial;
          Alcotest.test_case "capacity for target" `Quick test_capacity_for_target;
          Alcotest.test_case "SMG in n" `Quick test_capacity_decreases_with_n;
          Alcotest.test_case "max calls boundary" `Quick test_max_calls_boundary;
          Alcotest.test_case "max calls monotone" `Quick
            test_max_calls_monotone_in_capacity;
          Alcotest.test_case "max calls zero capacity" `Quick
            test_max_calls_zero_capacity;
        ] );
      ( "solver",
        [
          Alcotest.test_case "matches cold" `Quick test_solver_matches_cold;
          Alcotest.test_case "warm max calls" `Quick test_solver_max_calls_warm;
          Alcotest.test_case "weighted load" `Quick test_solver_weighted_load;
          Alcotest.test_case "set_marginal reuse" `Quick
            test_solver_set_marginal_reuse;
        ] );
      ( "properties",
        q
          [
            prop_rate_function_nonneg;
            prop_overflow_decreasing_in_c;
            prop_eb_between_mean_and_peak;
            prop_solver_decisions_equal_cold;
          ] );
    ]
