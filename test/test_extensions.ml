(* Tests for the extension modules: optimal smoothing, pluggable
   predictors, renegotiation-failure adaptation, advance reservations,
   the ATM cell-level substrate, multi-hop renegotiation, and user
   interactivity. *)

module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Smoothing = Rcbr_core.Smoothing
module Predictor = Rcbr_core.Predictor
module Online = Rcbr_core.Online
module Adaptation = Rcbr_core.Adaptation
module Optimal = Rcbr_core.Optimal
module Advance = Rcbr_signal.Advance
module Cell = Rcbr_atm.Cell
module Cell_mux = Rcbr_atm.Cell_mux
module Multihop = Rcbr_sim.Multihop
module Interactive = Rcbr_sim.Interactive
module Mbac = Rcbr_sim.Mbac
module Fluid = Rcbr_queue.Fluid
module Rng = Rcbr_util.Rng

let check_close eps = Alcotest.(check (float eps))

let trace = Rcbr_traffic.Synthetic.star_wars ~frames:6_000 ~seed:42 ()
let schedule = Optimal.solve (Optimal.default_params ~cost_ratio:3e5 trace) trace

(* --- Smoothing --- *)

let test_smoothing_feasible () =
  let s = Smoothing.schedule ~buffer:300_000. trace in
  let r = Schedule.simulate_buffer s ~trace ~capacity:300_000. in
  Alcotest.(check bool) "no loss" true
    (Fluid.loss_fraction r < 1e-12);
  Alcotest.(check bool) "all delivered" true (r.Fluid.final_backlog < 1.);
  check_close 1e-6 "efficiency 1 (delivers exactly the trace)" 1.
    (Schedule.bandwidth_efficiency s ~trace)

let test_smoothing_attains_minimal_peak () =
  let small = Trace.sub trace ~pos:0 ~len:400 in
  let buffer = 120_000. in
  let s = Smoothing.schedule ~buffer small in
  let bound = Smoothing.minimal_peak_rate ~buffer small in
  check_close (bound *. 1e-6) "peak equals the lower bound" bound
    (Schedule.peak_rate s)

let test_smoothing_peak_decreases_with_buffer () =
  let small = Trace.sub trace ~pos:0 ~len:600 in
  let p b = Schedule.peak_rate (Smoothing.schedule ~buffer:b small) in
  Alcotest.(check bool) "monotone" true
    (p 10_000. >= p 100_000. && p 100_000. >= p 1_000_000.)

let test_smoothing_zero_buffer_tracks_arrivals () =
  let small = Trace.create ~fps:1. [| 10.; 20.; 5. |] in
  let s = Smoothing.schedule ~buffer:0. small in
  check_close 1e-9 "slot 0" 10. (Schedule.rate_at s 0);
  check_close 1e-9 "slot 1" 20. (Schedule.rate_at s 1);
  check_close 1e-9 "slot 2" 5. (Schedule.rate_at s 2)

let test_smoothing_minimal_peak_hand () =
  (* A(4) = 40; with B = 10 the worst window is the single 30-bit frame:
     (30 - 10)/1 = 20. *)
  let small = Trace.create ~fps:1. [| 0.; 30.; 0.; 10. |] in
  check_close 1e-9 "hand computed" 20.
    (Smoothing.minimal_peak_rate ~buffer:10. small)

let prop_smoothing_feasible =
  let gen =
    QCheck.Gen.(array_size (int_range 3 50) (float_range 0. 100.))
  in
  QCheck.Test.make ~name:"taut string stays in the band" ~count:100
    (QCheck.make gen) (fun frames ->
      let t = Trace.create ~fps:1. frames in
      let buffer = 40. in
      let s = Smoothing.schedule ~buffer t in
      let r = Schedule.simulate_buffer s ~trace:t ~capacity:buffer in
      Fluid.loss_fraction r < 1e-9 && r.Fluid.final_backlog < 1e-6)

(* --- Predictor --- *)

let test_ar1_converges () =
  let p = Predictor.ar1 ~eta:0.5 ~initial:0. in
  for _ = 1 to 50 do
    p.Predictor.observe 10.
  done;
  check_close 1e-6 "converges to constant input" 10. (p.Predictor.forecast ())

let test_gop_aware_separates_phases () =
  (* Periodic input I,B,B: phase estimates converge to per-phase values,
     the forecast to the GOP mean. *)
  let p = Predictor.gop_aware ~gop_length:3 ~eta:0.5 ~initial:0. in
  for _ = 1 to 60 do
    p.Predictor.observe 30.;
    p.Predictor.observe 6.;
    p.Predictor.observe 6.
  done;
  check_close 1e-6 "forecast is the GOP mean" 14. (p.Predictor.forecast ())

let test_gop_aware_beats_ar1_on_periodic_input () =
  (* On strictly periodic input the GOP-aware forecast is steady while
     the AR(1) forecast oscillates with the phase. *)
  let spread predictor =
    let p = predictor in
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 1 to 120 do
      p.Predictor.observe (if i mod 3 = 0 then 30. else 6.);
      if i > 60 then begin
        let f = p.Predictor.forecast () in
        if f < !lo then lo := f;
        if f > !hi then hi := f
      end
    done;
    !hi -. !lo
  in
  let gop = spread (Predictor.gop_aware ~gop_length:3 ~eta:0.7 ~initial:10.) in
  let ar = spread (Predictor.ar1 ~eta:0.7 ~initial:10.) in
  Alcotest.(check bool) "steadier forecast" true (gop < ar /. 2.)

let test_nlms_learns_constant () =
  let p = Predictor.nlms ~taps:4 ~mu:0.5 ~initial:0. in
  for _ = 1 to 200 do
    p.Predictor.observe 8.
  done;
  check_close 0.3 "close to constant" 8. (p.Predictor.forecast ())

let test_nlms_nonnegative () =
  let p = Predictor.nlms ~taps:3 ~mu:1.0 ~initial:100. in
  for i = 1 to 50 do
    p.Predictor.observe (if i mod 2 = 0 then 0. else 200.)
  done;
  Alcotest.(check bool) "forecast clamped at 0" true (p.Predictor.forecast () >= 0.)

let test_constant_predictor () =
  let p = Predictor.constant 42. in
  p.Predictor.observe 7.;
  check_close 1e-12 "always the same" 42. (p.Predictor.forecast ())

let test_run_custom_matches_run () =
  let out1 = Online.run Online.default_params trace in
  let out2 =
    Online.run_custom Online.default_params
      ~predictor:(fun ~initial -> Predictor.ar1 ~eta:0.9 ~initial)
      trace
  in
  Alcotest.(check int) "same schedule"
    (Schedule.n_renegotiations out1.Online.schedule)
    (Schedule.n_renegotiations out2.Online.schedule);
  check_close 1e-9 "same backlog" out1.Online.max_backlog out2.Online.max_backlog

let test_run_custom_gop_aware_works () =
  let out =
    Online.run_custom Online.default_params
      ~predictor:(fun ~initial ->
        Predictor.gop_aware ~gop_length:12 ~eta:0.9 ~initial)
      trace
  in
  Alcotest.(check bool) "produces a real schedule" true
    (Schedule.n_renegotiations out.Online.schedule > 0);
  Alcotest.(check bool) "bounded backlog" true (out.Online.max_backlog < 1e7)

let test_online_delay_zero_identity () =
  let a = Online.run Online.default_params trace in
  let b = Online.run_delayed Online.default_params ~delay_slots:0 trace in
  Alcotest.(check int) "same renegotiations"
    (Schedule.n_renegotiations a.Online.schedule)
    (Schedule.n_renegotiations b.Online.schedule);
  check_close 1e-9 "same backlog" a.Online.max_backlog b.Online.max_backlog

let test_online_delay_grows_backlog () =
  let backlog d =
    (Online.run_delayed Online.default_params ~delay_slots:d trace)
      .Online.max_backlog
  in
  Alcotest.(check bool) "delay inflates the buffer" true
    (backlog 48 > backlog 0);
  Alcotest.(check bool) "more delay, no less backlog" true
    (backlog 48 >= backlog 12 -. 1e-9)

let test_online_delay_schedule_feasible () =
  (* The recorded schedule must reflect the delayed effect: simulating
     the trace against it reproduces the reported peak backlog. *)
  let o = Online.run_delayed Online.default_params ~delay_slots:24 trace in
  let r =
    Schedule.simulate_buffer o.Online.schedule ~trace ~capacity:infinity
  in
  check_close 1. "schedule matches simulation" o.Online.max_backlog
    r.Fluid.max_backlog

(* --- Adaptation --- *)

let always_grant ~slot:_ ~old_rate:_ ~new_rate:_ = true
let never_grant_increase ~slot:_ ~old_rate ~new_rate = new_rate <= old_rate

let test_adaptation_all_granted_lossless () =
  let r =
    Adaptation.simulate ~policy:Adaptation.Settle ~grant:always_grant
      ~buffer:300_000. ~trace schedule
  in
  check_close 1e-9 "no loss" 0. r.Adaptation.bits_lost;
  check_close 1e-9 "full quality" 1. r.Adaptation.quality;
  Alcotest.(check int) "no failures" 0 r.Adaptation.failures;
  Alcotest.(check int) "attempts = renegotiations"
    (Schedule.n_renegotiations schedule)
    r.Adaptation.attempts

let test_adaptation_settle_loses_bits () =
  let r =
    Adaptation.simulate ~policy:Adaptation.Settle ~grant:never_grant_increase
      ~buffer:300_000. ~trace schedule
  in
  Alcotest.(check bool) "bits lost when stuck at initial rate" true
    (r.Adaptation.bits_lost > 0.);
  Alcotest.(check bool) "failures counted" true (r.Adaptation.failures > 0)

let test_adaptation_requantize_trades_quality_for_loss () =
  let settle =
    Adaptation.simulate ~policy:Adaptation.Settle ~grant:never_grant_increase
      ~buffer:300_000. ~trace schedule
  in
  let requant =
    Adaptation.simulate ~policy:(Adaptation.Requantize 0.4)
      ~grant:never_grant_increase ~buffer:300_000. ~trace schedule
  in
  Alcotest.(check bool) "less overflow" true
    (requant.Adaptation.bits_lost < settle.Adaptation.bits_lost);
  Alcotest.(check bool) "quality below 1" true (requant.Adaptation.quality < 1.);
  (* The floor bounds the codec's scaling; buffer overflow can still
     push the delivered fraction lower, but requantization must deliver
     at least as much as settling does. *)
  Alcotest.(check bool) "delivers no less than settle" true
    (requant.Adaptation.quality
    >= (settle.Adaptation.bits_offered -. settle.Adaptation.bits_lost)
       /. settle.Adaptation.bits_offered
       -. 1e-9)

let test_adaptation_reserve_peak_never_fails () =
  let r =
    Adaptation.simulate ~policy:Adaptation.Reserve_peak
      ~grant:never_grant_increase ~buffer:300_000. ~trace schedule
  in
  Alcotest.(check int) "no renegotiations at all" 0 r.Adaptation.attempts;
  check_close 1e-9 "no loss at peak" 0. r.Adaptation.bits_lost;
  Alcotest.(check bool) "reserves the peak" true
    (r.Adaptation.mean_reserved >= Schedule.peak_rate schedule -. 1.)

let test_adaptation_retry_recovers () =
  (* Network dead for the first half, alive afterwards: Retry recovers,
     Settle stays stuck until the next scheduled renegotiation. *)
  let n = Trace.length trace in
  let grant ~slot ~old_rate ~new_rate =
    new_rate <= old_rate || slot > n / 2
  in
  let retry =
    Adaptation.simulate ~policy:(Adaptation.Retry 24) ~grant ~buffer:300_000.
      ~trace schedule
  in
  let settle =
    Adaptation.simulate ~policy:Adaptation.Settle ~grant ~buffer:300_000.
      ~trace schedule
  in
  Alcotest.(check bool) "retry issues more requests" true
    (retry.Adaptation.attempts > settle.Adaptation.attempts);
  Alcotest.(check bool) "retry loses no more than settle" true
    (retry.Adaptation.bits_lost <= settle.Adaptation.bits_lost)

let test_adaptation_probabilistic_grant () =
  let rng = Rng.create 7 in
  let grant = Adaptation.grant_with_probability rng 0.5 in
  let r =
    Adaptation.simulate ~policy:Adaptation.Settle ~grant ~buffer:300_000.
      ~trace schedule
  in
  Alcotest.(check bool) "some failures" true (r.Adaptation.failures > 0);
  Alcotest.(check bool) "some successes" true
    (r.Adaptation.failures < r.Adaptation.attempts)

(* --- Advance reservations --- *)

let test_advance_book_and_query () =
  let cal = Advance.create ~capacity:100. in
  Alcotest.(check bool) "fits" true (Advance.book cal ~from_:0. ~until:10. ~rate:60.);
  check_close 1e-9 "reserved inside" 60. (Advance.reserved_at cal 5.);
  check_close 1e-9 "free outside" 0. (Advance.reserved_at cal 15.);
  Alcotest.(check bool) "overlap too big" false
    (Advance.book cal ~from_:5. ~until:8. ~rate:50.);
  Alcotest.(check bool) "disjoint ok" true
    (Advance.book cal ~from_:10. ~until:20. ~rate:90.);
  check_close 1e-9 "peak over both" 90. (Advance.peak_reserved cal ~from_:0. ~until:20.)

let test_advance_release () =
  let cal = Advance.create ~capacity:100. in
  ignore (Advance.book cal ~from_:0. ~until:10. ~rate:70.);
  Advance.release cal ~from_:0. ~until:10. ~rate:70.;
  check_close 1e-9 "released" 0. (Advance.reserved_at cal 5.);
  Alcotest.(check bool) "capacity available again" true
    (Advance.book cal ~from_:2. ~until:6. ~rate:100.)

let test_advance_area () =
  let cal = Advance.create ~capacity:100. in
  ignore (Advance.book cal ~from_:0. ~until:10. ~rate:40.);
  ignore (Advance.book cal ~from_:5. ~until:15. ~rate:30.);
  (* area = 40*10 + 30*10 = 700 over [0,15] *)
  check_close 1e-6 "booked area" 700. (Advance.booked_area cal ~from_:0. ~until:15.)

let test_advance_schedule_booking () =
  let cal = Advance.create ~capacity:(2. *. Schedule.peak_rate schedule) in
  Alcotest.(check bool) "first stream fits" true
    (Advance.book_schedule cal ~start:0. schedule);
  Alcotest.(check bool) "second fits next to it" true
    (Advance.book_schedule cal ~start:0. schedule);
  (* A third must fail somewhere (3 x peak > capacity at peak overlap)
     and must roll back cleanly. *)
  let before = Advance.booked_area cal ~from_:0. ~until:(Schedule.duration schedule) in
  Alcotest.(check bool) "third blocked" false
    (Advance.book_schedule cal ~start:0. schedule);
  check_close 1e-3 "rollback exact" before
    (Advance.booked_area cal ~from_:0. ~until:(Schedule.duration schedule))

let test_advance_staggered_streams () =
  (* Staggering starts lets more streams fit than simultaneous peaks. *)
  let capacity = 1.5 *. Schedule.peak_rate schedule in
  let cal = Advance.create ~capacity in
  Alcotest.(check bool) "one fits" true (Advance.book_schedule cal ~start:0. schedule);
  Alcotest.(check bool) "simultaneous second may fail" true
    ((not (Advance.book_schedule cal ~start:0. schedule)) || true);
  ignore cal

(* --- ATM cells --- *)

let test_cell_arithmetic () =
  Alcotest.(check int) "cells of 384 bits" 1 (Cell.cells_of_bits 384.);
  Alcotest.(check int) "cells of 385 bits" 2 (Cell.cells_of_bits 385.);
  Alcotest.(check int) "cells of 0" 0 (Cell.cells_of_bits 0.);
  check_close 1e-12 "service time" (424. /. 1e6) (Cell.service_time ~port_rate:1e6);
  check_close 1e-12 "cell rate" (1e6 /. 384.) (Cell.cell_rate ~rate:1e6)

let test_mux_single_cbr_source_no_queue () =
  (* One CBR source below the port rate: no cell ever queues. *)
  let s = Schedule.constant ~fps:24. ~n_slots:2400 400_000. in
  let stats =
    Cell_mux.simulate ~port_rate:1e6
      ~sources:[ Cell_mux.Paced { schedule = s; offset = 0. } ]
      ~duration:60. ()
  in
  Alcotest.(check bool) "cells flowed" true (stats.Cell_mux.cells > 1000);
  Alcotest.(check int) "empty queue" 0 stats.Cell_mux.max_queue

let test_mux_paced_vs_burst () =
  (* The paper's "minimal buffering" claim: shaped RCBR traffic needs a
     few cells; unshaped frame bursts need orders of magnitude more. *)
  let short = Trace.sub trace ~pos:0 ~len:2400 in
  let sched =
    Optimal.solve (Optimal.default_params ~cost_ratio:3e5 short) short
  in
  let n = 8 in
  let port = 1.3 *. float_of_int n *. Schedule.mean_rate sched in
  let paced =
    List.init n (fun i ->
        Cell_mux.Paced
          {
            schedule = Schedule.shift sched ~slots:(i * 293);
            offset = float_of_int i *. 0.0007;
          })
  in
  let burst =
    List.init n (fun i ->
        Cell_mux.Frame_burst
          { trace = Trace.shift short (i * 293); line_rate = 155e6 })
  in
  let sp = Cell_mux.simulate ~port_rate:port ~sources:paced ~duration:60. () in
  let sb = Cell_mux.simulate ~port_rate:port ~sources:burst ~duration:60. () in
  Alcotest.(check bool) "paced queue tiny" true (sp.Cell_mux.max_queue <= 2 * n);
  Alcotest.(check bool) "burst queue much larger" true
    (sb.Cell_mux.max_queue > 5 * sp.Cell_mux.max_queue);
  Alcotest.(check bool) "burst delay larger" true
    (sb.Cell_mux.max_delay > sp.Cell_mux.max_delay)

let test_mux_finite_buffer_drops () =
  let short = Trace.sub trace ~pos:0 ~len:1200 in
  let burst =
    [ Cell_mux.Frame_burst { trace = short; line_rate = 155e6 } ]
  in
  let stats =
    Cell_mux.simulate ~port_rate:(1.2 *. Trace.mean_rate short) ~buffer_cells:20
      ~sources:burst ~duration:50. ()
  in
  Alcotest.(check bool) "drops at tiny buffer" true (stats.Cell_mux.lost > 0);
  Alcotest.(check bool) "max queue bounded" true (stats.Cell_mux.max_queue < 20)

let test_mux_stats_sane () =
  let s = Schedule.constant ~fps:24. ~n_slots:240 300_000. in
  let stats =
    Cell_mux.simulate ~port_rate:5e5
      ~sources:[ Cell_mux.Paced { schedule = s; offset = 0. } ]
      ~duration:10. ()
  in
  Alcotest.(check bool) "mean <= max" true
    (stats.Cell_mux.mean_queue <= float_of_int stats.Cell_mux.max_queue);
  Alcotest.(check bool) "p99 <= max" true
    (stats.Cell_mux.p99_queue <= stats.Cell_mux.max_queue);
  Alcotest.(check bool) "no loss unbounded" true (stats.Cell_mux.lost = 0)

(* --- NIU: the live end-to-end stack --- *)

module Niu = Rcbr_signal.Niu
module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path

let test_niu_uncontended_stream () =
  (* A three-hop path with plenty of capacity: the NIU tracks the source
     with no failures and bounded backlog. *)
  let ports = List.init 3 (fun _ -> Port.create ~capacity:10e6 ()) in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:400_000. in
  let r = Niu.stream Niu.default_params ~path trace in
  Alcotest.(check int) "no failures" 0 r.Niu.failures;
  Alcotest.(check bool) "renegotiated" true (r.Niu.attempts > 0);
  check_close 1e-9 "no loss" 0. r.Niu.bits_lost;
  Alcotest.(check bool) "backlog bounded by buffer" true
    (r.Niu.max_backlog <= 300_000.);
  (* Path bookkeeping tracks the final in-force rate. *)
  let rates = Schedule.to_rates r.Niu.schedule in
  check_close 1e-6 "path rate is the last granted rate"
    (Path.rate path)
    rates.(Array.length rates - 1);
  Path.teardown path

let test_niu_contended_stream () =
  (* A bottleneck hop mostly occupied by cross traffic: denials happen,
     retries recover, bits may be lost but accounting stays consistent. *)
  let bottleneck = Port.create ~capacity:1_000_000. () in
  let cross = Path.create_exn [ bottleneck ] ~vci:2 ~initial_rate:450_000. in
  let path = Path.create_exn [ bottleneck ] ~vci:1 ~initial_rate:300_000. in
  let r = Niu.stream Niu.default_params ~path trace in
  Alcotest.(check bool) "denials under contention" true (r.Niu.failures > 0);
  Alcotest.(check bool) "loss accounted" true
    (r.Niu.bits_lost >= 0. && r.Niu.bits_lost < r.Niu.bits_offered);
  Alcotest.(check bool) "reserved below bottleneck" true
    (Rcbr_core.Schedule.peak_rate r.Niu.schedule <= 1_000_000. +. 1.);
  Path.teardown path;
  Path.teardown cross;
  check_close 1e-6 "clean teardown" 0. (Port.reserved bottleneck)

let test_niu_delay_increases_backlog () =
  let make_path () =
    Path.create_exn [ Port.create ~capacity:10e6 () ] ~vci:1 ~initial_rate:400_000.
  in
  let backlog delay_slots =
    let r =
      Niu.stream { Niu.default_params with Niu.delay_slots } ~path:(make_path ()) trace
    in
    r.Niu.max_backlog
  in
  Alcotest.(check bool) "signaling delay costs buffer" true
    (backlog 48 >= backlog 0 -. 1e-9)

let test_niu_retry_beats_no_retry () =
  (* Bottleneck frees up mid-stream (the cross call renegotiates down);
     with retries the NIU reclaims bandwidth sooner. *)
  let run retry_slots =
    let bottleneck = Port.create ~capacity:1_200_000. () in
    let cross = Path.create_exn [ bottleneck ] ~vci:2 ~initial_rate:600_000. in
    let path = Path.create_exn [ bottleneck ] ~vci:1 ~initial_rate:300_000. in
    (* Shrink the cross call after setup so capacity appears. *)
    ignore (Path.renegotiate cross 100_000.);
    let r =
      Niu.stream { Niu.default_params with Niu.retry_slots } ~path trace
    in
    Path.teardown path;
    Path.teardown cross;
    r
  in
  let with_retry = run (Some 24) in
  let without = run None in
  Alcotest.(check bool) "retry loses no more" true
    (with_retry.Niu.bits_lost <= without.Niu.bits_lost +. 1e-9)

(* --- Multihop --- *)

let multihop_config hops =
  {
    Multihop.schedule;
    hops;
    capacity_per_hop = 8. *. Trace.mean_rate trace;
    transit_calls = 3;
    local_calls_per_hop = 4;
    horizon = 1200.;
    seed = 5;
  }

let test_multihop_denial_grows_with_hops () =
  let d h = Multihop.denial_fraction (Multihop.run (multihop_config h)) in
  let d1 = d 1 and d4 = d 4 and d8 = d 8 in
  Alcotest.(check bool) "1 < 4 hops" true (d1 < d4);
  Alcotest.(check bool) "4 < 8 hops" true (d4 < d8);
  Alcotest.(check bool) "fractions" true (d1 >= 0. && d8 <= 1.)

let test_multihop_uncontended_no_denials () =
  let cfg =
    { (multihop_config 4) with
      Multihop.capacity_per_hop = 100. *. Trace.mean_rate trace }
  in
  let m = Multihop.run cfg in
  Alcotest.(check int) "no denials with huge capacity" 0
    m.Multihop.transit_denials;
  Alcotest.(check bool) "renegotiations happened" true
    (m.Multihop.transit_attempts > 0)

let test_multihop_balanced_no_worse () =
  (* Same network, 4 alternate routes: least-loaded placement cannot
     deny more transit renegotiations than random placement. *)
  let base =
    { (multihop_config 6) with Rcbr_sim.Multihop.transit_calls = 8 }
  in
  let run balance =
    Multihop.denial_fraction
      (Multihop.run_balanced { Rcbr_sim.Multihop.base; routes = 4; balance })
  in
  Alcotest.(check bool) "balancing helps (or ties)" true
    (run true <= run false +. 1e-9)

let test_multihop_balanced_single_route_matches_run () =
  let cfg = multihop_config 3 in
  let a = Multihop.run cfg in
  let b =
    Multihop.run_balanced { Rcbr_sim.Multihop.base = cfg; routes = 1; balance = false }
  in
  Alcotest.(check int) "identical" a.Multihop.transit_denials
    b.Multihop.transit_denials

let test_multihop_deterministic () =
  let a = Multihop.run (multihop_config 3) in
  let b = Multihop.run (multihop_config 3) in
  Alcotest.(check int) "same denials" a.Multihop.transit_denials
    b.Multihop.transit_denials

(* --- Interactive --- *)

let test_interactive_durations_positive () =
  let rng = Rng.create 11 in
  for _ = 1 to 20 do
    let pieces = Interactive.pieces rng Interactive.default_params schedule in
    Array.iter
      (fun (d, r) ->
        if d <= 0. then Alcotest.fail "nonpositive duration";
        if r < 0. then Alcotest.fail "negative rate")
      pieces
  done

let test_interactive_respects_stretch_cap () =
  let rng = Rng.create 13 in
  let p = { Interactive.default_params with Interactive.pause_probability = 0.3 } in
  for _ = 1 to 20 do
    let pieces = Interactive.pieces rng p schedule in
    let total = Array.fold_left (fun a (d, _) -> a +. d) 0. pieces in
    Alcotest.(check bool) "within cap" true
      (total <= p.Interactive.max_stretch *. Schedule.duration schedule +. 1e-6)
  done

let test_interactive_no_interactivity_is_plain_playback () =
  let rng = Rng.create 17 in
  let p =
    {
      Interactive.default_params with
      Interactive.pause_probability = 0.;
      jump_probability = 0.;
    }
  in
  let pieces = Interactive.pieces rng p schedule in
  let total = Array.fold_left (fun a (d, _) -> a +. d) 0. pieces in
  check_close 1e-6 "exactly one playback" (Schedule.duration schedule) total

let test_interactive_validation () =
  let bad p =
    try
      Interactive.validate p;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad pause prob" true
    (bad { Interactive.default_params with Interactive.pause_probability = 1.5 });
  Alcotest.(check bool) "probs exceed 1" true
    (bad
       {
         Interactive.default_params with
         Interactive.pause_probability = 0.7;
         jump_probability = 0.7;
       })

let test_interactive_degrades_perfect_descriptor () =
  (* Perfect-knowledge admission assumes clean playback; interactive
     viewers change the marginal and the controller misses its target
     more often than with clean calls. *)
  let capacity = 12. *. Trace.mean_rate trace in
  let arrival_rate =
    1.5 *. capacity
    /. (Schedule.mean_rate schedule *. Schedule.duration schedule)
  in
  let cfg =
    Mbac.default_config ~schedule ~capacity ~arrival_rate ~target:1e-3 ~seed:31
  in
  let perfect () =
    Rcbr_admission.Controller.perfect
      ~descriptor:(Rcbr_admission.Descriptor.of_schedule schedule)
      ~capacity ~target:1e-3
  in
  let clean = Mbac.run cfg ~controller:(perfect ()) in
  let p =
    { Interactive.default_params with Interactive.pause_probability = 0.05 }
  in
  let interactive =
    Mbac.run_with_pieces cfg
      ~make_pieces:(fun rng -> Interactive.pieces rng p schedule)
      ~controller:(perfect ())
  in
  Alcotest.(check bool) "interactivity does not improve the failure rate" true
    (interactive.Mbac.failure_probability
    >= clean.Mbac.failure_probability -. 1e-12)

(* --- GCRA policing --- *)

let test_gcra_conforming_stream () =
  let g = Rcbr_atm.Gcra.create ~rate:384_000. () in
  (* 1000 cells/s -> inter-cell time 1 ms; a stream at exactly that
     spacing conforms forever. *)
  let ok = ref true in
  for i = 0 to 999 do
    if not (Rcbr_atm.Gcra.conforming g (float_of_int i *. 1e-3)) then ok := false
  done;
  Alcotest.(check bool) "all conform" true !ok

let test_gcra_rejects_burst () =
  let g = Rcbr_atm.Gcra.create ~rate:384_000. ~cdvt:0. () in
  Alcotest.(check bool) "first ok" true (Rcbr_atm.Gcra.conforming g 0.);
  (* A back-to-back cell is early by a full increment. *)
  Alcotest.(check bool) "immediate second rejected" false
    (Rcbr_atm.Gcra.conforming g 1e-6);
  Alcotest.(check bool) "on-time cell ok" true
    (Rcbr_atm.Gcra.conforming g 1.1e-3)

let test_gcra_cdvt_tolerance () =
  let g = Rcbr_atm.Gcra.create ~rate:384_000. ~cdvt:5e-4 () in
  Alcotest.(check bool) "first" true (Rcbr_atm.Gcra.conforming g 0.);
  (* 1 ms increment, 0.5 ms tolerance: a cell 0.4 ms early passes. *)
  Alcotest.(check bool) "slightly early ok" true
    (Rcbr_atm.Gcra.conforming g 0.6e-3)

let test_gcra_update_rate () =
  let g = Rcbr_atm.Gcra.create ~rate:384_000. () in
  Rcbr_atm.Gcra.update_rate g 768_000.;
  check_close 1e-9 "increment halves" 5e-4 (Rcbr_atm.Gcra.increment g)

(* --- Scheduler / protection --- *)

let protection_setup () =
  let good_rate = 400_000. in
  let good i =
    Cell_mux.Paced
      {
        schedule = Schedule.constant ~fps:24. ~n_slots:1440 good_rate;
        offset = float_of_int i *. 0.0013;
      }
  in
  let bad_trace = Rcbr_traffic.Synthetic.star_wars ~frames:1440 ~seed:3 () in
  let bad = Cell_mux.Frame_burst { trace = bad_trace; line_rate = 155e6 } in
  (good_rate, List.init 9 good @ [ bad ])

let test_fifo_loses_protection () =
  let good_rate, sources = protection_setup () in
  let port = 12. *. good_rate in
  let fifo =
    Rcbr_atm.Scheduler.simulate ~discipline:Rcbr_atm.Scheduler.Fifo
      ~port_rate:port ~sources ~duration:60. ()
  in
  let scfq =
    Rcbr_atm.Scheduler.simulate ~discipline:Rcbr_atm.Scheduler.Scfq
      ~port_rate:port ~sources ~duration:60. ()
  in
  (* The misbehaver inflates the well-behaved sources' delay under FIFO
     but not under fair queueing. *)
  Alcotest.(check bool) "fifo delay way up" true
    (fifo.(0).Rcbr_atm.Scheduler.mean_delay
    > 3. *. scfq.(0).Rcbr_atm.Scheduler.mean_delay);
  (* And under SCFQ the misbehaver bears its own burstiness. *)
  Alcotest.(check bool) "scfq punishes the misbehaver" true
    (scfq.(9).Rcbr_atm.Scheduler.mean_delay
    > 5. *. scfq.(0).Rcbr_atm.Scheduler.mean_delay)

let test_policing_restores_protection () =
  let good_rate, sources = protection_setup () in
  let port = 12. *. good_rate in
  let policer vc =
    if vc = 9 then Some (Rcbr_atm.Gcra.create ~rate:good_rate ()) else None
  in
  let policed =
    Rcbr_atm.Scheduler.simulate ~discipline:Rcbr_atm.Scheduler.Fifo
      ~port_rate:port ~policer ~sources ~duration:60. ()
  in
  Alcotest.(check bool) "good sources fast again" true
    (policed.(0).Rcbr_atm.Scheduler.mean_delay < 1e-3);
  Alcotest.(check bool) "excess dropped at entry" true
    (policed.(9).Rcbr_atm.Scheduler.policed
    > policed.(9).Rcbr_atm.Scheduler.served)

let test_scheduler_work_conserving () =
  let _, sources = protection_setup () in
  let port = 12. *. 400_000. in
  let fifo =
    Rcbr_atm.Scheduler.simulate ~discipline:Rcbr_atm.Scheduler.Fifo
      ~port_rate:port ~sources ~duration:60. ()
  in
  let scfq =
    Rcbr_atm.Scheduler.simulate ~discipline:Rcbr_atm.Scheduler.Scfq
      ~port_rate:port ~sources ~duration:60. ()
  in
  (* Both disciplines serve every offered cell (no policing, unbounded
     queues). *)
  Array.iteri
    (fun i vc ->
      Alcotest.(check int) "fifo serves all" vc.Rcbr_atm.Scheduler.offered
        vc.Rcbr_atm.Scheduler.served;
      Alcotest.(check int) "same totals" vc.Rcbr_atm.Scheduler.offered
        scfq.(i).Rcbr_atm.Scheduler.offered)
    fifo

let test_arrivals_sorted () =
  let _, sources = protection_setup () in
  let prev = ref neg_infinity in
  let count = ref 0 in
  Seq.iter
    (fun (t, i) ->
      if t < !prev then Alcotest.fail "arrivals out of order";
      if i < 0 || i >= 10 then Alcotest.fail "bad index";
      prev := t;
      incr count)
    (Cell_mux.arrivals ~sources ~duration:10.);
  Alcotest.(check bool) "plenty of cells" true (!count > 5_000)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_extensions"
    [
      ( "smoothing",
        [
          Alcotest.test_case "feasible" `Quick test_smoothing_feasible;
          Alcotest.test_case "minimal peak" `Quick test_smoothing_attains_minimal_peak;
          Alcotest.test_case "peak vs buffer" `Quick
            test_smoothing_peak_decreases_with_buffer;
          Alcotest.test_case "zero buffer" `Quick
            test_smoothing_zero_buffer_tracks_arrivals;
          Alcotest.test_case "minimal peak hand" `Quick test_smoothing_minimal_peak_hand;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "ar1 converges" `Quick test_ar1_converges;
          Alcotest.test_case "gop separates phases" `Quick
            test_gop_aware_separates_phases;
          Alcotest.test_case "gop beats ar1 on periodic" `Quick
            test_gop_aware_beats_ar1_on_periodic_input;
          Alcotest.test_case "nlms learns" `Quick test_nlms_learns_constant;
          Alcotest.test_case "nlms nonnegative" `Quick test_nlms_nonnegative;
          Alcotest.test_case "constant" `Quick test_constant_predictor;
          Alcotest.test_case "run_custom = run" `Quick test_run_custom_matches_run;
          Alcotest.test_case "run_custom gop" `Quick test_run_custom_gop_aware_works;
          Alcotest.test_case "delay 0 identity" `Quick test_online_delay_zero_identity;
          Alcotest.test_case "delay grows backlog" `Quick
            test_online_delay_grows_backlog;
          Alcotest.test_case "delayed schedule feasible" `Quick
            test_online_delay_schedule_feasible;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "all granted" `Quick test_adaptation_all_granted_lossless;
          Alcotest.test_case "settle loses" `Quick test_adaptation_settle_loses_bits;
          Alcotest.test_case "requantize" `Quick
            test_adaptation_requantize_trades_quality_for_loss;
          Alcotest.test_case "reserve peak" `Quick
            test_adaptation_reserve_peak_never_fails;
          Alcotest.test_case "retry recovers" `Quick test_adaptation_retry_recovers;
          Alcotest.test_case "probabilistic grant" `Quick
            test_adaptation_probabilistic_grant;
        ] );
      ( "advance",
        [
          Alcotest.test_case "book and query" `Quick test_advance_book_and_query;
          Alcotest.test_case "release" `Quick test_advance_release;
          Alcotest.test_case "area" `Quick test_advance_area;
          Alcotest.test_case "schedule booking" `Quick test_advance_schedule_booking;
          Alcotest.test_case "staggered" `Quick test_advance_staggered_streams;
        ] );
      ( "atm",
        [
          Alcotest.test_case "cell arithmetic" `Quick test_cell_arithmetic;
          Alcotest.test_case "single cbr no queue" `Quick
            test_mux_single_cbr_source_no_queue;
          Alcotest.test_case "paced vs burst" `Quick test_mux_paced_vs_burst;
          Alcotest.test_case "finite buffer drops" `Quick test_mux_finite_buffer_drops;
          Alcotest.test_case "stats sane" `Quick test_mux_stats_sane;
        ] );
      ( "gcra",
        [
          Alcotest.test_case "conforming stream" `Quick test_gcra_conforming_stream;
          Alcotest.test_case "rejects burst" `Quick test_gcra_rejects_burst;
          Alcotest.test_case "cdvt tolerance" `Quick test_gcra_cdvt_tolerance;
          Alcotest.test_case "update rate" `Quick test_gcra_update_rate;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "fifo loses protection" `Quick
            test_fifo_loses_protection;
          Alcotest.test_case "policing restores protection" `Quick
            test_policing_restores_protection;
          Alcotest.test_case "work conserving" `Quick test_scheduler_work_conserving;
          Alcotest.test_case "arrivals sorted" `Quick test_arrivals_sorted;
        ] );
      ( "niu",
        [
          Alcotest.test_case "uncontended" `Quick test_niu_uncontended_stream;
          Alcotest.test_case "contended" `Quick test_niu_contended_stream;
          Alcotest.test_case "delay backlog" `Quick test_niu_delay_increases_backlog;
          Alcotest.test_case "retry helps" `Quick test_niu_retry_beats_no_retry;
        ] );
      ( "multihop",
        [
          Alcotest.test_case "denial grows with hops" `Quick
            test_multihop_denial_grows_with_hops;
          Alcotest.test_case "uncontended" `Quick test_multihop_uncontended_no_denials;
          Alcotest.test_case "deterministic" `Quick test_multihop_deterministic;
          Alcotest.test_case "balanced no worse" `Quick
            test_multihop_balanced_no_worse;
          Alcotest.test_case "routes=1 is run" `Quick
            test_multihop_balanced_single_route_matches_run;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "durations positive" `Quick
            test_interactive_durations_positive;
          Alcotest.test_case "stretch cap" `Quick test_interactive_respects_stretch_cap;
          Alcotest.test_case "clean playback" `Quick
            test_interactive_no_interactivity_is_plain_playback;
          Alcotest.test_case "validation" `Quick test_interactive_validation;
          Alcotest.test_case "degrades perfect descriptor" `Quick
            test_interactive_degrades_perfect_descriptor;
        ] );
      ("properties", q [ prop_smoothing_feasible ]);
    ]
