(* Unit tests for Rcbr_net: topology construction and validation, link
   accounting and blackout windows, session fit/settle/audit, and the
   equivalence of the topology-general simulator with the historical
   Multihop entry points. *)

module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Session = Rcbr_net.Session
module Multihop = Rcbr_sim.Multihop
module Schedule = Rcbr_core.Schedule
module Optimal = Rcbr_core.Optimal

let check_exact = Alcotest.(check (float 0.))

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* --- Topology ------------------------------------------------------- *)

let link src dst capacity = { Topology.src; dst; capacity }

let diamond () =
  (* 0 -> 1 direct; 0 -> 2 -> 1; 0 -> 3 -> 2 -> 1 (sharing link 2). *)
  Topology.make ~n_nodes:4
    ~links:[| link 0 1 1e6; link 0 2 1e6; link 2 1 1e6; link 0 3 1e6; link 3 2 1e6 |]
    ~routes:[| [| 0 |]; [| 1; 2 |]; [| 3; 4; 2 |] |]

let test_topology_constructors () =
  let t = Topology.single_link ~capacity:2e6 in
  Alcotest.(check int) "single link count" 1 (Topology.n_links t);
  Alcotest.(check int) "single route count" 1 (Topology.n_routes t);
  Alcotest.(check (array int)) "single route lengths" [| 1 |]
    (Topology.route_lengths t);
  let t = Topology.linear ~hops:4 ~capacity:1e6 in
  Alcotest.(check int) "linear links" 4 (Topology.n_links t);
  Alcotest.(check (array int)) "linear route lengths" [| 4 |]
    (Topology.route_lengths t);
  Alcotest.(check (array int)) "linear route walks the chain" [| 0; 1; 2; 3 |]
    t.Topology.routes.(0);
  let t = Topology.parallel_routes ~routes:3 ~hops:2 ~capacity:1e6 in
  Alcotest.(check int) "parallel links" 6 (Topology.n_links t);
  Alcotest.(check int) "parallel routes" 3 (Topology.n_routes t);
  (* The historical flattening: route r is links r*hops .. r*hops+hops-1. *)
  Alcotest.(check (array int)) "route 2 layout" [| 4; 5 |] t.Topology.routes.(2);
  let d = diamond () in
  Alcotest.(check (array int)) "diamond route lengths" [| 1; 2; 3 |]
    (Topology.route_lengths d)

let test_topology_validation () =
  Alcotest.(check bool) "nonpositive capacity rejected" true
    (raises_invalid (fun () ->
         Topology.make ~n_nodes:2 ~links:[| link 0 1 0. |] ~routes:[| [| 0 |] |]));
  Alcotest.(check bool) "endpoint out of range rejected" true
    (raises_invalid (fun () ->
         Topology.make ~n_nodes:2 ~links:[| link 0 2 1e6 |] ~routes:[| [| 0 |] |]));
  Alcotest.(check bool) "no routes rejected" true
    (raises_invalid (fun () ->
         Topology.make ~n_nodes:2 ~links:[| link 0 1 1e6 |] ~routes:[||]));
  Alcotest.(check bool) "bad link id rejected" true
    (raises_invalid (fun () ->
         Topology.make ~n_nodes:2 ~links:[| link 0 1 1e6 |] ~routes:[| [| 1 |] |]));
  Alcotest.(check bool) "disconnected chain rejected" true
    (raises_invalid (fun () ->
         (* Link 1 starts at node 0, not where link 0 ended (node 1). *)
         Topology.make ~n_nodes:3
           ~links:[| link 0 1 1e6; link 0 2 1e6 |]
           ~routes:[| [| 0; 1 |] |]))

let test_topology_json () =
  let file = Filename.temp_file "rcbr_topo" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let oc = open_out file in
  output_string oc
    {|{ "nodes": 3,
        "links": [ {"src": 0, "dst": 2, "capacity": 1e6},
                   {"src": 2, "dst": 1, "capacity": 2e6} ],
        "routes": [ [0, 1] ] }|};
  close_out oc;
  let t =
    match Topology.load file with
    | Ok t -> t
    | Error msg -> Alcotest.failf "good file rejected: %s" msg
  in
  Alcotest.(check int) "nodes" 3 t.Topology.n_nodes;
  Alcotest.(check int) "links" 2 (Topology.n_links t);
  check_exact "capacity read" 2e6 t.Topology.links.(1).Topology.capacity;
  Alcotest.(check (array int)) "route read" [| 0; 1 |] t.Topology.routes.(0)

(* One check per malformed-input class: each must land in a descriptive
   [Error], never an exception (ISSUE 6 satellite). *)
let test_topology_json_errors () =
  let expect_error name json =
    match Topology.of_json json with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error msg ->
        Alcotest.(check bool)
          (name ^ " message nonempty")
          true
          (String.length msg > 0)
  in
  let parse s = Rcbr_util.Json.parse s in
  expect_error "non-object" (Rcbr_util.Json.Int 3);
  expect_error "missing routes"
    (parse {|{ "nodes": 2, "links": [{"src":0,"dst":1,"capacity":1.0}] }|});
  expect_error "mistyped nodes"
    (parse
       {|{ "nodes": "two",
           "links": [{"src":0,"dst":1,"capacity":1.0}], "routes": [[0]] }|});
  expect_error "negative capacity"
    (parse
       {|{ "nodes": 2,
           "links": [{"src":0,"dst":1,"capacity":-5.0}], "routes": [[0]] }|});
  expect_error "bad link endpoint"
    (parse
       {|{ "nodes": 2,
           "links": [{"src":0,"dst":7,"capacity":1.0}], "routes": [[0]] }|});
  expect_error "dangling route hop"
    (parse
       {|{ "nodes": 2,
           "links": [{"src":0,"dst":1,"capacity":1.0}], "routes": [[0, 3]] }|});
  (* Non-JSON bytes and missing files go through [load]. *)
  let file = Filename.temp_file "rcbr_topo" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let oc = open_out file in
  output_string oc "this is not json {";
  close_out oc;
  (match Topology.load file with
  | Ok _ -> Alcotest.fail "non-JSON bytes accepted"
  | Error msg ->
      Alcotest.(check bool) "non-JSON error names the file" true
        (String.length msg > 0));
  match Topology.load (file ^ ".does-not-exist") with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* --- Link ----------------------------------------------------------- *)

let test_link_advance () =
  let l = Link.create ~capacity:10. () in
  l.Link.demand <- 15.;
  l.Link.n_calls <- 3;
  Link.advance l ~now:2.;
  check_exact "offered integrates demand" 30. l.Link.offered_bits;
  check_exact "granted capped at capacity" 20. l.Link.granted_bits;
  check_exact "lost is the excess" 10. l.Link.lost_bits;
  check_exact "call seconds" 6. l.Link.call_seconds;
  (* Going backwards (or nowhere) is a no-op. *)
  Link.advance l ~now:1.;
  check_exact "no retro-integration" 30. l.Link.offered_bits;
  check_exact "last stays" 2. l.Link.last;
  Link.reset_window l;
  check_exact "window reset zeroes offered" 0. l.Link.offered_bits;
  check_exact "window reset keeps demand" 15. l.Link.demand

let test_link_blackouts () =
  let windows = Link.compile_blackouts [ (5., 7.); (1., 2.); (1.5, 3.); (9., 9.) ] in
  (* (9,9) is empty; (1,2) and (1.5,3) merge. *)
  Alcotest.(check int) "merged window count" 2 (Array.length windows);
  Alcotest.(check (pair (float 0.) (float 0.))) "merged window" (1., 3.) windows.(0);
  let l = Link.create ~blackouts:windows ~capacity:1. () in
  List.iter
    (fun (now, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "down at %g" now)
        expect (Link.down l ~now))
    [
      (0.5, false);
      (1., true) (* inclusive start *);
      (2.5, true) (* inside the merged window *);
      (3., false) (* exclusive end *);
      (4., false);
      (5., true);
      (6.99, true);
      (7., false);
      (9., false) (* the empty window was dropped *);
    ];
  (* Merged membership must agree with List.exists on the raw list. *)
  let raw = [ (5., 7.); (1., 2.); (1.5, 3.) ] in
  for i = 0 to 100 do
    let now = float_of_int i /. 10. in
    Alcotest.(check bool)
      (Printf.sprintf "membership at %g" now)
      (List.exists (fun (a, r) -> a <= now && now < r) raw)
      (Link.down l ~now)
  done

let test_link_of_topology () =
  let links =
    Link.of_topology
      ~crashes:[ (1, 10., 20.); (1, 15., 30.); (99, 0., 1.); (-1, 0., 1.) ]
      (diamond ())
  in
  Alcotest.(check int) "one state per link" 5 (Array.length links);
  Alcotest.(check bool) "link 0 clean" false (Link.down links.(0) ~now:15.);
  Alcotest.(check bool) "link 1 crashed (merged)" true
    (Link.down links.(1) ~now:25.);
  Alcotest.(check bool) "out-of-range crash ids ignored" true
    (Array.for_all (fun l -> Array.length l.Link.blackouts = 0)
       [| links.(0); links.(2); links.(3); links.(4) |])

(* --- Session -------------------------------------------------------- *)

let test_session_fit_settle_audit () =
  let topo = diamond () in
  let links = Link.of_topology topo in
  let s2 = Session.make ~id:0 ~route:topo.Topology.routes.(1) ~transit:true in
  let s3 = Session.make ~id:1 ~route:topo.Topology.routes.(2) ~transit:true in
  Alcotest.(check bool) "fits within capacity" true
    (Session.fits ~links s2 ~rate:9e5 ~now:0.);
  Session.settle ~links s2 ~rate:9e5;
  check_exact "applied recorded" 9e5 s2.Session.applied;
  check_exact "demand on route link" 9e5 links.(1).Link.demand;
  check_exact "demand on shared link" 9e5 links.(2).Link.demand;
  check_exact "other links untouched" 0. links.(0).Link.demand;
  (* The shared link 2 is nearly full now, so the 3-hop route is
     blocked on its last hop even though links 3 and 4 are empty. *)
  Alcotest.(check bool) "shared link rejects" false
    (Session.fits ~links s3 ~rate:2e5 ~now:0.);
  Alcotest.(check bool) "small rate still fits" true
    (Session.fits ~links s3 ~rate:0.5e5 ~now:0.);
  (* Settle semantics: demand moves even when it does not fit. *)
  Session.settle ~links s3 ~rate:2e5;
  check_exact "overloaded shared demand" 11e5 links.(2).Link.demand;
  let sessions = [ s2; s3 ] in
  Alcotest.(check int) "conservation holds" 0 (Session.audit ~links ~sessions);
  links.(2).Link.demand <- 42.;
  Alcotest.(check bool) "tampering caught" true
    (Session.audit ~links ~sessions > 0)

let test_session_blocked () =
  let topo = diamond () in
  let links = Link.of_topology ~crashes:[ (2, 10., 20.) ] topo in
  let s = Session.make ~id:0 ~route:topo.Topology.routes.(2) ~transit:true in
  Alcotest.(check bool) "clean before crash" false
    (Session.blocked ~links s ~now:5.);
  Alcotest.(check bool) "blocked during crash" true
    (Session.blocked ~links s ~now:15.);
  Alcotest.(check bool) "down route never fits" false
    (Session.fits ~links s ~rate:1. ~now:15.);
  let direct = Session.make ~id:1 ~route:topo.Topology.routes.(0) ~transit:false in
  Alcotest.(check bool) "other route unaffected" false
    (Session.blocked ~links direct ~now:15.)

(* --- Session settle-path edge cases --------------------------------- *)

(* A driver that just settles on delivery — the minimal honest client of
   the state machine, no simulator accounting on top. *)
let settle_driver ~links plane lifetime =
  {
    Session.plane_ = Some plane;
    reliable_setup = false;
    lifetime;
    before = (fun ~now:_ -> ());
    on_attempt = (fun ~now:_ -> ());
    retry = (fun ~now:_ -> true);
    deliver = (fun s ~now:_ ~idx:_ ~rate -> Session.settle ~links s ~rate);
  }

let lossy_plane ~max_retransmits =
  Session.plane ~drop:Session.Per_cell
    {
      Session.no_faults with
      Session.rm_drop = 1.0;
      retx_timeout = 0.2;
      max_retransmits;
      fault_seed = 5;
    }

(* Give-up exactly at max_retransmits: initial cell + 2 retransmissions
   all lost, then the change is applied anyway (settle semantics) and
   conservation still holds. *)
let test_session_give_up_at_cap () =
  let topo = Topology.single_link ~capacity:1e6 in
  let links = Link.of_topology topo in
  let plane = lossy_plane ~max_retransmits:2 in
  let s = Session.make ~id:0 ~route:topo.Topology.routes.(0) ~transit:false in
  let d = settle_driver ~links plane (Session.Hold_until infinity) in
  let engine = Rcbr_queue.Events.create () in
  Session.signal d s ~idx:0 ~rate:5e4 engine;
  Rcbr_queue.Events.run engine;
  let c = plane.Session.counters in
  Alcotest.(check int) "all three transmissions lost" 3 c.Session.rm_lost;
  Alcotest.(check int) "exactly max retransmits" 2 c.Session.retransmits;
  Alcotest.(check int) "one abandoned change" 1 c.Session.abandoned;
  Alcotest.(check int) "nothing superseded" 0 c.Session.superseded;
  check_exact "applied anyway after give-up" 5e4 s.Session.applied;
  check_exact "demand follows" 5e4 links.(0).Link.demand;
  Alcotest.(check int) "conservation holds" 0
    (Session.audit ~links ~sessions:[ s ])

(* A newer renegotiation supersedes the pending retransmission of an
   older one: the old retx dies at the gen check, the new change runs
   its own retransmit budget, and only the new rate lands. *)
let test_session_superseded_resync () =
  let topo = Topology.single_link ~capacity:1e6 in
  let links = Link.of_topology topo in
  let plane = lossy_plane ~max_retransmits:1 in
  let s = Session.make ~id:0 ~route:topo.Topology.routes.(0) ~transit:false in
  let d = settle_driver ~links plane (Session.Hold_until infinity) in
  let engine = Rcbr_queue.Events.create () in
  (* t=0: change A (lost, retx armed for t=0.2).  t=0.1: change B
     supersedes it (lost, retx armed for t=0.3).  t=0.2: A's retx finds
     gen moved on.  t=0.3: B's retx is lost too -> give up, B lands. *)
  Session.signal d s ~idx:0 ~rate:3e4 engine;
  Rcbr_queue.Events.schedule engine ~at:0.1 (fun engine ->
      Session.signal d s ~idx:1 ~rate:8e4 engine);
  Rcbr_queue.Events.run engine;
  let c = plane.Session.counters in
  Alcotest.(check int) "A, B and B's retx lost" 3 c.Session.rm_lost;
  Alcotest.(check int) "only B retransmits" 1 c.Session.retransmits;
  Alcotest.(check int) "A's retx superseded" 1 c.Session.superseded;
  Alcotest.(check int) "B abandoned" 1 c.Session.abandoned;
  check_exact "the superseding rate lands" 8e4 s.Session.applied;
  Alcotest.(check int) "conservation holds" 0
    (Session.audit ~links ~sessions:[ s ])

(* Departure while a retransmission is in flight: cancel_pending bumps
   gen, the timer fires into the superseded branch, and the links end
   the run empty. *)
let test_session_depart_with_retx_in_flight () =
  let topo = Topology.single_link ~capacity:1e6 in
  let links = Link.of_topology topo in
  let plane = lossy_plane ~max_retransmits:3 in
  let s = Session.make ~id:0 ~route:topo.Topology.routes.(0) ~transit:false in
  let d = settle_driver ~links plane (Session.Hold_until infinity) in
  let engine = Rcbr_queue.Events.create () in
  Session.signal d s ~idx:0 ~rate:6e4 engine;
  Rcbr_queue.Events.schedule engine ~at:0.1 (fun _ ->
      (* The departure path every simulator uses: kill the pending
         retransmission, then account the session down to zero. *)
      Session.cancel_pending s;
      Session.settle ~links s ~rate:0.);
  Rcbr_queue.Events.run engine;
  let c = plane.Session.counters in
  Alcotest.(check int) "only the first cell was lost" 1 c.Session.rm_lost;
  Alcotest.(check int) "no retransmission ran" 0 c.Session.retransmits;
  Alcotest.(check int) "the armed retx was superseded" 1 c.Session.superseded;
  Alcotest.(check int) "nothing abandoned" 0 c.Session.abandoned;
  check_exact "departed clean" 0. s.Session.applied;
  check_exact "link empty" 0. links.(0).Link.demand;
  Alcotest.(check int) "conservation holds" 0
    (Session.audit ~links ~sessions:[ s ])

(* --- Grid topology --------------------------------------------------- *)

module Store = Rcbr_net.Store
module Rng = Rcbr_util.Rng

let test_grid_topology () =
  let t = Topology.grid ~rows:3 ~cols:4 ~capacity:1e6 in
  (* east: rows*(cols-1) = 9; south: (rows-1)*cols = 8. *)
  Alcotest.(check int) "links" 17 (Topology.n_links t);
  (* every row, every column, two corner-to-corner staircases *)
  Alcotest.(check int) "routes" 9 (Topology.n_routes t);
  let lens = Topology.route_lengths t in
  Alcotest.(check int) "row route spans the row" 3 lens.(0);
  Alcotest.(check int) "column route spans the column" 2 lens.(3);
  Alcotest.(check int) "staircase spans both" 5 lens.(7);
  Alcotest.(check bool) "degenerate grid rejected" true
    (raises_invalid (fun () -> Topology.grid ~rows:1 ~cols:4 ~capacity:1e6))

(* --- Store: struct-of-arrays sessions -------------------------------- *)

let test_store_acquire_release_reuse () =
  let topo = Topology.grid ~rows:2 ~cols:2 ~capacity:1e6 in
  let store = Store.create ~capacity_hint:2 () in
  let route = topo.Topology.routes.(0) in
  let a = Store.acquire store ~id:10 ~route ~transit:false in
  let b = Store.acquire store ~id:11 ~route ~transit:false in
  Alcotest.(check int) "two live" 2 (Store.live_count store);
  Alcotest.(check int) "ids stored" 11 (Store.id store b);
  Alcotest.(check bool) "live" true (Store.is_live store a);
  Store.release store a;
  Alcotest.(check bool) "released" false (Store.is_live store a);
  let c = Store.acquire store ~id:12 ~route ~transit:true in
  Alcotest.(check int) "freed handle recycled" a c;
  Alcotest.(check int) "id overwritten" 12 (Store.id store c);
  check_exact "applied reset on reuse" 0. (Store.applied store c);
  Alcotest.(check int) "cursor reset on reuse" 0 (Store.cursor store c);
  Alcotest.(check bool) "transit stored" true (Store.transit store c);
  let hops = ref [] in
  Store.route_iter store c (fun l -> hops := l :: !hops);
  Alcotest.(check (list int)) "route readable" (Array.to_list route)
    (List.rev !hops);
  let s = Store.to_session store c in
  Alcotest.(check int) "record view id" 12 s.Session.id;
  Alcotest.(check (array int)) "record view route" route s.Session.route

(* The bit-identity contract: a store-backed run and a record-session
   run fed the same op sequence produce the same fits answers, the
   same applied rates and bitwise-equal link demands. *)
let test_store_matches_sessions () =
  let topo = Topology.grid ~rows:4 ~cols:4 ~capacity:2e5 in
  let links_s = Link.of_topology topo in
  (* store side *)
  let links_r = Link.of_topology topo in
  (* record side *)
  let store = Store.create () in
  let mirror : (int, Session.t) Hashtbl.t = Hashtbl.create 64 in
  let live = ref [] in
  let rng = Rng.create 7 in
  let rates = [| 1e4; 3e4; 9e4; 2.7e5 |] in
  let n_routes = Topology.n_routes topo in
  for step = 0 to 2_999 do
    let now = float_of_int step *. 0.01 in
    let op = if !live = [] then 0 else Rng.int rng 5 in
    match op with
    | 0 | 1 ->
        let route = topo.Topology.routes.(Rng.int rng n_routes) in
        let transit = Array.length route > 1 in
        let h = Store.acquire store ~id:step ~route ~transit in
        Hashtbl.replace mirror h (Session.make ~id:step ~route ~transit);
        live := h :: !live;
        let rate = rates.(Rng.int rng (Array.length rates)) in
        Store.settle ~links:links_s store h ~rate;
        Session.settle ~links:links_r (Hashtbl.find mirror h) ~rate
    | 2 | 3 ->
        (* renegotiate a random live call; fits answers must agree *)
        let h = List.nth !live (Rng.int rng (List.length !live)) in
        let s = Hashtbl.find mirror h in
        let rate = rates.(Rng.int rng (Array.length rates)) in
        Alcotest.(check bool) "fits agrees"
          (Session.fits ~links:links_r s ~rate ~now)
          (Store.fits ~links:links_s store h ~rate ~now);
        Alcotest.(check bool) "blocked agrees"
          (Session.blocked ~links:links_r s ~now)
          (Store.blocked ~links:links_s store h ~now);
        Store.settle ~links:links_s store h ~rate;
        Session.settle ~links:links_r s ~rate
    | _ ->
        (* departure *)
        let h = List.nth !live (Rng.int rng (List.length !live)) in
        Store.settle ~links:links_s store h ~rate:0.;
        Session.settle ~links:links_r (Hashtbl.find mirror h) ~rate:0.;
        Store.release store h;
        Hashtbl.remove mirror h;
        live := List.filter (fun x -> x <> h) !live
  done;
  Alcotest.(check int) "live population agrees" (List.length !live)
    (Store.live_count store);
  Array.iteri
    (fun i (l : Link.t) ->
      check_exact
        (Printf.sprintf "link %d demand bit-identical" i)
        l.Link.demand links_s.(i).Link.demand)
    links_r;
  Store.iter_live store (fun h ->
      let s = Hashtbl.find mirror h in
      check_exact "applied bit-identical" s.Session.applied
        (Store.applied store h));
  Alcotest.(check int) "store conservation" 0 (Store.audit ~links:links_s store);
  Alcotest.(check int) "session conservation" 0
    (Session.audit ~links:links_r
       ~sessions:(Hashtbl.fold (fun _ s acc -> s :: acc) mirror []))

(* --- run_net vs the historical entry points ------------------------- *)

let trace = Rcbr_traffic.Synthetic.star_wars ~frames:2_000 ~seed:42 ()
let schedule = Optimal.solve (Optimal.default_params ~cost_ratio:3e5 trace) trace
let capacity = 10. *. Rcbr_traffic.Trace.mean_rate trace

let check_metrics tag (a : Multihop.metrics) (b : Multihop.metrics) =
  Alcotest.(check int) (tag ^ " transit attempts") a.Multihop.transit_attempts
    b.Multihop.transit_attempts;
  Alcotest.(check int) (tag ^ " transit denials") a.Multihop.transit_denials
    b.Multihop.transit_denials;
  Alcotest.(check int) (tag ^ " local attempts") a.Multihop.local_attempts
    b.Multihop.local_attempts;
  Alcotest.(check int) (tag ^ " local denials") a.Multihop.local_denials
    b.Multihop.local_denials;
  check_exact (tag ^ " utilization bit-identical")
    a.Multihop.mean_hop_utilization b.Multihop.mean_hop_utilization

let base_config hops =
  {
    Multihop.schedule;
    hops;
    capacity_per_hop = capacity;
    transit_calls = 3;
    local_calls_per_hop = 4;
    horizon = 2. *. Schedule.duration schedule;
    seed = 11;
  }

let test_run_net_linear_equivalence () =
  let c = base_config 3 in
  let reference = Multihop.run c in
  let m, f =
    Multihop.run_net
      {
        Multihop.schedule;
        topology = Topology.linear ~hops:3 ~capacity;
        transit_calls = c.Multihop.transit_calls;
        local_calls_per_link = c.Multihop.local_calls_per_hop;
        horizon = c.Multihop.horizon;
        seed = c.Multihop.seed;
        balance = false;
        service = Rcbr_policy.Service_model.Renegotiate;
      }
      Session.no_faults
  in
  check_metrics "linear" reference m;
  Alcotest.(check int) "no faults recorded" 0
    (f.Multihop.rm_lost + f.Multihop.crash_denials)

let test_run_net_parallel_equivalence () =
  let bc =
    {
      Multihop.base = { (base_config 2) with Multihop.transit_calls = 6 };
      routes = 3;
      balance = true;
    }
  in
  let reference = Multihop.run_balanced bc in
  let m, _ =
    Multihop.run_net
      {
        Multihop.schedule;
        topology = Topology.parallel_routes ~routes:3 ~hops:2 ~capacity;
        transit_calls = 6;
        local_calls_per_link = bc.Multihop.base.Multihop.local_calls_per_hop;
        horizon = bc.Multihop.base.Multihop.horizon;
        seed = bc.Multihop.base.Multihop.seed;
        balance = true;
        service = Rcbr_policy.Service_model.Renegotiate;
      }
      Session.no_faults
  in
  check_metrics "parallel" reference m

let test_run_net_mesh_faulty () =
  (* The new capability: routes of different lengths sharing a link,
     surviving signalling loss and a crash of the shared link with the
     conservation audit on throughout. *)
  let topology =
    Topology.make ~n_nodes:4
      ~links:
        [|
          link 0 1 capacity; link 0 2 capacity; link 2 1 capacity;
          link 0 3 capacity; link 3 2 capacity;
        |]
      ~routes:[| [| 0 |]; [| 1; 2 |]; [| 3; 4; 2 |] |]
  in
  let nc =
    {
      Multihop.schedule;
      topology;
      transit_calls = 6;
      local_calls_per_link = 3;
      horizon = 2. *. Schedule.duration schedule;
      seed = 11;
      balance = true;
      service = Rcbr_policy.Service_model.Renegotiate;
    }
  in
  let faults =
    {
      Session.no_faults with
      Session.rm_drop = 0.2;
      retx_timeout = 0.05;
      crashes = [ (2, 50., 200.) ];
      fault_seed = 99;
      check_invariants = true;
    }
  in
  let m, f = Multihop.run_net nc faults in
  Alcotest.(check bool) "transit traffic ran" true
    (m.Multihop.transit_attempts > 0);
  Alcotest.(check bool) "local traffic ran" true (m.Multihop.local_attempts > 0);
  Alcotest.(check bool) "fault plane active" true (f.Multihop.rm_lost > 0);
  Alcotest.(check bool) "crash denials observed" true
    (f.Multihop.crash_denials > 0);
  Alcotest.(check int) "conservation invariants clean" 0
    f.Multihop.invariant_failures;
  (* Null faults on the same mesh reproduce the fault-free run. *)
  let clean, zeros = Multihop.run_net nc Session.no_faults in
  let audited, _ =
    Multihop.run_net nc
      { Session.no_faults with Session.check_invariants = true }
  in
  check_metrics "audit is bit-neutral" clean audited;
  Alcotest.(check int) "null faults, zero counters" 0
    (zeros.Multihop.rm_lost + zeros.Multihop.retransmits
   + zeros.Multihop.abandoned + zeros.Multihop.crash_denials)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "constructors" `Quick test_topology_constructors;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "json" `Quick test_topology_json;
          Alcotest.test_case "json errors" `Quick test_topology_json_errors;
          Alcotest.test_case "grid" `Quick test_grid_topology;
        ] );
      ( "store",
        [
          Alcotest.test_case "acquire/release/reuse" `Quick
            test_store_acquire_release_reuse;
          Alcotest.test_case "store = record sessions" `Quick
            test_store_matches_sessions;
        ] );
      ( "link",
        [
          Alcotest.test_case "advance" `Quick test_link_advance;
          Alcotest.test_case "blackouts" `Quick test_link_blackouts;
          Alcotest.test_case "of_topology" `Quick test_link_of_topology;
        ] );
      ( "session",
        [
          Alcotest.test_case "fit/settle/audit" `Quick
            test_session_fit_settle_audit;
          Alcotest.test_case "blocked" `Quick test_session_blocked;
          Alcotest.test_case "give-up at max retransmits" `Quick
            test_session_give_up_at_cap;
          Alcotest.test_case "superseded renegotiation" `Quick
            test_session_superseded_resync;
          Alcotest.test_case "depart with retx in flight" `Quick
            test_session_depart_with_retx_in_flight;
        ] );
      ( "run_net",
        [
          Alcotest.test_case "linear = Multihop.run" `Quick
            test_run_net_linear_equivalence;
          Alcotest.test_case "parallel = run_balanced" `Quick
            test_run_net_parallel_equivalence;
          Alcotest.test_case "mesh under faults" `Quick test_run_net_mesh_faulty;
        ] );
    ]
