(* Unit and property tests for Rcbr_util. *)

module Rng = Rcbr_util.Rng
module Stats = Rcbr_util.Stats
module Histogram = Rcbr_util.Histogram
module Numeric = Rcbr_util.Numeric
module Matrix = Rcbr_util.Matrix
module Heap = Rcbr_util.Heap
module Pool = Rcbr_util.Pool
module Json = Rcbr_util.Json
module Tables = Rcbr_util.Tables

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.float a = Rng.float b then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 4)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_float_mean () =
  let rng = Rng.create 3 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  check_close 0.01 "uniform mean" 0.5 (!acc /. float_of_int n)

let test_rng_int_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_int_uniform () =
  let rng = Rng.create 13 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      check_close 0.02 "uniform cell" 0.2 (float_of_int c /. float_of_int n))
    counts

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* The child stream should not track the parent's continuation. *)
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.float parent = Rng.float child then incr equal
  done;
  Alcotest.(check bool) "split decorrelated" true (!equal < 4)

let test_rng_copy () =
  let a = Rng.create 77 in
  let _ = Rng.float a in
  let b = Rng.copy a in
  check_float "copy tracks" (Rng.float a) (Rng.float b)

let test_rng_exponential_mean () =
  let rng = Rng.create 21 in
  let n = 100_000 and rate = 2.5 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng rate
  done;
  check_close 0.01 "exp mean" (1. /. rate) (!acc /. float_of_int n)

let test_rng_normal_moments () =
  let rng = Rng.create 22 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.normal rng ~mu:3. ~sigma:2.) in
  check_close 0.05 "normal mean" 3. (Stats.mean xs);
  check_close 0.1 "normal stddev" 2. (Stats.stddev xs)

let test_rng_poisson_mean () =
  let rng = Rng.create 23 in
  let n = 50_000 and lambda = 7.3 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.poisson rng lambda
  done;
  check_close 0.1 "poisson mean" lambda (float_of_int !acc /. float_of_int n)

let test_rng_poisson_large_lambda () =
  let rng = Rng.create 29 in
  let n = 20_000 and lambda = 1000. in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.poisson rng lambda
  done;
  check_close 2. "poisson mean (normal approx)" lambda
    (float_of_int !acc /. float_of_int n)

let test_rng_geometric_mean () =
  let rng = Rng.create 31 in
  let n = 100_000 and p = 0.2 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.geometric rng p
  done;
  (* Mean of failures-before-success is (1-p)/p = 4. *)
  check_close 0.1 "geometric mean" 4. (float_of_int !acc /. float_of_int n)

let test_rng_geometric_p1 () =
  let rng = Rng.create 32 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 gives 0" 0 (Rng.geometric rng 1.)
  done

let test_rng_choose_weights () =
  let rng = Rng.create 41 in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Rng.choose rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never chosen" 0 counts.(1);
  check_close 0.02 "weight 1/4" 0.25 (float_of_int counts.(0) /. float_of_int n);
  check_close 0.02 "weight 3/4" 0.75 (float_of_int counts.(2) /. float_of_int n)

(* --- Stats --- *)

let test_stats_mean_var () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_close 1e-9 "variance" (32. /. 7.) (Stats.variance xs);
  check_float "singleton variance" 0. (Stats.variance [| 3. |])

let test_stats_quantile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "median" 3. (Stats.quantile xs 0.5);
  check_float "min" 1. (Stats.quantile xs 0.);
  check_float "max" 5. (Stats.quantile xs 1.);
  check_float "interpolated" 1.5 (Stats.quantile xs 0.125);
  (* quantile must not mutate *)
  Alcotest.(check (array (float 0.))) "unchanged" [| 5.; 1.; 3.; 2.; 4. |] xs

let test_stats_min_max () =
  let xs = [| 3.; -1.; 7.; 0. |] in
  check_float "min" (-1.) (Stats.minimum xs);
  check_float "max" 7. (Stats.maximum xs)

let test_stats_autocorrelation () =
  let xs = Array.init 100 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  check_close 0.05 "lag-2 of alternating" 1.
    (Stats.autocorrelation xs 2 /. (98. /. 100.));
  Alcotest.(check bool) "lag-1 negative" true (Stats.autocorrelation xs 1 < 0.);
  check_float "constant series" 0.
    (Stats.autocorrelation (Array.make 10 5.) 1)

let test_stats_online_matches_batch () =
  let rng = Rng.create 55 in
  let xs = Array.init 1000 (fun _ -> Rng.float rng) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  check_close 1e-9 "mean" (Stats.mean xs) (Stats.Online.mean o);
  check_close 1e-9 "variance" (Stats.variance xs) (Stats.Online.variance o);
  Alcotest.(check int) "count" 1000 (Stats.Online.count o)

let test_stats_online_precision () =
  let o = Stats.Online.create () in
  Alcotest.(check bool) "empty is infinite" true
    (Float.equal (Stats.Online.relative_precision o) infinity);
  Stats.Online.add o 1.;
  Alcotest.(check bool) "one sample is infinite" true
    (Float.equal (Stats.Online.confidence_halfwidth o) infinity);
  for _ = 1 to 100 do
    Stats.Online.add o 1.
  done;
  check_float "constant samples: zero halfwidth" 0.
    (Stats.Online.confidence_halfwidth o)

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Histogram.create ~levels:4 in
  Histogram.add h 0 1.;
  Histogram.add h 2 3.;
  check_float "weight" 3. (Histogram.weight h 2);
  check_float "total" 4. (Histogram.total h);
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Histogram.support h)

let test_histogram_distribution () =
  let h = Histogram.create ~levels:3 in
  Histogram.add h 0 1.;
  Histogram.add h 1 1.;
  Histogram.add h 1 2.;
  let p = Histogram.to_distribution h in
  check_float "p0" 0.25 p.(0);
  check_float "p1" 0.75 p.(1);
  check_float "p2" 0. p.(2)

let test_histogram_merge_scale () =
  let a = Histogram.of_distribution [| 1.; 2. |] in
  let b = Histogram.of_distribution [| 3.; 0. |] in
  let m = Histogram.merge a b in
  check_float "merged 0" 4. (Histogram.weight m 0);
  check_float "merged 1" 2. (Histogram.weight m 1);
  let s = Histogram.scale a 2. in
  check_float "scaled" 4. (Histogram.weight s 1)

let test_histogram_mean_value () =
  let h = Histogram.of_distribution [| 0.5; 0.5 |] in
  check_float "mean value" 15. (Histogram.mean_level_value h ~values:[| 10.; 20. |])

let test_histogram_grow_in_place () =
  let h = Histogram.create ~levels:1 in
  Histogram.ensure h ~levels:3;
  Alcotest.(check int) "ensured" 3 (Histogram.levels h);
  Histogram.ensure h ~levels:2;
  Alcotest.(check int) "never shrinks" 3 (Histogram.levels h);
  (* add/set beyond the current size grow on demand. *)
  Histogram.add h 5 2.;
  Alcotest.(check bool) "grown by add" true (Histogram.levels h >= 6);
  check_float "added" 2. (Histogram.weight h 5);
  Histogram.set h 7 4.;
  check_float "set grew" 4. (Histogram.weight h 7);
  Histogram.set h 5 1.;
  check_float "set overwrites" 1. (Histogram.weight h 5);
  check_float "out of range is 0" 0. (Histogram.weight h 100)

let test_histogram_sub_clear () =
  let h = Histogram.of_distribution [| 3.; 1. |] in
  Histogram.sub h 0 2.;
  check_float "subtracted" 1. (Histogram.weight h 0);
  Histogram.clear h;
  check_float "cleared total" 0. (Histogram.total h);
  Alcotest.(check int) "storage kept" 2 (Histogram.levels h)

let test_histogram_add_weighted () =
  let into = Histogram.of_distribution [| 1.; 2. |] in
  let src = Histogram.of_distribution [| 10.; 0.; 5. |] in
  Histogram.add_weighted ~into ~scale:0.5 src;
  check_float "scaled into 0" 6. (Histogram.weight into 0);
  check_float "untouched level" 2. (Histogram.weight into 1);
  check_float "into grew" 2.5 (Histogram.weight into 2);
  (* Default scale is 1 and must match merge. *)
  let a = Histogram.of_distribution [| 1.; 2. |] in
  let b = Histogram.of_distribution [| 3.; 4. |] in
  let m = Histogram.merge a b in
  Histogram.add_weighted ~into:a b;
  check_float "matches merge 0" (Histogram.weight m 0) (Histogram.weight a 0);
  check_float "matches merge 1" (Histogram.weight m 1) (Histogram.weight a 1)

let test_histogram_iter_support () =
  let h = Histogram.of_distribution [| 0.; 2.; 0.; 1. |] in
  let seen = ref [] in
  Histogram.iter_support h (fun level w -> seen := (level, w) :: !seen);
  Alcotest.(check (list (pair int (float 1e-12))))
    "positive levels ascending"
    [ (1, 2.); (3, 1.) ]
    (List.rev !seen);
  (* iter_support agrees with support on the visited set. *)
  Alcotest.(check (list int)) "same as support" (Histogram.support h)
    (List.rev_map fst !seen)

let test_histogram_normalize () =
  let h = Histogram.create ~levels:3 in
  Histogram.add h 0 1.;
  Histogram.add h 2 3.;
  let n = Histogram.normalize h in
  check_float "total mass 1" 1. (Histogram.total n);
  check_float "p0" 0.25 (Histogram.weight n 0);
  check_float "p2" 0.75 (Histogram.weight n 2);
  (* The original is untouched. *)
  check_float "source total" 4. (Histogram.total h)

let test_histogram_log_mass () =
  let h = Histogram.create ~levels:3 in
  Histogram.add h 0 1.;
  Histogram.add h 1 3.;
  check_float "log p0" (Float.log 0.25) (Histogram.log_mass h 0);
  check_float "log p1" (Float.log 0.75) (Histogram.log_mass h 1);
  (* Empty bins and out-of-range levels hit the floor, not -inf. *)
  check_float "empty bin floored" (Float.log 1e-9) (Histogram.log_mass h 2);
  check_float "out of range floored" (Float.log 1e-9) (Histogram.log_mass h 7);
  check_float "custom floor" (Float.log 1e-3)
    (Histogram.log_mass ~floor:1e-3 h 2);
  (* An all-zero histogram is the floor everywhere. *)
  let z = Histogram.create ~levels:2 in
  check_float "zero histogram floored" (Float.log 1e-9) (Histogram.log_mass z 0)

(* --- Numeric --- *)

let test_bisect_sqrt () =
  let f x = (x *. x) -. 2. in
  check_close 1e-7 "sqrt 2" (sqrt 2.) (Numeric.bisect ~f 0. 2.)

let test_bisect_endpoint_root () =
  let f x = x in
  check_float "root at lo" 0. (Numeric.bisect ~f 0. 1.)

let test_find_min_such_that () =
  let pred x = x >= 3.25 in
  check_close 1e-6 "threshold" 3.25 (Numeric.find_min_such_that ~pred 0. 10.);
  check_float "lo already true" 0. (Numeric.find_min_such_that ~pred:(fun _ -> true) 0. 5.);
  check_float "never true returns hi" 5.
    (Numeric.find_min_such_that ~pred:(fun _ -> false) 0. 5.)

let test_golden_max () =
  let f x = -.((x -. 1.7) ** 2.) in
  check_close 1e-6 "argmax" 1.7 (Numeric.golden_max ~f 0. 10.)

let test_log_sum_exp () =
  check_close 1e-12 "two equal" (log 2.) (Numeric.log_sum_exp [| 0.; 0. |]);
  check_close 1e-9 "huge values stay finite" (1000. +. log 2.)
    (Numeric.log_sum_exp [| 1000.; 1000. |]);
  check_float "neg infinity alone" neg_infinity
    (Numeric.log_sum_exp [| neg_infinity |]);
  check_close 1e-12 "neg infinity ignored" 5.
    (Numeric.log_sum_exp [| 5.; neg_infinity |])

let test_approx_equal () =
  Alcotest.(check bool) "close" true (Numeric.approx_equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "far" false (Numeric.approx_equal 1. 2.)

(* --- Matrix --- *)

let test_matrix_mul_identity () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let i = Matrix.identity 2 in
  let p = Matrix.mul a i in
  check_float "unchanged" 3. (Matrix.get p 1 0)

let test_matrix_solve () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Matrix.solve a [| 5.; 10. |] in
  check_close 1e-9 "x" 1. x.(0);
  check_close 1e-9 "y" 3. x.(1)

let test_matrix_solve_singular () =
  let a = Matrix.of_rows [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular") (fun () ->
      ignore (Matrix.solve a [| 1.; 1. |]))

let test_matrix_transpose_vec () =
  let a = Matrix.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows t);
  check_float "entry" 6. (Matrix.get t 2 1);
  let v = Matrix.mat_vec a [| 1.; 1.; 1. |] in
  check_float "mat_vec" 15. v.(1);
  let w = Matrix.vec_mat [| 1.; 1. |] a in
  check_float "vec_mat" 5. w.(0)

let test_perron_stochastic () =
  (* Any stochastic matrix has Perron root 1. *)
  let m = Matrix.of_rows [| [| 0.9; 0.1 |]; [| 0.4; 0.6 |] |] in
  check_close 1e-9 "stochastic root" 1. (Matrix.perron_root m)

let test_perron_known () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let m = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  check_close 1e-8 "root 3" 3. (Matrix.perron_root m)

let test_perron_diagonal () =
  let m = Matrix.of_rows [| [| 5.; 0. |]; [| 0.; 2. |] |] in
  check_close 1e-6 "diagonal max" 5. (Matrix.perron_root m)

let test_scale_rows () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let s = Matrix.scale_rows m [| 2.; 10. |] in
  check_float "row 0" 4. (Matrix.get s 0 1);
  check_float "row 1" 30. (Matrix.get s 1 0)

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p p) [ 5.; 1.; 4.; 2.; 3. ];
  let order = List.init 5 (fun _ -> fst (Option.get (Heap.pop h))) in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] order;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~priority:1. "a";
  Heap.push h ~priority:1. "b";
  Heap.push h ~priority:1. "c";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] order

let test_heap_peek_clear () =
  let h = Heap.create () in
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  Heap.push h ~priority:2. 0;
  Heap.push h ~priority:1. 1;
  (match Heap.peek h with
  | Some (p, v) ->
      check_float "peek priority" 1. p;
      Alcotest.(check int) "peek value" 1 v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Heap.length h);
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

(* --- Pool --- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "order preserved" (List.map (fun x -> x * x) xs)
    (Pool.map ~pool (fun x -> x * x) xs);
  Alcotest.(check (array int))
    "init matches" (Array.init 37 (fun i -> 3 * i))
    (Pool.init ~pool 37 (fun i -> 3 * i))

let test_pool_empty_and_singleton () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Pool.map ~pool Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~pool Fun.id [ 7 ])

let test_pool_exception () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.check_raises "first task exception re-raised"
    (Failure "task 5") (fun () ->
      ignore
        (Pool.init ~pool 32 (fun i ->
             if i = 5 then failwith "task 5" else i)));
  (* The pool must still be usable after a failed batch. *)
  Alcotest.(check (list int))
    "pool survives" [ 0; 2; 4 ]
    (Pool.map ~pool (fun x -> 2 * x) [ 0; 1; 2 ])

let test_pool_nested () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  (* Tasks submitting to their own pool must not deadlock: the joining
     task helps drain the queue. *)
  let rows =
    Pool.map ~pool
      (fun i -> Pool.map ~pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested maps"
    [ [ 0; 1; 2 ]; [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
    rows

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check int) "jobs" 2 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool

let prop_pool_map_equals_sequential =
  QCheck.Test.make ~name:"Pool.map ~jobs:4 = List.map" ~count:50
    QCheck.(list (float_range (-1e6) 1e6))
    (fun xs ->
      let f x = (x *. 1.7) -. (x /. 3.) in
      Pool.with_pool ~jobs:4 (fun pool -> Pool.map ~pool f xs) = List.map f xs)

(* Pre-split generators make randomized parallel tasks bit-identical to
   the sequential run — the pattern every lib/sim sweep relies on. *)
let prop_pool_presplit_rng_deterministic =
  QCheck.Test.make ~name:"pre-split rng tasks are jobs-invariant" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let task rng = Array.init 50 (fun _ -> Rng.float rng) in
      let run jobs =
        let master = Rng.create seed in
        let rngs = Array.init 8 (fun _ -> Rng.split master) in
        Pool.with_pool ~jobs (fun pool -> Pool.map_array ~pool task rngs)
      in
      run 1 = run 4)

(* --- Json --- *)

let test_json_to_string () =
  Alcotest.(check string)
    "object"
    {|{"a": 1, "b": [true, null, "x\n"], "c": 1.5}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x\n" ]);
            ("c", Json.Float 1.5);
          ]))

let test_json_float_repr () =
  Alcotest.(check string) "round-trip repr" "0.1" (Json.to_string (Json.Float 0.1));
  Alcotest.(check string)
    "17 digits when needed" "1.0000000000000002"
    (Json.to_string (Json.Float 1.0000000000000002));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "infinity is null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_save () =
  let path = Filename.temp_file "rcbr_json" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Json.save (Json.Obj [ ("k", Json.Int 3) ]) path;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "saved line" {|{"k": 3}|} line

(* --- Interrupt --- *)

(* SIGUSR1 rather than SIGINT so a failing test can still be Ctrl-C'd.
   OCaml delivers signals at safe points (allocations), so poll with an
   allocating no-op until the handler has run. *)
let test_interrupt_flag () =
  Fun.protect ~finally:(fun () ->
      Rcbr_util.Interrupt.reset ~signals:[ Sys.sigusr1 ] ())
  @@ fun () ->
  Rcbr_util.Interrupt.install_flag ~signals:[ Sys.sigusr1 ] ();
  Alcotest.(check bool) "clean before" false (Rcbr_util.Interrupt.requested ());
  Unix.kill (Unix.getpid ()) Sys.sigusr1;
  let rec wait n =
    if Rcbr_util.Interrupt.requested () then true
    else if n = 0 then false
    else begin
      ignore (Sys.opaque_identity (String.make 16 'x'));
      wait (n - 1)
    end
  in
  Alcotest.(check bool) "flag set after signal" true (wait 100_000);
  Rcbr_util.Interrupt.reset ~signals:[ Sys.sigusr1 ] ();
  Alcotest.(check bool) "reset clears the flag" false
    (Rcbr_util.Interrupt.requested ())

(* --- Properties --- *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h ~priority:x x) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.)) (float_range 0. 1.))
    (fun (xs, q) ->
      let arr = Array.of_list xs in
      let v = Stats.quantile arr q in
      v >= Stats.minimum arr -. 1e-9 && v <= Stats.maximum arr +. 1e-9)

let prop_log_sum_exp_ge_max =
  QCheck.Test.make ~name:"log_sum_exp >= max element" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-50.) 50.))
    (fun xs ->
      let arr = Array.of_list xs in
      Numeric.log_sum_exp arr >= Array.fold_left Float.max neg_infinity arr -. 1e-9)

let prop_solve_inverts =
  QCheck.Test.make ~name:"solve then multiply recovers b" ~count:100
    QCheck.(array_of_size (Gen.return 3) (float_range 1. 5.))
    (fun b ->
      (* Diagonally dominant matrix: always solvable. *)
      let a =
        Matrix.of_rows
          [| [| 10.; 1.; 2. |]; [| 1.; 12.; 3. |]; [| 2.; 1.; 9. |] |]
      in
      let x = Matrix.solve a b in
      let b' = Matrix.mat_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) b b')

(* Tables' sorted views against a reference model, under forced bucket
   collisions (8 keys in a table created with 2 buckets) and stacked
   [add] / [replace] / [remove] histories.  The model is the op list
   itself: the live binding of a key is the most recent one. *)
let prop_tables_sorted_views =
  QCheck.Test.make ~name:"Tables sorted views match the binding model"
    ~count:300
    QCheck.(list (triple (0 -- 2) (0 -- 7) small_int))
    (fun ops ->
      let tbl = Hashtbl.create 2 in
      let rec remove_first k = function
        | [] -> []
        | (k', _) :: rest when k' = k -> rest
        | b :: rest -> b :: remove_first k rest
      in
      let model =
        List.fold_left
          (fun m (op, k, v) ->
            match op with
            | 0 ->
                Hashtbl.add tbl k v;
                (k, v) :: m
            | 1 ->
                Hashtbl.replace tbl k v;
                (k, v) :: remove_first k m
            | _ ->
                Hashtbl.remove tbl k;
                remove_first k m)
          [] ops
      in
      let live = List.sort_uniq compare (List.map fst model) in
      let bindings = List.map (fun k -> (k, List.assoc k model)) live in
      Tables.sorted_keys tbl = live
      && Tables.sorted_bindings tbl = bindings
      && Tables.fold_sorted (fun k v acc -> (k, v) :: acc) tbl []
         = List.rev bindings
      &&
      let seen = ref [] in
      Tables.iter_sorted (fun k v -> seen := (k, v) :: !seen) tbl;
      List.rev !seen = bindings)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "poisson large" `Quick test_rng_poisson_large_lambda;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_rng_geometric_p1;
          Alcotest.test_case "choose weights" `Quick test_rng_choose_weights;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
          Alcotest.test_case "autocorrelation" `Quick test_stats_autocorrelation;
          Alcotest.test_case "online matches batch" `Quick
            test_stats_online_matches_batch;
          Alcotest.test_case "online precision" `Quick test_stats_online_precision;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "distribution" `Quick test_histogram_distribution;
          Alcotest.test_case "merge/scale" `Quick test_histogram_merge_scale;
          Alcotest.test_case "mean value" `Quick test_histogram_mean_value;
          Alcotest.test_case "grow in place" `Quick test_histogram_grow_in_place;
          Alcotest.test_case "sub/clear" `Quick test_histogram_sub_clear;
          Alcotest.test_case "add_weighted" `Quick test_histogram_add_weighted;
          Alcotest.test_case "iter_support" `Quick test_histogram_iter_support;
          Alcotest.test_case "normalize" `Quick test_histogram_normalize;
          Alcotest.test_case "log_mass" `Quick test_histogram_log_mass;
        ] );
      ( "numeric",
        [
          Alcotest.test_case "bisect sqrt" `Quick test_bisect_sqrt;
          Alcotest.test_case "bisect endpoint" `Quick test_bisect_endpoint_root;
          Alcotest.test_case "find_min_such_that" `Quick test_find_min_such_that;
          Alcotest.test_case "golden max" `Quick test_golden_max;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "mul identity" `Quick test_matrix_mul_identity;
          Alcotest.test_case "solve" `Quick test_matrix_solve;
          Alcotest.test_case "solve singular" `Quick test_matrix_solve_singular;
          Alcotest.test_case "transpose/vec" `Quick test_matrix_transpose_vec;
          Alcotest.test_case "perron stochastic" `Quick test_perron_stochastic;
          Alcotest.test_case "perron known" `Quick test_perron_known;
          Alcotest.test_case "perron diagonal" `Quick test_perron_diagonal;
          Alcotest.test_case "scale rows" `Quick test_scale_rows;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek/clear" `Quick test_heap_peek_clear;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "empty/singleton" `Quick test_pool_empty_and_singleton;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "nested" `Quick test_pool_nested;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
      ( "interrupt",
        [ Alcotest.test_case "flag set and reset" `Quick test_interrupt_flag ] );
      ( "json",
        [
          Alcotest.test_case "to_string" `Quick test_json_to_string;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "save" `Quick test_json_save;
        ] );
      ( "properties",
        q
          [
            prop_heap_sorts;
            prop_quantile_bounds;
            prop_log_sum_exp_ge_max;
            prop_solve_inverts;
            prop_pool_map_equals_sequential;
            prop_pool_presplit_rng_deterministic;
            prop_tables_sorted_views;
          ] );
    ]
