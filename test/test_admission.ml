(* Unit tests for Rcbr_admission: descriptors and the three admission
   controllers. *)

module Descriptor = Rcbr_admission.Descriptor
module Controller = Rcbr_admission.Controller
module Schedule = Rcbr_core.Schedule
module Chernoff = Rcbr_effbw.Chernoff

let check_close eps = Alcotest.(check (float eps))

let descriptor () =
  Descriptor.create ~levels:[| 10.; 20.; 40. |] ~fractions:[| 0.5; 0.3; 0.2 |]

(* --- Descriptor --- *)

let test_descriptor_basic () =
  let d = descriptor () in
  check_close 1e-12 "mean" 19. (Descriptor.mean_rate d);
  check_close 1e-12 "peak" 40. (Descriptor.peak_rate d);
  let m = Descriptor.to_marginal d in
  Chernoff.validate m;
  Alcotest.(check int) "levels" 3 (Array.length m)

let test_descriptor_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "levels not ascending" true
    (bad (fun () ->
         ignore (Descriptor.create ~levels:[| 10.; 5. |] ~fractions:[| 0.5; 0.5 |])));
  Alcotest.(check bool) "fractions not normalized" true
    (bad (fun () ->
         ignore (Descriptor.create ~levels:[| 1.; 2. |] ~fractions:[| 0.5; 0.2 |])));
  Alcotest.(check bool) "length mismatch" true
    (bad (fun () ->
         ignore (Descriptor.create ~levels:[| 1. |] ~fractions:[| 0.5; 0.5 |])));
  Alcotest.(check bool) "negative fraction" true
    (bad (fun () ->
         ignore
           (Descriptor.create ~levels:[| 1.; 2. |] ~fractions:[| -0.5; 1.5 |])))

let test_descriptor_of_schedule () =
  let s =
    Schedule.create ~fps:1. ~n_slots:10
      [
        { Schedule.start_slot = 0; rate = 10. };
        { Schedule.start_slot = 5; rate = 30. };
      ]
  in
  let d = Descriptor.of_schedule s in
  check_close 1e-12 "mean matches schedule" (Schedule.mean_rate s)
    (Descriptor.mean_rate d);
  check_close 1e-12 "peak" 30. (Descriptor.peak_rate d)

let test_max_admissible_monotone () =
  let d = descriptor () in
  let n1 = Descriptor.max_admissible d ~capacity:200. ~target:1e-3 in
  let n2 = Descriptor.max_admissible d ~capacity:400. ~target:1e-3 in
  Alcotest.(check bool) "capacity monotone" true (n2 >= n1);
  let strict = Descriptor.max_admissible d ~capacity:400. ~target:1e-9 in
  Alcotest.(check bool) "stricter target admits fewer" true (strict <= n2)

let test_max_admissible_leaves_slack () =
  (* The admission rule must be more conservative than pure mean-rate
     packing. *)
  let d = descriptor () in
  let n = Descriptor.max_admissible d ~capacity:400. ~target:1e-6 in
  Alcotest.(check bool) "slack against fluctuations" true
    (float_of_int n *. Descriptor.mean_rate d < 400.)

(* --- Controllers --- *)

let test_perfect_admits_to_limit () =
  let d = descriptor () in
  let capacity = 400. and target = 1e-3 in
  let limit = Descriptor.max_admissible d ~capacity ~target in
  let ctl = Controller.perfect ~descriptor:d ~capacity ~target in
  Alcotest.(check string) "name" "perfect" (Controller.name ctl);
  for call = 1 to limit do
    Alcotest.(check bool) "admits" true (Controller.admit ctl ~now:0.);
    Controller.on_admit ctl ~now:0. ~call ~rate:10.
  done;
  Alcotest.(check int) "in system" limit (Controller.n_in_system ctl);
  Alcotest.(check bool) "rejects past limit" false (Controller.admit ctl ~now:0.);
  (* A departure frees a slot. *)
  Controller.on_depart ctl ~now:1. ~call:1;
  Alcotest.(check bool) "admits again" true (Controller.admit ctl ~now:1.)

let test_memoryless_empty_system_admits () =
  let ctl = Controller.memoryless ~capacity:100. ~target:1e-3 in
  Alcotest.(check bool) "no info admits" true (Controller.admit ctl ~now:0.)

let test_memoryless_uses_instantaneous_rates () =
  (* If every current call sits at a low rate, the memoryless scheme
     sees a lean distribution and over-admits; if they sit at the peak,
     it refuses.  This is exactly its non-robustness. *)
  let capacity = 100. and target = 1e-6 in
  let low = Controller.memoryless ~capacity ~target in
  for call = 1 to 4 do
    Controller.on_admit low ~now:0. ~call ~rate:10.
  done;
  let lean_admits = Controller.admit low ~now:0. in
  let high = Controller.memoryless ~capacity ~target in
  for call = 1 to 4 do
    Controller.on_admit high ~now:0. ~call ~rate:25.
  done;
  let fat_admits = Controller.admit high ~now:0. in
  Alcotest.(check bool) "lean view admits" true lean_admits;
  Alcotest.(check bool) "fat view refuses" false fat_admits

let test_memory_learns_history () =
  (* Calls that spent most of their life at 30 but currently sit at 10:
     the memory scheme must still see the 30s. *)
  let capacity = 100. and target = 1e-6 in
  let ctl = Controller.memory ~capacity ~target in
  for call = 1 to 4 do
    Controller.on_admit ctl ~now:0. ~call ~rate:30.;
    (* 100 seconds at rate 30, then drop to 10 just now. *)
    Controller.on_renegotiate ctl ~now:100. ~call ~rate:10.
  done;
  let memory_decision = Controller.admit ctl ~now:101. in
  (* The memoryless scheme in the same instantaneous state admits. *)
  let ml = Controller.memoryless ~capacity ~target in
  for call = 1 to 4 do
    Controller.on_admit ml ~now:0. ~call ~rate:10.
  done;
  Alcotest.(check bool) "memoryless fooled" true (Controller.admit ml ~now:101.);
  Alcotest.(check bool) "memory remembers the peaks" false memory_decision

let test_memory_fresh_calls_fallback () =
  let ctl = Controller.memory ~capacity:1000. ~target:1e-3 in
  Controller.on_admit ctl ~now:0. ~call:1 ~rate:10.;
  (* No elapsed time at all: falls back to instantaneous rates. *)
  Alcotest.(check bool) "does not crash, decides" true
    (Controller.admit ctl ~now:0. || true)

let test_always_admit () =
  let ctl = Controller.always_admit () in
  for call = 1 to 1000 do
    Alcotest.(check bool) "admits" true (Controller.admit ctl ~now:0.);
    Controller.on_admit ctl ~now:0. ~call ~rate:1e9
  done

let test_departure_bookkeeping () =
  let ctl = Controller.memoryless ~capacity:100. ~target:1e-3 in
  Controller.on_admit ctl ~now:0. ~call:1 ~rate:10.;
  Controller.on_admit ctl ~now:0. ~call:2 ~rate:10.;
  Alcotest.(check int) "two in system" 2 (Controller.n_in_system ctl);
  Controller.on_depart ctl ~now:1. ~call:1;
  Alcotest.(check int) "one left" 1 (Controller.n_in_system ctl);
  (* Unknown renegotiations are ignored rather than crashing. *)
  Controller.on_renegotiate ctl ~now:2. ~call:99 ~rate:50.;
  Alcotest.(check int) "still one" 1 (Controller.n_in_system ctl)

(* --- Fast path: modes, stats, and incremental-vs-rebuild identity --- *)

let test_mode_switch () =
  let ctl = Controller.memory ~capacity:100. ~target:1e-3 in
  Alcotest.(check bool) "starts fast" true (Controller.mode ctl = Controller.Fast);
  Controller.set_mode ctl Controller.Legacy;
  Alcotest.(check bool) "switched" true (Controller.mode ctl = Controller.Legacy)

let test_stats_counting () =
  let ctl = Controller.memoryless ~capacity:100. ~target:1e-3 in
  let h0 = (Controller.stats ctl).Controller.decision_hash in
  ignore (Controller.admit ctl ~now:0.);
  Controller.on_admit ctl ~now:0. ~call:1 ~rate:10.;
  ignore (Controller.admit ctl ~now:1.);
  let st = Controller.stats ctl in
  Alcotest.(check int) "decisions" 2 st.Controller.decisions;
  Alcotest.(check int) "admits" 2 st.Controller.admits;
  Alcotest.(check bool) "hash moved" true (st.Controller.decision_hash <> h0);
  Alcotest.(check int) "no legacy evals in fast mode" 0
    st.Controller.legacy_evals;
  Alcotest.(check bool) "solver worked" true
    (st.Controller.solver.Chernoff.Solver.fits_evals > 0)

(* A deterministic interpreter for abstract event scripts, so the same
   script can drive several controllers and qcheck can shrink it.  Each
   step advances time and either admits a new call, renegotiates or
   departs a random live call, or just asks for a decision. *)
let rates = [| 10.; 20.; 40.; 80. |]

let apply_script ctl script =
  let next = ref 0 and active = ref [] and now = ref 0. in
  List.iter
    (fun (op, a) ->
      now := !now +. 0.25 +. (0.5 *. float_of_int (a mod 7));
      match op with
      | 0 ->
          if Controller.admit ctl ~now:!now then begin
            incr next;
            Controller.on_admit ctl ~now:!now ~call:!next ~rate:rates.(a mod 4);
            active := !next :: !active
          end
      | 1 -> (
          match !active with
          | [] -> ()
          | calls ->
              let call = List.nth calls (a mod List.length calls) in
              Controller.on_renegotiate ctl ~now:!now ~call ~rate:rates.(a mod 4))
      | 2 -> (
          match !active with
          | [] -> ()
          | calls ->
              let call = List.nth calls (a mod List.length calls) in
              Controller.on_depart ctl ~now:!now ~call;
              active := List.filter (fun c -> c <> call) !active)
      | _ -> ignore (Controller.admit ctl ~now:!now))
    script;
  !now

let script_gen =
  QCheck.Gen.(
    list_size (int_range 5 80) (pair (int_range 0 3) (int_range 0 1000)))

let prop_incremental_equals_rebuild =
  (* Property (a): after any event sequence, the incrementally
     maintained time-weighted aggregate matches a from-scratch rebuild
     from the per-call records to within float roundoff. *)
  QCheck.Test.make ~name:"incremental aggregate equals rebuild" ~count:200
    (QCheck.make script_gen) (fun script ->
      let ctl = Controller.memory ~capacity:150. ~target:1e-3 in
      let now = apply_script ctl script in
      Controller.debug_aggregate_deviation ctl ~now <= 1e-9)

let prop_fast_equals_legacy =
  (* The fast path must reproduce the seed's decision sequence bit for
     bit: same script, same admit/deny hash, for both measurement-based
     schemes. *)
  let scheme =
    QCheck.Gen.(oneofl [ Controller.memory; Controller.memoryless ])
  in
  QCheck.Test.make ~name:"fast and legacy decisions identical" ~count:150
    (QCheck.make QCheck.Gen.(pair scheme script_gen)) (fun (make, script) ->
      let fast = make ~capacity:150. ~target:1e-3 in
      let legacy = make ~capacity:150. ~target:1e-3 in
      Controller.set_mode legacy Controller.Legacy;
      ignore (apply_script fast script);
      ignore (apply_script legacy script);
      let sf = Controller.stats fast and sl = Controller.stats legacy in
      sf.Controller.decisions = sl.Controller.decisions
      && sf.Controller.decision_hash = sl.Controller.decision_hash)

let prop_check_mode_no_mismatch =
  QCheck.Test.make ~name:"check mode finds no mismatches" ~count:150
    (QCheck.make script_gen) (fun script ->
      let ctl = Controller.memory ~capacity:150. ~target:1e-3 in
      Controller.set_mode ctl Controller.Check;
      ignore (apply_script ctl script);
      let st = Controller.stats ctl in
      st.Controller.mismatches = 0
      && st.Controller.legacy_evals = st.Controller.decisions)

(* --- Batched admission: tick cache vs per-decision ------------------- *)

(* Same-tick arrival storm: denials repeat at one timestamp, so the
   batched controller must serve them from its tick cache while
   producing the exact per-decision admit/deny sequence. *)
let test_batched_admission () =
  let capacity = 100. and target = 1e-6 in
  let plain = Controller.memory ~capacity ~target in
  let batched = Controller.memory ~capacity ~target in
  Alcotest.(check bool) "off by default" false (Controller.batched batched);
  Controller.set_batched batched true;
  Alcotest.(check bool) "flag reads back" true (Controller.batched batched);
  let now = ref 0. and denied = ref 0 in
  for call = 1 to 40 do
    let a = Controller.admit plain ~now:!now in
    let b = Controller.admit batched ~now:!now in
    Alcotest.(check bool) "same decision" a b;
    if a then begin
      Controller.on_admit plain ~now:!now ~call ~rate:25.;
      Controller.on_admit batched ~now:!now ~call ~rate:25.
    end
    else incr denied;
    if call mod 10 = 0 then now := !now +. 1.
  done;
  let sp = Controller.stats plain and sb = Controller.stats batched in
  Alcotest.(check int) "decision hash identical" sp.Controller.decision_hash
    sb.Controller.decision_hash;
  Alcotest.(check bool) "storm produced denials" true (!denied > 0);
  Alcotest.(check bool) "repeat decisions served from the cache" true
    (sb.Controller.batch_hits > 0);
  Alcotest.(check int) "unbatched never hits" 0 sp.Controller.batch_hits;
  (* Toggling batching off drops the cache; decisions stay identical. *)
  Controller.set_batched batched false;
  Alcotest.(check bool) "same decision after toggle"
    (Controller.admit plain ~now:!now)
    (Controller.admit batched ~now:!now)

(* apply_script with time advancing only between ticks: repeated
   same-now decisions interleave with admissions, renegotiations and
   departures, hitting both the cache and every invalidation path. *)
let apply_script_ticked ctl script =
  let next = ref 0 and active = ref [] and now = ref 0. in
  List.iter
    (fun (op, a) ->
      if a mod 3 = 0 then now := !now +. 0.5 +. float_of_int (a mod 5);
      match op with
      | 0 ->
          if Controller.admit ctl ~now:!now then begin
            incr next;
            Controller.on_admit ctl ~now:!now ~call:!next ~rate:rates.(a mod 4);
            active := !next :: !active
          end
      | 1 -> (
          match !active with
          | [] -> ()
          | calls ->
              let call = List.nth calls (a mod List.length calls) in
              Controller.on_renegotiate ctl ~now:!now ~call ~rate:rates.(a mod 4))
      | 2 -> (
          match !active with
          | [] -> ()
          | calls ->
              let call = List.nth calls (a mod List.length calls) in
              Controller.on_depart ctl ~now:!now ~call;
              active := List.filter (fun c -> c <> call) !active)
      | _ -> ignore (Controller.admit ctl ~now:!now))
    script

let prop_batched_equals_per_decision =
  (* The batching contract: for any event sequence, the batched
     controller's admit/deny sequence is bitwise the per-decision one. *)
  let scheme =
    QCheck.Gen.(oneofl [ Controller.memory; Controller.memoryless ])
  in
  QCheck.Test.make ~name:"batched decisions = per-decision sequence" ~count:200
    (QCheck.make QCheck.Gen.(pair scheme script_gen)) (fun (make, script) ->
      let plain = make ~capacity:150. ~target:1e-3 in
      let batched = make ~capacity:150. ~target:1e-3 in
      Controller.set_batched batched true;
      apply_script_ticked plain script;
      apply_script_ticked batched script;
      let sp = Controller.stats plain and sb = Controller.stats batched in
      sp.Controller.decisions = sb.Controller.decisions
      && sp.Controller.admits = sb.Controller.admits
      && sp.Controller.decision_hash = sb.Controller.decision_hash)

let () =
  Alcotest.run "rcbr_admission"
    [
      ( "descriptor",
        [
          Alcotest.test_case "basic" `Quick test_descriptor_basic;
          Alcotest.test_case "validation" `Quick test_descriptor_validation;
          Alcotest.test_case "of schedule" `Quick test_descriptor_of_schedule;
          Alcotest.test_case "max admissible monotone" `Quick
            test_max_admissible_monotone;
          Alcotest.test_case "slack" `Quick test_max_admissible_leaves_slack;
        ] );
      ( "controller",
        [
          Alcotest.test_case "perfect limit" `Quick test_perfect_admits_to_limit;
          Alcotest.test_case "memoryless empty" `Quick
            test_memoryless_empty_system_admits;
          Alcotest.test_case "memoryless instantaneous" `Quick
            test_memoryless_uses_instantaneous_rates;
          Alcotest.test_case "memory learns" `Quick test_memory_learns_history;
          Alcotest.test_case "memory fresh fallback" `Quick
            test_memory_fresh_calls_fallback;
          Alcotest.test_case "always admit" `Quick test_always_admit;
          Alcotest.test_case "departure bookkeeping" `Quick
            test_departure_bookkeeping;
        ] );
      ( "fast path",
        [
          Alcotest.test_case "mode switch" `Quick test_mode_switch;
          Alcotest.test_case "stats counting" `Quick test_stats_counting;
          Alcotest.test_case "batched tick cache" `Quick test_batched_admission;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_incremental_equals_rebuild;
            prop_fast_equals_legacy;
            prop_check_mode_no_mismatch;
            prop_batched_equals_per_decision;
          ] );
    ]
