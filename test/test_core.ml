(* Unit and property tests for Rcbr_core: schedules, the optimal trellis
   algorithm (checked against exhaustive enumeration), and the online
   heuristic. *)

module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Rate_grid = Rcbr_core.Rate_grid
module Optimal = Rcbr_core.Optimal
module Beam = Rcbr_core.Beam
module Online = Rcbr_core.Online
module Predictor = Rcbr_core.Predictor
module Fluid = Rcbr_queue.Fluid

let check_close eps = Alcotest.(check (float eps))

(* --- Schedule --- *)

let sched_4 () =
  Schedule.create ~fps:2. ~n_slots:8
    [
      { Schedule.start_slot = 0; rate = 10. };
      { Schedule.start_slot = 2; rate = 30. };
      { Schedule.start_slot = 6; rate = 20. };
    ]

let test_schedule_basic () =
  let s = sched_4 () in
  Alcotest.(check int) "renegotiations" 2 (Schedule.n_renegotiations s);
  check_close 1e-9 "duration" 4. (Schedule.duration s);
  check_close 1e-9 "rate at 0" 10. (Schedule.rate_at s 0);
  check_close 1e-9 "rate at 1" 10. (Schedule.rate_at s 1);
  check_close 1e-9 "rate at 2" 30. (Schedule.rate_at s 2);
  check_close 1e-9 "rate at 5" 30. (Schedule.rate_at s 5);
  check_close 1e-9 "rate at 7" 20. (Schedule.rate_at s 7);
  (* mean = (2*10 + 4*30 + 2*20)/8 *)
  check_close 1e-9 "mean rate" 22.5 (Schedule.mean_rate s);
  check_close 1e-9 "peak" 30. (Schedule.peak_rate s);
  check_close 1e-9 "mean interval" (4. /. 3.) (Schedule.mean_renegotiation_interval s)

let test_schedule_to_rates_matches_rate_at () =
  let s = sched_4 () in
  let rates = Schedule.to_rates s in
  for i = 0 to 7 do
    check_close 1e-12 "consistent" (Schedule.rate_at s i) rates.(i)
  done

let test_schedule_merges_equal_rates () =
  let s =
    Schedule.create ~fps:1. ~n_slots:4
      [
        { Schedule.start_slot = 0; rate = 5. };
        { Schedule.start_slot = 2; rate = 5. };
      ]
  in
  Alcotest.(check int) "merged" 0 (Schedule.n_renegotiations s)

let test_schedule_validation () =
  let bad segs = try ignore (Schedule.create ~fps:1. ~n_slots:4 segs); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true (bad []);
  Alcotest.(check bool) "first not at 0" true
    (bad [ { Schedule.start_slot = 1; rate = 1. } ]);
  Alcotest.(check bool) "not increasing" true
    (bad
       [
         { Schedule.start_slot = 0; rate = 1. };
         { Schedule.start_slot = 0; rate = 2. };
       ]);
  Alcotest.(check bool) "beyond end" true
    (bad
       [
         { Schedule.start_slot = 0; rate = 1. };
         { Schedule.start_slot = 9; rate = 2. };
       ]);
  Alcotest.(check bool) "negative rate" true
    (bad [ { Schedule.start_slot = 0; rate = -1. } ])

let test_schedule_cost () =
  let s = sched_4 () in
  (* service bits = mean * duration = 22.5 * 4 = 90 *)
  check_close 1e-9 "cost" ((2. *. 7.) +. 90.)
    (Schedule.cost s ~reneg_cost:7. ~bandwidth_cost:1.)

let test_schedule_marginal () =
  let s = sched_4 () in
  let m = Schedule.marginal s in
  let total = Array.fold_left (fun a (p, _) -> a +. p) 0. m in
  check_close 1e-9 "sums to 1" 1. total;
  let mean = Array.fold_left (fun a (p, r) -> a +. (p *. r)) 0. m in
  check_close 1e-9 "marginal mean = schedule mean" (Schedule.mean_rate s) mean

let test_schedule_shift () =
  let s = sched_4 () in
  let sh = Schedule.shift s ~slots:2 in
  check_close 1e-9 "shifted start" 30. (Schedule.rate_at sh 0);
  check_close 1e-9 "wrap" 10. (Schedule.rate_at sh 6);
  check_close 1e-9 "mean preserved" (Schedule.mean_rate s) (Schedule.mean_rate sh);
  let full = Schedule.shift s ~slots:8 in
  for i = 0 to 7 do
    check_close 1e-12 "full shift identity" (Schedule.rate_at s i)
      (Schedule.rate_at full i)
  done

let test_schedule_constant () =
  let s = Schedule.constant ~fps:1. ~n_slots:10 42. in
  Alcotest.(check int) "no renegotiations" 0 (Schedule.n_renegotiations s);
  check_close 1e-9 "rate" 42. (Schedule.rate_at s 5)

let test_bandwidth_efficiency () =
  let trace = Trace.create ~fps:2. (Array.make 8 10.) in
  (* trace mean = 20 b/s; schedule mean 22.5 -> eff = 20/22.5 *)
  check_close 1e-9 "efficiency" (20. /. 22.5)
    (Schedule.bandwidth_efficiency (sched_4 ()) ~trace)

(* --- Rate_grid --- *)

let test_grid_uniform () =
  let g = Rate_grid.uniform ~lo:0. ~hi:100. ~levels:5 in
  Alcotest.(check int) "levels" 5 (Rate_grid.levels g);
  check_close 1e-9 "first" 0. (Rate_grid.rate g 0);
  check_close 1e-9 "step" 25. (Rate_grid.rate g 1);
  check_close 1e-9 "top" 100. (Rate_grid.top g)

let test_grid_quantize () =
  let g = Rate_grid.uniform ~lo:0. ~hi:100. ~levels:5 in
  check_close 1e-9 "exact" 25. (Rate_grid.quantize_up g 25.);
  check_close 1e-9 "rounds up" 50. (Rate_grid.quantize_up g 25.1);
  check_close 1e-9 "below range" 0. (Rate_grid.quantize_up g (-3.));
  check_close 1e-9 "above range clamps" 100. (Rate_grid.quantize_up g 1000.);
  Alcotest.(check int) "index" 2 (Rate_grid.index_up g 26.)

let test_grid_covering () =
  let g = Rate_grid.uniform ~lo:0. ~hi:100. ~levels:3 in
  let g' = Rate_grid.covering g ~peak:250. in
  Alcotest.(check int) "extra level" 4 (Rate_grid.levels g');
  check_close 1e-9 "new top" 250. (Rate_grid.top g');
  let same = Rate_grid.covering g ~peak:50. in
  Alcotest.(check int) "unchanged" 3 (Rate_grid.levels same)

let test_grid_paper_default () =
  let g = Rate_grid.paper_default in
  Alcotest.(check int) "20 levels" 20 (Rate_grid.levels g);
  check_close 1e-9 "48 kb/s" 48_000. (Rate_grid.rate g 0);
  check_close 1e-9 "2.4 Mb/s" 2_400_000. (Rate_grid.top g)

(* --- Optimal: exhaustive cross-check --- *)

(* Enumerate every rate sequence over the grid and return the minimum
   cost subject to the buffer bound; the trellis must match exactly. *)
let brute_force ~grid ~reneg_cost ~bandwidth_cost ~buffer trace =
  let m = Rate_grid.levels grid in
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let best = ref infinity in
  let rec go t level buffer_occ cost =
    if cost >= !best then ()
    else if t = n then best := min !best cost
    else
      for l = 0 to m - 1 do
        let change = if t > 0 && l <> level then reneg_cost else 0. in
        let b = Float.max 0. (buffer_occ +. Trace.frame trace t -. (Rate_grid.rate grid l *. tau)) in
        if b <= buffer then
          go (t + 1) l b
            (cost +. change +. (bandwidth_cost *. Rate_grid.rate grid l *. tau))
      done
  in
  go 0 (-1) 0. 0.;
  !best

let trellis_cost params trace =
  let s = Optimal.solve params trace in
  Schedule.cost s ~reneg_cost:params.Optimal.reneg_cost
    ~bandwidth_cost:params.Optimal.bandwidth_cost

let test_optimal_matches_brute_force_hand () =
  let grid = Rate_grid.of_rates [| 5.; 10.; 20. |] in
  let trace = Trace.create ~fps:1. [| 0.; 18.; 18.; 2.; 2.; 0. |] in
  let params =
    {
      Optimal.grid;
      reneg_cost = 4.;
      bandwidth_cost = 1.;
      constraint_ = Optimal.Buffer_bound 10.;
    }
  in
  let expected =
    brute_force ~grid ~reneg_cost:4. ~bandwidth_cost:1. ~buffer:10. trace
  in
  check_close 1e-9 "optimal cost" expected (trellis_cost params trace)

let test_optimal_prefers_single_rate_when_renegotiation_expensive () =
  let grid = Rate_grid.of_rates [| 5.; 10.; 20. |] in
  let trace = Trace.create ~fps:1. [| 20.; 5.; 5.; 5. |] in
  let params =
    {
      Optimal.grid;
      reneg_cost = 1e9;
      bandwidth_cost = 1.;
      constraint_ = Optimal.Buffer_bound 0.;
    }
  in
  let s = Optimal.solve params trace in
  Alcotest.(check int) "no renegotiation" 0 (Schedule.n_renegotiations s);
  check_close 1e-9 "peak rate chosen" 20. (Schedule.rate_at s 0)

let test_optimal_tracks_when_renegotiation_free () =
  let grid = Rate_grid.of_rates [| 5.; 10.; 20. |] in
  let trace = Trace.create ~fps:1. [| 20.; 5.; 5.; 20. |] in
  let params =
    {
      Optimal.grid;
      reneg_cost = 0.;
      bandwidth_cost = 1.;
      constraint_ = Optimal.Buffer_bound 0.;
    }
  in
  let s = Optimal.solve params trace in
  check_close 1e-9 "follows demand 0" 20. (Schedule.rate_at s 0);
  check_close 1e-9 "follows demand 1" 5. (Schedule.rate_at s 1);
  check_close 1e-9 "follows demand 3" 20. (Schedule.rate_at s 3)

let test_optimal_feasible_no_loss () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:3_000 ~seed:4 () in
  let params = Optimal.default_params ~cost_ratio:1e5 trace in
  let s = Optimal.solve params trace in
  (match params.Optimal.constraint_ with
  | Optimal.Buffer_bound b ->
      let r = Schedule.simulate_buffer s ~trace ~capacity:b in
      check_close 1e-12 "no loss" 0. r.Fluid.bits_lost
  | Optimal.Delay_bound _ -> Alcotest.fail "expected buffer bound");
  Alcotest.(check bool) "schedule spans trace" true
    (Schedule.n_slots s = Trace.length trace)

let test_optimal_infeasible_raises () =
  let grid = Rate_grid.of_rates [| 1. |] in
  let trace = Trace.create ~fps:1. [| 100.; 100. |] in
  let params =
    {
      Optimal.grid;
      reneg_cost = 1.;
      bandwidth_cost = 1.;
      constraint_ = Optimal.Buffer_bound 10.;
    }
  in
  Alcotest.(check bool) "raises Infeasible" true
    (try
       ignore (Optimal.solve params trace);
       false
     with Optimal.Infeasible _ -> true)

let test_optimal_cost_ratio_tradeoff () =
  (* Raising the renegotiation price must not increase the renegotiation
     count (Fig. 2's tradeoff). *)
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:3_000 ~seed:8 () in
  let renegs ratio =
    let p = Optimal.default_params ~cost_ratio:ratio trace in
    Schedule.n_renegotiations (Optimal.solve p trace)
  in
  let cheap = renegs 1e4 and dear = renegs 1e6 in
  Alcotest.(check bool) "fewer renegotiations when dearer" true (dear <= cheap);
  Alcotest.(check bool) "cheap renegotiates a lot" true (cheap > 10)

let test_optimal_efficiency_close_to_one () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:5_000 ~seed:15 () in
  let p = Optimal.default_params ~cost_ratio:1e5 trace in
  let s = Optimal.solve p trace in
  Alcotest.(check bool) "efficiency above 0.9" true
    (Schedule.bandwidth_efficiency s ~trace > 0.9)

let test_optimal_delay_bound () =
  let grid = Rate_grid.of_rates [| 5.; 10.; 20. |] in
  let trace = Trace.create ~fps:1. [| 0.; 18.; 18.; 2.; 2.; 0. |] in
  let d = 1 in
  let params =
    {
      Optimal.grid;
      reneg_cost = 4.;
      bandwidth_cost = 1.;
      constraint_ = Optimal.Delay_bound d;
    }
  in
  let s = Optimal.solve params trace in
  (* Check the delay constraint via cumulative sums: arrivals through t
     must depart by t + d. *)
  let rates = Schedule.to_rates s in
  let n = Trace.length trace in
  let arr = Array.make (n + 1) 0. and srv = Array.make (n + 1) 0. in
  for t = 0 to n - 1 do
    arr.(t + 1) <- arr.(t) +. Trace.frame trace t;
    srv.(t + 1) <- srv.(t) +. rates.(t)
  done;
  for t = 0 to n - 1 - d do
    Alcotest.(check bool) "delay met" true (srv.(t + d + 1) >= arr.(t + 1) -. 1e-9)
  done

let test_optimal_stats () =
  let trace = Trace.create ~fps:1. [| 1.; 2.; 3. |] in
  let grid = Rate_grid.of_rates [| 1.; 2.; 3. |] in
  let params =
    {
      Optimal.grid;
      reneg_cost = 1.;
      bandwidth_cost = 1.;
      constraint_ = Optimal.Buffer_bound 5.;
    }
  in
  let _, stats = Optimal.solve_with_stats params trace in
  Alcotest.(check int) "slots" 3 stats.Optimal.slots;
  Alcotest.(check bool) "expanded > 0" true (stats.Optimal.expanded > 0);
  Alcotest.(check bool) "frontier > 0" true (stats.Optimal.max_frontier > 0)

(* --- Optimal: randomized exhaustive cross-check --- *)

let prop_optimal_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 7 in
      let* frames = array_size (return n) (float_range 0. 25.) in
      let* k = int_range 1 20 in
      let* b = float_range 5. 40. in
      return (frames, float_of_int k, b))
  in
  QCheck.Test.make ~name:"trellis equals exhaustive search" ~count:150
    (QCheck.make gen) (fun (frames, reneg_cost, buffer) ->
      let grid = Rate_grid.of_rates [| 5.; 12.; 25. |] in
      let trace = Trace.create ~fps:1. frames in
      let params =
        {
          Optimal.grid;
          reneg_cost;
          bandwidth_cost = 1.;
          constraint_ = Optimal.Buffer_bound buffer;
        }
      in
      let expected =
        brute_force ~grid ~reneg_cost ~bandwidth_cost:1. ~buffer trace
      in
      match Optimal.solve params trace with
      | s ->
          let got = Schedule.cost s ~reneg_cost ~bandwidth_cost:1. in
          Float.abs (got -. expected) < 1e-6
      | exception Optimal.Infeasible _ -> Float.equal expected infinity)

(* Brute force with the delay-bound constraint of formula (5). *)
let brute_force_delay ~grid ~reneg_cost ~bandwidth_cost ~delay trace =
  let m = Rate_grid.levels grid in
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let prefix = Array.make (n + 1) 0. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. Trace.frame trace i
  done;
  let bound t = prefix.(t + 1) -. prefix.(max 0 (t - delay + 1)) in
  let best = ref infinity in
  let rec go t level buffer_occ cost =
    if cost >= !best then ()
    else if t = n then best := min !best cost
    else
      for l = 0 to m - 1 do
        let change = if t > 0 && l <> level then reneg_cost else 0. in
        let b =
          Float.max 0.
            (buffer_occ +. Trace.frame trace t -. (Rate_grid.rate grid l *. tau))
        in
        if b <= bound t +. 1e-9 then
          go (t + 1) l b
            (cost +. change +. (bandwidth_cost *. Rate_grid.rate grid l *. tau))
      done
  in
  go 0 (-1) 0. 0.;
  !best

let prop_optimal_delay_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 7 in
      let* frames = array_size (return n) (float_range 0. 25.) in
      let* k = int_range 1 15 in
      let* d = int_range 0 3 in
      return (frames, float_of_int k, d))
  in
  QCheck.Test.make ~name:"delay-bound trellis equals exhaustive search"
    ~count:120 (QCheck.make gen) (fun (frames, reneg_cost, delay) ->
      let grid = Rate_grid.of_rates [| 5.; 12.; 25. |] in
      let trace = Trace.create ~fps:1. frames in
      let params =
        {
          Optimal.grid;
          reneg_cost;
          bandwidth_cost = 1.;
          constraint_ = Optimal.Delay_bound delay;
        }
      in
      let expected =
        brute_force_delay ~grid ~reneg_cost ~bandwidth_cost:1. ~delay trace
      in
      match Optimal.solve params trace with
      | s ->
          let got = Schedule.cost s ~reneg_cost ~bandwidth_cost:1. in
          Float.abs (got -. expected) < 1e-6
      | exception Optimal.Infeasible _ -> Float.equal expected infinity)

let prop_shift_marginal_invariant =
  let gen =
    QCheck.Gen.(
      let* n = int_range 4 40 in
      let* k = int_range 0 60 in
      let* rates = array_size (int_range 1 5) (float_range 1. 9.) in
      return (n, k, rates))
  in
  QCheck.Test.make ~name:"shift preserves the rate marginal" ~count:150
    (QCheck.make gen) (fun (n, k, rates) ->
      let segs =
        List.filteri
          (fun i _ -> i * 3 < n)
          (Array.to_list (Array.mapi (fun i r -> (i * 3, r)) rates))
        |> List.map (fun (start_slot, rate) -> { Schedule.start_slot; rate })
      in
      let s = Schedule.create ~fps:1. ~n_slots:n segs in
      let sorted m = List.sort compare (Array.to_list m) in
      sorted (Schedule.marginal s)
      = sorted (Schedule.marginal (Schedule.shift s ~slots:k)))

let prop_optimal_schedule_feasible =
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 30 in
      let* frames = array_size (return n) (float_range 0. 25.) in
      return frames)
  in
  QCheck.Test.make ~name:"trellis schedules never overflow" ~count:100
    (QCheck.make gen) (fun frames ->
      let grid = Rate_grid.of_rates [| 5.; 12.; 25. |] in
      let trace = Trace.create ~fps:1. frames in
      let buffer = 30. in
      let params =
        {
          Optimal.grid;
          reneg_cost = 3.;
          bandwidth_cost = 1.;
          constraint_ = Optimal.Buffer_bound buffer;
        }
      in
      match Optimal.solve params trace with
      | s ->
          let r = Schedule.simulate_buffer s ~trace ~capacity:buffer in
          Float.equal r.Fluid.bits_lost 0.
      | exception Optimal.Infeasible _ -> true)

(* --- Optimal: approximation knobs ----------------------------------- *)

(* Both knobs must always return a feasible schedule whose cost is never
   below the exact optimum.  Their upper bounds differ:

   - [frontier_cap] keeps exact buffers and costs for the retained
     paths, so the error does not compound; on these small traces even
     cap = 2 stays within 2x the exact cost (empirically it is almost
     always 1x).
   - [buffer_quantum = q] snaps occupancies up by < q per slot and the
     overestimate accumulates, so after n slots a schedule's quantized
     trajectory exceeds its true one by < n*q.  Hence every schedule
     that is exactly feasible for a buffer of B - n*q survives the
     quantized pruning, giving the provable bound
     quantized_cost(B) <= exact_cost(B - n*q). *)

let approx_gen =
  QCheck.Gen.(
    let* n = int_range 3 10 in
    let* frames = array_size (return n) (float_range 0. 25.) in
    let* k = int_range 1 15 in
    return (frames, float_of_int k))

let approx_print (frames, k) =
  Printf.sprintf "frames=[|%s|] reneg=%g"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.17g") frames)))
    k

let approx_buffer = 30.

let approx_params reneg_cost =
  {
    Optimal.grid = Rate_grid.of_rates [| 5.; 12.; 25. |];
    reneg_cost;
    bandwidth_cost = 1.;
    constraint_ = Optimal.Buffer_bound approx_buffer;
  }

let schedule_cost ~reneg_cost s =
  Schedule.cost s ~reneg_cost ~bandwidth_cost:1.

(* Shared harness: [knob params trace] runs the approximate solver;
   [upper params trace] returns the bound its cost must stay under
   (None: the bound's reference problem is itself infeasible, so only
   feasibility and cost >= exact are required). *)
let check_knob ~name ~knob ~upper =
  QCheck.Test.make ~name ~count:150 (QCheck.make ~print:approx_print approx_gen)
    (fun (frames, reneg_cost) ->
      let trace = Trace.create ~fps:1. frames in
      let params = approx_params reneg_cost in
      match Optimal.solve params trace with
      | exception Optimal.Infeasible _ -> true
      | exact_s -> (
          let exact = schedule_cost ~reneg_cost exact_s in
          match knob params trace with
          | exception Optimal.Infeasible _ ->
              (* Allowed only when the bound's reference problem is
                 infeasible too. *)
              upper params trace = None
          | s, _ ->
              let r =
                Schedule.simulate_buffer s ~trace ~capacity:approx_buffer
              in
              let cost = schedule_cost ~reneg_cost s in
              Float.equal r.Fluid.bits_lost 0.
              && cost >= exact -. 1e-9
              &&
              (match upper params trace with
              | None -> true
              | Some bound -> cost <= bound +. 1e-9)))

let prop_frontier_cap_feasible_bounded =
  check_knob ~name:"frontier_cap=2: feasible, exact <= cost <= 2x exact"
    ~knob:(fun params trace ->
      Optimal.solve_with_stats ~frontier_cap:2 params trace)
    ~upper:(fun params trace ->
      match Optimal.solve params trace with
      | s -> Some (2. *. schedule_cost ~reneg_cost:params.Optimal.reneg_cost s)
      | exception Optimal.Infeasible _ -> None)

let prop_buffer_quantum_feasible_bounded =
  (* q = B/(2n): the compounded overestimate stays under B/2, so the
     exact optimum at buffer B/2 bounds the quantized cost. *)
  let quantum trace = approx_buffer /. float_of_int (2 * Trace.length trace) in
  check_knob ~name:"buffer_quantum=B/2n: feasible, exact <= cost <= exact(B/2)"
    ~knob:(fun params trace ->
      Optimal.solve_with_stats ~buffer_quantum:(quantum trace) params trace)
    ~upper:(fun params trace ->
      let tightened =
        { params with Optimal.constraint_ = Optimal.Buffer_bound (approx_buffer /. 2.) }
      in
      match Optimal.solve tightened trace with
      | s -> Some (schedule_cost ~reneg_cost:params.Optimal.reneg_cost s)
      | exception Optimal.Infeasible _ -> None)

let test_frontier_cap_large_is_exact () =
  (* A cap bigger than any frontier must not change the solution. *)
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:800 ~seed:11 () in
  let params = Optimal.default_params ~cost_ratio:1e5 trace in
  let exact = Optimal.solve params trace in
  let capped, _ = Optimal.solve_with_stats ~frontier_cap:100_000 params trace in
  Alcotest.(check bool) "identical schedules" true
    (Schedule.to_rates exact = Schedule.to_rates capped)

(* --- Beam search (DESIGN.md section 13) --- *)

let beam_gen =
  QCheck.Gen.(
    let* n = int_range 3 30 in
    let* frames = array_size (return n) (float_range 0. 25.) in
    let* k = int_range 1 20 in
    let* b = float_range 5. 60. in
    return (frames, float_of_int k, b))

let beam_print (frames, reneg_cost, buffer) =
  Format.asprintf "frames [|%s|], reneg %.0f, buffer %.2f"
    (String.concat "; "
       (List.map (Printf.sprintf "%.3f") (Array.to_list frames)))
    reneg_cost buffer

let beam_params reneg_cost buffer =
  {
    Optimal.grid = Rate_grid.of_rates [| 5.; 9.; 12.; 18.; 25. |];
    reneg_cost;
    bandwidth_cost = 1.;
    constraint_ = Optimal.Buffer_bound buffer;
  }

let prop_beam_unbounded_is_exact =
  (* beam_width = max_int + uniform prior must BE the exact solver:
     same schedule bit for bit, same node count, nothing dropped, and
     Infeasible raised exactly when the exact solver raises it. *)
  QCheck.Test.make ~name:"beam at max_int width is bit-identical to exact"
    ~count:150
    (QCheck.make ~print:beam_print beam_gen)
    (fun (frames, reneg_cost, buffer) ->
      let trace = Trace.create ~fps:1. frames in
      let params = beam_params reneg_cost buffer in
      match Optimal.solve_with_stats params trace with
      | exception Optimal.Infeasible _ -> (
          match
            Beam.solve ~beam_width:max_int ~prior:Beam.Uniform params trace
          with
          | exception Optimal.Infeasible _ -> true
          | _ -> false)
      | exact, est ->
          let got, st =
            Beam.solve_with_stats ~beam_width:max_int ~prior:Beam.Uniform
              params trace
          in
          Schedule.to_rates got = Schedule.to_rates exact
          && st.Beam.dropped_by_beam = 0
          && st.Beam.base.Optimal.expanded = est.Optimal.expanded)

let prop_beam_sweep_monotone =
  (* The raw per-width schedules are NOT monotone in the width (see
     beam.mli); the sweep's anytime semantics must make the reported
     cost non-increasing, always >= the exact optimum, and equal to it
     at the unbounded final width. *)
  QCheck.Test.make
    ~name:"beam sweep: anytime cost non-increasing, >= exact, exact at max_int"
    ~count:100
    (QCheck.make ~print:beam_print beam_gen)
    (fun (frames, reneg_cost, buffer) ->
      let trace = Trace.create ~fps:1. frames in
      let params = beam_params reneg_cost buffer in
      let widths = [ 1; 2; 3; 5; 8; max_int ] in
      match Optimal.solve params trace with
      | exception Optimal.Infeasible _ -> (
          match Beam.sweep ~widths ~prior:Beam.Uniform params trace with
          | exception Optimal.Infeasible _ -> true
          | _ -> false)
      | exact ->
          let exact_cost = schedule_cost ~reneg_cost exact in
          let costs =
            List.map
              (fun (_, s, _) -> schedule_cost ~reneg_cost s)
              (Beam.sweep ~widths ~prior:Beam.Uniform params trace)
          in
          let rec mono = function
            | a :: (b :: _ as rest) -> a >= b -. 1e-9 && mono rest
            | _ -> true
          in
          mono costs
          && List.for_all (fun c -> c >= exact_cost -. 1e-9) costs
          && Float.abs (List.nth costs (List.length costs - 1) -. exact_cost)
             < 1e-6)

let test_beam_trace_prior_gap () =
  (* A narrow beam under the trace-learned prior on a real synthetic
     trace: feasible, costs at least the optimum, lands near it, and
     actually exercises the beam (drops nodes, walks observed
     transitions). *)
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:600 ~seed:11 () in
  let params = Optimal.default_params ~levels:30 ~cost_ratio:2e5 trace in
  let exact = Optimal.solve params trace in
  let prior = Beam.of_trace ~grid:params.Optimal.grid trace in
  let s, st = Beam.solve_with_stats ~beam_width:16 ~prior params trace in
  let r = Schedule.simulate_buffer s ~trace ~capacity:300_000. in
  Alcotest.(check bool) "no loss" true (Float.equal r.Fluid.bits_lost 0.);
  let c = Schedule.cost s ~reneg_cost:2e5 ~bandwidth_cost:1. in
  let ce = Schedule.cost exact ~reneg_cost:2e5 ~bandwidth_cost:1. in
  Alcotest.(check bool) "cost >= exact" true (c >= ce -. 1e-6);
  Alcotest.(check bool) "within 25% of exact" true (c <= 1.25 *. ce);
  Alcotest.(check bool) "beam dropped nodes" true (st.Beam.dropped_by_beam > 0);
  Alcotest.(check bool) "prior hits" true (st.Beam.prior_hits > 0)

let test_receding_controller () =
  (* Structural invariants of the receding-horizon loop on a synthetic
     trace: windows get solved, the buffer cap holds, and the schedule
     spans the whole trace. *)
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:800 ~seed:7 () in
  let buffer = 300_000. in
  let opt = Optimal.default_params ~levels:30 ~buffer ~cost_ratio:2e5 trace in
  let opt = { opt with Optimal.constraint_ = Optimal.Buffer_bound 150_000. } in
  let o, st =
    Online.run_receding ~buffer Online.default_params ~opt ~horizon:12
      ~predictor:(Predictor.ar1 ~eta:0.9) trace
  in
  Alcotest.(check bool) "windows solved" true (st.Online.solves > 0);
  Alcotest.(check bool) "nodes expanded" true (st.Online.expanded > 0);
  Alcotest.(check bool) "backlog capped" true (o.Online.max_backlog <= buffer);
  Alcotest.(check int) "predictions span trace" (Trace.length trace)
    (Array.length o.Online.predictions);
  Alcotest.(check bool) "renegotiates" true
    (Schedule.n_renegotiations o.Online.schedule > 0)

(* --- Online heuristic --- *)

let test_online_constant_traffic () =
  (* Constant traffic: after warmup the heuristic must settle on one
     quantized rate and stop renegotiating. *)
  let trace = Trace.create ~fps:1. (Array.make 200 10.) in
  let p =
    {
      Online.b_low = 2.;
      b_high = 20.;
      flush_slots = 5;
      granularity = 5.;
      ar_coefficient = 0.8;
      use_flush_term = true;
    }
  in
  let o = Online.run p trace in
  Alcotest.(check bool) "few renegotiations" true
    (Schedule.n_renegotiations o.Online.schedule <= 3);
  check_close 1e-9 "settles on quantized demand" 10.
    (Schedule.rate_at o.Online.schedule 199)

let test_online_reacts_to_burst () =
  (* A big sustained burst must push the rate up. *)
  let frames = Array.append (Array.make 50 5.) (Array.make 50 50.) in
  let trace = Trace.create ~fps:1. frames in
  let p =
    {
      Online.b_low = 2.;
      b_high = 10.;
      flush_slots = 5;
      granularity = 5.;
      ar_coefficient = 0.8;
      use_flush_term = true;
    }
  in
  let o = Online.run p trace in
  Alcotest.(check bool) "rate raised during burst" true
    (Schedule.rate_at o.Online.schedule 80 >= 50.)

let test_online_rate_comes_down () =
  let frames = Array.concat [ Array.make 30 50.; Array.make 100 5. ] in
  let trace = Trace.create ~fps:1. frames in
  let p =
    {
      Online.b_low = 2.;
      b_high = 10.;
      flush_slots = 5;
      granularity = 5.;
      ar_coefficient = 0.8;
      use_flush_term = true;
    }
  in
  let o = Online.run p trace in
  Alcotest.(check bool) "rate lowered after burst" true
    (Schedule.rate_at o.Online.schedule 120 <= 10.)

let test_online_granularity_tradeoff () =
  (* Coarser granularity cannot renegotiate more often (Fig. 2 right
     side of the heuristic curve). *)
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:5_000 ~seed:33 () in
  let run delta =
    let p = { Online.default_params with Online.granularity = delta } in
    Schedule.n_renegotiations (Online.run p trace).Online.schedule
  in
  Alcotest.(check bool) "coarse <= fine" true (run 400_000. <= run 25_000.)

let test_online_flush_ablation () =
  (* Without the flush term the buffer should climb higher on bursts. *)
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:5_000 ~seed:37 () in
  let backlog use_flush_term =
    let p = { Online.default_params with Online.use_flush_term } in
    (Online.run p trace).Online.max_backlog
  in
  Alcotest.(check bool) "flush term reduces peak backlog" true
    (backlog true <= backlog false)

let test_online_deterministic () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:2_000 ~seed:39 () in
  let a = Online.run Online.default_params trace in
  let b = Online.run Online.default_params trace in
  Alcotest.(check int) "same schedule"
    (Schedule.n_renegotiations a.Online.schedule)
    (Schedule.n_renegotiations b.Online.schedule);
  check_close 1e-12 "same backlog" a.Online.max_backlog b.Online.max_backlog

let test_online_predictions_length () =
  let trace = Trace.create ~fps:1. (Array.make 17 3.) in
  let o = Online.run Online.default_params trace in
  Alcotest.(check int) "one prediction per slot" 17
    (Array.length o.Online.predictions)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_core"
    [
      ( "schedule",
        [
          Alcotest.test_case "basic" `Quick test_schedule_basic;
          Alcotest.test_case "to_rates" `Quick test_schedule_to_rates_matches_rate_at;
          Alcotest.test_case "merges equal" `Quick test_schedule_merges_equal_rates;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "cost" `Quick test_schedule_cost;
          Alcotest.test_case "marginal" `Quick test_schedule_marginal;
          Alcotest.test_case "shift" `Quick test_schedule_shift;
          Alcotest.test_case "constant" `Quick test_schedule_constant;
          Alcotest.test_case "efficiency" `Quick test_bandwidth_efficiency;
        ] );
      ( "rate_grid",
        [
          Alcotest.test_case "uniform" `Quick test_grid_uniform;
          Alcotest.test_case "quantize" `Quick test_grid_quantize;
          Alcotest.test_case "covering" `Quick test_grid_covering;
          Alcotest.test_case "paper default" `Quick test_grid_paper_default;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_optimal_matches_brute_force_hand;
          Alcotest.test_case "expensive renegotiation" `Quick
            test_optimal_prefers_single_rate_when_renegotiation_expensive;
          Alcotest.test_case "free renegotiation" `Quick
            test_optimal_tracks_when_renegotiation_free;
          Alcotest.test_case "feasible (no loss)" `Quick test_optimal_feasible_no_loss;
          Alcotest.test_case "infeasible raises" `Quick test_optimal_infeasible_raises;
          Alcotest.test_case "cost-ratio tradeoff" `Quick
            test_optimal_cost_ratio_tradeoff;
          Alcotest.test_case "efficiency" `Quick test_optimal_efficiency_close_to_one;
          Alcotest.test_case "delay bound" `Quick test_optimal_delay_bound;
          Alcotest.test_case "stats" `Quick test_optimal_stats;
        ] );
      ( "online",
        [
          Alcotest.test_case "constant traffic" `Quick test_online_constant_traffic;
          Alcotest.test_case "reacts to burst" `Quick test_online_reacts_to_burst;
          Alcotest.test_case "rate comes down" `Quick test_online_rate_comes_down;
          Alcotest.test_case "granularity tradeoff" `Quick
            test_online_granularity_tradeoff;
          Alcotest.test_case "flush ablation" `Quick test_online_flush_ablation;
          Alcotest.test_case "deterministic" `Quick test_online_deterministic;
          Alcotest.test_case "predictions length" `Quick
            test_online_predictions_length;
        ] );
      ( "approximation knobs",
        [
          Alcotest.test_case "loose cap is exact" `Quick
            test_frontier_cap_large_is_exact;
        ] );
      ( "beam",
        [
          Alcotest.test_case "trace prior gap" `Quick test_beam_trace_prior_gap;
          Alcotest.test_case "receding controller" `Quick
            test_receding_controller;
        ] );
      ( "properties",
        q
          [
            prop_optimal_matches_brute_force;
            prop_optimal_delay_matches_brute_force;
            prop_shift_marginal_invariant;
            prop_optimal_schedule_feasible;
            prop_frontier_cap_feasible_bounded;
            prop_buffer_quantum_feasible_bounded;
            prop_beam_unbounded_is_exact;
            prop_beam_sweep_monotone;
          ] );
    ]
