(* Unit and property tests for Rcbr_policy: the tier-ladder walk, the
   MTS token-bucket policer, CLI spec parsing, the session/store-level
   downgrade-upgrade machinery, and the service-model plumbing through
   the admission controller and the engines (Controller.decide under
   Renegotiate must be decision-for-decision identical to admit;
   Megacall under Downgrade must stay pool-size independent). *)

module Service_model = Rcbr_policy.Service_model
module Mts = Rcbr_policy.Mts
module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Session = Rcbr_net.Session
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor
module Megacall = Rcbr_sim.Megacall
module Svc_compare = Rcbr_sim.Svc_compare
module Pool = Rcbr_util.Pool

let checkf = Alcotest.(check (float 1e-9))

(* --- decide_tiers / upgrade ----------------------------------------- *)

let tiers = [| 1_000.; 4_000.; 8_000. |]

let test_decide_tiers () =
  let fits_below cap r = r <= cap in
  (match Service_model.decide_tiers ~tiers ~demanded:6_000. ~fits:(fits_below 10_000.) with
  | Service_model.Grant -> ()
  | _ -> Alcotest.fail "fitting demand must be granted as-is");
  (match Service_model.decide_tiers ~tiers ~demanded:6_000. ~fits:(fits_below 5_000.) with
  | Service_model.Downgrade_to { granted; tier } ->
      checkf "highest fitting tier" 4_000. granted;
      Alcotest.(check int) "tier index" 1 tier
  | _ -> Alcotest.fail "expected Downgrade_to");
  (* Tiers at or above the demanded rate are never granted: a 4k demand
     must not be upgraded to 8k by the downgrade walk even if 8k fits. *)
  (match
     Service_model.decide_tiers ~tiers ~demanded:4_000.
       ~fits:(fun r -> not (Float.equal r 4_000.))
   with
  | Service_model.Downgrade_to { granted; _ } -> checkf "below demand" 1_000. granted
  | _ -> Alcotest.fail "expected Downgrade_to at the floor");
  match Service_model.decide_tiers ~tiers ~demanded:6_000. ~fits:(fun _ -> false) with
  | Service_model.Settle_floor { granted; tier } ->
      checkf "floor" 1_000. granted;
      Alcotest.(check int) "floor index" 0 tier
  | _ -> Alcotest.fail "expected Settle_floor"

let test_upgrade () =
  Alcotest.(check bool)
    "satisfied call never upgrades" true
    (Service_model.upgrade ~tiers ~demanded:4_000. ~applied:4_000.
       ~fits:(fun _ -> true)
    = None);
  (match Service_model.upgrade ~tiers ~demanded:6_000. ~applied:1_000. ~fits:(fun _ -> true) with
  | Some r -> checkf "full restore when everything fits" 6_000. r
  | None -> Alcotest.fail "expected full upgrade");
  (match Service_model.upgrade ~tiers ~demanded:9_000. ~applied:1_000. ~fits:(fun r -> r <= 4_000.) with
  | Some r -> checkf "partial climb to the fitting tier" 4_000. r
  | None -> Alcotest.fail "expected partial upgrade");
  Alcotest.(check bool)
    "no fitting tier above applied" true
    (Service_model.upgrade ~tiers ~demanded:9_000. ~applied:4_000.
       ~fits:(fun r -> r <= 4_000.)
    = None)

(* --- of_spec --------------------------------------------------------- *)

let test_of_spec () =
  let default_tiers n =
    match n with None -> tiers | Some k -> Array.init k (fun i -> float_of_int (i + 1))
  in
  let default_mts () = Mts.ladder ~scales:2 ~quantum:1. ~mean:10. ~peak:20. in
  let parse s = Service_model.of_spec s ~default_tiers ~default_mts in
  (match parse "renegotiate" with
  | Ok Service_model.Renegotiate -> ()
  | _ -> Alcotest.fail "renegotiate");
  (match parse "downgrade" with
  | Ok (Service_model.Downgrade { tiers = t }) ->
      Alcotest.(check int) "default ladder" 3 (Array.length t)
  | _ -> Alcotest.fail "downgrade");
  (match parse "downgrade:5" with
  | Ok (Service_model.Downgrade { tiers = t }) ->
      Alcotest.(check int) "counted ladder" 5 (Array.length t)
  | _ -> Alcotest.fail "downgrade:5");
  (match parse "downgrade:300,100,200" with
  | Ok (Service_model.Downgrade { tiers = t }) ->
      Alcotest.(check (array (float 0.))) "explicit ladder, sorted"
        [| 100.; 200.; 300. |] t
  | _ -> Alcotest.fail "downgrade:list");
  (match parse "mts" with
  | Ok (Service_model.Mts_profile p) ->
      Alcotest.(check int) "profile scales" 2 (Mts.scales p)
  | _ -> Alcotest.fail "mts");
  let is_error s = match parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown model" true (is_error "settle");
  Alcotest.(check bool) "bad tier list" true (is_error "downgrade:a,b");
  Alcotest.(check bool) "nonpositive tier" true (is_error "downgrade:0,100")

(* --- MTS policer ----------------------------------------------------- *)

let test_mts_police () =
  let p = { Mts.rates = [| 10. |]; depths = [| 20. |]; quantum = 2. } in
  Mts.validate p;
  let b = Mts.attach p in
  (* Full bucket: burst credit amortized over the quantum on top of the
     token rate. *)
  checkf "initial grant" 20. (Mts.police p b ~elapsed:0. ~applied:0. ~demanded:100.);
  (* Two seconds at rate 20 spend 40 tokens against 20 stored + 20
     accrued: the bucket empties and the grant drops to the token rate. *)
  checkf "after burst" 10. (Mts.police p b ~elapsed:2. ~applied:20. ~demanded:100.);
  (* A conformant call (applied = token rate) is never policed below
     the sustained rate. *)
  checkf "sustained" 10. (Mts.police p b ~elapsed:5. ~applied:10. ~demanded:10.);
  (* Idling rebuilds the credit up to the depth. *)
  checkf "recovered" 20. (Mts.police p b ~elapsed:10. ~applied:0. ~demanded:100.)

let test_mts_ladder () =
  let p = Mts.ladder ~scales:3 ~quantum:1. ~mean:10. ~peak:40. in
  Alcotest.(check int) "scales" 3 (Mts.scales p);
  checkf "scale 0 polices the peak" 40. p.Mts.rates.(0);
  checkf "last scale polices the mean" 10. p.Mts.rates.(2);
  Alcotest.(check bool) "depths grow with the time scale" true
    (p.Mts.depths.(2) > p.Mts.depths.(0))

(* --- session-level downgrade semantics ------------------------------- *)

let single_link ~capacity =
  let topo = Topology.single_link ~capacity in
  Link.of_topology topo

let model = Service_model.Downgrade { tiers }

let test_settle_at_floor_audits_clean () =
  let links = single_link ~capacity:10_000. in
  let a = Session.make ~id:0 ~route:[| 0 |] ~transit:false in
  Session.settle ~links a ~rate:9_500.;
  let b = Session.make ~id:1 ~route:[| 0 |] ~transit:false in
  (* Nothing fits next to the 9.5k call — the established call settles
     at the floor anyway (settle semantics) and conservation still
     holds: link demand = 9.5k + 1k over a 10k link. *)
  (match Session.decide model ~links b ~now:0. ~demanded:6_000. with
  | Service_model.Settle_floor { granted; tier } ->
      checkf "floor grant" 1_000. granted;
      Alcotest.(check int) "floor tier" 0 tier;
      Session.settle ~links b ~rate:granted
  | _ -> Alcotest.fail "expected Settle_floor");
  checkf "link demand" 10_500. links.(0).Link.demand;
  Alcotest.(check int) "audit clean" 0
    (Session.audit ~links ~sessions:[ a; b ]);
  checkf "demand tracked" 6_000. b.Session.demanded

let test_upgrade_races_departure () =
  let links = single_link ~capacity:10_000. in
  let a = Session.make ~id:0 ~route:[| 0 |] ~transit:false in
  Session.settle ~links a ~rate:8_000.;
  let b = Session.make ~id:1 ~route:[| 0 |] ~transit:false in
  (match Session.decide model ~links b ~now:0. ~demanded:8_000. with
  | Service_model.Downgrade_to { granted; _ } ->
      checkf "downgraded next to the 8k call" 1_000. granted;
      Session.settle ~links b ~rate:granted
  | _ -> Alcotest.fail "expected Downgrade_to");
  (* Same tick: the upgrade probe fires before the departure settles —
     the link still carries the departing call, so nothing fits ... *)
  Alcotest.(check bool) "upgrade loses the race" true
    (Session.try_upgrade model ~links b ~now:1. = None);
  (* ... and after the departure settles, the probe restores the full
     demanded rate.  Drivers run their upgrade scans after the
     departure bookkeeping for exactly this reason. *)
  Session.settle ~links a ~rate:0.;
  (match Session.try_upgrade model ~links b ~now:1. with
  | Some r ->
      checkf "full restore after departure" 8_000. r;
      Session.settle ~links b ~rate:r
  | None -> Alcotest.fail "expected upgrade after departure");
  Alcotest.(check int) "audit clean" 0 (Session.audit ~links ~sessions:[ a; b ])

(* --- Controller.decide ≡ admit under Renegotiate --------------------- *)

let test_controller_decide_renegotiate_identity () =
  let descriptor =
    Descriptor.create ~levels:[| 1_000.; 2_000. |] ~fractions:[| 0.5; 0.5 |]
  in
  let mk () = Controller.perfect ~descriptor ~capacity:12_000. ~target:1e-3 in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "default service" true
    (Controller.service b = Service_model.Renegotiate);
  for i = 0 to 39 do
    let now = float_of_int i in
    let adm = Controller.admit a ~now in
    (* [fits] must never be probed under Renegotiate. *)
    (match
       Controller.decide b ~now ~demanded:2_000. ~fits:(fun _ ->
           Alcotest.fail "Renegotiate probed fits")
     with
    | Controller.Blocked -> Alcotest.(check bool) "decisions agree" false adm
    | Controller.Admit { granted; tier; downgraded } ->
        Alcotest.(check bool) "decisions agree" true adm;
        checkf "full grant" 2_000. granted;
        Alcotest.(check int) "no tier" (-1) tier;
        Alcotest.(check bool) "not downgraded" false downgraded);
    if adm then begin
      Controller.on_admit a ~now ~call:i ~rate:2_000.;
      Controller.on_admit b ~now ~call:i ~rate:2_000.
    end
  done;
  Alcotest.(check int) "identical decision hashes"
    (Controller.stats a).Controller.decision_hash
    (Controller.stats b).Controller.decision_hash

(* --- property: Downgrade never oversubscribes the link --------------- *)

(* Arrivals that fit no tier are Blocked (no settle-floor right), and
   every admitted call holds at least the floor, so established-call
   Settle_floor settles can only lower the link demand.  Hence: as long
   as demands stay at or above the floor, the total granted rate never
   exceeds capacity — under any interleaving of arrivals, changes,
   departures and upgrade scans. *)
let prop_downgrade_capacity =
  let gen =
    QCheck.Gen.(
      triple (int_range 2 12)
        (list_size (int_range 1 60) (pair (int_range 0 2) (int_range 0 999)))
        (int_range 0 5))
  in
  QCheck.Test.make ~name:"downgrade total grant <= capacity" ~count:300
    (QCheck.make gen) (fun (cap_mult, ops, _salt) ->
      let capacity = float_of_int cap_mult *. 1_000. in
      let links = single_link ~capacity in
      let active = ref [] and next_id = ref 0 in
      let check_cap () =
        if links.(0).Link.demand > capacity +. 1e-6 then
          QCheck.Test.fail_reportf "demand %.1f > capacity %.1f"
            links.(0).Link.demand capacity
      in
      let upgrade_scan () =
        List.iter
          (fun s ->
            match Session.try_upgrade model ~links s ~now:0. with
            | Some r -> Session.settle ~links s ~rate:r
            | None -> ())
          (List.sort
             (fun (x : Session.t) y -> compare x.Session.id y.Session.id)
             !active)
      in
      List.iter
        (fun (op, v) ->
          (* Demands stay at or above the floor tier. *)
          let demand = float_of_int (1 + (v mod 9)) *. 1_000. in
          (match (op, !active) with
          | 0, _ ->
              let s = Session.make ~id:!next_id ~route:[| 0 |] ~transit:false in
              incr next_id;
              (match Session.decide model ~links s ~now:0. ~demanded:demand with
              | Service_model.Settle_floor _ -> () (* blocked arrival *)
              | d ->
                  Session.settle ~links s
                    ~rate:(Service_model.granted_rate d ~demanded:demand);
                  active := s :: !active)
          | 1, _ :: _ ->
              let s = List.nth !active (v mod List.length !active) in
              let d = Session.decide model ~links s ~now:0. ~demanded:demand in
              Session.settle ~links s
                ~rate:(Service_model.granted_rate d ~demanded:demand)
          | 2, _ :: _ ->
              let s = List.nth !active (v mod List.length !active) in
              Session.settle ~links s ~rate:0.;
              active :=
                List.filter
                  (fun (t : Session.t) -> t.Session.id <> s.Session.id)
                  !active;
              upgrade_scan ()
          | _ -> ());
          check_cap ())
        ops;
      Alcotest.(check int) "audit clean" 0
        (Session.audit ~links ~sessions:!active);
      true)

(* --- engine plumbing ------------------------------------------------- *)

let test_megacall_downgrade_pool_identity () =
  let cfg = Megacall.default ~concurrent:2048 () in
  let cfg =
    {
      cfg with
      Megacall.shards = 4;
      calls_per_shard = 512;
      horizon = 6.;
      service =
        Service_model.Downgrade { tiers = [| 64_000.; 256_000.; 1_024_000. |] };
    }
  in
  let seq = Megacall.run cfg in
  let par = Pool.with_pool ~jobs:3 (fun pool -> Megacall.run ~pool cfg) in
  Alcotest.(check int) "outcome hash -j independent" seq.Megacall.outcome_hash
    par.Megacall.outcome_hash;
  Alcotest.(check int) "audit clean" 0 seq.Megacall.audit_violations;
  Alcotest.(check bool) "ladder exercised" true (seq.Megacall.total_downgrades > 0)

let test_svc_compare_deterministic () =
  let cfg =
    {
      (Svc_compare.default ()) with
      Svc_compare.calls = 96;
      capacity = 2_000_000.;
      arrival_window = 10.;
    }
  in
  let seq = Svc_compare.run cfg in
  let par = Pool.with_pool ~jobs:3 (fun pool -> Svc_compare.run ~pool cfg) in
  Alcotest.(check int) "three models" 3 (Array.length seq.Svc_compare.models);
  Array.iteri
    (fun i (r : Svc_compare.model_metrics) ->
      let p = par.Svc_compare.models.(i) in
      Alcotest.(check int)
        (r.Svc_compare.model ^ " outcome hash -j independent")
        r.Svc_compare.outcome_hash p.Svc_compare.outcome_hash;
      Alcotest.(check int)
        (r.Svc_compare.model ^ " audit clean")
        0 r.Svc_compare.audit_violations;
      Alcotest.(check bool)
        (r.Svc_compare.model ^ " jain in [0,1]")
        true
        (r.Svc_compare.jain_fairness >= 0. && r.Svc_compare.jain_fairness <= 1.))
    seq.Svc_compare.models;
  (* Renegotiate grants every admitted demand in full, so its fairness
     over admitted calls is exact: J = admitted / arrivals. *)
  let r = seq.Svc_compare.models.(0) in
  Alcotest.(check (float 1e-9)) "renegotiate jain = admitted/arrivals"
    (float_of_int r.Svc_compare.admitted /. float_of_int r.Svc_compare.arrivals)
    r.Svc_compare.jain_fairness

let () =
  Alcotest.run "rcbr_policy"
    [
      ( "ladder",
        [
          Alcotest.test_case "decide_tiers" `Quick test_decide_tiers;
          Alcotest.test_case "upgrade" `Quick test_upgrade;
          Alcotest.test_case "of_spec" `Quick test_of_spec;
        ] );
      ( "mts",
        [
          Alcotest.test_case "police" `Quick test_mts_police;
          Alcotest.test_case "ladder shape" `Quick test_mts_ladder;
        ] );
      ( "session",
        [
          Alcotest.test_case "settle at floor, audit clean" `Quick
            test_settle_at_floor_audits_clean;
          Alcotest.test_case "upgrade races departure" `Quick
            test_upgrade_races_departure;
        ] );
      ( "controller",
        [
          Alcotest.test_case "decide = admit under Renegotiate" `Quick
            test_controller_decide_renegotiate_identity;
        ] );
      ( "properties",
        List.map
          (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_downgrade_capacity ] );
      ( "engines",
        [
          Alcotest.test_case "megacall downgrade pool identity" `Quick
            test_megacall_downgrade_pool_identity;
          Alcotest.test_case "svc-compare deterministic" `Quick
            test_svc_compare_deterministic;
        ] );
    ]
