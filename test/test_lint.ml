(* Fixture tests for the rcbr_lint static analyzer (DESIGN.md §8).
   Every rule gets a must-fire, a must-not-fire and a suppressed case,
   plus coverage for rule scoping, the allowlist, the suppression
   grammar (mandatory reason, multi-line comments, comma-separated rule
   lists) and parse failures.  Fixtures live in quoted strings: the
   analyzer only ever sees them through [Lint.check_source], never as
   code belonging to this compilation unit. *)

module Lint = Rcbr_lint_core.Lint

let hits ?(config = Lint.strict_config) ?(filename = "lib/fixture.ml") src =
  List.map
    (fun v -> (v.Lint.line, v.Lint.rule))
    (Lint.check_source ~config ~filename src)

let pairs = Alcotest.(list (pair int string))

let check_hits ?config ?filename msg expected src =
  Alcotest.check pairs msg expected (hits ?config ?filename src)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* --- rule inventory -------------------------------------------------- *)

let test_rule_inventory () =
  let ids = List.map fst Lint.rules in
  List.iter
    (fun r -> Alcotest.(check bool) (r ^ " listed") true (List.mem r ids))
    [ "D001"; "D002"; "D003"; "F001"; "F002"; "R001"; "P001" ]

(* --- D001: randomness outside the sanctioned module ------------------ *)

let test_d001_fires () =
  check_hits "Random.int" [ (1, "D001") ] {|let f () = Random.int 10|};
  check_hits "open Random" [ (1, "D001") ] {|open Random|}

let test_d001_clean () =
  check_hits "lowercase near-miss" [] {|let random_pick = 3|}

let test_d001_exempt_file () =
  let config =
    { Lint.strict_config with Lint.d001_exempt = (fun f -> f = "lib/util/rng.ml") }
  in
  check_hits ~config ~filename:"lib/util/rng.ml" "rng.ml exempt" []
    {|let f () = Random.int 10|};
  check_hits ~config ~filename:"lib/core/optimal.ml" "others still fire"
    [ (1, "D001") ]
    {|let f () = Random.int 10|}

let test_d001_suppressed () =
  check_hits "inline allow" []
    {|(* lint: allow D001 -- fixture: exercising the suppression path *)
let f () = Random.int 10|}

(* --- D002: order-dependent Hashtbl traversal ------------------------- *)

let fold_fixture = {|let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []|}

let test_d002_fires () =
  check_hits "Hashtbl.fold" [ (1, "D002") ] fold_fixture;
  check_hits "Hashtbl.iter" [ (1, "D002") ]
    {|let dump h = Hashtbl.iter (fun k v -> print_int (k + v)) h|}

let test_d002_clean () =
  check_hits "point lookups are fine" [] {|let get h k = Hashtbl.find_opt h k|}

let test_d002_out_of_scope () =
  let config =
    { Lint.strict_config with Lint.d002_scope = (fun f -> has_prefix "lib/" f) }
  in
  check_hits ~config ~filename:"test/fixture.ml" "not result-producing" []
    fold_fixture;
  check_hits ~config ~filename:"lib/fixture.ml" "result path still fires"
    [ (1, "D002") ] fold_fixture

let test_d002_suppressed () =
  check_hits "allow with reason" []
    ({|(* lint: allow D002 -- fixture: order-independent traversal *)
|}
    ^ fold_fixture)

let test_suppression_needs_reason () =
  (* A reason-less [allow] grants nothing: the violation survives. *)
  check_hits "no reason, no grant" [ (2, "D002") ]
    ({|(* lint: allow D002 *)
|}
    ^ fold_fixture)

let test_suppression_wrong_rule () =
  check_hits "allow of another rule does not leak" [ (2, "D002") ]
    ({|(* lint: allow D001 -- fixture: wrong rule id *)
|}
    ^ fold_fixture)

let test_suppression_multiline () =
  (* The suppression anchors to the line holding the closing comment. *)
  check_hits "reason spanning lines" []
    ({|(* lint: allow D002 --
   the reason may continue onto the closing line *)
|}
    ^ fold_fixture)

let test_suppression_rule_list () =
  (* Comma-separated rules cover distinct violations on the same line. *)
  check_hits "comma-separated ids" []
    {|(* lint: allow F001, F002 -- fixture: both on one line *)
let bad x = x = nan || x = 0.5|}

(* --- D003: wall-clock reads ------------------------------------------ *)

let test_d003_fires () =
  check_hits "Unix.gettimeofday" [ (1, "D003") ]
    {|let now () = Unix.gettimeofday ()|};
  check_hits "Sys.time" [ (1, "D003") ] {|let cpu () = Sys.time ()|}

let test_d003_clean () =
  check_hits "Sys.argv is not a clock" [] {|let args () = Sys.argv|}

let test_d003_bench_exempt () =
  let config =
    { Lint.strict_config with Lint.d003_exempt = (fun f -> has_prefix "bench/" f) }
  in
  check_hits ~config ~filename:"bench/fixture.ml" "bench may read the clock"
    [] {|let now () = Unix.gettimeofday ()|};
  check_hits ~config ~filename:"lib/fixture.ml" "lib may not" [ (1, "D003") ]
    {|let now () = Unix.gettimeofday ()|}

let test_d003_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow D003 -- fixture: time injected for a seed check *)
let now () = Unix.gettimeofday ()|}

(* --- F001: polymorphic comparison on float-bearing operands ---------- *)

let test_f001_fires () =
  check_hits "poly = on float literal" [ (1, "F001") ]
    {|let close a = a = 0.5|};
  check_hits "poly compare on float arithmetic" [ (1, "F001") ]
    {|let c a b = compare (a +. 1.0) b|};
  check_hits "bare max folded over floats" [ (1, "F001") ]
    {|let peak xs = List.fold_left max 0.0 xs|}

let test_f001_clean () =
  check_hits "Float.equal" [] {|let close a = Float.equal a 0.5|};
  check_hits "Float.max folded" []
    {|let peak xs = List.fold_left Float.max 0.0 xs|};
  check_hits "no float evidence" [] {|let eq a b = a = b|}

let test_f001_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow F001 -- fixture: operands proven integral upstream *)
let close a = a = 0.5|}

(* --- F002: comparisons against nan ----------------------------------- *)

let test_f002_fires () =
  (* F002 wins over F001 for the same application: one report, not two. *)
  check_hits "= nan" [ (1, "F002") ] {|let bad x = x = nan|};
  check_hits "< nan" [ (1, "F002") ] {|let worse x = x < nan|}

let test_f002_clean () =
  check_hits "Float.is_nan" [] {|let good x = Float.is_nan x|}

let test_f002_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow F002 -- fixture: documenting the always-false branch *)
let bad x = x = nan|}

(* --- R001: module-level mutable state in Pool-reachable code --------- *)

let test_r001_fires () =
  check_hits "top-level ref" [ (1, "R001") ] {|let counter = ref 0|};
  check_hits "top-level Hashtbl.create" [ (1, "R001") ]
    {|let cache = Hashtbl.create 16|};
  check_hits "record with a mutable field" [ (2, "R001") ]
    {|type t = { mutable hits : int }
let stats = { hits = 0 }|}

let test_r001_clean () =
  check_hits "per-call state is fine" [] {|let fresh () = ref 0|};
  check_hits "immutable record literal" []
    {|type t = { hits : int }
let stats = { hits = 0 }|}

let test_r001_out_of_zone () =
  let config =
    { Lint.strict_config with Lint.r001_zone = (fun _ -> false) }
  in
  check_hits ~config "not Pool-reachable" [] {|let counter = ref 0|}

let test_r001_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow R001 -- fixture: mutex-guarded, idempotent cache *)
let counter = ref 0|}

let test_r001_zone_transitive () =
  (* The Pool-reachable zone follows the dune library graph: a library
     that never mentions the pool itself is still in zone when a
     Pool-using stanza depends on it (the lib/net case — rcbr_sim's
     sweeps fan out over simulations that run rcbr_net sessions). *)
  let tmp = Filename.temp_file "rcbr_zone" "" in
  Sys.remove tmp;
  let dir sub =
    let d = Filename.concat tmp sub in
    Sys.mkdir (Filename.dirname d) 0o755;
    Sys.mkdir d 0o755;
    d
  in
  Sys.mkdir tmp 0o755;
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let net = dir "lib/net" in
  write (Filename.concat net "dune") "(library (name fix_net))";
  write (Filename.concat net "state.ml") "let version = 1";
  let sim = Filename.concat tmp "lib/sim" in
  Sys.mkdir sim 0o755;
  write (Filename.concat sim "dune")
    "(library (name fix_sim) (libraries fix_net))";
  write (Filename.concat sim "sweep.ml") "let version = 1";
  let solo = Filename.concat tmp "lib/solo" in
  Sys.mkdir solo 0o755;
  write (Filename.concat solo "dune") "(library (name fix_solo))";
  write (Filename.concat solo "quiet.ml") "let version = 2";
  (* The Pool user: an executable fanning fix_sim simulations out. *)
  let bench = Filename.concat tmp "bench" in
  Sys.mkdir bench 0o755;
  write (Filename.concat bench "dune")
    "(executable (name fix_bench) (libraries fix_sim))";
  write (Filename.concat bench "main.ml") "let go pool = Pool.map pool";
  Fun.protect ~finally:(fun () ->
      List.iter Sys.remove
        [
          Filename.concat net "dune"; Filename.concat net "state.ml";
          Filename.concat sim "dune"; Filename.concat sim "sweep.ml";
          Filename.concat solo "dune"; Filename.concat solo "quiet.ml";
          Filename.concat bench "dune"; Filename.concat bench "main.ml";
        ];
      List.iter Sys.rmdir
        [ net; sim; solo; bench; Filename.concat tmp "lib"; tmp ])
  @@ fun () ->
  let config = Lint.repo_config ~roots:[ tmp ] () in
  Alcotest.(check bool) "library the Pool user runs is in zone" true
    (config.Lint.r001_zone (Filename.concat sim "sweep.ml"));
  Alcotest.(check bool) "transitive dependency is in zone" true
    (config.Lint.r001_zone (Filename.concat net "state.ml"));
  Alcotest.(check bool) "unreachable library is out of zone" false
    (config.Lint.r001_zone (Filename.concat solo "quiet.ml"));
  Alcotest.(check bool) "the executable's own dir is not a library zone" false
    (config.Lint.r001_zone (Filename.concat bench "main.ml"))

(* --- P001: Obj.magic -------------------------------------------------- *)

let test_p001_fires () =
  check_hits "Obj.magic" [ (1, "P001") ] {|let coerce x = Obj.magic x|}

let test_p001_clean () =
  check_hits "Obj.repr is not Obj.magic" [] {|let tag x = Obj.repr x|}

let test_p001_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow P001 -- fixture: suppression still demands a reason *)
let coerce x = Obj.magic x|}

(* --- allowlist, interfaces, parse failures ---------------------------- *)

let test_allowlist_grants () =
  let config =
    { Lint.strict_config with Lint.allowlist = [ ("lib/fixture.ml", "D002") ] }
  in
  check_hits ~config ~filename:"lib/fixture.ml" "granted file is clean" []
    fold_fixture;
  check_hits ~config ~filename:"lib/other.ml" "grant is per-file"
    [ (1, "D002") ] fold_fixture

(* The daemon pump reads wall time under an explicit whole-file grant,
   like the one tools/lint/allowlist ships for bin/rcbr_switchd.ml:
   D003 goes quiet for exactly that file, and only D003. *)
let test_allowlist_grants_switchd_d003 () =
  let config =
    {
      Lint.strict_config with
      Lint.allowlist = [ ("bin/rcbr_switchd.ml", "D003") ];
    }
  in
  let clock_fixture = {|let now () = Unix.gettimeofday ()|} in
  check_hits ~config ~filename:"bin/rcbr_switchd.ml" "granted daemon is clean"
    [] clock_fixture;
  check_hits ~config ~filename:"bin/rcbr_other.ml" "grant is per-file"
    [ (1, "D003") ] clock_fixture;
  check_hits ~config ~filename:"bin/rcbr_switchd.ml"
    "grant covers only D003" [ (1, "D001") ]
    {|let draw () = Random.float 1.0|}

let test_mli_parses_as_interface () =
  (* [val] is only legal in an interface: this proves the suffix routes
     the source through [Parse.interface]. *)
  check_hits ~filename:"lib/fixture.mli" "clean interface" []
    {|val f : int -> int|}

let test_parse_failure_reported () =
  match hits {|let = |} with
  | [ (_, "PARSE") ] -> ()
  | other ->
      Alcotest.failf "expected a single PARSE violation, got %d: %s"
        (List.length other)
        (String.concat ", " (List.map snd other))

(* The suppression grammar works in interfaces too: stage 1 routes
   [.mli] sources through [Parse.interface] and scans the same comment
   syntax, so an interface-level [open Random] can be waived in place. *)
let test_mli_suppression () =
  check_hits ~filename:"lib/fixture.mli" "open Random fires in an interface"
    [ (1, "D001") ] {|open Random|};
  check_hits ~filename:"lib/fixture.mli" "and is suppressible in place" []
    {|(* lint: allow D001 -- fixture: interface-level waiver *)
open Random|};
  (* the id is spliced so this file's own lint scan never sees it *)
  check_hits ~filename:"lib/fixture.mli" "unknown ids are errors there too"
    [ (1, "SUPP") ]
    ("(* lint: allow Z" ^ "001 -- fixture: no stage owns this id *)\n"
   ^ "val f : int -> int")

(* ===================================================================== *)
(* Stage 2: the typed interprocedural analyzer (DESIGN.md §14).          *)
(* Fixtures are typed in memory against the stdlib-only environment, so  *)
(* each one is a single self-contained compilation unit named [Fix];     *)
(* cross-module flow is exercised through nested modules, which go       *)
(* through the same canonical-name resolution as real cross-unit refs.  *)
(* ===================================================================== *)

module T = Rcbr_tlint_core.Tlint
module C = Rcbr_lint_core.Lint_common

let thits ?(config = T.strict_config) src =
  List.map
    (fun v -> (v.C.line, v.C.rule))
    (T.check_sources ~config [ ("Fix", "lib/fix.ml", src) ])

let check_thits ?config msg expected src =
  Alcotest.check pairs msg expected (thits ?config src)

(* A fixture-local FNV mixer stands in for the repo's outcome hashes. *)
let sink_cfg = { T.strict_config with T.sinks = [ "Fix.fnv" ] }

(* --- rule inventory --------------------------------------------------- *)

let test_typed_rule_inventory () =
  let ids = List.map fst C.typed_rules in
  List.iter
    (fun r -> Alcotest.(check bool) (r ^ " listed") true (List.mem r ids))
    [ "T001"; "T002"; "E001"; "U001"; "U002" ];
  (* one vocabulary validates suppressions and grants for both stages *)
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " in union") true (List.mem r C.all_rule_ids))
    [ "D001"; "R001"; "T001"; "U002"; "PARSE"; "SUPP"; "GRANT" ]

(* --- T001: determinism taint ------------------------------------------ *)

let test_t001_fires () =
  (* the ISSUE's seeded mutant: a wall-clock read folded into the hash *)
  check_thits ~config:sink_cfg "Sys.time reaches the sink"
    [ (2, "T001") ]
    {|let fnv h x = (h * 16777619) lxor x
let bad () = fnv 0 (int_of_float (Sys.time ()))|}

let test_t001_clean () =
  check_thits ~config:sink_cfg "constant data is fine" []
    {|let fnv h x = (h * 16777619) lxor x
let ok () = fnv 0 42|}

let test_t001_interprocedural () =
  (* the source sits in another definition inside a nested module: the
     returns-taint fixpoint must carry it to the sink call site *)
  check_thits ~config:sink_cfg "taint crosses definitions and modules"
    [ (3, "T001") ]
    {|let fnv h x = (h * 16777619) lxor x
module Clock = struct let now () = Sys.time () end
let digest () = fnv 0 (int_of_float (Clock.now ()))|};
  check_thits ~config:sink_cfg "and survives a two-hop chain"
    [ (4, "T001") ]
    {|let fnv h x = (h * 16777619) lxor x
let jitter () = Sys.time ()
let scaled () = jitter () *. 2.0
let out () = fnv 0 (int_of_float (scaled ()))|}

let test_t001_hof_sink () =
  (* the megacall idiom: the sink is not applied, it is folded *)
  check_thits ~config:sink_cfg "sink fed through List.fold_left"
    [ (2, "T001") ]
    {|let fnv h x = (h * 16777619) lxor x
let mix () = List.fold_left fnv 0 [ int_of_float (Sys.time ()) ]|}

let test_t001_order_source () =
  let fixture =
    {|let fnv h x = (h * 16777619) lxor x
let digest h = fnv 0 (Hashtbl.fold (fun k _ a -> a + k) h 0)|}
  in
  check_thits ~config:sink_cfg "bucket order feeds the sink"
    [ (2, "T001") ] fixture;
  let config = { sink_cfg with T.order_scope = (fun _ -> false) } in
  check_thits ~config "out of order scope, no source" [] fixture;
  let config = { sink_cfg with T.trusted = [ "Fix.Sorted." ] } in
  check_thits ~config "folds inside a trusted wrapper are sanctioned" []
    {|let fnv h x = (h * 16777619) lxor x
module Sorted = struct let total h = Hashtbl.fold (fun k _ a -> a + k) h 0 end
let digest h = fnv 0 (Sorted.total h)|}

let test_t001_random_exempt () =
  let fixture =
    {|let fnv h x = (h * 16777619) lxor x
let draw () = fnv 0 (Random.int 10)|}
  in
  check_thits ~config:sink_cfg "Random taints by default"
    [ (2, "T001") ] fixture;
  let config =
    { sink_cfg with T.random_exempt = (fun f -> f = "lib/fix.ml") }
  in
  check_thits ~config "the sanctioned module may use Random" [] fixture

let test_t001_source_suppression () =
  (* suppressing at the source line sanctions the source itself, so
     nothing downstream reports — the documented T001 semantics *)
  check_thits ~config:sink_cfg "source-line waiver kills downstream" []
    {|let fnv h x = (h * 16777619) lxor x
(* lint: allow T001 -- fixture: sanctioned clock read *)
let t () = Sys.time ()
let out () = fnv 0 (int_of_float (t ()))|}

let test_t001_allow_grant () =
  let config =
    {
      sink_cfg with
      T.allow_grants =
        [
          {
            C.g_file = "lib/fix.ml";
            g_rule = "T001";
            g_reason = "fixture";
            g_line = 1;
          };
        ];
    }
  in
  check_thits ~config "allowlist grant absorbs the report" []
    {|let fnv h x = (h * 16777619) lxor x
let bad () = fnv 0 (int_of_float (Sys.time ()))|}

(* --- T002: address-based hash of a closure ---------------------------- *)

let test_t002_fires () =
  check_thits "Hashtbl.hash of a closure" [ (1, "T002") ]
    {|let h = Hashtbl.hash (fun x -> x + 1)|}

let test_t002_clean () =
  check_thits "hashing plain data is fine" []
    {|let h = Hashtbl.hash (42, "x")|}

let test_t002_suppressed () =
  check_thits "allow with reason" []
    {|(* lint: allow T002 -- fixture: tag only feeds a debug label *)
let h = Hashtbl.hash (fun x -> x + 1)|}

(* --- E001: Pool escape ------------------------------------------------ *)

(* A stub pool: the analysis keys on the configured spawn names, not on
   the implementation, so [Array.map] stands in for the real thing. *)
let pool_stub =
  {|module Pool = struct
  let map_array f xs = Array.map f xs
  let init n f = Array.init n f
end|}

let spawn_cfg =
  {
    T.strict_config with
    T.spawns = [ ("Fix.Pool.map_array", 0); ("Fix.Pool.init", 1) ];
  }

let test_e001_closure_fires () =
  (* the ISSUE's seeded mutant: a shared ref captured by the task *)
  check_thits ~config:spawn_cfg "task closure writes a captured ref"
    [ (6, "E001") ]
    (pool_stub
    ^ {|
let total = ref 0
let run xs = Pool.map_array (fun x -> total := !total + x; x) xs|})

let test_e001_local_state_clean () =
  check_thits ~config:spawn_cfg "task-local state is fine" []
    (pool_stub
    ^ {|
let run xs = Pool.map_array (fun x -> let r = ref 0 in r := x; !r) xs|})

let test_e001_partial_application () =
  (* a partially-applied argument is shared across tasks: writing it is
     an escape, writing the per-item argument is not *)
  check_thits ~config:spawn_cfg "writing a partially-applied arg escapes"
    [ (6, "E001") ]
    (pool_stub
    ^ {|
let bump acc x = acc := !acc + x; x
let run xs = let acc = ref 0 in Pool.map_array (bump acc) xs|});
  check_thits ~config:spawn_cfg "writing the per-item arg is allowed" []
    (pool_stub
    ^ {|
let reset (r : int ref) = r := 0
let run rs = Pool.map_array reset rs|})

let test_e001_transitive () =
  (* the write hides one call deep: the writes-global summary carries it *)
  check_thits ~config:spawn_cfg "task function writes a global via summary"
    [ (7, "E001") ]
    (pool_stub
    ^ {|
let hits = ref 0
let note x = hits := !hits + x; x
let run xs = Pool.map_array note xs|})

let test_e001_domain_spawn () =
  let config = { T.strict_config with T.spawns = [ ("Domain.spawn", 0) ] } in
  check_thits ~config "Domain.spawn closure writing captured state"
    [ (2, "E001") ]
    {|let flag = ref false
let go () = Domain.spawn (fun () -> flag := true)|}

let test_e001_suppressed () =
  check_thits ~config:spawn_cfg "allow with reason" []
    (pool_stub
    ^ {|
let total = ref 0
(* lint: allow E001 -- fixture: the write is mutex-guarded elsewhere *)
let run xs = Pool.map_array (fun x -> total := !total + x; x) xs|})

(* --- U001/U002: units of measure -------------------------------------- *)

let units_cfg =
  {
    T.strict_config with
    T.units =
      T.parse_units
        "Fix.dur : _ -> second\n\
         Fix.len : _ -> slot\n\
         Fix.bw : _ -> bps\n\
         Fix.at : second -> _\n\
         Fix.shift : ~by:slot -> _ -> _\n\
         Fix.t.cap : bps\n";
  }

(* Dimension carriers; bodies are irrelevant, units.map is the truth. *)
let units_defs =
  {|let dur x = float_of_int x
let len x = float_of_int x
let bw x = float_of_int x
let at (t : float) = t
let shift ~by x = x +. by
type t = { mutable cap : float }|}

let test_u001_fires () =
  (* the ISSUE's seeded mutant: seconds + slots without a conversion *)
  check_thits ~config:units_cfg "seconds + slots" [ (7, "U001") ]
    (units_defs ^ {|
let bad x = dur x +. len x|});
  check_thits ~config:units_cfg "comparison across dimensions"
    [ (7, "U001") ]
    (units_defs ^ {|
let c x = dur x < len x|});
  check_thits ~config:units_cfg "min across dimensions" [ (7, "U001") ]
    (units_defs ^ {|
let m x = min (dur x) (len x)|})

let test_u001_clean () =
  check_thits ~config:units_cfg "same dimension adds fine" []
    (units_defs ^ {|
let ok x = dur x +. dur x|});
  check_thits ~config:units_cfg "multiply and divide combine dimensions" []
    (units_defs ^ {|
let bits x = bw x *. dur x
let rate x = dur x /. len x|})

let test_u002_fires () =
  check_thits ~config:units_cfg "positional slot rejects slots for seconds"
    [ (7, "U002") ]
    (units_defs ^ {|
let b x = at (len x)|});
  check_thits ~config:units_cfg "labelled slot rejects seconds for slots"
    [ (7, "U002") ]
    (units_defs ^ {|
let s x = shift ~by:(dur x) (bw x)|});
  check_thits ~config:units_cfg "record field rejects the wrong dimension"
    [ (7, "U002") ]
    (units_defs ^ {|
let mk x = { cap = len x }|});
  check_thits ~config:units_cfg "field assignment rejects it too"
    [ (7, "U002") ]
    (units_defs ^ {|
let set r x = r.cap <- len x|})

let test_u002_clean () =
  check_thits ~config:units_cfg "matching dimensions pass" []
    (units_defs
    ^ {|
let g x = at (dur x)
let s x = shift ~by:(len x) (bw x)
let mk x = { cap = bw x }|})

let test_u002_suppressed () =
  check_thits ~config:units_cfg "allow with reason" []
    (units_defs
    ^ {|
(* lint: allow U002 -- fixture: the slot count doubles as raw seconds here *)
let b x = at (len x)|})

(* --- typed-stage suppression plumbing --------------------------------- *)

let test_typed_comma_list () =
  let config = { units_cfg with T.sinks = [ "Fix.fnv" ] } in
  let body =
    {|let fnv h x = (h * 16777619) lxor x
let dur x = float_of_int x
let len x = float_of_int x|}
  in
  check_thits ~config "two rules fire on one line"
    [ (4, "T001"); (4, "U001") ]
    (body
    ^ {|
let both t = fnv 0 (int_of_float (Sys.time () +. dur t +. len t))|});
  check_thits ~config "one comma-separated comment silences both" []
    (body
    ^ {|
(* lint: allow T001, U001 -- fixture: one comment, two typed rules *)
let both t = fnv 0 (int_of_float (Sys.time () +. dur t +. len t))|})

let test_typed_unknown_rule () =
  (* the id is spliced so this file's own lint scan never sees it *)
  check_thits "unknown rule id is an error, not a no-op"
    [ (1, "SUPP") ]
    ("(* lint: allow T" ^ "999 -- fixture: nobody owns this id *)\n"
   ^ "let x = 1")

let test_typed_type_failure () =
  (* stage 2 sees full typing errors, not just parse errors *)
  (match thits {|let = |} with
  | [ (_, "PARSE") ] -> ()
  | other ->
      Alcotest.failf "expected one PARSE for a syntax error, got %d"
        (List.length other));
  match thits {|let x : int = 1.0|} with
  | [ (_, "PARSE") ] -> ()
  | other ->
      Alcotest.failf "expected one PARSE for a type error, got %d"
        (List.length other)

(* --- allowlist hygiene ------------------------------------------------ *)

let with_temp_allowlist contents f =
  let tmp = Filename.temp_file "rcbr_allow" ".txt" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove tmp) (fun () -> f tmp)

let test_allowlist_loader () =
  with_temp_allowlist "# comment\n\nlib/a.ml D002 seed-exact bucket order\n"
    (fun tmp ->
      match C.load_allowlist tmp with
      | [ g ] ->
          Alcotest.(check string) "file" "lib/a.ml" g.C.g_file;
          Alcotest.(check string) "rule" "D002" g.C.g_rule;
          Alcotest.(check string) "reason" "seed-exact bucket order"
            g.C.g_reason;
          Alcotest.(check int) "line" 3 g.C.g_line
      | gs -> Alcotest.failf "expected one grant, got %d" (List.length gs))

let test_allowlist_needs_reason () =
  with_temp_allowlist "lib/a.ml D002\n" (fun tmp ->
      match C.load_allowlist tmp with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "a reason-less grant must be rejected")

let test_allowlist_unknown_rule () =
  with_temp_allowlist "lib/a.ml Q999 a rule nobody owns\n" (fun tmp ->
      match C.load_allowlist tmp with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "an unknown rule id must be rejected")

let test_dead_grants () =
  let r = C.make_reporter () in
  r.C.grant_suppressed <- [ ("lib/a.ml", "T001") ];
  let g file rule line =
    { C.g_file = file; g_rule = rule; g_reason = "fixture"; g_line = line }
  in
  let grants =
    [
      g "lib/a.ml" "T001" 3;  (* absorbed something: alive *)
      g "lib/b.ml" "E001" 4;  (* absorbed nothing: dead *)
      g "lib/c.ml" "D001" 5;  (* other stage's rule: not ours to judge *)
    ]
  in
  match C.dead_grants ~own_rules:C.typed_rules ~allowlist_file:"allow" r grants with
  | [ v ] ->
      Alcotest.(check string) "dead grant reports as GRANT" "GRANT" v.C.rule;
      Alcotest.(check int) "at its own allowlist line" 4 v.C.line
  | other ->
      Alcotest.failf "expected exactly one dead grant, got %d"
        (List.length other)

let () =
  let t name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "lint"
    [
      ("inventory", [ t "rule inventory" test_rule_inventory ]);
      ( "d001",
        [
          t "fires" test_d001_fires;
          t "clean" test_d001_clean;
          t "exempt file" test_d001_exempt_file;
          t "suppressed" test_d001_suppressed;
        ] );
      ( "d002",
        [
          t "fires" test_d002_fires;
          t "clean" test_d002_clean;
          t "out of scope" test_d002_out_of_scope;
          t "suppressed" test_d002_suppressed;
        ] );
      ( "suppression grammar",
        [
          t "needs a reason" test_suppression_needs_reason;
          t "wrong rule id" test_suppression_wrong_rule;
          t "multi-line comment" test_suppression_multiline;
          t "comma-separated rules" test_suppression_rule_list;
        ] );
      ( "d003",
        [
          t "fires" test_d003_fires;
          t "clean" test_d003_clean;
          t "bench exempt" test_d003_bench_exempt;
          t "suppressed" test_d003_suppressed;
        ] );
      ( "f001",
        [
          t "fires" test_f001_fires;
          t "clean" test_f001_clean;
          t "suppressed" test_f001_suppressed;
        ] );
      ( "f002",
        [
          t "fires" test_f002_fires;
          t "clean" test_f002_clean;
          t "suppressed" test_f002_suppressed;
        ] );
      ( "r001",
        [
          t "fires" test_r001_fires;
          t "clean" test_r001_clean;
          t "out of zone" test_r001_out_of_zone;
          t "suppressed" test_r001_suppressed;
          t "zone is dune-graph transitive" test_r001_zone_transitive;
        ] );
      ( "p001",
        [
          t "fires" test_p001_fires;
          t "clean" test_p001_clean;
          t "suppressed" test_p001_suppressed;
        ] );
      ( "plumbing",
        [
          t "allowlist grants" test_allowlist_grants;
          t "allowlist grants switchd D003" test_allowlist_grants_switchd_d003;
          t "mli parses as interface" test_mli_parses_as_interface;
          t "mli suppressions" test_mli_suppression;
          t "parse failure reported" test_parse_failure_reported;
        ] );
      ( "typed inventory",
        [ t "typed rule inventory" test_typed_rule_inventory ] );
      ( "t001",
        [
          t "fires" test_t001_fires;
          t "clean" test_t001_clean;
          t "interprocedural" test_t001_interprocedural;
          t "higher-order sink" test_t001_hof_sink;
          t "bucket-order source" test_t001_order_source;
          t "random exemption" test_t001_random_exempt;
          t "source-line suppression" test_t001_source_suppression;
          t "allowlist grant" test_t001_allow_grant;
        ] );
      ( "t002",
        [
          t "fires" test_t002_fires;
          t "clean" test_t002_clean;
          t "suppressed" test_t002_suppressed;
        ] );
      ( "e001",
        [
          t "closure fires" test_e001_closure_fires;
          t "local state clean" test_e001_local_state_clean;
          t "partial application" test_e001_partial_application;
          t "transitive write" test_e001_transitive;
          t "Domain.spawn" test_e001_domain_spawn;
          t "suppressed" test_e001_suppressed;
        ] );
      ( "u001",
        [ t "fires" test_u001_fires; t "clean" test_u001_clean ] );
      ( "u002",
        [
          t "fires" test_u002_fires;
          t "clean" test_u002_clean;
          t "suppressed" test_u002_suppressed;
        ] );
      ( "typed plumbing",
        [
          t "comma-separated rules" test_typed_comma_list;
          t "unknown rule id" test_typed_unknown_rule;
          t "typing failures" test_typed_type_failure;
        ] );
      ( "allowlist hygiene",
        [
          t "loader" test_allowlist_loader;
          t "needs a reason" test_allowlist_needs_reason;
          t "unknown rule id" test_allowlist_unknown_rule;
          t "dead grants" test_dead_grants;
        ] );
    ]
