(* Fixture tests for the rcbr_lint static analyzer (DESIGN.md §8).
   Every rule gets a must-fire, a must-not-fire and a suppressed case,
   plus coverage for rule scoping, the allowlist, the suppression
   grammar (mandatory reason, multi-line comments, comma-separated rule
   lists) and parse failures.  Fixtures live in quoted strings: the
   analyzer only ever sees them through [Lint.check_source], never as
   code belonging to this compilation unit. *)

module Lint = Rcbr_lint_core.Lint

let hits ?(config = Lint.strict_config) ?(filename = "lib/fixture.ml") src =
  List.map
    (fun v -> (v.Lint.line, v.Lint.rule))
    (Lint.check_source ~config ~filename src)

let pairs = Alcotest.(list (pair int string))

let check_hits ?config ?filename msg expected src =
  Alcotest.check pairs msg expected (hits ?config ?filename src)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* --- rule inventory -------------------------------------------------- *)

let test_rule_inventory () =
  let ids = List.map fst Lint.rules in
  List.iter
    (fun r -> Alcotest.(check bool) (r ^ " listed") true (List.mem r ids))
    [ "D001"; "D002"; "D003"; "F001"; "F002"; "R001"; "P001" ]

(* --- D001: randomness outside the sanctioned module ------------------ *)

let test_d001_fires () =
  check_hits "Random.int" [ (1, "D001") ] {|let f () = Random.int 10|};
  check_hits "open Random" [ (1, "D001") ] {|open Random|}

let test_d001_clean () =
  check_hits "lowercase near-miss" [] {|let random_pick = 3|}

let test_d001_exempt_file () =
  let config =
    { Lint.strict_config with Lint.d001_exempt = (fun f -> f = "lib/util/rng.ml") }
  in
  check_hits ~config ~filename:"lib/util/rng.ml" "rng.ml exempt" []
    {|let f () = Random.int 10|};
  check_hits ~config ~filename:"lib/core/optimal.ml" "others still fire"
    [ (1, "D001") ]
    {|let f () = Random.int 10|}

let test_d001_suppressed () =
  check_hits "inline allow" []
    {|(* lint: allow D001 -- fixture: exercising the suppression path *)
let f () = Random.int 10|}

(* --- D002: order-dependent Hashtbl traversal ------------------------- *)

let fold_fixture = {|let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []|}

let test_d002_fires () =
  check_hits "Hashtbl.fold" [ (1, "D002") ] fold_fixture;
  check_hits "Hashtbl.iter" [ (1, "D002") ]
    {|let dump h = Hashtbl.iter (fun k v -> print_int (k + v)) h|}

let test_d002_clean () =
  check_hits "point lookups are fine" [] {|let get h k = Hashtbl.find_opt h k|}

let test_d002_out_of_scope () =
  let config =
    { Lint.strict_config with Lint.d002_scope = (fun f -> has_prefix "lib/" f) }
  in
  check_hits ~config ~filename:"test/fixture.ml" "not result-producing" []
    fold_fixture;
  check_hits ~config ~filename:"lib/fixture.ml" "result path still fires"
    [ (1, "D002") ] fold_fixture

let test_d002_suppressed () =
  check_hits "allow with reason" []
    ({|(* lint: allow D002 -- fixture: order-independent traversal *)
|}
    ^ fold_fixture)

let test_suppression_needs_reason () =
  (* A reason-less [allow] grants nothing: the violation survives. *)
  check_hits "no reason, no grant" [ (2, "D002") ]
    ({|(* lint: allow D002 *)
|}
    ^ fold_fixture)

let test_suppression_wrong_rule () =
  check_hits "allow of another rule does not leak" [ (2, "D002") ]
    ({|(* lint: allow D001 -- fixture: wrong rule id *)
|}
    ^ fold_fixture)

let test_suppression_multiline () =
  (* The suppression anchors to the line holding the closing comment. *)
  check_hits "reason spanning lines" []
    ({|(* lint: allow D002 --
   the reason may continue onto the closing line *)
|}
    ^ fold_fixture)

let test_suppression_rule_list () =
  (* Comma-separated rules cover distinct violations on the same line. *)
  check_hits "comma-separated ids" []
    {|(* lint: allow F001, F002 -- fixture: both on one line *)
let bad x = x = nan || x = 0.5|}

(* --- D003: wall-clock reads ------------------------------------------ *)

let test_d003_fires () =
  check_hits "Unix.gettimeofday" [ (1, "D003") ]
    {|let now () = Unix.gettimeofday ()|};
  check_hits "Sys.time" [ (1, "D003") ] {|let cpu () = Sys.time ()|}

let test_d003_clean () =
  check_hits "Sys.argv is not a clock" [] {|let args () = Sys.argv|}

let test_d003_bench_exempt () =
  let config =
    { Lint.strict_config with Lint.d003_exempt = (fun f -> has_prefix "bench/" f) }
  in
  check_hits ~config ~filename:"bench/fixture.ml" "bench may read the clock"
    [] {|let now () = Unix.gettimeofday ()|};
  check_hits ~config ~filename:"lib/fixture.ml" "lib may not" [ (1, "D003") ]
    {|let now () = Unix.gettimeofday ()|}

let test_d003_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow D003 -- fixture: time injected for a seed check *)
let now () = Unix.gettimeofday ()|}

(* --- F001: polymorphic comparison on float-bearing operands ---------- *)

let test_f001_fires () =
  check_hits "poly = on float literal" [ (1, "F001") ]
    {|let close a = a = 0.5|};
  check_hits "poly compare on float arithmetic" [ (1, "F001") ]
    {|let c a b = compare (a +. 1.0) b|};
  check_hits "bare max folded over floats" [ (1, "F001") ]
    {|let peak xs = List.fold_left max 0.0 xs|}

let test_f001_clean () =
  check_hits "Float.equal" [] {|let close a = Float.equal a 0.5|};
  check_hits "Float.max folded" []
    {|let peak xs = List.fold_left Float.max 0.0 xs|};
  check_hits "no float evidence" [] {|let eq a b = a = b|}

let test_f001_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow F001 -- fixture: operands proven integral upstream *)
let close a = a = 0.5|}

(* --- F002: comparisons against nan ----------------------------------- *)

let test_f002_fires () =
  (* F002 wins over F001 for the same application: one report, not two. *)
  check_hits "= nan" [ (1, "F002") ] {|let bad x = x = nan|};
  check_hits "< nan" [ (1, "F002") ] {|let worse x = x < nan|}

let test_f002_clean () =
  check_hits "Float.is_nan" [] {|let good x = Float.is_nan x|}

let test_f002_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow F002 -- fixture: documenting the always-false branch *)
let bad x = x = nan|}

(* --- R001: module-level mutable state in Pool-reachable code --------- *)

let test_r001_fires () =
  check_hits "top-level ref" [ (1, "R001") ] {|let counter = ref 0|};
  check_hits "top-level Hashtbl.create" [ (1, "R001") ]
    {|let cache = Hashtbl.create 16|};
  check_hits "record with a mutable field" [ (2, "R001") ]
    {|type t = { mutable hits : int }
let stats = { hits = 0 }|}

let test_r001_clean () =
  check_hits "per-call state is fine" [] {|let fresh () = ref 0|};
  check_hits "immutable record literal" []
    {|type t = { hits : int }
let stats = { hits = 0 }|}

let test_r001_out_of_zone () =
  let config =
    { Lint.strict_config with Lint.r001_zone = (fun _ -> false) }
  in
  check_hits ~config "not Pool-reachable" [] {|let counter = ref 0|}

let test_r001_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow R001 -- fixture: mutex-guarded, idempotent cache *)
let counter = ref 0|}

let test_r001_zone_transitive () =
  (* The Pool-reachable zone follows the dune library graph: a library
     that never mentions the pool itself is still in zone when a
     Pool-using stanza depends on it (the lib/net case — rcbr_sim's
     sweeps fan out over simulations that run rcbr_net sessions). *)
  let tmp = Filename.temp_file "rcbr_zone" "" in
  Sys.remove tmp;
  let dir sub =
    let d = Filename.concat tmp sub in
    Sys.mkdir (Filename.dirname d) 0o755;
    Sys.mkdir d 0o755;
    d
  in
  Sys.mkdir tmp 0o755;
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let net = dir "lib/net" in
  write (Filename.concat net "dune") "(library (name fix_net))";
  write (Filename.concat net "state.ml") "let version = 1";
  let sim = Filename.concat tmp "lib/sim" in
  Sys.mkdir sim 0o755;
  write (Filename.concat sim "dune")
    "(library (name fix_sim) (libraries fix_net))";
  write (Filename.concat sim "sweep.ml") "let version = 1";
  let solo = Filename.concat tmp "lib/solo" in
  Sys.mkdir solo 0o755;
  write (Filename.concat solo "dune") "(library (name fix_solo))";
  write (Filename.concat solo "quiet.ml") "let version = 2";
  (* The Pool user: an executable fanning fix_sim simulations out. *)
  let bench = Filename.concat tmp "bench" in
  Sys.mkdir bench 0o755;
  write (Filename.concat bench "dune")
    "(executable (name fix_bench) (libraries fix_sim))";
  write (Filename.concat bench "main.ml") "let go pool = Pool.map pool";
  Fun.protect ~finally:(fun () ->
      List.iter Sys.remove
        [
          Filename.concat net "dune"; Filename.concat net "state.ml";
          Filename.concat sim "dune"; Filename.concat sim "sweep.ml";
          Filename.concat solo "dune"; Filename.concat solo "quiet.ml";
          Filename.concat bench "dune"; Filename.concat bench "main.ml";
        ];
      List.iter Sys.rmdir
        [ net; sim; solo; bench; Filename.concat tmp "lib"; tmp ])
  @@ fun () ->
  let config = Lint.repo_config ~roots:[ tmp ] () in
  Alcotest.(check bool) "library the Pool user runs is in zone" true
    (config.Lint.r001_zone (Filename.concat sim "sweep.ml"));
  Alcotest.(check bool) "transitive dependency is in zone" true
    (config.Lint.r001_zone (Filename.concat net "state.ml"));
  Alcotest.(check bool) "unreachable library is out of zone" false
    (config.Lint.r001_zone (Filename.concat solo "quiet.ml"));
  Alcotest.(check bool) "the executable's own dir is not a library zone" false
    (config.Lint.r001_zone (Filename.concat bench "main.ml"))

(* --- P001: Obj.magic -------------------------------------------------- *)

let test_p001_fires () =
  check_hits "Obj.magic" [ (1, "P001") ] {|let coerce x = Obj.magic x|}

let test_p001_clean () =
  check_hits "Obj.repr is not Obj.magic" [] {|let tag x = Obj.repr x|}

let test_p001_suppressed () =
  check_hits "allow with reason" []
    {|(* lint: allow P001 -- fixture: suppression still demands a reason *)
let coerce x = Obj.magic x|}

(* --- allowlist, interfaces, parse failures ---------------------------- *)

let test_allowlist_grants () =
  let config =
    { Lint.strict_config with Lint.allowlist = [ ("lib/fixture.ml", "D002") ] }
  in
  check_hits ~config ~filename:"lib/fixture.ml" "granted file is clean" []
    fold_fixture;
  check_hits ~config ~filename:"lib/other.ml" "grant is per-file"
    [ (1, "D002") ] fold_fixture

(* The daemon pump reads wall time under an explicit whole-file grant,
   like the one tools/lint/allowlist ships for bin/rcbr_switchd.ml:
   D003 goes quiet for exactly that file, and only D003. *)
let test_allowlist_grants_switchd_d003 () =
  let config =
    {
      Lint.strict_config with
      Lint.allowlist = [ ("bin/rcbr_switchd.ml", "D003") ];
    }
  in
  let clock_fixture = {|let now () = Unix.gettimeofday ()|} in
  check_hits ~config ~filename:"bin/rcbr_switchd.ml" "granted daemon is clean"
    [] clock_fixture;
  check_hits ~config ~filename:"bin/rcbr_other.ml" "grant is per-file"
    [ (1, "D003") ] clock_fixture;
  check_hits ~config ~filename:"bin/rcbr_switchd.ml"
    "grant covers only D003" [ (1, "D001") ]
    {|let draw () = Random.float 1.0|}

let test_mli_parses_as_interface () =
  (* [val] is only legal in an interface: this proves the suffix routes
     the source through [Parse.interface]. *)
  check_hits ~filename:"lib/fixture.mli" "clean interface" []
    {|val f : int -> int|}

let test_parse_failure_reported () =
  match hits {|let = |} with
  | [ (_, "PARSE") ] -> ()
  | other ->
      Alcotest.failf "expected a single PARSE violation, got %d: %s"
        (List.length other)
        (String.concat ", " (List.map snd other))

let () =
  let t name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "lint"
    [
      ("inventory", [ t "rule inventory" test_rule_inventory ]);
      ( "d001",
        [
          t "fires" test_d001_fires;
          t "clean" test_d001_clean;
          t "exempt file" test_d001_exempt_file;
          t "suppressed" test_d001_suppressed;
        ] );
      ( "d002",
        [
          t "fires" test_d002_fires;
          t "clean" test_d002_clean;
          t "out of scope" test_d002_out_of_scope;
          t "suppressed" test_d002_suppressed;
        ] );
      ( "suppression grammar",
        [
          t "needs a reason" test_suppression_needs_reason;
          t "wrong rule id" test_suppression_wrong_rule;
          t "multi-line comment" test_suppression_multiline;
          t "comma-separated rules" test_suppression_rule_list;
        ] );
      ( "d003",
        [
          t "fires" test_d003_fires;
          t "clean" test_d003_clean;
          t "bench exempt" test_d003_bench_exempt;
          t "suppressed" test_d003_suppressed;
        ] );
      ( "f001",
        [
          t "fires" test_f001_fires;
          t "clean" test_f001_clean;
          t "suppressed" test_f001_suppressed;
        ] );
      ( "f002",
        [
          t "fires" test_f002_fires;
          t "clean" test_f002_clean;
          t "suppressed" test_f002_suppressed;
        ] );
      ( "r001",
        [
          t "fires" test_r001_fires;
          t "clean" test_r001_clean;
          t "out of zone" test_r001_out_of_zone;
          t "suppressed" test_r001_suppressed;
          t "zone is dune-graph transitive" test_r001_zone_transitive;
        ] );
      ( "p001",
        [
          t "fires" test_p001_fires;
          t "clean" test_p001_clean;
          t "suppressed" test_p001_suppressed;
        ] );
      ( "plumbing",
        [
          t "allowlist grants" test_allowlist_grants;
          t "allowlist grants switchd D003" test_allowlist_grants_switchd_d003;
          t "mli parses as interface" test_mli_parses_as_interface;
          t "parse failure reported" test_parse_failure_reported;
        ] );
    ]
