(* Unit and property tests for Rcbr_traffic. *)

module Trace = Rcbr_traffic.Trace
module Gop = Rcbr_traffic.Gop
module Synthetic = Rcbr_traffic.Synthetic
module Token_bucket = Rcbr_traffic.Token_bucket

let check_close eps = Alcotest.(check (float eps))

let small_trace () = Trace.create ~fps:2. [| 10.; 20.; 30.; 40. |]

(* --- Trace --- *)

let test_trace_basic () =
  let t = small_trace () in
  Alcotest.(check int) "length" 4 (Trace.length t);
  check_close 1e-9 "duration" 2. (Trace.duration t);
  check_close 1e-9 "total" 100. (Trace.total_bits t);
  check_close 1e-9 "mean rate" 50. (Trace.mean_rate t);
  check_close 1e-9 "peak rate" 80. (Trace.peak_rate t);
  check_close 1e-9 "slot" 0.5 (Trace.slot_duration t)

let test_trace_validation () =
  Alcotest.(check bool) "negative frame rejected" true
    (try
       ignore (Trace.create ~fps:1. [| -1. |]);
       false
     with Assert_failure _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Trace.create ~fps:1. [||]);
       false
     with Assert_failure _ -> true)

let test_window_max () =
  let t = small_trace () in
  check_close 1e-9 "w=1" 40. (Trace.window_max_bits t 1);
  check_close 1e-9 "w=2" 70. (Trace.window_max_bits t 2);
  check_close 1e-9 "w=4" 100. (Trace.window_max_bits t 4)

let test_rate_in_window () =
  let t = small_trace () in
  (* frames 1..2 = 50 bits over 1 s *)
  check_close 1e-9 "middle window" 50. (Trace.rate_in_window t ~lo:1 ~hi:2)

let test_shift () =
  let t = small_trace () in
  let s = Trace.shift t 1 in
  check_close 1e-9 "shifted first" 20. (Trace.frame s 0);
  check_close 1e-9 "wrapped" 10. (Trace.frame s 3);
  let z = Trace.shift t 0 in
  check_close 1e-9 "zero shift" 10. (Trace.frame z 0);
  let n = Trace.shift t (-1) in
  check_close 1e-9 "negative shift" 40. (Trace.frame n 0)

let test_shift_preserves_total () =
  let t = small_trace () in
  check_close 1e-9 "total invariant" (Trace.total_bits t)
    (Trace.total_bits (Trace.shift t 3))

let test_sub () =
  let t = small_trace () in
  let s = Trace.sub t ~pos:1 ~len:2 in
  Alcotest.(check int) "length" 2 (Trace.length s);
  check_close 1e-9 "first" 20. (Trace.frame s 0)

let test_sustained_peak () =
  let t = Trace.create ~fps:1. [| 1.; 5.; 5.; 5.; 1.; 5. |] in
  Alcotest.(check int) "run of 3" 3 (Trace.sustained_peak t ~threshold:5.);
  Alcotest.(check int) "everything" 6 (Trace.sustained_peak t ~threshold:1.);
  Alcotest.(check int) "nothing" 0 (Trace.sustained_peak t ~threshold:10.)

let test_save_load_roundtrip () =
  let t = small_trace () in
  let path = Filename.temp_file "rcbr_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t path;
      let t' = Trace.load path in
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
      check_close 1e-12 "fps" (Trace.fps t) (Trace.fps t');
      for i = 0 to Trace.length t - 1 do
        check_close 1e-12 "frame" (Trace.frame t i) (Trace.frame t' i)
      done)

(* --- Gop --- *)

let test_gop_pattern () =
  let p = Gop.mpeg1_default in
  Alcotest.(check int) "gop length" 12 (Gop.gop_length p);
  Alcotest.(check string) "frame 0 is I" "I" (Gop.kind_to_string (Gop.kind_at p 0));
  Alcotest.(check string) "frame 3 is P" "P" (Gop.kind_to_string (Gop.kind_at p 3));
  Alcotest.(check string) "frame 1 is B" "B" (Gop.kind_to_string (Gop.kind_at p 1));
  Alcotest.(check string) "wraps" "I" (Gop.kind_to_string (Gop.kind_at p 12))

let test_gop_weights () =
  let p = Gop.mpeg1_default in
  check_close 1e-9 "I weight" 2.5 (Gop.weight_at p 0);
  check_close 1e-9 "B weight" 0.6 (Gop.weight_at p 1);
  (* (2.5 + 3*1.2 + 8*0.6)/12 *)
  check_close 1e-9 "mean weight" (10.9 /. 12.) (Gop.mean_weight p)

let test_gop_make_validates () =
  Alcotest.(check bool) "empty kinds rejected" true
    (try
       ignore (Gop.make ~kinds:[||] ~weight_i:1. ~weight_p:1. ~weight_b:1.);
       false
     with Assert_failure _ -> true)

(* --- Synthetic --- *)

let test_synthetic_mean_exact () =
  let t = Synthetic.star_wars ~frames:30_000 ~seed:1 () in
  check_close 1. "mean rate is calibrated exactly" 374_000. (Trace.mean_rate t)

let test_synthetic_deterministic () =
  let a = Synthetic.star_wars ~frames:5_000 ~seed:5 () in
  let b = Synthetic.star_wars ~frames:5_000 ~seed:5 () in
  for i = 0 to 4_999 do
    check_close 1e-12 "same frames" (Trace.frame a i) (Trace.frame b i)
  done

let test_synthetic_seed_changes () =
  let a = Synthetic.star_wars ~frames:1_000 ~seed:1 () in
  let b = Synthetic.star_wars ~frames:1_000 ~seed:2 () in
  let same = ref 0 in
  for i = 0 to 999 do
    if Trace.frame a i = Trace.frame b i then incr same
  done;
  Alcotest.(check bool) "traces differ" true (!same < 10)

let test_synthetic_positive_frames () =
  let t = Synthetic.star_wars ~frames:10_000 ~seed:3 () in
  for i = 0 to Trace.length t - 1 do
    if not (Trace.frame t i > 0.) then Alcotest.fail "nonpositive frame"
  done

let test_synthetic_occupancy () =
  let occ = Synthetic.class_occupancy Synthetic.star_wars_params in
  check_close 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. occ)

let test_synthetic_multiscale_projection () =
  let ms = Synthetic.to_multiscale Synthetic.star_wars_params in
  (* The projection should have roughly the trace's mean frame size. *)
  let mean_frame = 374_000. /. 24. in
  check_close (mean_frame *. 0.05) "projected mean" mean_frame
    (Rcbr_markov.Multiscale.mean_rate ms)

let test_synthetic_burstiness () =
  (* The generator must show multi-time-scale burstiness: the peak rate
     over 10-second windows should exceed twice the mean. *)
  let t = Synthetic.star_wars ~frames:50_000 ~seed:7 () in
  let mean = Trace.mean_rate t in
  let w = 240 in
  let best = ref 0. in
  let i = ref 0 in
  while !i + w <= Trace.length t do
    let r = Trace.rate_in_window t ~lo:!i ~hi:(!i + w - 1) in
    if r > !best then best := r;
    i := !i + w
  done;
  Alcotest.(check bool) "10-s windows exceed 2x mean" true (!best > 2. *. mean)

let test_synthetic_gop_structure () =
  (* I frames should be systematically bigger than the B frames around
     them. *)
  let t = Synthetic.star_wars ~frames:12_000 ~seed:11 () in
  let i_total = ref 0. and b_total = ref 0. and count = ref 0 in
  let g = 12 in
  let n = Trace.length t / g in
  for k = 0 to n - 1 do
    i_total := !i_total +. Trace.frame t (k * g);
    b_total := !b_total +. Trace.frame t ((k * g) + 1);
    incr count
  done;
  Alcotest.(check bool) "I bigger than B on average" true
    (!i_total /. float_of_int !count > 2. *. (!b_total /. float_of_int !count))

(* --- Token bucket --- *)

let test_bucket_basic () =
  let b = Token_bucket.create ~rate:10. ~depth:100. in
  Alcotest.(check bool) "starts full" true (Float.equal (Token_bucket.tokens b) 100.);
  Alcotest.(check bool) "consume ok" true (Token_bucket.try_consume b 60.);
  Alcotest.(check bool) "overdraw rejected" false (Token_bucket.try_consume b 60.);
  check_close 1e-9 "leftover" 40. (Token_bucket.tokens b);
  Token_bucket.refill b ~dt:2.;
  check_close 1e-9 "refilled" 60. (Token_bucket.tokens b);
  Token_bucket.refill b ~dt:100.;
  check_close 1e-9 "capped at depth" 100. (Token_bucket.tokens b)

let test_bucket_policing () =
  (* Constant-rate traffic at exactly the token rate conforms fully. *)
  let trace = Trace.create ~fps:1. (Array.make 50 10.) in
  let b = Token_bucket.create ~rate:10. ~depth:10. in
  check_close 1e-9 "conforming" 1. (Token_bucket.conforming_fraction b ~trace);
  (* Double-rate traffic conforms at most ~half the bits. *)
  let b2 = Token_bucket.create ~rate:10. ~depth:10. in
  let hot = Trace.create ~fps:1. (Array.make 50 20.) in
  Alcotest.(check bool) "nonconforming under overload" true
    (Token_bucket.conforming_fraction b2 ~trace:hot < 0.6)

let test_min_depth () =
  let trace = Trace.create ~fps:1. [| 0.; 30.; 0.; 0. |] in
  (* Drained at 10 b/s: backlog peaks at 30 - 10 = 20. *)
  check_close 1e-9 "depth" 20. (Token_bucket.min_depth_for_trace trace ~rate:10.);
  check_close 1e-9 "peak-rate drain needs nothing" 0.
    (Token_bucket.min_depth_for_trace trace ~rate:30.)

(* --- Properties --- *)

let trace_gen =
  QCheck.Gen.(
    let* n = int_range 2 60 in
    let* frames = array_size (return n) (float_range 0. 1000.) in
    return (Trace.create ~fps:8. frames))

let arb_trace = QCheck.make trace_gen

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift by n is identity" ~count:100 arb_trace (fun t ->
      let s = Trace.shift t (Trace.length t) in
      Array.for_all2 ( = ) (Trace.frames t) (Trace.frames s))

let prop_window_max_monotone =
  QCheck.Test.make ~name:"window max is monotone in window" ~count:100 arb_trace
    (fun t ->
      let n = Trace.length t in
      let ok = ref true in
      for w = 2 to n do
        if Trace.window_max_bits t w < Trace.window_max_bits t (w - 1) -. 1e-9
        then ok := false
      done;
      !ok)

let prop_min_depth_monotone =
  QCheck.Test.make ~name:"min bucket depth decreases with rate" ~count:100
    arb_trace (fun t ->
      let d1 = Token_bucket.min_depth_for_trace t ~rate:100. in
      let d2 = Token_bucket.min_depth_for_trace t ~rate:500. in
      d2 <= d1 +. 1e-9)

let prop_mean_le_peak =
  QCheck.Test.make ~name:"mean rate <= peak rate" ~count:100 arb_trace (fun t ->
      Trace.mean_rate t <= Trace.peak_rate t +. 1e-9)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_traffic"
    [
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "window max" `Quick test_window_max;
          Alcotest.test_case "rate in window" `Quick test_rate_in_window;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "shift preserves total" `Quick test_shift_preserves_total;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "sustained peak" `Quick test_sustained_peak;
          Alcotest.test_case "save/load" `Quick test_save_load_roundtrip;
        ] );
      ( "gop",
        [
          Alcotest.test_case "pattern" `Quick test_gop_pattern;
          Alcotest.test_case "weights" `Quick test_gop_weights;
          Alcotest.test_case "validation" `Quick test_gop_make_validates;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "mean exact" `Quick test_synthetic_mean_exact;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "seed changes" `Quick test_synthetic_seed_changes;
          Alcotest.test_case "positive frames" `Quick test_synthetic_positive_frames;
          Alcotest.test_case "class occupancy" `Quick test_synthetic_occupancy;
          Alcotest.test_case "multiscale projection" `Quick
            test_synthetic_multiscale_projection;
          Alcotest.test_case "burstiness" `Quick test_synthetic_burstiness;
          Alcotest.test_case "gop structure" `Quick test_synthetic_gop_structure;
        ] );
      ( "token_bucket",
        [
          Alcotest.test_case "basic" `Quick test_bucket_basic;
          Alcotest.test_case "policing" `Quick test_bucket_policing;
          Alcotest.test_case "min depth" `Quick test_min_depth;
        ] );
      ( "properties",
        q
          [
            prop_shift_roundtrip;
            prop_window_max_monotone;
            prop_min_depth_monotone;
            prop_mean_le_peak;
          ] );
    ]
