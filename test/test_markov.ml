(* Unit and property tests for Rcbr_markov. *)

module Chain = Rcbr_markov.Chain
module Modulated = Rcbr_markov.Modulated
module Multiscale = Rcbr_markov.Multiscale
module Rng = Rcbr_util.Rng

let check_close eps = Alcotest.(check (float eps))

let two_state p q =
  Chain.create [| [| 1. -. p; p |]; [| q; 1. -. q |] |]

(* --- Chain --- *)

let test_create_rejects_non_square () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Chain.create: matrix not square") (fun () ->
      ignore (Chain.create [| [| 1. |]; [| 0.5; 0.5 |] |]))

let test_create_rejects_bad_rows () =
  Alcotest.check_raises "row sum"
    (Invalid_argument "Chain.create: row does not sum to 1") (fun () ->
      ignore (Chain.create [| [| 0.5; 0.4 |]; [| 0.5; 0.5 |] |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Chain.create: negative probability") (fun () ->
      ignore (Chain.create [| [| 1.5; -0.5 |]; [| 0.5; 0.5 |] |]))

let test_stationary_two_state () =
  (* pi = (q, p)/(p+q) for the standard two-state chain. *)
  let c = two_state 0.2 0.3 in
  let pi = Chain.stationary c in
  check_close 1e-9 "pi0" 0.6 pi.(0);
  check_close 1e-9 "pi1" 0.4 pi.(1)

let test_stationary_identity_like () =
  let c = Chain.create [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  let pi = Chain.stationary c in
  check_close 1e-9 "uniform" 0.5 pi.(0)

let test_stationary_three_state () =
  let c =
    Chain.create
      [|
        [| 0.0; 1.0; 0.0 |];
        [| 0.0; 0.0; 1.0 |];
        [| 1.0; 0.0; 0.0 |];
      |]
  in
  let pi = Chain.stationary c in
  Array.iter (fun p -> check_close 1e-9 "cycle uniform" (1. /. 3.) p) pi

let test_irreducible () =
  Alcotest.(check bool) "two state" true (Chain.is_irreducible (two_state 0.1 0.1));
  let reducible =
    Chain.create [| [| 1.0; 0.0 |]; [| 0.5; 0.5 |] |]
  in
  Alcotest.(check bool) "absorbing" false (Chain.is_irreducible reducible)

let test_simulate_occupancy () =
  let c = two_state 0.2 0.3 in
  let rng = Rng.create 42 in
  let states = Chain.simulate c rng ~init:0 ~steps:200_000 in
  let occ = Chain.occupancy states ~n_states:2 in
  check_close 0.01 "occupancy matches stationary" 0.6 occ.(0)

let test_simulate_starts_at_init () =
  let c = two_state 0.5 0.5 in
  let rng = Rng.create 1 in
  let states = Chain.simulate c rng ~init:1 ~steps:10 in
  Alcotest.(check int) "init included" 1 states.(0)

let test_step_respects_support () =
  let c = Chain.create [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    Alcotest.(check int) "deterministic step" 1 (Chain.step c rng 0)
  done

let test_uniformize () =
  (* Generator [[-1,1],[2,-2]], rate 4 -> P = [[0.75,0.25],[0.5,0.5]]. *)
  let c = Chain.uniformize [| [| -1.; 1. |]; [| 2.; -2. |] |] ~rate:4. in
  check_close 1e-9 "p00" 0.75 (Chain.prob c 0 0);
  check_close 1e-9 "p10" 0.5 (Chain.prob c 1 0);
  (* Stationary of CTMC: (2/3, 1/3). *)
  let pi = Chain.stationary c in
  check_close 1e-9 "ctmc stationary" (2. /. 3.) pi.(0)

(* --- Modulated --- *)

let test_modulated_mean_peak () =
  let m = Modulated.create (two_state 0.2 0.3) ~rates:[| 1.; 11. |] in
  check_close 1e-9 "mean" 5. (Modulated.mean_rate m);
  check_close 1e-9 "peak" 11. (Modulated.peak_rate m)

let test_on_off () =
  let m = Modulated.on_off ~peak:10. ~p_on_to_off:0.3 ~p_off_to_on:0.2 in
  (* on fraction = 0.2/(0.2+0.3) = 0.4 *)
  check_close 1e-9 "on/off mean" 4. (Modulated.mean_rate m)

let test_modulated_simulate_mean () =
  let m = Modulated.create (two_state 0.2 0.3) ~rates:[| 1.; 11. |] in
  let rng = Rng.create 9 in
  let data = Modulated.simulate m rng ~steps:200_000 () in
  let mean = Array.fold_left ( +. ) 0. data /. 200_000. in
  check_close 0.1 "simulated mean" 5. mean

let test_modulated_rates_copied () =
  let rates = [| 1.; 2. |] in
  let m = Modulated.create (two_state 0.5 0.5) ~rates in
  rates.(0) <- 99.;
  check_close 1e-9 "immutable" 1. (Modulated.rates m).(0)

(* --- Multiscale --- *)

let example () = Multiscale.fig4_example ()

let test_multiscale_structure () =
  let ms = example () in
  Alcotest.(check int) "subchains" 3 (Multiscale.n_subchains ms);
  Alcotest.(check int) "total states" 6 (Multiscale.total_states ms);
  Alcotest.(check bool) "rare transitions" true
    (Multiscale.leave_probability ms 0 < 0.01)

let test_multiscale_occupancy_sums () =
  let occ = Multiscale.subchain_occupancy (example ()) in
  let total = Array.fold_left ( +. ) 0. occ in
  check_close 1e-9 "sums to 1" 1. total;
  Array.iter (fun p -> Alcotest.(check bool) "positive" true (p > 0.)) occ

let test_multiscale_mean_consistency () =
  let ms = example () in
  let occ = Multiscale.subchain_occupancy ms in
  let means = Multiscale.subchain_mean_rates ms in
  let mix = ref 0. in
  Array.iteri (fun k p -> mix := !mix +. (p *. means.(k))) occ;
  check_close 1e-12 "mean = occupancy-weighted subchain means" !mix
    (Multiscale.mean_rate ms)

let test_multiscale_marginal () =
  let marg = Multiscale.marginal (example ()) in
  let total = Array.fold_left (fun a (p, _) -> a +. p) 0. marg in
  check_close 1e-9 "marginal sums to 1" 1. total

let test_flatten_preserves_mean () =
  let ms = example () in
  let flat = Multiscale.flatten ms in
  check_close 1e-6 "flattened mean rate" (Multiscale.mean_rate ms)
    (Modulated.mean_rate flat)

let test_flatten_preserves_peak () =
  let ms = example () in
  check_close 1e-12 "flattened peak" (Multiscale.peak_rate ms)
    (Modulated.peak_rate (Multiscale.flatten ms))

let test_multiscale_simulate () =
  let ms = example () in
  let rng = Rng.create 17 in
  let data, which = Multiscale.simulate ms rng ~steps:300_000 in
  Alcotest.(check int) "lengths" (Array.length data) (Array.length which);
  let mean = Array.fold_left ( +. ) 0. data /. 300_000. in
  check_close 0.15 "simulated mean near analytic" (Multiscale.mean_rate ms) mean;
  (* Subchain index occupancy should roughly match the slow stationary law. *)
  let occ_sim = Array.make 3 0. in
  Array.iter (fun k -> occ_sim.(k) <- occ_sim.(k) +. 1.) which;
  let occ = Multiscale.subchain_occupancy ms in
  Array.iteri
    (fun k p -> check_close 0.15 "subchain occupancy" p (occ_sim.(k) /. 300_000.))
    occ

let test_multiscale_sustained_peak () =
  (* A multi time-scale source should show long runs in one subchain. *)
  let ms = example () in
  let rng = Rng.create 23 in
  let _, which = Multiscale.simulate ms rng ~steps:100_000 in
  let best = ref 0 and run = ref 0 and prev = ref (-1) in
  Array.iter
    (fun k ->
      if k = !prev then incr run else run := 1;
      prev := k;
      if !run > !best then best := !run)
    which;
  Alcotest.(check bool) "sojourns are long" true (!best > 200)

let test_create_validates_eps () =
  let sc =
    { Multiscale.chain = two_state 0.5 0.5; rates = [| 0.; 1. |] }
  in
  let bad_eps = [| [| 0.1; 0.1 |]; [| 0.1; 0. |] |] in
  Alcotest.(check bool) "nonzero diagonal rejected" true
    (try
       ignore (Multiscale.create [| sc; sc |] ~eps:bad_eps);
       false
     with Assert_failure _ -> true)

(* --- Properties --- *)

let random_chain_gen =
  (* Random 3-state stochastic matrix with strictly positive entries. *)
  QCheck.Gen.(
    let row = array_size (return 3) (float_range 0.1 1.) in
    array_size (return 3) row)

let prop_stationary_fixed_point =
  QCheck.Test.make ~name:"stationary is a fixed point" ~count:100
    (QCheck.make random_chain_gen) (fun rows ->
      let rows =
        Array.map
          (fun r ->
            let s = Array.fold_left ( +. ) 0. r in
            Array.map (fun x -> x /. s) r)
          rows
      in
      let c = Chain.create rows in
      let pi = Chain.stationary c in
      let pi' = Array.make 3 0. in
      for i = 0 to 2 do
        for j = 0 to 2 do
          pi'.(j) <- pi'.(j) +. (pi.(i) *. Chain.prob c i j)
        done
      done;
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) pi pi')

let prop_mean_rate_between =
  QCheck.Test.make ~name:"mean rate between min and max" ~count:100
    (QCheck.make random_chain_gen) (fun rows ->
      let rows =
        Array.map
          (fun r ->
            let s = Array.fold_left ( +. ) 0. r in
            Array.map (fun x -> x /. s) r)
          rows
      in
      let rates = [| 1.; 5.; 20. |] in
      let m = Modulated.create (Chain.create rows) ~rates in
      let mu = Modulated.mean_rate m in
      mu >= 1. -. 1e-9 && mu <= 20. +. 1e-9)

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_markov"
    [
      ( "chain",
        [
          Alcotest.test_case "rejects non-square" `Quick test_create_rejects_non_square;
          Alcotest.test_case "rejects bad rows" `Quick test_create_rejects_bad_rows;
          Alcotest.test_case "stationary two-state" `Quick test_stationary_two_state;
          Alcotest.test_case "stationary uniform" `Quick test_stationary_identity_like;
          Alcotest.test_case "stationary cycle" `Quick test_stationary_three_state;
          Alcotest.test_case "irreducible" `Quick test_irreducible;
          Alcotest.test_case "simulate occupancy" `Quick test_simulate_occupancy;
          Alcotest.test_case "simulate init" `Quick test_simulate_starts_at_init;
          Alcotest.test_case "step support" `Quick test_step_respects_support;
          Alcotest.test_case "uniformize" `Quick test_uniformize;
        ] );
      ( "modulated",
        [
          Alcotest.test_case "mean/peak" `Quick test_modulated_mean_peak;
          Alcotest.test_case "on/off" `Quick test_on_off;
          Alcotest.test_case "simulate mean" `Quick test_modulated_simulate_mean;
          Alcotest.test_case "rates copied" `Quick test_modulated_rates_copied;
        ] );
      ( "multiscale",
        [
          Alcotest.test_case "structure" `Quick test_multiscale_structure;
          Alcotest.test_case "occupancy sums" `Quick test_multiscale_occupancy_sums;
          Alcotest.test_case "mean consistency" `Quick test_multiscale_mean_consistency;
          Alcotest.test_case "marginal" `Quick test_multiscale_marginal;
          Alcotest.test_case "flatten mean" `Quick test_flatten_preserves_mean;
          Alcotest.test_case "flatten peak" `Quick test_flatten_preserves_peak;
          Alcotest.test_case "simulate" `Quick test_multiscale_simulate;
          Alcotest.test_case "sustained peaks" `Quick test_multiscale_sustained_peak;
          Alcotest.test_case "eps validation" `Quick test_create_validates_eps;
        ] );
      ("properties", q [ prop_stationary_fixed_point; prop_mean_rate_between ]);
    ]
