(* Unit tests for Rcbr_signal: RM cells, ports, multi-hop paths and
   signaling-latency effects. *)

module Rm_cell = Rcbr_signal.Rm_cell
module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path
module Latency = Rcbr_signal.Latency
module Schedule = Rcbr_core.Schedule

let check_close eps = Alcotest.(check (float eps))

(* --- Rm_cell --- *)

let test_cell_payloads () =
  let d = Rm_cell.delta ~vci:3 5. in
  check_close 1e-12 "delta" 5. (Rm_cell.payload_rate_change d ~current:100.);
  let r = Rm_cell.resync ~vci:3 80. in
  check_close 1e-12 "resync" (-20.) (Rm_cell.payload_rate_change r ~current:100.)

(* --- Port --- *)

let test_port_grant_deny () =
  let p = Port.create ~capacity:100. () in
  Alcotest.(check bool) "grant" true (Port.process p (Rm_cell.delta ~vci:1 60.) = `Granted);
  check_close 1e-12 "reserved" 60. (Port.reserved p);
  Alcotest.(check bool) "deny over capacity" true
    (Port.process p (Rm_cell.delta ~vci:2 50.) = `Denied);
  check_close 1e-12 "reserved unchanged on deny" 60. (Port.reserved p);
  Alcotest.(check bool) "exact fit" true
    (Port.process p (Rm_cell.delta ~vci:2 40.) = `Granted);
  (* Decreases always succeed. *)
  Alcotest.(check bool) "decrease" true
    (Port.process p (Rm_cell.delta ~vci:1 (-30.)) = `Granted);
  check_close 1e-12 "after decrease" 70. (Port.reserved p)

let test_port_vci_tracking () =
  let p = Port.create ~capacity:100. () in
  ignore (Port.process p (Rm_cell.delta ~vci:7 30.));
  check_close 1e-12 "tracked" 30. (Port.vci_rate p 7);
  check_close 1e-12 "unknown vci" 0. (Port.vci_rate p 8);
  ignore (Port.process p (Rm_cell.delta ~vci:7 10.));
  check_close 1e-12 "accumulated" 40. (Port.vci_rate p 7);
  Port.release p ~vci:7 ~rate:40.;
  check_close 1e-12 "released" 0. (Port.reserved p);
  check_close 1e-12 "forgotten" 0. (Port.vci_rate p 7)

let test_port_drift_and_resync () =
  (* Lose a delta cell: the switch belief drifts; a resync repairs it in
     Tracked mode. *)
  let p = Port.create ~capacity:1000. () in
  ignore (Port.process p (Rm_cell.delta ~vci:1 100.));
  (* Source renegotiates down to 40 but the cell is lost: switch still
     believes 100 while the source sends at 40. *)
  check_close 1e-12 "drift" 60. (Port.drift p ~actual:40.);
  (* Periodic resync with the absolute rate repairs the belief. *)
  ignore (Port.process p (Rm_cell.resync ~vci:1 40.));
  check_close 1e-12 "repaired" 0. (Port.drift p ~actual:40.);
  check_close 1e-12 "reserved tracks" 40. (Port.reserved p)

let test_port_stateless_ignores_resync () =
  let p = Port.create ~mode:Port.Stateless ~capacity:1000. () in
  ignore (Port.process p (Rm_cell.delta ~vci:1 100.));
  ignore (Port.process p (Rm_cell.resync ~vci:1 40.));
  (* Stateless mode cannot interpret an absolute rate. *)
  check_close 1e-12 "unchanged" 100. (Port.reserved p)

let test_port_reserved_never_negative () =
  let p = Port.create ~capacity:100. () in
  ignore (Port.process p (Rm_cell.delta ~vci:1 (-50.)));
  check_close 1e-12 "clamped" 0. (Port.reserved p)

(* --- Path --- *)

let three_ports () =
  [ Port.create ~capacity:100. (); Port.create ~capacity:50. ();
    Port.create ~capacity:100. () ]

let test_path_setup_and_teardown () =
  let ports = three_ports () in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:30. in
  Alcotest.(check int) "hops" 3 (Path.hops path);
  check_close 1e-12 "rate" 30. (Path.rate path);
  List.iter (fun p -> check_close 1e-12 "reserved" 30. (Port.reserved p)) ports;
  Path.teardown path;
  List.iter (fun p -> check_close 1e-12 "freed" 0. (Port.reserved p)) ports

let test_path_setup_fails_cleanly () =
  let ports = three_ports () in
  (* Typed admission result: the middle hop (capacity 50) is the one
     that cannot fit 70. *)
  (match Path.create ports ~vci:1 ~initial_rate:70. with
  | Error (`Denied_at 1) -> ()
  | Error (`Denied_at i) -> Alcotest.failf "denied at unexpected hop %d" i
  | Ok _ -> Alcotest.fail "setup should have been denied");
  (* Nothing may remain reserved after the failed setup. *)
  List.iter (fun p -> check_close 1e-12 "rolled back" 0. (Port.reserved p)) ports;
  (* The raising convenience wrapper agrees. *)
  Alcotest.(check bool) "create_exn raises" true
    (try ignore (Path.create_exn ports ~vci:1 ~initial_rate:70.); false
     with Failure _ -> true);
  List.iter (fun p -> check_close 1e-12 "still clean" 0. (Port.reserved p)) ports

let test_path_renegotiate () =
  let ports = three_ports () in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:30. in
  Alcotest.(check bool) "increase ok" true (Path.renegotiate path 45. = `Granted);
  check_close 1e-12 "new rate" 45. (Path.rate path);
  (* Middle hop (capacity 50) denies 60. *)
  (match Path.renegotiate path 60. with
  | `Denied_at 1 -> ()
  | `Denied_at i -> Alcotest.failf "denied at unexpected hop %d" i
  | `Granted -> Alcotest.fail "should be denied");
  check_close 1e-12 "rate kept on denial" 45. (Path.rate path);
  (* First hop must have been rolled back. *)
  List.iter
    (fun p -> check_close 1e-12 "consistent bookkeeping" 45. (Port.reserved p))
    ports;
  Alcotest.(check bool) "decrease always ok" true (Path.renegotiate path 10. = `Granted);
  List.iter (fun p -> check_close 1e-12 "after decrease" 10. (Port.reserved p)) ports

let test_path_contention () =
  (* Two connections on a shared middle hop: the second one's increase
     is limited by what the first left. *)
  let shared = Port.create ~capacity:100. () in
  let a = Path.create_exn [ shared ] ~vci:1 ~initial_rate:60. in
  let b = Path.create_exn [ shared ] ~vci:2 ~initial_rate:30. in
  Alcotest.(check bool) "b cannot take 50" true (Path.renegotiate b 50. <> `Granted);
  Alcotest.(check bool) "a releases" true (Path.renegotiate a 20. = `Granted);
  Alcotest.(check bool) "now b fits" true (Path.renegotiate b 50. = `Granted);
  check_close 1e-12 "shared reserved" 70. (Port.reserved shared)

(* --- Property: renegotiation rollback conserves bandwidth --- *)

module Invariant = Rcbr_fault.Invariant

let prop_renegotiate_conserves =
  (* Random interleavings of all-or-nothing renegotiations by two
     connections sharing a 3-hop path (middle hop is the bottleneck).
     After every operation — grant, denial with rollback, teardown —
     each port's aggregate must equal its per-VCI sum, stay within
     capacity, and agree with every other hop. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 60) (pair (int_range 0 1) (float_range 0. 120.)))
  in
  QCheck.Test.make ~name:"renegotiate conserves reserved bandwidth" ~count:200
    (QCheck.make gen) (fun ops ->
      let ports = three_ports () in
      let a = Path.create_exn ports ~vci:1 ~initial_rate:10. in
      let b = Path.create_exn ports ~vci:2 ~initial_rate:10. in
      let paths = [| a; b |] in
      let ok = ref true in
      let audit () =
        let views = List.mapi (fun i p -> Port.view p ~index:i) ports in
        if Invariant.check (Array.of_list views) <> [] then ok := false
      in
      List.iter
        (fun (i, rate) ->
          (match Path.renegotiate paths.(i) rate with
          | `Granted | `Denied_at _ -> ());
          audit ();
          let r0 = Port.reserved (List.hd ports) in
          List.iter
            (fun p ->
              if Float.abs (Port.reserved p -. r0) > 1e-6 then ok := false)
            ports)
        ops;
      Path.teardown a;
      Path.teardown b;
      audit ();
      List.iter (fun p -> if Port.reserved p > 1e-9 then ok := false) ports;
      !ok)

let prop_setup_denial_rolls_back =
  (* A mid-path denial during Path.create must release every hop that
     had already granted the setup: each port's free capacity (and its
     per-VCI table) is exactly what it was before the attempt.  Random
     per-hop capacities and pre-existing load make the denial hop (if
     any) land anywhere along the path. *)
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 1 8) (float_range 10. 100.))
        (float_range 0. 80.) (float_range 1. 120.))
  in
  QCheck.Test.make ~name:"mid-path setup denial rolls back every hop"
    ~count:300 (QCheck.make gen) (fun (capacities, preload, rate) ->
      let ports = List.map (fun c -> Port.create ~capacity:c ()) capacities in
      (* Background connection where it fits, so ports start uneven. *)
      List.iter
        (fun p ->
          ignore (Port.process p (Rm_cell.delta ~vci:9 preload) : [ `Granted | `Denied ]))
        ports;
      let before = List.map (fun p -> (Port.reserved p, Port.vci_rate p 1)) ports in
      match Path.create ports ~vci:1 ~initial_rate:rate with
      | Error (`Denied_at hop) ->
          (* The denying hop really could not fit the rate... *)
          let denier = List.nth ports hop in
          Port.capacity denier -. Port.reserved denier < rate
          (* ...and no hop kept any trace of the attempt. *)
          && List.for_all2
               (fun p (r, v) ->
                 Float.abs (Port.reserved p -. r) <= 1e-9
                 && Float.abs (Port.vci_rate p 1 -. v) <= 1e-9)
               ports before
      | Ok path ->
          let granted =
            List.for_all2
              (fun p (r, _) -> Float.abs (Port.reserved p -. (r +. rate)) <= 1e-9)
              ports before
          in
          Path.teardown path;
          granted
          && List.for_all2
               (fun p (r, _) -> Float.abs (Port.reserved p -. r) <= 1e-9)
               ports before)

(* --- Latency --- *)

let sched () =
  Schedule.create ~fps:1. ~n_slots:10
    [
      { Schedule.start_slot = 0; rate = 10. };
      { Schedule.start_slot = 3; rate = 30. };
      { Schedule.start_slot = 7; rate = 5. };
    ]

let test_delay_shifts_changes () =
  let d = Latency.delay (sched ()) ~seconds:2. in
  check_close 1e-12 "initial unchanged" 10. (Schedule.rate_at d 0);
  check_close 1e-12 "still old at 4" 10. (Schedule.rate_at d 4);
  check_close 1e-12 "new at 5" 30. (Schedule.rate_at d 5);
  check_close 1e-12 "second change at 9" 5. (Schedule.rate_at d 9)

let test_delay_zero_identity () =
  let s = sched () in
  let d = Latency.delay s ~seconds:0. in
  for i = 0 to 9 do
    check_close 1e-12 "identity" (Schedule.rate_at s i) (Schedule.rate_at d i)
  done

let test_delay_drops_past_end () =
  let d = Latency.delay (sched ()) ~seconds:5. in
  (* The change at slot 7 lands at 12 > 9 and disappears. *)
  Alcotest.(check int) "one change left" 1 (Schedule.n_renegotiations d);
  check_close 1e-12 "tail keeps previous rate" 30. (Schedule.rate_at d 9)

let test_anticipate () =
  let a = Latency.anticipate (sched ()) ~seconds:2. in
  check_close 1e-12 "change pulled to 1" 30. (Schedule.rate_at a 1);
  check_close 1e-12 "second pulled to 5" 5. (Schedule.rate_at a 5);
  (* Anticipating all the way to slot 0 overrides the initial rate. *)
  let a0 = Latency.anticipate (sched ()) ~seconds:3. in
  check_close 1e-12 "initial overridden" 30. (Schedule.rate_at a0 0)

let test_align_to_refresh () =
  let r = Latency.align_to_refresh (sched ()) ~period_s:4. in
  (* Change requested at slot 3 becomes effective at slot 4; change at 7
     becomes effective at 8. *)
  check_close 1e-12 "before refresh" 10. (Schedule.rate_at r 3);
  check_close 1e-12 "at refresh" 30. (Schedule.rate_at r 4);
  check_close 1e-12 "second at 8" 5. (Schedule.rate_at r 8)

let test_backlog_penalty_increases_with_delay () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:3_000 ~seed:3 () in
  let params = Rcbr_core.Optimal.default_params ~cost_ratio:1e5 trace in
  let s = Rcbr_core.Optimal.solve params trace in
  let penalty secs =
    let modified = Latency.delay s ~seconds:secs in
    fst (Latency.backlog_penalty ~original:s ~modified ~trace ~capacity:infinity)
  in
  Alcotest.(check bool) "zero delay, zero penalty" true (penalty 0. <= 1e-6);
  Alcotest.(check bool) "delay hurts" true (penalty 2. >= 0.);
  Alcotest.(check bool) "more delay hurts at least as much" true
    (penalty 4. >= penalty 1. -. 1e-6)

let test_anticipation_compensates () =
  (* Offline sources cancel the signaling latency by anticipating:
     delay(anticipate(s)) has no rate-increase lateness. *)
  let s = sched () in
  let compensated = Latency.delay (Latency.anticipate s ~seconds:2.) ~seconds:2. in
  for i = 0 to 9 do
    check_close 1e-12 "round trip" (Schedule.rate_at s i)
      (Schedule.rate_at compensated i)
  done

let () =
  Alcotest.run "rcbr_signal"
    [
      ("rm_cell", [ Alcotest.test_case "payloads" `Quick test_cell_payloads ]);
      ( "port",
        [
          Alcotest.test_case "grant/deny" `Quick test_port_grant_deny;
          Alcotest.test_case "vci tracking" `Quick test_port_vci_tracking;
          Alcotest.test_case "drift and resync" `Quick test_port_drift_and_resync;
          Alcotest.test_case "stateless resync" `Quick
            test_port_stateless_ignores_resync;
          Alcotest.test_case "never negative" `Quick
            test_port_reserved_never_negative;
        ] );
      ( "path",
        [
          Alcotest.test_case "setup/teardown" `Quick test_path_setup_and_teardown;
          Alcotest.test_case "setup failure" `Quick test_path_setup_fails_cleanly;
          Alcotest.test_case "renegotiate" `Quick test_path_renegotiate;
          Alcotest.test_case "contention" `Quick test_path_contention;
          QCheck_alcotest.to_alcotest prop_renegotiate_conserves;
          QCheck_alcotest.to_alcotest prop_setup_denial_rolls_back;
        ] );
      ( "latency",
        [
          Alcotest.test_case "delay shifts" `Quick test_delay_shifts_changes;
          Alcotest.test_case "zero delay identity" `Quick test_delay_zero_identity;
          Alcotest.test_case "drops past end" `Quick test_delay_drops_past_end;
          Alcotest.test_case "anticipate" `Quick test_anticipate;
          Alcotest.test_case "refresh alignment" `Quick test_align_to_refresh;
          Alcotest.test_case "delay penalty" `Quick
            test_backlog_penalty_increases_with_delay;
          Alcotest.test_case "anticipation compensates" `Quick
            test_anticipation_compensates;
        ] );
    ]
