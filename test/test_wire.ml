(* Tests for Rcbr_wire: the codec inversion pair (round-trip + totality
   under byte fuzz), stream framing under arbitrary chunking, mangler
   determinism, switchd dispatch semantics (idempotent request ids,
   denial taxonomy, drain), and the loadgen's seed-pure pieces. *)

module Codec = Rcbr_wire.Codec
module Frame = Rcbr_wire.Frame
module Mangle = Rcbr_wire.Mangle
module Switchd = Rcbr_wire.Switchd
module Loadgen = Rcbr_wire.Loadgen
module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Rm_cell = Rcbr_signal.Rm_cell
module Plan = Rcbr_fault.Plan
module Rng = Rcbr_util.Rng

let check_exact = Alcotest.(check (float 0.))

(* --- generators ------------------------------------------------------ *)

let gen_msg : Codec.t QCheck.Gen.t =
  let open QCheck.Gen in
  let id = int_range 0 ((1 lsl 32) - 1) in
  let rate = float_range 0. 1e9 in
  let any_rate = float_range (-1e9) 1e9 in
  let route = array_size (int_range 1 6) (int_range 0 65535) in
  let reason =
    oneofl
      [
        Codec.Capacity;
        Codec.Blackout;
        Codec.Unknown_call;
        Codec.Duplicate_call;
        Codec.Bad_route;
        Codec.Draining;
        Codec.Downgraded;
      ]
  in
  oneof
    [
      map2 (fun vci delta -> Codec.Delta { vci; delta }) id any_rate;
      map2 (fun vci rate -> Codec.Resync { vci; rate }) id rate;
      (let setup req call route transit rate =
         Codec.Setup { req; call; route; transit; rate }
       in
       setup <$> id <*> id <*> route <*> bool <*> rate);
      (let reneg req call rate = Codec.Renegotiate { req; call; rate } in
       reneg <$> id <*> id <*> rate);
      map2 (fun req call -> Codec.Teardown { req; call }) id id;
      map2 (fun req applied -> Codec.Ack { req; applied }) id rate;
      map2 (fun req reason -> Codec.Deny { req; reason }) id reason;
      map (fun req -> Codec.Audit_request { req }) id;
      (let reply req sessions violations demand =
         Codec.Audit_reply { req; sessions; violations; demand }
       in
       reply <$> id <*> id <*> id <*> any_rate);
    ]

let arb_msg = QCheck.make ~print:(Format.asprintf "%a" Codec.pp) gen_msg

(* --- codec: inversion pair ------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode m) = Ok m" ~count:1000 arb_msg
    (fun m ->
      match Codec.decode (Codec.encode m) with
      | Ok m' -> Codec.equal m m'
      | Error _ -> false)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame = u32 length prefix + encode" ~count:300
    arb_msg (fun m ->
      let f = Codec.frame m in
      let payload = Codec.encode m in
      let n = String.length payload in
      String.length f = n + 4
      && Char.code f.[0] = (n lsr 24) land 0xff
      && Char.code f.[1] = (n lsr 16) land 0xff
      && Char.code f.[2] = (n lsr 8) land 0xff
      && Char.code f.[3] = n land 0xff
      && String.sub f 4 n = payload)

(* Totality: decode must return (not raise) on anything.  10k arbitrary
   buffers, every truncation of valid encodings, and single bit flips —
   the seeded generator makes failures reproducible. *)
let test_decode_total_fuzz () =
  let rng = Rng.create 0xF00D in
  let decode_must_return buf =
    match Codec.decode buf with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode raised %s on %S" (Printexc.to_string e) buf
  in
  (* arbitrary buffers *)
  for _ = 1 to 10_000 do
    let len = Rng.int rng 64 in
    decode_must_return (String.init len (fun _ -> Char.chr (Rng.int rng 256)))
  done;
  (* every proper prefix of a valid encoding must be a typed Error *)
  let samples =
    [
      Codec.Delta { vci = 7; delta = -125.5 };
      Codec.Resync { vci = 0xFFFF_FFFF; rate = 0. };
      Codec.Setup
        { req = 1; call = 2; route = [| 0; 1; 2 |]; transit = true; rate = 1e6 };
      Codec.Renegotiate { req = 3; call = 2; rate = 2.5e5 };
      Codec.Teardown { req = 4; call = 2 };
      Codec.Ack { req = 5; applied = 1e6 };
      Codec.Deny { req = 6; reason = Codec.Draining };
      Codec.Audit_request { req = 7 };
      Codec.Audit_reply { req = 8; sessions = 3; violations = 0; demand = -0.5 };
    ]
  in
  List.iter
    (fun m ->
      let buf = Codec.encode m in
      for cut = 0 to String.length buf - 1 do
        match Codec.decode (String.sub buf 0 cut) with
        | Ok got ->
            Alcotest.failf "prefix %d of %a decoded Ok as %a" cut Codec.pp m
              Codec.pp got
        | Error _ -> ()
        | exception e ->
            Alcotest.failf "decode raised %s on a prefix of %a"
              (Printexc.to_string e) Codec.pp m
      done;
      (* trailing garbage must be rejected, not silently dropped *)
      (match Codec.decode (buf ^ "\x00") with
      | Error (Codec.Trailing _) -> ()
      | Ok _ | Error _ -> Alcotest.failf "trailing byte not flagged on %a" Codec.pp m);
      (* single bit flips: decode returns, whatever the verdict *)
      for _ = 1 to 200 do
        let byte = Rng.int rng (String.length buf) in
        let bit = Rng.int rng 8 in
        let b = Bytes.of_string buf in
        Bytes.set b byte (Char.chr (Char.code buf.[byte] lxor (1 lsl bit)));
        decode_must_return (Bytes.to_string b)
      done)
    samples

let test_codec_errors_typed () =
  let expect name want got =
    Alcotest.(check string) name want (Codec.error_to_string got)
  in
  ignore expect;
  (match Codec.decode "" with
  | Error Codec.Empty -> ()
  | _ -> Alcotest.fail "empty buffer not Empty");
  (match Codec.decode "\xFF" with
  | Error (Codec.Bad_tag 0xFF) -> ()
  | _ -> Alcotest.fail "unknown tag not Bad_tag");
  (* a Resync whose rate bits are a NaN must be rejected as Bad_rate *)
  let nan_resync =
    let buf = Bytes.of_string (Codec.encode (Codec.Resync { vci = 1; rate = 1. })) in
    Bytes.set_int64_be buf 5 (Int64.bits_of_float Float.nan);
    Bytes.to_string buf
  in
  (match Codec.decode nan_resync with
  | Error (Codec.Bad_rate _) -> ()
  | _ -> Alcotest.fail "NaN rate not Bad_rate");
  (* encode refuses what decode would refuse *)
  Alcotest.(check bool) "validate flags negative resync" true
    (Codec.validate (Codec.Resync { vci = 1; rate = -1. }) <> None);
  (match Codec.encode (Codec.Resync { vci = 1; rate = -1. }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode accepted a negative resync rate")

let test_rm_cell_bridge () =
  let cells =
    [ Rm_cell.delta ~vci:9 (-2.5e4); Rm_cell.resync ~vci:12 7.5e5 ]
  in
  List.iter
    (fun cell ->
      match Codec.to_rm_cell (Codec.of_rm_cell cell) with
      | Some cell' ->
          Alcotest.(check bool) "bridge round-trips" true (cell = cell')
      | None -> Alcotest.fail "bridge lost an RM cell")
    cells;
  Alcotest.(check bool) "session messages are not RM cells" true
    (Codec.to_rm_cell (Codec.Teardown { req = 1; call = 2 }) = None)

(* --- framing --------------------------------------------------------- *)

(* Any chunking of a frame stream yields the same message sequence. *)
let test_reader_arbitrary_boundaries () =
  let rng = Rng.create 0xBEEF in
  let msgs =
    [
      Codec.Setup
        { req = 0; call = 1; route = [| 0 |]; transit = false; rate = 5e5 };
      Codec.Delta { vci = 1; delta = -125.0 };
      Codec.Ack { req = 0; applied = 5e5 };
      Codec.Audit_request { req = 1 };
      Codec.Resync { vci = 1; rate = 4e5 };
      Codec.Teardown { req = 2; call = 1 };
    ]
  in
  let stream = String.concat "" (List.map Codec.frame msgs) in
  for _trial = 1 to 200 do
    let reader = Frame.Reader.create () in
    let got = ref [] in
    let pump () =
      let rec go () =
        match Frame.Reader.next reader with
        | `Msg m ->
            got := m :: !got;
            go ()
        | `Error e -> Alcotest.failf "decode error %a" Codec.pp_error e
        | `Fatal e -> Alcotest.failf "fatal %a" Codec.pp_error e
        | `Await -> ()
      in
      go ()
    in
    let n = String.length stream in
    let pos = ref 0 in
    while !pos < n do
      let chunk = 1 + Rng.int rng 9 in
      let chunk = min chunk (n - !pos) in
      Frame.Reader.feed_string reader (String.sub stream !pos chunk);
      pos := !pos + chunk;
      pump ()
    done;
    let got = List.rev !got in
    Alcotest.(check int) "all messages out" (List.length msgs) (List.length got);
    List.iter2
      (fun want have ->
        Alcotest.(check bool) "same message" true (Codec.equal want have))
      msgs got
  done

let test_reader_recoverable_and_fatal () =
  let good = Codec.frame (Codec.Audit_request { req = 42 }) in
  (* flip a payload bit of the middle frame; framing survives *)
  let bad =
    let b = Bytes.of_string good in
    Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) lxor 0x40));
    Bytes.to_string b
  in
  let reader = Frame.Reader.create () in
  Frame.Reader.feed_string reader (good ^ bad ^ good);
  (match Frame.Reader.next reader with
  | `Msg m ->
      Alcotest.(check bool) "first frame ok" true
        (Codec.equal m (Codec.Audit_request { req = 42 }))
  | _ -> Alcotest.fail "expected first message");
  (match Frame.Reader.next reader with
  | `Error _ -> ()
  | _ -> Alcotest.fail "expected recoverable decode error");
  (match Frame.Reader.next reader with
  | `Msg _ -> ()
  | _ -> Alcotest.fail "stream did not stay in sync");
  (match Frame.Reader.next reader with
  | `Await -> ()
  | _ -> Alcotest.fail "expected Await at end");
  (* an oversized length prefix poisons the reader forever *)
  let reader = Frame.Reader.create () in
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 (Int32.of_int (Codec.max_frame + 1));
  Frame.Reader.feed_string reader (Bytes.to_string huge);
  (match Frame.Reader.next reader with
  | `Fatal (Codec.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized prefix not fatal");
  Frame.Reader.feed_string reader good;
  match Frame.Reader.next reader with
  | `Fatal _ -> ()
  | _ -> Alcotest.fail "poisoned reader answered non-fatal"

(* --- mangler --------------------------------------------------------- *)

let test_mangle_deterministic () =
  let link =
    Plan.lossy ~drop:0.2 ~duplicate:0.1 ~reorder:0.1 ~delay:0.1 ~corrupt:0.2
      ~max_extra_slots:3 ()
  in
  let frames =
    List.init 200 (fun i ->
        Codec.frame (Codec.Resync { vci = i; rate = float_of_int i }))
  in
  let run () =
    let m = Mangle.create ~seed:77 link in
    let out = List.concat_map (fun f -> Mangle.send m f) frames in
    (out @ Mangle.flush m, Mangle.stats m)
  in
  let out_a, stats_a = run () in
  let out_b, stats_b = run () in
  Alcotest.(check bool) "same seed, same byte stream" true (out_a = out_b);
  Alcotest.(check bool) "same stats" true (stats_a = stats_b);
  Alcotest.(check int) "every send counted" 200 stats_a.Mangle.sent;
  (* nothing is lost except drops: sent - dropped + duplicated frames out *)
  Alcotest.(check int) "conservation of frames"
    (stats_a.Mangle.sent - stats_a.Mangle.dropped + stats_a.Mangle.duplicated)
    (List.length out_a);
  Alcotest.(check bool) "faults actually exercised" true
    (stats_a.Mangle.dropped > 0 && stats_a.Mangle.corrupted > 0);
  (* corruption spares the length prefix, so framing always survives *)
  let m = Mangle.create ~seed:3 (Plan.lossy ~corrupt:1.0 ()) in
  List.iter
    (fun f ->
      List.iter
        (fun f' ->
          Alcotest.(check int) "length preserved" (String.length f)
            (String.length f');
          Alcotest.(check string) "prefix untouched" (String.sub f 0 4)
            (String.sub f' 0 4);
          Alcotest.(check bool) "payload damaged" true (f <> f'))
        (Mangle.send m f))
    frames

(* --- switchd dispatch ------------------------------------------------ *)

let mk_switch () =
  Switchd.create (Switchd.default_config (Topology.single_link ~capacity:1e6))

let expect_reply t conn ~now msg =
  match Switchd.handle t conn ~now msg with
  | Some reply -> reply
  | None -> Alcotest.failf "no reply to %a" Codec.pp msg

let test_switchd_setup_and_idempotency () =
  let t = mk_switch () in
  let conn = Switchd.connect t in
  let setup =
    Codec.Setup { req = 1; call = 7; route = [| 0 |]; transit = false; rate = 4e5 }
  in
  (match expect_reply t conn ~now:0. setup with
  | Codec.Ack { req = 1; applied } -> check_exact "applied" 4e5 applied
  | r -> Alcotest.failf "expected Ack, got %a" Codec.pp r);
  check_exact "demand accounted" 4e5 (Switchd.links t).(0).Link.demand;
  (* a retransmitted duplicate re-answers from cache without re-applying *)
  (match expect_reply t conn ~now:1. setup with
  | Codec.Ack { req = 1; applied } -> check_exact "cached ack" 4e5 applied
  | r -> Alcotest.failf "expected cached Ack, got %a" Codec.pp r);
  check_exact "demand NOT double-applied" 4e5 (Switchd.links t).(0).Link.demand;
  Alcotest.(check int) "duplicate counted" 1 (Switchd.stats t).Switchd.duplicates;
  Alcotest.(check int) "one setup applied" 1 (Switchd.sessions t);
  (* same call, fresh req: a real duplicate call, denied *)
  (match
     expect_reply t conn ~now:2.
       (Codec.Setup
          { req = 2; call = 7; route = [| 0 |]; transit = false; rate = 1e5 })
   with
  | Codec.Deny { reason = Codec.Duplicate_call; _ } -> ()
  | r -> Alcotest.failf "expected Duplicate_call, got %a" Codec.pp r);
  Alcotest.(check int) "audit clean" 0 (Switchd.audit t)

let test_switchd_denials () =
  let t = mk_switch () in
  let conn = Switchd.connect t in
  (match
     expect_reply t conn ~now:0.
       (Codec.Setup
          { req = 1; call = 1; route = [| 9 |]; transit = false; rate = 1e5 })
   with
  | Codec.Deny { reason = Codec.Bad_route; _ } -> ()
  | r -> Alcotest.failf "expected Bad_route, got %a" Codec.pp r);
  (match
     expect_reply t conn ~now:0.
       (Codec.Setup
          { req = 2; call = 1; route = [| 0 |]; transit = false; rate = 2e6 })
   with
  | Codec.Deny { reason = Codec.Capacity; _ } -> ()
  | r -> Alcotest.failf "expected Capacity, got %a" Codec.pp r);
  (match
     expect_reply t conn ~now:0. (Codec.Renegotiate { req = 3; call = 1; rate = 1. })
   with
  | Codec.Deny { reason = Codec.Unknown_call; _ } -> ()
  | r -> Alcotest.failf "expected Unknown_call, got %a" Codec.pp r);
  (match expect_reply t conn ~now:0. (Codec.Teardown { req = 4; call = 1 }) with
  | Codec.Deny { reason = Codec.Unknown_call; _ } -> ()
  | r -> Alcotest.failf "expected Unknown_call teardown, got %a" Codec.pp r);
  Alcotest.(check int) "four denials" 4 (Switchd.stats t).Switchd.denials;
  (* reply-typed client traffic is counted and dropped *)
  (match Switchd.handle t conn ~now:0. (Codec.Ack { req = 9; applied = 0. }) with
  | None -> ()
  | Some r -> Alcotest.failf "unexpected reply %a" Codec.pp r);
  Alcotest.(check int) "unexpected counted" 1 (Switchd.stats t).Switchd.unexpected

let test_switchd_rm_cells_and_audit () =
  let t = mk_switch () in
  let conn = Switchd.connect t in
  ignore
    (expect_reply t conn ~now:0.
       (Codec.Setup
          { req = 1; call = 3; route = [| 0 |]; transit = false; rate = 5e5 }));
  (* deltas apply with settle semantics, below zero clamps *)
  Alcotest.(check bool) "delta is fire-and-forget" true
    (Switchd.handle t conn ~now:0.1 (Codec.Delta { vci = 3; delta = -6e5 }) = None);
  check_exact "clamped at zero" 0. (Switchd.links t).(0).Link.demand;
  Alcotest.(check int) "underflow counted" 1 (Switchd.stats t).Switchd.underflows;
  ignore (Switchd.handle t conn ~now:0.2 (Codec.Resync { vci = 3; rate = 2e5 }));
  check_exact "resync repairs" 2e5 (Switchd.links t).(0).Link.demand;
  (* stray cells for unknown VCIs are counted, not applied *)
  ignore (Switchd.handle t conn ~now:0.3 (Codec.Delta { vci = 99; delta = 1e5 }));
  Alcotest.(check int) "stray counted" 1 (Switchd.stats t).Switchd.stray_cells;
  check_exact "stray not applied" 2e5 (Switchd.links t).(0).Link.demand;
  (match expect_reply t conn ~now:0.4 (Codec.Audit_request { req = 2 }) with
  | Codec.Audit_reply { sessions = 1; violations = 0; demand; _ } ->
      check_exact "audited demand" 2e5 demand
  | r -> Alcotest.failf "expected clean audit, got %a" Codec.pp r)

let test_switchd_drain () =
  let t = mk_switch () in
  let conn = Switchd.connect t in
  ignore
    (expect_reply t conn ~now:0.
       (Codec.Setup
          { req = 1; call = 1; route = [| 0 |]; transit = false; rate = 1e5 }));
  let report = Switchd.drain t in
  Alcotest.(check int) "live session reported" 1 report.Switchd.live_sessions;
  Alcotest.(check int) "conserving at drain" 0 report.Switchd.violations;
  check_exact "drain demand" 1e5 report.Switchd.demand;
  (* draining switches deny new work but still serve existing calls *)
  (match
     expect_reply t conn ~now:1.
       (Codec.Setup
          { req = 2; call = 2; route = [| 0 |]; transit = false; rate = 1e5 })
   with
  | Codec.Deny { reason = Codec.Draining; _ } -> ()
  | r -> Alcotest.failf "expected Draining, got %a" Codec.pp r);
  (match expect_reply t conn ~now:2. (Codec.Teardown { req = 3; call = 1 }) with
  | Codec.Ack _ -> ()
  | r -> Alcotest.failf "teardown during drain refused: %a" Codec.pp r);
  let final = Switchd.drain t in
  Alcotest.(check int) "empty after teardown" 0 final.Switchd.live_sessions;
  check_exact "no demand left" 0. final.Switchd.demand

(* byte-level entry: partial reads, pipelining, decode-error counting *)
let test_switchd_input_framing () =
  let t = mk_switch () in
  let conn = Switchd.connect t in
  let setup =
    Codec.frame
      (Codec.Setup
         { req = 1; call = 1; route = [| 0 |]; transit = false; rate = 1e5 })
  in
  let audit = Codec.frame (Codec.Audit_request { req = 2 }) in
  let stream = setup ^ audit in
  let cut = String.length setup - 3 in
  (match Switchd.input t conn ~now:0. (String.sub stream 0 cut) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "replied before the frame completed"
  | Error e -> Alcotest.failf "fatal on partial read: %a" Codec.pp_error e);
  (match
     Switchd.input t conn ~now:0.
       (String.sub stream cut (String.length stream - cut))
   with
  | Ok [ r1; r2 ] ->
      (match Codec.decode (String.sub r1 4 (String.length r1 - 4)) with
      | Ok (Codec.Ack { req = 1; _ }) -> ()
      | _ -> Alcotest.fail "first reply is not the setup ack");
      (match Codec.decode (String.sub r2 4 (String.length r2 - 4)) with
      | Ok (Codec.Audit_reply { req = 2; sessions = 1; violations = 0; _ }) -> ()
      | _ -> Alcotest.fail "second reply is not the audit")
  | Ok rs -> Alcotest.failf "expected 2 pipelined replies, got %d" (List.length rs)
  | Error e -> Alcotest.failf "fatal: %a" Codec.pp_error e);
  (* a corrupted payload is counted and skipped, stream stays usable *)
  let bad =
    let b = Bytes.of_string audit in
    Bytes.set b 4 '\xEE';
    Bytes.to_string b
  in
  (match Switchd.input t conn ~now:1. (bad ^ audit) with
  | Ok [ _ ] -> ()
  | Ok rs -> Alcotest.failf "expected 1 reply after bad frame, got %d" (List.length rs)
  | Error e -> Alcotest.failf "recoverable error escalated: %a" Codec.pp_error e);
  Alcotest.(check int) "decode error counted" 1
    (Switchd.stats t).Switchd.decode_errors

(* --- loadgen --------------------------------------------------------- *)

let test_loadgen_backoff () =
  check_exact "attempt 0" 0.2 (Loadgen.backoff ~base:0.2 ~attempt:0);
  check_exact "attempt 3" 1.6 (Loadgen.backoff ~base:0.2 ~attempt:3)

let test_loadgen_storm_deterministic () =
  let topology = Topology.single_link ~capacity:1e6 in
  let mk () =
    Loadgen.storm ~topology ~calls:6 ~rounds:3 ~rate_max:1e5 ~rm_fraction:0.5
      ~seed:11 ~conns:2
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "same seed, same ops" true (a = b);
  Alcotest.(check int) "one queue per conn" 2 (Array.length a);
  (* each call sets up exactly once and tears down exactly once, on its
     home connection *)
  let count p = Array.fold_left (fun acc q -> acc + List.length (List.filter p q)) 0 a in
  Alcotest.(check int) "six setups"
    6 (count (function Loadgen.Op_setup _ -> true | _ -> false));
  Alcotest.(check int) "six teardowns"
    6 (count (function Loadgen.Op_teardown _ -> true | _ -> false));
  Array.iteri
    (fun c q ->
      List.iter
        (fun op -> Alcotest.(check int) "call on home conn" c (Loadgen.op_call op mod 2))
        q)
    a;
  let c = Loadgen.storm ~topology ~calls:6 ~rounds:3 ~rate_max:1e5
      ~rm_fraction:0.5 ~seed:12 ~conns:2
  in
  Alcotest.(check bool) "different seed, different ops" true (a <> c)

let test_loadgen_outcome_hash () =
  let a = [ (1, Loadgen.Acked 5e5); (2, Loadgen.Denied Codec.Capacity) ] in
  let shuffled = [ (2, Loadgen.Denied Codec.Capacity); (1, Loadgen.Acked 5e5) ] in
  Alcotest.(check int) "order-insensitive" (Loadgen.outcome_hash a)
    (Loadgen.outcome_hash shuffled);
  let changed = [ (1, Loadgen.Acked 5e5); (2, Loadgen.Gave_up) ] in
  Alcotest.(check bool) "outcome-sensitive" true
    (Loadgen.outcome_hash a <> Loadgen.outcome_hash changed);
  let renumbered = [ (3, Loadgen.Acked 5e5); (2, Loadgen.Denied Codec.Capacity) ] in
  Alcotest.(check bool) "req-sensitive" true
    (Loadgen.outcome_hash a <> Loadgen.outcome_hash renumbered)

let test_loadgen_message_of_op () =
  (match
     Loadgen.message_of_op ~req:9
       (Loadgen.Op_setup { call = 1; route = [| 0 |]; transit = false; rate = 2. })
   with
  | Codec.Setup { req = 9; call = 1; _ } -> ()
  | m -> Alcotest.failf "bad setup mapping: %a" Codec.pp m);
  match Loadgen.message_of_op ~req:9 (Loadgen.Op_delta { call = 4; delta = -1. }) with
  | Codec.Delta { vci = 4; _ } -> ()
  | m -> Alcotest.failf "bad delta mapping: %a" Codec.pp m

(* --- end-to-end in process: storm through bytes ---------------------- *)

(* The whole stack without sockets: storm ops -> frames -> (mangled) ->
   Switchd.input -> replies; then reliable teardowns and a final audit.
   This is the daemon-smoke CI step in miniature, run per test suite. *)
let test_storm_through_bytes () =
  let topology = Topology.single_link ~capacity:1e6 in
  let t = Switchd.create (Switchd.default_config topology) in
  let conn = Switchd.connect t in
  let mangle =
    Mangle.create ~seed:5
      (Plan.lossy ~drop:0.15 ~duplicate:0.1 ~corrupt:0.1 ())
  in
  let ops =
    Loadgen.storm ~topology ~calls:5 ~rounds:3 ~rate_max:1e5 ~rm_fraction:0.4
      ~seed:21 ~conns:1
  in
  let req = ref 0 in
  let now = ref 0. in
  let push frame =
    now := !now +. 0.01;
    match Switchd.input t conn ~now:!now frame with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "framing lost: %a" Codec.pp_error e
  in
  List.iter
    (fun op ->
      incr req;
      let frame = Codec.frame (Loadgen.message_of_op ~req:!req op) in
      List.iter push (Mangle.send mangle frame))
    ops.(0);
  List.iter push (Mangle.flush mangle);
  (* reliable cleanup, as rcbr_loadgen's finish phase *)
  for call = 0 to 4 do
    incr req;
    push (Codec.frame (Codec.Teardown { req = !req; call }))
  done;
  Alcotest.(check int) "switch empty" 0 (Switchd.sessions t);
  Alcotest.(check int) "conservation held" 0 (Switchd.audit t);
  Alcotest.(check bool) "demand settled" true
    (Float.abs (Switchd.total_demand t) < 1e-6);
  Alcotest.(check int) "no invariant-relevant surprises" 0
    (Switchd.stats t).Switchd.unexpected

let () =
  let q = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "rcbr_wire"
    [
      ( "codec",
        [
          Alcotest.test_case "totality fuzz" `Quick test_decode_total_fuzz;
          Alcotest.test_case "typed errors" `Quick test_codec_errors_typed;
          Alcotest.test_case "rm-cell bridge" `Quick test_rm_cell_bridge;
        ] );
      ( "framing",
        [
          Alcotest.test_case "arbitrary boundaries" `Quick
            test_reader_arbitrary_boundaries;
          Alcotest.test_case "recoverable vs fatal" `Quick
            test_reader_recoverable_and_fatal;
        ] );
      ( "mangle",
        [ Alcotest.test_case "deterministic" `Quick test_mangle_deterministic ] );
      ( "switchd",
        [
          Alcotest.test_case "setup + idempotency" `Quick
            test_switchd_setup_and_idempotency;
          Alcotest.test_case "denial taxonomy" `Quick test_switchd_denials;
          Alcotest.test_case "rm cells + audit" `Quick
            test_switchd_rm_cells_and_audit;
          Alcotest.test_case "drain" `Quick test_switchd_drain;
          Alcotest.test_case "input framing" `Quick test_switchd_input_framing;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "backoff" `Quick test_loadgen_backoff;
          Alcotest.test_case "storm deterministic" `Quick
            test_loadgen_storm_deterministic;
          Alcotest.test_case "outcome hash" `Quick test_loadgen_outcome_hash;
          Alcotest.test_case "message mapping" `Quick test_loadgen_message_of_op;
          Alcotest.test_case "storm through bytes" `Quick
            test_storm_through_bytes;
        ] );
      ( "properties",
        q [ prop_roundtrip; prop_frame_roundtrip ] );
    ]
