(* Unit tests for Rcbr_sim: SMG scenarios and the MBAC call-level
   simulator. *)

module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Optimal = Rcbr_core.Optimal
module Smg = Rcbr_sim.Smg
module Mbac = Rcbr_sim.Mbac
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor

let check_close eps = Alcotest.(check (float eps))

let trace = Rcbr_traffic.Synthetic.star_wars ~frames:6_000 ~seed:42 ()
let schedule = Optimal.solve (Optimal.default_params ~cost_ratio:2e5 trace) trace

let config () =
  {
    Smg.trace;
    schedule;
    buffer = 300_000.;
    target_loss = 1e-5;
    replications = 2;
    seed = 7;
  }

(* --- Smg --- *)

let test_validate () =
  let c = config () in
  Smg.validate c;
  Alcotest.(check bool) "bad buffer rejected" true
    (try Smg.validate { c with Smg.buffer = 0. }; false
     with Invalid_argument _ -> true);
  let short = Trace.sub trace ~pos:0 ~len:100 in
  Alcotest.(check bool) "length mismatch rejected" true
    (try Smg.validate { c with Smg.trace = short }; false
     with Invalid_argument _ -> true)

let test_cbr_independent_of_n () =
  let c = config () in
  let cap = Smg.min_capacity_cbr c in
  Alcotest.(check bool) "above mean" true (cap > Trace.mean_rate trace);
  Alcotest.(check bool) "below peak" true (cap <= Trace.peak_rate trace)

let test_shared_equals_cbr_at_n1 () =
  let c = config () in
  let cbr = Smg.min_capacity_cbr c in
  let shared = Smg.min_capacity_shared c ~n:1 in
  check_close (cbr *. 0.01) "n=1 shared = dedicated" cbr shared

let test_shared_gain_grows_with_n () =
  let c = config () in
  let c1 = Smg.min_capacity_shared c ~n:1 in
  let c10 = Smg.min_capacity_shared c ~n:10 in
  let c40 = Smg.min_capacity_shared c ~n:40 in
  Alcotest.(check bool) "SMG grows" true (c1 >= c10 && c10 >= c40)

let test_rcbr_gain_grows_with_n () =
  let c = config () in
  let c1 = Smg.min_capacity_rcbr c ~n:1 in
  let c10 = Smg.min_capacity_rcbr c ~n:10 in
  let c40 = Smg.min_capacity_rcbr c ~n:40 in
  Alcotest.(check bool) "SMG grows" true (c1 >= c10 && c10 >= c40)

let test_rcbr_between_shared_and_cbr () =
  (* The paper's headline ordering at moderate n: shared <= rcbr <= cbr. *)
  let c = config () in
  let cbr = Smg.min_capacity_cbr c in
  let shared = Smg.min_capacity_shared c ~n:20 in
  let rcbr = Smg.min_capacity_rcbr c ~n:20 in
  Alcotest.(check bool) "shared is the lower bound" true (shared <= rcbr *. 1.05);
  Alcotest.(check bool) "rcbr beats static CBR" true (rcbr < cbr)

let test_rcbr_loss_monotone () =
  let c = config () in
  let l1 = Smg.rcbr_loss c ~n:10 ~capacity_per_stream:(Trace.mean_rate trace) in
  let l2 =
    Smg.rcbr_loss c ~n:10 ~capacity_per_stream:(2. *. Trace.mean_rate trace)
  in
  Alcotest.(check bool) "loss decreases with capacity" true (l2 <= l1);
  Alcotest.(check bool) "losses are fractions" true (l1 >= 0. && l1 <= 1.)

let test_rcbr_asymptote () =
  let c = config () in
  check_close 1e-9 "asymptote is schedule mean" (Schedule.mean_rate schedule)
    (Smg.asymptotic_rcbr_capacity c);
  (* At large n the needed capacity approaches the asymptote. *)
  let c80 = Smg.min_capacity_rcbr c ~n:80 in
  Alcotest.(check bool) "close to asymptote at n=80" true
    (c80 < 1.5 *. Smg.asymptotic_rcbr_capacity c)

let test_shared_loss_exposed () =
  let c = config () in
  let loss = Smg.shared_loss c ~n:5 ~capacity_per_stream:(Trace.mean_rate trace) in
  Alcotest.(check bool) "fraction" true (loss >= 0. && loss <= 1.)

(* --- Mbac pieces --- *)

let test_shifted_pieces_cover_duration () =
  let pieces = Mbac.shifted_pieces schedule ~shift:1234 in
  let total = Array.fold_left (fun acc (d, _) -> acc +. d) 0. pieces in
  check_close 1e-6 "durations cover the schedule" (Schedule.duration schedule) total;
  Array.iter
    (fun (d, r) ->
      if d <= 0. then Alcotest.fail "nonpositive duration";
      if r < 0. then Alcotest.fail "negative rate")
    pieces

let test_shifted_pieces_zero_shift () =
  let pieces = Mbac.shifted_pieces schedule ~shift:0 in
  let segs = Schedule.segments schedule in
  check_close 1e-12 "first rate" segs.(0).Schedule.rate (snd pieces.(0))

let test_shifted_pieces_rate_match () =
  (* The rate at elapsed time u must equal the shifted schedule's rate. *)
  let shift = 777 in
  let pieces = Mbac.shifted_pieces schedule ~shift in
  let fps = Schedule.fps schedule in
  let n = Schedule.n_slots schedule in
  (* Walk pieces and compare at piece starts. *)
  let elapsed = ref 0. in
  Array.iter
    (fun (d, r) ->
      let slot = int_of_float (Float.round (!elapsed *. fps)) in
      if slot < n then begin
        let expected = Schedule.rate_at schedule ((slot + shift) mod n) in
        check_close 1e-9 "piece rate matches shifted schedule" expected r
      end;
      elapsed := !elapsed +. d)
    pieces

(* --- Mbac simulation --- *)

let mbac_config ?(capacity = 16. *. Trace.mean_rate trace) ?(load = 1.0) seed =
  let arrival_rate =
    load *. capacity /. (Trace.mean_rate trace *. Schedule.duration schedule)
  in
  Mbac.default_config ~schedule ~capacity ~arrival_rate ~target:1e-3 ~seed

let test_mbac_deterministic () =
  let run () =
    Mbac.run (mbac_config 5)
      ~controller:(Controller.memoryless ~capacity:(16. *. Trace.mean_rate trace) ~target:1e-3)
  in
  let a = run () and b = run () in
  check_close 1e-12 "same failure" a.Mbac.failure_probability b.Mbac.failure_probability;
  check_close 1e-12 "same utilization" a.Mbac.utilization b.Mbac.utilization;
  Alcotest.(check int) "same windows" a.Mbac.windows b.Mbac.windows

let test_mbac_offered_load () =
  (* offered_load = arrival_rate * duration * schedule_mean / capacity *)
  let capacity = 16. *. Trace.mean_rate trace in
  let arrival_rate =
    2. *. capacity /. (Schedule.mean_rate schedule *. Schedule.duration schedule)
  in
  let c =
    Mbac.default_config ~schedule ~capacity ~arrival_rate ~target:1e-3 ~seed:3
  in
  check_close 1e-9 "normalized load" 2. (Mbac.offered_load c)

let test_mbac_always_admit_overloads () =
  let capacity = 8. *. Trace.mean_rate trace in
  let always =
    Mbac.run (mbac_config ~capacity ~load:2.0 9) ~controller:(Controller.always_admit ())
  in
  let perfect =
    Mbac.run (mbac_config ~capacity ~load:2.0 9)
      ~controller:
        (Controller.perfect ~descriptor:(Descriptor.of_schedule schedule)
           ~capacity ~target:1e-3)
  in
  Alcotest.(check bool) "uncontrolled loses more" true
    (always.Mbac.failure_probability >= perfect.Mbac.failure_probability);
  Alcotest.(check bool) "no blocking without control" true
    (Float.equal always.Mbac.call_blocking 0.);
  Alcotest.(check bool) "perfect blocks under overload" true
    (perfect.Mbac.call_blocking > 0.)

let test_mbac_perfect_meets_target () =
  let capacity = 16. *. Trace.mean_rate trace in
  let m =
    Mbac.run (mbac_config ~capacity ~load:1.2 13)
      ~controller:
        (Controller.perfect ~descriptor:(Descriptor.of_schedule schedule)
           ~capacity ~target:1e-3)
  in
  Alcotest.(check bool) "failure within an order of target" true
    (m.Mbac.failure_probability <= 1e-2);
  Alcotest.(check bool) "utilization sane" true
    (m.Mbac.utilization >= 0. && m.Mbac.utilization <= 1.)

let test_mbac_metrics_ranges () =
  let m =
    Mbac.run (mbac_config 21)
      ~controller:(Controller.memoryless ~capacity:(16. *. Trace.mean_rate trace) ~target:1e-3)
  in
  Alcotest.(check bool) "failure in [0,1]" true
    (m.Mbac.failure_probability >= 0. && m.Mbac.failure_probability <= 1.);
  Alcotest.(check bool) "utilization in [0,1]" true
    (m.Mbac.utilization >= 0. && m.Mbac.utilization <= 1.);
  Alcotest.(check bool) "blocking in [0,1]" true
    (m.Mbac.call_blocking >= 0. && m.Mbac.call_blocking <= 1.);
  Alcotest.(check bool) "denials in [0,1]" true
    (m.Mbac.denial_fraction >= 0. && m.Mbac.denial_fraction <= 1.);
  Alcotest.(check bool) "windows at least min" true (m.Mbac.windows >= 10);
  Alcotest.(check bool) "calls nonnegative" true (m.Mbac.mean_calls_in_system >= 0.)

let test_mbac_utilization_grows_with_load () =
  let capacity = 16. *. Trace.mean_rate trace in
  let util load =
    (Mbac.run (mbac_config ~capacity ~load 31)
       ~controller:(Controller.always_admit ()))
      .Mbac.utilization
  in
  Alcotest.(check bool) "heavier load, higher utilization" true
    (util 1.5 > util 0.3)

(* --- Pool determinism: every sweep is bit-identical for any -j ------ *)

module Pool = Rcbr_util.Pool

let with_jobs jobs f =
  if jobs <= 1 then f None else Pool.with_pool ~jobs (fun p -> f (Some p))

let test_smg_jobs_invariant () =
  let c = config () in
  let sweep pool =
    ( Smg.min_capacity_rcbr ?pool c ~n:8,
      Smg.min_capacity_shared ?pool c ~n:8,
      Smg.rcbr_loss ?pool c ~n:8
        ~capacity_per_stream:(1.2 *. Trace.mean_rate trace),
      Smg.min_capacities_rcbr ?pool c ~ns:[ 1; 4; 8 ] )
  in
  let seq = with_jobs 1 sweep and par = with_jobs 4 sweep in
  (* Bit-identical, not approximately equal: the pool only reorders
     execution, never the pre-split rng streams or the reduction. *)
  Alcotest.(check bool) "rcbr/shared/loss/batch identical" true (seq = par)

let test_smg_batch_matches_pointwise () =
  let c = config () in
  let ns = [ 1; 4; 8 ] in
  with_jobs 4 @@ fun pool ->
  Alcotest.(check bool) "batched = pointwise" true
    (Smg.min_capacities_rcbr ?pool c ~ns
     = List.map (fun n -> Smg.min_capacity_rcbr ?pool c ~n) ns)

let test_mbac_run_many_jobs_invariant () =
  let capacity = 16. *. Trace.mean_rate trace in
  let entries () =
    Array.of_list
      (List.concat_map
         (fun load ->
           [
             ( mbac_config ~capacity ~load 17,
               fun () -> Controller.memoryless ~capacity ~target:1e-3 );
             ( mbac_config ~capacity ~load 17,
               fun () -> Controller.memory ~capacity ~target:1e-3 );
           ])
         [ 0.8; 1.4 ])
  in
  let seq = with_jobs 1 (fun pool -> Mbac.run_many ?pool (entries ())) in
  let par = with_jobs 4 (fun pool -> Mbac.run_many ?pool (entries ())) in
  Alcotest.(check bool) "grid identical across -j" true (seq = par);
  (* And run_many at -j 1 is exactly the sequential Mbac.run loop. *)
  let direct =
    Array.map (fun (c, make) -> Mbac.run c ~controller:(make ())) (entries ())
  in
  Alcotest.(check bool) "run_many = run" true (seq = direct)

let test_multihop_run_many_jobs_invariant () =
  let base hops =
    {
      Rcbr_sim.Multihop.schedule;
      hops;
      capacity_per_hop = 10. *. Trace.mean_rate trace;
      transit_calls = 3;
      local_calls_per_hop = 4;
      horizon = 2. *. Schedule.duration schedule;
      seed = 5;
    }
  in
  let configs = List.map base [ 1; 2; 4 ] in
  let seq = with_jobs 1 (fun pool -> Rcbr_sim.Multihop.run_many ?pool configs) in
  let par = with_jobs 4 (fun pool -> Rcbr_sim.Multihop.run_many ?pool configs) in
  Alcotest.(check bool) "hop sweep identical across -j" true (seq = par);
  Alcotest.(check bool) "run_many = run" true
    (seq = List.map Rcbr_sim.Multihop.run configs)

let test_megacall_jobs_invariant () =
  (* The million-call engine at test scale: every shard, counter and
     the outcome hash must be bit-identical at -j1 and -j4, and the
     population must reach the ramp target with conservation intact. *)
  let module Megacall = Rcbr_sim.Megacall in
  let cfg =
    {
      (Megacall.default ~concurrent:2048 ()) with
      Megacall.shards = 4;
      calls_per_shard = 512;
    }
  in
  let seq = with_jobs 1 (fun pool -> Megacall.run ?pool cfg) in
  let par = with_jobs 4 (fun pool -> Megacall.run ?pool cfg) in
  Alcotest.(check bool) "metrics identical across -j" true (seq = par);
  Alcotest.(check int) "outcome hash identical" seq.Megacall.outcome_hash
    par.Megacall.outcome_hash;
  Alcotest.(check int) "no audit violations" 0 seq.Megacall.audit_violations;
  Alcotest.(check bool) "ramp reached the target" true
    (seq.Megacall.peak_concurrent
    >= cfg.Megacall.shards * cfg.Megacall.calls_per_shard * 4 / 5);
  Alcotest.(check int) "shard count" cfg.Megacall.shards
    (Array.length seq.Megacall.shards_);
  (* Same config, different seed: the outcome must move (the hash
     actually covers the simulation, not just the shape). *)
  let other =
    with_jobs 1 (fun pool ->
        Megacall.run ?pool { cfg with Megacall.seed = cfg.Megacall.seed + 1 })
  in
  Alcotest.(check bool) "seed reaches the hash" true
    (other.Megacall.outcome_hash <> seq.Megacall.outcome_hash)

let () =
  Alcotest.run "rcbr_sim"
    [
      ( "smg",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "cbr bounds" `Quick test_cbr_independent_of_n;
          Alcotest.test_case "shared = cbr at n=1" `Quick test_shared_equals_cbr_at_n1;
          Alcotest.test_case "shared SMG grows" `Quick test_shared_gain_grows_with_n;
          Alcotest.test_case "rcbr SMG grows" `Quick test_rcbr_gain_grows_with_n;
          Alcotest.test_case "ordering" `Quick test_rcbr_between_shared_and_cbr;
          Alcotest.test_case "rcbr loss monotone" `Quick test_rcbr_loss_monotone;
          Alcotest.test_case "asymptote" `Quick test_rcbr_asymptote;
          Alcotest.test_case "shared loss" `Quick test_shared_loss_exposed;
        ] );
      ( "pieces",
        [
          Alcotest.test_case "cover duration" `Quick test_shifted_pieces_cover_duration;
          Alcotest.test_case "zero shift" `Quick test_shifted_pieces_zero_shift;
          Alcotest.test_case "rates match" `Quick test_shifted_pieces_rate_match;
        ] );
      ( "mbac",
        [
          Alcotest.test_case "deterministic" `Quick test_mbac_deterministic;
          Alcotest.test_case "offered load" `Quick test_mbac_offered_load;
          Alcotest.test_case "uncontrolled overload" `Quick
            test_mbac_always_admit_overloads;
          Alcotest.test_case "perfect meets target" `Quick
            test_mbac_perfect_meets_target;
          Alcotest.test_case "metric ranges" `Quick test_mbac_metrics_ranges;
          Alcotest.test_case "utilization vs load" `Quick
            test_mbac_utilization_grows_with_load;
        ] );
      ( "pool determinism",
        [
          Alcotest.test_case "smg jobs-invariant" `Quick test_smg_jobs_invariant;
          Alcotest.test_case "smg batch = pointwise" `Quick
            test_smg_batch_matches_pointwise;
          Alcotest.test_case "mbac grid jobs-invariant" `Quick
            test_mbac_run_many_jobs_invariant;
          Alcotest.test_case "multihop sweep jobs-invariant" `Quick
            test_multihop_run_many_jobs_invariant;
          Alcotest.test_case "megacall jobs-invariant" `Quick
            test_megacall_jobs_invariant;
        ] );
    ]
