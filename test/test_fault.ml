(* Fault-injection layer: plans, injectors, the conservation invariant,
   the retransmitting NIU, and the faulty call-level simulators.

   The two load-bearing guarantees tested here:
   - under the null fault plan every faulty code path is bit-identical
     to the historical fault-free behaviour, and
   - under real faults (lossy RM cells, crashes) reserved bandwidth is
     conserved at every port and retransmissions stay bounded. *)

module Plan = Rcbr_fault.Plan
module Injector = Rcbr_fault.Injector
module Invariant = Rcbr_fault.Invariant
module Rm_cell = Rcbr_signal.Rm_cell
module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path
module Niu = Rcbr_signal.Niu
module Online = Rcbr_core.Online
module Schedule = Rcbr_core.Schedule
module Trace = Rcbr_traffic.Trace
module Multihop = Rcbr_sim.Multihop
module Mbac = Rcbr_sim.Mbac
module Controller = Rcbr_admission.Controller
module Session = Rcbr_net.Session

let check_close eps = Alcotest.(check (float eps))
let trace = Rcbr_traffic.Synthetic.star_wars ~frames:6_000 ~seed:42 ()

(* --- Plan and injector --- *)

let test_plan_null () =
  let p = Plan.null ~hops:4 in
  Alcotest.(check bool) "null is null" true (Plan.is_null p);
  Alcotest.(check bool) "lossy is not" false
    (Plan.is_null (Plan.uniform ~drop:0.1 ~hops:4 ~seed:1 ()));
  Alcotest.(check bool) "crash is not" false
    (Plan.is_null
       (Plan.uniform ~crashes:[ { Plan.hop = 0; at_slot = 1; recover_slot = 2 } ]
          ~hops:4 ~seed:1 ()));
  Plan.validate p

let test_plan_validate_rejects () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "probability > 1" true
    (bad (fun () -> Plan.validate (Plan.uniform ~drop:1.5 ~hops:1 ~seed:0 ())));
  Alcotest.(check bool) "sum > 1" true
    (bad (fun () ->
         Plan.validate
           (Plan.uniform ~drop:0.6 ~duplicate:0.6 ~hops:1 ~seed:0 ())));
  Alcotest.(check bool) "empty crash window" true
    (bad (fun () ->
         Plan.validate
           (Plan.uniform
              ~crashes:[ { Plan.hop = 0; at_slot = 5; recover_slot = 5 } ]
              ~hops:1 ~seed:0 ())));
  Alcotest.(check bool) "crash beyond path" true
    (bad (fun () ->
         Plan.validate
           (Plan.uniform
              ~crashes:[ { Plan.hop = 3; at_slot = 0; recover_slot = 1 } ]
              ~hops:2 ~seed:0 ())))

let test_injector_null_delivers () =
  let inj = Injector.create (Plan.null ~hops:3) in
  for _ = 1 to 200 do
    for hop = 0 to 2 do
      Alcotest.(check bool) "deliver" true (Injector.fate inj ~hop = Deliver)
    done
  done;
  let t = Injector.totals inj in
  Alcotest.(check int) "sent" 600 t.Injector.sent;
  Alcotest.(check int) "dropped" 0 t.Injector.dropped;
  Alcotest.(check int) "duplicated" 0 t.Injector.duplicated;
  Alcotest.(check int) "delayed" 0 t.Injector.delayed;
  Alcotest.(check int) "jitter 0 free" 0 (Injector.jitter inj 0)

let test_injector_deterministic () =
  let plan =
    Plan.uniform ~drop:0.2 ~duplicate:0.1 ~reorder:0.1 ~delay:0.1 ~hops:2
      ~seed:99 ()
  in
  let a = Injector.create plan and b = Injector.create plan in
  for _ = 1 to 500 do
    for hop = 0 to 1 do
      Alcotest.(check bool) "same fate stream" true
        (Injector.fate a ~hop = Injector.fate b ~hop)
    done
  done;
  let ta = Injector.totals a and tb = Injector.totals b in
  Alcotest.(check int) "same drops" ta.Injector.dropped tb.Injector.dropped;
  Alcotest.(check bool) "faults actually injected" true
    (ta.Injector.dropped > 0 && ta.Injector.duplicated > 0)

let test_injector_crash_window () =
  let plan =
    Plan.uniform ~crashes:[ { Plan.hop = 1; at_slot = 10; recover_slot = 20 } ]
      ~hops:3 ~seed:0 ()
  in
  let inj = Injector.create plan in
  Alcotest.(check bool) "up before" false (Injector.down inj ~hop:1 ~slot:9);
  Alcotest.(check bool) "down at start" true (Injector.down inj ~hop:1 ~slot:10);
  Alcotest.(check bool) "down inside" true (Injector.down inj ~hop:1 ~slot:19);
  Alcotest.(check bool) "up at recovery" false (Injector.down inj ~hop:1 ~slot:20);
  Alcotest.(check bool) "other hop unaffected" false
    (Injector.down inj ~hop:0 ~slot:15)

(* --- Invariant checker --- *)

let test_invariant_flags_breakage () =
  let ok =
    { Invariant.index = 0; capacity = 100.; reserved = 60.;
      vci_rates = Some [ (1, 25.); (2, 35.) ] }
  in
  Alcotest.(check int) "consistent port passes" 0
    (List.length (Invariant.check [| ok |]));
  let views =
    [|
      { ok with Invariant.reserved = -1.; vci_rates = None };
      { ok with Invariant.index = 1; reserved = 150.; vci_rates = None };
      { ok with Invariant.index = 2; vci_rates = Some [ (1, 60.) ] };
      { ok with Invariant.index = 3; vci_rates = Some [ (1, 60.); (2, -1.) ] };
    |]
  in
  Alcotest.(check bool) "negative, overflow, mismatch, negative vci" true
    (List.length (Invariant.check views) >= 4);
  (* Settle-style bookkeeping may legally exceed capacity. *)
  Alcotest.(check int) "capacity check can be waived" 0
    (List.length
       (Invariant.check ~check_capacity:false
          [| { ok with Invariant.reserved = 150.; vci_rates = Some [ (1, 150.) ] } |]))

(* --- Idempotent port requests --- *)

let test_port_request_idempotent () =
  let p = Port.create ~capacity:100. () in
  let cell = Rm_cell.delta ~vci:1 40. in
  Alcotest.(check bool) "granted" true
    (Port.process_request p ~req_id:1 cell = `Granted);
  (* A retransmission (or duplicated cell) of the same request must not
     double-apply. *)
  Alcotest.(check bool) "duplicate acked" true
    (Port.process_request p ~req_id:1 cell = `Granted);
  check_close 1e-12 "applied once" 40. (Port.reserved p);
  (* A fresh request applies again. *)
  ignore (Port.process_request p ~req_id:2 cell);
  check_close 1e-12 "applied twice" 80. (Port.reserved p)

let test_port_rollback_idempotent () =
  let p = Port.create ~capacity:100. () in
  let cell = Rm_cell.delta ~vci:1 40. in
  ignore (Port.process_request p ~req_id:1 cell);
  let reverse = Rm_cell.delta ~vci:1 (-40.) in
  Port.rollback_request p ~req_id:1 reverse;
  check_close 1e-12 "rolled back" 0. (Port.reserved p);
  (* A duplicated rollback cell is harmless. *)
  Port.rollback_request p ~req_id:1 reverse;
  check_close 1e-12 "rolled back once" 0. (Port.reserved p);
  (* And the same request id can then be evaluated afresh (it is no
     longer applied). *)
  Alcotest.(check bool) "re-evaluated" true
    (Port.process_request p ~req_id:1 cell = `Granted);
  check_close 1e-12 "reapplied" 40. (Port.reserved p)

let test_port_crash_recover () =
  let p = Port.create ~capacity:100. () in
  ignore (Port.process p (Rm_cell.delta ~vci:1 40.));
  ignore (Port.process p (Rm_cell.delta ~vci:2 30.));
  Port.crash p;
  Alcotest.(check bool) "down" false (Port.is_up p);
  check_close 1e-12 "reservations lost" 0. (Port.reserved p);
  check_close 1e-12 "vci state lost" 0. (Port.vci_rate p 1);
  Alcotest.(check bool) "denies while down" true
    (Port.process p (Rm_cell.delta ~vci:3 1.) = `Denied);
  Port.recover p;
  Alcotest.(check bool) "up" true (Port.is_up p);
  check_close 1e-12 "recovers empty" 0. (Port.reserved p);
  (* A resync re-admits the connection from scratch. *)
  ignore (Port.process p (Rm_cell.resync ~vci:1 40.));
  check_close 1e-12 "rebuilt" 40. (Port.reserved p)

(* --- NIU over the faulty plane --- *)

let niu_ports ?(capacity = 10e6) hops =
  List.init hops (fun _ -> Port.create ~capacity ())

let test_niu_null_plan_bit_identical () =
  (* The acceptance bar for the whole layer: running the retransmitting
     state machine under the plan where nothing goes wrong reproduces
     the idealized signalling run exactly. *)
  let run faults =
    let path =
      Path.create_exn (niu_ports 3) ~vci:1 ~initial_rate:400_000.
    in
    Niu.stream { Niu.default_params with Niu.faults } ~path trace
  in
  let legacy = run None in
  let null = run (Some (Niu.default_faults (Plan.null ~hops:3))) in
  Alcotest.(check int) "attempts" legacy.Niu.attempts null.Niu.attempts;
  Alcotest.(check int) "failures" legacy.Niu.failures null.Niu.failures;
  check_close 1e-12 "bits lost" legacy.Niu.bits_lost null.Niu.bits_lost;
  check_close 1e-12 "max backlog" legacy.Niu.max_backlog null.Niu.max_backlog;
  check_close 1e-12 "mean reserved" legacy.Niu.mean_reserved
    null.Niu.mean_reserved;
  let ra = Schedule.to_rates legacy.Niu.schedule
  and rb = Schedule.to_rates null.Niu.schedule in
  Alcotest.(check int) "schedule length" (Array.length ra) (Array.length rb);
  Array.iteri (fun i r -> check_close 1e-12 "slot rate" r rb.(i)) ra;
  match null.Niu.faults with
  | None -> Alcotest.fail "fault report expected"
  | Some f ->
      Alcotest.(check int) "no retransmits" 0 f.Niu.retransmits;
      Alcotest.(check int) "no give-ups" 0 f.Niu.give_ups;
      Alcotest.(check int) "no violations" 0 f.Niu.invariant_violations;
      check_close 1e-12 "no drift" 0. f.Niu.final_drift;
      Alcotest.(check int) "nothing dropped" 0 f.Niu.cells.Injector.dropped

let test_niu_lossy_three_hop () =
  (* The headline robustness scenario: 10% RM-cell drop on every link of
     a 3-hop path.  The stream must complete with conserved reservations,
     bounded retransmissions and a clean teardown. *)
  let ports = niu_ports 3 in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:400_000. in
  let plan = Plan.uniform ~drop:0.1 ~hops:3 ~seed:11 () in
  let faults = Niu.default_faults plan in
  let r =
    Niu.stream { Niu.default_params with Niu.faults = Some faults } ~path trace
  in
  Alcotest.(check bool) "renegotiated" true (r.Niu.attempts > 0);
  (match r.Niu.faults with
  | None -> Alcotest.fail "fault report expected"
  | Some f ->
      Alcotest.(check bool) "cells were dropped" true
        (f.Niu.cells.Injector.dropped > 0);
      Alcotest.(check bool) "losses were retransmitted" true
        (f.Niu.retransmits > 0);
      Alcotest.(check bool) "retransmits bounded" true
        (f.Niu.worst_retransmits <= faults.Niu.max_retransmits);
      Alcotest.(check int) "reservation conservation" 0
        f.Niu.invariant_violations;
      Alcotest.(check bool) "degradation accounted" true
        (f.Niu.degraded_slots >= 0 && f.Niu.bits_scaled >= 0.));
  (* The path still agrees with the network about its own rate closely
     enough for an exact teardown. *)
  Path.teardown path;
  List.iter
    (fun p -> check_close 1e-6 "clean teardown" 0. (Port.reserved p))
    ports

let test_niu_crash_recovery_resync () =
  let ports = niu_ports 2 in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:400_000. in
  let plan =
    Plan.uniform
      ~crashes:[ { Plan.hop = 1; at_slot = 1_000; recover_slot = 1_200 } ]
      ~hops:2 ~seed:3 ()
  in
  let r =
    Niu.stream
      { Niu.default_params with Niu.faults = Some (Niu.default_faults plan) }
      ~path trace
  in
  (match r.Niu.faults with
  | None -> Alcotest.fail "fault report expected"
  | Some f ->
      Alcotest.(check int) "one crash" 1 f.Niu.crashes;
      Alcotest.(check int) "one recovery" 1 f.Niu.recoveries;
      Alcotest.(check bool) "resyncs repaired the recovered port" true
        (f.Niu.resyncs > 0);
      Alcotest.(check int) "conservation after crash" 0
        f.Niu.invariant_violations;
      (* The periodic resync rebuilt the recovered port's belief. *)
      check_close 1e-6 "drift repaired" 0. f.Niu.final_drift);
  Path.teardown path;
  List.iter
    (fun p -> check_close 1e-6 "clean teardown" 0. (Port.reserved p))
    ports

let test_niu_degradation_policies () =
  (* A contended bottleneck: Settle and Scale must mark degraded slots;
     Scale additionally sheds source bits while starved. *)
  let run degrade =
    let bottleneck = Port.create ~capacity:1_000_000. () in
    let cross = Path.create_exn [ bottleneck ] ~vci:2 ~initial_rate:450_000. in
    let path = Path.create_exn [ bottleneck ] ~vci:1 ~initial_rate:300_000. in
    let faults =
      { (Niu.default_faults (Plan.null ~hops:1)) with Niu.degrade }
    in
    let r =
      Niu.stream { Niu.default_params with Niu.faults = Some faults } ~path
        trace
    in
    Path.teardown path;
    Path.teardown cross;
    match r.Niu.faults with
    | Some f -> (r, f)
    | None -> Alcotest.fail "fault report expected"
  in
  let _, ride = run Niu.Ride_out in
  let settle_r, settle = run Niu.Settle in
  let scale_r, scale = run (Niu.Scale 0.5) in
  Alcotest.(check bool) "contention degrades" true
    (settle.Niu.degraded_slots > 0);
  check_close 1e-9 "ride_out sheds nothing" 0. ride.Niu.bits_scaled;
  check_close 1e-9 "settle sheds nothing" 0. settle.Niu.bits_scaled;
  Alcotest.(check bool) "scale sheds while starved" true
    (scale.Niu.bits_scaled > 0.);
  Alcotest.(check bool) "shedding cannot increase buffer loss" true
    (scale_r.Niu.bits_lost <= settle_r.Niu.bits_lost +. 1e-6)

(* --- Online ?buffer vs the uncontended NIU (unified semantics) --- *)

let test_online_buffer_matches_niu () =
  let o = Online.default_params in
  let tau = Trace.slot_duration trace in
  let first = Trace.frame trace 0 /. tau in
  let g = o.Online.granularity in
  let initial =
    if first <= 0. then g else g *. Float.ceil (first /. g)
  in
  let buffer = 300_000. in
  let path =
    Path.create_exn [ Port.create ~capacity:1e9 () ] ~vci:1
      ~initial_rate:initial
  in
  let niu =
    Niu.stream
      { Niu.default_params with Niu.buffer; delay_slots = 0 }
      ~path trace
  in
  let online =
    Online.run_custom ~buffer o
      ~predictor:(fun ~initial ->
        Rcbr_core.Predictor.ar1 ~eta:o.Online.ar_coefficient ~initial)
      trace
  in
  (* With unbounded capacity nothing is ever denied, so the NIU is the
     Online heuristic plus a buffer cap — which run_custom now shares. *)
  Alcotest.(check int) "no denials" 0 niu.Niu.failures;
  check_close 1e-9 "same loss" online.Online.bits_lost niu.Niu.bits_lost;
  check_close 1e-9 "same peak backlog" online.Online.max_backlog
    niu.Niu.max_backlog;
  let ra = Schedule.to_rates online.Online.schedule
  and rb = Schedule.to_rates niu.Niu.schedule in
  Array.iteri (fun i r -> check_close 1e-9 "same schedule" r rb.(i)) ra;
  Path.teardown path

let test_online_unbounded_loses_nothing () =
  let r = Online.run Online.default_params trace in
  check_close 1e-12 "no cap, no loss" 0. r.Online.bits_lost

(* --- Faulty call-level simulators --- *)

let multihop_config hops =
  {
    Multihop.schedule =
      Rcbr_core.Optimal.solve
        (Rcbr_core.Optimal.default_params ~cost_ratio:3e5 trace)
        trace;
    hops;
    capacity_per_hop = 8. *. Trace.mean_rate trace;
    transit_calls = 3;
    local_calls_per_hop = 4;
    horizon = 600.;
    seed = 5;
  }

let test_multihop_null_faults_identical () =
  let bc = { Multihop.base = multihop_config 3; routes = 2; balance = true } in
  let a = Multihop.run_balanced bc in
  let m, f = Multihop.run_faulty bc Session.no_faults in
  Alcotest.(check int) "attempts" a.Multihop.transit_attempts
    m.Multihop.transit_attempts;
  Alcotest.(check int) "denials" a.Multihop.transit_denials
    m.Multihop.transit_denials;
  Alcotest.(check int) "local denials" a.Multihop.local_denials
    m.Multihop.local_denials;
  check_close 1e-12 "utilization" a.Multihop.mean_hop_utilization
    m.Multihop.mean_hop_utilization;
  Alcotest.(check int) "nothing lost" 0 f.Multihop.rm_lost;
  Alcotest.(check int) "nothing retransmitted" 0 f.Multihop.retransmits

let test_multihop_lossy_signalling () =
  let bc = { Multihop.base = multihop_config 3; routes = 1; balance = false } in
  let fc =
    {
      Session.no_faults with
      Session.rm_drop = 0.2;
      fault_seed = 9;
      check_invariants = true;
    }
  in
  let _, f = Multihop.run_faulty bc fc in
  Alcotest.(check bool) "cells lost" true (f.Multihop.rm_lost > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (f.Multihop.retransmits > 0);
  Alcotest.(check int) "demand stays conserved" 0
    f.Multihop.invariant_failures

let test_multihop_crash_denies () =
  let bc = { Multihop.base = multihop_config 3; routes = 1; balance = false } in
  let fc =
    { Session.no_faults with Session.crashes = [ (1, 50., 300.) ] }
  in
  let m, f = Multihop.run_faulty bc fc in
  Alcotest.(check bool) "blackout denies increases" true
    (f.Multihop.crash_denials > 0);
  Alcotest.(check bool) "denials include crash denials" true
    (m.Multihop.transit_denials + m.Multihop.local_denials
    >= f.Multihop.crash_denials)

let mbac_config () =
  let schedule =
    Schedule.create ~fps:24. ~n_slots:480
      [
        { Schedule.start_slot = 0; rate = 300_000. };
        { Schedule.start_slot = 120; rate = 600_000. };
        { Schedule.start_slot = 240; rate = 200_000. };
        { Schedule.start_slot = 360; rate = 400_000. };
      ]
  in
  let capacity = 2e6 in
  let arrival_rate =
    capacity /. (Schedule.mean_rate schedule *. Schedule.duration schedule)
  in
  {
    (Mbac.default_config ~schedule ~capacity ~arrival_rate ~target:1e-3
       ~seed:77)
    with
    Mbac.min_windows = 5;
    max_windows = 30;
  }

let test_mbac_null_faults_identical () =
  let cfg = mbac_config () in
  let run faults =
    Mbac.run { cfg with Mbac.faults } ~controller:(Controller.always_admit ())
  in
  let a = run None in
  let b =
    run
      (Some { Session.no_faults with Session.fault_seed = 1 })
  in
  check_close 1e-12 "failure probability" a.Mbac.failure_probability
    b.Mbac.failure_probability;
  check_close 1e-12 "utilization" a.Mbac.utilization b.Mbac.utilization;
  check_close 1e-12 "denial fraction" a.Mbac.denial_fraction
    b.Mbac.denial_fraction;
  Alcotest.(check int) "windows" a.Mbac.windows b.Mbac.windows;
  Alcotest.(check int) "nothing dropped" 0 b.Mbac.signalling_dropped

let test_mbac_lossy_signalling () =
  let cfg = mbac_config () in
  let m =
    Mbac.run
      {
        cfg with
        Mbac.faults =
          Some
            {
              Session.no_faults with
              Session.rm_drop = 0.3;
              retx_timeout = 0.1;
              max_retransmits = 3;
              fault_seed = 13;
            };
      }
      ~controller:(Controller.always_admit ())
  in
  Alcotest.(check bool) "cells dropped" true (m.Mbac.signalling_dropped > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (m.Mbac.signalling_retransmits > 0);
  Alcotest.(check bool) "failure probability still a fraction" true
    (m.Mbac.failure_probability >= 0. && m.Mbac.failure_probability <= 1.)

let () =
  Alcotest.run "rcbr_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "null plan" `Quick test_plan_null;
          Alcotest.test_case "validation" `Quick test_plan_validate_rejects;
        ] );
      ( "injector",
        [
          Alcotest.test_case "null delivers" `Quick test_injector_null_delivers;
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "crash window" `Quick test_injector_crash_window;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "flags breakage" `Quick
            test_invariant_flags_breakage;
        ] );
      ( "port",
        [
          Alcotest.test_case "idempotent requests" `Quick
            test_port_request_idempotent;
          Alcotest.test_case "idempotent rollback" `Quick
            test_port_rollback_idempotent;
          Alcotest.test_case "crash/recover" `Quick test_port_crash_recover;
        ] );
      ( "niu",
        [
          Alcotest.test_case "null plan bit-identical" `Quick
            test_niu_null_plan_bit_identical;
          Alcotest.test_case "lossy three-hop" `Quick test_niu_lossy_three_hop;
          Alcotest.test_case "crash/recovery/resync" `Quick
            test_niu_crash_recovery_resync;
          Alcotest.test_case "degradation policies" `Quick
            test_niu_degradation_policies;
        ] );
      ( "online-buffer",
        [
          Alcotest.test_case "matches uncontended NIU" `Quick
            test_online_buffer_matches_niu;
          Alcotest.test_case "unbounded loses nothing" `Quick
            test_online_unbounded_loses_nothing;
        ] );
      ( "multihop",
        [
          Alcotest.test_case "null faults identical" `Quick
            test_multihop_null_faults_identical;
          Alcotest.test_case "lossy signalling" `Quick
            test_multihop_lossy_signalling;
          Alcotest.test_case "crash blackout" `Quick test_multihop_crash_denies;
        ] );
      ( "mbac",
        [
          Alcotest.test_case "null faults identical" `Quick
            test_mbac_null_faults_identical;
          Alcotest.test_case "lossy signalling" `Quick
            test_mbac_lossy_signalling;
        ] );
    ]
