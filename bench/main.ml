(* Reproduction harness: one experiment per table/figure of the paper.

   Usage:
     dune exec bench/main.exe                 -- run everything (reduced size)
     dune exec bench/main.exe -- fig2 fig6    -- run selected experiments
     dune exec bench/main.exe -- all --full   -- full two-hour trace
     dune exec bench/main.exe -- -j 4         -- sweep points on 4 domains
     dune exec bench/main.exe -- --smoke --json  -- CI-sized run + BENCH files

   The experiment list is the [experiments] table at the bottom of this
   file; --help (and any unknown name) prints it, so it never goes
   stale here.

   Flags:
     -j N / --jobs N   run independent sweep points on a pool of N domains
                       (default: Pool.default_jobs; 1 = sequential path).
                       Sweeps compute all points first and print afterwards,
                       so the rows are byte-identical for every N.
     --json[=DIR]      write one BENCH_<experiment>.json per experiment
                       (wall-clock, jobs, seed, per-experiment counters)
                       into DIR (default: the current directory).
     --smoke           CI-sized run: 3 000-frame trace, fewer sweep points,
                       and a reduced default experiment set.

   Absolute numbers differ from the paper (synthetic trace, software
   substrate); each experiment prints the paper's reported values next
   to ours so the *shape* — who wins, by what factor, where crossovers
   fall — can be compared directly. *)

module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Sigma_rho = Rcbr_queue.Sigma_rho
module Fluid = Rcbr_queue.Fluid
module Schedule = Rcbr_core.Schedule
module Optimal = Rcbr_core.Optimal
module Beam = Rcbr_core.Beam
module Online = Rcbr_core.Online
module Predictor = Rcbr_core.Predictor
module Rate_grid = Rcbr_core.Rate_grid
module Eb = Rcbr_effbw.Effective_bandwidth
module Chernoff = Rcbr_effbw.Chernoff
module Multiscale = Rcbr_markov.Multiscale
module Modulated = Rcbr_markov.Modulated
module Smg = Rcbr_sim.Smg
module Mbac = Rcbr_sim.Mbac
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor
module Rng = Rcbr_util.Rng
module Pool = Rcbr_util.Pool
module Json = Rcbr_util.Json
module Tables = Rcbr_util.Tables

let pf = Format.printf

let section title =
  pf "@.==========================================================@.";
  pf "  %s@." title;
  pf "==========================================================@."

(* --- shared context ------------------------------------------------ *)

type ctx = {
  frames : int;
  trace : Trace.t;
  mean : float;
  buffer : float;
  schedule : Schedule.t;  (** reference RCBR schedule, ~10 s interval *)
  pool : Pool.t option;  (** [None] with [-j 1]: the sequential path *)
  smoke : bool;  (** CI-sized run: fewer frames and sweep points *)
  extras : (string * Json.t) list ref;
      (** experiment-specific counters for the BENCH file, cleared by the
          driver before each experiment *)
}

let emit ctx key v = ctx.extras := (key, v) :: !(ctx.extras)
let trace_seed = 42

let make_ctx ~full ~smoke ~pool =
  let frames =
    if full then Synthetic.default_frames else if smoke then 3_000 else 20_000
  in
  let trace = Synthetic.star_wars ~frames ~seed:trace_seed () in
  let buffer = 300_000. in
  let params = Optimal.default_params ~buffer ~cost_ratio:3e5 trace in
  let schedule, stats =
    Optimal.solve_with_stats ~frontier_cap:100 params trace
  in
  ( {
      frames;
      trace;
      mean = Trace.mean_rate trace;
      buffer;
      schedule;
      pool;
      smoke;
      extras = ref [];
    },
    stats )

(* --- Table A: headline numbers (Sections I, IV-A, V-B) ------------- *)

let table_a ctx =
  section "Table A -- headline numbers (paper Sections I / IV-A / V-B)";
  pf "%a@." Trace.pp_summary ctx.trace;
  pf "@.paper: trace mean 374 kb/s; max 3-frame burst slightly under 300 kb@.";
  pf "measured: mean %.0f kb/s; 3-frame burst %.0f kb@." (ctx.mean /. 1e3)
    (Trace.window_max_bits ctx.trace 3 /. 1e3);
  let rho300 =
    Sigma_rho.min_rate ~trace:ctx.trace ~buffer:ctx.buffer ~target_loss:1e-6 ()
  in
  pf "@.paper: static CBR with 300 kb buffer and 1e-6 loss needs 4.06x mean@.";
  pf "measured: rho(300 kb) = %.0f kb/s = %.2fx mean@." (rho300 /. 1e3)
    (rho300 /. ctx.mean);
  let b105 =
    Sigma_rho.min_buffer ~trace:ctx.trace ~rate:(1.05 *. ctx.mean)
      ~target_loss:1e-6 ()
  in
  pf "@.paper: serving at 1.05x mean without renegotiation needs ~100 Mb of buffer@.";
  pf "measured: %.1f Mb   (vs RCBR's 300 kb -- a %.0fx reduction)@."
    (b105 /. 1e6) (b105 /. ctx.buffer);
  pf "@.paper: RCBR at ~1.05x mean renegotiates about every 12 s@.";
  pf "measured: reference schedule reserves %.2fx mean, renegotiates every %.1f s@."
    (Schedule.mean_rate ctx.schedule /. ctx.mean)
    (Schedule.mean_renegotiation_interval ctx.schedule);
  let r = Schedule.simulate_buffer ctx.schedule ~trace:ctx.trace ~capacity:ctx.buffer in
  pf "          (bit loss through the 300 kb buffer: %.3g)@."
    (Fluid.loss_fraction r)

(* --- Fig. 2: efficiency vs renegotiation interval ------------------ *)

let fig2 ctx =
  section "Fig. 2 -- bandwidth efficiency vs mean renegotiation interval";
  pf "paper: OPT reaches >99%% efficiency at one renegotiation per ~7 s;@.";
  pf "       the AR(1) heuristic needs ~1/s for ~95%% (B=300 kb).@.@.";
  pf "OPT (sweep of the cost ratio alpha = K/c):@.";
  pf "%12s %10s %14s %12s@." "alpha" "renegs" "interval (s)" "efficiency";
  (* Every cost-ratio point is an independent trellis solve: compute them
     all on the pool, then print in input order. *)
  let opt_rows =
    Pool.map ?pool:ctx.pool
      (fun alpha ->
        let p =
          Optimal.default_params ~buffer:ctx.buffer ~cost_ratio:alpha ctx.trace
        in
        let s, st = Optimal.solve_with_stats ~frontier_cap:100 p ctx.trace in
        (alpha, s, st))
      [ 1e4; 5e4; 2e5; 1e6; 5e6 ]
  in
  List.iter
    (fun (alpha, s, _) ->
      pf "%12.0f %10d %14.2f %11.2f%%@." alpha (Schedule.n_renegotiations s)
        (Schedule.mean_renegotiation_interval s)
        (100. *. Schedule.bandwidth_efficiency s ~trace:ctx.trace))
    opt_rows;
  emit ctx "alpha_sweep"
    (Json.List
       (List.map
          (fun (alpha, _, st) ->
            Json.Obj
              [
                ("alpha", Json.Float alpha);
                ("expanded_nodes", Json.Int st.Optimal.expanded);
                ("max_frontier", Json.Int st.Optimal.max_frontier);
              ])
          opt_rows));
  pf "@.AR(1) heuristic (sweep of the granularity Delta; B_l=10 kb, B_h=150 kb, T=5):@.";
  pf "%12s %10s %14s %12s %14s@." "Delta" "renegs" "interval (s)" "efficiency"
    "backlog (kb)";
  let online_rows =
    Pool.map ?pool:ctx.pool
      (fun delta ->
        let p = { Online.default_params with Online.granularity = delta } in
        (delta, Online.run p ctx.trace))
      [ 25e3; 50e3; 100e3; 200e3; 400e3 ]
  in
  List.iter
    (fun (delta, o) ->
      pf "%9.0f kb %10d %14.2f %11.2f%% %14.1f@." (delta /. 1e3)
        (Schedule.n_renegotiations o.Online.schedule)
        (Schedule.mean_renegotiation_interval o.Online.schedule)
        (100. *. Schedule.bandwidth_efficiency o.Online.schedule ~trace:ctx.trace)
        (o.Online.max_backlog /. 1e3))
    online_rows

(* --- Fig. 5: the (sigma, rho) curve -------------------------------- *)

let fig5 ctx =
  section "Fig. 5 -- (sigma, rho) curve of the trace at 1e-6 bit loss";
  pf "paper: rho(300 kb) = 4.06x mean; the curve stays far above the mean@.";
  pf "       until the buffer reaches ~100 Mb (rho = 1.05x).@.@.";
  pf "%14s %14s %10s@." "buffer (bits)" "rho (kb/s)" "rho/mean";
  let buffers = [| 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8; 2e8 |] in
  Array.iter
    (fun (b, r) -> pf "%14.0f %14.1f %10.3f@." b (r /. 1e3) (r /. ctx.mean))
    (Sigma_rho.curve ~trace:ctx.trace ~buffers ~target_loss:1e-6 ())

(* --- Fig. 6: statistical multiplexing gain ------------------------- *)

let fig6 ctx =
  section "Fig. 6 -- capacity per stream for 1e-6 loss, three scenarios";
  pf "paper: CBR flat at 4.06x mean; RCBR tracks the shared-buffer bound@.";
  pf "       closely and needs < 1/3 of CBR at 20 streams; its asymptote@.";
  pf "       is the inverse bandwidth efficiency.@.@.";
  let cfg =
    {
      Smg.trace = ctx.trace;
      schedule = ctx.schedule;
      buffer = ctx.buffer;
      target_loss = 1e-6;
      replications = 3;
      seed = 7;
    }
  in
  let cbr = Smg.min_capacity_cbr cfg in
  pf "%6s %12s %12s %12s   (x mean rate)@." "n" "CBR" "shared" "RCBR";
  let ns = if ctx.smoke then [ 1; 2; 5; 10; 20 ] else [ 1; 2; 5; 10; 20; 50; 100 ] in
  (* Batched searches: the per-n binary searches (and the replications
     inside each) fan out over the pool; results come back in [ns] order
     with pool-independent values, so the printed rows are byte-identical
     for every -j. *)
  let shared = Smg.min_capacities_shared ?pool:ctx.pool cfg ~ns in
  let rcbr = Smg.min_capacities_rcbr ?pool:ctx.pool cfg ~ns in
  List.iter2
    (fun n (shared, rcbr) ->
      pf "%6d %12.3f %12.3f %12.3f@." n (cbr /. ctx.mean) (shared /. ctx.mean)
        (rcbr /. ctx.mean))
    ns
    (List.combine shared rcbr);
  pf "@.RCBR asymptote (n -> inf): %.3f x mean (= 1/bandwidth-efficiency)@."
    (Smg.asymptotic_rcbr_capacity cfg /. ctx.mean)

(* --- Figs. 7/8: memoryless MBAC ------------------------------------ *)

let mbac_cfg ctx ~capacity ~load ~seed =
  let arrival_rate =
    load *. capacity
    /. (Schedule.mean_rate ctx.schedule *. Schedule.duration ctx.schedule)
  in
  Mbac.default_config ~schedule:ctx.schedule ~capacity ~arrival_rate
    ~target:1e-3 ~seed

let capacities = [ 8.; 16.; 32.; 64. ]
let loads = [ 0.6; 1.0; 1.4; 2.0 ]

(* The load x capacity grid in row-major order, one (config, controller
   factory) entry per point.  Each point is an independent simulation
   keyed by its own seed, so [Mbac.run_many] fans the grid out over the
   pool and the printed rows do not depend on -j. *)
let mbac_grid ctx ~seed make_controller =
  Array.of_list
    (List.concat_map
       (fun load ->
         List.map
           (fun cap_mult ->
             let capacity = cap_mult *. ctx.mean in
             ( mbac_cfg ctx ~capacity ~load ~seed,
               fun () -> make_controller ~capacity ))
           capacities)
       loads)

let print_grid cell =
  List.iteri
    (fun i load ->
      pf "%22.1f" load;
      List.iteri (fun j _ -> cell (i * List.length capacities + j)) capacities;
      pf "@.")
    loads

let fig7 ctx =
  section "Fig. 7 -- memoryless MBAC: renegotiation failure probability";
  pf "paper: 3-4 orders of magnitude above the 1e-3 target for small links,@.";
  pf "       improving with link capacity, worsening with offered load.@.@.";
  pf "%22s" "load \\ capacity";
  List.iter (fun c -> pf " %11.0fx" c) capacities;
  pf "@.";
  let ms =
    Mbac.run_many ?pool:ctx.pool
      (mbac_grid ctx ~seed:17 (fun ~capacity ->
           Controller.memoryless ~capacity ~target:1e-3))
  in
  print_grid (fun k -> pf " %12.2e" ms.(k).Mbac.failure_probability);
  pf "(target: 1.0e-03)@.";
  emit ctx "grid_points" (Json.Int (Array.length ms));
  emit ctx "total_windows"
    (Json.Int (Array.fold_left (fun acc m -> acc + m.Mbac.windows) 0 ms));
  emit ctx "decision_hashes"
    (Json.List
       (Array.to_list
          (Array.map
             (fun m -> Json.Int m.Mbac.admission.Controller.decision_hash)
             ms)))

let fig8 ctx =
  section "Fig. 8 -- memoryless MBAC: utilization normalized to perfect knowledge";
  pf "paper: > 1 (over-admission) for small link capacities.@.@.";
  pf "%22s" "load \\ capacity";
  List.iter (fun c -> pf " %11.0fx" c) capacities;
  pf "@.";
  let descriptor = Descriptor.of_schedule ctx.schedule in
  let perfect_grid =
    mbac_grid ctx ~seed:23 (fun ~capacity ->
        Controller.perfect ~descriptor ~capacity ~target:1e-3)
  in
  let memoryless_grid =
    mbac_grid ctx ~seed:23 (fun ~capacity ->
        Controller.memoryless ~capacity ~target:1e-3)
  in
  (* One batch for both controllers: 2 x |grid| points in flight. *)
  let ms =
    Mbac.run_many ?pool:ctx.pool (Array.append perfect_grid memoryless_grid)
  in
  let n = Array.length perfect_grid in
  print_grid (fun k ->
      pf " %12.3f" (ms.(n + k).Mbac.utilization /. ms.(k).Mbac.utilization))

(* --- Fig. 9/10: the memory-based scheme ----------------------------- *)

let fig9 ctx =
  section "Figs. 9/10 -- memory-based MBAC vs memoryless (load 1.4, target 1e-3)";
  pf "paper: the memory scheme restores robustness, meeting the target at a@.";
  pf "       modest utilization cost where the memoryless scheme misses it.@.@.";
  pf "%12s %16s %16s %14s %14s@." "capacity" "fail(memoryless)" "fail(memory)"
    "util(m-less)" "util(memory)";
  let cap_mults = [ 8.; 16.; 32. ] in
  let entry cap_mult make_controller =
    let capacity = cap_mult *. ctx.mean in
    ( mbac_cfg ctx ~capacity ~load:1.4 ~seed:29,
      fun () -> make_controller ~capacity )
  in
  let entries =
    Array.of_list
      (List.concat_map
         (fun c ->
           [
             entry c (fun ~capacity -> Controller.memoryless ~capacity ~target:1e-3);
             entry c (fun ~capacity -> Controller.memory ~capacity ~target:1e-3);
           ])
         cap_mults)
  in
  let ms = Mbac.run_many ?pool:ctx.pool entries in
  List.iteri
    (fun i cap_mult ->
      let ml = ms.(2 * i) and mem = ms.((2 * i) + 1) in
      pf "%11.0fx %16.2e %16.2e %14.3f %14.3f@." cap_mult
        ml.Mbac.failure_probability mem.Mbac.failure_probability
        ml.Mbac.utilization mem.Mbac.utilization)
    cap_mults

(* --- Admission kernel: fast path vs legacy rebuild ------------------- *)

(* The memory-scheme load x capacity grid run twice in one process:
   once on the incremental O(levels) kernel and once on the seed's
   per-decision rebuild ([Controller.Legacy]).  Timing both sides here
   makes the speedup machine-independent, and the per-point decision
   hashes prove the two paths answer identically on the shipped
   configs. *)
let mbac_admit ctx =
  section "MBAC admission kernel -- incremental fast path vs legacy rebuild";
  pf "Memory-scheme MBAC over the full load x capacity grid, twice: the@.";
  pf "incremental aggregate + warm-started solver, then the seed's@.";
  pf "from-scratch rebuild with cold Chernoff searches.@.@.";
  let grid mode =
    Array.map
      (fun (cfg, make) ->
        ( cfg,
          fun () ->
            let c : Controller.t = make () in
            Controller.set_mode c mode;
            c ))
      (mbac_grid ctx ~seed:43 (fun ~capacity ->
           Controller.memory ~capacity ~target:1e-3))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let fast, fast_wall =
    time (fun () -> Mbac.run_many ?pool:ctx.pool (grid Controller.Fast))
  in
  let legacy, legacy_wall =
    time (fun () -> Mbac.run_many ?pool:ctx.pool (grid Controller.Legacy))
  in
  let hash m = m.Mbac.admission.Controller.decision_hash in
  let identical =
    Array.for_all2 (fun a b -> hash a = hash b) fast legacy
  in
  let decisions =
    Array.fold_left
      (fun acc m -> acc + m.Mbac.admission.Controller.decisions)
      0 fast
  in
  let solver_total f =
    Array.fold_left
      (fun acc m -> acc + f m.Mbac.admission.Controller.solver)
      0 fast
  in
  let mgf_evals = solver_total (fun s -> s.Chernoff.Solver.mgf_evals) in
  let fits_evals = solver_total (fun s -> s.Chernoff.Solver.fits_evals) in
  pf "grid: %d points, %d admission decisions@." (Array.length fast) decisions;
  pf "fast path:   %.3f s  (%d log-MGF evals, %d fit probes)@." fast_wall
    mgf_evals fits_evals;
  pf "legacy path: %.3f s@." legacy_wall;
  pf "speedup:     %.2fx@." (legacy_wall /. fast_wall);
  pf "decision sequences identical on all %d points: %b@." (Array.length fast)
    identical;
  emit ctx "grid_points" (Json.Int (Array.length fast));
  emit ctx "decisions" (Json.Int decisions);
  emit ctx "decisions_identical" (Json.Bool identical);
  emit ctx "decision_hashes"
    (Json.List (Array.to_list (Array.map (fun m -> Json.Int (hash m)) fast)));
  emit ctx "fast_wall_s" (Json.Float fast_wall);
  emit ctx "legacy_wall_s" (Json.Float legacy_wall);
  emit ctx "speedup" (Json.Float (legacy_wall /. fast_wall));
  emit ctx "solver_mgf_evals" (Json.Int mgf_evals);
  emit ctx "solver_fits_evals" (Json.Int fits_evals)

(* --- Chernoff sweep: shared warm-started solver vs cold queries ------ *)

(* The fig2/fig6-style usage pattern: many max_calls /
   capacity_for_target queries against one fixed marginal (sweeping n,
   target and capacity, repeated per replication).  The cold path
   rebuilds its scratch state inside every query; the solver keeps one
   log-MGF table and warm-starts each search from the previous answer.
   The answers are required to be bit-identical. *)
let chernoff_sweep ctx =
  section "Chernoff sweep -- shared warm-started solver vs cold per-query path";
  let marginal = Schedule.marginal ctx.schedule in
  let mean = Chernoff.mean marginal in
  let ns = [ 2; 5; 10; 20; 50; 100; 200; 500 ] in
  let targets = [ 1e-2; 1e-3; 1e-4 ] in
  let cap_mults = [ 4.; 8.; 16.; 32.; 64.; 128. ] in
  let reps = if ctx.smoke then 30 else 150 in
  let sweep ~capacity_for_target ~max_calls =
    let acc = ref [] in
    for _ = 1 to reps do
      List.iter
        (fun target ->
          List.iter
            (fun n -> acc := capacity_for_target ~n ~target :: !acc)
            ns;
          List.iter
            (fun m ->
              acc :=
                float_of_int (max_calls ~capacity:(m *. mean) ~target) :: !acc)
            cap_mults)
        targets
    done;
    !acc
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let cold, cold_wall =
    time (fun () ->
        sweep
          ~capacity_for_target:(fun ~n ~target ->
            Chernoff.capacity_for_target marginal ~n ~target)
          ~max_calls:(fun ~capacity ~target ->
            Chernoff.max_calls marginal ~capacity ~target))
  in
  let solver = Chernoff.Solver.of_marginal marginal in
  let warm, warm_wall =
    time (fun () ->
        sweep
          ~capacity_for_target:(fun ~n ~target ->
            Chernoff.Solver.capacity_for_target solver ~n ~target)
          ~max_calls:(fun ~capacity ~target ->
            Chernoff.Solver.max_calls solver ~capacity ~target))
  in
  let queries = List.length cold in
  let identical = List.for_all2 (fun a b -> compare a b = 0) cold warm in
  let checksum =
    List.fold_left
      (fun h x ->
        ((h * 1_000_003) + Int64.to_int (Int64.bits_of_float x)) land max_int)
      0 warm
  in
  let st = Chernoff.Solver.stats solver in
  pf "marginal: %d levels; %d queries (%d reps of n/target/capacity sweeps)@."
    (Array.length marginal) queries reps;
  pf "cold path: %.3f s@." cold_wall;
  pf "warm solver: %.3f s  (%d log-MGF evals, %d fit probes)@." warm_wall
    st.Chernoff.Solver.mgf_evals st.Chernoff.Solver.fits_evals;
  pf "speedup:   %.2fx@." (cold_wall /. warm_wall);
  pf "all %d results bit-identical: %b@." queries identical;
  emit ctx "queries" (Json.Int queries);
  emit ctx "results_identical" (Json.Bool identical);
  emit ctx "result_checksum" (Json.Int checksum);
  emit ctx "cold_wall_s" (Json.Float cold_wall);
  emit ctx "warm_wall_s" (Json.Float warm_wall);
  emit ctx "speedup" (Json.Float (cold_wall /. warm_wall));
  emit ctx "solver_mgf_evals" (Json.Int st.Chernoff.Solver.mgf_evals);
  emit ctx "solver_fits_evals" (Json.Int st.Chernoff.Solver.fits_evals)

(* --- Analysis: Section V-A / Fig. 4 model --------------------------- *)

let analysis _ctx =
  section "Analysis check -- multiple time-scale model (Section V-A, Fig. 4)";
  let ms = Multiscale.fig4_example () in
  let b = 30. and target = 1e-3 in
  let per = Eb.subchain_equivalent_bandwidths ms ~buffer:b ~target_loss:target in
  let means = Multiscale.subchain_mean_rates ms in
  let occ = Multiscale.subchain_occupancy ms in
  pf "three-subchain source; buffer %.0f units, overflow target %.0e@.@." b target;
  pf "%10s %12s %12s %12s@." "subchain" "occupancy" "mean rate" "equiv bw";
  Array.iteri
    (fun k m -> pf "%10d %12.3f %12.3f %12.3f@." k occ.(k) m per.(k))
    means;
  let total = Eb.multiscale_equivalent_bandwidth ms ~buffer:b ~target_loss:target in
  pf "@.formula (9): equivalent bandwidth = max over subchains = %.3f@." total;
  pf "overall mean rate: %.3f  (static allocation wastes %.1fx)@."
    (Multiscale.mean_rate ms)
    (total /. Multiscale.mean_rate ms);
  (* Simulation check: the flattened chain through a buffer at the
     predicted rate must meet the overflow target. *)
  let flat = Multiscale.flatten ms in
  let rng = Rng.create 3 in
  let data = Modulated.simulate flat rng ~steps:500_000 () in
  let t = Trace.create ~fps:1. data in
  let loss r = Fluid.loss_fraction (Fluid.run_constant ~capacity:b ~rate:r t) in
  pf "@.simulated loss at the predicted rate: %.2e (target %.0e)@." (loss total)
    target;
  pf "simulated loss at 0.8x the predicted rate: %.2e@." (loss (0.8 *. total));
  (* Chernoff comparison of the two SMG components (formulas (10)/(11)):
     shared-buffer multiplexing averages subchain means; RCBR averages
     subchain equivalent bandwidths. *)
  let marginal_means =
    Array.init (Array.length means) (fun k -> (occ.(k), means.(k)))
  in
  let marginal_eb = Array.init (Array.length per) (fun k -> (occ.(k), per.(k))) in
  pf "@.capacity per stream for overflow target %.0e (Chernoff):@." target;
  pf "%8s %16s %16s %12s@." "n" "shared (eq.10)" "RCBR (eq.11)" "ratio";
  (* One warm-started solver per marginal, reused across the n sweep
     (bit-identical to the cold per-query path). *)
  let solver_means = Chernoff.Solver.of_marginal marginal_means in
  let solver_eb = Chernoff.Solver.of_marginal marginal_eb in
  List.iter
    (fun n ->
      let cs = Chernoff.Solver.capacity_for_target solver_means ~n ~target in
      let cr = Chernoff.Solver.capacity_for_target solver_eb ~n ~target in
      pf "%8d %16.3f %16.3f %12.3f@." n cs cr (cr /. cs))
    [ 10; 100; 1000 ];
  pf "@.paper: RCBR gives up only the fast time-scale component of the gain;@.";
  pf "the ratio stays close to 1 when subchain fluctuations are small.@."

(* --- Micro-benchmarks (Bechamel) ------------------------------------ *)

let micro ctx =
  section "Micro-benchmarks (Bechamel) + trellis complexity (Section IV-A)";
  let trace = Synthetic.star_wars ~frames:2_000 ~seed:5 () in
  (* Complexity vs number of levels: the paper reports 20 min at M=20 and
     over a day at M=100 on an UltraSparc 1 for the full trace. *)
  pf "trellis cost vs number of rate levels (2 000-frame trace, alpha = 2e5):@.";
  pf "%8s %12s %14s %12s@." "levels" "nodes" "peak frontier" "time (s)";
  let level_rows = ref [] in
  List.iter
    (fun m ->
      let needed =
        Sigma_rho.min_rate ~trace ~buffer:300_000. ~target_loss:0. ()
      in
      let grid =
        Rate_grid.covering
          (Rate_grid.uniform ~lo:48_000. ~hi:2_400_000. ~levels:m)
          ~peak:(needed *. 1.0001)
      in
      let params =
        {
          Optimal.grid;
          reneg_cost = 2e5;
          bandwidth_cost = 1.;
          constraint_ = Optimal.Buffer_bound 300_000.;
        }
      in
      let t0 = Unix.gettimeofday () in
      let _, st = Optimal.solve_with_stats params trace in
      let wall = Unix.gettimeofday () -. t0 in
      level_rows :=
        Json.Obj
          [
            ("levels", Json.Int m);
            ("expanded_nodes", Json.Int st.Optimal.expanded);
            ("max_frontier", Json.Int st.Optimal.max_frontier);
            ("pruned_by_lemma", Json.Int st.Optimal.pruned_by_lemma);
            ("pruned_by_cap", Json.Int st.Optimal.pruned_by_cap);
            ("wall_s", Json.Float wall);
          ]
        :: !level_rows;
      pf "%8d %12d %14d %12.2f   (pruned %d lemma + %d cap)@." m
        st.Optimal.expanded st.Optimal.max_frontier wall
        st.Optimal.pruned_by_lemma st.Optimal.pruned_by_cap)
    (if ctx.smoke then [ 5; 10; 20 ] else [ 5; 10; 20; 40 ]);
  emit ctx "levels_sweep" (Json.List (List.rev !level_rows));
  (* Lemma 1 ablation. *)
  pf "@.Lemma 1 cross-level pruning ablation (20 levels):@.";
  let params = Optimal.default_params ~cost_ratio:2e5 trace in
  List.iter
    (fun (label, lemma_pruning) ->
      let t0 = Unix.gettimeofday () in
      let _, st = Optimal.solve_with_stats ~lemma_pruning params trace in
      pf "  %-22s nodes %9d, peak frontier %6d, %.2f s@." label
        st.Optimal.expanded st.Optimal.max_frontier
        (Unix.gettimeofday () -. t0))
    [ ("with Lemma 1", true); ("per-level Pareto only", false) ];
  (* Bechamel micro-benchmarks of the hot kernels. *)
  let open Bechamel in
  let open Bechamel.Toolkit in
  let marginal = Schedule.marginal (Online.schedule Online.default_params trace) in
  let tests =
    Test.make_grouped ~name:"rcbr"
      [
        Test.make ~name:"synthetic-2k-frames"
          (Staged.stage (fun () ->
               ignore (Synthetic.star_wars ~frames:2_000 ~seed:1 ())));
        Test.make ~name:"fluid-queue-2k-slots"
          (Staged.stage (fun () ->
               ignore (Fluid.run_constant ~capacity:3e5 ~rate:4e5 trace)));
        Test.make ~name:"online-heuristic-2k"
          (Staged.stage (fun () ->
               ignore (Online.run Online.default_params trace)));
        (let short = Trace.sub trace ~pos:0 ~len:500 in
         let p = Optimal.default_params ~cost_ratio:2e5 short in
         Test.make ~name:"trellis-m20-500"
           (Staged.stage (fun () -> ignore (Optimal.solve p short))));
        Test.make ~name:"chernoff-max-calls"
          (Staged.stage (fun () ->
               ignore (Chernoff.max_calls marginal ~capacity:6e6 ~target:1e-3)));
        (let solver = Chernoff.Solver.of_marginal marginal in
         Test.make ~name:"chernoff-max-calls-warm"
           (Staged.stage (fun () ->
                ignore
                  (Chernoff.Solver.max_calls solver ~capacity:6e6 ~target:1e-3))));
        Test.make ~name:"equivalent-bandwidth"
          (Staged.stage (fun () ->
               ignore
                 (Eb.multiscale_equivalent_bandwidth (Multiscale.fig4_example ())
                    ~buffer:30. ~target_loss:1e-3)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  pf "@.kernel timings (OLS estimate of one run):@.";
  let rows =
    (* Name-sorted traversal; same order the old fold-then-sort gave. *)
    Tables.sorted_bindings results
    |> List.map (fun (name, est) ->
           match Analyze.OLS.estimates est with
           | Some [ ns ] -> (name, ns)
           | _ -> (name, nan))
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then pf "  %-32s (no estimate)@." name
      else if ns > 1e6 then pf "  %-32s %12.3f ms@." name (ns /. 1e6)
      else pf "  %-32s %12.1f us@." name (ns /. 1e3))
    rows;
  emit ctx "bechamel_run_ns"
    (Json.Obj (List.map (fun (name, ns) -> (name, Json.Float ns)) rows))

(* --- Extension experiments ------------------------------------------ *)

(* Better causal predictors -- the future-work item of Section IV-B. *)
let predictors ctx =
  section "Predictors -- GOP-aware and adaptive prediction (Section IV-B)";
  pf "paper: \"the prediction quality could be improved by taking into@.";
  pf "account the inherent frame structure of MPEG encoded video\".@.@.";
  let variants =
    [
      ("AR(1) (paper)", fun ~initial -> Rcbr_core.Predictor.ar1 ~eta:0.9 ~initial);
      ( "GOP-aware AR(1)",
        fun ~initial ->
          Rcbr_core.Predictor.gop_aware ~gop_length:12 ~eta:0.9 ~initial );
      ( "NLMS (12 taps)",
        fun ~initial -> Rcbr_core.Predictor.nlms ~taps:12 ~mu:0.3 ~initial );
      ( "peak reservation",
        fun ~initial:_ -> Rcbr_core.Predictor.constant (Trace.peak_rate ctx.trace) );
    ]
  in
  pf "%20s %10s %14s %12s %14s@." "predictor" "renegs" "interval (s)"
    "efficiency" "backlog (kb)";
  List.iter
    (fun (name, predictor) ->
      let o = Online.run_custom Online.default_params ~predictor ctx.trace in
      pf "%20s %10d %14.2f %11.2f%% %14.1f@." name
        (Schedule.n_renegotiations o.Online.schedule)
        (Schedule.mean_renegotiation_interval o.Online.schedule)
        (100. *. Schedule.bandwidth_efficiency o.Online.schedule ~trace:ctx.trace)
        (o.Online.max_backlog /. 1e3))
    variants

(* Smoothing baseline -- the related-work comparison of Sections VII-VIII. *)
let smoothing ctx =
  section "Smoothing vs renegotiation (related work, Sections VII-VIII)";
  pf "Optimal smoothing minimizes the peak rate; the paper's optimizer@.";
  pf "minimizes K*renegotiations + c*reserved bits.  Same buffer (300 kb):@.@.";
  let smooth = Rcbr_core.Smoothing.schedule ~buffer:ctx.buffer ctx.trace in
  let describe name s =
    pf "%16s: %5d changes, every %6.1f s, peak %.2fx mean, eff %6.2f%%, cost %.3e@."
      name (Schedule.n_renegotiations s)
      (Schedule.mean_renegotiation_interval s)
      (Schedule.peak_rate s /. ctx.mean)
      (100. *. Schedule.bandwidth_efficiency s ~trace:ctx.trace)
      (Schedule.cost s ~reneg_cost:3e5 ~bandwidth_cost:1.)
  in
  describe "smoothing" smooth;
  describe "RCBR optimal" ctx.schedule;
  pf "@.Smoothing spends many more rate changes to shave the peak; under the@.";
  pf "paper's pricing the renegotiation-aware optimum is strictly cheaper.@."

(* Renegotiation-failure policies -- Section III-A-1. *)
let adaptation ctx =
  section "Renegotiation-failure handling (Section III-A-1)";
  pf "A congested network grants each rate increase with probability 0.7;@.";
  pf "four source policies (300 kb buffer):@.@.";
  pf "%16s %10s %10s %10s %12s %14s@." "policy" "attempts" "failures"
    "loss" "quality" "reserved/mean";
  List.iter
    (fun (name, policy) ->
      let rng = Rng.create 99 in
      let grant = Rcbr_core.Adaptation.grant_with_probability rng 0.7 in
      let r =
        Rcbr_core.Adaptation.simulate ~policy ~grant ~buffer:ctx.buffer
          ~trace:ctx.trace ctx.schedule
      in
      pf "%16s %10d %10d %10.2e %11.1f%% %14.2f@." name r.Rcbr_core.Adaptation.attempts
        r.Rcbr_core.Adaptation.failures
        (r.Rcbr_core.Adaptation.bits_lost /. r.Rcbr_core.Adaptation.bits_offered)
        (100. *. r.Rcbr_core.Adaptation.quality)
        (r.Rcbr_core.Adaptation.mean_reserved /. ctx.mean))
    [
      ("settle", Rcbr_core.Adaptation.Settle);
      ("retry (1 s)", Rcbr_core.Adaptation.Retry 24);
      ("requantize 0.6", Rcbr_core.Adaptation.Requantize 0.6);
      ("reserve peak", Rcbr_core.Adaptation.Reserve_peak);
    ];
  pf "@.paper: \"some users can choose to see few or no renegotiation failures,@.";
  pf "while others might tradeoff ... for a lower cost of service.\"@."

(* Cell-level switch buffering -- Section III's "minimal buffering"
   claim, quantified. *)
let cells ctx =
  section "Cell-level switch buffering: RCBR-shaped vs unshaped (Section III)";
  pf "paper: \"because all traffic entering the network is CBR, RCBR requires@.";
  pf "minimal buffering and scheduling support in switches\".@.@.";
  let short = Trace.sub ctx.trace ~pos:0 ~len:(min 7200 ctx.frames) in
  let sched =
    Optimal.solve (Optimal.default_params ~cost_ratio:3e5 short) short
  in
  let n = 10 in
  (* Admission control keeps the aggregate reserved rate below the port
     capacity, so size the port against the aggregate demand peak: the
     utilizations below are peak-aggregate utilizations. *)
  let shifted = List.init n (fun i -> Schedule.shift sched ~slots:(i * 997)) in
  let agg_peak =
    let rates = List.map Schedule.to_rates shifted in
    let slots = Schedule.n_slots sched in
    let peak = ref 0. in
    for t = 0 to slots - 1 do
      let total = List.fold_left (fun acc r -> acc +. r.(t)) 0. rates in
      if total > !peak then peak := total
    done;
    !peak
  in
  pf "%12s %16s %10s %10s %12s %14s@." "utilization" "shaping" "max q"
    "p99 q" "mean q" "max delay";
  List.iter
    (fun util ->
      let port = agg_peak /. util in
      let paced =
        List.mapi
          (fun i s ->
            Rcbr_atm.Cell_mux.Paced
              { schedule = s; offset = float_of_int i *. 0.0011 })
          shifted
      in
      let burst =
        List.init n (fun i ->
            Rcbr_atm.Cell_mux.Frame_burst
              { trace = Trace.shift short (i * 997); line_rate = 155e6 })
      in
      List.iter
        (fun (label, sources) ->
          let s =
            Rcbr_atm.Cell_mux.simulate ~port_rate:port ~sources ~duration:120. ()
          in
          pf "%12.2f %16s %10d %10d %12.2f %11.2f ms@." util label
            s.Rcbr_atm.Cell_mux.max_queue s.Rcbr_atm.Cell_mux.p99_queue
            s.Rcbr_atm.Cell_mux.mean_queue
            (s.Rcbr_atm.Cell_mux.max_delay *. 1e3))
        [ ("RCBR (paced)", paced); ("VBR (bursts)", burst) ])
    [ 0.7; 0.9; 0.98 ]

(* Multi-hop scaling -- Section III-C. *)
let multihop ctx =
  section "Multi-hop renegotiation failure (Section III-C)";
  pf "paper: \"the probability of renegotiation failure is likely to increase@.";
  pf "since each hop is a possible point of failure\".@.@.";
  pf "%8s %18s %18s %14s@." "hops" "transit denials" "local denials" "hop util";
  let base hops =
    {
      Rcbr_sim.Multihop.schedule = ctx.schedule;
      hops;
      capacity_per_hop = 10. *. ctx.mean;
      transit_calls = 3;
      local_calls_per_hop = 5;
      horizon = 4. *. Schedule.duration ctx.schedule;
      seed = 5;
    }
  in
  let hop_counts = [ 1; 2; 4; 8 ] in
  (* Hop-sweep batch: every hop count is an independent seeded
     simulation, fanned out over the pool. *)
  let sweep =
    Rcbr_sim.Multihop.run_many ?pool:ctx.pool (List.map base hop_counts)
  in
  List.iter2
    (fun hops m ->
      let local =
        if m.Rcbr_sim.Multihop.local_attempts = 0 then 0.
        else
          float_of_int m.Rcbr_sim.Multihop.local_denials
          /. float_of_int m.Rcbr_sim.Multihop.local_attempts
      in
      pf "%8d %18.4f %18.4f %14.3f@." hops
        (Rcbr_sim.Multihop.denial_fraction m)
        local m.Rcbr_sim.Multihop.mean_hop_utilization)
    hop_counts sweep;
  (* The paper's conjecture: alternate routes + call-level load
     balancing compensate.  Same 8-hop network, 4 parallel paths, 12
     transit calls spread across them. *)
  pf "@.8 hops, 4 alternate routes, 12 transit calls:@.";
  let balanced =
    Pool.map ?pool:ctx.pool
      (fun balance ->
        Rcbr_sim.Multihop.run_balanced
          {
            Rcbr_sim.Multihop.base =
              { (base 8) with Rcbr_sim.Multihop.transit_calls = 12 };
            routes = 4;
            balance;
          })
      [ false; true ]
  in
  List.iter2
    (fun balance m ->
      pf "  %-22s transit denial %.4f, hop util %.3f@."
        (if balance then "least-loaded route:" else "random route:")
        (Rcbr_sim.Multihop.denial_fraction m)
        m.Rcbr_sim.Multihop.mean_hop_utilization)
    [ false; true ] balanced

(* Mesh topology -- what the Section III-C hop sweep could not
   express: routes of different lengths sharing a bottleneck link. *)
let mesh ctx =
  section "Mesh topology: heterogeneous routes over shared links (lib/net)";
  pf "A 1-hop direct path, a 2-hop detour and a 3-hop detour between the@.";
  pf "same endpoints; both detours cross the same final link.  Transit@.";
  pf "calls are balanced across the three routes, each link carries its@.";
  pf "own local traffic, and the faulty plane loses 20%% of signalling@.";
  pf "cells while the shared link crashes mid-run.@.@.";
  let module MH = Rcbr_sim.Multihop in
  let module NSession = Rcbr_net.Session in
  let module Topology = Rcbr_net.Topology in
  let capacity = 10. *. ctx.mean in
  let link src dst = { Topology.src; dst; capacity } in
  let topology =
    Topology.make ~n_nodes:4
      ~links:[| link 0 1; link 0 2; link 2 1; link 0 3; link 3 2 |]
      ~routes:[| [| 0 |]; [| 1; 2 |]; [| 3; 4; 2 |] |]
  in
  let nc =
    {
      MH.schedule = ctx.schedule;
      topology;
      transit_calls = 6;
      local_calls_per_link = 5;
      horizon = 4. *. Schedule.duration ctx.schedule;
      seed = 5;
      balance = true;
      service = Rcbr_policy.Service_model.Renegotiate;
    }
  in
  let clean = { NSession.no_faults with NSession.check_invariants = true } in
  let faulty =
    {
      NSession.no_faults with
      NSession.rm_drop = 0.2;
      retx_timeout = 0.05;
      crashes = [ (2, 100., 400.) ];
      fault_seed = 99;
      check_invariants = true;
    }
  in
  let runs = Pool.map ?pool:ctx.pool (MH.run_net nc) [ clean; faulty ] in
  pf "%10s %16s %16s %10s %8s %8s %6s@." "plane" "transit denials"
    "local denials" "hop util" "lost" "aband" "inv";
  List.iter2
    (fun label ((m : MH.metrics), (f : MH.fault_metrics)) ->
      let local =
        if m.MH.local_attempts = 0 then 0.
        else
          float_of_int m.MH.local_denials /. float_of_int m.MH.local_attempts
      in
      pf "%10s %16.4f %16.4f %10.3f %8d %8d %6d@." label
        (MH.denial_fraction m) local m.MH.mean_hop_utilization f.MH.rm_lost
        f.MH.abandoned f.MH.invariant_failures;
      emit ctx (label ^ "_transit_attempts") (Json.Int m.MH.transit_attempts);
      emit ctx (label ^ "_transit_denials") (Json.Int m.MH.transit_denials);
      emit ctx (label ^ "_local_attempts") (Json.Int m.MH.local_attempts);
      emit ctx (label ^ "_local_denials") (Json.Int m.MH.local_denials);
      emit ctx (label ^ "_rm_lost") (Json.Int f.MH.rm_lost);
      emit ctx
        (label ^ "_invariant_failures")
        (Json.Int f.MH.invariant_failures))
    [ "clean"; "faulty" ] runs

(* Online renegotiation latency -- the result Section III-C says the
   paper does not yet have. *)
let latency ctx =
  section "Signaling latency vs online RCBR (Section III-C, open question)";
  pf "paper: \"We do not yet have analytical expressions or simulation@.";
  pf "results studying the effect of renegotiation delay on RCBR@.";
  pf "performance.\"  Here it is: the AR(1) heuristic with the request@.";
  pf "taking effect only after a signaling round-trip.@.@.";
  pf "%14s %10s %14s %12s %14s@." "delay" "renegs" "interval (s)"
    "efficiency" "backlog (kb)";
  List.iter
    (fun delay_slots ->
      let o = Online.run_delayed Online.default_params ~delay_slots ctx.trace in
      pf "%11.0f ms %10d %14.2f %11.2f%% %14.1f@."
        (float_of_int delay_slots /. Trace.fps ctx.trace *. 1e3)
        (Schedule.n_renegotiations o.Online.schedule)
        (Schedule.mean_renegotiation_interval o.Online.schedule)
        (100. *. Schedule.bandwidth_efficiency o.Online.schedule ~trace:ctx.trace)
        (o.Online.max_backlog /. 1e3))
    [ 0; 2; 6; 12; 24; 48 ];
  (* Compensation: a larger safety margin (coarser up-quantization)
     contains the backlog at the price of efficiency. *)
  pf "@.compensating 1 s of delay with extra bandwidth margin:@.";
  pf "%14s %12s %14s@." "granularity" "efficiency" "backlog (kb)";
  List.iter
    (fun granularity ->
      let p = { Online.default_params with Online.granularity } in
      let o = Online.run_delayed p ~delay_slots:24 ctx.trace in
      pf "%11.0f kb %11.2f%% %14.1f@." (granularity /. 1e3)
        (100. *. Schedule.bandwidth_efficiency o.Online.schedule ~trace:ctx.trace)
        (o.Online.max_backlog /. 1e3))
    [ 100e3; 200e3; 400e3 ]

(* One-shot descriptors -- the four problems of Section II, quantified. *)
let descriptors ctx =
  section "One-shot traffic descriptors: the four problems (Section II)";
  pf "A static (sigma, rho) leaky bucket for this source either wastes@.";
  pf "bandwidth, loses data, needs huge buffers, or forfeits protection:@.@.";
  let mean = ctx.mean in
  pf "%16s %16s %20s@." "token rate" "bucket depth" "consequence";
  List.iter
    (fun (mult, label) ->
      let rate = mult *. mean in
      let depth = Rcbr_traffic.Token_bucket.min_depth_for_trace ctx.trace ~rate in
      pf "%13.2fx %13.1f Mb %20s@." mult (depth /. 1e6) label)
    [
      (1.05, "huge bucket/buffer");
      (1.5, "large bucket");
      (2.5, "moderate bucket");
      (4., "low SMG (near peak)");
    ];
  let bucket = Rcbr_traffic.Token_bucket.create ~rate:(1.05 *. mean) ~depth:1e6 in
  let conforming =
    Rcbr_traffic.Token_bucket.conforming_fraction bucket ~trace:ctx.trace
  in
  pf "@.tight bucket instead (1.05x mean, 1 Mb): only %.1f%% of bits conform --@."
    (100. *. conforming);
  pf "the rest is dropped at the policer or needs shared network buffers@.";
  pf "(\"loss of protection\", cf. the protection experiment).  RCBR's@.";
  pf "renegotiated descriptor carries the same source at %.2fx mean with a@."
    (Schedule.mean_rate ctx.schedule /. mean);
  pf "300 kb buffer and zero loss.@."

(* Advance reservations -- Section III-A-2. *)
let advance ctx =
  section "Advance reservations for stored video (Section III-A-2)";
  pf "Booking whole schedules on a shared link ahead of time: renegotiation@.";
  pf "failures become up-front blocking.  Streams request random start@.";
  pf "times over one schedule duration:@.@.";
  let rng = Rng.create 4 in
  let duration = Schedule.duration ctx.schedule in
  pf "%18s %12s %14s@." "link capacity" "admitted" "booked share";
  List.iter
    (fun mult ->
      let cal = Rcbr_signal.Advance.create ~capacity:(mult *. ctx.mean) in
      let admitted = ref 0 in
      let requests = 3 * int_of_float mult in
      for _ = 1 to requests do
        let start = Rng.float rng *. duration in
        if Rcbr_signal.Advance.book_schedule cal ~start ctx.schedule then
          incr admitted
      done;
      let share =
        Rcbr_signal.Advance.booked_area cal ~from_:0. ~until:(2. *. duration)
        /. (mult *. ctx.mean *. 2. *. duration)
      in
      pf "%15.0fx %9d/%2d %13.1f%%@." mult !admitted requests (100. *. share))
    [ 4.; 8.; 16. ];
  pf "@.Every admitted stream then plays with zero renegotiation failures.@."

(* Protection: FIFO vs fair queueing vs policing -- Section II's "loss
   of protection" and Section VI's "policing is reduced to enforcing
   peak rate". *)
let protection ctx =
  section "Traffic protection: FIFO vs fair queueing vs peak policing (Secs II/VI)";
  pf "Nine well-behaved 400 kb/s CBR sources share a port with one source@.";
  pf "that reserved 400 kb/s but blasts VBR frame bursts at link speed.@.@.";
  let good_rate = 400_000. in
  let n_good = 9 in
  let frames = min 2880 ctx.frames in
  let good i =
    Rcbr_atm.Cell_mux.Paced
      {
        schedule = Schedule.constant ~fps:24. ~n_slots:frames good_rate;
        offset = float_of_int i *. 0.0013;
      }
  in
  let bad_trace = Trace.sub ctx.trace ~pos:0 ~len:frames in
  let bad = Rcbr_atm.Cell_mux.Frame_burst { trace = bad_trace; line_rate = 155e6 } in
  let sources = List.init n_good good @ [ bad ] in
  let port = 12. *. good_rate in
  let duration = float_of_int frames /. 24. in
  let row label ?policer discipline =
    let r =
      Rcbr_atm.Scheduler.simulate ~discipline ~port_rate:port ?policer ~sources
        ~duration ()
    in
    let g = r.(0) and b = r.(n_good) in
    pf "%24s %12.3f %12.3f %14.3f %10d@." label
      (g.Rcbr_atm.Scheduler.mean_delay *. 1e3)
      (g.Rcbr_atm.Scheduler.max_delay *. 1e3)
      (b.Rcbr_atm.Scheduler.mean_delay *. 1e3)
      b.Rcbr_atm.Scheduler.policed
  in
  pf "%24s %12s %12s %14s %10s@." "regime" "good mean" "good max"
    "misbehaver" "policed";
  pf "%24s %12s %12s %14s %10s@." "" "(ms)" "(ms)" "mean (ms)" "cells";
  row "FIFO, no policing" Rcbr_atm.Scheduler.Fifo;
  row "SCFQ fair queueing" Rcbr_atm.Scheduler.Scfq;
  let policer vc =
    if vc = n_good then Some (Rcbr_atm.Gcra.create ~rate:good_rate ())
    else None
  in
  row "FIFO + GCRA policing" ~policer Rcbr_atm.Scheduler.Fifo;
  pf "@.RCBR's position: shaped traffic + peak policing protects as well as@.";
  pf "per-connection fair queueing, with a trivial FIFO scheduler.@."

(* User interactivity -- the Section VI caveat about a-priori descriptors. *)
let interactive ctx =
  section "User interactivity vs a-priori descriptors (Section VI)";
  pf "paper: \"even for stored video ... user interactivity (fast forward,@.";
  pf "pause, etc.) reduces the accuracy of this descriptor\".@.@.";
  let capacity = 16. *. ctx.mean in
  let arrival_rate =
    1.4 *. capacity
    /. (Schedule.mean_rate ctx.schedule *. Schedule.duration ctx.schedule)
  in
  let cfg =
    Mbac.default_config ~schedule:ctx.schedule ~capacity ~arrival_rate
      ~target:1e-3 ~seed:31
  in
  let params =
    {
      Rcbr_sim.Interactive.default_params with
      Rcbr_sim.Interactive.pause_probability = 0.03;
      jump_probability = 0.05;
      scan_rate_multiplier = 2.5;
      mean_scan_s = 10.;
    }
  in
  let make name controller =
    let clean = Mbac.run cfg ~controller:(controller ()) in
    let inter =
      Mbac.run_with_pieces cfg
        ~make_pieces:(fun rng ->
          Rcbr_sim.Interactive.pieces rng params ctx.schedule)
        ~controller:(controller ())
    in
    pf "%12s %14.2e %14.2e %12.3f %12.3f@." name
      clean.Mbac.failure_probability inter.Mbac.failure_probability
      clean.Mbac.utilization inter.Mbac.utilization
  in
  pf "%12s %14s %14s %12s %12s@." "controller" "fail(clean)" "fail(inter)"
    "util(clean)" "util(inter)";
  make "perfect" (fun () ->
      Controller.perfect ~descriptor:(Descriptor.of_schedule ctx.schedule)
        ~capacity ~target:1e-3);
  make "memoryless" (fun () -> Controller.memoryless ~capacity ~target:1e-3);
  make "memory" (fun () -> Controller.memory ~capacity ~target:1e-3)

(* Heterogeneous call mix -- MBAC "learns the statistics of existing
   calls" (Section VI) with no per-class configuration. *)
let mixture ctx =
  section "Heterogeneous call mix: movies + low-rate streams (Section VI)";
  pf "Half the calls are the movie; half are a 150 kb/s news-style stream.@.";
  pf "MBAC needs no class knowledge; perfect knowledge gets the true@.";
  pf "mixture marginal.@.@.";
  let news_params =
    { Synthetic.star_wars_params with Synthetic.mean_rate_bps = 150_000. }
  in
  let news_trace =
    Synthetic.generate ~params:news_params ~seed:77 ~frames:ctx.frames ()
  in
  let news_sched, _ =
    Optimal.solve_with_stats ~frontier_cap:100
      (Optimal.default_params ~cost_ratio:3e5 news_trace)
      news_trace
  in
  let mixture_marginal =
    (* 50/50 mixture of the two per-call marginals. *)
    let table = Hashtbl.create 32 in
    let fold weight m =
      Array.iter
        (fun (p, r) ->
          Hashtbl.replace table r
            (Option.value ~default:0. (Hashtbl.find_opt table r)
            +. (weight *. p)))
        m
    in
    fold 0.5 (Schedule.marginal ctx.schedule);
    fold 0.5 (Schedule.marginal news_sched);
    Tables.sorted_bindings ~compare:Float.compare table
    |> List.map (fun (r, p) -> (p, r))
    |> Array.of_list
  in
  let capacity = 16. *. ctx.mean in
  let mix_mean = Chernoff.mean mixture_marginal in
  let arrival_rate =
    1.4 *. capacity /. (mix_mean *. Schedule.duration ctx.schedule)
  in
  let cfg =
    Mbac.default_config ~schedule:ctx.schedule ~capacity ~arrival_rate
      ~target:1e-3 ~seed:41
  in
  let n_slots = Schedule.n_slots ctx.schedule in
  let make_pieces rng =
    let sched = if Rng.bool rng then ctx.schedule else news_sched in
    Mbac.shifted_pieces sched ~shift:(Rng.int rng n_slots)
  in
  let perfect_mixture () =
    let levels = Array.map snd mixture_marginal in
    let fractions = Array.map fst mixture_marginal in
    Controller.perfect
      ~descriptor:(Descriptor.create ~levels ~fractions)
      ~capacity ~target:1e-3
  in
  pf "%12s %14s %14s %10s %8s@." "controller" "failure" "utilization"
    "blocking" "calls";
  List.iter
    (fun (name, make) ->
      let m = Mbac.run_with_pieces cfg ~make_pieces ~controller:(make ()) in
      pf "%12s %14.2e %14.3f %10.3f %8.1f@." name m.Mbac.failure_probability
        m.Mbac.utilization m.Mbac.call_blocking m.Mbac.mean_calls_in_system)
    [
      ("perfect", perfect_mixture);
      ("memoryless", fun () -> Controller.memoryless ~capacity ~target:1e-3);
      ("memory", fun () -> Controller.memory ~capacity ~target:1e-3);
    ]

(* --- Megacall: the million-call engine ------------------------------ *)

(* Peak resident set from /proc/self/status (VmHWM, kB).  Linux-only;
   [None] elsewhere, and the BENCH field is simply absent. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq |> int_of_string_opt
        | _ -> scan ()
      in
      scan ()

(* 2^20 concurrent calls on sharded grid meshes: the SoA session store,
   the calendar-queue scheduler driven with integer handles, batched
   admission and link-sharded Pool runs, all at once (DESIGN.md §12).
   The outcome hash is bit-identical for every -j; CI additionally
   diffs the rcbr_megacall CLI at -j1 vs -j4. *)
let megacall ctx =
  section "Megacall -- 10^6 concurrent calls (SoA store + wheel + batching)";
  let module Megacall = Rcbr_sim.Megacall in
  let concurrent = 1 lsl 20 in
  let cfg = Megacall.default ~concurrent () in
  pf "%d shards x (%dx%d mesh, %d calls each), %d rate changes per call@."
    cfg.Megacall.shards cfg.Megacall.rows cfg.Megacall.cols
    cfg.Megacall.calls_per_shard cfg.Megacall.pieces_per_call;
  let t0 = Unix.gettimeofday () in
  let m = Megacall.run ?pool:ctx.pool cfg in
  let wall = Unix.gettimeofday () -. t0 in
  pf "arrivals %d, admitted %d, denied %d, departures %d@."
    m.Megacall.total_arrivals m.Megacall.total_admitted
    m.Megacall.total_denied m.Megacall.total_departures;
  pf "concurrent %d (peak %d), %d wheel events@." m.Megacall.concurrent_calls
    m.Megacall.peak_concurrent m.Megacall.total_events;
  pf "batch hits %d, solver memo hits %d, audit violations %d@."
    m.Megacall.total_batch_hits m.Megacall.total_memo_hits
    m.Megacall.audit_violations;
  pf "outcome hash %d (identical for every -j)@." m.Megacall.outcome_hash;
  pf "wall %.3f s: %.0f calls/s, %.0f events/s@." wall
    (float_of_int m.Megacall.total_admitted /. wall)
    (float_of_int m.Megacall.total_events /. wall);
  (match peak_rss_kb () with
  | Some kb ->
      pf "peak RSS %.1f MB (%.0f bytes/concurrent call, process-wide)@."
        (float_of_int kb /. 1024.)
        (float_of_int kb *. 1024. /. float_of_int m.Megacall.concurrent_calls);
      emit ctx "peak_rss_kb" (Json.Int kb)
  | None -> pf "peak RSS unavailable (no /proc/self/status)@.");
  emit ctx "concurrent_calls" (Json.Int m.Megacall.concurrent_calls);
  emit ctx "peak_concurrent" (Json.Int m.Megacall.peak_concurrent);
  emit ctx "decisions" (Json.Int m.Megacall.total_arrivals);
  emit ctx "result_checksum" (Json.Int m.Megacall.outcome_hash);
  emit ctx "decision_hashes"
    (Json.List
       (Array.to_list
          (Array.map
             (fun s -> Json.Int s.Megacall.decision_hash)
             m.Megacall.shards_)));
  emit ctx "audit_violations" (Json.Int m.Megacall.audit_violations);
  emit ctx "events" (Json.Int m.Megacall.total_events);
  emit ctx "batch_hits" (Json.Int m.Megacall.total_batch_hits);
  emit ctx "memo_hits" (Json.Int m.Megacall.total_memo_hits);
  emit ctx "calls_per_s"
    (Json.Float (float_of_int m.Megacall.total_admitted /. wall));
  emit ctx "events_per_s"
    (Json.Float (float_of_int m.Megacall.total_events /. wall))

(* --- Beam: beam-searched trellis on fine rate grids (DESIGN.md #13) -- *)

(* FNV-style checksum of a schedule's segment list; joins the
   [schedule_checksums] identity field, so any numeric drift in the
   beam (or exact) solver trips compare.exe. *)
let schedule_checksum s =
  Array.fold_left
    (fun h seg ->
      let h = ((h * 1_000_003) + seg.Schedule.start_slot) land max_int in
      ((h * 1_000_003) + Int64.to_int (Int64.bits_of_float seg.Schedule.rate))
      land max_int)
    0 (Schedule.segments s)

let beam_experiment ctx =
  section "Beam -- beam-searched trellis on 100+-level grids (DESIGN.md par. 13)";
  let alpha = 2e5 in
  let len = min 600 ctx.frames in
  let trace = Trace.sub ctx.trace ~pos:0 ~len in
  let ms = if ctx.smoke then [ 50; 200 ] else [ 50; 100; 200 ] in
  let widths = [ 2; 4; 8; 16; 32 ] in
  pf "%d-slot trace, alpha = %.0e, trace prior at the default weight@." len
    alpha;
  (* One independent sweep point per (levels, solver) pair; the exact
     reference at each grid size is just another point.  Pool.map keeps
     list order, so the results -- and the checksum list below -- are
     byte-identical for every -j. *)
  let points =
    List.concat_map (fun m -> `Exact m :: List.map (fun w -> `Beam (m, w)) widths) ms
  in
  let solve_point point =
    let m = match point with `Exact m | `Beam (m, _) -> m in
    let p =
      Optimal.default_params ~levels:m ~buffer:ctx.buffer ~cost_ratio:alpha
        trace
    in
    let t0 = Unix.gettimeofday () in
    match point with
    | `Exact _ ->
        let s, st = Optimal.solve_with_stats p trace in
        (Unix.gettimeofday () -. t0, s, st.Optimal.expanded, 0, 0)
    | `Beam (_, w) ->
        let prior = Beam.of_trace ~grid:p.Optimal.grid trace in
        let s, st = Beam.solve_with_stats ~beam_width:w ~prior p trace in
        ( Unix.gettimeofday () -. t0,
          s,
          st.Beam.base.Optimal.expanded,
          st.Beam.dropped_by_beam,
          st.Beam.prior_hits )
  in
  let results = Pool.map ?pool:ctx.pool solve_point points in
  let cost s = Schedule.cost s ~reneg_cost:alpha ~bandwidth_cost:1. in
  (* Exact wall/cost per grid size, for speedup and gap columns. *)
  let exact =
    List.filter_map
      (fun (pt, (wall, s, _, _, _)) ->
        match pt with `Exact m -> Some (m, (wall, cost s)) | `Beam _ -> None)
      (List.combine points results)
  in
  pf "@.%8s %7s %10s %12s %10s %9s %8s@." "levels" "width" "wall (s)" "nodes"
    "cost gap" "speedup" "renegs";
  let rows = ref [] and checksums = ref [] in
  List.iter2
    (fun pt (wall, s, expanded, dropped, prior_hits) ->
      let m, width = match pt with `Exact m -> (m, 0) | `Beam (m, w) -> (m, w) in
      let exact_wall, exact_cost = List.assoc m exact in
      let c = cost s in
      let gap = (c -. exact_cost) /. exact_cost in
      let speedup = exact_wall /. wall in
      (match pt with
      | `Exact _ ->
          pf "%8d %7s %10.3f %12d %10s %9s %8d@." m "exact" wall expanded "-"
            "-"
            (Schedule.n_renegotiations s)
      | `Beam _ ->
          pf "%8d %7d %10.3f %12d %9.2f%% %8.1fx %8d@." m width wall expanded
            (100. *. gap) speedup
            (Schedule.n_renegotiations s));
      checksums := Json.Int (schedule_checksum s) :: !checksums;
      rows :=
        Json.Obj
          [
            ("levels", Json.Int m);
            ("width", Json.Int width);
            ("wall_s", Json.Float wall);
            ("expanded_nodes", Json.Int expanded);
            ("dropped_by_beam", Json.Int dropped);
            ("prior_hits", Json.Int prior_hits);
            ("cost", Json.Float c);
            ("gap_pct", Json.Float (100. *. gap));
            ("speedup", Json.Float speedup);
            ("renegotiations", Json.Int (Schedule.n_renegotiations s));
          ]
        :: !rows)
    points results;
  (* Receding-horizon controller (Online.run_receding) vs the paper's
     AR(1) + threshold heuristic, on the same grid the sweep used. *)
  let rlen = min 3_000 ctx.frames in
  let rtrace = Trace.sub ctx.trace ~pos:0 ~len:rlen in
  let op =
    Optimal.default_params ~levels:50 ~buffer:ctx.buffer ~cost_ratio:alpha
      rtrace
  in
  let op = { op with Optimal.constraint_ = Optimal.Buffer_bound 150_000. } in
  let predictor = Predictor.ar1 ~eta:Online.default_params.Online.ar_coefficient in
  let receding, rstats =
    Online.run_receding ~buffer:ctx.buffer Online.default_params ~opt:op
      ~beam_width:8
      ~prior:(Beam.of_trace ~grid:op.Optimal.grid rtrace)
      ~horizon:12 ~predictor rtrace
  in
  let ar1 = Online.run_custom ~buffer:ctx.buffer Online.default_params ~predictor rtrace in
  pf "@.receding-horizon controller vs AR(1) heuristic (%d slots, M = 50):@."
    rlen;
  let controller_row label (o : Online.outcome) =
    pf "  %-10s cost %.4e  renegs %4d  lost %.3g  max backlog %8.0f@." label
      (cost o.Online.schedule)
      (Schedule.n_renegotiations o.Online.schedule)
      o.Online.bits_lost o.Online.max_backlog;
    checksums := Json.Int (schedule_checksum o.Online.schedule) :: !checksums;
    Json.Obj
      [
        ("controller", Json.String label);
        ("cost", Json.Float (cost o.Online.schedule));
        ("renegotiations", Json.Int (Schedule.n_renegotiations o.Online.schedule));
        ("bits_lost", Json.Float o.Online.bits_lost);
        ("max_backlog", Json.Float o.Online.max_backlog);
      ]
  in
  let receding_row = controller_row "receding" receding in
  let ar1_row = controller_row "ar1" ar1 in
  pf "  (receding: %d windows solved, %d infeasible, %d nodes expanded)@."
    rstats.Online.solves rstats.Online.infeasible_windows rstats.Online.expanded;
  emit ctx "sweep" (Json.List (List.rev !rows));
  emit ctx "controllers" (Json.List [ receding_row; ar1_row ]);
  emit ctx "receding_solves" (Json.Int rstats.Online.solves);
  emit ctx "receding_infeasible" (Json.Int rstats.Online.infeasible_windows);
  emit ctx "schedule_checksums" (Json.List (List.rev !checksums))

(* --- svc-compare: service models over one workload (DESIGN.md #15) -- *)

let svc_compare ctx =
  section
    "Svc-compare -- renegotiate vs downgrade vs MTS profile (DESIGN.md par. \
     15)";
  let module SC = Rcbr_sim.Svc_compare in
  let cfg = SC.default () in
  let cfg = if ctx.smoke then { cfg with SC.calls = 256 } else cfg in
  pf "%dx%d mesh (%.0f b/s links), %d calls x %d pieces, one seeded workload@."
    cfg.SC.rows cfg.SC.cols cfg.SC.capacity cfg.SC.calls cfg.SC.pieces_per_call;
  let m = SC.run ?pool:ctx.pool cfg in
  pf "@.%-12s %8s %8s %6s %6s %8s %8s %7s %7s@." "model" "admitted" "blocked"
    "dngr" "upgr" "block_p" "dngr_p" "util" "jain";
  let rows =
    Array.to_list
      (Array.map
         (fun (r : SC.model_metrics) ->
           pf "%-12s %8d %8d %6d %6d %8.4f %8.4f %7.4f %7.4f@." r.SC.model
             r.SC.admitted r.SC.blocked r.SC.downgrades r.SC.upgrades
             r.SC.blocking_probability r.SC.downgrade_probability
             r.SC.mean_utilization r.SC.jain_fairness;
           pf "%-12s smg %.3f, %d/%d increases denied, %d departures@." ""
             r.SC.smg r.SC.reneg_denied r.SC.reneg_attempts r.SC.departures;
           Json.Obj
             [
               ("model", Json.String r.SC.model);
               ("admitted", Json.Int r.SC.admitted);
               ("blocked", Json.Int r.SC.blocked);
               ("downgrades", Json.Int r.SC.downgrades);
               ("upgrades", Json.Int r.SC.upgrades);
               ("blocking_probability", Json.Float r.SC.blocking_probability);
               ("downgrade_probability", Json.Float r.SC.downgrade_probability);
               ("mean_utilization", Json.Float r.SC.mean_utilization);
               ("smg", Json.Float r.SC.smg);
               ("jain_fairness", Json.Float r.SC.jain_fairness);
             ])
         m.SC.models)
  in
  let audit =
    Array.fold_left
      (fun acc (r : SC.model_metrics) -> acc + r.SC.audit_violations)
      0 m.SC.models
  in
  let checksum =
    Array.fold_left
      (fun h (r : SC.model_metrics) ->
        ((h * 1_000_003) + r.SC.outcome_hash) land max_int)
      0 m.SC.models
  in
  pf "@.outcome checksum %d (identical for every -j)@." checksum;
  emit ctx "models" (Json.List rows);
  emit ctx "decisions" (Json.Int (Array.length m.SC.models * cfg.SC.calls));
  emit ctx "decision_hashes"
    (Json.List
       (Array.to_list
          (Array.map (fun (r : SC.model_metrics) -> Json.Int r.SC.decision_hash)
             m.SC.models)));
  emit ctx "result_checksum" (Json.Int checksum);
  emit ctx "audit_violations" (Json.Int audit)

(* --- driver --------------------------------------------------------- *)

let experiments =
  [
    ("tableA", table_a);
    ("fig2", fig2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("mbac-admit", mbac_admit);
    ("chernoff-sweep", chernoff_sweep);
    ("megacall", megacall);
    ("analysis", analysis);
    ("predictors", predictors);
    ("latency", latency);
    ("descriptors", descriptors);
    ("smoothing", smoothing);
    ("adaptation", adaptation);
    ("cells", cells);
    ("multihop", multihop);
    ("mesh", mesh);
    ("svc-compare", svc_compare);
    ("advance", advance);
    ("protection", protection);
    ("interactive", interactive);
    ("mixture", mixture);
    ("beam", beam_experiment);
    ("micro", micro);
  ]

(* The CI-sized default set: one experiment per subsystem that the
   BENCH trajectory tracks (trellis, SMG sweep, MBAC grid, event
   simulation, micro-kernels). *)
let smoke_set =
  [
    "tableA";
    "fig2";
    "fig6";
    "fig7";
    "mbac-admit";
    "chernoff-sweep";
    "megacall";
    "multihop";
    "mesh";
    "svc-compare";
    "beam";
    "micro";
  ]

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let json_dir = ref None in
  let full = ref false in
  let smoke = ref false in
  let named = ref [] in
  (* Both help texts are generated from the [experiments] assoc list so
     they cannot drift as experiments are added. *)
  let print_usage ppf =
    Format.fprintf ppf
      "usage: main.exe [experiment...] [--full] [--smoke] [-j N] \
       [--json[=DIR]]@.experiments: %s@.smoke set: %s@."
      (String.concat " " (List.map fst experiments))
      (String.concat " " smoke_set)
  in
  let usage () =
    print_usage Format.err_formatter;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | ("-h" | "--help" | "help") :: _ ->
        print_usage Format.std_formatter;
        exit 0
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest
        | _ ->
            Format.eprintf "invalid job count %S@." n;
            usage ())
    | [ ("-j" | "--jobs") ] ->
        Format.eprintf "missing job count@.";
        usage ()
    | "--json" :: rest ->
        if !json_dir = None then json_dir := Some ".";
        parse rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--json=" ->
        json_dir := Some (String.sub arg 7 (String.length arg - 7));
        parse rest
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "all" :: rest -> parse rest
    | name :: rest ->
        named := name :: !named;
        parse rest
  in
  parse (Array.to_list Sys.argv |> List.tl);
  let named = List.rev !named in
  let lookup name =
    match List.assoc_opt name experiments with
    | Some f -> (name, f)
    | None ->
        Format.eprintf "unknown experiment %S; known: %s@." name
          (String.concat ", " (List.map fst experiments));
        exit 2
  in
  let chosen =
    if named <> [] then List.map lookup named
    else if !smoke then List.map lookup smoke_set
    else experiments
  in
  let pool = if !jobs <= 1 then None else Some (Pool.create ~jobs:!jobs ()) in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool) @@ fun () ->
  pf "RCBR reproduction harness -- %s trace (%d frames), %d job%s@."
    (if !full then "full" else if !smoke then "smoke" else "reduced")
    (if !full then Synthetic.default_frames else if !smoke then 3_000 else 20_000)
    !jobs
    (if !jobs = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let ctx, ctx_stats = make_ctx ~full:!full ~smoke:!smoke ~pool in
  let ctx_wall = Unix.gettimeofday () -. t0 in
  pf "context ready in %.1f s (schedule: %d renegotiations, every %.1f s)@."
    ctx_wall
    (Schedule.n_renegotiations ctx.schedule)
    (Schedule.mean_renegotiation_interval ctx.schedule);
  let bench_file name fields =
    match !json_dir with
    | None -> ()
    | Some dir ->
        let common =
          [
            ("experiment", Json.String name);
            ("jobs", Json.Int !jobs);
            ("seed", Json.Int trace_seed);
            ("frames", Json.Int ctx.frames);
            ("smoke", Json.Bool !smoke);
            ("full", Json.Bool !full);
          ]
        in
        Json.save
          (Json.Obj (common @ fields))
          (Filename.concat dir ("BENCH_" ^ name ^ ".json"))
  in
  (* The context build is itself the trellis hot path (the reference
     schedule solve), so it gets its own trajectory record. *)
  bench_file "context"
    [
      ("wall_s", Json.Float ctx_wall);
      ("expanded_nodes", Json.Int ctx_stats.Optimal.expanded);
      ("max_frontier", Json.Int ctx_stats.Optimal.max_frontier);
    ];
  List.iter
    (fun (name, f) ->
      ctx.extras := [];
      let t = Unix.gettimeofday () in
      f ctx;
      let wall = Unix.gettimeofday () -. t in
      bench_file name (("wall_s", Json.Float wall) :: List.rev !(ctx.extras)))
    chosen;
  pf "@.done in %.1f s@." (Unix.gettimeofday () -. t0)
