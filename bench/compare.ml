(* Bench-trajectory regression gate.

   Usage:
     compare.exe BASELINE_DIR [FRESH_DIR] [--max-ratio R]

   Compares every BENCH_*.json in BASELINE_DIR against the file of the
   same name in FRESH_DIR (default: current directory) and exits 1 if

   - a baseline experiment has no fresh counterpart,
   - a fresh wall_s exceeds max-ratio (default 1.5) times the baseline
     (sub-10ms baselines are skipped — pure noise), or
   - any decision/identity field present in both records differs:
     [decision_hashes], [result_checksum], [schedule_checksums],
     [decisions], [decisions_identical], [results_identical],
     [grid_points], [queries], [concurrent_calls],
     [audit_violations].  These capture
     the admit/deny sequences and solver answers, so a mismatch means
     the numerics changed, not just the machine.

   Timing fields other than wall_s (bechamel ns, per-sweep wall_s
   inside extras) are informational and not gated. *)

module Json = Rcbr_util.Json

let identity_fields =
  [
    "decision_hashes";
    "result_checksum";
    "schedule_checksums";
    "decisions";
    "decisions_identical";
    "results_identical";
    "grid_points";
    "queries";
    "concurrent_calls";
    "audit_violations";
  ]

let failures = ref 0

let fail fmt =
  Format.kasprintf
    (fun msg ->
      incr failures;
      Format.printf "FAIL %s@." msg)
    fmt

let float_of = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let compare_experiment ~max_ratio name baseline fresh =
  (match (Json.member "wall_s" baseline, Json.member "wall_s" fresh) with
  | Some b, Some f -> (
      match (float_of b, float_of f) with
      | Some b, Some f when b >= 0.01 ->
          let ratio = f /. b in
          if ratio > max_ratio then
            fail "%s: wall_s %.3fs vs baseline %.3fs (%.2fx > %.2fx)" name f b
              ratio max_ratio
          else
            Format.printf "ok   %s: wall_s %.3fs vs %.3fs (%.2fx)@." name f b
              ratio
      | _ -> Format.printf "ok   %s: wall_s below noise floor, skipped@." name)
  | _ -> Format.printf "ok   %s: no wall_s field@." name);
  List.iter
    (fun field ->
      match (Json.member field baseline, Json.member field fresh) with
      | Some b, Some f ->
          if compare b f <> 0 then
            fail "%s: %s differs (baseline %s, fresh %s)" name field
              (Json.to_string b) (Json.to_string f)
      | _ -> ())
    identity_fields

let bench_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let max_ratio = ref 1.5 in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--max-ratio" :: r :: rest -> (
        match float_of_string_opt r with
        | Some v when v > 0. ->
            max_ratio := v;
            parse rest
        | _ ->
            Format.eprintf "invalid --max-ratio %S@." r;
            exit 2)
    | arg :: rest ->
        dirs := arg :: !dirs;
        parse rest
  in
  parse args;
  let baseline_dir, fresh_dir =
    match List.rev !dirs with
    | [ b ] -> (b, ".")
    | [ b; f ] -> (b, f)
    | _ ->
        Format.eprintf
          "usage: compare.exe BASELINE_DIR [FRESH_DIR] [--max-ratio R]@.";
        exit 2
  in
  let baselines = bench_files baseline_dir in
  if baselines = [] then begin
    Format.eprintf "no BENCH_*.json in %s@." baseline_dir;
    exit 2
  end;
  List.iter
    (fun file ->
      let name = Filename.chop_suffix file ".json" in
      let fresh_path = Filename.concat fresh_dir file in
      if not (Sys.file_exists fresh_path) then
        fail "%s: missing from %s" name fresh_dir
      else
        match
          ( Json.load (Filename.concat baseline_dir file),
            Json.load fresh_path )
        with
        | baseline, fresh -> compare_experiment ~max_ratio:!max_ratio name baseline fresh
        | exception Json.Parse_error msg -> fail "%s: %s" name msg)
    baselines;
  if !failures > 0 then begin
    Format.printf "@.%d regression(s) against %s@." !failures baseline_dir;
    exit 1
  end
  else Format.printf "@.all %d experiments within bounds@." (List.length baselines)
