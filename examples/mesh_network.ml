(* A call-level RCBR experiment on an arbitrary mesh (lib/net).

   The Section III-C simulations used chains and parallel equal-length
   routes; [Rcbr_net.Topology] lifts that restriction.  Here three
   routes of different lengths connect the same endpoints — a direct
   link, a 2-hop detour and a 3-hop detour — and the two detours share
   their final link.  Transit calls are balanced across the routes,
   every link carries local cross traffic, and a second run injects
   signalling-cell loss plus a crash of the shared link while the
   conservation invariants audit every link's demand.

   Run with:  dune exec examples/mesh_network.exe *)

module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Topology = Rcbr_net.Topology
module Multihop = Rcbr_sim.Multihop
module Session = Rcbr_net.Session

let () =
  (* A renegotiated schedule for a short synthetic movie: this is what
     every call plays, phase-shifted per call. *)
  let trace = Synthetic.star_wars ~frames:2_000 ~seed:42 () in
  let schedule =
    Optimal.solve (Optimal.default_params ~cost_ratio:3e5 trace) trace
  in
  let capacity = 10. *. Trace.mean_rate trace in

  (* Node 0 to node 1 by three routes: direct (link 0), via node 2
     (links 1,2), via nodes 3 and 2 (links 3,4,2).  Link 2 is shared by
     both detours. *)
  let link src dst = { Topology.src; dst; capacity } in
  let topology =
    Topology.make ~n_nodes:4
      ~links:[| link 0 1; link 0 2; link 2 1; link 0 3; link 3 2 |]
      ~routes:[| [| 0 |]; [| 1; 2 |]; [| 3; 4; 2 |] |]
  in
  Format.printf "topology: %a@." Topology.pp topology;

  let nc =
    {
      Multihop.schedule;
      topology;
      transit_calls = 6;
      local_calls_per_link = 4;
      horizon = 4. *. Schedule.duration schedule;
      seed = 7;
      balance = true;
      service = Rcbr_policy.Service_model.Renegotiate;
    }
  in
  let report label ((m : Multihop.metrics), (f : Multihop.fault_metrics)) =
    Format.printf
      "%s: transit %d/%d denied, local %d/%d denied, hop util %.3f@." label
      m.Multihop.transit_denials m.Multihop.transit_attempts
      m.Multihop.local_denials m.Multihop.local_attempts
      m.Multihop.mean_hop_utilization;
    if f.Multihop.rm_lost > 0 || f.Multihop.crash_denials > 0 then
      Format.printf
        "   faults: %d cells lost, %d retransmits, %d abandoned, %d crash \
         denials@."
        f.Multihop.rm_lost f.Multihop.retransmits f.Multihop.abandoned
        f.Multihop.crash_denials;
    Format.printf "   invariant failures: %d@." f.Multihop.invariant_failures
  in

  (* Fault-free, with the demand-conservation audit on. *)
  report "clean "
    (Multihop.run_net nc
       { Session.no_faults with Session.check_invariants = true });

  (* Lossy signalling plus a crash of the shared link 2: both detours
     lose their last hop for 300 simulated seconds, so the balancer's
     only working route is the direct link. *)
  report "faulty"
    (Multihop.run_net nc
       {
         Session.no_faults with
         Session.rm_drop = 0.15;
         retx_timeout = 0.05;
         crashes = [ (2, 100., 400.) ];
         fault_seed = 99;
         check_invariants = true;
       })
