(* CLI: generate and inspect synthetic multiple time-scale video traces.

   Examples:
     rcbr_trace generate --seed 42 --frames 171000 -o star_wars.trace
     rcbr_trace stats star_wars.trace
     rcbr_trace sigma-rho star_wars.trace --target 1e-6 *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Sigma_rho = Rcbr_queue.Sigma_rho

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let frames_arg =
  Arg.(
    value
    & opt int Synthetic.default_frames
    & info [ "frames" ] ~docv:"N" ~doc:"Number of frames to generate.")

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")

let generate seed frames output =
  let t = Synthetic.star_wars ~frames ~seed () in
  Trace.save t output;
  Format.printf "wrote %s:@.%a@." output Trace.pp_summary t

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a Star Wars-like synthetic trace.")
    Term.(const generate $ seed_arg $ frames_arg $ output_arg)

let stats file =
  let t = Trace.load file in
  Format.printf "%a@." Trace.pp_summary t;
  let mean = Trace.mean_rate t in
  List.iter
    (fun mult ->
      let run = Trace.sustained_peak t ~threshold:(mult *. mean) in
      Format.printf "longest run >= %.1fx mean: %.2f s@." mult
        (float_of_int run /. Trace.fps t))
    [ 2.; 3.; 4. ]

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print summary statistics of a trace file.")
    Term.(const stats $ trace_file_arg)

let target_arg =
  Arg.(
    value & opt float 1e-6
    & info [ "target" ] ~docv:"LOSS" ~doc:"Bit-loss fraction target.")

let sigma_rho file target =
  let t = Trace.load file in
  let mean = Trace.mean_rate t in
  let buffers =
    [| 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8; 2e8 |]
  in
  Format.printf "buffer_bits  min_rate_bps  rate/mean@.";
  Array.iter
    (fun (b, r) -> Format.printf "%11.0f  %12.0f  %9.3f@." b r (r /. mean))
    (Sigma_rho.curve ~trace:t ~buffers ~target_loss:target ())

let sigma_rho_cmd =
  Cmd.v
    (Cmd.info "sigma-rho"
       ~doc:"Minimum drain rate as a function of buffer size (Fig. 5).")
    Term.(const sigma_rho $ trace_file_arg $ target_arg)

(* Parameter validation in the library raises [Invalid_argument] with a
   self-describing message; surface it as a usage error instead of a
   crash. *)
let or_usage_error f =
  try f ()
  with Invalid_argument msg ->
    Format.eprintf "rcbr_trace: %s@." msg;
    exit Cmdliner.Cmd.Exit.cli_error

(* --- receding: beam-trellis receding-horizon renegotiation --- *)

module Optimal = Rcbr_core.Optimal
module Beam = Rcbr_core.Beam
module Online = Rcbr_core.Online
module Predictor = Rcbr_core.Predictor
module Schedule = Rcbr_core.Schedule

type beam_prior_kind = Prior_trace | Prior_chain | Prior_uniform

let beam_prior_conv =
  let parse = function
    | "trace" -> Ok Prior_trace
    | "chain" -> Ok Prior_chain
    | "uniform" -> Ok Prior_uniform
    | s ->
        Error (`Msg (Printf.sprintf "unknown prior %S (trace|chain|uniform)" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with
      | Prior_trace -> "trace"
      | Prior_chain -> "chain"
      | Prior_uniform -> "uniform")
  in
  Arg.conv (parse, print)

let make_prior ~grid ~trace = function
  | Prior_uniform -> Beam.Uniform
  | Prior_trace -> Beam.of_trace ~grid trace
  | Prior_chain ->
      (* The calibrated multiple time-scale model behind the generator,
         flattened to one chain; per-state rates are data/slot, scaled
         by fps to b/s. *)
      let ms = Synthetic.to_multiscale Synthetic.star_wars_params in
      let flat = Rcbr_markov.Multiscale.flatten ms in
      let rates =
        Array.map
          (fun r -> r *. Trace.fps trace)
          (Rcbr_markov.Modulated.rates flat)
      in
      Beam.of_chain ~grid ~rates (Rcbr_markov.Modulated.chain flat)

let receding file seed frames beam_width beam_prior horizon levels cost_ratio
    buffer plan_bound delay_slots every_slot =
  let trace =
    match file with
    | Some f -> Trace.load f
    | None -> Synthetic.star_wars ~frames ~seed ()
  in
  let opt =
    let p = Optimal.default_params ~levels ~buffer ~cost_ratio trace in
    { p with Optimal.constraint_ = Optimal.Buffer_bound plan_bound }
  in
  let prior = make_prior ~grid:opt.Optimal.grid ~trace beam_prior in
  let p = Online.default_params in
  let predictor ~initial = Predictor.ar1 ~eta:p.Online.ar_coefficient ~initial in
  let cost s =
    Schedule.cost s ~reneg_cost:cost_ratio ~bandwidth_cost:1.
  in
  let outcome, st =
    or_usage_error (fun () ->
        Online.run_receding ~delay_slots ~buffer ~resolve_every_slot:every_slot
          ~beam_width ~prior p ~opt ~horizon ~predictor trace)
  in
  let baseline = Online.run_custom ~delay_slots ~buffer p ~predictor trace in
  let row label (o : Online.outcome) =
    Format.printf "%-14s  cost %.4e  renegs %4d  lost %.3e  max backlog %8.0f@."
      label (cost o.Online.schedule)
      (Schedule.n_renegotiations o.Online.schedule)
      o.Online.bits_lost o.Online.max_backlog
  in
  Format.printf
    "receding horizon: %d slots ahead, beam %d over %d levels, plan bound \
     %.0f of %.0f bits@."
    horizon beam_width (Rcbr_core.Rate_grid.levels opt.Optimal.grid) plan_bound
    buffer;
  row "receding beam" outcome;
  row "ar1 heuristic" baseline;
  Format.printf
    "windows solved %d (%d infeasible), nodes expanded %d, dropped by beam \
     %d, prior hits %d@."
    st.Online.solves st.Online.infeasible_windows st.Online.expanded
    st.Online.dropped_by_beam st.Online.prior_hits

let receding_cmd =
  let opt_trace_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (generated when omitted).")
  in
  let beam_arg =
    Arg.(
      value & opt int 8
      & info [ "beam" ] ~docv:"K"
          ~doc:"Beam width: trellis states kept per lookahead stage.")
  in
  let beam_prior_arg =
    Arg.(
      value
      & opt beam_prior_conv Prior_trace
      & info [ "beam-prior" ] ~docv:"PRIOR"
          ~doc:
            "Beam ranking prior: trace (level-transition histograms of the \
             input trace), chain (the calibrated Star Wars Markov model), or \
             uniform.")
  in
  let horizon_arg =
    Arg.(
      value & opt int 12
      & info [ "horizon" ] ~docv:"H" ~doc:"Lookahead window length in slots.")
  in
  let levels_arg =
    Arg.(
      value & opt int 50
      & info [ "levels" ] ~docv:"M" ~doc:"Number of bandwidth levels.")
  in
  let cost_ratio_arg =
    Arg.(
      value & opt float 2e5
      & info [ "cost-ratio" ] ~docv:"ALPHA"
          ~doc:"Renegotiation cost over bandwidth cost (bits).")
  in
  let buffer_arg =
    Arg.(
      value & opt float 300_000.
      & info [ "buffer" ] ~docv:"BITS" ~doc:"Physical end-system buffer.")
  in
  let plan_bound_arg =
    Arg.(
      value & opt float 150_000.
      & info [ "plan-bound" ] ~docv:"BITS"
          ~doc:
            "Planning headroom: lookahead windows are solved against this \
             bound, leaving buffer space for forecast error.")
  in
  let delay_slots_arg =
    Arg.(
      value & opt int 0
      & info [ "delay-slots" ] ~docv:"SLOTS" ~doc:"Signalling round-trip.")
  in
  let every_slot_arg =
    Arg.(
      value & flag
      & info [ "every-slot" ]
          ~doc:
            "Re-solve every slot and trust the solver outright (pure MPC) \
             instead of gating by the buffer thresholds.")
  in
  Cmd.v
    (Cmd.info "receding"
       ~doc:
         "Receding-horizon renegotiation: re-solve a beam-searched trellis \
          over a forecast window and compare against the AR(1) heuristic.")
    Term.(
      const receding $ opt_trace_arg $ seed_arg $ frames_arg $ beam_arg
      $ beam_prior_arg $ horizon_arg $ levels_arg $ cost_ratio_arg $ buffer_arg
      $ plan_bound_arg $ delay_slots_arg $ every_slot_arg)

(* --- stream: a live NIU over a faulty signalling plane --- *)

module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path
module Niu = Rcbr_signal.Niu
module Plan = Rcbr_fault.Plan
module Injector = Rcbr_fault.Injector

let crash_conv =
  let parse s =
    match List.map int_of_string_opt (String.split_on_char ':' s) with
    | [ Some hop; Some at_slot; Some recover_slot ] ->
        Ok { Plan.hop; at_slot; recover_slot }
    | _ -> Error (`Msg "expected HOP:AT:RECOVER (three integers)")
  in
  let print ppf c =
    Format.fprintf ppf "%d:%d:%d" c.Plan.hop c.Plan.at_slot c.Plan.recover_slot
  in
  Arg.conv (parse, print)

let degrade_conv =
  let parse = function
    | "ride" -> Ok Niu.Ride_out
    | "settle" -> Ok Niu.Settle
    | s -> (
        match String.split_on_char ':' s with
        | [ "scale"; q ] -> (
            match float_of_string_opt q with
            | Some q when q >= 0. && q <= 1. -> Ok (Niu.Scale q)
            | _ -> Error (`Msg "scale fraction must be a float in [0,1]"))
        | _ -> Error (`Msg "expected ride, settle or scale:Q"))
  in
  let print ppf = function
    | Niu.Ride_out -> Format.pp_print_string ppf "ride"
    | Niu.Settle -> Format.pp_print_string ppf "settle"
    | Niu.Scale q -> Format.fprintf ppf "scale:%g" q
  in
  Arg.conv (parse, print)

let stream file seed frames hops capacity_mult drop duplicate reorder delay_prob
    max_extra crashes timeout_slots max_retx backoff jitter resync degrade
    delay_slots retry_slots buffer fault_seed =
  let trace =
    match file with
    | Some f -> Trace.load f
    | None -> Synthetic.star_wars ~frames ~seed ()
  in
  let mean = Trace.mean_rate trace in
  let capacity = capacity_mult *. mean in
  let ports = List.init hops (fun _ -> Port.create ~capacity ()) in
  let online = Rcbr_core.Online.default_params in
  let g = online.Rcbr_core.Online.granularity in
  let first = Trace.frame trace 0 /. Trace.slot_duration trace in
  let initial = g *. Float.max 1. (Float.ceil (first /. g)) in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:initial in
  let plan =
    or_usage_error (fun () ->
        Plan.uniform ~drop ~duplicate ~reorder ~delay:delay_prob
          ~max_extra_slots:max_extra ~crashes ~hops ~seed:fault_seed ())
  in
  let faults =
    {
      Niu.plan;
      timeout_slots;
      max_retransmits = max_retx;
      backoff;
      jitter_slots = jitter;
      resync_slots = resync;
      degrade;
    }
  in
  let params =
    {
      Niu.online;
      buffer;
      delay_slots;
      retry_slots = (if retry_slots <= 0 then None else Some retry_slots);
      faults = Some faults;
    }
  in
  Format.printf
    "%d hops at %.0f kb/s each (%.1fx trace mean), %d slots, buffer %.0f kb@."
    hops (capacity /. 1e3) capacity_mult (Trace.length trace) (buffer /. 1e3);
  let r = or_usage_error (fun () -> Niu.stream params ~path trace) in
  Format.printf
    "@[<v>bits offered:   %.3e@,\
     bits lost:      %.3e (%.4f%%)@,\
     max backlog:    %.0f bits@,\
     attempts:       %d@,\
     denials:        %d@,\
     mean reserved:  %.0f b/s@]@."
    r.Niu.bits_offered r.Niu.bits_lost
    (if r.Niu.bits_offered > 0. then 100. *. r.Niu.bits_lost /. r.Niu.bits_offered
     else 0.)
    r.Niu.max_backlog r.Niu.attempts r.Niu.failures r.Niu.mean_reserved;
  (match r.Niu.faults with
  | None -> ()
  | Some f ->
      Format.printf
        "@[<v>%a@,\
         retransmits:    %d (worst per request %d)@,\
         timeouts:       %d@,\
         give-ups:       %d@,\
         resyncs:        %d@,\
         crashes:        %d (%d recoveries)@,\
         degraded slots: %d@,\
         bits scaled:    %.3e@,\
         invariant violations: %d@,\
         final drift:    %.3g b/s@]@."
        Injector.pp_totals f.Niu.cells f.Niu.retransmits f.Niu.worst_retransmits
        f.Niu.timeouts f.Niu.give_ups f.Niu.resyncs f.Niu.crashes
        f.Niu.recoveries f.Niu.degraded_slots f.Niu.bits_scaled
        f.Niu.invariant_violations f.Niu.final_drift);
  Path.teardown path;
  let leak =
    List.fold_left
      (fun acc p -> Float.max acc (Float.abs (Port.reserved p)))
      0. ports
  in
  Format.printf "post-teardown residual reservation: %.3g b/s@." leak

let stream_cmd =
  let opt_trace_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (generated when omitted).")
  in
  let hops_arg =
    Arg.(value & opt int 3 & info [ "hops" ] ~docv:"N" ~doc:"Path length.")
  in
  let capacity_arg =
    Arg.(
      value & opt float 4.
      & info [ "capacity-mult" ] ~docv:"K"
          ~doc:"Per-hop capacity as a multiple of the trace mean rate.")
  in
  let prob name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)
  in
  let drop_arg = prob "drop" "Per-hop RM-cell drop probability." in
  let duplicate_arg = prob "duplicate" "Per-hop duplication probability." in
  let reorder_arg = prob "reorder" "Per-hop reordering probability." in
  let delay_prob_arg = prob "delay-prob" "Per-hop queueing-delay probability." in
  let max_extra_arg =
    Arg.(
      value & opt int 4
      & info [ "max-extra" ] ~docv:"SLOTS" ~doc:"Worst extra delay in slots.")
  in
  let crash_arg =
    Arg.(
      value & opt_all crash_conv []
      & info [ "crash" ] ~docv:"HOP:AT:RECOVER"
          ~doc:"Crash window for a hop, in slots (repeatable).")
  in
  let timeout_arg =
    Arg.(
      value & opt int 8
      & info [ "timeout-slots" ] ~docv:"SLOTS"
          ~doc:"Slots without a response before retransmitting.")
  in
  let max_retx_arg =
    Arg.(
      value & opt int 6
      & info [ "max-retx" ] ~docv:"N" ~doc:"Retransmissions before giving up.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 2.
      & info [ "backoff" ] ~docv:"X" ~doc:"Timeout multiplier per retry.")
  in
  let jitter_arg =
    Arg.(
      value & opt int 2
      & info [ "jitter" ] ~docv:"SLOTS" ~doc:"Uniform extra timeout jitter.")
  in
  let resync_arg =
    Arg.(
      value & opt int 120
      & info [ "resync" ] ~docv:"SLOTS"
          ~doc:"Absolute-rate resync period (0 disables).")
  in
  let degrade_arg =
    Arg.(
      value
      & opt degrade_conv Niu.Settle
      & info [ "degrade" ] ~docv:"POLICY"
          ~doc:"Degradation policy: ride, settle, or scale:Q.")
  in
  let delay_slots_arg =
    Arg.(
      value & opt int 0
      & info [ "delay-slots" ] ~docv:"SLOTS" ~doc:"Signalling round-trip.")
  in
  let retry_arg =
    Arg.(
      value & opt int 24
      & info [ "retry-slots" ] ~docv:"SLOTS"
          ~doc:"Re-issue a denied request after this many slots (0: never).")
  in
  let buffer_arg =
    Arg.(
      value & opt float 300_000.
      & info [ "buffer" ] ~docv:"BITS" ~doc:"End-system buffer size.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Root of all fault randomness.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream a live source across a faulty multi-hop signalling plane \
          and report the NIU's resilience metrics.")
    Term.(
      const stream $ opt_trace_arg $ seed_arg $ frames_arg $ hops_arg
      $ capacity_arg $ drop_arg $ duplicate_arg $ reorder_arg $ delay_prob_arg
      $ max_extra_arg $ crash_arg $ timeout_arg $ max_retx_arg $ backoff_arg
      $ jitter_arg $ resync_arg $ degrade_arg $ delay_slots_arg $ retry_arg
      $ buffer_arg $ fault_seed_arg)

let () =
  let info =
    Cmd.info "rcbr_trace" ~version:"1.0"
      ~doc:"Synthetic multiple time-scale video traces."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; stats_cmd; sigma_rho_cmd; receding_cmd; stream_cmd ]))
