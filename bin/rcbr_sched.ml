(* CLI: compute RCBR renegotiation schedules for a trace.

   Examples:
     rcbr_sched optimal star_wars.trace --cost-ratio 2e5 --buffer 300000
     rcbr_sched online star_wars.trace --granularity 100000
     rcbr_sched optimal star_wars.trace --delay-slots 24 --segments *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Optimal = Rcbr_core.Optimal
module Beam = Rcbr_core.Beam
module Online = Rcbr_core.Online
module Fluid = Rcbr_queue.Fluid

(* Beam prior selection, shared by the [optimal] and [receding]
   consumers of the beam solver: learn from the trace itself, from the
   Star Wars Markov traffic model (Section V-A), or keep it uniform. *)
type beam_prior_kind = Prior_trace | Prior_chain | Prior_uniform

let beam_prior_conv =
  let parse = function
    | "trace" -> Ok Prior_trace
    | "chain" -> Ok Prior_chain
    | "uniform" -> Ok Prior_uniform
    | s -> Error (`Msg (Printf.sprintf "unknown prior %S (trace|chain|uniform)" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with
      | Prior_trace -> "trace"
      | Prior_chain -> "chain"
      | Prior_uniform -> "uniform")
  in
  Arg.conv (parse, print)

let make_prior ~grid ~trace kind =
  match kind with
  | Prior_uniform -> Beam.Uniform
  | Prior_trace -> Beam.of_trace ~grid trace
  | Prior_chain ->
      (* The calibrated multiple time-scale model of the synthetic
         source, flattened to a single chain; per-state rates are
         data/slot, scaled by fps to b/s. *)
      let ms =
        Rcbr_traffic.Synthetic.to_multiscale
          Rcbr_traffic.Synthetic.star_wars_params
      in
      let flat = Rcbr_markov.Multiscale.flatten ms in
      let rates =
        Array.map
          (fun r -> r *. Trace.fps trace)
          (Rcbr_markov.Modulated.rates flat)
      in
      Beam.of_chain ~grid ~rates (Rcbr_markov.Modulated.chain flat)

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")

let buffer_arg =
  Arg.(
    value & opt float 300_000.
    & info [ "buffer" ] ~docv:"BITS" ~doc:"End-system buffer bound in bits.")

let segments_flag =
  Arg.(
    value & flag
    & info [ "segments" ] ~doc:"Also print every (slot, rate) segment.")

let report ~trace ~buffer ~segments sched =
  Format.printf "%a@." Schedule.pp sched;
  Format.printf "bandwidth efficiency: %.4f@."
    (Schedule.bandwidth_efficiency sched ~trace);
  let r = Schedule.simulate_buffer sched ~trace ~capacity:buffer in
  Format.printf "buffer simulation: loss %.3g, peak backlog %.0f bits@."
    (Fluid.loss_fraction r) r.Fluid.max_backlog;
  if segments then
    Array.iter
      (fun s ->
        Format.printf "%8d  %12.0f@." s.Schedule.start_slot s.Schedule.rate)
      (Schedule.segments sched)

let optimal file cost_ratio buffer levels delay_slots beam beam_prior segments =
  let trace = Trace.load file in
  let params = Optimal.default_params ~levels ~buffer ~cost_ratio trace in
  let params =
    match delay_slots with
    | None -> params
    | Some d -> { params with Optimal.constraint_ = Optimal.Delay_bound d }
  in
  let sched =
    match beam with
    | None ->
        let sched, stats = Optimal.solve_with_stats params trace in
        Format.printf
          "trellis: %d slots, %d nodes expanded, peak frontier %d, pruned %d \
           (lemma) + %d (cap)@."
          stats.Optimal.slots stats.Optimal.expanded stats.Optimal.max_frontier
          stats.Optimal.pruned_by_lemma stats.Optimal.pruned_by_cap;
        sched
    | Some beam_width ->
        let prior = make_prior ~grid:params.Optimal.grid ~trace beam_prior in
        let sched, st =
          Beam.solve_with_stats ~beam_width ~prior params trace
        in
        Format.printf
          "beam trellis (width %d): %d slots, %d nodes expanded, peak \
           frontier %d, kept %d, dropped by beam %d, prior hits %d@."
          beam_width st.Beam.base.Optimal.slots st.Beam.base.Optimal.expanded
          st.Beam.base.Optimal.max_frontier st.Beam.kept st.Beam.dropped_by_beam
          st.Beam.prior_hits;
        sched
  in
  report ~trace ~buffer ~segments sched

let cost_ratio_arg =
  Arg.(
    value & opt float 2e5
    & info [ "cost-ratio" ] ~docv:"ALPHA"
        ~doc:"Renegotiation cost over bandwidth cost (bits).")

let levels_arg =
  Arg.(
    value & opt int 20
    & info [ "levels" ] ~docv:"M" ~doc:"Number of bandwidth levels.")

let delay_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "delay-slots" ] ~docv:"D"
        ~doc:"Use a delay bound of D slots instead of the buffer bound.")

let beam_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "beam" ] ~docv:"K"
        ~doc:
          "Beam width: keep only the K best trellis states per stage \
           (default: exact solve).")

let beam_prior_arg =
  Arg.(
    value
    & opt beam_prior_conv Prior_trace
    & info [ "beam-prior" ] ~docv:"PRIOR"
        ~doc:
          "Beam ranking prior: trace (level-transition histograms of the \
           input trace), chain (the calibrated Star Wars Markov model), or \
           uniform.")

let optimal_cmd =
  Cmd.v
    (Cmd.info "optimal" ~doc:"Optimal offline schedule (Viterbi trellis).")
    Term.(
      const optimal $ trace_file_arg $ cost_ratio_arg $ buffer_arg $ levels_arg
      $ delay_arg $ beam_arg $ beam_prior_arg $ segments_flag)

let online file granularity b_low b_high flush buffer segments =
  let trace = Trace.load file in
  let params =
    {
      Online.default_params with
      Online.granularity;
      b_low;
      b_high;
      flush_slots = flush;
    }
  in
  let o = Online.run params trace in
  Format.printf "online heuristic: peak backlog %.0f bits@." o.Online.max_backlog;
  report ~trace ~buffer ~segments o.Online.schedule

let granularity_arg =
  Arg.(
    value & opt float 100_000.
    & info [ "granularity" ] ~docv:"DELTA" ~doc:"Bandwidth granularity (b/s).")

let b_low_arg =
  Arg.(
    value & opt float 10_000.
    & info [ "b-low" ] ~docv:"BITS" ~doc:"Lower buffer threshold.")

let b_high_arg =
  Arg.(
    value & opt float 150_000.
    & info [ "b-high" ] ~docv:"BITS" ~doc:"Upper buffer threshold.")

let flush_arg =
  Arg.(
    value & opt int 5
    & info [ "flush-slots" ] ~docv:"T" ~doc:"Flush time constant in slots.")

let online_cmd =
  Cmd.v
    (Cmd.info "online" ~doc:"Causal AR(1) + threshold heuristic.")
    Term.(
      const online $ trace_file_arg $ granularity_arg $ b_low_arg $ b_high_arg
      $ flush_arg $ buffer_arg $ segments_flag)

let () =
  let info =
    Cmd.info "rcbr_sched" ~version:"1.0"
      ~doc:"RCBR renegotiation schedule computation."
  in
  exit (Cmd.eval (Cmd.group info [ optimal_cmd; online_cmd ]))
