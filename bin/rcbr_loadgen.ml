(* CLI: deterministic signalling load generator for rcbr_switchd.

   Drives a seeded setup/renegotiate/teardown storm (Rcbr_wire.Loadgen)
   over one or more Unix-socket connections, optionally mangling its own
   outbound frames with a seeded byte-level fault model
   (Rcbr_wire.Mangle reusing Rcbr_fault.Plan probabilities).  Requests
   carry idempotent ids and are retransmitted with exponential backoff;
   after the storm a reliable finish phase re-sends every teardown and
   asks the switch for a conservation audit, so the run ends with a
   definite verdict: exit 0 iff the switch is empty and conserving.

   The printed outcome-hash digests every per-request outcome; two runs
   with the same seed against a fresh daemon must print the same hash.

   Example:
     rcbr_loadgen --socket /tmp/rcbr.sock --calls 16 --rounds 4 \
       --drop 0.1 --corrupt 0.05 --seed 7 *)

open Cmdliner
module Topology = Rcbr_net.Topology
module Plan = Rcbr_fault.Plan
module Codec = Rcbr_wire.Codec
module Frame = Rcbr_wire.Frame
module Mangle = Rcbr_wire.Mangle
module Loadgen = Rcbr_wire.Loadgen

type topo_spec = Single | Linear of int | Mesh of string

type conn = {
  fd : Unix.file_descr;
  reader : Frame.Reader.t;
  mangle : Mangle.t option;
  decode_errors : int ref;  (* server->client frames that failed to decode *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_raw c frames = List.iter (write_all c.fd) frames

(* One frame onto the wire, through this connection's mangler if any. *)
let send c frame =
  match c.mangle with
  | None -> write_all c.fd frame
  | Some m -> send_raw c (Mangle.send m frame)

(* Next well-formed message before [deadline], or None on timeout.
   Frames that fail to decode are counted and skipped — corruption is
   expected under a fault plan and must not kill the client. *)
let rec recv_until c ~deadline =
  match Frame.Reader.next c.reader with
  | `Msg m -> Some m
  | `Error _ ->
      incr c.decode_errors;
      recv_until c ~deadline
  | `Fatal e -> Fmt.failwith "rcbr_loadgen: framing lost: %a" Codec.pp_error e
  | `Await -> (
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then None
      else
        match Unix.select [ c.fd ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            recv_until c ~deadline
        | [], _, _ -> None
        | _ -> (
            let buf = Bytes.create 4096 in
            match Unix.read c.fd buf 0 4096 with
            | 0 -> Fmt.failwith "rcbr_loadgen: server closed the connection"
            | n ->
                Frame.Reader.feed c.reader buf ~off:0 ~len:n;
                recv_until c ~deadline))

(* Send [msg], wait for the reply carrying [req]; retransmit with
   exponential backoff up to [max_retx] times, then give up (None).
   Replies to other request ids (late answers to requests we already
   resolved, or duplicate answers from daemon-side idempotency) are
   skipped. *)
let request c ~timeout ~max_retx ~retransmits ~req msg =
  let frame = Codec.frame msg in
  let rec attempt i =
    if i > max_retx then None
    else begin
      if i > 0 then incr retransmits;
      send c frame;
      let deadline =
        Unix.gettimeofday () +. Loadgen.backoff ~base:timeout ~attempt:i
      in
      let rec wait () =
        match recv_until c ~deadline with
        | None -> attempt (i + 1)
        | Some reply -> (
            match Codec.req reply with
            | Some r when r = req -> Some reply
            | _ -> wait ())
      in
      wait ()
    end
  in
  attempt 0

let outcome_of_reply = function
  | None -> Loadgen.Gave_up
  | Some (Codec.Ack { applied; _ }) -> Loadgen.Acked applied
  | Some (Codec.Deny { reason; _ }) -> Loadgen.Denied reason
  | Some _ -> Loadgen.Gave_up

let run socket_path topo_spec capacity calls rounds rate_max rm_fraction seed
    conns_n timeout max_retx drop duplicate reorder delay corrupt
    max_extra_slots =
  let topology =
    match topo_spec with
    | Single -> Topology.single_link ~capacity
    | Linear hops -> Topology.linear ~hops ~capacity
    | Mesh file -> (
        match Topology.load file with
        | Ok t -> t
        | Error msg ->
            Format.eprintf "rcbr_loadgen: %s@." msg;
            exit 2)
  in
  let ops =
    Loadgen.storm ~topology ~calls ~rounds ~rate_max ~rm_fraction ~seed
      ~conns:conns_n
  in
  let lossy =
    drop > 0. || duplicate > 0. || reorder > 0. || delay > 0. || corrupt > 0.
  in
  let conns =
    Array.init conns_n (fun c ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        {
          fd;
          reader = Frame.Reader.create ();
          mangle =
            (if lossy then
               Some
                 (Mangle.create ~seed:(seed + 7001 + c)
                    (Plan.lossy ~drop ~duplicate ~reorder ~delay ~corrupt
                       ~max_extra_slots ()))
             else None);
          decode_errors = ref 0;
        })
  in
  let outcomes = ref [] in
  let retransmits = ref 0 in
  let next_req = ref 0 in
  let fresh_req () =
    let r = !next_req in
    incr next_req;
    r
  in
  let record req outcome = outcomes := (req, outcome) :: !outcomes in
  (* Lock-step round-robin over the per-connection op queues: each
     request resolves (ack, deny or give-up) before the next connection
     moves, so the order the daemon applies changes in is a pure
     function of the seed. *)
  let queues = Array.map (fun l -> ref l) ops in
  let remaining () = Array.exists (fun q -> !q <> []) queues in
  while remaining () do
    Array.iteri
      (fun c q ->
        match !q with
        | [] -> ()
        | op :: rest -> (
            q := rest;
            let conn = conns.(c) in
            let req = fresh_req () in
            let msg = Loadgen.message_of_op ~req op in
            match op with
            | Loadgen.Op_delta _ | Loadgen.Op_resync _ ->
                send conn (Codec.frame msg);
                record req Loadgen.Sent
            | Loadgen.Op_setup _ | Loadgen.Op_reneg _ | Loadgen.Op_teardown _
              ->
                record req
                  (outcome_of_reply
                     (request conn ~timeout ~max_retx ~retransmits ~req msg))))
      queues
  done;
  (* Release anything still held inside the manglers — those frames were
     "in the network" and the daemon must cope with them too. *)
  Array.iter
    (fun c ->
      match c.mangle with None -> () | Some m -> send_raw c (Mangle.flush m))
    conns;
  (* Reliable finish phase: the storm's teardowns travelled through the
     mangler, so a call may still be live on the switch (teardown gave
     up) or live again (a delayed setup released above).  Re-send every
     teardown unmangled; Deny Unknown_call just means already gone. *)
  let finish_acks = ref 0 in
  for call = 0 to calls - 1 do
    let c = { (conns.(call mod conns_n)) with mangle = None } in
    let req = fresh_req () in
    let reply =
      request c ~timeout ~max_retx:8 ~retransmits ~req
        (Codec.Teardown { req; call })
    in
    (match reply with Some (Codec.Ack _) -> incr finish_acks | _ -> ());
    record req (outcome_of_reply reply)
  done;
  (* End-to-end verdict straight from the switch. *)
  let c0 = { (conns.(0)) with mangle = None } in
  let req = fresh_req () in
  let sessions, violations, demand =
    match
      request c0 ~timeout ~max_retx:8 ~retransmits ~req
        (Codec.Audit_request { req })
    with
    | Some (Codec.Audit_reply { sessions; violations; demand; _ }) ->
        (sessions, violations, demand)
    | _ -> Fmt.failwith "rcbr_loadgen: no audit reply from the switch"
  in
  let os = !outcomes in
  let count p = List.length (List.filter p os) in
  let acked = count (fun (_, o) -> match o with Loadgen.Acked _ -> true | _ -> false) in
  let denied = count (fun (_, o) -> match o with Loadgen.Denied _ -> true | _ -> false) in
  let gave_up = count (fun (_, o) -> match o with Loadgen.Gave_up -> true | _ -> false) in
  let cells = count (fun (_, o) -> match o with Loadgen.Sent -> true | _ -> false) in
  Format.printf
    "rcbr_loadgen: requests=%d acked=%d denied=%d gave-up=%d cells=%d \
     retransmits=%d finish-acks=%d reply-decode-errors=%d@."
    (List.length os) acked denied gave_up cells !retransmits !finish_acks
    (Array.fold_left (fun acc c -> acc + !(c.decode_errors)) 0 conns);
  if lossy then begin
    let total f = Array.fold_left (fun acc c ->
        match c.mangle with None -> acc | Some m -> acc + f (Mangle.stats m)) 0 conns
    in
    Format.printf
      "rcbr_loadgen: mangler: sent=%d dropped=%d duplicated=%d reordered=%d \
       delayed=%d corrupted=%d@."
      (total (fun s -> s.Mangle.sent))
      (total (fun s -> s.Mangle.dropped))
      (total (fun s -> s.Mangle.duplicated))
      (total (fun s -> s.Mangle.reordered))
      (total (fun s -> s.Mangle.delayed))
      (total (fun s -> s.Mangle.corrupted))
  end;
  Format.printf "rcbr_loadgen: outcome-hash=%016x@." (Loadgen.outcome_hash os);
  Format.printf "rcbr_loadgen: audit: sessions=%d violations=%d demand=%.6g@."
    sessions violations demand;
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  let clean = violations = 0 && sessions = 0 && Float.abs demand < 1e-6 in
  if not clean then
    Format.printf "rcbr_loadgen: FAILED: switch not clean after drain@.";
  exit (if clean then 0 else 1)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of rcbr_switchd.")

let topo_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "single" ] -> Ok Single
    | [ "linear"; h ] -> (
        match int_of_string_opt h with
        | Some hops when hops >= 1 -> Ok (Linear hops)
        | _ -> Error (`Msg (Printf.sprintf "bad hop count in %S" s)))
    | "mesh" :: (_ :: _ as rest) -> Ok (Mesh (String.concat ":" rest))
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "topology %S is not single, linear:HOPS or mesh:FILE" s))
  in
  let print ppf = function
    | Single -> Format.pp_print_string ppf "single"
    | Linear h -> Format.fprintf ppf "linear:%d" h
    | Mesh f -> Format.fprintf ppf "mesh:%s" f
  in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(
    value & opt topo_conv Single
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:"Must match the daemon's topology so route link ids line up.")

let capacity_arg =
  Arg.(
    value & opt float 1e6
    & info [ "capacity" ] ~docv:"BPS"
        ~doc:"Per-link capacity for the built-in single/linear shapes.")

let calls_arg =
  Arg.(value & opt int 8 & info [ "calls" ] ~docv:"N" ~doc:"Calls in the storm.")

let rounds_arg =
  Arg.(
    value & opt int 3
    & info [ "rounds" ] ~docv:"N" ~doc:"Renegotiation waves per call.")

let rate_max_arg =
  Arg.(
    value & opt float 1e5
    & info [ "rate-max" ] ~docv:"BPS" ~doc:"Upper bound on requested rates.")

let rm_fraction_arg =
  Arg.(
    value & opt float 0.5
    & info [ "rm-fraction" ] ~docv:"F"
        ~doc:
          "Fraction of renegotiations sent as fire-and-forget RM delta \
           cells instead of acked renegotiation requests.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")

let conns_arg =
  Arg.(
    value & opt int 2
    & info [ "conns" ] ~docv:"N" ~doc:"Concurrent client connections.")

let timeout_arg =
  Arg.(
    value & opt float 0.2
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Base reply timeout; attempt i waits timeout * 2^i.")

let max_retx_arg =
  Arg.(
    value & opt int 4
    & info [ "max-retx" ] ~docv:"N"
        ~doc:"Retransmissions before a request is abandoned.")

let drop_arg =
  Arg.(value & opt float 0. & info [ "drop" ] ~docv:"P" ~doc:"Frame drop probability.")

let duplicate_arg =
  Arg.(
    value & opt float 0.
    & info [ "duplicate" ] ~docv:"P" ~doc:"Frame duplication probability.")

let reorder_arg =
  Arg.(
    value & opt float 0.
    & info [ "reorder" ] ~docv:"P" ~doc:"Frame reorder probability.")

let delay_arg =
  Arg.(
    value & opt float 0.
    & info [ "delay" ] ~docv:"P" ~doc:"Frame delay probability.")

let corrupt_arg =
  Arg.(
    value & opt float 0.
    & info [ "corrupt" ] ~docv:"P"
        ~doc:"Probability of one flipped payload bit per frame.")

let max_extra_slots_arg =
  Arg.(
    value & opt int 4
    & info [ "max-extra-slots" ] ~docv:"N"
        ~doc:"Delayed frames lag 1..N send slots.")

let () =
  let info =
    Cmd.info "rcbr_loadgen" ~version:"1.0"
      ~doc:"Deterministic signalling load generator for rcbr_switchd."
  in
  let term =
    Term.(
      const run $ socket_arg $ topology_arg $ capacity_arg $ calls_arg
      $ rounds_arg $ rate_max_arg $ rm_fraction_arg $ seed_arg $ conns_arg
      $ timeout_arg $ max_retx_arg $ drop_arg $ duplicate_arg $ reorder_arg
      $ delay_arg $ corrupt_arg $ max_extra_slots_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
