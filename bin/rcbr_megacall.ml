(* CLI: million-call engine runs — ramp a target concurrent population
   onto sharded grid meshes and report throughput-relevant counters and
   the deterministic outcome hash.

   Example:
     rcbr_megacall --concurrent 1048576 -j 4
     rcbr_megacall --concurrent 4096 --shards 4 --seed 7   # quick look *)

open Cmdliner
module Megacall = Rcbr_sim.Megacall
module Service_model = Rcbr_policy.Service_model
module Mts = Rcbr_policy.Mts

(* Service models without a trellis schedule derive their ladders from
   the engine's renegotiation levels instead (DESIGN.md §15). *)
let service_of_spec spec (levels : float array) =
  let sorted = Array.copy levels in
  Array.sort compare sorted;
  let lo = sorted.(0) and hi = sorted.(Array.length sorted - 1) in
  let mean =
    Array.fold_left ( +. ) 0. levels /. float_of_int (Array.length levels)
  in
  match
    Service_model.of_spec spec
      ~default_tiers:(fun n ->
        match n with
        | None ->
            List.sort_uniq compare (Array.to_list sorted) |> Array.of_list
        | Some k ->
            Array.init k (fun i ->
                lo +. ((hi -. lo) *. float_of_int i /. float_of_int (max 1 (k - 1)))))
      ~default_mts:(fun () -> Mts.ladder ~scales:3 ~quantum:50. ~mean ~peak:hi)
  with
  | Ok s -> s
  | Error msg -> Fmt.failwith "%s" msg

let run concurrent shards rows cols pieces mean_hold horizon seed service_spec
    jobs =
  Rcbr_util.Interrupt.install_exit ~on_signal:(fun _ -> ()) ();
  let base = Megacall.default ~concurrent () in
  let service = service_of_spec service_spec base.Megacall.levels in
  let cfg =
    {
      base with
      Megacall.shards;
      rows;
      cols;
      calls_per_shard = (concurrent + shards - 1) / shards;
      pieces_per_call = pieces;
      mean_hold;
      horizon;
      seed;
      service;
    }
  in
  (* lint: allow D003 — CLI wall-clock for the throughput report only;
     simulation results are time-independent *)
  let t0 = Unix.gettimeofday () in
  let m =
    Rcbr_util.Pool.with_pool ?jobs @@ fun pool ->
    let pool = if Rcbr_util.Pool.jobs pool <= 1 then None else Some pool in
    Megacall.run ?pool cfg
  in
  (* lint: allow D003 — closes the throughput-report timer above *)
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "shards: %d x (%dx%d mesh, %d calls)@." cfg.Megacall.shards
    cfg.Megacall.rows cfg.Megacall.cols cfg.Megacall.calls_per_shard;
  Format.printf "arrivals: %d  admitted: %d  denied: %d@."
    m.Megacall.total_arrivals m.Megacall.total_admitted m.Megacall.total_denied;
  Format.printf "renegotiations: %d (%d denied)  departures: %d@."
    m.Megacall.total_reneg_attempts m.Megacall.total_reneg_denied
    m.Megacall.total_departures;
  Format.printf "concurrent: %d (peak %d)  events fired: %d@."
    m.Megacall.concurrent_calls m.Megacall.peak_concurrent
    m.Megacall.total_events;
  Format.printf "batch hits: %d  solver memo hits: %d@."
    m.Megacall.total_batch_hits m.Megacall.total_memo_hits;
  if service <> Service_model.Renegotiate then
    Format.printf "service: %s  downgrades: %d  upgrades: %d@."
      (Service_model.name service)
      m.Megacall.total_downgrades m.Megacall.total_upgrades;
  Format.printf "audit violations: %d  outcome hash: %d@."
    m.Megacall.audit_violations m.Megacall.outcome_hash;
  Format.printf "wall: %.3fs  calls/s: %.0f  events/s: %.0f@." wall
    (float_of_int m.Megacall.total_admitted /. wall)
    (float_of_int m.Megacall.total_events /. wall);
  if m.Megacall.audit_violations > 0 then exit 1

let concurrent_arg =
  Arg.(
    value & opt int 1_048_576
    & info [ "concurrent" ] ~docv:"N" ~doc:"Target concurrent calls, summed over shards.")

let shards_arg = Arg.(value & opt int 8 & info [ "shards" ] ~docv:"S")
let rows_arg = Arg.(value & opt int 8 & info [ "rows" ] ~docv:"R")
let cols_arg = Arg.(value & opt int 8 & info [ "cols" ] ~docv:"C")
let pieces_arg = Arg.(value & opt int 4 & info [ "pieces" ] ~docv:"K")

let hold_arg =
  Arg.(value & opt float 50. & info [ "mean-hold" ] ~docv:"SECONDS")

let horizon_arg = Arg.(value & opt float 8. & info [ "horizon" ] ~docv:"SECONDS")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")

let service_arg =
  Arg.(
    value
    & opt string "renegotiate"
    & info [ "service" ] ~docv:"MODEL"
        ~doc:
          ("Service model applied to non-fitting rates: "
          ^ Service_model.spec_doc))

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (default: cores - 1; 1 = sequential).  Results \
           are identical for every value.")

let () =
  let info =
    Cmd.info "rcbr_megacall" ~version:"1.0"
      ~doc:"Million-call RCBR simulation on sharded grid meshes."
  in
  let term =
    Term.(
      const run $ concurrent_arg $ shards_arg $ rows_arg $ cols_arg
      $ pieces_arg $ hold_arg $ horizon_arg $ seed_arg $ service_arg
      $ jobs_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
