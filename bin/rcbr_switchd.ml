(* CLI: RCBR switch daemon.

   Serves the Rcbr_wire signalling protocol on a Unix-domain socket,
   applying setups / renegotiations / teardowns / RM cells to real
   Rcbr_net.Link accounting over a chosen topology.  Protocol logic
   lives in Rcbr_wire.Switchd; this file is only the socket pump.

   SIGINT/SIGTERM starts a graceful drain: stop accepting, deny new
   setups, keep serving live connections for a grace period, then run
   the final rate-conservation audit and exit 0 iff it is clean.

   Example:
     rcbr_switchd --socket /tmp/rcbr.sock --topology linear:3 --capacity 2e6 *)

open Cmdliner
module Topology = Rcbr_net.Topology
module Controller = Rcbr_admission.Controller
module Codec = Rcbr_wire.Codec
module Switchd = Rcbr_wire.Switchd
module Interrupt = Rcbr_util.Interrupt

type topo_spec = Single | Linear of int | Mesh of string

type client = { fd : Unix.file_descr; conn : Switchd.conn; out : Buffer.t }

let run socket_path topo_spec capacity controller_name target grace =
  let topology =
    match topo_spec with
    | Single -> Topology.single_link ~capacity
    | Linear hops -> Topology.linear ~hops ~capacity
    | Mesh file -> (
        match Topology.load file with
        | Ok t -> t
        | Error msg ->
            Format.eprintf "rcbr_switchd: %s@." msg;
            exit 2)
  in
  let controller =
    match controller_name with
    | "none" -> None
    | "memoryless" -> Some (Controller.memoryless ~capacity ~target)
    | "memory" -> Some (Controller.memory ~capacity ~target)
    | "always" -> Some (Controller.always_admit ())
    | other -> Fmt.failwith "unknown controller %S" other
  in
  let t =
    Switchd.create { (Switchd.default_config topology) with Switchd.controller }
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Interrupt.install_flag ();
  if Sys.file_exists socket_path then Unix.unlink socket_path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 16;
  Unix.set_nonblock listener;
  let start = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. start in
  let clients = ref [] in
  let buf = Bytes.create 65536 in
  let close_client c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let flush_out c =
    let len = Buffer.length c.out in
    if len > 0 then
      let s = Buffer.to_bytes c.out in
      match Unix.write c.fd s 0 len with
      | n ->
          Buffer.clear c.out;
          if n < len then Buffer.add_subbytes c.out s n (len - n)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_client c
  in
  let handle_read c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_client c
    | 0 ->
        flush_out c;
        close_client c
    | n -> (
        match Switchd.input t c.conn ~now:(now ()) (Bytes.sub_string buf 0 n) with
        | Ok frames ->
            List.iter (Buffer.add_string c.out) frames;
            flush_out c
        | Error e ->
            (* Framing is lost: no way back into sync on a byte stream. *)
            Format.eprintf "rcbr_switchd: closing connection: %a@."
              Codec.pp_error e;
            flush_out c;
            close_client c)
  in
  let rec accept_all () =
    match Unix.accept ~cloexec:true listener with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | fd, _ ->
        Unix.set_nonblock fd;
        clients :=
          { fd; conn = Switchd.connect t; out = Buffer.create 256 } :: !clients;
        accept_all ()
  in
  let serve_round ~accepting =
    let rds =
      (if accepting then [ listener ] else [])
      @ List.map (fun c -> c.fd) !clients
    in
    let wrs =
      List.filter_map
        (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
        !clients
    in
    match Unix.select rds wrs [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if accepting && List.memq listener readable then accept_all ();
        List.iter
          (fun c ->
            if List.memq c !clients && List.memq c.fd readable then
              handle_read c)
          !clients;
        List.iter
          (fun c ->
            if List.memq c !clients && List.memq c.fd writable then
              flush_out c)
          !clients
  in
  Format.printf "rcbr_switchd: listening on %s (%a)@." socket_path Topology.pp
    topology;
  while not (Interrupt.requested ()) do
    serve_round ~accepting:true
  done;
  (* Drain: no new connections, no new setups; live connections get
     [grace] seconds to finish their business and hang up. *)
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  ignore (Switchd.drain t);
  let deadline = Unix.gettimeofday () +. grace in
  while !clients <> [] && Unix.gettimeofday () < deadline do
    serve_round ~accepting:false
  done;
  List.iter
    (fun c ->
      flush_out c;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    !clients;
  let report = Switchd.drain t in
  let s = Switchd.stats t in
  Format.printf "rcbr_switchd: drained: sessions=%d violations=%d demand=%.6g@."
    report.Switchd.live_sessions report.Switchd.violations
    report.Switchd.demand;
  Format.printf
    "rcbr_switchd: stats: setups=%d renegotiations=%d teardowns=%d deltas=%d \
     resyncs=%d audits=%d denials=%d duplicates=%d decode-errors=%d \
     stray-cells=%d unexpected=%d underflows=%d@."
    s.Switchd.setups s.Switchd.renegotiations s.Switchd.teardowns
    s.Switchd.deltas s.Switchd.resyncs s.Switchd.audits s.Switchd.denials
    s.Switchd.duplicates s.Switchd.decode_errors s.Switchd.stray_cells
    s.Switchd.unexpected s.Switchd.underflows;
  exit (if report.Switchd.violations = 0 then 0 else 1)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on.")

let topo_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "single" ] -> Ok Single
    | [ "linear"; h ] -> (
        match int_of_string_opt h with
        | Some hops when hops >= 1 -> Ok (Linear hops)
        | _ -> Error (`Msg (Printf.sprintf "bad hop count in %S" s)))
    | "mesh" :: (_ :: _ as rest) -> Ok (Mesh (String.concat ":" rest))
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "topology %S is not single, linear:HOPS or mesh:FILE" s))
  in
  let print ppf = function
    | Single -> Format.pp_print_string ppf "single"
    | Linear h -> Format.fprintf ppf "linear:%d" h
    | Mesh f -> Format.fprintf ppf "mesh:%s" f
  in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(
    value & opt topo_conv Single
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:
          "Network shape: $(b,single), $(b,linear:HOPS) or $(b,mesh:FILE) — \
           the same specs rcbr_mbac accepts.  Clients must be configured \
           with the matching topology so their route link ids line up.")

let capacity_arg =
  Arg.(
    value & opt float 1e6
    & info [ "capacity" ] ~docv:"BPS"
        ~doc:"Per-link capacity for the built-in single/linear shapes.")

let controller_arg =
  Arg.(
    value & opt string "none"
    & info [ "controller" ] ~docv:"NAME"
        ~doc:
          "Admission gate applied to setups on top of the capacity fit: \
           $(b,none), $(b,memoryless), $(b,memory) or $(b,always).")

let target_arg =
  Arg.(
    value & opt float 1e-3
    & info [ "target" ] ~docv:"P" ~doc:"Overflow target for the controller.")

let grace_arg =
  Arg.(
    value & opt float 5.0
    & info [ "grace" ] ~docv:"SECONDS"
        ~doc:
          "After SIGINT/SIGTERM, keep serving live connections this long \
           before the final audit.")

let () =
  let info =
    Cmd.info "rcbr_switchd" ~version:"1.0"
      ~doc:"RCBR signalling switch daemon on a Unix-domain socket."
  in
  let term =
    Term.(
      const run $ socket_arg $ topology_arg $ capacity_arg $ controller_arg
      $ target_arg $ grace_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
