(* CLI: measurement-based admission control simulation.

   Example:
     rcbr_mbac --capacity-mult 16 --load 1.0 --controller memoryless *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Mbac = Rcbr_sim.Mbac
module Multihop = Rcbr_sim.Multihop
module Topology = Rcbr_net.Topology
module Session = Rcbr_net.Session
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor
module Service_model = Rcbr_policy.Service_model
module Mts = Rcbr_policy.Mts

type topo_spec = Single | Linear of int | Mesh of string

(* The service spec is resolved against the computed schedule: the
   default downgrade ladder picks tiers among the schedule's own
   segment rates, and the default MTS profile is the one the schedule
   itself conforms to. *)
let service_of_spec spec schedule =
  match
    Service_model.of_spec spec
      ~default_tiers:(fun n ->
        Service_model.tiers_of_schedule schedule
          ~n:(Option.value n ~default:4))
      ~default_mts:(fun () -> Mts.of_schedule schedule ~scales:3 ~base_window:16)
  with
  | Ok s -> s
  | Error msg -> Fmt.failwith "%s" msg

(* The non-trivial topologies run the Section III-C call-level
   experiment on the shared network core: transit calls spread across
   the topology's routes, local cross traffic on every link.  On
   [linear:H] this reproduces [Multihop.run]'s denial fractions bit for
   bit (same engine, same draw order). *)
let run_net_experiment ~schedule ~seed ~transit_calls ~local_calls ~rm_drop
    ~rm_timeout ~rm_max_retx ~service topology =
  let horizon = 4. *. Schedule.duration schedule in
  let faults =
    if rm_drop <= 0. then Session.no_faults
    else
      {
        Session.no_faults with
        Session.rm_drop;
        retx_timeout = rm_timeout;
        max_retransmits = rm_max_retx;
        fault_seed = seed + 2;
        check_invariants = true;
      }
  in
  Format.printf "topology: %a@." Topology.pp topology;
  let m, f =
    Multihop.run_net
      {
        Multihop.schedule;
        topology;
        transit_calls;
        local_calls_per_link = local_calls;
        horizon;
        seed = seed + 1;
        balance = false;
        service;
      }
      faults
  in
  Format.printf
    "@[<v>transit increases:   %d attempted, %d denied (fraction %.12g)@,\
     local increases:     %d attempted, %d denied@,\
     mean hop util:       %.12g@]@."
    m.Multihop.transit_attempts m.Multihop.transit_denials
    (Multihop.denial_fraction m) m.Multihop.local_attempts
    m.Multihop.local_denials m.Multihop.mean_hop_utilization;
  if service <> Service_model.Renegotiate then
    Format.printf "downgraded changes:  %d@." m.Multihop.downgrades;
  if rm_drop > 0. then
    Format.printf
      "@[<v>RM cells dropped:    %d@,\
       retransmissions:     %d@,\
       abandoned changes:   %d@,\
       superseded retx:     %d@,\
       crash denials:       %d@,\
       invariant failures:  %d@]@."
      f.Multihop.rm_lost f.Multihop.retransmits f.Multihop.abandoned
      f.Multihop.superseded f.Multihop.crash_denials
      f.Multihop.invariant_failures

let run seed frames cost_ratio capacity_mult load target controller_name
    admission_name admission_stats rm_drop rm_timeout rm_max_retx topo_spec
    transit_calls local_calls service_spec =
  (* Ctrl-C mid-run: flush the stats printed so far, then exit with the
     interrupt convention instead of dying with a truncated buffer. *)
  Rcbr_util.Interrupt.install_exit
    ~on_signal:(fun _ ->
      Format.pp_print_flush Format.std_formatter ();
      prerr_endline "rcbr_mbac: interrupted, partial output flushed")
    ();
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames ~seed () in
  let mean = Trace.mean_rate trace in
  let schedule =
    Optimal.solve (Optimal.default_params ~cost_ratio trace) trace
  in
  let capacity = capacity_mult *. mean in
  let service = service_of_spec service_spec schedule in
  match topo_spec with
  | Linear hops ->
      run_net_experiment ~schedule ~seed ~transit_calls ~local_calls ~rm_drop
        ~rm_timeout ~rm_max_retx ~service
        (Topology.linear ~hops ~capacity)
  | Mesh file -> (
      match Topology.load file with
      | Ok topology ->
          run_net_experiment ~schedule ~seed ~transit_calls ~local_calls
            ~rm_drop ~rm_timeout ~rm_max_retx ~service topology
      | Error msg ->
          Format.eprintf "rcbr_mbac: %s@." msg;
          exit 2)
  | Single ->
  let arrival_rate =
    load *. capacity /. (Schedule.mean_rate schedule *. Schedule.duration schedule)
  in
  let cfg =
    Mbac.default_config ~schedule ~capacity ~arrival_rate ~target ~seed:(seed + 1)
  in
  let cfg = { cfg with Mbac.service } in
  let cfg =
    if rm_drop <= 0. then cfg
    else
      {
        cfg with
        Mbac.faults =
          Some
            {
              Session.no_faults with
              Session.rm_drop;
              retx_timeout = rm_timeout;
              max_retransmits = rm_max_retx;
              fault_seed = seed + 2;
            };
      }
  in
  let controller =
    match controller_name with
    | "perfect" ->
        Controller.perfect ~descriptor:(Descriptor.of_schedule schedule)
          ~capacity ~target
    | "memoryless" -> Controller.memoryless ~capacity ~target
    | "memory" -> Controller.memory ~capacity ~target
    | "always" -> Controller.always_admit ()
    | other -> Fmt.failwith "unknown controller %S" other
  in
  (match admission_name with
  | "fast" -> ()
  | "legacy" -> Controller.set_mode controller Controller.Legacy
  | "check" -> Controller.set_mode controller Controller.Check
  | other -> Fmt.failwith "unknown admission mode %S" other);
  Format.printf
    "link %.0f kb/s (%.0fx mean), offered load %.2f, target %.1e, controller %s@."
    (capacity /. 1e3) capacity_mult (Mbac.offered_load cfg) target
    (Controller.name controller);
  let m = Mbac.run cfg ~controller in
  Format.printf
    "@[<v>failure probability: %.3e (+/- %.1e)@,\
     utilization:         %.4f (+/- %.1e)@,\
     call blocking:       %.4f@,\
     denied increases:    %.4f@,\
     mean calls:          %.2f@,\
     windows sampled:     %d@]@."
    m.Mbac.failure_probability m.Mbac.failure_halfwidth m.Mbac.utilization
    m.Mbac.utilization_halfwidth m.Mbac.call_blocking m.Mbac.denial_fraction
    m.Mbac.mean_calls_in_system m.Mbac.windows;
  if service <> Service_model.Renegotiate then
    Format.printf "downgrades/upgrades: %d / %d@." m.Mbac.downgrades
      m.Mbac.upgrades;
  if rm_drop > 0. then
    Format.printf
      "@[<v>RM cells dropped:    %d@,\
       retransmissions:     %d@,\
       abandoned changes:   %d@]@."
      m.Mbac.signalling_dropped m.Mbac.signalling_retransmits
      m.Mbac.signalling_abandoned;
  let a = m.Mbac.admission in
  if admission_name = "check" && a.Controller.mismatches > 0 then
    Format.printf "WARNING: %d fast/legacy decision mismatches@."
      a.Controller.mismatches;
  if admission_stats then
    Format.printf
      "@[<v>admission decisions: %d (%d admitted), hash %x@,\
       legacy rebuilds:     %d (mismatches %d)@,\
       solver work:         %d log-MGF evals, %d fit probes, %d queries@]@."
      a.Controller.decisions a.Controller.admits a.Controller.decision_hash
      a.Controller.legacy_evals a.Controller.mismatches
      a.Controller.solver.Rcbr_effbw.Chernoff.Solver.mgf_evals
      a.Controller.solver.Rcbr_effbw.Chernoff.Solver.fits_evals
      a.Controller.solver.Rcbr_effbw.Chernoff.Solver.queries

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")
let frames_arg = Arg.(value & opt int 20_000 & info [ "frames" ] ~docv:"N")

let cost_ratio_arg =
  Arg.(value & opt float 2e5 & info [ "cost-ratio" ] ~docv:"ALPHA")

let capacity_arg =
  Arg.(
    value & opt float 16.
    & info [ "capacity-mult" ] ~docv:"K"
        ~doc:"Link capacity as a multiple of the call mean rate.")

let load_arg =
  Arg.(value & opt float 1.0 & info [ "load" ] ~docv:"RHO" ~doc:"Offered load.")

let target_arg = Arg.(value & opt float 1e-3 & info [ "target" ] ~docv:"P")

let controller_arg =
  Arg.(
    value & opt string "memoryless"
    & info [ "controller" ] ~docv:"NAME"
        ~doc:"One of: perfect, memoryless, memory, always.")

let admission_arg =
  Arg.(
    value & opt string "fast"
    & info [ "admission" ] ~docv:"MODE"
        ~doc:
          "Admission decision path: $(b,fast) (incremental kernel), \
           $(b,legacy) (per-decision rebuild, as the original code), or \
           $(b,check) (run both and report disagreements).")

let admission_stats_arg =
  Arg.(
    value & flag
    & info [ "admission-stats" ]
        ~doc:"Print decision/solver counters after the run.")

let rm_drop_arg =
  Arg.(
    value & opt float 0.
    & info [ "rm-drop" ] ~docv:"P"
        ~doc:"Loss probability per renegotiation cell (0 disables faults).")

let rm_timeout_arg =
  Arg.(
    value & opt float 0.25
    & info [ "rm-timeout" ] ~docv:"SECONDS"
        ~doc:"Retransmission timeout for lost renegotiation cells.")

let rm_max_retx_arg =
  Arg.(
    value & opt int 4
    & info [ "rm-max-retx" ] ~docv:"N"
        ~doc:"Retransmissions before a change is applied anyway.")

let topo_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "single" ] -> Ok Single
    | [ "linear"; h ] -> (
        match int_of_string_opt h with
        | Some hops when hops >= 1 -> Ok (Linear hops)
        | _ -> Error (`Msg (Printf.sprintf "bad hop count in %S" s)))
    | "mesh" :: (_ :: _ as rest) -> Ok (Mesh (String.concat ":" rest))
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "topology %S is not single, linear:HOPS or mesh:FILE" s))
  in
  let print ppf = function
    | Single -> Format.pp_print_string ppf "single"
    | Linear h -> Format.fprintf ppf "linear:%d" h
    | Mesh f -> Format.fprintf ppf "mesh:%s" f
  in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(
    value & opt topo_conv Single
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:
          "Network shape: $(b,single) (one bottleneck link, the classic \
           MBAC experiment), $(b,linear:HOPS) (a chain of links; transit \
           calls cross all of them), or $(b,mesh:FILE) (arbitrary topology \
           loaded from a JSON file, see Rcbr_net.Topology.of_json).  The \
           non-single shapes run the call-level renegotiation experiment \
           and honour the rm-* fault flags.")

let transit_arg =
  Arg.(
    value & opt int 3
    & info [ "transit-calls" ] ~docv:"N"
        ~doc:"Transit calls spread over the routes (non-single topologies).")

let local_arg =
  Arg.(
    value & opt int 5
    & info [ "local-calls" ] ~docv:"N"
        ~doc:"Local cross-traffic calls per link (non-single topologies).")

let service_arg =
  Arg.(
    value & opt string "renegotiate"
    & info [ "service" ] ~docv:"MODEL"
        ~doc:("Service model for non-fitting rate changes: " ^ Service_model.spec_doc ^ "."))

let () =
  let info =
    Cmd.info "rcbr_mbac" ~version:"1.0"
      ~doc:"Call-level simulation of measurement-based admission control."
  in
  let term =
    Term.(
      const run $ seed_arg $ frames_arg $ cost_ratio_arg $ capacity_arg
      $ load_arg $ target_arg $ controller_arg $ admission_arg
      $ admission_stats_arg $ rm_drop_arg $ rm_timeout_arg $ rm_max_retx_arg
      $ topology_arg $ transit_arg $ local_arg $ service_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
