(* CLI: statistical multiplexing gain comparison across the three Fig. 3
   scenarios (static CBR, shared buffer, RCBR).

   Examples:
     rcbr_smg --frames 20000 --streams 1,5,20,100 --target 1e-6
     rcbr_smg --chernoff                  # add the formula (11) table
     rcbr_smg --beam 16 --beam-prior trace  # beam-searched reference
                                            # schedule on fine grids *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Optimal = Rcbr_core.Optimal
module Beam = Rcbr_core.Beam
module Schedule = Rcbr_core.Schedule
module Smg = Rcbr_sim.Smg
module Chernoff = Rcbr_effbw.Chernoff

type beam_prior_kind = Prior_trace | Prior_chain | Prior_uniform

let beam_prior_conv =
  let parse = function
    | "trace" -> Ok Prior_trace
    | "chain" -> Ok Prior_chain
    | "uniform" -> Ok Prior_uniform
    | s ->
        Error (`Msg (Printf.sprintf "unknown prior %S (trace|chain|uniform)" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with
      | Prior_trace -> "trace"
      | Prior_chain -> "chain"
      | Prior_uniform -> "uniform")
  in
  Arg.conv (parse, print)

let make_prior ~grid ~trace = function
  | Prior_uniform -> Beam.Uniform
  | Prior_trace -> Beam.of_trace ~grid trace
  | Prior_chain ->
      let ms =
        Rcbr_traffic.Synthetic.to_multiscale
          Rcbr_traffic.Synthetic.star_wars_params
      in
      let flat = Rcbr_markov.Multiscale.flatten ms in
      let rates =
        Array.map
          (fun r -> r *. Trace.fps trace)
          (Rcbr_markov.Modulated.rates flat)
      in
      Beam.of_chain ~grid ~rates (Rcbr_markov.Modulated.chain flat)

let run seed frames cost_ratio buffer target replications streams jobs chernoff
    beam beam_prior =
  (* Ctrl-C mid-sweep: flush whatever rows are already printed so the
     partial table survives, then exit with the interrupt convention. *)
  Rcbr_util.Interrupt.install_exit
    ~on_signal:(fun _ ->
      Format.pp_print_flush Format.std_formatter ();
      prerr_endline "rcbr_smg: interrupted, partial output flushed")
    ();
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames ~seed () in
  let mean = Trace.mean_rate trace in
  Format.printf "trace: %d frames, mean %.0f kb/s@." frames (mean /. 1e3);
  let params = Optimal.default_params ~buffer ~cost_ratio trace in
  let schedule =
    match beam with
    | None -> Optimal.solve params trace
    | Some beam_width ->
        let prior = make_prior ~grid:params.Optimal.grid ~trace beam_prior in
        let s, st = Beam.solve_with_stats ~beam_width ~prior params trace in
        Format.printf
          "beam width %d: %d nodes expanded, dropped %d, prior hits %d@."
          beam_width st.Beam.base.Optimal.expanded st.Beam.dropped_by_beam
          st.Beam.prior_hits;
        s
  in
  Format.printf "schedule: %d renegotiations, efficiency %.4f@."
    (Schedule.n_renegotiations schedule)
    (Schedule.bandwidth_efficiency schedule ~trace);
  let cfg =
    { Smg.trace; schedule; buffer; target_loss = target; replications; seed }
  in
  Rcbr_util.Pool.with_pool ?jobs @@ fun pool ->
  let pool = if Rcbr_util.Pool.jobs pool <= 1 then None else Some pool in
  let cbr = Smg.min_capacity_cbr cfg in
  (* Compute the whole sweep before printing: the rows are then
     byte-identical for every --jobs value. *)
  let shared = Smg.min_capacities_shared ?pool cfg ~ns:streams in
  let rcbr = Smg.min_capacities_rcbr ?pool cfg ~ns:streams in
  Format.printf "@.%6s  %10s  %10s  %10s  (capacity per stream / mean)@." "n"
    "CBR" "shared" "RCBR";
  List.iter2
    (fun n (shared, rcbr) ->
      Format.printf "%6d  %10.3f  %10.3f  %10.3f@." n (cbr /. mean)
        (shared /. mean) (rcbr /. mean))
    streams
    (List.combine shared rcbr);
  Format.printf "@.RCBR asymptote (n -> inf): %.3f x mean@."
    (Smg.asymptotic_rcbr_capacity cfg /. mean);
  if chernoff then begin
    (* Chernoff counterpart of the sweep (formula (11)): one
       warm-started solver over the schedule marginal serves every n,
       instead of a cold search per row. *)
    let solver = Chernoff.Solver.of_marginal (Schedule.marginal schedule) in
    Format.printf
      "@.Chernoff estimate over the schedule marginal (target %.0e):@." target;
    Format.printf "%6s  %14s  %22s@." "n" "capacity/mean"
      "admissible on sim link";
    List.iter2
      (fun n rcbr_capacity ->
        let c = Chernoff.Solver.capacity_for_target solver ~n ~target in
        (* How many calls the Chernoff rule would admit on the link the
           simulated sweep sized for n streams. *)
        let calls =
          Chernoff.Solver.max_calls solver
            ~capacity:(rcbr_capacity *. float_of_int n)
            ~target
        in
        Format.printf "%6d  %14.3f  %22d@." n (c /. mean) calls)
      streams rcbr;
    let st = Chernoff.Solver.stats solver in
    Format.printf "(solver: %d log-MGF evals, %d fit probes, %d queries)@."
      st.Chernoff.Solver.mgf_evals st.Chernoff.Solver.fits_evals
      st.Chernoff.Solver.queries
  end

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the capacity searches (default: cores - 1; 1 = \
           sequential).  Results are identical for every value.")

let frames_arg =
  Arg.(value & opt int 20_000 & info [ "frames" ] ~docv:"N" ~doc:"Trace length.")

let cost_ratio_arg =
  Arg.(value & opt float 2e5 & info [ "cost-ratio" ] ~docv:"ALPHA")

let buffer_arg = Arg.(value & opt float 300_000. & info [ "buffer" ] ~docv:"BITS")
let target_arg = Arg.(value & opt float 1e-6 & info [ "target" ] ~docv:"LOSS")

let replications_arg =
  Arg.(value & opt int 3 & info [ "replications" ] ~docv:"R")

let streams_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 5; 10; 20; 50; 100 ]
    & info [ "streams" ] ~docv:"N1,N2,..." ~doc:"Stream counts to evaluate.")

let chernoff_arg =
  Arg.(
    value & flag
    & info [ "chernoff" ]
        ~doc:
          "Also print the Chernoff capacity-per-stream table over the \
           schedule marginal, computed with one shared warm-started solver.")

let beam_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "beam" ] ~docv:"K"
        ~doc:
          "Solve the reference schedule with a beam-searched trellis keeping \
           K states per stage (default: exact solve).")

let beam_prior_arg =
  Arg.(
    value
    & opt beam_prior_conv Prior_trace
    & info [ "beam-prior" ] ~docv:"PRIOR"
        ~doc:
          "Beam ranking prior: trace (level-transition histograms of the \
           generated trace), chain (the calibrated Star Wars Markov model), \
           or uniform.")

let () =
  let info =
    Cmd.info "rcbr_smg" ~version:"1.0"
      ~doc:"Statistical multiplexing gain of RCBR vs CBR vs shared buffering."
  in
  let term =
    Term.(
      const run $ seed_arg $ frames_arg $ cost_ratio_arg $ buffer_arg
      $ target_arg $ replications_arg $ streams_arg $ jobs_arg $ chernoff_arg
      $ beam_arg $ beam_prior_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
