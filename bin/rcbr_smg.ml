(* CLI: statistical multiplexing gain comparison across the three Fig. 3
   scenarios (static CBR, shared buffer, RCBR).

   Example:
     rcbr_smg --frames 20000 --streams 1,5,20,100 --target 1e-6 *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Smg = Rcbr_sim.Smg
module Chernoff = Rcbr_effbw.Chernoff

let run seed frames cost_ratio buffer target replications streams jobs chernoff
    =
  (* Ctrl-C mid-sweep: flush whatever rows are already printed so the
     partial table survives, then exit with the interrupt convention. *)
  Rcbr_util.Interrupt.install_exit
    ~on_signal:(fun _ ->
      Format.pp_print_flush Format.std_formatter ();
      prerr_endline "rcbr_smg: interrupted, partial output flushed")
    ();
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames ~seed () in
  let mean = Trace.mean_rate trace in
  Format.printf "trace: %d frames, mean %.0f kb/s@." frames (mean /. 1e3);
  let schedule = Optimal.solve (Optimal.default_params ~buffer ~cost_ratio trace) trace in
  Format.printf "schedule: %d renegotiations, efficiency %.4f@."
    (Schedule.n_renegotiations schedule)
    (Schedule.bandwidth_efficiency schedule ~trace);
  let cfg =
    { Smg.trace; schedule; buffer; target_loss = target; replications; seed }
  in
  Rcbr_util.Pool.with_pool ?jobs @@ fun pool ->
  let pool = if Rcbr_util.Pool.jobs pool <= 1 then None else Some pool in
  let cbr = Smg.min_capacity_cbr cfg in
  (* Compute the whole sweep before printing: the rows are then
     byte-identical for every --jobs value. *)
  let shared = Smg.min_capacities_shared ?pool cfg ~ns:streams in
  let rcbr = Smg.min_capacities_rcbr ?pool cfg ~ns:streams in
  Format.printf "@.%6s  %10s  %10s  %10s  (capacity per stream / mean)@." "n"
    "CBR" "shared" "RCBR";
  List.iter2
    (fun n (shared, rcbr) ->
      Format.printf "%6d  %10.3f  %10.3f  %10.3f@." n (cbr /. mean)
        (shared /. mean) (rcbr /. mean))
    streams
    (List.combine shared rcbr);
  Format.printf "@.RCBR asymptote (n -> inf): %.3f x mean@."
    (Smg.asymptotic_rcbr_capacity cfg /. mean);
  if chernoff then begin
    (* Chernoff counterpart of the sweep (formula (11)): one
       warm-started solver over the schedule marginal serves every n,
       instead of a cold search per row. *)
    let solver = Chernoff.Solver.of_marginal (Schedule.marginal schedule) in
    Format.printf
      "@.Chernoff estimate over the schedule marginal (target %.0e):@." target;
    Format.printf "%6s  %14s  %22s@." "n" "capacity/mean"
      "admissible on sim link";
    List.iter2
      (fun n rcbr_capacity ->
        let c = Chernoff.Solver.capacity_for_target solver ~n ~target in
        (* How many calls the Chernoff rule would admit on the link the
           simulated sweep sized for n streams. *)
        let calls =
          Chernoff.Solver.max_calls solver
            ~capacity:(rcbr_capacity *. float_of_int n)
            ~target
        in
        Format.printf "%6d  %14.3f  %22d@." n (c /. mean) calls)
      streams rcbr;
    let st = Chernoff.Solver.stats solver in
    Format.printf "(solver: %d log-MGF evals, %d fit probes, %d queries)@."
      st.Chernoff.Solver.mgf_evals st.Chernoff.Solver.fits_evals
      st.Chernoff.Solver.queries
  end

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the capacity searches (default: cores - 1; 1 = \
           sequential).  Results are identical for every value.")

let frames_arg =
  Arg.(value & opt int 20_000 & info [ "frames" ] ~docv:"N" ~doc:"Trace length.")

let cost_ratio_arg =
  Arg.(value & opt float 2e5 & info [ "cost-ratio" ] ~docv:"ALPHA")

let buffer_arg = Arg.(value & opt float 300_000. & info [ "buffer" ] ~docv:"BITS")
let target_arg = Arg.(value & opt float 1e-6 & info [ "target" ] ~docv:"LOSS")

let replications_arg =
  Arg.(value & opt int 3 & info [ "replications" ] ~docv:"R")

let streams_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 5; 10; 20; 50; 100 ]
    & info [ "streams" ] ~docv:"N1,N2,..." ~doc:"Stream counts to evaluate.")

let chernoff_arg =
  Arg.(
    value & flag
    & info [ "chernoff" ]
        ~doc:
          "Also print the Chernoff capacity-per-stream table over the \
           schedule marginal, computed with one shared warm-started solver.")

let () =
  let info =
    Cmd.info "rcbr_smg" ~version:"1.0"
      ~doc:"Statistical multiplexing gain of RCBR vs CBR vs shared buffering."
  in
  let term =
    Term.(
      const run $ seed_arg $ frames_arg $ cost_ratio_arg $ buffer_arg
      $ target_arg $ replications_arg $ streams_arg $ jobs_arg $ chernoff_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
