(* Typed interprocedural analysis over .cmt trees — stage 2 of the lint
   pipeline (DESIGN.md §14).

   Where stage 1 (Lint) pattern-matches the parsetree of one file at a
   time, this stage loads the typed trees dune already produced, builds
   a cross-module definition table and call graph, and runs three
   passes:

   - determinism taint (T001/T002): sources (Random outside Rng,
     wall-clock reads, Hashtbl bucket order, Domain.self, Hashtbl.hash
     of closures) propagated through let-bindings, control flow and
     calls until they reach a sink (FNV outcome hashes, Json emission);
   - Pool escape analysis (E001): mutable state written from inside a
     Pool/Domain task, through literal closures or partially-applied
     functions, using per-definition writes-global / writes-param
     summaries;
   - units of measure (U001/U002): a dimension lattice over slots,
     seconds, cells, bits and calls, seeded from tools/lint/units.map,
     checking arithmetic, comparisons, record fields and annotated
     calls.

   All reporting goes through Lint_common, so suppression comments and
   the allowlist work exactly as in stage 1. *)

module C = Rcbr_lint_core.Lint_common
open Typedtree

(* ------------------------------------------------------------------ *)
(* Dimension algebra                                                   *)
(* ------------------------------------------------------------------ *)

(* A dimension is a sorted (atom, exponent) list with no zero
   exponents; [] is dimensionless. *)
type dim = (string * int) list

type dtype =
  | Unknown
  | Dim of dim
  | Fn of (string * dtype) list * dtype
      (* arg slots ("" positional, "~l" labelled, "?l" optional) *)

let dim_mul (a : dim) (b : dim) : dim =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, e) -> Hashtbl.replace tbl k e) a;
  List.iter
    (fun (k, e) ->
      let cur = try Hashtbl.find tbl k with Not_found -> 0 in
      Hashtbl.replace tbl k (cur + e))
    b;
  Hashtbl.fold (fun k e acc -> if e = 0 then acc else (k, e) :: acc) tbl []
  |> List.sort compare

let dim_inv (a : dim) : dim = List.map (fun (k, e) -> (k, -e)) a

let dim_to_string (d : dim) =
  if d = [] then "dimensionless"
  else
    let part (k, e) =
      if e = 1 || e = -1 then k else Printf.sprintf "%s^%d" k (abs e)
    in
    let pos = List.filter (fun (_, e) -> e > 0) d in
    let neg = List.filter (fun (_, e) -> e < 0) d in
    let num = if pos = [] then "1" else String.concat "*" (List.map part pos) in
    if neg = [] then num
    else num ^ "/" ^ String.concat "/" (List.map part neg)

(* Atom spellings accepted in units.map. *)
let atom_alias = function
  | "second" | "seconds" | "sec" | "s" -> Some "second"
  | "slot" | "slots" | "frame" | "frames" -> Some "slot"
  | "cell" | "cells" -> Some "cell"
  | "bit" | "bits" -> Some "bit"
  | "byte" | "bytes" -> Some "byte"
  | "call" | "calls" | "erlang" | "erlangs" -> Some "call"
  | _ -> None

(* Whole-dimension shorthands. *)
let full_alias = function
  | "Mbps" | "bps" -> Some [ ("bit", 1); ("second", -1) ]
  | "fps" -> Some [ ("second", -1); ("slot", 1) ]
  | "Hz" -> Some [ ("second", -1) ]
  | "one" | "dimensionless" | "scalar" | "ratio" -> Some []
  | _ -> None

let parse_dim ~where (s : string) : dim =
  let fail tok =
    failwith
      (Printf.sprintf "units.map:%s: unknown dimension token %S" where tok)
  in
  (* split into (sign, token) on '*' and '/' *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let sign = ref 1 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := (!sign, Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '*' -> flush (); sign := 1
      | '/' -> flush (); sign := -1
      | ' ' | '\t' -> ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.fold_left
    (fun acc (sg, tok) ->
      (* optional ^k exponent *)
      let tok, exp =
        match String.index_opt tok '^' with
        | None -> (tok, 1)
        | Some i -> (
            let base = String.sub tok 0 i in
            let e = String.sub tok (i + 1) (String.length tok - i - 1) in
            match int_of_string_opt e with
            | Some e -> (base, e)
            | None -> fail tok)
      in
      let d =
        match full_alias tok with
        | Some d -> d
        | None -> (
            match atom_alias tok with
            | Some a -> [ (a, 1) ]
            | None -> fail tok)
      in
      let d = List.map (fun (k, e) -> (k, e * exp * sg)) d in
      dim_mul acc d)
    [] (List.rev !parts)

let parse_dtype_slot ~where (s : string) : string * dtype =
  let s = String.trim s in
  let label, body =
    if s <> "" && (s.[0] = '~' || s.[0] = '?') then
      match String.index_opt s ':' with
      | Some i ->
          ( String.sub s 0 i,
            String.sub s (i + 1) (String.length s - i - 1) )
      | None -> ("", s)
    else ("", s)
  in
  let d =
    match String.trim body with
    | "_" | "unit" -> Unknown
    | body -> Dim (parse_dim ~where body)
  in
  (label, d)

(* Split a signature string on top-level "->". *)
let split_arrows (s : string) : string list =
  let out = ref [] in
  let start = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '-' && s.[!i + 1] = '>' then begin
      out := String.sub s !start (!i - !start) :: !out;
      start := !i + 2;
      i := !i + 2
    end
    else incr i
  done;
  out := String.sub s !start (n - !start) :: !out;
  List.rev !out

(* units.map: one entry per line, [#] comments, blank lines skipped.

     Qualified.name : dim
     Qualified.fn : ~label:dim -> _ -> dim

   Record fields are spelled [Type.path.field : dim]. *)
let parse_units (text : string) : (string * dtype) list =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun idx line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then []
         else
           let where = string_of_int (idx + 1) in
           match String.index_opt line ':' with
           | None ->
               failwith
                 (Printf.sprintf "units.map:%s: missing ':' in %S" where line)
           | Some i ->
               let name = String.trim (String.sub line 0 i) in
               let sg =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               let slots =
                 List.map (parse_dtype_slot ~where) (split_arrows sg)
               in
               let dt =
                 match slots with
                 | [] -> Unknown
                 | [ (_, d) ] -> d
                 | slots ->
                     let rec split acc = function
                       | [ (_, ret) ] -> (List.rev acc, ret)
                       | x :: rest -> split (x :: acc) rest
                       | [] -> assert false
                     in
                     let args, ret = split [] slots in
                     Fn (args, ret)
               in
               [ (name, dt) ])
       lines)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  random_exempt : string -> bool;  (* file may use Random directly *)
  clock_exempt : string -> bool;  (* file may read the wall clock *)
  order_scope : string -> bool;  (* Hashtbl order is a source here *)
  trusted : string list;  (* def-name prefixes exempt from order taint *)
  sinks : string list;  (* canonical sink functions (T001) *)
  spawns : (string * int) list;  (* spawn fn, task-arg Nolabel index *)
  mutators : (string * int) list;  (* extra mutators: fn, mutated arg *)
  units : (string * dtype) list;  (* units.map contents *)
  allow_grants : C.grant list;
}

let strict_config =
  {
    random_exempt = (fun _ -> false);
    clock_exempt = (fun _ -> false);
    order_scope = (fun _ -> true);
    trusted = [];
    sinks = [];
    spawns = [];
    mutators = [];
    units = [];
    allow_grants = [];
  }

let repo_config ?(units = []) ?(allow_grants = []) () =
  {
    random_exempt = (fun f -> f = "lib/util/rng.ml");
    clock_exempt = (fun f -> C.has_prefix ~prefix:"bench/" f);
    order_scope =
      (fun f ->
        C.has_prefix ~prefix:"lib/" f
        || C.has_prefix ~prefix:"bin/" f
        || C.has_prefix ~prefix:"bench/" f);
    trusted = [ "Rcbr_util.Tables." ];
    sinks =
      [
        "Rcbr_wire.Loadgen.outcome_hash";
        "Rcbr_sim.Megacall.fnv";
        "Rcbr_sim.Megacall.fnv_float";
        "Rcbr_util.Json.to_string";
        "Rcbr_util.Json.save";
      ];
    spawns =
      [
        ("Rcbr_util.Pool.map", 0);
        ("Rcbr_util.Pool.map_array", 0);
        ("Rcbr_util.Pool.init", 1);
        ("Domain.spawn", 0);
      ];
    mutators = [];
    units;
    allow_grants;
  }

(* ------------------------------------------------------------------ *)
(* Units of compilation, definitions, canonical names                  *)
(* ------------------------------------------------------------------ *)

type unit_info = {
  u_mod : string;  (* canonical module name, e.g. "Rcbr_sim.Megacall" *)
  u_file : string;  (* repo-relative source path *)
  u_supps : C.suppressions;
  u_aliases : (string, Path.t) Hashtbl.t;  (* Ident stamp -> target *)
  u_stamps : (string, def) Hashtbl.t;  (* Ident stamp -> definition *)
  u_str : Typedtree.structure;
}

and def = {
  d_name : string;  (* canonical qualified name *)
  d_params : (Asttypes.arg_label * Ident.t list) list;  (* peeled funs *)
  d_body : Typedtree.expression;  (* whole right-hand side *)
  d_u : unit_info;
  mutable d_taint : string option;  (* returns-taint witness *)
  mutable d_wglobal : (string * int) option;  (* writes shared state *)
  mutable d_wparams : (int * string) list;  (* writes its own params *)
}

type state = {
  cfg : config;
  by_name : (string, def) Hashtbl.t;
  units_tbl : (string, dtype) Hashtbl.t;
  rep : C.reporter;
  mutable checking : bool;  (* false during fixpoints: no reports *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* "Rcbr_sim__Megacall" -> "Rcbr_sim.Megacall";
   "Dune__exe__Rcbr_mbac" -> "Rcbr_mbac". *)
let canon_string (s : string) =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i < n - 1 && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  let s = Buffer.contents b in
  if C.has_prefix ~prefix:"Dune.exe." s then
    String.sub s 9 (String.length s - 9)
  else s

let rec canon_raw u (p : Path.t) =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt u.u_aliases (Ident.unique_name id) with
      | Some target -> canon_raw u target
      | None -> Ident.name id)
  | Path.Pdot (b, s) -> canon_raw u b ^ "." ^ s
  | Path.Papply (b, _) | Path.Pextra_ty (b, _) -> canon_raw u b

let canon_name u p = canon_string (canon_raw u p)

let strip_stdlib n =
  if C.has_prefix ~prefix:"Stdlib." n then String.sub n 7 (String.length n - 7)
  else n

(* Resolve a value reference to its definition: same-unit idents by
   stamp, everything else by canonical name (falling back to the
   referencing unit's own module prefix for nested-module paths). *)
let resolve_def st u (p : Path.t) : def option =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt u.u_stamps (Ident.unique_name id) with
      | Some d -> Some d
      | None -> (
          match Hashtbl.find_opt u.u_aliases (Ident.unique_name id) with
          | Some _ -> Hashtbl.find_opt st.by_name (canon_name u p)
          | None -> None))
  | _ -> (
      let n = canon_name u p in
      match Hashtbl.find_opt st.by_name n with
      | Some d -> Some d
      | None -> Hashtbl.find_opt st.by_name (u.u_mod ^ "." ^ n))

(* ------------------------------------------------------------------ *)
(* Typedtree helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec pat_vars : type k. k Typedtree.general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (q, id, _) -> id :: pat_vars q
  | Tpat_tuple ps | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_variant (_, Some q, _) -> pat_vars q
  | Tpat_record (fs, _) -> List.concat_map (fun (_, _, q) -> pat_vars q) fs
  | Tpat_lazy q -> pat_vars q
  | Tpat_value v -> pat_vars (v :> Typedtree.pattern)
  | Tpat_exception q -> pat_vars q
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | _ -> []

(* Depth-1 sub-expressions, via a recording iterator that does not
   recurse (module bodies excluded; Texp_letmodule is handled by the
   callers that care). *)
let immediate_subexprs (e : expression) : expression list =
  let acc = ref [] in
  let sub =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ x -> acc := x :: !acc);
      module_expr = (fun _ _ -> ());
    }
  in
  Tast_iterator.default_iterator.expr sub e;
  List.rev !acc

(* Peel leading single-case fun layers: the definition's parameters. *)
let peel_params (e : expression) :
    (Asttypes.arg_label * Ident.t list) list * expression =
  let rec go acc e =
    match e.exp_desc with
    | Texp_function
        { arg_label; param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
      ->
        go ((arg_label, param :: pat_vars c_lhs) :: acc) c_rhs
    | _ -> (List.rev acc, e)
  in
  go [] e

let rec is_arrow_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow_type t
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Definition collection                                               *)
(* ------------------------------------------------------------------ *)

let rec peel_mod (me : module_expr) =
  match me.mod_desc with
  | Tmod_ident (p, _) -> `Alias p
  | Tmod_structure s -> `Structure s
  | Tmod_constraint (inner, _, _, _) -> peel_mod inner
  | _ -> `Other

let add_def st u ~prefix ~name ~ids (body : expression) =
  let params, _ = peel_params body in
  let d =
    {
      d_name = prefix ^ "." ^ name;
      d_params = params;
      d_body = body;
      d_u = u;
      d_taint = None;
      d_wglobal = None;
      d_wparams = [];
    }
  in
  List.iter (fun id -> Hashtbl.replace u.u_stamps (Ident.unique_name id) d) ids;
  if not (Hashtbl.mem st.by_name d.d_name) then
    Hashtbl.replace st.by_name d.d_name d;
  d

let collect_defs st u =
  let defs = ref [] in
  let rec items prefix (its : structure_item list) =
    List.iter
      (fun it ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match pat_vars vb.vb_pat with
                | [] ->
                    let name =
                      Printf.sprintf "<top:%d>" (line_of vb.vb_expr.exp_loc)
                    in
                    defs :=
                      add_def st u ~prefix ~name ~ids:[] vb.vb_expr :: !defs
                | id :: _ as ids ->
                    defs :=
                      add_def st u ~prefix ~name:(Ident.name id) ~ids
                        vb.vb_expr
                      :: !defs)
              vbs
        | Tstr_module mb -> modbind prefix mb
        | Tstr_recmodule mbs -> List.iter (modbind prefix) mbs
        | Tstr_eval (e, _) ->
            let name = Printf.sprintf "<top:%d>" (line_of e.exp_loc) in
            defs := add_def st u ~prefix ~name ~ids:[] e :: !defs
        | Tstr_include incl -> (
            match peel_mod incl.incl_mod with
            | `Structure s -> items prefix s.str_items
            | _ -> ())
        | _ -> ())
      its
  and modbind prefix mb =
    match (mb.mb_id, peel_mod mb.mb_expr) with
    | Some id, `Alias p ->
        Hashtbl.replace u.u_aliases (Ident.unique_name id) p
    | Some id, `Structure s -> items (prefix ^ "." ^ Ident.name id) s.str_items
    | _ -> ()
  in
  (* let-module aliases anywhere in the unit *)
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_letmodule (Some id, _, _, me, _) -> (
              match peel_mod me with
              | `Alias p ->
                  Hashtbl.replace u.u_aliases (Ident.unique_name id) p
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it u.u_str;
  items u.u_mod u.u_str.str_items;
  List.rev !defs

(* ------------------------------------------------------------------ *)
(* Determinism taint (T001, T002)                                      *)
(* ------------------------------------------------------------------ *)

(* Is a one-line inline grant or allowlist grant absorbing reports for
   [rule] at this source line?  Used for taint *sources*: a sanctioned
   source stops tainting everything downstream of it. *)
let absorbed_at st u ~line ~rule =
  let inline =
    List.exists
      (fun (l, r) -> r = rule && (l = line || l = line - 1))
      u.u_supps.C.grants
  in
  if inline then begin
    if st.checking then
      st.rep.C.inline_suppressed <-
        (u.u_file, rule) :: st.rep.C.inline_suppressed;
    true
  end
  else if
    List.exists
      (fun g -> g.C.g_file = u.u_file && g.C.g_rule = rule)
      st.cfg.allow_grants
  then begin
    if st.checking then
      st.rep.C.grant_suppressed <-
        (u.u_file, rule) :: st.rep.C.grant_suppressed;
    true
  end
  else false

let file_report st u ~line ~rule msg =
  if st.checking then
    C.report st.rep ~supps:u.u_supps.C.grants ~allowlist:st.cfg.allow_grants
      ~file:u.u_file ~line ~rule msg

(* Recognize a determinism source by canonical name; suppressing T001
   at the source line kills the taint itself. *)
let source_of st u ~def_name ~line (n : string) : string option =
  let sn = strip_stdlib n in
  let hit what =
    if absorbed_at st u ~line ~rule:"T001" then None
    else Some (Printf.sprintf "%s (%s:%d)" what u.u_file line)
  in
  if C.has_prefix ~prefix:"Random." sn && not (st.cfg.random_exempt u.u_file)
  then hit ("Random source " ^ sn)
  else if
    List.mem sn [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]
    && not (st.cfg.clock_exempt u.u_file)
  then hit ("wall-clock read " ^ sn)
  else if sn = "Domain.self" then hit "Domain.self"
  else if
    List.mem sn [ "Hashtbl.fold"; "Hashtbl.iter" ]
    && st.cfg.order_scope u.u_file
    && not
         (List.exists
            (fun p -> C.has_prefix ~prefix:p def_name)
            st.cfg.trusted)
  then hit ("bucket-order-dependent " ^ sn)
  else None

let join a b = match a with Some _ -> a | None -> b

let is_sink st u f_expr =
  match f_expr.exp_desc with
  | Texp_ident (p, _, _) ->
      let n = canon_name u p in
      if List.mem n st.cfg.sinks then Some n
      else (
        match resolve_def st u p with
        | Some d when List.mem d.d_name st.cfg.sinks -> Some d.d_name
        | _ -> None)
  | _ -> None

(* Value-level taint with let/match binding and control-dependence
   joins; [check] additionally fires T001 at sink arguments, T002 at
   closure hashes, and E001 at spawn sites. *)
let rec taint st u ~def_name env (e : expression) : string option =
  let self = taint st u ~def_name env in
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id when Hashtbl.mem env (Ident.unique_name id) ->
          Hashtbl.find env (Ident.unique_name id)
      | _ -> (
          match resolve_def st u p with
          | Some d ->
              Option.map (fun w -> w ^ " via " ^ d.d_name) d.d_taint
          | None ->
              source_of st u ~def_name ~line:(line_of e.exp_loc)
                (canon_name u p)))
  | Texp_apply (f, args) -> taint_apply st u ~def_name env e f args
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          let t = self vb.vb_expr in
          List.iter
            (fun id -> Hashtbl.replace env (Ident.unique_name id) t)
            (pat_vars vb.vb_pat))
        vbs;
      self body
  | Texp_function { cases; _ } ->
      List.fold_left
        (fun acc c ->
          List.iter
            (fun id -> Hashtbl.replace env (Ident.unique_name id) None)
            (pat_vars c.c_lhs);
          let g = match c.c_guard with Some g -> self g | None -> None in
          join acc (join g (self c.c_rhs)))
        None cases
  | Texp_match (scrut, cases, _) ->
      let ts = self scrut in
      List.fold_left
        (fun acc c ->
          List.iter
            (fun id -> Hashtbl.replace env (Ident.unique_name id) ts)
            (pat_vars c.c_lhs);
          let g = match c.c_guard with Some g -> self g | None -> None in
          join acc (join g (self c.c_rhs)))
        ts cases
  | Texp_try (body, cases) ->
      List.fold_left
        (fun acc c ->
          List.iter
            (fun id -> Hashtbl.replace env (Ident.unique_name id) None)
            (pat_vars c.c_lhs);
          join acc (self c.c_rhs))
        (self body) cases
  | Texp_ifthenelse (c, a, b) ->
      let tc = self c in
      let ta = self a in
      let tb = match b with Some b -> self b | None -> None in
      join tc (join ta tb)
  | Texp_sequence (a, b) ->
      ignore (self a : string option);
      self b
  | Texp_letmodule (_, _, _, _, body) -> self body
  | _ ->
      List.fold_left
        (fun acc x -> join acc (self x))
        None (immediate_subexprs e)

and taint_apply st u ~def_name env e f args =
  let self = taint st u ~def_name env in
  let arg_taints =
    List.map
      (fun (_, a) -> match a with Some a -> self a | None -> None)
      args
  in
  let from_args = List.fold_left join None arg_taints in
  (* T001: tainted value reaching a sink argument *)
  (match is_sink st u f with
  | Some sink ->
      List.iter2
        (fun (_, a) t ->
          match (a, t) with
          | Some a, Some w ->
              file_report st u ~line:(line_of a.exp_loc) ~rule:"T001"
                (Printf.sprintf
                   "value derived from %s reaches determinism sink %s" w sink)
          | _ -> ())
        args arg_taints
  | None -> ());
  (* A sink passed to a higher-order call (List.fold_left fnv h xs):
     tainted data anywhere in the call feeds the sink. *)
  (match
     List.find_map
       (fun (_, a) ->
         match a with Some a -> is_sink st u a | None -> None)
       args
   with
  | Some sink -> (
      match List.fold_left join None arg_taints with
      | Some w ->
          file_report st u ~line:(line_of e.exp_loc) ~rule:"T001"
            (Printf.sprintf
               "value derived from %s reaches determinism sink %s through a \
                higher-order call"
               w sink)
      | None -> ())
  | None -> ());
  let fname =
    match f.exp_desc with
    | Texp_ident (p, _, _) -> Some (canon_name u p)
    | _ -> None
  in
  (* T002: address-based hash of a closure *)
  let t002 =
    match fname with
    | Some n
      when List.mem (strip_stdlib n) [ "Hashtbl.hash"; "Hashtbl.seeded_hash" ]
      ->
        List.fold_left
          (fun acc (_, a) ->
            match a with
            | Some a when is_arrow_type a.exp_type ->
                let line = line_of a.exp_loc in
                file_report st u ~line ~rule:"T002"
                  (Printf.sprintf
                     "%s of a closure hashes code/environment addresses"
                     (strip_stdlib n));
                join acc
                  (Some (Printf.sprintf "closure hash (%s:%d)" u.u_file line))
            | _ -> acc)
          None args
    | _ -> None
  in
  let from_f =
    match f.exp_desc with
    | Texp_ident (p, _, _) -> (
        match p with
        | Path.Pident id when Hashtbl.mem env (Ident.unique_name id) ->
            Hashtbl.find env (Ident.unique_name id)
        | _ -> (
            match resolve_def st u p with
            | Some d ->
                Option.map (fun w -> w ^ " via " ^ d.d_name) d.d_taint
            | None ->
                source_of st u ~def_name ~line:(line_of e.exp_loc)
                  (canon_name u p)))
    | _ -> self f
  in
  join t002 (join from_f from_args)

(* ------------------------------------------------------------------ *)
(* Escape analysis (E001)                                              *)
(* ------------------------------------------------------------------ *)

type wtarget = WGlobal of string | WParam of int

type wevent = { w_target : wtarget; w_what : string; w_line : int }

let builtin_mutators =
  [
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2); ("Bytes.set", 0); ("Bytes.unsafe_set", 0);
    ("Bytes.fill", 0); ("Bytes.blit", 2); ("Hashtbl.replace", 0);
    ("Hashtbl.add", 0); ("Hashtbl.remove", 0); ("Hashtbl.clear", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.filter_map_inplace", 1);
    ("Buffer.add_string", 0); ("Buffer.add_char", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_buffer", 0); ("Buffer.clear", 0); ("Buffer.reset", 0);
    ("Queue.add", 1); ("Queue.push", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Queue.clear", 0); ("Stack.push", 1); ("Stack.pop", 0);
    ("Atomic.set", 0); ("Atomic.incr", 0); ("Atomic.decr", 0);
    ("Atomic.exchange", 0); ("Atomic.fetch_and_add", 0);
  ]

(* Base identifier of a write target, peeling field/element access. *)
let rec write_base st u (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _)
    when not (Hashtbl.mem u.u_aliases (Ident.unique_name id)) ->
      `Id id
  | Texp_ident (p, _, _) -> `Qualified (canon_name u p)
  | Texp_field (b, _, _) -> write_base st u b
  | Texp_apply (f, (_, Some a) :: _) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _)
        when List.mem
               (strip_stdlib (canon_name u p))
               [ "Array.get"; "Array.unsafe_get"; "Bytes.get"; "!" ] ->
          write_base st u a
      | _ -> `None)
  | _ -> `None

let nolabel_args args =
  List.filter_map
    (fun (l, a) ->
      match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

(* Match supplied arguments to a definition's peeled parameter slots,
   returning (param index, argument) pairs. *)
let match_params (d : def) args =
  let taken = Array.make (List.length d.d_params) false in
  let slot lbl =
    let rec go i = function
      | [] -> None
      | (pl, _) :: rest ->
          let ok =
            (not taken.(i))
            &&
            match (lbl, pl) with
            | Asttypes.Nolabel, Asttypes.Nolabel -> true
            | Asttypes.Labelled a, Asttypes.Labelled b
            | Asttypes.Optional a, Asttypes.Optional b
            | Asttypes.Labelled a, Asttypes.Optional b ->
                a = b
            | _ -> false
          in
          if ok then begin
            taken.(i) <- true;
            Some i
          end
          else go (i + 1) rest
    in
    go 0 d.d_params
  in
  List.filter_map
    (fun (l, a) ->
      match a with
      | Some a -> ( match slot l with Some i -> Some (i, a) | None -> None)
      | None -> (
          ignore (slot l : int option);
          None))
    args

(* All writes in [body] escaping the frame: frame maps ident stamps to
   `Param i (the enclosing definition's parameters) or `Safe (locals,
   per-task arguments).  Everything unknown is free, hence shared. *)
let writes_in st u ~frame (body : expression) : wevent list =
  let events = ref [] in
  let bind_safe ids =
    (* never demote a pre-seeded `Param entry: the definition's own
       fun layers re-bind the same idents during the walk *)
    List.iter
      (fun id ->
        let k = Ident.unique_name id in
        if not (Hashtbl.mem frame k) then Hashtbl.replace frame k `Safe)
      ids
  in
  let emit line what = function
    | `None -> ()
    | `Qualified n ->
        events := { w_target = WGlobal n; w_what = what; w_line = line } :: !events
    | `Id id -> (
        match Hashtbl.find_opt frame (Ident.unique_name id) with
        | Some `Safe -> ()
        | Some (`Param i) ->
            events :=
              { w_target = WParam i; w_what = what; w_line = line } :: !events
        | None ->
            events :=
              { w_target = WGlobal (Ident.name id); w_what = what;
                w_line = line }
              :: !events)
  in
  let rec go (e : expression) =
    match e.exp_desc with
    | Texp_let (_, vbs, b) ->
        List.iter
          (fun vb ->
            go vb.vb_expr;
            bind_safe (pat_vars vb.vb_pat))
          vbs;
        go b
    | Texp_function { param; cases; _ } ->
        bind_safe [ param ];
        List.iter
          (fun c ->
            bind_safe (pat_vars c.c_lhs);
            (match c.c_guard with Some g -> go g | None -> ());
            go c.c_rhs)
          cases
    | Texp_match (s, cases, _) ->
        go s;
        List.iter
          (fun c ->
            bind_safe (pat_vars c.c_lhs);
            (match c.c_guard with Some g -> go g | None -> ());
            go c.c_rhs)
          cases
    | Texp_try (b, cases) ->
        go b;
        List.iter
          (fun c ->
            bind_safe (pat_vars c.c_lhs);
            go c.c_rhs)
          cases
    | Texp_setfield (b, _, lbl, v) ->
        emit (line_of e.exp_loc)
          (Printf.sprintf "assignment to field %s" lbl.Types.lbl_name)
          (write_base st u b);
        go b;
        go v
    | Texp_apply (f, args) ->
        (let fname =
           match f.exp_desc with
           | Texp_ident (p, _, _) -> Some (strip_stdlib (canon_name u p))
           | _ -> None
         in
         let line = line_of e.exp_loc in
         match fname with
         | Some n when List.mem n [ ":="; "incr"; "decr" ] -> (
             match nolabel_args args with
             | a :: _ ->
                 emit line ("reference " ^ n ^ " update") (write_base st u a)
             | [] -> ())
         | Some n
           when List.mem_assoc n (builtin_mutators @ st.cfg.mutators) -> (
             let i = List.assoc n (builtin_mutators @ st.cfg.mutators) in
             match List.nth_opt (nolabel_args args) i with
             | Some a -> emit line (n ^ " mutation") (write_base st u a)
             | None -> ())
         | _ -> (
             match f.exp_desc with
             | Texp_ident (p, _, _) -> (
                 match resolve_def st u p with
                 | Some g ->
                     (match g.d_wglobal with
                     | Some (what, _) ->
                         events :=
                           { w_target = WGlobal (g.d_name ^ ": " ^ what);
                             w_what = "call to " ^ g.d_name;
                             w_line = line }
                           :: !events
                     | None -> ());
                     List.iter
                       (fun (j, a) ->
                         if List.mem_assoc j g.d_wparams then
                           emit line
                             (Printf.sprintf "passed to %s, which %s" g.d_name
                                (List.assoc j g.d_wparams))
                             (write_base st u a))
                       (match_params g args)
                 | None -> ())
             | _ -> ()));
        go f;
        List.iter (fun (_, a) -> match a with Some a -> go a | None -> ()) args
    | Texp_letmodule (_, _, _, _, b) -> go b
    | _ -> List.iter go (immediate_subexprs e)
  in
  go body;
  List.rev !events

(* Spawn-site checks: literal task closures must not write captured
   state; partially-applied task functions must not write shared state
   or their partially-applied (hence task-shared) arguments. *)
let check_task st u ~spname task =
  match task.exp_desc with
  | Texp_function _ ->
      let frame = Hashtbl.create 16 in
      let evs = writes_in st u ~frame task in
      List.iter
        (fun ev ->
          match ev.w_target with
          | WGlobal what ->
              file_report st u ~line:ev.w_line ~rule:"E001"
                (Printf.sprintf
                   "%s task writes captured mutable state %s (%s)" spname
                   what ev.w_what)
          | WParam _ -> ())
        evs
  | _ -> (
      let g_expr, gargs =
        match task.exp_desc with
        | Texp_apply (g, a) -> (g, a)
        | _ -> (task, [])
      in
      match g_expr.exp_desc with
      | Texp_ident (p, _, _) -> (
          match resolve_def st u p with
          | Some g ->
              let line = line_of task.exp_loc in
              (match g.d_wglobal with
              | Some (what, wline) ->
                  file_report st u ~line ~rule:"E001"
                    (Printf.sprintf
                       "%s task %s writes shared mutable state: %s \
                        (%s:%d)"
                       spname g.d_name what g.d_u.u_file wline)
              | None -> ());
              let bound = List.map fst (match_params g gargs) in
              let per_item =
                let rec first i = if List.mem i bound then first (i + 1) else i in
                first 0
              in
              List.iter
                (fun (j, what) ->
                  if List.mem j bound then
                    file_report st u ~line ~rule:"E001"
                      (Printf.sprintf
                         "argument %d of %s is shared across %s tasks, and \
                          the task %s"
                         j g.d_name spname what)
                  else if j <> per_item then ())
                g.d_wparams
          | None -> ())
      | _ -> ())

let check_spawns st u body =
  let rec go e =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
        let sp =
          match f.exp_desc with
          | Texp_ident (p, _, _) -> (
              let n = strip_stdlib (canon_name u p) in
              match List.assoc_opt n st.cfg.spawns with
              | Some i -> Some (n, i)
              | None -> (
                  match resolve_def st u p with
                  | Some g ->
                      Option.map
                        (fun i -> (g.d_name, i))
                        (List.assoc_opt g.d_name st.cfg.spawns)
                  | None -> None))
          | _ -> None
        in
        match sp with
        | Some (spname, ti) -> (
            match List.nth_opt (nolabel_args args) ti with
            | Some task -> check_task st u ~spname task
            | None -> ())
        | None -> ())
    | _ -> ());
    List.iter go (immediate_subexprs e)
  in
  go body

(* ------------------------------------------------------------------ *)
(* Units of measure (U001, U002)                                       *)
(* ------------------------------------------------------------------ *)

let units_lookup st u n =
  match Hashtbl.find_opt st.units_tbl n with
  | Some d -> Some d
  | None -> Hashtbl.find_opt st.units_tbl (u.u_mod ^ "." ^ n)

let field_key u (lbl : Types.label_description) =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (p, _, _) ->
      Some (canon_name u p ^ "." ^ lbl.Types.lbl_name)
  | _ -> None

let join_dt a b =
  match (a, b) with
  | Dim x, Dim y when x = y -> Dim x
  | Dim x, Unknown -> Dim x
  | Unknown, Dim y -> Dim y
  | _ -> Unknown

let label_str = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled l -> "~" ^ l
  | Asttypes.Optional l -> "?" ^ l

let rec dim_of st u env (e : expression) : dtype =
  let self = dim_of st u env in
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id when Hashtbl.mem env (Ident.unique_name id) ->
          Hashtbl.find env (Ident.unique_name id)
      | _ -> (
          match units_lookup st u (canon_name u p) with
          | Some dt -> dt
          | None -> (
              match resolve_def st u p with
              | Some d -> (
                  match Hashtbl.find_opt st.units_tbl d.d_name with
                  | Some dt -> dt
                  | None -> Unknown)
              | None -> Unknown)))
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          let dt = self vb.vb_expr in
          match pat_vars vb.vb_pat with
          | [ id ] -> Hashtbl.replace env (Ident.unique_name id) dt
          | _ -> ())
        vbs;
      self body
  | Texp_function { cases; _ } ->
      List.iter (fun c -> ignore (self c.c_rhs : dtype)) cases;
      Unknown
  | Texp_match (s, cases, _) ->
      ignore (self s : dtype);
      List.fold_left (fun acc c -> join_dt acc (self c.c_rhs)) Unknown cases
  | Texp_try (b, cases) ->
      List.fold_left (fun acc c -> join_dt acc (self c.c_rhs)) (self b) cases
  | Texp_ifthenelse (c, a, b) -> (
      ignore (self c : dtype);
      let da = self a in
      match b with Some b -> join_dt da (self b) | None -> Unknown)
  | Texp_sequence (a, b) ->
      ignore (self a : dtype);
      self b
  | Texp_field (b, _, lbl) -> (
      ignore (self b : dtype);
      match field_key u lbl with
      | Some k -> (
          match units_lookup st u k with Some dt -> dt | None -> Unknown)
      | None -> Unknown)
  | Texp_setfield (b, _, lbl, v) ->
      ignore (self b : dtype);
      (let dv = self v in
       match (field_key u lbl, dv) with
       | Some k, Dim got -> (
           match units_lookup st u k with
           | Some (Dim want) when want <> got ->
               file_report st u ~line:(line_of v.exp_loc) ~rule:"U002"
                 (Printf.sprintf "field %s holds %s, assigned %s" k
                    (dim_to_string want) (dim_to_string got))
           | _ -> ())
       | _ -> ());
      Unknown
  | Texp_record { fields; extended_expression; _ } ->
      (match extended_expression with
      | Some x -> ignore (self x : dtype)
      | None -> ());
      Array.iter
        (fun (lbl, rld) ->
          match rld with
          | Overridden (_, v) -> (
              let dv = self v in
              match (field_key u lbl, dv) with
              | Some k, Dim got -> (
                  match units_lookup st u k with
                  | Some (Dim want) when want <> got ->
                      file_report st u ~line:(line_of v.exp_loc) ~rule:"U002"
                        (Printf.sprintf
                           "field %s declared %s, initialized with %s" k
                           (dim_to_string want) (dim_to_string got))
                  | _ -> ())
              | _ -> ())
          | Kept _ -> ())
        fields;
      Unknown
  | Texp_apply (f, args) -> dim_apply st u env e f args
  | Texp_letmodule (_, _, _, _, b) -> self b
  | _ ->
      List.iter (fun x -> ignore (self x : dtype)) (immediate_subexprs e);
      Unknown

and dim_apply st u env e f args =
  let self = dim_of st u env in
  let argds =
    List.map
      (fun (_, a) -> match a with Some a -> self a | None -> Unknown)
      args
  in
  let fname =
    match f.exp_desc with
    | Texp_ident (p, _, _) -> Some (strip_stdlib (canon_name u p))
    | _ ->
        ignore (self f : dtype);
        None
  in
  let two () = match argds with [ a; b ] -> Some (a, b) | _ -> None in
  let mismatch op a b =
    file_report st u ~line:(line_of e.exp_loc) ~rule:"U001"
      (Printf.sprintf "%s between %s and %s" op (dim_to_string a)
         (dim_to_string b))
  in
  match fname with
  | Some op when List.mem op [ "+."; "-."; "+"; "-"; "mod" ] -> (
      match two () with
      | Some (Dim a, Dim b) ->
          if a <> b then mismatch op a b;
          Dim a
      | Some (Dim a, Unknown) | Some (Unknown, Dim a) -> Dim a
      | _ -> Unknown)
  | Some (("*." | "*") as op) -> (
      ignore op;
      match two () with
      | Some (Dim a, Dim b) -> Dim (dim_mul a b)
      | _ -> Unknown)
  | Some (("/." | "/") as op) -> (
      ignore op;
      match two () with
      | Some (Dim a, Dim b) -> Dim (dim_mul a (dim_inv b))
      | _ -> Unknown)
  | Some op
    when List.mem op
           [ "~-."; "~-"; "abs"; "Float.abs"; "float_of_int"; "int_of_float";
             "Float.of_int"; "Float.to_int"; "truncate"; "ceil"; "floor";
             "Float.round" ] -> (
      match argds with [ a ] -> a | _ -> Unknown)
  | Some op when List.mem op [ "min"; "max"; "Float.min"; "Float.max" ] -> (
      match two () with
      | Some (Dim a, Dim b) ->
          if a <> b then mismatch op a b;
          Dim a
      | Some (Dim a, Unknown) | Some (Unknown, Dim a) -> Dim a
      | _ -> Unknown)
  | Some op
    when List.mem op
           [ "="; "<>"; "<"; ">"; "<="; ">="; "compare"; "Float.compare";
             "Float.equal"; "Int.compare" ] ->
      (match two () with
      | Some (Dim a, Dim b) when a <> b -> mismatch op a b
      | _ -> ());
      Unknown
  | Some (("Array.get" | "Array.unsafe_get") as op) -> (
      ignore op;
      match argds with a :: _ -> a | [] -> Unknown)
  | _ -> (
      let ann =
        match f.exp_desc with
        | Texp_ident (p, _, _) -> (
            let n = canon_name u p in
            match units_lookup st u n with
            | Some dt -> Some (n, dt)
            | None -> (
                match resolve_def st u p with
                | Some d ->
                    Option.map
                      (fun dt -> (d.d_name, dt))
                      (Hashtbl.find_opt st.units_tbl d.d_name)
                | None -> None))
        | _ -> None
      in
      match ann with
      | Some (n, Fn (slots, ret)) -> apply_slots st u ~fn:n slots ret args argds
      | _ -> Unknown)

and apply_slots st u ~fn slots ret args argds =
  let taken = Array.make (List.length slots) false in
  let find lbl =
    let rec go i = function
      | [] -> None
      | (sl, dt) :: rest ->
          if (not taken.(i)) && sl = lbl then begin
            taken.(i) <- true;
            Some dt
          end
          else go (i + 1) rest
    in
    go 0 slots
  in
  List.iter2
    (fun (l, a) da ->
      match find (label_str l) with
      | Some (Dim want) -> (
          match (a, da) with
          | Some a, Dim got when got <> want ->
              let ls = label_str l in
              file_report st u ~line:(line_of a.exp_loc) ~rule:"U002"
                (Printf.sprintf "argument %s of %s expects %s, got %s"
                   (if ls = "" then "(positional)" else ls)
                   fn (dim_to_string want) (dim_to_string got))
          | _ -> ())
      | _ -> ())
    args argds;
  let remaining = List.filteri (fun i _ -> not taken.(i)) slots in
  if remaining = [] then ret else Fn (remaining, ret)

(* ------------------------------------------------------------------ *)
(* Fixpoints and per-definition checks                                 *)
(* ------------------------------------------------------------------ *)

let summarize_writes st d : bool =
  let frame = Hashtbl.create 16 in
  List.iteri
    (fun i (_, ids) ->
      List.iter
        (fun id -> Hashtbl.replace frame (Ident.unique_name id) (`Param i))
        ids)
    d.d_params;
  let evs = writes_in st d.d_u ~frame d.d_body in
  let changed = ref false in
  List.iter
    (fun ev ->
      match ev.w_target with
      | WGlobal what ->
          if d.d_wglobal = None then begin
            d.d_wglobal <- Some (what ^ " (" ^ ev.w_what ^ ")", ev.w_line);
            changed := true
          end
      | WParam i ->
          if not (List.mem_assoc i d.d_wparams) then begin
            d.d_wparams <- (i, ev.w_what) :: d.d_wparams;
            changed := true
          end)
    evs;
  !changed

let run_fixpoints st defs =
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 50 do
    changed := false;
    incr iters;
    List.iter
      (fun d ->
        if d.d_taint = None then begin
          let env = Hashtbl.create 32 in
          match taint st d.d_u ~def_name:d.d_name env d.d_body with
          | Some w ->
              d.d_taint <- Some w;
              changed := true
          | None -> ()
        end)
      defs
  done;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 50 do
    changed := false;
    incr iters;
    List.iter
      (fun d -> if summarize_writes st d then changed := true)
      defs
  done

let check_units st d =
  let u = d.d_u in
  let env = Hashtbl.create 32 in
  (match Hashtbl.find_opt st.units_tbl d.d_name with
  | Some (Fn (slots, _)) ->
      let rec bind slots params =
        match (slots, params) with
        | (sl, dt) :: srest, (plbl, ids) :: prest when sl = label_str plbl ->
            (match (dt, plbl) with
            | Dim _, (Asttypes.Nolabel | Asttypes.Labelled _) ->
                List.iter
                  (fun id -> Hashtbl.replace env (Ident.unique_name id) dt)
                  ids
            | _ -> ());
            bind srest prest
        | _ -> ()
      in
      bind slots d.d_params
  | _ -> ());
  ignore (dim_of st u env d.d_body : dtype)

let check_def st d =
  let env = Hashtbl.create 32 in
  ignore (taint st d.d_u ~def_name:d.d_name env d.d_body : string option);
  check_spawns st d.d_u d.d_body;
  if Hashtbl.length st.units_tbl > 0 then check_units st d

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze ~config (units : unit_info list) : C.reporter =
  let st =
    {
      cfg = config;
      by_name = Hashtbl.create 512;
      units_tbl = Hashtbl.create 64;
      rep = C.make_reporter ();
      checking = false;
    }
  in
  List.iter (fun (n, d) -> Hashtbl.replace st.units_tbl n d) config.units;
  let defs = List.concat_map (collect_defs st) units in
  run_fixpoints st defs;
  st.checking <- true;
  List.iter
    (fun u -> List.iter (C.raw st.rep) u.u_supps.C.supp_errors)
    units;
  List.iter (check_def st) defs;
  st.rep

let make_unit ~modname ~filename ~source (str : Typedtree.structure) =
  {
    u_mod = modname;
    u_file = C.normalize filename;
    u_supps = C.scan_suppressions ~file:(C.normalize filename) source;
    u_aliases = Hashtbl.create 16;
    u_stamps = Hashtbl.create 64;
    u_str = str;
  }

(* Type a source held in memory against the stdlib-only initial
   environment — the fixture entry point used by test/test_lint.ml.
   Typing or parse errors come back as a PARSE violation. *)
let type_source ~modname ~filename source :
    (unit_info, C.violation) Stdlib.result =
  try
    Compmisc.init_path ();
    Env.set_unit_name modname;
    let env = Compmisc.initial_env () in
    let lb = Lexing.from_string source in
    Location.input_name := filename;
    Location.init lb filename;
    let past = Parse.implementation lb in
    let str, _, _, _, _ = Typemod.type_structure env past in
    Ok (make_unit ~modname ~filename ~source str)
  with exn ->
    let line, msg =
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
          let loc = err.Location.main.Location.loc in
          let s =
            Format.asprintf "%a" Location.print_report err
            |> String.map (fun c -> if c = '\n' then ' ' else c)
          in
          (line_of loc, String.trim s)
      | _ -> (1, Printexc.to_string exn)
    in
    Error
      { C.file = C.normalize filename; line; rule = "PARSE"; message = msg }

let check_sources ~config (srcs : (string * string * string) list) :
    C.violation list =
  let units, errs =
    List.fold_left
      (fun (us, es) (modname, filename, source) ->
        match type_source ~modname ~filename source with
        | Ok u -> (u :: us, es)
        | Error v -> (us, v :: es))
      ([], []) srcs
  in
  let rep = analyze ~config (List.rev units) in
  C.sort_violations (errs @ rep.C.out)

(* Load one .cmt produced by dune; [scope_ok] filters by the
   repo-relative source path recorded in it.  Suppression comments are
   read back from the source file (present next to the build tree —
   the @tlint rule runs in _build/default where dune copied them). *)
let load_cmt ~scope_ok path : unit_info option =
  let info = Cmt_format.read_cmt path in
  match (info.Cmt_format.cmt_annots, info.Cmt_format.cmt_sourcefile) with
  | Cmt_format.Implementation str, Some f when scope_ok (C.normalize f) ->
      let f = C.normalize f in
      let source = try C.read_file f with _ -> "" in
      Some
        (make_unit
           ~modname:(canon_string info.Cmt_format.cmt_modname)
           ~filename:f ~source str)
  | _ -> None

type result = {
  violations : C.violation list;
  units_scanned : int;
  reporter : C.reporter;
}

(* Analyze a set of .cmt files (unreadable ones are skipped; duplicate
   module names keep the first occurrence). *)
let run_cmts ~config ~scope_ok (cmt_paths : string list) : result =
  let seen = Hashtbl.create 64 in
  let units =
    List.filter_map
      (fun p ->
        match (try load_cmt ~scope_ok p with _ -> None) with
        | Some u when not (Hashtbl.mem seen u.u_mod) ->
            Hashtbl.replace seen u.u_mod ();
            Some u
        | _ -> None)
      cmt_paths
  in
  let rep = analyze ~config units in
  {
    violations = C.sort_violations rep.C.out;
    units_scanned = List.length units;
    reporter = rep;
  }
