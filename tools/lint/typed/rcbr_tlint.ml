(* rcbr_tlint.exe — typed interprocedural analysis, stage 2 (DESIGN.md
   §14).

   Usage:
     rcbr_tlint.exe [--allowlist FILE] [--units FILE] [--json[=FILE]]
                    [--sarif FILE] [--summary] [--list-rules] [DIR]

   Walks DIR (default: the current directory, which the dune alias
   [@tlint] makes _build/default) for the .cmt files dune produced
   under lib/ bin/ bench/ test/, runs the determinism-taint, Pool
   escape and units-of-measure passes over the whole program, and
   exits 1 on any unsuppressed finding.  Suppressions, the allowlist
   and the output formats are shared with stage 1. *)

module C = Rcbr_lint_core.Lint_common
module T = Rcbr_tlint_core.Tlint

let scope_ok f =
  List.exists
    (fun p -> C.has_prefix ~prefix:p f)
    [ "lib/"; "bin/"; "bench/"; "test/" ]

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then
            if entry = "" || entry.[0] = '.' then
              (* .objs/.eobjs hold the cmts; other dot-dirs don't *)
              if Filename.check_suffix entry ".objs"
                 || Filename.check_suffix entry ".eobjs"
                 || entry = ".objs" || entry = ".eobjs"
                 || String.length entry > 1
              then find_cmts acc path
              else acc
            else find_cmts acc path
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

let usage () =
  prerr_endline
    "usage: rcbr_tlint.exe [--allowlist FILE] [--units FILE] [--json[=FILE]] \
     [--sarif FILE] [--summary] [--list-rules] [DIR]";
  exit 2

let () =
  let allowlist_file = ref None in
  let units_file = ref None in
  let json = ref None in
  let sarif = ref None in
  let summary = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
        allowlist_file := Some file;
        parse rest
    | [ "--allowlist" ] -> usage ()
    | "--units" :: file :: rest ->
        units_file := Some file;
        parse rest
    | [ "--units" ] -> usage ()
    | "--json" :: rest ->
        json := Some None;
        parse rest
    | "--sarif" :: file :: rest ->
        sarif := Some file;
        parse rest
    | [ "--sarif" ] -> usage ()
    | "--summary" :: rest ->
        summary := true;
        parse rest
    | "--list-rules" :: _ ->
        List.iter
          (fun (id, descr) -> Printf.printf "%s  %s\n" id descr)
          C.typed_rules;
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest when C.has_prefix ~prefix:"--json=" arg ->
        json := Some (Some (String.sub arg 7 (String.length arg - 7)));
        parse rest
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dir = match !dirs with [] -> "." | d :: _ -> d in
  let grants =
    match !allowlist_file with
    | None -> []
    | Some f -> (
        try C.load_allowlist f
        with Failure m ->
          prerr_endline ("rcbr_tlint: " ^ m);
          exit 2)
  in
  let units =
    match !units_file with
    | None -> []
    | Some f -> (
        try T.parse_units (C.read_file f)
        with Failure m | Sys_error m ->
          prerr_endline ("rcbr_tlint: " ^ m);
          exit 2)
  in
  let config = T.repo_config ~units ~allow_grants:grants () in
  let cmts =
    List.sort compare
      (List.concat_map
         (fun root -> find_cmts [] (Filename.concat dir root))
         [ "lib"; "bin"; "bench"; "test" ])
  in
  let r = T.run_cmts ~config ~scope_ok cmts in
  let dead =
    match !allowlist_file with
    | None -> []
    | Some f ->
        C.dead_grants ~own_rules:C.typed_rules ~allowlist_file:f r.T.reporter
          grants
  in
  let violations = C.sort_violations (r.T.violations @ dead) in
  (match !json with
  | None -> C.print_text violations
  | Some dest -> (
      let s =
        C.json_of_violations ~tool:"rcbr_tlint"
          ~files_scanned:r.T.units_scanned violations
      in
      match dest with
      | None -> print_endline s
      | Some file -> C.write_file file s));
  (match !sarif with
  | None -> ()
  | Some file ->
      C.write_file file
        (C.sarif_of_violations ~tool:"rcbr_tlint" ~rules:C.typed_rules
           violations));
  if !summary then begin
    print_newline ();
    print_string (C.summary_table ~rules:C.typed_rules r.T.reporter)
  end;
  if violations = [] then begin
    Printf.printf "rcbr_tlint: %d compilation units clean\n" r.T.units_scanned;
    exit 0
  end
  else begin
    Printf.printf "rcbr_tlint: %d violation(s) over %d compilation units\n"
      (List.length violations) r.T.units_scanned;
    exit 1
  end
