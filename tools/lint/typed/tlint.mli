(** [rcbr_tlint]: typed interprocedural analysis over [.cmt] trees,
    stage 2 of the lint pipeline (DESIGN.md §14).

    The analyzer loads every typed tree dune produced for [lib/],
    [bin/], [bench/] and [test/], resolves references through the
    repo's local-module-alias idiom ([module Pool = Rcbr_util.Pool]),
    builds a cross-module definition table, and runs three passes:

    - {b T001/T002 — determinism taint.}  Sources ([Random.*] outside
      [Rcbr_util.Rng], wall-clock reads outside [bench/], [Domain.self],
      bucket-order-dependent [Hashtbl.iter]/[fold] outside
      [Rcbr_util.Tables], [Hashtbl.hash] of a closure) are propagated
      through let-bindings, control dependence and calls (a
      returns-taint fixpoint over the call graph) until they reach a
      sink — the FNV outcome hashes or Json emission — either as a
      direct argument or through a higher-order call.  Suppressing
      T001 at the {e source} line sanctions that source and kills all
      downstream reports from it.  The syntactic rules D001–D003 are
      this pass's fast-path pre-checks: they flag plain spellings at
      parse time; this pass follows the same facts across modules.
      The taint is value-level: flows through mutable cells
      (accumulating into a [ref]/array, then reading it back) are not
      tracked.

    - {b E001 — Pool escape.}  At each spawn site ([Pool.map],
      [Pool.map_array], [Pool.init], [Domain.spawn]) a literal task
      closure must not write state captured from outside it, and a
      partially-applied task function must not write shared state or
      any of its partially-applied (hence task-shared) arguments —
      established via per-definition writes-global / writes-param
      summaries computed to fixpoint.  Writing the task's own per-item
      argument is allowed.  This supersedes the syntactic R001, which
      only sees top-level mutable state in one file at a time.

    - {b U001/U002 — units of measure.}  A dimension lattice over
      seconds, slots, cells, bits, bytes and calls, seeded from
      [tools/lint/units.map].  Annotated values give identifiers,
      record fields and call results dimensions; arithmetic combines
      them ([*.], [/.]) or requires agreement ([+.], [-.],
      comparisons, [min]/[max] — U001); annotated argument slots and
      record fields reject mismatched dimensions (U002).  Coverage is
      opt-in: unannotated values are dimensionless-unknown and never
      flagged. *)

(** {1 Dimensions} *)

type dim = (string * int) list
(** Sorted (atom, exponent) pairs, no zero exponents; [[]] is
    dimensionless. *)

type dtype =
  | Unknown
  | Dim of dim
  | Fn of (string * dtype) list * dtype
      (** argument slots (["" ] positional, ["~l"] labelled, ["?l"]
          optional) and result *)

val dim_to_string : dim -> string

val parse_units : string -> (string * dtype) list
(** Parse units.map text ([name : dim [-> dim ...]] lines, [#]
    comments).  Unknown dimension tokens raise [Failure]. *)

(** {1 Configuration} *)

type config = {
  random_exempt : string -> bool;  (** file may use [Random] directly *)
  clock_exempt : string -> bool;  (** file may read the wall clock *)
  order_scope : string -> bool;  (** Hashtbl order is a source here *)
  trusted : string list;
      (** canonical def-name prefixes whose bodies are exempt from
          order-taint sources (e.g. ["Rcbr_util.Tables."]) *)
  sinks : string list;  (** canonical sink functions (T001) *)
  spawns : (string * int) list;
      (** spawn function, task-argument index among [Nolabel] args *)
  mutators : (string * int) list;
      (** extra mutators beyond the stdlib table: function, index of
          the mutated [Nolabel] argument *)
  units : (string * dtype) list;  (** units.map contents *)
  allow_grants : Rcbr_lint_core.Lint_common.grant list;
}

val strict_config : config
(** Everything in scope, nothing exempt or trusted, no sinks, spawns
    or units — fixtures add exactly what they exercise. *)

val repo_config :
  ?units:(string * dtype) list ->
  ?allow_grants:Rcbr_lint_core.Lint_common.grant list ->
  unit ->
  config
(** The repo policy: [Rng] may use [Random], [bench/] may read the
    clock, order matters in [lib/ bin/ bench/], [Tables] is trusted,
    sinks are the FNV outcome hashes and Json emission, spawn points
    are the [Pool] entry points and [Domain.spawn]. *)

(** {1 Entry points} *)

val check_sources :
  config:config ->
  (string * string * string) list ->
  Rcbr_lint_core.Lint_common.violation list
(** [(modname, filename, source)] units are typed in memory against
    the stdlib-only environment ([Compmisc]/[Typemod]) and analyzed
    together, so fixtures exercise the cross-definition machinery.
    Typing failures become PARSE violations; results are sorted. *)

type result = {
  violations : Rcbr_lint_core.Lint_common.violation list;
  units_scanned : int;
  reporter : Rcbr_lint_core.Lint_common.reporter;
      (** for the summary table and dead-grant check *)
}

val run_cmts : config:config -> scope_ok:(string -> bool) -> string list -> result
(** Analyze the given [.cmt] files together ([scope_ok] filters by the
    repo-relative source path recorded in each; unreadable files and
    duplicate module names are skipped). *)
