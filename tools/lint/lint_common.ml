(* Shared machinery for the two lint stages (DESIGN.md §8, §14).

   The syntactic stage (Lint, PR 4) and the typed interprocedural stage
   (Tlint) report through the same violation type, honour the same
   suppression grammar and allowlist format, and share the output
   formats (text, JSON, SARIF) and the per-rule summary table.  Keeping
   the grammar in one place is what makes a single inline comment able
   to silence one rule from each stage — [(* lint: allow D002, T001 —
   reason *)] — without the two binaries disagreeing about what it
   means. *)

type violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

(* --- rule registries -------------------------------------------------- *)

(* Both stages validate suppression comments and allowlist grants
   against the union, so a file can suppress a typed rule without the
   syntactic stage flagging the id as unknown (and vice versa). *)

let syntactic_rules =
  [
    ("D001", "no Random.* outside lib/util/rng.ml (use Rcbr_util.Rng)");
    ("D002", "no order-dependent Hashtbl.iter/fold in result-producing code");
    ("D003", "no wall-clock reads outside bench/");
    ("F001", "no polymorphic =/compare/min/max on float-bearing operands");
    ("F002", "no comparison against nan (use Float.is_nan)");
    ("R001", "no top-level mutable state in Pool-reachable libraries");
    ("P001", "no Obj.magic");
  ]

let typed_rules =
  [
    ("T001", "no determinism source reaching an outcome hash or result sink");
    ("T002", "no address-based Hashtbl.hash on closures or mutable values");
    ("E001", "no shared mutable state written inside a Pool/Domain task");
    ("U001", "no arithmetic/comparison between mismatched dimensions");
    ("U002", "no passing a value of one dimension where another is declared");
  ]

(* Meta diagnostics raised by the harness itself; not suppressible. *)
let meta_rules =
  [
    ("PARSE", "source failed to parse or type");
    ("SUPP", "suppression comment references an unknown rule id");
    ("GRANT", "allowlist grant is dead (matches no occurrence) or invalid");
  ]

let all_rule_ids =
  List.map fst (syntactic_rules @ typed_rules @ meta_rules)

(* --- paths ------------------------------------------------------------ *)

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let discover roots =
  let files = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if entry <> "_build" && entry.[0] <> '.' then
            walk (Filename.concat path entry))
        (Sys.readdir path)
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then files := normalize path :: !files
  in
  List.iter (fun r -> if Sys.file_exists r then walk r) roots;
  List.sort compare !files

(* --- suppression comments --------------------------------------------- *)

(* [(* lint: allow D002, T001 — reason *)] on the violation's own line
   or the line above.  The reason is mandatory: a bare [lint: allow
   D002] grants nothing, so every suppression in the tree documents
   itself.  A rule id no stage knows is an error ([SUPP]), never a
   silent no-op — a typo'd suppression that quietly grants nothing is
   worse than a loud one. *)

let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_upper c || is_digit c || (c >= 'a' && c <= 'z')

type suppressions = {
  grants : (int * string) list;  (** (line, rule) inline grants *)
  supp_errors : violation list;  (** unknown rule ids ([SUPP]) *)
}

let scan_suppressions ~file source =
  let out = ref [] in
  let errors = ref [] in
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let n_lines = Array.length lines in
  let find_sub line sub from =
    let len = String.length line and sl = String.length sub in
    let rec go p =
      if p + sl > len then None
      else if String.sub line p sl = sub then Some p
      else go (p + 1)
    in
    go from
  in
  Array.iteri
    (fun i line ->
      let len = String.length line in
      match find_sub line "lint:" 0 with
      | None -> ()
      | Some marker ->
          let pos = marker + 5 in
          let skip_ws p =
            let p = ref p in
            while !p < len && (line.[!p] = ' ' || line.[!p] = '\t') do
              incr p
            done;
            !p
          in
          let pos = skip_ws pos in
          if pos + 5 <= len && String.sub line pos 5 = "allow" then begin
            let pos = ref (skip_ws (pos + 5)) in
            let rules_found = ref [] in
            let continue = ref true in
            while !continue do
              let start = !pos in
              while !pos < len && is_upper line.[!pos] do
                incr pos
              done;
              let letters = !pos > start in
              let digits_start = !pos in
              while !pos < len && is_digit line.[!pos] do
                incr pos
              done;
              if letters && !pos > digits_start then begin
                rules_found :=
                  String.sub line start (!pos - start) :: !rules_found;
                let p = skip_ws !pos in
                if p < len && line.[p] = ',' then pos := skip_ws (p + 1)
                else begin
                  pos := p;
                  continue := false
                end
              end
              else begin
                pos := start;
                continue := false
              end
            done;
            (* The comment may span lines; the suppression anchors to the
               line holding the closing "*)", and the reason — mandatory —
               is everything between the rule list and that close. *)
            let close_line = ref i in
            let reasoned = ref false in
            let check_span line from upto =
              for p = from to upto - 1 do
                if is_alnum line.[p] then reasoned := true
              done
            in
            (match find_sub line "*)" !pos with
            | Some close -> check_span line !pos close
            | None ->
                check_span line !pos len;
                let j = ref (i + 1) in
                let found = ref false in
                while (not !found) && !j < n_lines && !j <= i + 10 do
                  (match find_sub lines.(!j) "*)" 0 with
                  | Some close ->
                      check_span lines.(!j) 0 close;
                      close_line := !j;
                      found := true
                  | None -> check_span lines.(!j) 0 (String.length lines.(!j)));
                  incr j
                done;
                if not !found then close_line := i);
            List.iter
              (fun r ->
                if not (List.mem r all_rule_ids) then
                  errors :=
                    {
                      file;
                      line = i + 1;
                      rule = "SUPP";
                      message =
                        Printf.sprintf
                          "suppression references unknown rule id %s — no \
                           lint stage owns it, so it would grant nothing"
                          r;
                    }
                    :: !errors
                else if !reasoned then
                  out := (!close_line + 1, r) :: !out)
              !rules_found
          end)
    lines;
  { grants = !out; supp_errors = List.rev !errors }

(* --- allowlist -------------------------------------------------------- *)

type grant = {
  g_file : string;  (** normalized path the grant covers *)
  g_rule : string;
  g_reason : string;
  g_line : int;  (** line in the allowlist file, for dead-grant reports *)
}

let load_allowlist path =
  let ic = open_in path in
  let grants = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then begin
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | file :: rule :: (_ :: _ as reason) ->
             if not (List.mem rule all_rule_ids) then
               failwith
                 (Printf.sprintf
                    "%s:%d: allowlist grant names unknown rule %s" path
                    !lineno rule);
             grants :=
               {
                 g_file = normalize file;
                 g_rule = rule;
                 g_reason = String.concat " " reason;
                 g_line = !lineno;
               }
               :: !grants
         | _ ->
             failwith
               (Printf.sprintf
                  "%s:%d: allowlist grants are '<path> <RULE> <reason...>' \
                   — the reason is mandatory"
                  path !lineno)
       end
     done
   with End_of_file -> close_in ic);
  List.rev !grants

(* --- reporting -------------------------------------------------------- *)

(* One reporter per run.  [report] consults the per-file inline
   suppressions and the allowlist; what it absorbs is counted, so the
   summary table can show suppressions next to findings and the
   dead-grant check knows which grants still pull their weight. *)

type reporter = {
  mutable out : violation list;
  mutable inline_suppressed : (string * string) list;  (** (file, rule) *)
  mutable grant_suppressed : (string * string) list;  (** (file, rule) *)
}

let make_reporter () =
  { out = []; inline_suppressed = []; grant_suppressed = [] }

let report rep ~supps ~allowlist ~file ~line ~rule message =
  if List.exists (fun (l, r) -> r = rule && (l = line || l = line - 1)) supps
  then rep.inline_suppressed <- (file, rule) :: rep.inline_suppressed
  else if
    List.exists (fun g -> g.g_rule = rule && g.g_file = file) allowlist
  then rep.grant_suppressed <- (file, rule) :: rep.grant_suppressed
  else rep.out <- { file; line; rule; message } :: rep.out

let raw rep v = rep.out <- v :: rep.out

let sort_violations vs =
  List.sort
    (fun a b ->
      match compare a.file b.file with
      | 0 -> (
          match compare a.line b.line with
          | 0 -> compare (a.rule, a.message) (b.rule, b.message)
          | c -> c)
      | c -> c)
    vs

(* Grants for rules the running stage owns that absorbed nothing this
   run are dead: the occurrence they documented is gone, and leaving
   them in place would silently cover the next occurrence, whatever it
   is.  Grants for the other stage's rules are not ours to judge. *)
let dead_grants ~own_rules ~allowlist_file rep grants =
  let own = List.map fst own_rules in
  List.filter_map
    (fun g ->
      if
        List.mem g.g_rule own
        && not
             (List.exists
                (fun (f, r) -> f = g.g_file && r = g.g_rule)
                rep.grant_suppressed)
      then
        Some
          {
            file = allowlist_file;
            line = g.g_line;
            rule = "GRANT";
            message =
              Printf.sprintf
                "dead grant: %s %s matches no occurrence in the tree — \
                 delete it (reason was: %s)"
                g.g_file g.g_rule g.g_reason;
          }
      else None)
    grants

(* --- output: text / JSON / SARIF -------------------------------------- *)

let print_text vs =
  List.iter
    (fun v ->
      Printf.printf "%s:%d:%s: %s\n" v.file v.line v.rule v.message)
    vs

(* Hand-rolled emission so the lint stages depend on nothing but
   compiler-libs (they lint the JSON library they would otherwise
   link). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_violations ~tool ~files_scanned vs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"tool\":\"%s\",\"files_scanned\":%d,\"violations\":["
       (json_escape tool) files_scanned);
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
           (json_escape v.file) v.line (json_escape v.rule)
           (json_escape v.message)))
    vs;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Minimal SARIF 2.1.0: enough for GitHub code-scanning annotations
   (ruleId + message + physicalLocation with file/line). *)
let sarif_of_violations ~tool ~rules vs =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",";
  Buffer.add_string b "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{";
  Buffer.add_string b
    (Printf.sprintf "\"name\":\"%s\",\"rules\":[" (json_escape tool));
  List.iteri
    (fun i (id, descr) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
           (json_escape id) (json_escape descr)))
    (rules @ meta_rules);
  Buffer.add_string b "]}},\"results\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d}}}]}"
           (json_escape v.rule) (json_escape v.message) (json_escape v.file)
           (max 1 v.line)))
    vs;
  Buffer.add_string b "]}]}";
  Buffer.contents b

(* --- per-rule summary table ------------------------------------------- *)

let count p xs = List.length (List.filter p xs)

let summary_table ~rules rep =
  let vs = rep.out in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-6s %9s %11s %11s  %s\n" "rule" "findings" "inline"
       "allowlist" "description");
  let row id descr =
    let fired = count (fun v -> v.rule = id) vs in
    let inl = count (fun (_, r) -> r = id) rep.inline_suppressed in
    let grt = count (fun (_, r) -> r = id) rep.grant_suppressed in
    Buffer.add_string b
      (Printf.sprintf "%-6s %9d %11d %11d  %s\n" id fired inl grt descr)
  in
  List.iter (fun (id, descr) -> row id descr) rules;
  List.iter
    (fun (id, descr) ->
      if count (fun v -> v.rule = id) vs > 0 then row id descr)
    meta_rules;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc
