(** Shared machinery for the two lint stages (DESIGN.md §8, §14).

    The syntactic stage ({!module:Lint}, [rcbr_lint.exe]) and the typed
    interprocedural stage ([Tlint], [rcbr_tlint.exe]) share one
    violation type, one suppression grammar, one allowlist format, the
    report formats (text / JSON / SARIF) and the per-rule summary
    table.  A single inline comment can therefore silence one rule from
    each stage — [(* lint: allow D002, T001 — reason *)]. *)

type violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val syntactic_rules : (string * string) list
(** Rules of the parsetree stage: D001–D003, F001–F002, R001, P001. *)

val typed_rules : (string * string) list
(** Rules of the [.cmt] stage: T001–T002 (determinism taint), E001
    (Pool escape), U001–U002 (units of measure). *)

val meta_rules : (string * string) list
(** PARSE / SUPP / GRANT — harness diagnostics, not suppressible. *)

val all_rule_ids : string list
(** Union of every stage's ids plus the meta ids; the vocabulary
    suppression comments and allowlist grants are validated against. *)

(** {1 Paths and files} *)

val normalize : string -> string
val has_prefix : prefix:string -> string -> bool
val read_file : string -> string

val discover : string list -> string list
(** Recursively collect the [.ml]/[.mli] files under the roots, sorted;
    [_build] and dot-directories are skipped. *)

(** {1 Suppressions} *)

type suppressions = {
  grants : (int * string) list;  (** (line, rule) inline grants *)
  supp_errors : violation list;
      (** [SUPP] violations for rule ids no stage knows — a typo'd
          suppression is an error, never a silent no-op *)
}

val scan_suppressions : file:string -> string -> suppressions
(** Scan one source for [(* lint: allow RULE[, RULE...] — reason *)]
    comments.  The reason is mandatory; multi-line comments anchor the
    grant to the line holding the closing ["*)"]. *)

(** {1 Allowlist} *)

type grant = {
  g_file : string;  (** normalized path the grant covers *)
  g_rule : string;
  g_reason : string;
  g_line : int;  (** line in the allowlist file, for dead-grant reports *)
}

val load_allowlist : string -> grant list
(** Parse [<path> <RULE> <reason...>] lines ([#] comments and blanks
    skipped).  Missing reasons and unknown rule ids are rejected with
    [Failure]. *)

(** {1 Reporting} *)

type reporter = {
  mutable out : violation list;
  mutable inline_suppressed : (string * string) list;  (** (file, rule) *)
  mutable grant_suppressed : (string * string) list;  (** (file, rule) *)
}

val make_reporter : unit -> reporter

val report :
  reporter ->
  supps:(int * string) list ->
  allowlist:grant list ->
  file:string ->
  line:int ->
  rule:string ->
  string ->
  unit
(** File a violation unless an inline suppression (same or preceding
    line) or an allowlist grant absorbs it; absorbed reports are
    counted for the summary table and the dead-grant check. *)

val raw : reporter -> violation -> unit
(** File a violation bypassing suppression (PARSE/SUPP/GRANT). *)

val sort_violations : violation list -> violation list
(** Stable report order: file, then line, then (rule, message). *)

val dead_grants :
  own_rules:(string * string) list ->
  allowlist_file:string ->
  reporter ->
  grant list ->
  violation list
(** [GRANT] violations for allowlist entries naming rules of the
    running stage that absorbed nothing this run (satellite: dead
    grants rot silently otherwise).  Grants for the other stage's
    rules are ignored. *)

(** {1 Output} *)

val print_text : violation list -> unit

val json_of_violations :
  tool:string -> files_scanned:int -> violation list -> string

val sarif_of_violations :
  tool:string -> rules:(string * string) list -> violation list -> string
(** Minimal SARIF 2.1.0 — enough for GitHub code-scanning annotations
    (ruleId, message, file, startLine). *)

val summary_table : rules:(string * string) list -> reporter -> string
(** Per-rule findings / inline suppressions / allowlist absorptions,
    one row per stage rule (meta rules only when they fired). *)

val write_file : string -> string -> unit
