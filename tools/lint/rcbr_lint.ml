(* rcbr_lint.exe — determinism & domain-safety lint (DESIGN.md §8).

   Usage:
     rcbr_lint.exe [--allowlist FILE] [--list-rules] [PATH ...]

   Scans the given roots (default: lib bin bench test) for .ml/.mli
   files, reports every rule violation as "file:line:rule: message" on
   stdout, and exits 1 if any were found.  Run from the repo root; the
   dune alias [@lint] does exactly that in a sandbox. *)

module Lint = Rcbr_lint_core.Lint

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let usage () =
  prerr_endline
    "usage: rcbr_lint.exe [--allowlist FILE] [--list-rules] [PATH ...]";
  exit 2

let () =
  let allowlist_file = ref None in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
        allowlist_file := Some file;
        parse rest
    | [ "--allowlist" ] -> usage ()
    | "--list-rules" :: _ ->
        List.iter
          (fun (id, descr) -> Printf.printf "%s  %s\n" id descr)
          Lint.rules;
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | path :: rest ->
        roots := path :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then default_roots else List.rev !roots in
  let violations, scanned =
    Lint.run ?allowlist_file:!allowlist_file ~roots ()
  in
  List.iter
    (fun v ->
      Printf.printf "%s:%d:%s: %s\n" v.Lint.file v.Lint.line v.Lint.rule
        v.Lint.message)
    violations;
  if violations = [] then begin
    Printf.printf "rcbr_lint: %d files clean\n" scanned;
    exit 0
  end
  else begin
    Printf.printf "rcbr_lint: %d violation(s) in %d files scanned\n"
      (List.length violations) scanned;
    exit 1
  end
