(* rcbr_lint.exe — determinism & domain-safety lint, stage 1 (DESIGN.md §8).

   Usage:
     rcbr_lint.exe [--allowlist FILE] [--json[=FILE]] [--sarif FILE]
                   [--summary] [--list-rules] [PATH ...]

   Scans the given roots (default: lib bin bench test) for .ml/.mli
   files, reports every rule violation as "file:line:rule: message" on
   stdout (or as JSON / SARIF 2.1.0 for CI annotation upload), and
   exits 1 if any were found.  Dead allowlist grants for stage-1 rules
   are violations too (GRANT).  Run from the repo root; the dune alias
   [@lint] does exactly that in a sandbox. *)

module C = Rcbr_lint_core.Lint_common
module Lint = Rcbr_lint_core.Lint

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let usage () =
  prerr_endline
    "usage: rcbr_lint.exe [--allowlist FILE] [--json[=FILE]] [--sarif FILE] \
     [--summary] [--list-rules] [PATH ...]";
  exit 2

let () =
  let allowlist_file = ref None in
  let json = ref None in
  let sarif = ref None in
  let summary = ref false in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
        allowlist_file := Some file;
        parse rest
    | [ "--allowlist" ] -> usage ()
    | "--json" :: rest ->
        json := Some None;
        parse rest
    | "--sarif" :: file :: rest ->
        sarif := Some file;
        parse rest
    | [ "--sarif" ] -> usage ()
    | "--summary" :: rest ->
        summary := true;
        parse rest
    | "--list-rules" :: _ ->
        List.iter
          (fun (id, descr) -> Printf.printf "%s  %s\n" id descr)
          Lint.rules;
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest when C.has_prefix ~prefix:"--json=" arg ->
        json :=
          Some (Some (String.sub arg 7 (String.length arg - 7)));
        parse rest
    | path :: rest ->
        roots := path :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then default_roots else List.rev !roots in
  let r = Lint.run_stage ?allowlist_file:!allowlist_file ~roots () in
  let violations = r.Lint.violations in
  (match !json with
  | None -> C.print_text violations
  | Some dest -> (
      let s =
        C.json_of_violations ~tool:"rcbr_lint"
          ~files_scanned:r.Lint.files_scanned violations
      in
      match dest with
      | None -> print_endline s
      | Some file -> C.write_file file s));
  (match !sarif with
  | None -> ()
  | Some file ->
      C.write_file file
        (C.sarif_of_violations ~tool:"rcbr_lint" ~rules:Lint.rules violations));
  if !summary then begin
    print_newline ();
    print_string (C.summary_table ~rules:Lint.rules r.Lint.reporter)
  end;
  if violations = [] then begin
    Printf.printf "rcbr_lint: %d files clean\n" r.Lint.files_scanned;
    exit 0
  end
  else begin
    Printf.printf "rcbr_lint: %d violation(s) in %d files scanned\n"
      (List.length violations) r.Lint.files_scanned;
    exit 1
  end
