(* Determinism & domain-safety lint over the parsetree (DESIGN.md §8).

   The analysis is deliberately syntactic: it parses with the compiler's
   own parser (so it can never disagree with the build about what the
   source says) but does not type.  Rules are tuned so that every firing
   is either a true positive or a one-line suppression with a reason —
   the tree is kept lint-clean, so any new hit is signal.

   Since the typed stage (Tlint, DESIGN.md §14) landed, D001–D003 serve
   as its fast-path pre-checks: they catch the plain spellings cheaply
   at parse time, while the whole-program taint pass (T001) follows the
   same facts through calls and module boundaries.  Diagnostics,
   suppressions, allowlist and output live in {!Lint_common}, shared by
   both stages. *)

module C = Lint_common

type violation = C.violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let rules = C.syntactic_rules

type config = {
  d001_exempt : string -> bool;
  d002_scope : string -> bool;
  d003_exempt : string -> bool;
  r001_zone : string -> bool;
  allowlist : (string * string) list;
}

let normalize = C.normalize
let has_prefix = C.has_prefix

(* --- parsetree helpers ----------------------------------------------- *)

open Parsetree

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (_, l) -> flatten l

let head lid = match flatten lid with [] -> "" | h :: _ -> h

(* Syntactically float-bearing expressions: the operand evidence F001
   accepts.  Deliberately shallow — no recursion into arbitrary
   applications — so every firing is explainable by looking at the line. *)
let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_constants =
  [ "nan"; "infinity"; "neg_infinity"; "epsilon_float"; "max_float"; "min_float" ]

let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Lident s; _ } -> List.mem s float_constants
  | Pexp_ident { txt = Ldot (Lident "Float", _); _ } -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match txt with
      | Lident op when List.mem op float_ops -> true
      | Lident ("float_of_int" | "float_of_string") -> true
      | Ldot (Lident "Float", f) when f <> "to_int" -> true
      | _ -> false)
  | Pexp_constraint (inner, ty) -> (
      match ty.ptyp_desc with
      | Ptyp_constr ({ txt = Lident "float"; _ }, _) -> true
      | _ -> floatish inner)
  | _ -> false

let is_nan_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident "nan"; _ }
  | Pexp_ident { txt = Ldot (Lident "Float", "nan"); _ } ->
      true
  | _ -> false

let poly_cmp_names = [ "="; "<>"; "compare"; "min"; "max" ]

let nan_cmp_names =
  [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare" ]

(* Bare (unqualified or Stdlib-qualified) name of a function position. *)
let bare_name lid =
  match lid with
  | Longident.Lident s -> Some s
  | Longident.Ldot (Lident "Stdlib", s) -> Some s
  | _ -> None

let wall_clock_paths =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gmtime" ];
    [ "Unix"; "localtime" ];
  ]

let mutable_creators =
  [
    [ "Hashtbl"; "create" ];
    [ "Buffer"; "create" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
  ]

(* --- per-file checker ------------------------------------------------ *)

type ctx = {
  cfg : config;
  file : string;  (* normalized *)
  supps : (int * string) list;
  grants : C.grant list;  (* config.allowlist, as reporter grants *)
  rep : C.reporter;
}

let report ctx ~loc rule message =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  C.report ctx.rep ~supps:ctx.supps ~allowlist:ctx.grants ~file:ctx.file
    ~line ~rule message

let check_ident ctx lid loc =
  let path = flatten lid in
  (match path with
  | "Random" :: _ when not (ctx.cfg.d001_exempt ctx.file) ->
      report ctx ~loc "D001"
        (Printf.sprintf
           "use of %s — all randomness must flow through Rcbr_util.Rng \
            (splittable, replayable)"
           (String.concat "." path))
  | _ -> ());
  (match List.rev path with
  | fn :: "Hashtbl" :: _ when fn = "iter" || fn = "fold" ->
      if ctx.cfg.d002_scope ctx.file then
        report ctx ~loc "D002"
          (Printf.sprintf
             "order-dependent Hashtbl.%s in a result path — iterate in \
              sorted key order (Rcbr_util.Tables) or suppress with a reason"
             fn)
  | _ -> ());
  if List.mem path wall_clock_paths && not (ctx.cfg.d003_exempt ctx.file)
  then
    report ctx ~loc "D003"
      (Printf.sprintf
         "wall-clock read %s outside bench/ breaks replayability — take \
          time as an input"
         (String.concat "." path));
  if path = [ "Obj"; "magic" ] then
    report ctx ~loc "P001"
      "Obj.magic defeats the type system — no use is admissible here"

let check_apply ctx fn args loc =
  let arg_exprs = List.map snd args in
  let fn_name =
    match fn.pexp_desc with
    | Pexp_ident { txt; _ } -> bare_name txt
    | _ -> None
  in
  (match fn_name with
  | Some name ->
      if List.mem name nan_cmp_names && List.exists is_nan_expr arg_exprs
      then
        report ctx ~loc "F002"
          (Printf.sprintf
             "comparison (%s) against nan is always false/unspecified — \
              use Float.is_nan"
             name)
      else if
        List.mem name poly_cmp_names && List.exists floatish arg_exprs
      then
        report ctx ~loc "F001"
          (Printf.sprintf
             "polymorphic %s on float-bearing operands — use Float.%s"
             name
             (match name with
             | "=" -> "equal"
             | "<>" -> "equal (negated)"
             | n -> n))
  | None -> ());
  (* Polymorphic comparator handed to a higher-order function alongside
     float evidence: [Array.fold_left max 0. rates]. *)
  let bare_cmp e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match bare_name txt with
        | Some n when List.mem n [ "min"; "max"; "compare" ] -> Some n
        | _ -> None)
    | _ -> None
  in
  if
    match fn_name with
    | Some name -> not (List.mem name poly_cmp_names)
    | None -> true
  then
    match List.filter_map bare_cmp arg_exprs with
    | cmp :: _ when List.exists floatish arg_exprs ->
        report ctx ~loc "F001"
          (Printf.sprintf
             "polymorphic %s passed over float-bearing operands — use \
              Float.%s"
             cmp cmp)
    | _ -> ()

let check_open ctx lid loc =
  if head lid = "Random" && not (ctx.cfg.d001_exempt ctx.file) then
    report ctx ~loc "D001"
      "open Random — all randomness must flow through Rcbr_util.Rng"

let make_iterator ctx =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun it e ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> check_ident ctx txt e.pexp_loc
        | Pexp_apply (fn, args) -> check_apply ctx fn args e.pexp_loc
        | _ -> ());
        default_iterator.expr it e);
    open_declaration =
      (fun it od ->
        (match od.popen_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> check_open ctx txt od.popen_loc
        | _ -> ());
        default_iterator.open_declaration it od);
    open_description =
      (fun it od ->
        check_open ctx od.popen_expr.txt od.popen_loc;
        default_iterator.open_description it od);
  }

(* --- R001: module-level mutable state -------------------------------- *)

(* A separate walk that never crosses into expressions, so only values
   created once per module (not per call) are candidates. *)

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> peel inner
  | Pexp_newtype (_, inner) -> peel inner
  | _ -> e

let collect_mutable_fields str =
  let fields = ref [] in
  let add_decls decls =
    List.iter
      (fun d ->
        match d.ptype_kind with
        | Ptype_record labels ->
            List.iter
              (fun l ->
                if l.pld_mutable = Asttypes.Mutable then
                  fields := l.pld_name.txt :: !fields)
              labels
        | _ -> ())
      decls
  in
  let rec walk str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_type (_, decls) -> add_decls decls
        | Pstr_module mb -> walk_mod mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter (fun mb -> walk_mod mb.pmb_expr) mbs
        | Pstr_include inc -> walk_mod inc.pincl_mod
        | _ -> ())
      str
  and walk_mod me =
    match me.pmod_desc with
    | Pmod_structure s -> walk s
    | Pmod_functor (_, body) -> walk_mod body
    | Pmod_constraint (inner, _) -> walk_mod inner
    | _ -> ()
  in
  walk str;
  !fields

let r001_walk ctx str =
  if ctx.cfg.r001_zone ctx.file then begin
    let mutable_fields = collect_mutable_fields str in
    let candidate vb =
      let e = peel vb.pvb_expr in
      let flag what =
        report ctx ~loc:vb.pvb_loc "R001"
          (Printf.sprintf
             "top-level mutable state (%s) in a Pool-reachable library — \
              make it per-task, or guard it and suppress with a reason"
             what)
      in
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> ()
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
          match flatten txt with
          | [ "ref" ] -> flag "ref"
          | path when List.mem path mutable_creators ->
              flag (String.concat "." path)
          | _ -> ())
      | Pexp_record (fields, _) ->
          let hit =
            List.filter_map
              (fun (lid, _) ->
                match (lid : Longident.t Location.loc).txt with
                | Lident n when List.mem n mutable_fields -> Some n
                | _ -> None)
              fields
          in
          (match hit with
          | n :: _ -> flag (Printf.sprintf "record with mutable field %s" n)
          | [] -> ())
      | _ -> ()
    in
    let rec walk str =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter candidate vbs
          | Pstr_module mb -> walk_mod mb.pmb_expr
          | Pstr_recmodule mbs ->
              List.iter (fun mb -> walk_mod mb.pmb_expr) mbs
          | Pstr_include inc -> walk_mod inc.pincl_mod
          | _ -> ())
        str
    and walk_mod me =
      match me.pmod_desc with
      | Pmod_structure s -> walk s
      | Pmod_functor (_, body) -> walk_mod body
      | Pmod_constraint (inner, _) -> walk_mod inner
      | _ -> ()
    in
    walk str
  end

(* --- entry points ---------------------------------------------------- *)

let strict_config =
  {
    d001_exempt = (fun _ -> false);
    d002_scope = (fun _ -> true);
    d003_exempt = (fun _ -> false);
    r001_zone = (fun _ -> true);
    allowlist = [];
  }

let grants_of_config config =
  List.map
    (fun (file, rule) ->
      { C.g_file = file; g_rule = rule; g_reason = ""; g_line = 0 })
    config.allowlist

let check_source_into rep ~config ~filename source =
  let file = normalize filename in
  let { C.grants = supps; supp_errors } = C.scan_suppressions ~file source in
  List.iter (C.raw rep) supp_errors;
  let ctx =
    { cfg = config; file; supps; grants = grants_of_config config; rep }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  try
    if Filename.check_suffix file ".mli" then begin
      let sg = Parse.interface lexbuf in
      let it = make_iterator ctx in
      it.Ast_iterator.signature it sg
    end
    else begin
      let str = Parse.implementation lexbuf in
      let it = make_iterator ctx in
      it.Ast_iterator.structure it str;
      r001_walk ctx str
    end
  with exn ->
    let line =
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
          err.Location.main.Location.loc.Location.loc_start.Lexing.pos_lnum
      | _ -> 1
    in
    C.raw rep
      {
        file;
        line;
        rule = "PARSE";
        message = "unparseable source (" ^ Printexc.to_string exn ^ ")";
      }

let check_source ~config ~filename source =
  let rep = C.make_reporter () in
  check_source_into rep ~config ~filename source;
  C.sort_violations rep.C.out

(* --- file discovery -------------------------------------------------- *)

let discover = C.discover

(* --- dune graph: which libraries can Pool tasks reach? --------------- *)

(* Just enough s-expression reading for dune stanzas. *)
type sexp = Atom of string | Sexp_list of sexp list

let parse_sexps source =
  let len = String.length source in
  let pos = ref 0 in
  let peek () = if !pos < len then Some source.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | Some ';' ->
        while !pos < len && source.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
    | _ -> ()
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> None
    | Some '(' ->
        incr pos;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' ->
              incr pos;
              Some (Sexp_list (List.rev !items))
          | None -> Some (Sexp_list (List.rev !items))
          | _ -> (
              match parse_one () with
              | Some s ->
                  items := s :: !items;
                  loop ()
              | None -> Some (Sexp_list (List.rev !items)))
        in
        loop ()
    | Some '"' ->
        incr pos;
        let b = Buffer.create 16 in
        while !pos < len && source.[!pos] <> '"' do
          if source.[!pos] = '\\' && !pos + 1 < len then incr pos;
          Buffer.add_char b source.[!pos];
          incr pos
        done;
        if !pos < len then incr pos;
        Some (Atom (Buffer.contents b))
    | Some _ ->
        let start = !pos in
        let stop c =
          c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')'
          || c = ';'
        in
        while !pos < len && not (stop source.[!pos]) do
          incr pos
        done;
        Some (Atom (String.sub source start (!pos - start)))
  in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match parse_one () with
    | Some s -> out := s :: !out
    | None -> continue := false
  done;
  List.rev !out

type stanza = {
  dir : string;
  is_library : bool;
  names : string list;
  libs : string list;
}

let stanza_field name items =
  List.filter_map
    (function
      | Sexp_list (Atom f :: rest) when f = name ->
          Some
            (List.filter_map
               (function Atom a -> Some a | Sexp_list _ -> None)
               rest)
      | _ -> None)
    items
  |> List.concat

let read_stanzas file =
  let dir = normalize (Filename.dirname file) in
  let source = C.read_file file in
  List.filter_map
    (function
      | Sexp_list (Atom kind :: items)
        when List.mem kind [ "library"; "executable"; "executables"; "tests" ]
        ->
          Some
            {
              dir;
              is_library = kind = "library";
              names = stanza_field "name" items @ stanza_field "names" items;
              libs = stanza_field "libraries" items;
            }
      | _ -> None)
    (parse_sexps source)

let pool_zone ~roots ~sources =
  let dune_files = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if entry <> "_build" && entry.[0] <> '.' then
            walk (Filename.concat path entry))
        (Sys.readdir path)
    else if Filename.basename path = "dune" then
      dune_files := path :: !dune_files
  in
  List.iter (fun r -> if Sys.file_exists r then walk r) roots;
  let stanzas = List.concat_map read_stanzas !dune_files in
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun s -> List.iter (fun n -> Hashtbl.replace by_name n s) s.names)
    stanzas;
  (* A stanza uses the pool if any source in its directory mentions it. *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let dir_uses_pool dir =
    List.exists
      (fun (path, src) ->
        normalize (Filename.dirname path) = dir && contains src "Pool.")
      sources
  in
  let reachable = Hashtbl.create 32 in
  let rec mark name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match Hashtbl.find_opt by_name name with
      | Some s -> List.iter mark s.libs
      | None -> ()
    end
  in
  List.iter
    (fun s -> if dir_uses_pool s.dir then List.iter mark s.libs)
    stanzas;
  let dirs =
    List.filter_map
      (fun s ->
        if s.is_library && List.exists (Hashtbl.mem reachable) s.names then
          Some s.dir
        else None)
      stanzas
  in
  match dirs with
  | [] -> fun file -> has_prefix ~prefix:"lib/" file
  | dirs -> fun file -> List.exists (fun d -> has_prefix ~prefix:(d ^ "/") file) dirs

(* --- repo policy ----------------------------------------------------- *)

let repo_scopes =
  let d001_exempt file =
    file = "lib/util/rng.ml" || file = "lib/util/rng.mli"
  in
  let d002_scope file =
    has_prefix ~prefix:"lib/" file
    || has_prefix ~prefix:"bin/" file
    || has_prefix ~prefix:"bench/" file
  in
  let d003_exempt file = has_prefix ~prefix:"bench/" file in
  (d001_exempt, d002_scope, d003_exempt)

let repo_config ?(allowlist = []) ~roots () =
  let d001_exempt, d002_scope, d003_exempt = repo_scopes in
  let files = discover roots in
  let sources = List.map (fun f -> (f, C.read_file f)) files in
  {
    d001_exempt;
    d002_scope;
    d003_exempt;
    r001_zone = pool_zone ~roots ~sources;
    allowlist;
  }

type result = {
  violations : violation list;
  files_scanned : int;
  reporter : C.reporter;
  file_grants : C.grant list;
  allowlist_file : string option;
}

let run_stage ?allowlist_file ~roots () =
  let file_grants =
    match allowlist_file with
    | Some f -> C.load_allowlist f
    | None -> []
  in
  let allowlist = List.map (fun g -> (g.C.g_file, g.C.g_rule)) file_grants in
  let d001_exempt, d002_scope, d003_exempt = repo_scopes in
  let files = discover roots in
  let sources = List.map (fun f -> (f, C.read_file f)) files in
  let config =
    {
      d001_exempt;
      d002_scope;
      d003_exempt;
      r001_zone = pool_zone ~roots ~sources;
      allowlist;
    }
  in
  let rep = C.make_reporter () in
  List.iter
    (fun (file, src) -> check_source_into rep ~config ~filename:file src)
    sources;
  (* Dead-grant hygiene: every grant for a rule this stage owns must
     still absorb at least one would-be violation. *)
  List.iter (C.raw rep)
    (C.dead_grants ~own_rules:rules
       ~allowlist_file:(Option.value allowlist_file ~default:"<allowlist>")
       rep file_grants);
  {
    violations = C.sort_violations rep.C.out;
    files_scanned = List.length files;
    reporter = rep;
    file_grants;
    allowlist_file;
  }

let run ?allowlist_file ~roots () =
  let r = run_stage ?allowlist_file ~roots () in
  (r.violations, r.files_scanned)
