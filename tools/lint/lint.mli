(** [rcbr_lint]: determinism & domain-safety static analysis, stage 1.

    The checker parses every [.ml]/[.mli] with compiler-libs and walks the
    parsetree ([Ast_iterator]) enforcing the repo-specific rule set
    documented in DESIGN.md §8:

    - D001: no [Random.*] outside [lib/util/rng.ml]; randomness must flow
      through the splitmix [Rcbr_util.Rng] so streams are splittable and
      replayable.
    - D002: no order-dependent [Hashtbl.iter]/[Hashtbl.fold] in
      result-producing code ([lib/], [bin/], [bench/]); iterate in sorted
      key order ([Rcbr_util.Tables]) or suppress with a reason.
    - D003: no wall-clock reads ([Sys.time], [Unix.gettimeofday], ...)
      outside [bench/].
    - F001: no polymorphic [=]/[<>]/[compare]/[min]/[max] on operands that
      are syntactically float-bearing (float literal, float arithmetic,
      [nan]/[infinity], [Float.*] application, [float_of_int]).
    - F002: no comparison against [nan]; use [Float.is_nan].
    - R001: no top-level mutable state ([ref], mutable-container [create],
      record literals with fields declared [mutable] in the same file) in a
      library transitively reachable from [Pool.map]/[Pool.map_array]
      tasks.
    - P001: no [Obj.magic], anywhere.

    Since the typed stage ([Tlint], DESIGN.md §14) landed, D001–D003 act
    as its fast-path pre-checks: they flag the plain spellings at parse
    time; the interprocedural taint pass (T001) follows the same facts
    through calls and module boundaries over the [.cmt] trees.

    Violations are suppressed by an inline comment on the same or the
    preceding line — [(* lint: allow D002 — reason *)] — where the reason
    is mandatory (a reason-less suppression is ignored), or by a checked-in
    allowlist file of [<path> <RULE> <reason>] lines.  Suppression
    grammar, allowlist format and report output are shared with the typed
    stage through {!Lint_common}. *)

type violation = Lint_common.violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

(** [rule id, one-line description] for every stage-1 rule, in report
    order (= {!Lint_common.syntactic_rules}). *)
val rules : (string * string) list

type config = {
  d001_exempt : string -> bool;  (** file may use [Random] directly *)
  d002_scope : string -> bool;  (** file is result-producing (rule active) *)
  d003_exempt : string -> bool;  (** file may read the wall clock *)
  r001_zone : string -> bool;  (** file is reachable from Pool tasks *)
  allowlist : (string * string) list;  (** (normalized path, rule) grants *)
}

(** Everything in scope, nothing exempt, empty allowlist — what the test
    fixtures use. *)
val strict_config : config

(** The repo policy described above, with the R001 zone precomputed from
    the dune graph under the given roots (fallback: all of [lib/]). *)
val repo_config :
  ?allowlist:(string * string) list -> roots:string list -> unit -> config

(** [check_source ~config ~filename source] lints one compilation unit
    held in memory. [filename] decides rule scopes and whether the source
    is parsed as an implementation or an interface ([.mli] suffix).
    Unparseable sources yield a single [PARSE] violation rather than an
    exception; suppression comments naming rule ids no stage knows yield
    [SUPP] violations. Results are sorted. *)
val check_source :
  config:config -> filename:string -> string -> violation list

(** Recursively collect the [.ml]/[.mli] files under the roots, sorted. *)
val discover : string list -> string list

type result = {
  violations : violation list;
  files_scanned : int;
  reporter : Lint_common.reporter;  (** for the per-rule summary table *)
  file_grants : Lint_common.grant list;
  allowlist_file : string option;
}

(** Lint files on disk.  Includes [GRANT] violations for dead allowlist
    grants of this stage's rules (a grant that absorbed nothing). *)
val run_stage :
  ?allowlist_file:string -> roots:string list -> unit -> result

(** [run_stage] reduced to (violations, files scanned). *)
val run :
  ?allowlist_file:string -> roots:string list -> unit -> violation list * int
