#!/usr/bin/env bash
# Daemon smoke: rcbr_switchd + rcbr_loadgen end to end (DESIGN.md §11).
#
# Three runs against fresh daemons on a temp Unix socket:
#   1. clean   — no faults; loadgen must exit 0 (switch empty + conserving)
#   2. lossy A — drop/duplicate/reorder/delay/corrupt storm, seeded
#   3. lossy B — same seed; must print the SAME outcome hash as A
# Every daemon is stopped with SIGTERM and must drain gracefully:
# exit 0 with a "drained: ... violations=0" line.
#
# Usage: tools/daemon_smoke.sh   (after dune build; override BIN to point
# elsewhere, e.g. BIN=_build/default/bin)

set -euo pipefail

BIN=${BIN:-_build/default/bin}
TMP=$(mktemp -d)
DPID=""
trap '[ -n "$DPID" ] && kill "$DPID" 2>/dev/null; rm -rf "$TMP"' EXIT

TOPO="linear:3"
CAPACITY="1e6"

start_daemon() { # $1: run tag
  SOCK="$TMP/rcbr-$1.sock"
  "$BIN/rcbr_switchd.exe" --socket "$SOCK" --topology "$TOPO" \
    --capacity "$CAPACITY" >"$TMP/switchd-$1.log" 2>&1 &
  DPID=$!
  for _ in $(seq 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "FAIL: daemon for run $1 never bound its socket" >&2
  cat "$TMP/switchd-$1.log" >&2
  return 1
}

stop_daemon() { # $1: run tag — graceful drain must succeed
  kill -TERM "$DPID"
  if ! wait "$DPID"; then
    echo "FAIL: daemon for run $1 exited nonzero (dirty drain)" >&2
    cat "$TMP/switchd-$1.log" >&2
    return 1
  fi
  DPID=""
  if ! grep -q "drained: .*violations=0" "$TMP/switchd-$1.log"; then
    echo "FAIL: daemon for run $1 reported violations at drain" >&2
    cat "$TMP/switchd-$1.log" >&2
    return 1
  fi
}

loadgen() { # $1: run tag, rest: extra flags — exit 0 = clean audit
  if ! "$BIN/rcbr_loadgen.exe" --socket "$SOCK" --topology "$TOPO" \
    --capacity "$CAPACITY" --calls 10 --rounds 4 --conns 3 --seed 99 \
    "${@:2}" >"$TMP/loadgen-$1.log" 2>&1; then
    echo "FAIL: loadgen run $1 reported a dirty switch" >&2
    cat "$TMP/loadgen-$1.log" >&2
    return 1
  fi
  grep "outcome-hash" "$TMP/loadgen-$1.log"
}

echo "== clean run"
start_daemon clean
loadgen clean
stop_daemon clean

LOSSY=(--drop 0.15 --duplicate 0.05 --reorder 0.05 --delay 0.05 --corrupt 0.08)

echo "== lossy run A"
start_daemon lossy-a
loadgen lossy-a "${LOSSY[@]}"
stop_daemon lossy-a

echo "== lossy run B (same seed)"
start_daemon lossy-b
loadgen lossy-b "${LOSSY[@]}"
stop_daemon lossy-b

hash_a=$(grep -o 'outcome-hash=[0-9a-f]*' "$TMP/loadgen-lossy-a.log")
hash_b=$(grep -o 'outcome-hash=[0-9a-f]*' "$TMP/loadgen-lossy-b.log")
if [ "$hash_a" != "$hash_b" ]; then
  echo "FAIL: same-seed lossy runs diverged: $hash_a vs $hash_b" >&2
  exit 1
fi

# The lossy plan must actually have exercised the fault machinery.
if ! grep -q "mangler: .*dropped=[1-9]" "$TMP/loadgen-lossy-a.log"; then
  echo "FAIL: lossy run dropped nothing — fault plan not applied?" >&2
  cat "$TMP/loadgen-lossy-a.log" >&2
  exit 1
fi

echo "daemon smoke OK: clean + lossy drained with violations=0, $hash_a reproduced"
