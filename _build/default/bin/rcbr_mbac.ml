(* CLI: measurement-based admission control simulation.

   Example:
     rcbr_mbac --capacity-mult 16 --load 1.0 --controller memoryless *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Mbac = Rcbr_sim.Mbac
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor

let run seed frames cost_ratio capacity_mult load target controller_name =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames ~seed () in
  let mean = Trace.mean_rate trace in
  let schedule =
    Optimal.solve (Optimal.default_params ~cost_ratio trace) trace
  in
  let capacity = capacity_mult *. mean in
  let arrival_rate =
    load *. capacity /. (Schedule.mean_rate schedule *. Schedule.duration schedule)
  in
  let cfg =
    Mbac.default_config ~schedule ~capacity ~arrival_rate ~target ~seed:(seed + 1)
  in
  let controller =
    match controller_name with
    | "perfect" ->
        Controller.perfect ~descriptor:(Descriptor.of_schedule schedule)
          ~capacity ~target
    | "memoryless" -> Controller.memoryless ~capacity ~target
    | "memory" -> Controller.memory ~capacity ~target
    | "always" -> Controller.always_admit ()
    | other -> Fmt.failwith "unknown controller %S" other
  in
  Format.printf
    "link %.0f kb/s (%.0fx mean), offered load %.2f, target %.1e, controller %s@."
    (capacity /. 1e3) capacity_mult (Mbac.offered_load cfg) target
    (Controller.name controller);
  let m = Mbac.run cfg ~controller in
  Format.printf
    "@[<v>failure probability: %.3e (+/- %.1e)@,\
     utilization:         %.4f (+/- %.1e)@,\
     call blocking:       %.4f@,\
     denied increases:    %.4f@,\
     mean calls:          %.2f@,\
     windows sampled:     %d@]@."
    m.Mbac.failure_probability m.Mbac.failure_halfwidth m.Mbac.utilization
    m.Mbac.utilization_halfwidth m.Mbac.call_blocking m.Mbac.denial_fraction
    m.Mbac.mean_calls_in_system m.Mbac.windows

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")
let frames_arg = Arg.(value & opt int 20_000 & info [ "frames" ] ~docv:"N")

let cost_ratio_arg =
  Arg.(value & opt float 2e5 & info [ "cost-ratio" ] ~docv:"ALPHA")

let capacity_arg =
  Arg.(
    value & opt float 16.
    & info [ "capacity-mult" ] ~docv:"K"
        ~doc:"Link capacity as a multiple of the call mean rate.")

let load_arg =
  Arg.(value & opt float 1.0 & info [ "load" ] ~docv:"RHO" ~doc:"Offered load.")

let target_arg = Arg.(value & opt float 1e-3 & info [ "target" ] ~docv:"P")

let controller_arg =
  Arg.(
    value & opt string "memoryless"
    & info [ "controller" ] ~docv:"NAME"
        ~doc:"One of: perfect, memoryless, memory, always.")

let () =
  let info =
    Cmd.info "rcbr_mbac" ~version:"1.0"
      ~doc:"Call-level simulation of measurement-based admission control."
  in
  let term =
    Term.(
      const run $ seed_arg $ frames_arg $ cost_ratio_arg $ capacity_arg
      $ load_arg $ target_arg $ controller_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
