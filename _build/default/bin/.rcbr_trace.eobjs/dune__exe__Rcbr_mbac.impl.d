bin/rcbr_mbac.ml: Arg Cmd Cmdliner Fmt Format Rcbr_admission Rcbr_core Rcbr_sim Rcbr_traffic Term
