bin/rcbr_smg.mli:
