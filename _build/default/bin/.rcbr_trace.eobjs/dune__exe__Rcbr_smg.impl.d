bin/rcbr_smg.ml: Arg Cmd Cmdliner Format List Rcbr_core Rcbr_sim Rcbr_traffic Term
