bin/rcbr_trace.ml: Arg Array Cmd Cmdliner Float Format List Rcbr_core Rcbr_fault Rcbr_queue Rcbr_signal Rcbr_traffic String Term
