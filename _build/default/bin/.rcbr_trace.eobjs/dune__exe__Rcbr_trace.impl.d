bin/rcbr_trace.ml: Arg Array Cmd Cmdliner Format List Rcbr_queue Rcbr_traffic Term
