bin/rcbr_mbac.mli:
