bin/rcbr_trace.mli:
