bin/rcbr_sched.ml: Arg Array Cmd Cmdliner Format Rcbr_core Rcbr_queue Rcbr_traffic Term
