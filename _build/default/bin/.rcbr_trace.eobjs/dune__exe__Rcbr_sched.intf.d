bin/rcbr_sched.mli:
