(* CLI: generate and inspect synthetic multiple time-scale video traces.

   Examples:
     rcbr_trace generate --seed 42 --frames 171000 -o star_wars.trace
     rcbr_trace stats star_wars.trace
     rcbr_trace sigma-rho star_wars.trace --target 1e-6 *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Sigma_rho = Rcbr_queue.Sigma_rho

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let frames_arg =
  Arg.(
    value
    & opt int Synthetic.default_frames
    & info [ "frames" ] ~docv:"N" ~doc:"Number of frames to generate.")

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")

let generate seed frames output =
  let t = Synthetic.star_wars ~frames ~seed () in
  Trace.save t output;
  Format.printf "wrote %s:@.%a@." output Trace.pp_summary t

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a Star Wars-like synthetic trace.")
    Term.(const generate $ seed_arg $ frames_arg $ output_arg)

let stats file =
  let t = Trace.load file in
  Format.printf "%a@." Trace.pp_summary t;
  let mean = Trace.mean_rate t in
  List.iter
    (fun mult ->
      let run = Trace.sustained_peak t ~threshold:(mult *. mean) in
      Format.printf "longest run >= %.1fx mean: %.2f s@." mult
        (float_of_int run /. Trace.fps t))
    [ 2.; 3.; 4. ]

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print summary statistics of a trace file.")
    Term.(const stats $ trace_file_arg)

let target_arg =
  Arg.(
    value & opt float 1e-6
    & info [ "target" ] ~docv:"LOSS" ~doc:"Bit-loss fraction target.")

let sigma_rho file target =
  let t = Trace.load file in
  let mean = Trace.mean_rate t in
  let buffers =
    [| 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8; 2e8 |]
  in
  Format.printf "buffer_bits  min_rate_bps  rate/mean@.";
  Array.iter
    (fun (b, r) -> Format.printf "%11.0f  %12.0f  %9.3f@." b r (r /. mean))
    (Sigma_rho.curve ~trace:t ~buffers ~target_loss:target ())

let sigma_rho_cmd =
  Cmd.v
    (Cmd.info "sigma-rho"
       ~doc:"Minimum drain rate as a function of buffer size (Fig. 5).")
    Term.(const sigma_rho $ trace_file_arg $ target_arg)

(* --- stream: a live NIU over a faulty signalling plane --- *)

module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path
module Niu = Rcbr_signal.Niu
module Plan = Rcbr_fault.Plan
module Injector = Rcbr_fault.Injector

let crash_conv =
  let parse s =
    match List.map int_of_string_opt (String.split_on_char ':' s) with
    | [ Some hop; Some at_slot; Some recover_slot ] ->
        Ok { Plan.hop; at_slot; recover_slot }
    | _ -> Error (`Msg "expected HOP:AT:RECOVER (three integers)")
  in
  let print ppf c =
    Format.fprintf ppf "%d:%d:%d" c.Plan.hop c.Plan.at_slot c.Plan.recover_slot
  in
  Arg.conv (parse, print)

let degrade_conv =
  let parse = function
    | "ride" -> Ok Niu.Ride_out
    | "settle" -> Ok Niu.Settle
    | s -> (
        match String.split_on_char ':' s with
        | [ "scale"; q ] -> (
            match float_of_string_opt q with
            | Some q when q >= 0. && q <= 1. -> Ok (Niu.Scale q)
            | _ -> Error (`Msg "scale fraction must be a float in [0,1]"))
        | _ -> Error (`Msg "expected ride, settle or scale:Q"))
  in
  let print ppf = function
    | Niu.Ride_out -> Format.pp_print_string ppf "ride"
    | Niu.Settle -> Format.pp_print_string ppf "settle"
    | Niu.Scale q -> Format.fprintf ppf "scale:%g" q
  in
  Arg.conv (parse, print)

(* Fault-plan and NIU parameter validation raises [Invalid_argument] with a
   self-describing message; surface it as a usage error instead of a crash. *)
let or_usage_error f =
  try f ()
  with Invalid_argument msg ->
    Format.eprintf "rcbr_trace: %s@." msg;
    exit Cmdliner.Cmd.Exit.cli_error

let stream file seed frames hops capacity_mult drop duplicate reorder delay_prob
    max_extra crashes timeout_slots max_retx backoff jitter resync degrade
    delay_slots retry_slots buffer fault_seed =
  let trace =
    match file with
    | Some f -> Trace.load f
    | None -> Synthetic.star_wars ~frames ~seed ()
  in
  let mean = Trace.mean_rate trace in
  let capacity = capacity_mult *. mean in
  let ports = List.init hops (fun _ -> Port.create ~capacity ()) in
  let online = Rcbr_core.Online.default_params in
  let g = online.Rcbr_core.Online.granularity in
  let first = Trace.frame trace 0 /. Trace.slot_duration trace in
  let initial = g *. Float.max 1. (Float.ceil (first /. g)) in
  let path = Path.create_exn ports ~vci:1 ~initial_rate:initial in
  let plan =
    or_usage_error (fun () ->
        Plan.uniform ~drop ~duplicate ~reorder ~delay:delay_prob
          ~max_extra_slots:max_extra ~crashes ~hops ~seed:fault_seed ())
  in
  let faults =
    {
      Niu.plan;
      timeout_slots;
      max_retransmits = max_retx;
      backoff;
      jitter_slots = jitter;
      resync_slots = resync;
      degrade;
    }
  in
  let params =
    {
      Niu.online;
      buffer;
      delay_slots;
      retry_slots = (if retry_slots <= 0 then None else Some retry_slots);
      faults = Some faults;
    }
  in
  Format.printf
    "%d hops at %.0f kb/s each (%.1fx trace mean), %d slots, buffer %.0f kb@."
    hops (capacity /. 1e3) capacity_mult (Trace.length trace) (buffer /. 1e3);
  let r = or_usage_error (fun () -> Niu.stream params ~path trace) in
  Format.printf
    "@[<v>bits offered:   %.3e@,\
     bits lost:      %.3e (%.4f%%)@,\
     max backlog:    %.0f bits@,\
     attempts:       %d@,\
     denials:        %d@,\
     mean reserved:  %.0f b/s@]@."
    r.Niu.bits_offered r.Niu.bits_lost
    (if r.Niu.bits_offered > 0. then 100. *. r.Niu.bits_lost /. r.Niu.bits_offered
     else 0.)
    r.Niu.max_backlog r.Niu.attempts r.Niu.failures r.Niu.mean_reserved;
  (match r.Niu.faults with
  | None -> ()
  | Some f ->
      Format.printf
        "@[<v>%a@,\
         retransmits:    %d (worst per request %d)@,\
         timeouts:       %d@,\
         give-ups:       %d@,\
         resyncs:        %d@,\
         crashes:        %d (%d recoveries)@,\
         degraded slots: %d@,\
         bits scaled:    %.3e@,\
         invariant violations: %d@,\
         final drift:    %.3g b/s@]@."
        Injector.pp_totals f.Niu.cells f.Niu.retransmits f.Niu.worst_retransmits
        f.Niu.timeouts f.Niu.give_ups f.Niu.resyncs f.Niu.crashes
        f.Niu.recoveries f.Niu.degraded_slots f.Niu.bits_scaled
        f.Niu.invariant_violations f.Niu.final_drift);
  Path.teardown path;
  let leak =
    List.fold_left
      (fun acc p -> Float.max acc (Float.abs (Port.reserved p)))
      0. ports
  in
  Format.printf "post-teardown residual reservation: %.3g b/s@." leak

let stream_cmd =
  let opt_trace_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (generated when omitted).")
  in
  let hops_arg =
    Arg.(value & opt int 3 & info [ "hops" ] ~docv:"N" ~doc:"Path length.")
  in
  let capacity_arg =
    Arg.(
      value & opt float 4.
      & info [ "capacity-mult" ] ~docv:"K"
          ~doc:"Per-hop capacity as a multiple of the trace mean rate.")
  in
  let prob name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)
  in
  let drop_arg = prob "drop" "Per-hop RM-cell drop probability." in
  let duplicate_arg = prob "duplicate" "Per-hop duplication probability." in
  let reorder_arg = prob "reorder" "Per-hop reordering probability." in
  let delay_prob_arg = prob "delay-prob" "Per-hop queueing-delay probability." in
  let max_extra_arg =
    Arg.(
      value & opt int 4
      & info [ "max-extra" ] ~docv:"SLOTS" ~doc:"Worst extra delay in slots.")
  in
  let crash_arg =
    Arg.(
      value & opt_all crash_conv []
      & info [ "crash" ] ~docv:"HOP:AT:RECOVER"
          ~doc:"Crash window for a hop, in slots (repeatable).")
  in
  let timeout_arg =
    Arg.(
      value & opt int 8
      & info [ "timeout-slots" ] ~docv:"SLOTS"
          ~doc:"Slots without a response before retransmitting.")
  in
  let max_retx_arg =
    Arg.(
      value & opt int 6
      & info [ "max-retx" ] ~docv:"N" ~doc:"Retransmissions before giving up.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 2.
      & info [ "backoff" ] ~docv:"X" ~doc:"Timeout multiplier per retry.")
  in
  let jitter_arg =
    Arg.(
      value & opt int 2
      & info [ "jitter" ] ~docv:"SLOTS" ~doc:"Uniform extra timeout jitter.")
  in
  let resync_arg =
    Arg.(
      value & opt int 120
      & info [ "resync" ] ~docv:"SLOTS"
          ~doc:"Absolute-rate resync period (0 disables).")
  in
  let degrade_arg =
    Arg.(
      value
      & opt degrade_conv Niu.Settle
      & info [ "degrade" ] ~docv:"POLICY"
          ~doc:"Degradation policy: ride, settle, or scale:Q.")
  in
  let delay_slots_arg =
    Arg.(
      value & opt int 0
      & info [ "delay-slots" ] ~docv:"SLOTS" ~doc:"Signalling round-trip.")
  in
  let retry_arg =
    Arg.(
      value & opt int 24
      & info [ "retry-slots" ] ~docv:"SLOTS"
          ~doc:"Re-issue a denied request after this many slots (0: never).")
  in
  let buffer_arg =
    Arg.(
      value & opt float 300_000.
      & info [ "buffer" ] ~docv:"BITS" ~doc:"End-system buffer size.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Root of all fault randomness.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream a live source across a faulty multi-hop signalling plane \
          and report the NIU's resilience metrics.")
    Term.(
      const stream $ opt_trace_arg $ seed_arg $ frames_arg $ hops_arg
      $ capacity_arg $ drop_arg $ duplicate_arg $ reorder_arg $ delay_prob_arg
      $ max_extra_arg $ crash_arg $ timeout_arg $ max_retx_arg $ backoff_arg
      $ jitter_arg $ resync_arg $ degrade_arg $ delay_slots_arg $ retry_arg
      $ buffer_arg $ fault_seed_arg)

let () =
  let info =
    Cmd.info "rcbr_trace" ~version:"1.0"
      ~doc:"Synthetic multiple time-scale video traces."
  in
  exit
    (Cmd.eval
       (Cmd.group info [ generate_cmd; stats_cmd; sigma_rho_cmd; stream_cmd ]))
