(* CLI: generate and inspect synthetic multiple time-scale video traces.

   Examples:
     rcbr_trace generate --seed 42 --frames 171000 -o star_wars.trace
     rcbr_trace stats star_wars.trace
     rcbr_trace sigma-rho star_wars.trace --target 1e-6 *)

open Cmdliner
module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Sigma_rho = Rcbr_queue.Sigma_rho

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let frames_arg =
  Arg.(
    value
    & opt int Synthetic.default_frames
    & info [ "frames" ] ~docv:"N" ~doc:"Number of frames to generate.")

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")

let generate seed frames output =
  let t = Synthetic.star_wars ~frames ~seed () in
  Trace.save t output;
  Format.printf "wrote %s:@.%a@." output Trace.pp_summary t

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a Star Wars-like synthetic trace.")
    Term.(const generate $ seed_arg $ frames_arg $ output_arg)

let stats file =
  let t = Trace.load file in
  Format.printf "%a@." Trace.pp_summary t;
  let mean = Trace.mean_rate t in
  List.iter
    (fun mult ->
      let run = Trace.sustained_peak t ~threshold:(mult *. mean) in
      Format.printf "longest run >= %.1fx mean: %.2f s@." mult
        (float_of_int run /. Trace.fps t))
    [ 2.; 3.; 4. ]

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print summary statistics of a trace file.")
    Term.(const stats $ trace_file_arg)

let target_arg =
  Arg.(
    value & opt float 1e-6
    & info [ "target" ] ~docv:"LOSS" ~doc:"Bit-loss fraction target.")

let sigma_rho file target =
  let t = Trace.load file in
  let mean = Trace.mean_rate t in
  let buffers =
    [| 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8; 2e8 |]
  in
  Format.printf "buffer_bits  min_rate_bps  rate/mean@.";
  Array.iter
    (fun (b, r) -> Format.printf "%11.0f  %12.0f  %9.3f@." b r (r /. mean))
    (Sigma_rho.curve ~trace:t ~buffers ~target_loss:target ())

let sigma_rho_cmd =
  Cmd.v
    (Cmd.info "sigma-rho"
       ~doc:"Minimum drain rate as a function of buffer size (Fig. 5).")
    Term.(const sigma_rho $ trace_file_arg $ target_arg)

let () =
  let info =
    Cmd.info "rcbr_trace" ~version:"1.0"
      ~doc:"Synthetic multiple time-scale video traces."
  in
  exit (Cmd.eval (Cmd.group info [ generate_cmd; stats_cmd; sigma_rho_cmd ]))
