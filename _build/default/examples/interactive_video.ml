(* Interactive (online) video over RCBR.

   A live source cannot know its future rate, so a monitor between the
   codec and the network runs the causal AR(1) + buffer-threshold
   heuristic (Section IV-B), renegotiating on the fly.  This example
   shows the heuristic tracking the workload, the granularity tradeoff,
   and the gap to the offline optimum.

   Run with:  dune exec examples/interactive_video.exe *)

module Trace = Rcbr_traffic.Trace
module Online = Rcbr_core.Online
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule

let () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:20_000 ~seed:77 () in
  Format.printf "live source: %.0f s, mean %.0f kb/s@.@." (Trace.duration trace)
    (Trace.mean_rate trace /. 1e3);

  (* The paper's parameters: B_l = 10 kb, B_h = 150 kb, T = 5 frames. *)
  let o = Online.run Online.default_params trace in
  Format.printf "default heuristic:@.%a@." Schedule.pp o.Online.schedule;
  Format.printf "peak end-system backlog: %.0f bits@.@." o.Online.max_backlog;

  (* Coarser bandwidth granularity = fewer renegotiations but more
     over-reservation (the heuristic branch of Fig. 2). *)
  Format.printf "%16s %10s %14s %12s %14s@." "granularity" "renegs"
    "interval (s)" "efficiency" "backlog (kb)";
  List.iter
    (fun delta ->
      let p = { Online.default_params with Online.granularity = delta } in
      let r = Online.run p trace in
      Format.printf "%12.0f kb/s %10d %14.2f %11.2f%% %14.1f@." (delta /. 1e3)
        (Schedule.n_renegotiations r.Online.schedule)
        (Schedule.mean_renegotiation_interval r.Online.schedule)
        (100. *. Schedule.bandwidth_efficiency r.Online.schedule ~trace)
        (r.Online.max_backlog /. 1e3))
    [ 25e3; 50e3; 100e3; 200e3; 400e3 ];

  (* The flush term B(t)/T is what lets the heuristic react to sudden
     buffer buildups; without it the backlog climbs much higher. *)
  let without =
    Online.run { Online.default_params with Online.use_flush_term = false } trace
  in
  Format.printf "@.flush-term ablation: peak backlog %.0f -> %.0f bits@."
    without.Online.max_backlog o.Online.max_backlog;

  (* How much does causality cost?  Compare with hindsight. *)
  let opt =
    Optimal.solve (Optimal.default_params ~cost_ratio:2e5 trace) trace
  in
  Format.printf
    "@.offline optimum: %.2f%% efficiency at one renegotiation per %.1f s@."
    (100. *. Schedule.bandwidth_efficiency opt ~trace)
    (Schedule.mean_renegotiation_interval opt);
  Format.printf
    "online heuristic: %.2f%% efficiency at one renegotiation per %.1f s@."
    (100. *. Schedule.bandwidth_efficiency o.Online.schedule ~trace)
    (Schedule.mean_renegotiation_interval o.Online.schedule)
