(* Lightweight renegotiation signaling across a multi-hop ATM-like path
   (Section III).

   RM cells carry rate *deltas* so switches keep no per-VCI state; the
   price is drift when cells are lost, repaired by periodic resync
   cells.  This example walks a connection across three switches,
   exercises denial + rollback, and demonstrates the drift/resync
   tradeoff.

   Run with:  dune exec examples/multi_hop.exe *)

module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path
module Rm_cell = Rcbr_signal.Rm_cell
module Rng = Rcbr_util.Rng

let () =
  (* A three-hop path; the middle hop is the bottleneck. *)
  let ports =
    [
      Port.create ~capacity:10e6 ();
      Port.create ~capacity:2e6 ();
      Port.create ~capacity:10e6 ();
    ]
  in
  let path = Path.create_exn ports ~vci:17 ~initial_rate:400e3 in
  Format.printf "connection up across %d hops at %.0f kb/s@." (Path.hops path)
    (Path.rate path /. 1e3);

  (* Renegotiate up and down; a request beyond the bottleneck is denied
     mid-path and rolled back everywhere. *)
  List.iter
    (fun rate ->
      match Path.renegotiate path rate with
      | `Granted ->
          Format.printf "renegotiate to %7.0f kb/s: granted@." (rate /. 1e3)
      | `Denied_at hop ->
          Format.printf
            "renegotiate to %7.0f kb/s: denied at hop %d (rate stays %.0f kb/s)@."
            (rate /. 1e3) hop
            (Path.rate path /. 1e3))
    [ 800e3; 1.6e6; 3e6; 1.2e6; 200e3 ];
  List.iteri
    (fun i p ->
      Format.printf "  hop %d reserved: %.0f kb/s@." i (Port.reserved p /. 1e3))
    ports;

  (* Drift: deltas lost on a noisy signaling channel make the switch
     belief diverge from the source's true rate; a resync every k
     renegotiations bounds the error. *)
  Format.printf "@.delta-loss drift over 2000 renegotiations (10%% cell loss):@.";
  List.iter
    (fun resync_every ->
      let port = Port.create ~capacity:1e9 () in
      let rng = Rng.create 13 in
      let true_rate = ref 500e3 in
      ignore (Port.process port (Rm_cell.delta ~vci:1 !true_rate));
      let worst = ref 0. in
      for i = 1 to 2000 do
        let next = Rng.float_range rng 100e3 900e3 in
        let cell =
          if resync_every > 0 && i mod resync_every = 0 then
            Rm_cell.resync ~vci:1 next
          else Rm_cell.delta ~vci:1 (next -. !true_rate)
        in
        true_rate := next;
        (* 10% of signaling cells never reach the switch. *)
        if Rng.float rng >= 0.1 then ignore (Port.process port cell);
        worst := Float.max !worst (Float.abs (Port.drift port ~actual:!true_rate))
      done;
      let label =
        if resync_every = 0 then "never resync   "
        else Printf.sprintf "resync every %2d" resync_every
      in
      Format.printf "  %s: worst drift %8.0f kb/s@." label (!worst /. 1e3))
    [ 0; 50; 10 ]
