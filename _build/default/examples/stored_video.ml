(* Stored (offline) video over RCBR.

   A video server knows its bit stream in advance, so it can compute
   the cost-optimal renegotiation schedule, explore the price-driven
   tradeoff between bandwidth efficiency and renegotiation frequency
   (the paper's Fig. 2), and pre-signal renegotiations early enough to
   hide the network round-trip (Section III-C).

   Run with:  dune exec examples/stored_video.exe *)

module Trace = Rcbr_traffic.Trace
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Latency = Rcbr_signal.Latency
module Fluid = Rcbr_queue.Fluid

let () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:20_000 ~seed:21 () in
  let buffer = 300_000. in
  Format.printf "movie: %.0f s, mean %.0f kb/s@.@." (Trace.duration trace)
    (Trace.mean_rate trace /. 1e3);

  (* The network prices renegotiations; the server picks its schedule by
     minimizing cost.  Sweeping the price traces out the tradeoff. *)
  Format.printf "%12s %12s %14s %12s@." "cost ratio" "renegs"
    "interval (s)" "efficiency";
  let schedules =
    List.map
      (fun alpha ->
        let p = Optimal.default_params ~buffer ~cost_ratio:alpha trace in
        (* frontier_cap bounds the trellis at cheap renegotiation prices,
           where the exact frontier explodes (Section IV-A). *)
        let s, _ = Optimal.solve_with_stats ~frontier_cap:100 p trace in
        Format.printf "%12.0f %12d %14.2f %11.2f%%@." alpha
          (Schedule.n_renegotiations s)
          (Schedule.mean_renegotiation_interval s)
          (100. *. Schedule.bandwidth_efficiency s ~trace);
        (alpha, s))
      [ 1e4; 5e4; 2e5; 1e6; 5e6 ]
  in

  (* Take the middle schedule and ship it across a network with 200 ms
     of signaling latency.  Naively, late rate increases overflow the
     buffer; anticipating the renegotiations restores the plan. *)
  let _, schedule = List.nth schedules 2 in
  let latency = 0.2 in
  Format.printf "@.signaling latency %.0f ms:@." (latency *. 1e3);
  let late = Latency.delay schedule ~seconds:latency in
  let late_result = Schedule.simulate_buffer late ~trace ~capacity:buffer in
  Format.printf "  naive:        loss %.3g, peak backlog %.0f bits@."
    (Fluid.loss_fraction late_result)
    late_result.Fluid.max_backlog;
  let compensated =
    Latency.delay (Latency.anticipate schedule ~seconds:latency) ~seconds:latency
  in
  let comp_result = Schedule.simulate_buffer compensated ~trace ~capacity:buffer in
  Format.printf "  anticipated:  loss %.3g, peak backlog %.0f bits@."
    (Fluid.loss_fraction comp_result)
    comp_result.Fluid.max_backlog;

  (* RSVP-style piggybacking: renegotiations take effect only at refresh
     instants.  Short refresh periods barely hurt stored video. *)
  Format.printf "@.RSVP refresh piggybacking:@.";
  List.iter
    (fun period ->
      let aligned = Latency.align_to_refresh schedule ~period_s:period in
      let r = Schedule.simulate_buffer aligned ~trace ~capacity:infinity in
      Format.printf "  period %4.1f s: peak backlog %.0f bits (%d changes kept)@."
        period r.Fluid.max_backlog
        (Schedule.n_renegotiations aligned))
    [ 1.; 5.; 15. ]
