(* Quickstart: the RCBR workflow in one page.

   Generate a bursty video workload, compute its optimal renegotiation
   schedule, and check that a 300 kb end-system buffer carries it
   without loss while reserving barely more than the mean rate.

   Run with:  dune exec examples/quickstart.exe *)

module Trace = Rcbr_traffic.Trace
module Synthetic = Rcbr_traffic.Synthetic
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Fluid = Rcbr_queue.Fluid

let () =
  (* 1. A 10-minute synthetic MPEG-like source (deterministic seed). *)
  let trace = Synthetic.star_wars ~frames:14_400 ~seed:7 () in
  Format.printf "--- workload ---@.%a@.@." Trace.pp_summary trace;

  (* 2. The optimal renegotiation schedule for a 300 kb buffer.  The
     cost ratio alpha = K/c prices one renegotiation like 200 kb of
     reserved bandwidth; larger alpha means fewer renegotiations. *)
  let buffer = 300_000. in
  let params = Optimal.default_params ~buffer ~cost_ratio:2e5 trace in
  let schedule = Optimal.solve params trace in
  Format.printf "--- RCBR schedule ---@.%a@." Schedule.pp schedule;
  Format.printf "bandwidth efficiency: %.2f%%@.@."
    (100. *. Schedule.bandwidth_efficiency schedule ~trace);

  (* 3. Replay the trace through the buffer drained by the schedule. *)
  let result = Schedule.simulate_buffer schedule ~trace ~capacity:buffer in
  Format.printf "--- verification ---@.";
  Format.printf "bits lost: %.0f (of %.3g offered)@." result.Fluid.bits_lost
    result.Fluid.bits_offered;
  Format.printf "peak backlog: %.0f bits (buffer %.0f)@."
    result.Fluid.max_backlog buffer;

  (* 4. Contrast with a static CBR reservation: to lose nothing with
     the same buffer, a one-shot reservation must run near the peak. *)
  let static_rate =
    Rcbr_queue.Sigma_rho.min_rate ~trace ~buffer ~target_loss:0. ()
  in
  Format.printf "@.--- static CBR comparison ---@.";
  Format.printf "static CBR needs %.0f kb/s = %.1fx the mean;@."
    (static_rate /. 1e3)
    (static_rate /. Trace.mean_rate trace);
  Format.printf "RCBR reserves %.0f kb/s = %.2fx the mean, renegotiating every %.1f s@."
    (Schedule.mean_rate schedule /. 1e3)
    (Schedule.mean_rate schedule /. Trace.mean_rate trace)
    (Schedule.mean_renegotiation_interval schedule)
