(* A live video call, end to end.

   Two interactive sources share a three-hop RCBR network.  Each runs
   the complete end-system stack of Section III-A: frames enter a 300 kb
   buffer; the NIU monitors the occupancy and renegotiates through the
   actual multi-hop signaling path; denials are retried; grants take a
   125 ms signaling round-trip to bite.  The middle hop is the
   bottleneck, so the two calls compete for renegotiations.

   Run with:  dune exec examples/live_session.exe *)

module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Port = Rcbr_signal.Port
module Path = Rcbr_signal.Path
module Niu = Rcbr_signal.Niu

let () =
  let alice = Rcbr_traffic.Synthetic.star_wars ~frames:14_400 ~seed:101 () in
  let bob = Rcbr_traffic.Synthetic.star_wars ~frames:14_400 ~seed:202 () in
  (* A three-switch path; the middle port is shared and tight: room for
     about 2.5x the two calls' combined mean rate. *)
  let shared = Port.create ~capacity:1_900_000. () in
  let ports_a = [ Port.create ~capacity:10e6 (); shared; Port.create ~capacity:10e6 () ] in
  let ports_b = [ Port.create ~capacity:10e6 (); shared; Port.create ~capacity:10e6 () ] in
  let path_a = Path.create_exn ports_a ~vci:1 ~initial_rate:400_000. in
  let path_b = Path.create_exn ports_b ~vci:2 ~initial_rate:400_000. in
  let params =
    { Niu.default_params with Niu.delay_slots = 3 (* 125 ms at 24 fps *) }
  in
  (* Interleave the two sessions slot by slot?  The NIU streams are
     independent given the shared port, and renegotiations interleave
     through it; we stream Alice first and then Bob against the port
     state Alice's call left behind, which is how two slightly offset
     sessions contend in practice. *)
  let report name trace outcome =
    Format.printf
      "@[<v>%s:@,  mean source rate  %8.1f kb/s@,  mean reserved     %8.1f kb/s@,\
       \  renegotiations    %8d (denied %d)@,  peak backlog      %8.1f kb@,\
       \  bits lost         %8.2e of offered@]@.@."
      name
      (Trace.mean_rate trace /. 1e3)
      (outcome.Niu.mean_reserved /. 1e3)
      outcome.Niu.attempts outcome.Niu.failures
      (outcome.Niu.max_backlog /. 1e3)
      (outcome.Niu.bits_lost /. outcome.Niu.bits_offered)
  in
  Format.printf "--- two live calls over a shared 1.9 Mb/s bottleneck ---@.@.";
  let out_a = Niu.stream params ~path:path_a alice in
  report "alice" alice out_a;
  let out_b = Niu.stream params ~path:path_b bob in
  report "bob" bob out_b;
  Format.printf "bottleneck reserved at the end: %.1f kb/s of %.1f kb/s@."
    (Port.reserved shared /. 1e3) 1_900.;
  Path.teardown path_a;
  Path.teardown path_b;
  Format.printf "after teardown: %.1f kb/s reserved@." (Port.reserved shared /. 1e3);
  (* What did renegotiation buy?  Static reservations able to carry the
     same sources through the same buffer would need the zero-loss CBR
     rate each. *)
  let static t =
    Rcbr_queue.Sigma_rho.min_rate ~trace:t ~buffer:300_000. ~target_loss:0. ()
  in
  Format.printf
    "@.static CBR for the same service: %.0f + %.0f = %.0f kb/s -- more than@.\
     twice the bottleneck.  RCBR carried both calls in %.0f kb/s of peak@.\
     reservation.@."
    (static alice /. 1e3) (static bob /. 1e3)
    ((static alice +. static bob) /. 1e3)
    ((Schedule.peak_rate out_a.Niu.schedule
     +. Schedule.peak_rate out_b.Niu.schedule)
    /. 1e3)
