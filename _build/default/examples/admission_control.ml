(* Measurement-based admission control for RCBR calls (Section VI).

   A link receives Poisson call arrivals, each a randomly phased copy
   of the same movie's RCBR schedule.  Four admission policies face the
   same workload:

   - perfect:     knows the true bandwidth histogram of a call a priori;
   - memoryless:  certainty-equivalent on the instantaneous rates of the
                  calls in the system (the paper shows it is not robust);
   - memory:      remembers each call's whole rate history;
   - always:      no control at all.

   Run with:  dune exec examples/admission_control.exe *)

module Trace = Rcbr_traffic.Trace
module Optimal = Rcbr_core.Optimal
module Schedule = Rcbr_core.Schedule
module Mbac = Rcbr_sim.Mbac
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor

let () =
  let trace = Rcbr_traffic.Synthetic.star_wars ~frames:15_000 ~seed:5 () in
  let schedule =
    Optimal.solve (Optimal.default_params ~cost_ratio:2e5 trace) trace
  in
  let mean = Trace.mean_rate trace in
  let target = 1e-3 in

  let run ~capacity_mult ~load controller =
    let capacity = capacity_mult *. mean in
    let arrival_rate =
      load *. capacity
      /. (Schedule.mean_rate schedule *. Schedule.duration schedule)
    in
    let cfg =
      Mbac.default_config ~schedule ~capacity ~arrival_rate ~target ~seed:99
    in
    Mbac.run cfg ~controller:(controller ~capacity)
  in

  let policies =
    [
      ( "perfect",
        fun ~capacity ->
          Controller.perfect ~descriptor:(Descriptor.of_schedule schedule)
            ~capacity ~target );
      ("memoryless", fun ~capacity -> Controller.memoryless ~capacity ~target);
      ("memory", fun ~capacity -> Controller.memory ~capacity ~target);
      ("always", fun ~capacity -> ignore capacity; Controller.always_admit ());
    ]
  in

  List.iter
    (fun capacity_mult ->
      Format.printf "@.link = %.0fx call mean rate, offered load 1.5, target %.0e@."
        capacity_mult target;
      Format.printf "%12s %14s %12s %10s %8s@." "policy" "failure prob"
        "utilization" "blocking" "calls";
      List.iter
        (fun (name, make) ->
          let m = run ~capacity_mult ~load:1.5 make in
          Format.printf "%12s %14.3e %12.4f %10.4f %8.1f@." name
            m.Mbac.failure_probability m.Mbac.utilization m.Mbac.call_blocking
            m.Mbac.mean_calls_in_system)
        policies)
    [ 8.; 32. ];

  Format.printf
    "@.Note how the memoryless scheme admits more calls than perfect knowledge@.\
     would (higher utilization) and pays for it with a failure probability@.\
     above the target on the small link, while the memory scheme stays close@.\
     to the perfect controller -- the paper's Figs. 7-10 in miniature.@."
