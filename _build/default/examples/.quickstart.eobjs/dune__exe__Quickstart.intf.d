examples/quickstart.mli:
