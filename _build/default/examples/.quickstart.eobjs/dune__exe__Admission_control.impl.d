examples/admission_control.ml: Format List Rcbr_admission Rcbr_core Rcbr_sim Rcbr_traffic
