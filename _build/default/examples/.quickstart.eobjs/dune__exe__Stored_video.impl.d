examples/stored_video.ml: Format List Rcbr_core Rcbr_queue Rcbr_signal Rcbr_traffic
