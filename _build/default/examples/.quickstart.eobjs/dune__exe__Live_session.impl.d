examples/live_session.ml: Format Rcbr_core Rcbr_queue Rcbr_signal Rcbr_traffic
