examples/quickstart.ml: Format Rcbr_core Rcbr_queue Rcbr_traffic
