examples/live_session.mli:
