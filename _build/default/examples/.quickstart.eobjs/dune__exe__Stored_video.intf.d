examples/stored_video.mli:
