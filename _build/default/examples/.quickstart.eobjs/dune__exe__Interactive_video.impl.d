examples/interactive_video.ml: Format List Rcbr_core Rcbr_traffic
