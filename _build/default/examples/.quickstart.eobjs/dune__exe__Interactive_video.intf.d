examples/interactive_video.mli:
