examples/multi_hop.mli:
