examples/multi_hop.ml: Float Format List Printf Rcbr_signal Rcbr_util
