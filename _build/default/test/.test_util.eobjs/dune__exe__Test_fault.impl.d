test/test_fault.ml: Alcotest Array Float List Rcbr_admission Rcbr_core Rcbr_fault Rcbr_signal Rcbr_sim Rcbr_traffic
