test/test_core.ml: Alcotest Array Float List QCheck QCheck_alcotest Rcbr_core Rcbr_queue Rcbr_traffic
