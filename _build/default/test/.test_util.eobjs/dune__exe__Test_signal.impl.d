test/test_signal.ml: Alcotest List Rcbr_core Rcbr_signal Rcbr_traffic
