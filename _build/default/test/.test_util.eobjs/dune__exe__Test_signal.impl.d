test/test_signal.ml: Alcotest Array Float List QCheck QCheck_alcotest Rcbr_core Rcbr_fault Rcbr_signal Rcbr_traffic
