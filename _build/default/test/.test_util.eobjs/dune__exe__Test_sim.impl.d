test/test_sim.ml: Alcotest Array Float Rcbr_admission Rcbr_core Rcbr_sim Rcbr_traffic
