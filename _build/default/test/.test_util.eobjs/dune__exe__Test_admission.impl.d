test/test_admission.ml: Alcotest Array Rcbr_admission Rcbr_core Rcbr_effbw
