test/test_markov.ml: Alcotest Array Float List QCheck QCheck_alcotest Rcbr_markov Rcbr_util
