test/test_effbw.mli:
