test/test_effbw.ml: Alcotest Array List QCheck QCheck_alcotest Rcbr_effbw Rcbr_markov
