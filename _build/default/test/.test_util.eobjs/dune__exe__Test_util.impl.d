test/test_util.ml: Alcotest Array Float Gen List Option QCheck QCheck_alcotest Rcbr_util
