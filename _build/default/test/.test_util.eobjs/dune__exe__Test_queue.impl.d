test/test_queue.ml: Alcotest Array List QCheck QCheck_alcotest Rcbr_queue Rcbr_traffic
