test/test_integration.ml: Alcotest Array Filename Fun List Rcbr_admission Rcbr_core Rcbr_effbw Rcbr_markov Rcbr_queue Rcbr_signal Rcbr_sim Rcbr_traffic Rcbr_util Sys
