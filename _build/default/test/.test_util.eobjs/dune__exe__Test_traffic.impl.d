test/test_traffic.ml: Alcotest Array Filename Fun List QCheck QCheck_alcotest Rcbr_markov Rcbr_traffic Sys
