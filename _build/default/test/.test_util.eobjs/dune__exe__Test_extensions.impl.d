test/test_extensions.ml: Alcotest Array List QCheck QCheck_alcotest Rcbr_admission Rcbr_atm Rcbr_core Rcbr_queue Rcbr_signal Rcbr_sim Rcbr_traffic Rcbr_util Seq
