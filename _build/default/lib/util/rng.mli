(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is splitmix64 (Steele, Lea, Flood 2014): a 64-bit state
    advanced by a Weyl constant and finalized by an avalanche mixer.  It is
    fast, passes BigCrush when used as intended, and supports {!split} for
    creating statistically independent substreams (one per simulated
    source, replication, ...). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the continuation of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n-1]].  Requires [n > 0]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate).  Requires [rate > 0]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample by Box-Muller. *)

val poisson : t -> float -> int
(** [poisson t lambda] samples a Poisson count; inversion for small
    [lambda], normal approximation above 500.  Requires [lambda >= 0]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of
    a Bernoulli(p) sequence, i.e. support {0, 1, ...}.
    Requires [0 < p <= 1]. *)

val choose : t -> float array -> int
(** [choose t weights] samples an index with probability proportional to
    its (nonnegative) weight.  Requires a positive total weight. *)
