(** Small dense matrices over floats.

    Enough linear algebra for the Markov-chain layer: products, linear
    solves (stationary distributions), and the Perron root (dominant
    eigenvalue of a nonnegative matrix) that defines the log-MGF of a
    Markov additive process. *)

type t
(** Immutable-by-convention dense matrix. *)

val create : rows:int -> cols:int -> float -> t
val of_rows : float array array -> t
(** Copies its argument; all rows must have equal length. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val identity : int -> t
val transpose : t -> t
val map : (float -> float) -> t -> t
val scale_rows : t -> float array -> t
(** [scale_rows m d] multiplies row i of [m] by [d.(i)] — i.e.
    [diag d * m]. *)

val mul : t -> t -> t
val mat_vec : t -> float array -> float array
val vec_mat : float array -> t -> float array

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  Raises [Failure] on a (numerically) singular matrix. *)

val perron_root : ?tol:float -> ?max_iter:int -> t -> float
(** Dominant eigenvalue of a nonnegative matrix with a strictly positive
    power (power iteration on an added tiny regularizer keeps reducible
    inputs from stalling).  Requires a square matrix with nonnegative
    entries. *)

val pp : Format.formatter -> t -> unit
