lib/util/stats.mli:
