lib/util/rng.mli:
