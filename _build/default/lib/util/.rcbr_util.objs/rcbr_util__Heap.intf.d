lib/util/heap.mli:
