lib/util/numeric.mli:
