type t = { w : float array }

let create ~levels =
  assert (levels > 0);
  { w = Array.make levels 0. }

let levels t = Array.length t.w

let add t level x =
  assert (x >= 0.);
  t.w.(level) <- t.w.(level) +. x

let weight t level = t.w.(level)
let total t = Array.fold_left ( +. ) 0. t.w

let merge a b =
  assert (levels a = levels b);
  { w = Array.mapi (fun i x -> x +. b.w.(i)) a.w }

let scale t k =
  assert (k >= 0.);
  { w = Array.map (fun x -> x *. k) t.w }

let to_distribution t =
  let s = total t in
  assert (s > 0.);
  Array.map (fun x -> x /. s) t.w

let of_distribution p =
  Array.iter (fun x -> assert (x >= 0.)) p;
  { w = Array.copy p }

let mean_level_value t ~values =
  let p = to_distribution t in
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. (pi *. values.(i))) p;
  !acc

let support t =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if t.w.(i) > 0. then i :: acc else acc)
  in
  collect (Array.length t.w - 1) []

let pp fmt t =
  Format.fprintf fmt "@[<h>[";
  Array.iteri
    (fun i x -> if x > 0. then Format.fprintf fmt " %d:%.4g" i x)
    t.w;
  Format.fprintf fmt " ]@]"
