(** Descriptive statistics and confidence intervals.

    The simulation experiments in the paper stop sampling when the 95%
    confidence interval of an estimated probability is within 20% of the
    estimate (Section V-B); {!Online} and {!confidence_interval} provide
    exactly that machinery. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator n-1); 0 for singleton arrays. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [0 <= q <= 1], linear interpolation between order
    statistics.  Does not mutate its argument. *)

val minimum : float array -> float
val maximum : float array -> float

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag] is the sample autocorrelation at the given
    lag; 0 when the series is constant.  Requires [0 <= lag < length]. *)

(** Online (streaming) moments via Welford's algorithm. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased; 0 when fewer than two samples. *)

  val stddev : t -> float

  val confidence_halfwidth : t -> float
  (** Half-width of the normal-approximation 95% confidence interval of
      the mean: [1.96 * stddev / sqrt count]; [infinity] when fewer than
      two samples. *)

  val relative_precision : t -> float
  (** [confidence_halfwidth / |mean|]; [infinity] when the mean is 0 or
      samples are scarce.  The paper's stopping rule is
      [relative_precision <= 0.2]. *)
end
