(** Root finding and one-dimensional optimization.

    The large-deviations layer needs to invert monotone functions
    (equivalent bandwidth, Chernoff capacity) and maximize concave ones
    (Legendre transforms); these small, dependency-free solvers cover
    those cases. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [\[lo, hi\]] by bisection.
    Requires [f lo] and [f hi] to have opposite signs (zero counts as
    either).  [tol] bounds the bracket width (default 1e-9 relative). *)

val find_min_such_that :
  ?tol:float -> ?max_iter:int -> pred:(float -> bool) -> float -> float -> float
(** [find_min_such_that ~pred lo hi] assumes [pred] is monotone
    (false ... false true ... true) on [\[lo, hi\]] and returns the
    smallest argument satisfying it, within tolerance.  Returns [hi] if
    even [hi] fails the predicate, [lo] if [lo] already satisfies it. *)

val golden_max :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [golden_max ~f lo hi] returns the argmax of a unimodal [f] on
    [\[lo, hi\]] by golden-section search. *)

val log_sum_exp : float array -> float
(** Numerically stable [log (sum_i exp x_i)].  Requires a non-empty
    array; [-infinity] entries are permitted. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Relative-or-absolute comparison with default [eps = 1e-9]. *)
