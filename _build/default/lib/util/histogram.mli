(** Weighted histograms over discrete levels.

    The admission-control machinery (Section VI) describes a call by the
    fraction of time it spends at each bandwidth level; those empirical
    distributions are built and manipulated here.  Levels are identified
    by integer index into some external level table. *)

type t
(** Mutable histogram: weight per level index. *)

val create : levels:int -> t
(** All weights zero.  Requires [levels > 0]. *)

val levels : t -> int
val add : t -> int -> float -> unit
(** [add h level w] accumulates weight [w >= 0] on [level]. *)

val weight : t -> int -> float
val total : t -> float

val merge : t -> t -> t
(** Pointwise sum; the two histograms must have equal [levels]. *)

val scale : t -> float -> t
(** Pointwise multiplication by a nonnegative factor. *)

val to_distribution : t -> float array
(** Normalized probabilities (summing to 1).  Requires positive total. *)

val of_distribution : float array -> t
(** Histogram holding the given nonnegative weights. *)

val mean_level_value : t -> values:float array -> float
(** Expectation of [values.(level)] under the normalized histogram. *)

val support : t -> int list
(** Level indices with strictly positive weight, ascending. *)

val pp : Format.formatter -> t -> unit
