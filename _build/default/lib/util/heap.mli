(** Binary min-heap, used as the event queue of the discrete-event
    engine. *)

type 'a t
(** Heap of elements ordered by a float priority. *)

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> priority:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Smallest priority, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the smallest-priority element.  Ties are broken
    by insertion order (FIFO), which keeps simultaneous simulation events
    deterministic. *)

val clear : 'a t -> unit
