(** Call traffic descriptors for admission control (Section VI).

    A call is described by the fraction of time it spends at each
    bandwidth level of a common level table; the Chernoff approximation
    (formula (12)) turns that histogram plus the link capacity into the
    maximum number of admissible calls. *)

type t

val create : levels:float array -> fractions:float array -> t
(** [levels] are the bandwidth values (b/s, ascending); [fractions] are
    nonnegative time fractions summing to 1 (within 1e-6). *)

val of_schedule : Rcbr_core.Schedule.t -> t
(** Empirical distribution of a schedule's rate levels — exact for
    stored video (the paper notes interactivity blurs it). *)

val levels : t -> float array
val fractions : t -> float array
val mean_rate : t -> float
val peak_rate : t -> float

val to_marginal : t -> Rcbr_effbw.Chernoff.marginal

val max_admissible : t -> capacity:float -> target:float -> int
(** Formula (12): the largest call count whose estimated renegotiation
    failure probability stays below [target] on a link of [capacity]
    b/s.  Note this deliberately rejects calls even when capacity is
    free — the slack guards against demand fluctuations of calls
    already admitted. *)
