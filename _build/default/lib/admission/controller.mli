(** Admission controllers (Section VI).

    A controller is driven by the call-level simulator: it is asked for
    an admit/reject decision on every arrival and informed of every
    admitted call's renegotiations and departure, from which the
    measurement-based schemes build their view of "a typical call".

    All controllers share the same Chernoff admission rule — admit the
    new call iff [n + 1 <= max_calls(estimate, capacity, target)] — and
    differ only in where the bandwidth-level distribution estimate comes
    from:

    - {!perfect}: the true marginal, known a priori;
    - {!memoryless}: the instantaneous rates of the calls currently in
      the system (the certainty-equivalent scheme shown not robust);
    - {!memory}: time-weighted histograms over the {e entire history} of
      every call currently in the system;
    - {!always_admit}: no control, for baselines. *)

type t

val name : t -> string

val admit : t -> now:float -> bool
(** Decision for a call arriving at [now], given the controller's
    current knowledge.  Does not mutate state; the simulator follows up
    with {!on_admit} only when the call is actually placed. *)

val on_admit : t -> now:float -> call:int -> rate:float -> unit
val on_renegotiate : t -> now:float -> call:int -> rate:float -> unit
(** The call's reserved rate changed to [rate] at time [now]. *)

val on_depart : t -> now:float -> call:int -> unit

val n_in_system : t -> int

val perfect : descriptor:Descriptor.t -> capacity:float -> target:float -> t
val memoryless : capacity:float -> target:float -> t
val memory : capacity:float -> target:float -> t
val always_admit : unit -> t
