module Chernoff = Rcbr_effbw.Chernoff

type t = { levels : float array; fractions : float array }

let create ~levels ~fractions =
  if Array.length levels = 0 then invalid_arg "Descriptor.create: empty";
  if Array.length levels <> Array.length fractions then
    invalid_arg "Descriptor.create: length mismatch";
  let prev = ref neg_infinity in
  Array.iter
    (fun l ->
      if l < 0. || l <= !prev then
        invalid_arg "Descriptor.create: levels not ascending";
      prev := l)
    levels;
  let total = Array.fold_left ( +. ) 0. fractions in
  Array.iter
    (fun f -> if f < 0. then invalid_arg "Descriptor.create: negative fraction")
    fractions;
  if Float.abs (total -. 1.) > 1e-6 then
    invalid_arg "Descriptor.create: fractions do not sum to 1";
  { levels = Array.copy levels; fractions = Array.copy fractions }

let of_schedule sched =
  let marg = Rcbr_core.Schedule.marginal sched in
  let levels = Array.map snd marg in
  let fractions = Array.map fst marg in
  create ~levels ~fractions

let levels t = Array.copy t.levels
let fractions t = Array.copy t.fractions

let mean_rate t =
  let acc = ref 0. in
  Array.iteri (fun i f -> acc := !acc +. (f *. t.levels.(i))) t.fractions;
  !acc

let peak_rate t =
  let top = ref 0. in
  Array.iteri (fun i f -> if f > 0. then top := max !top t.levels.(i)) t.fractions;
  !top

let to_marginal t =
  Array.init (Array.length t.levels) (fun i -> (t.fractions.(i), t.levels.(i)))

let max_admissible t ~capacity ~target =
  Chernoff.max_calls (to_marginal t) ~capacity ~target
