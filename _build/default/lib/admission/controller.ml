module Chernoff = Rcbr_effbw.Chernoff

type call_state = {
  mutable rate : float;
  mutable since : float;
  history : (float, float) Hashtbl.t;  (* rate -> accumulated seconds *)
}

type kind =
  | Perfect of { max_calls : int }
  | Memoryless of { capacity : float; target : float }
  | Memory of { capacity : float; target : float }
  | Always

type t = { name : string; kind : kind; calls : (int, call_state) Hashtbl.t }

let name t = t.name
let n_in_system t = Hashtbl.length t.calls

let accumulate state ~now =
  let elapsed = now -. state.since in
  if elapsed > 0. then begin
    let prev = try Hashtbl.find state.history state.rate with Not_found -> 0. in
    Hashtbl.replace state.history state.rate (prev +. elapsed)
  end;
  state.since <- now

let marginal_of_weights weights =
  (* [(rate, weight)] list with positive total -> normalized marginal. *)
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  assert (total > 0.);
  let arr =
    Array.of_list (List.map (fun (r, w) -> (w /. total, r)) weights)
  in
  Array.sort (fun (_, a) (_, b) -> compare a b) arr;
  arr

let instantaneous_weights t =
  Hashtbl.fold (fun _ st acc -> (st.rate, 1.) :: acc) t.calls []

let history_weights t ~now =
  Hashtbl.fold
    (fun _ st acc ->
      let acc =
        Hashtbl.fold (fun rate secs acc -> (rate, secs) :: acc) st.history acc
      in
      let ongoing = now -. st.since in
      if ongoing > 0. then (st.rate, ongoing) :: acc else acc)
    t.calls []

let chernoff_admit ~capacity ~target ~n weights =
  match weights with
  | [] -> true (* no information: the certainty-equivalent scheme admits *)
  | _ ->
      let m = marginal_of_weights weights in
      n + 1 <= Chernoff.max_calls m ~capacity ~target

let admit t ~now =
  let n = n_in_system t in
  match t.kind with
  | Always -> true
  | Perfect { max_calls } -> n + 1 <= max_calls
  | Memoryless { capacity; target } ->
      chernoff_admit ~capacity ~target ~n (instantaneous_weights t)
  | Memory { capacity; target } ->
      let weights = history_weights t ~now in
      let weights =
        (* All-fresh calls have no elapsed time yet; fall back to their
           instantaneous rates. *)
        if List.for_all (fun (_, w) -> w <= 0.) weights then
          instantaneous_weights t
        else weights
      in
      chernoff_admit ~capacity ~target ~n weights

let on_admit t ~now ~call ~rate =
  assert (not (Hashtbl.mem t.calls call));
  Hashtbl.replace t.calls call
    { rate; since = now; history = Hashtbl.create 8 }

let on_renegotiate t ~now ~call ~rate =
  match Hashtbl.find_opt t.calls call with
  | None -> ()
  | Some st ->
      accumulate st ~now;
      st.rate <- rate

let on_depart t ~now ~call =
  ignore now;
  Hashtbl.remove t.calls call

let perfect ~descriptor ~capacity ~target =
  let max_calls = Descriptor.max_admissible descriptor ~capacity ~target in
  { name = "perfect"; kind = Perfect { max_calls }; calls = Hashtbl.create 64 }

let memoryless ~capacity ~target =
  {
    name = "memoryless";
    kind = Memoryless { capacity; target };
    calls = Hashtbl.create 64;
  }

let memory ~capacity ~target =
  {
    name = "memory";
    kind = Memory { capacity; target };
    calls = Hashtbl.create 64;
  }

let always_admit () =
  { name = "always-admit"; kind = Always; calls = Hashtbl.create 64 }
