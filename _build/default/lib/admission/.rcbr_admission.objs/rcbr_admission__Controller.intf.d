lib/admission/controller.mli: Descriptor
