lib/admission/descriptor.mli: Rcbr_core Rcbr_effbw
