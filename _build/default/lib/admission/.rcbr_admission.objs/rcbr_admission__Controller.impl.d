lib/admission/controller.ml: Array Descriptor Hashtbl List Rcbr_effbw
