lib/admission/descriptor.ml: Array Float Rcbr_core Rcbr_effbw
