(** Output-port scheduling disciplines and traffic protection.

    Section II's "loss of protection": with unrestricted sharing, a
    misbehaving source inflates everybody's delay unless switches run
    per-connection fair queueing.  RCBR's counter-argument (Section
    III): once traffic is shaped to its reserved CBR rate — enforced by
    a peak-rate policer — plain FIFO is enough.  This simulator runs
    several per-VC cell streams through one port under FIFO or
    self-clocked fair queueing (SCFQ), with an optional per-VC GCRA
    policer, and reports per-VC delays, so all three regimes can be
    compared:

    - FIFO, no policing: the misbehaver hurts everyone;
    - SCFQ: protection through scheduler complexity;
    - FIFO + peak-rate policing (the RCBR way): protection through
      shaping, with a trivial scheduler. *)

type discipline = Fifo | Scfq

type per_vc = {
  offered : int;  (** cells that arrived (before policing) *)
  policed : int;  (** cells dropped by the policer *)
  served : int;
  mean_delay : float;  (** seconds, arrival to departure *)
  max_delay : float;
}

val simulate :
  discipline:discipline ->
  port_rate:float ->
  ?policer:(int -> Gcra.t option) ->
  sources:Cell_mux.source list ->
  duration:float ->
  unit ->
  per_vc array
(** One entry per source.  [policer vc] (called once per source at
    setup) returns the UPC device for that VC, if any.  Queues are
    unbounded — the experiment is about delay, not loss.  Requires a
    positive [port_rate] and [duration]. *)
