(** Generic Cell Rate Algorithm — peak-rate policing.

    Section VI: with RCBR, "policing is reduced to enforcing peak
    rate".  This is the standard ATM UPC device: the virtual scheduling
    formulation of GCRA(T, tau), where T is the nominal inter-cell time
    of the policed rate and tau the cell-delay-variation tolerance.  A
    cell is conforming iff it does not arrive more than tau early
    against its theoretical arrival time. *)

type t

val create : rate:float -> ?cdvt:float -> unit -> t
(** Police the given cell {e payload} rate (b/s).  [cdvt] defaults to
    one nominal inter-cell time.  Requires [rate > 0] and
    [cdvt >= 0]. *)

val increment : t -> float
(** The nominal inter-cell time T, seconds. *)

val conforming : t -> float -> bool
(** [conforming t at] tests (and accounts) a cell arriving at time
    [at].  Nonconforming cells do not advance the theoretical arrival
    time.  Arrival times must be nondecreasing. *)

val update_rate : t -> float -> unit
(** Renegotiation support: change the policed rate in place (the
    theoretical arrival time is kept).  Requires a positive rate. *)
