(** Cell-level multiplexing at a switch output port.

    Section III claims that "because all traffic entering the network is
    CBR, RCBR requires minimal buffering and scheduling support in
    switches" — a FIFO and a few cells of buffer suffice.  This
    simulator checks that claim at cell granularity: several sources
    feed one output port, either {e paced} (RCBR-shaped piecewise-CBR,
    cells evenly spaced) or as {e frame bursts} (unshaped VBR, each
    frame's cells back-to-back at link speed), and we measure the FIFO
    occupancy and delay.

    Paced traffic keeps the queue at a handful of cells (one per
    simultaneously colliding source); frame bursts push it to thousands
    — the quantitative content of the paper's "minimal buffering". *)

type source =
  | Paced of { schedule : Rcbr_core.Schedule.t; offset : float }
      (** cells spaced [1 / cell_rate] apart at the schedule's current
          rate; [offset] delays the first cell (decollision phase) *)
  | Frame_burst of { trace : Rcbr_traffic.Trace.t; line_rate : float }
      (** each frame's cells emitted back-to-back at [line_rate] when
          the frame is produced *)

type stats = {
  cells : int;  (** cells offered *)
  lost : int;  (** cells dropped at a full buffer *)
  max_queue : int;  (** peak FIFO occupancy, cells *)
  mean_queue : float;  (** mean occupancy seen by arriving cells *)
  p99_queue : int;  (** 99th percentile of the same *)
  max_delay : float;  (** worst queueing delay, seconds *)
}

val arrivals :
  sources:source list -> duration:float -> (float * int) Seq.t
(** Merged cell arrival stream: [(time, source index)] pairs in
    chronological order, ending at [duration].  The common front-end of
    {!simulate} and {!Scheduler.simulate}. *)

val simulate :
  port_rate:float ->
  ?buffer_cells:int ->
  sources:source list ->
  duration:float ->
  unit ->
  stats
(** Run the port for [duration] seconds.  [buffer_cells] defaults to
    unbounded.  The FIFO is work-conserving; queue occupancy is sampled
    at every cell arrival (ASTA does not hold for paced traffic, but the
    arrival-sampled figures are exactly what a buffer-dimensioning
    exercise needs).  Requires a positive [port_rate] and [duration]. *)
