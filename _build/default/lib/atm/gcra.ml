type t = { mutable increment : float; cdvt : float; mutable tat : float }

let create ~rate ?cdvt () =
  assert (rate > 0.);
  let increment = 1. /. Cell.cell_rate ~rate in
  let cdvt = match cdvt with None -> increment | Some c -> c in
  assert (cdvt >= 0.);
  { increment; cdvt; tat = 0. }

let increment t = t.increment

let conforming t at =
  if at < t.tat -. t.cdvt then false
  else begin
    t.tat <- Float.max at t.tat +. t.increment;
    true
  end

let update_rate t rate =
  assert (rate > 0.);
  t.increment <- 1. /. Cell.cell_rate ~rate
