type discipline = Fifo | Scfq

type per_vc = {
  offered : int;
  policed : int;
  served : int;
  mean_delay : float;
  max_delay : float;
}

(* Queued cells carry (arrival time, SCFQ finish tag). *)
type vc_state = {
  queue : (float * float) Queue.t;
  policer : Gcra.t option;
  mutable last_tag : float;  (* finish tag of the VC's last queued cell *)
  mutable offered : int;
  mutable policed : int;
  mutable served : int;
  mutable delay_sum : float;
  mutable delay_max : float;
}

let simulate ~discipline ~port_rate ?(policer = fun _ -> None) ~sources
    ~duration () =
  assert (port_rate > 0. && duration > 0.);
  let service = Cell.service_time ~port_rate in
  let n = List.length sources in
  let vcs =
    Array.init n (fun i ->
        {
          queue = Queue.create ();
          policer = policer i;
          last_tag = 0.;
          offered = 0;
          policed = 0;
          served = 0;
          delay_sum = 0.;
          delay_max = 0.;
        })
  in
  (* SCFQ (Golestani): an arriving cell of VC i is stamped
     max(V, F_i) + 1 (equal weights, in cell units), where V is the tag
     of the cell in service; the scheduler serves the smallest
     head-of-line tag. *)
  let virtual_time = ref 0. in
  let backlogged = ref 0 in
  let hol_key vc =
    let arrival, tag = Queue.peek vc.queue in
    match discipline with Fifo -> arrival | Scfq -> tag
  in
  let pick_next () =
    let best = ref (-1) and best_key = ref infinity in
    Array.iteri
      (fun i vc ->
        if not (Queue.is_empty vc.queue) then begin
          let key = hol_key vc in
          if key < !best_key then begin
            best_key := key;
            best := i
          end
        end)
      vcs;
    !best
  in
  let server_free = ref 0. in
  let serve_until limit =
    let continue_ = ref true in
    while !continue_ do
      if !backlogged = 0 || !server_free >= limit then continue_ := false
      else begin
        let vc = vcs.(pick_next ()) in
        let arrival, tag = Queue.pop vc.queue in
        decr backlogged;
        virtual_time := tag;
        let depart = !server_free +. service in
        server_free := depart;
        let delay = depart -. arrival in
        vc.served <- vc.served + 1;
        vc.delay_sum <- vc.delay_sum +. delay;
        if delay > vc.delay_max then vc.delay_max <- delay
      end
    done;
    if !backlogged = 0 then virtual_time := 0.
  in
  Seq.iter
    (fun (t, i) ->
      serve_until t;
      if !backlogged = 0 && !server_free < t then server_free := t;
      let vc = vcs.(i) in
      vc.offered <- vc.offered + 1;
      let pass =
        match vc.policer with None -> true | Some g -> Gcra.conforming g t
      in
      if pass then begin
        let tag =
          let base =
            if Queue.is_empty vc.queue then Float.max !virtual_time vc.last_tag
            else vc.last_tag
          in
          base +. 1.
        in
        vc.last_tag <- tag;
        Queue.push (t, tag) vc.queue;
        incr backlogged
      end
      else vc.policed <- vc.policed + 1)
    (Cell_mux.arrivals ~sources ~duration);
  serve_until infinity;
  Array.map
    (fun vc ->
      {
        offered = vc.offered;
        policed = vc.policed;
        served = vc.served;
        mean_delay =
          (if vc.served = 0 then 0. else vc.delay_sum /. float_of_int vc.served);
        max_delay = vc.delay_max;
      })
    vcs
