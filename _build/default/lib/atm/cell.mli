(** ATM cells.

    Fixed-size 53-byte cells with a 48-byte payload; a video frame of
    [b] bits occupies [ceil (b / 384)] cells.  Only the accounting
    matters to the simulations, not the byte layout. *)

val cell_bytes : int
(** 53. *)

val payload_bits : float
(** 384 — 48 bytes of payload. *)

val wire_bits : float
(** 424 — 53 bytes on the wire. *)

val cells_of_bits : float -> int
(** Cells needed to carry the given payload bits.  0 for 0. *)

val service_time : port_rate:float -> float
(** Seconds to transmit one cell at the given port rate (b/s). *)

val cell_rate : rate:float -> float
(** Cells per second of a source sending payload at [rate] b/s. *)
