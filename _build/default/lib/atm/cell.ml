let cell_bytes = 53
let payload_bits = 384.
let wire_bits = 424.

let cells_of_bits bits =
  assert (bits >= 0.);
  int_of_float (Float.ceil (bits /. payload_bits))

let service_time ~port_rate =
  assert (port_rate > 0.);
  wire_bits /. port_rate

let cell_rate ~rate =
  assert (rate >= 0.);
  rate /. payload_bits
