lib/atm/gcra.mli:
