lib/atm/scheduler.mli: Cell_mux Gcra
