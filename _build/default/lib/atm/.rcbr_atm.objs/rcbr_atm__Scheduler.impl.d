lib/atm/scheduler.ml: Array Cell Cell_mux Float Gcra List Queue Seq
