lib/atm/cell_mux.ml: Array Cell Float Hashtbl List Option Rcbr_core Rcbr_traffic Rcbr_util Seq
