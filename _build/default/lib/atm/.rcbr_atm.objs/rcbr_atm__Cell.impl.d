lib/atm/cell.ml: Float
