lib/atm/cell.mli:
