lib/atm/cell_mux.mli: Rcbr_core Rcbr_traffic Seq
