lib/atm/gcra.ml: Cell Float
