(** Synthetic multiple time-scale video traffic.

    The paper's experiments use the MPEG-1 encoding of the {e Star Wars}
    movie (Garrett/Willinger trace): ~2 h at 24 frames/s, long-term mean
    374 kb/s, sustained peaks near 5x the mean lasting over 10 s, and a
    maximum 3-consecutive-frame burst slightly under 300 kb.  That trace
    is proprietary, so this generator produces a statistically equivalent
    workload with burstiness on three time scales:

    - {b frames} (tens of ms): MPEG GOP size pattern (I/P/B) modulated by
      lognormal AR(1) noise;
    - {b scenes} (seconds to tens of seconds): a semi-Markov process over
      rate classes — the paper's rare subchain transitions;
    - {b program segments} (minutes): slowly switching moods that bias
      which scene classes occur, giving the long-horizon rate excursions
      that make small over-allocations require enormous buffers
      (the 1.05x mean -> ~100 Mb headline of Fig. 5).

    The output is rescaled so its long-term mean is exactly
    [mean_rate_bps].  Everything is deterministic given the seed. *)

type scene_class = {
  label : string;
  rate_multiplier : float;  (** scene mean rate relative to long-term mean *)
  mean_duration_s : float;  (** geometric scene length with this mean *)
}

type segment = {
  seg_label : string;
  class_weights : float array;  (** selection weight per scene class *)
  seg_mean_duration_s : float;
  seg_weight : float;  (** selection probability weight of the segment *)
}

type params = {
  mean_rate_bps : float;
  fps : float;
  classes : scene_class array;
  segments : segment array;
  gop : Gop.pattern;
  noise_rho : float;  (** AR(1) coefficient of the log-size noise *)
  noise_sigma : float;  (** stationary std-dev of the log-size noise *)
  min_frame_bits : float;
}

val star_wars_params : params
(** Calibrated to the published Star Wars summary statistics. *)

val default_frames : int
(** 171 000 — two hours at 24 fps, the length of the original trace. *)

val class_occupancy : params -> float array
(** Approximate long-run time share of each scene class (segment-weighted
    renewal-reward). *)

val expected_multiplier : params -> float
(** Time-weighted mean of the class multipliers under
    {!class_occupancy}. *)

val generate : ?params:params -> seed:int -> frames:int -> unit -> Trace.t
(** Generate a trace.  Defaults to {!star_wars_params}. *)

val star_wars : ?frames:int -> seed:int -> unit -> Trace.t
(** [generate ~params:star_wars_params]; [frames] defaults to
    {!default_frames}. *)

val to_multiscale : params -> Rcbr_markov.Multiscale.t
(** Project the scene process onto the paper's analytical model: one
    two-state fast subchain per scene class (low/high = class rate −/+
    one noise std-dev, GOP-averaged) with rare transitions matching the
    scene-change rates under {!class_occupancy}.  Used to compare formula
    (9) against the generator. *)
