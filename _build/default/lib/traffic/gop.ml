type kind = I | P | B

type pattern = {
  kinds : kind array;
  weight_i : float;
  weight_p : float;
  weight_b : float;
}

let make ~kinds ~weight_i ~weight_p ~weight_b =
  assert (Array.length kinds > 0);
  assert (weight_i > 0. && weight_p > 0. && weight_b > 0.);
  { kinds = Array.copy kinds; weight_i; weight_p; weight_b }

let mpeg1_default =
  make
    ~kinds:[| I; B; B; P; B; B; P; B; B; P; B; B |]
    ~weight_i:2.5 ~weight_p:1.2 ~weight_b:0.6

let gop_length p = Array.length p.kinds
let kind_at p i = p.kinds.(i mod Array.length p.kinds)

let weight_of p = function
  | I -> p.weight_i
  | P -> p.weight_p
  | B -> p.weight_b

let weight_at p i = weight_of p (kind_at p i)

let mean_weight p =
  let acc = Array.fold_left (fun a k -> a +. weight_of p k) 0. p.kinds in
  acc /. float_of_int (Array.length p.kinds)

let kind_to_string = function I -> "I" | P -> "P" | B -> "B"
