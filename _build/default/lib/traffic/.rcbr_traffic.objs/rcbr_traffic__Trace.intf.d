lib/traffic/trace.mli: Format
