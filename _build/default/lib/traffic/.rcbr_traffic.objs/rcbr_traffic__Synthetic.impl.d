lib/traffic/synthetic.ml: Array Gop Rcbr_markov Rcbr_util Trace
