lib/traffic/token_bucket.ml: Trace
