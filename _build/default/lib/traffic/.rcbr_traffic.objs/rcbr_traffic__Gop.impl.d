lib/traffic/gop.ml: Array
