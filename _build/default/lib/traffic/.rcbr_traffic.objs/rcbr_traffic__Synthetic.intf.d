lib/traffic/synthetic.mli: Gop Rcbr_markov Trace
