lib/traffic/trace.ml: Array Format Fun List Printf String
