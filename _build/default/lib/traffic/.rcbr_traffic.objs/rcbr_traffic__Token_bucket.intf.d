lib/traffic/token_bucket.mli: Trace
