lib/traffic/gop.mli:
