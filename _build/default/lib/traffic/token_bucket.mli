(** Leaky-bucket / token-bucket traffic descriptors.

    The "one-shot traffic descriptors" of Section II: a token rate [rho]
    (tokens accrue at [rho] b/s up to depth [sigma] bits) against which
    arriving data is policed.  Used to quantify how poorly a static
    (sigma, rho) pair captures multiple time-scale traffic. *)

type t

val create : rate:float -> depth:float -> t
(** Requires [rate >= 0] and [depth >= 0].  The bucket starts full. *)

val rate : t -> float
val depth : t -> float
val tokens : t -> float

val refill : t -> dt:float -> unit
(** Accrue tokens for [dt >= 0] seconds. *)

val try_consume : t -> float -> bool
(** [try_consume t bits] atomically takes [bits] tokens if available.
    Returns false (taking nothing) otherwise. *)

val conforming_fraction : t -> trace:Trace.t -> float
(** Fraction of the trace's bits that conform (greedy per-frame
    policing). Mutates the bucket. *)

val min_depth_for_trace : Trace.t -> rate:float -> float
(** Smallest bucket depth such that every frame of the trace conforms at
    token rate [rate] — i.e. the maximum backlog of the virtual queue
    drained at [rate].  This is the exact burstiness curve
    sigma*(rho). *)
