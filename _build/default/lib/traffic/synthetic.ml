module Rng = Rcbr_util.Rng
module Multiscale = Rcbr_markov.Multiscale
module Chain = Rcbr_markov.Chain

type scene_class = {
  label : string;
  rate_multiplier : float;
  mean_duration_s : float;
}

type segment = {
  seg_label : string;
  class_weights : float array;
  seg_mean_duration_s : float;
  seg_weight : float;
}

type params = {
  mean_rate_bps : float;
  fps : float;
  classes : scene_class array;
  segments : segment array;
  gop : Gop.pattern;
  noise_rho : float;
  noise_sigma : float;
  min_frame_bits : float;
}

let star_wars_params =
  {
    mean_rate_bps = 374_000.;
    fps = 24.;
    classes =
      [|
        { label = "quiet"; rate_multiplier = 0.35; mean_duration_s = 15. };
        { label = "low"; rate_multiplier = 0.65; mean_duration_s = 12. };
        { label = "normal"; rate_multiplier = 1.00; mean_duration_s = 10. };
        { label = "busy"; rate_multiplier = 1.90; mean_duration_s = 7. };
        { label = "action"; rate_multiplier = 3.40; mean_duration_s = 6. };
      |];
    segments =
      [|
        {
          seg_label = "calm";
          class_weights = [| 0.45; 0.35; 0.18; 0.02; 0.00 |];
          seg_mean_duration_s = 180.;
          seg_weight = 0.35;
        };
        {
          seg_label = "mixed";
          class_weights = [| 0.15; 0.25; 0.40; 0.15; 0.05 |];
          seg_mean_duration_s = 150.;
          seg_weight = 0.45;
        };
        {
          seg_label = "intense";
          class_weights = [| 0.02; 0.08; 0.28; 0.35; 0.27 |];
          seg_mean_duration_s = 100.;
          seg_weight = 0.20;
        };
      |];
    gop =
      Gop.(
        make
          ~kinds:[| I; B; B; P; B; B; P; B; B; P; B; B |]
          ~weight_i:2.1 ~weight_p:1.15 ~weight_b:0.6);
    noise_rho = 0.85;
    noise_sigma = 0.11;
    min_frame_bits = 200.;
  }

let default_frames = 171_000

let within_segment_occupancy p seg =
  (* Time share of class k inside a segment: weight * duration. *)
  let raw =
    Array.mapi
      (fun k c -> seg.class_weights.(k) *. c.mean_duration_s)
      p.classes
  in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun x -> x /. total) raw

let class_occupancy p =
  let k = Array.length p.classes in
  let acc = Array.make k 0. in
  let seg_total =
    Array.fold_left
      (fun a s -> a +. (s.seg_weight *. s.seg_mean_duration_s))
      0. p.segments
  in
  Array.iter
    (fun seg ->
      let share = seg.seg_weight *. seg.seg_mean_duration_s /. seg_total in
      let occ = within_segment_occupancy p seg in
      Array.iteri (fun i x -> acc.(i) <- acc.(i) +. (share *. x)) occ)
    p.segments;
  acc

let expected_multiplier p =
  let occ = class_occupancy p in
  let acc = ref 0. in
  Array.iteri
    (fun i c -> acc := !acc +. (occ.(i) *. c.rate_multiplier))
    p.classes;
  !acc

let generate ?(params = star_wars_params) ~seed ~frames () =
  assert (frames > 0);
  let p = params in
  let rng = Rng.create seed in
  let gop_norm = Gop.mean_weight p.gop in
  let mean_frame_bits = p.mean_rate_bps /. p.fps in
  (* Lognormal correction so E[exp(noise)] = 1. *)
  let log_bias = -.(p.noise_sigma *. p.noise_sigma) /. 2. in
  let innovation_sigma =
    p.noise_sigma *. sqrt (1. -. (p.noise_rho *. p.noise_rho))
  in
  let out = Array.make frames 0. in
  let log_noise = ref (Rng.normal rng ~mu:0. ~sigma:p.noise_sigma) in
  let pick_segment () =
    Rng.choose rng (Array.map (fun s -> s.seg_weight) p.segments)
  in
  let seg = ref (pick_segment ()) in
  let pick_class () = Rng.choose rng p.segments.(!seg).class_weights in
  let scene = ref (pick_class ()) in
  let draw_scene_length c =
    let mean_frames = c.mean_duration_s *. p.fps in
    1 + Rng.geometric rng (1. /. mean_frames)
  in
  let scene_left = ref (draw_scene_length p.classes.(!scene)) in
  for i = 0 to frames - 1 do
    if !scene_left = 0 then begin
      (* Segment switches only at scene boundaries; memorylessness of the
         exponential makes the switch probability depend on the elapsed
         scene length. *)
      let elapsed = p.classes.(!scene).mean_duration_s in
      let p_switch =
        1. -. exp (-.elapsed /. p.segments.(!seg).seg_mean_duration_s)
      in
      if Rng.float rng < p_switch then seg := pick_segment ();
      scene := pick_class ();
      scene_left := draw_scene_length p.classes.(!scene)
    end;
    decr scene_left;
    let c = p.classes.(!scene) in
    log_noise :=
      (p.noise_rho *. !log_noise)
      +. Rng.normal rng ~mu:0. ~sigma:innovation_sigma;
    let noise = exp (!log_noise +. log_bias) in
    let bits =
      mean_frame_bits *. c.rate_multiplier
      *. (Gop.weight_at p.gop i /. gop_norm)
      *. noise
    in
    out.(i) <- max p.min_frame_bits bits
  done;
  (* Exact rescale: the published mean is a fixed property of the trace. *)
  let actual_mean =
    Array.fold_left ( +. ) 0. out /. float_of_int frames *. p.fps
  in
  let scale = p.mean_rate_bps /. actual_mean in
  Array.iteri (fun i x -> out.(i) <- x *. scale) out;
  Trace.create ~fps:p.fps out

let star_wars ?(frames = default_frames) ~seed () =
  generate ~params:star_wars_params ~seed ~frames ()

let to_multiscale p =
  let norm = expected_multiplier p in
  let mean_frame_bits = p.mean_rate_bps /. p.fps in
  let k = Array.length p.classes in
  let occ = class_occupancy p in
  (* Fast subchain: two levels, class mean -/+ one noise std-dev, with a
     flicker probability matching the AR(1) decorrelation time. *)
  let flicker = 1. -. p.noise_rho in
  let subchains =
    Array.map
      (fun c ->
        let m = mean_frame_bits *. c.rate_multiplier /. norm in
        let spread = p.noise_sigma in
        let chain =
          Chain.create
            [| [| 1. -. flicker; flicker |]; [| flicker; 1. -. flicker |] |]
        in
        {
          Multiscale.chain;
          rates = [| m *. (1. -. spread); m *. (1. +. spread) |];
        })
      p.classes
  in
  (* Scene-change probability out of class i per frame is 1/mean_frames;
     target class j chosen with probability proportional to its long-run
     occupancy (excluding self). *)
  let eps =
    Array.init k (fun i ->
        let leave = 1. /. (p.classes.(i).mean_duration_s *. p.fps) in
        let weights = Array.init k (fun j -> if i = j then 0. else occ.(j)) in
        let total = Array.fold_left ( +. ) 0. weights in
        Array.map (fun w -> leave *. w /. total) weights)
  in
  let draft = Multiscale.create subchains ~eps in
  (* The eps-chain's stationary law differs slightly from the
     renewal-reward occupancy used for the first normalization; rescale
     the rates so the model's own stationary mean is exact. *)
  let correction = mean_frame_bits /. Multiscale.mean_rate draft in
  let subchains =
    Array.map
      (fun sc ->
        { sc with Multiscale.rates = Array.map (fun r -> r *. correction) sc.Multiscale.rates })
      subchains
  in
  Multiscale.create subchains ~eps
