(** MPEG group-of-pictures structure.

    MPEG-1 coders emit I, P and B frames in a fixed repeating pattern;
    the short time-scale burstiness of the paper's traces ("the I, B, and
    P frame structure is well known", Section II) comes from the size
    disparity between the kinds.  This module captures the pattern and
    the relative frame-size weights. *)

type kind = I | P | B

type pattern
(** A repeating frame-kind sequence with per-kind size multipliers. *)

val make : kinds:kind array -> weight_i:float -> weight_p:float -> weight_b:float -> pattern
(** Requires a non-empty kind sequence and positive weights. *)

val mpeg1_default : pattern
(** The classical IBBPBBPBBPBB pattern (GOP size 12, I-to-I distance 12,
    P spacing 3), with weights I:P:B = 2.5 : 1.2 : 0.6 — representative
    of MPEG-1 size ratios. *)

val gop_length : pattern -> int
val kind_at : pattern -> int -> kind
(** Frame kind at (global) frame index [i], repeating the pattern. *)

val weight_at : pattern -> int -> float
(** Size multiplier of frame [i]. *)

val mean_weight : pattern -> float
(** Average multiplier over one GOP; dividing by it normalizes the
    pattern to unit mean so the scene process controls the rate. *)

val kind_to_string : kind -> string
