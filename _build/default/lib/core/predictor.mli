(** Causal rate predictors for the online renegotiation heuristic.

    Section IV-B closes with "the prediction quality could be improved
    by taking into account the inherent frame structure of MPEG encoded
    video"; this module supplies the paper's AR(1) filter plus two such
    improvements, behind one interface so {!Online.run_custom} can swap
    them (bench experiment [predictors]).

    A predictor observes the per-slot arrival rate after each slot and
    forecasts the sustained rate to reserve next. *)

type t = {
  observe : float -> unit;  (** feed the rate (b/s) of the slot just ended *)
  forecast : unit -> float;  (** sustained-rate estimate for upcoming slots *)
}

val ar1 : eta:float -> initial:float -> t
(** The paper's filter: [e <- eta e + (1 - eta) x]; forecast [e].
    Requires [0 <= eta < 1]. *)

val gop_aware : gop_length:int -> eta:float -> initial:float -> t
(** One AR(1) estimate per GOP phase (frame position modulo
    [gop_length]); the forecast is the phase-average — the sustained
    rate over the next GOP.  Separating phases stops the I-frame spikes
    from whipsawing the estimate.  Requires [gop_length >= 1]. *)

val nlms : taps:int -> mu:float -> initial:float -> t
(** Normalized least-mean-squares linear predictor over the last [taps]
    observations, adapted at rate [mu]; the forecast is the one-step
    prediction.  Requires [taps >= 1] and [0 < mu <= 1]. *)

val constant : float -> t
(** Always forecasts the given rate (peak-rate reservation baseline). *)
