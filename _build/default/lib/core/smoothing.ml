module Trace = Rcbr_traffic.Trace

(* Cumulative arrivals: a.(t) = bits arrived during slots 0..t-1, so
   a.(0) = 0 and a.(n) = total. *)
let cumulative trace =
  let n = Trace.length trace in
  let a = Array.make (n + 1) 0. in
  for t = 0 to n - 1 do
    a.(t + 1) <- a.(t) +. Trace.frame trace t
  done;
  a

let schedule ~buffer trace =
  assert (buffer >= 0.);
  let n = Trace.length trace in
  let a = cumulative trace in
  let lower t = if t = n then a.(n) else Float.max 0. (a.(t) -. buffer) in
  let upper t = a.(t) in
  (* Taut string through the band [lower, upper], anchored at (0, 0) and
     pinned to (n, A(n)).  Each outer iteration scans forward narrowing
     the feasible slope window until it closes; the binding envelope
     point becomes the next bend. *)
  let segments = ref [] in
  let emit i j slope =
    assert (j > i);
    segments := (i, slope) :: !segments
  in
  let anchor_t = ref 0 and anchor_s = ref 0. in
  while !anchor_t < n do
    let i = !anchor_t and s = !anchor_s in
    let slope_min = ref neg_infinity and slope_max = ref infinity in
    let j_min = ref i and j_max = ref i in
    let j = ref (i + 1) in
    let finished = ref false in
    while not !finished do
      let dt = float_of_int (!j - i) in
      let lo = (lower !j -. s) /. dt in
      let hi = (upper !j -. s) /. dt in
      if lo > !slope_max then begin
        (* The string must hug the upper envelope: bend at its binding
           point. *)
        emit i !j_max !slope_max;
        anchor_t := !j_max;
        anchor_s := s +. (!slope_max *. float_of_int (!j_max - i));
        finished := true
      end
      else if hi < !slope_min then begin
        emit i !j_min !slope_min;
        anchor_t := !j_min;
        anchor_s := s +. (!slope_min *. float_of_int (!j_min - i));
        finished := true
      end
      else begin
        if lo > !slope_min then begin
          slope_min := lo;
          j_min := !j
        end;
        if hi < !slope_max then begin
          slope_max := hi;
          j_max := !j
        end;
        if !j = n then begin
          (* The end is pinned (lower n = upper n), so the final exact
             slope is inside the window; ride it home. *)
          let slope = (a.(n) -. s) /. float_of_int (n - i) in
          emit i n slope;
          anchor_t := n;
          anchor_s := a.(n);
          finished := true
        end
        else incr j
      end
    done
  done;
  let fps = Trace.fps trace in
  let segs =
    List.rev_map
      (fun (start_slot, slope) ->
        { Schedule.start_slot; rate = Float.max 0. (slope *. fps) })
      !segments
  in
  Schedule.create ~fps ~n_slots:n segs

let minimal_peak_rate ~buffer trace =
  (* Quadratic scan; intended for validation on short traces.  For long
     traces the taut-string schedule's peak rate equals this bound. *)
  assert (buffer >= 0.);
  let n = Trace.length trace in
  let a = cumulative trace in
  let best = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n do
      (* S(j) >= A(j) - B in general, but the delivery pin makes the
         final constraint S(n) = A(n) with no buffer credit. *)
      let slack = if j = n then 0. else buffer in
      let need = (a.(j) -. a.(i) -. slack) /. float_of_int (j - i) in
      if need > !best then best := need
    done
  done;
  !best *. Trace.fps trace
