(** Renegotiation schedules: piecewise-constant service-rate functions.

    An RCBR connection's life is a sequence of (renegotiation instant,
    new drain rate) pairs; this module is the common currency between the
    offline optimizer, the online heuristic, the admission controllers
    and the call-level simulator. *)

type segment = { start_slot : int; rate : float }
(** Rate in b/s, in force from [start_slot] until the next segment. *)

type t

val create : fps:float -> n_slots:int -> segment list -> t
(** Segments must start at slot 0, be strictly increasing in
    [start_slot], lie inside [0, n_slots), and carry nonnegative rates.
    Consecutive segments with equal rates are merged.  Raises
    [Invalid_argument] otherwise. *)

val constant : fps:float -> n_slots:int -> float -> t
(** Single-segment (plain CBR) schedule. *)

val fps : t -> float
val n_slots : t -> int
val segments : t -> segment array
val duration : t -> float

val rate_at : t -> int -> float
(** Rate in force during the given slot (O(log segments)). *)

val to_rates : t -> float array
(** Per-slot rate array, length [n_slots]. *)

val n_renegotiations : t -> int
(** Number of rate {e changes} (the initial allocation is free). *)

val mean_renegotiation_interval : t -> float
(** Seconds between renegotiations: duration / (changes + 1). *)

val mean_rate : t -> float
(** Time-average service rate, b/s. *)

val peak_rate : t -> float

val cost : t -> reneg_cost:float -> bandwidth_cost:float -> float
(** Formula (1): [reneg_cost * n_renegotiations
    + bandwidth_cost * total_service_bits]. *)

val bandwidth_efficiency : t -> trace:Rcbr_traffic.Trace.t -> float
(** Paper's definition: trace mean rate / schedule mean rate.  In [0,1]
    for any feasible (no-loss) schedule. *)

val marginal : t -> Rcbr_effbw.Chernoff.marginal
(** Time-fraction-weighted distribution of the rate levels — the
    traffic descriptor used by admission control (Section VI). *)

val shift : t -> slots:int -> t
(** Circular shift of the rate function, for randomly phased calls. *)

val simulate_buffer :
  t -> trace:Rcbr_traffic.Trace.t -> capacity:float -> Rcbr_queue.Fluid.result
(** Feed the trace through a buffer drained according to this schedule;
    trace and schedule must agree on fps and length. *)

val pp : Format.formatter -> t -> unit
