module Trace = Rcbr_traffic.Trace

type constraint_ = Buffer_bound of float | Delay_bound of int

type params = {
  grid : Rate_grid.t;
  reneg_cost : float;
  bandwidth_cost : float;
  constraint_ : constraint_;
}

type stats = { slots : int; expanded : int; max_frontier : int }

exception Infeasible of int

(* Backpointer chain recording only the renegotiation instants, so the
   per-slot frontiers stay small and path reconstruction is O(#changes). *)
type change = { at : int; level : int; prev : change option }

type node = {
  buffer : float;
  weight : float;
  level : int;
  changes : change option;
}

(* Frontier: array of nodes with strictly increasing buffer and strictly
   decreasing weight. *)

let pareto_of_sorted candidates =
  (* [candidates] sorted by buffer ascending; keep minima of weight. *)
  let out = ref [] in
  let min_w = ref infinity in
  List.iter
    (fun n ->
      if n.weight < !min_w then begin
        (match !out with
        | top :: rest when top.buffer = n.buffer -> out := n :: rest
        | _ -> out := n :: !out);
        min_w := n.weight
      end)
    candidates;
  Array.of_list (List.rev !out)

let merge_sorted a b =
  (* Merge two buffer-ascending node lists. *)
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
        if x.buffer <= y.buffer then go xs b (x :: acc) else go a ys (y :: acc)
  in
  go a b []

let bound_function constraint_ trace =
  match constraint_ with
  | Buffer_bound b ->
      assert (b >= 0.);
      fun _ -> b
  | Delay_bound d ->
      assert (d >= 0);
      (* Formula (5) as a time-varying backlog bound: data entering at
         slot s leaves by the end of slot s+d iff
         Q(t) <= A(t) - A(t-d), the arrivals of the last d slots. *)
      let n = Trace.length trace in
      let prefix = Array.make (n + 1) 0. in
      for i = 0 to n - 1 do
        prefix.(i + 1) <- prefix.(i) +. Trace.frame trace i
      done;
      fun t -> prefix.(t + 1) -. prefix.(max 0 (t - d + 1))

let solve_with_stats ?(lemma_pruning = true) ?buffer_quantum ?frontier_cap
    params trace =
  (match buffer_quantum with Some q -> assert (q > 0.) | None -> ());
  (match frontier_cap with Some c -> assert (c >= 2) | None -> ());
  let grid = params.grid in
  let m = Rate_grid.levels grid in
  let tau = Trace.slot_duration trace in
  let n = Trace.length trace in
  let k_cost = params.reneg_cost in
  assert (k_cost >= 0.);
  assert (params.bandwidth_cost > 0.);
  let drain = Array.init m (fun i -> Rate_grid.rate grid i *. tau) in
  let slot_cost = Array.map (fun d -> params.bandwidth_cost *. d) drain in
  let bound = bound_function params.constraint_ trace in
  let expanded = ref 0 and max_frontier = ref 0 in
  (* Initial frontiers at slot 0: the first allocation is part of call
     setup and costs no renegotiation. *)
  let init_frontier lvl =
    let a0 = Trace.frame trace 0 in
    let b = Float.max 0. (a0 -. drain.(lvl)) in
    if b > bound 0 then [||]
    else
      [|
        {
          buffer = b;
          weight = slot_cost.(lvl);
          level = lvl;
          changes = Some { at = 0; level = lvl; prev = None };
        };
      |]
  in
  let frontiers = ref (Array.init m init_frontier) in
  let check_feasible t fs =
    if Array.for_all (fun f -> Array.length f = 0) fs then raise (Infeasible t)
  in
  check_feasible 0 !frontiers;
  let global_frontier fs =
    (* Pareto over the union of all level frontiers (each sorted). *)
    let merged =
      Array.fold_left
        (fun acc f -> merge_sorted acc (Array.to_list f))
        [] fs
    in
    pareto_of_sorted merged
  in
  for t = 1 to n - 1 do
    let a = Trace.frame trace t in
    let b_max = bound t in
    let g = global_frontier !frontiers in
    let shift_map target_lvl extra source =
      (* Map a frontier through slot t at the target level, clamping the
         buffer at zero and discarding constraint violations.  The input
         order (buffer ascending, weight descending) is preserved. *)
      let d = drain.(target_lvl) in
      let cost = slot_cost.(target_lvl) +. extra in
      let out = ref [] in
      Array.iter
        (fun node ->
          let b = Float.max 0. (node.buffer +. a -. d) in
          if b <= b_max then begin
            (* Optional approximation: snap the occupancy up to a grid
               point.  Rounding up keeps every kept path feasible while
               collapsing near-identical nodes, bounding the frontier. *)
            let b =
              match buffer_quantum with
              | None -> b
              | Some q -> Float.min b_max (q *. Float.ceil (b /. q))
            in
            incr expanded;
            let changes =
              if node.level = target_lvl && extra = 0. then node.changes
              else Some { at = t; level = target_lvl; prev = node.changes }
            in
            let n' =
              {
                buffer = b;
                weight = node.weight +. cost;
                level = target_lvl;
                changes;
              }
            in
            (* Clamped entries share buffer 0; keep the cheapest, which
               comes later in the scan (weight is descending). *)
            match !out with
            | top :: rest when top.buffer = b -> out := n' :: rest
            | _ -> out := n' :: !out
          end)
        source;
      List.rev !out
    in
    let next =
      Array.init m (fun lvl ->
          let same = shift_map lvl 0. !frontiers.(lvl) in
          let via_change = shift_map lvl k_cost g in
          pareto_of_sorted (merge_sorted same via_change))
    in
    (* Lemma 1 cross-level pruning: drop a node when some node (any
       level) has no larger buffer and weight + K not larger.  Scanning
       the global frontier gives, for each buffer, the best weight
       available at or below it. *)
    let g' = global_frontier next in
    let prune_level _lvl f =
      if (not lemma_pruning) || Array.length f = 0 || k_cost = 0. then f
        (* With K = 0 the rule degenerates to plain Pareto dominance,
           already enforced within [next]. *)
      else begin
        let keep = ref [] in
        let gi = ref 0 in
        let best = ref infinity in
        Array.iter
          (fun node ->
            while
              !gi < Array.length g' && g'.(!gi).buffer <= node.buffer
            do
              let cand = g'.(!gi) in
              (* A node never beats itself: +K makes the comparison
                 strict for same-level same-state entries. *)
              if cand.weight < !best then best := cand.weight;
              incr gi
            done;
            if not (!best +. k_cost <= node.weight) then
              keep := node :: !keep)
          f;
        Array.of_list (List.rev !keep)
      end
    in
    let next = Array.mapi prune_level next in
    (* Optional approximation: subsample oversized frontiers.  Retained
       nodes keep exact buffers and costs (feasibility is never
       compromised); only alternative paths are dropped, so the error
       does not compound across slots.  The lowest-buffer node (most
       future headroom) and lowest-weight node (cheapest so far) always
       survive. *)
    let next =
      match frontier_cap with
      | None -> next
      | Some cap ->
          Array.map
            (fun f ->
              let len = Array.length f in
              if len <= cap then f
              else
                Array.init cap (fun i ->
                    f.(i * (len - 1) / (cap - 1))))
            next
    in
    check_feasible t next;
    let total = Array.fold_left (fun acc f -> acc + Array.length f) 0 next in
    if total > !max_frontier then max_frontier := total;
    frontiers := next
  done;
  (* Best full path: minimum weight over every surviving node. *)
  let best = ref None in
  Array.iter
    (Array.iter (fun node ->
         match !best with
         | Some b when b.weight <= node.weight -> ()
         | _ -> best := Some node))
    !frontiers;
  let final = match !best with Some b -> b | None -> raise (Infeasible n) in
  let rec collect acc = function
    | None -> acc
    | Some { at; level; prev } ->
        collect
          ({ Schedule.start_slot = at; rate = Rate_grid.rate grid level } :: acc)
          prev
  in
  let segments = collect [] final.changes in
  let schedule = Schedule.create ~fps:(Trace.fps trace) ~n_slots:n segments in
  (schedule, { slots = n; expanded = !expanded; max_frontier = !max_frontier })

let solve params trace = fst (solve_with_stats params trace)

let default_params ?(levels = 20) ?(buffer = 300_000.) ~cost_ratio trace =
  (* The grid must be able to drain the worst burst within the buffer
     bound; the zero-loss CBR rate for this buffer is exactly that. *)
  let needed =
    Rcbr_queue.Sigma_rho.min_rate ~trace ~buffer ~target_loss:0. ()
  in
  let base = Rate_grid.uniform ~lo:48_000. ~hi:2_400_000. ~levels in
  let grid = Rate_grid.covering base ~peak:(needed *. 1.0001) in
  {
    grid;
    reneg_cost = cost_ratio;
    bandwidth_cost = 1.;
    constraint_ = Buffer_bound buffer;
  }
