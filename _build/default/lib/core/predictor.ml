type t = { observe : float -> unit; forecast : unit -> float }

let ar1 ~eta ~initial =
  assert (eta >= 0. && eta < 1.);
  let est = ref initial in
  {
    observe = (fun x -> est := (eta *. !est) +. ((1. -. eta) *. x));
    forecast = (fun () -> !est);
  }

let gop_aware ~gop_length ~eta ~initial =
  assert (gop_length >= 1);
  assert (eta >= 0. && eta < 1.);
  let per_phase = Array.make gop_length initial in
  let phase = ref 0 in
  let observe x =
    per_phase.(!phase) <- (eta *. per_phase.(!phase)) +. ((1. -. eta) *. x);
    phase := (!phase + 1) mod gop_length
  in
  let forecast () =
    Array.fold_left ( +. ) 0. per_phase /. float_of_int gop_length
  in
  { observe; forecast }

let nlms ~taps ~mu ~initial =
  assert (taps >= 1);
  assert (mu > 0. && mu <= 1.);
  (* History of the last [taps] observations (most recent first) and the
     adaptive weights, initialized to a plain average. *)
  let history = Array.make taps initial in
  let weights = Array.make taps (1. /. float_of_int taps) in
  let dot () =
    let acc = ref 0. in
    Array.iteri (fun i w -> acc := !acc +. (w *. history.(i))) weights;
    !acc
  in
  let observe x =
    (* Adapt against the prediction the current history produced. *)
    let predicted = dot () in
    let err = x -. predicted in
    let norm =
      Array.fold_left (fun a h -> a +. (h *. h)) 1e-9 history
    in
    Array.iteri
      (fun i h -> weights.(i) <- weights.(i) +. (mu *. err *. h /. norm))
      history;
    (* Shift the history. *)
    for i = taps - 1 downto 1 do
      history.(i) <- history.(i - 1)
    done;
    history.(0) <- x
  in
  let forecast () = Float.max 0. (dot ()) in
  { observe; forecast }

let constant rate =
  { observe = (fun _ -> ()); forecast = (fun () -> rate) }
