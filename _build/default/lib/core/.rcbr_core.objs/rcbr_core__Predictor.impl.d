lib/core/predictor.ml: Array Float
