lib/core/optimal.ml: Array Float List Rate_grid Rcbr_queue Rcbr_traffic Schedule
