lib/core/online.mli: Predictor Rcbr_traffic Schedule
