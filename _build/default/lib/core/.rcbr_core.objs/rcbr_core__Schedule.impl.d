lib/core/schedule.ml: Array Format Hashtbl List Rcbr_queue Rcbr_traffic
