lib/core/online.ml: Array Float List Predictor Rcbr_traffic Schedule
