lib/core/adaptation.mli: Rcbr_traffic Rcbr_util Schedule
