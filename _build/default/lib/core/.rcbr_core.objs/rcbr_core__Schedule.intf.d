lib/core/schedule.mli: Format Rcbr_effbw Rcbr_queue Rcbr_traffic
