lib/core/smoothing.ml: Array Float List Rcbr_traffic Schedule
