lib/core/rate_grid.ml: Array
