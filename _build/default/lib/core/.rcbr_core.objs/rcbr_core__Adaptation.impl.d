lib/core/adaptation.ml: Array Float Rcbr_traffic Rcbr_util Schedule
