lib/core/predictor.mli:
