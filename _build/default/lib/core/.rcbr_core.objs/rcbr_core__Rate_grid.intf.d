lib/core/rate_grid.mli:
