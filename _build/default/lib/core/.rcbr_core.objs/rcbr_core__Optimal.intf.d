lib/core/optimal.mli: Rate_grid Rcbr_traffic Schedule
