lib/core/smoothing.mli: Rcbr_traffic Schedule
