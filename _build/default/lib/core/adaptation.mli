(** Renegotiation-failure handling policies (Section III-A-1).

    "What happens if a renegotiation fails?"  The paper sketches a menu:
    keep what you have and settle for the remaining bandwidth, retry,
    reserve near the peak so failures become rare, or have the
    application {e adapt} — adaptive codecs, and even stored video, can
    be dynamically requantized to fit the granted rate.  This module
    simulates a source playing a desired schedule against a network that
    may deny increases, under each policy, and reports what the user
    actually experienced.

    The network is abstracted as a [grant] callback so the same driver
    runs against a probability stub (tests), a {!Rcbr_signal.Port}, or a
    whole multi-hop path. *)

type policy =
  | Settle  (** keep the old rate; excess arrivals overflow the buffer *)
  | Retry of int
      (** as [Settle], but re-issue the denied request every given
          number of slots until granted or superseded *)
  | Requantize of float
      (** scale the incoming frames down to fit the granted rate, never
          below the given quality floor (fraction of full quality);
          residual excess still overflows *)
  | Reserve_peak  (** one peak-rate reservation at setup, no renegotiation *)

type result = {
  bits_offered : float;  (** at full quality *)
  bits_lost : float;  (** overflowed the end-system buffer *)
  quality : float;
      (** delivered bits (after any requantization) over offered bits;
          1.0 when nothing was requantized or lost *)
  attempts : int;  (** renegotiation requests issued (setup excluded) *)
  failures : int;  (** requests denied *)
  max_backlog : float;
  mean_reserved : float;  (** time-average granted rate, b/s *)
}

val simulate :
  policy:policy ->
  grant:(slot:int -> old_rate:float -> new_rate:float -> bool) ->
  buffer:float ->
  trace:Rcbr_traffic.Trace.t ->
  Schedule.t ->
  result
(** Play [trace] through a [buffer]-bit end-system buffer drained at the
    granted rate, issuing the schedule's renegotiations through [grant].
    Decreases always succeed (they only release bandwidth).  The trace
    and schedule must agree on fps and length. *)

val grant_with_probability : Rcbr_util.Rng.t -> float ->
  slot:int -> old_rate:float -> new_rate:float -> bool
(** Stub network: increases succeed independently with the given
    probability; decreases always succeed. *)
