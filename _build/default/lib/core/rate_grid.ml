type t = { rates : float array }

let uniform ~lo ~hi ~levels =
  assert (lo >= 0. && hi > lo && levels >= 2);
  let step = (hi -. lo) /. float_of_int (levels - 1) in
  { rates = Array.init levels (fun i -> lo +. (float_of_int i *. step)) }

let of_rates rates =
  assert (Array.length rates > 0);
  let prev = ref neg_infinity in
  Array.iter
    (fun r ->
      assert (r >= 0. && r > !prev);
      prev := r)
    rates;
  { rates = Array.copy rates }

let paper_default = uniform ~lo:48_000. ~hi:2_400_000. ~levels:20

let covering t ~peak =
  let top = t.rates.(Array.length t.rates - 1) in
  if top >= peak then t
  else { rates = Array.append t.rates [| peak |] }

let levels t = Array.length t.rates
let rates t = Array.copy t.rates
let rate t i = t.rates.(i)
let top t = t.rates.(Array.length t.rates - 1)

let index_up t x =
  let n = Array.length t.rates in
  (* First level >= x; binary search. *)
  if x <= t.rates.(0) then 0
  else if x > t.rates.(n - 1) then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.rates.(mid) >= x then hi := mid else lo := mid
    done;
    !hi
  end

let quantize_up t x = t.rates.(index_up t x)
