(** Discrete bandwidth levels.

    Renegotiation requests are quantized to a finite set of rates: the
    optimal algorithm searches over the set (the paper uses ~20 levels
    uniform between 48 kb/s and 2.4 Mb/s) and the online heuristic
    rounds its prediction up to a multiple of the granularity Delta
    (formula (7)). *)

type t

val uniform : lo:float -> hi:float -> levels:int -> t
(** [levels] evenly spaced rates from [lo] to [hi] inclusive.  Requires
    [0 <= lo < hi] and [levels >= 2]. *)

val of_rates : float array -> t
(** Arbitrary ascending positive rates. *)

val paper_default : t
(** 20 levels uniform within 48 kb/s and 2.4 Mb/s (Section IV-A). *)

val covering : t -> peak:float -> t
(** Ensure the grid can serve a workload with the given peak demand:
    appends [peak] as a top level if the current top is below it. *)

val levels : t -> int
val rates : t -> float array
val rate : t -> int -> float
val top : t -> float

val quantize_up : t -> float -> float
(** Smallest level [>= x] (the top level if [x] exceeds it). *)

val index_up : t -> float -> int
(** Index of {!quantize_up}. *)
