(** Optimal smoothing baseline (related work, Sections VII-VIII).

    The main alternative to renegotiation for stored video is {e optimal
    smoothing} (Salehi, Kurose, Towsley et al.): given the whole trace
    and a buffer of [B] bits, transmit along the {e taut string} threaded
    through the feasibility band

    {v A(t) - B <= S(t) <= A(t) v}

    where [A] is cumulative arrivals and [S] cumulative service.  The
    taut string simultaneously minimizes the peak rate and the rate
    variance over all feasible schedules; its bends are the rate
    changes.

    Unlike {!Optimal}, smoothing ignores the cost of a rate change —
    comparing the two quantifies what the paper's renegotiation pricing
    buys (bench experiment [ablation]). *)

val schedule :
  buffer:float -> Rcbr_traffic.Trace.t -> Schedule.t
(** The taut-string schedule.  It is feasible for the given buffer: the
    backlog never exceeds [buffer] and all bits are delivered by the end
    of the trace.  Requires [buffer >= 0] (with 0 the schedule follows
    the arrivals exactly). *)

val minimal_peak_rate : buffer:float -> Rcbr_traffic.Trace.t -> float
(** The smallest peak rate any feasible schedule can have:
    [max over windows (A(j) - A(i) - B) / (j - i)] — with no buffer
    credit for windows ending at the delivery deadline — in b/s.  The
    taut-string schedule attains it.  Quadratic in the trace length;
    intended for validation on short traces. *)
