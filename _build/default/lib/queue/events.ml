module Heap = Rcbr_util.Heap

type t = { mutable clock : float; queue : (t -> unit) Heap.t }

let create () = { clock = 0.; queue = Heap.create () }
let now t = t.clock

let schedule t ~at f =
  assert (at >= t.clock);
  Heap.push t.queue ~priority:at f

let schedule_after t ~delay f =
  assert (delay >= 0.);
  schedule t ~at:(t.clock +. delay) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      f t;
      true

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    match Heap.peek t.queue with
    | None -> continue_ := false
    | Some (at, _) ->
        if at > until then continue_ := false
        else ignore (step t)
  done

let pending t = Heap.length t.queue
