lib/queue/events.mli:
