lib/queue/sigma_rho.ml: Array Fluid Rcbr_traffic Rcbr_util
