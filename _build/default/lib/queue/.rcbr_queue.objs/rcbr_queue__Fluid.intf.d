lib/queue/fluid.mli: Rcbr_traffic
