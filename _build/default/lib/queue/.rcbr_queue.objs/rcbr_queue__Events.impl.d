lib/queue/events.ml: Rcbr_util
