lib/queue/sigma_rho.mli: Rcbr_traffic
