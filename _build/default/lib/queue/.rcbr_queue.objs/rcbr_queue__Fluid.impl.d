lib/queue/fluid.ml: Array Rcbr_traffic
