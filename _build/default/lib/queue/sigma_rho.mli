(** (sigma, rho) curves: minimum drain rate as a function of buffer size
    (Fig. 5 of the paper).

    For a trace and a target bit-loss fraction, [min_rate] finds the
    smallest constant drain rate such that a buffer of the given size
    loses at most the target fraction of bits; [curve] sweeps buffer
    sizes.  A binary search over rate is exact here because loss is
    monotone nonincreasing in the drain rate.

    Bits still sitting in the buffer when the trace ends count as lost
    (they were never delivered); without this, buffers comparable to
    the whole session would let the "minimum rate" fall below the
    source's mean. *)

val min_rate :
  ?tol:float ->
  trace:Rcbr_traffic.Trace.t ->
  buffer:float ->
  target_loss:float ->
  unit ->
  float
(** Smallest rate (b/s) with [loss_fraction <= target_loss].  [tol] is
    the relative rate tolerance of the search (default 1e-4).  The search
    bracket is [0, peak frame rate]. *)

val min_buffer :
  ?tol:float ->
  trace:Rcbr_traffic.Trace.t ->
  rate:float ->
  target_loss:float ->
  unit ->
  float
(** Dual: smallest buffer (bits) achieving the target loss at a fixed
    drain rate.  With [target_loss = 0.] this equals the maximum backlog
    of the infinite buffer (cf {!Rcbr_traffic.Token_bucket.min_depth_for_trace}). *)

val curve :
  ?tol:float ->
  trace:Rcbr_traffic.Trace.t ->
  buffers:float array ->
  target_loss:float ->
  unit ->
  (float * float) array
(** [(buffer, min_rate)] pairs for each requested buffer size. *)
