(** Minimal discrete-event simulation engine.

    Drives the call-level experiments (Poisson arrivals, renegotiation
    events, departures).  Events at equal times fire in scheduling order,
    so simulations are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time; 0 before any event has fired. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** Requires [at >= now t]. *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Requires [delay >= 0]. *)

val step : t -> bool
(** Fire the earliest pending event.  False when none are pending. *)

val run : ?until:float -> t -> unit
(** Fire events until the queue is empty or the next event is past
    [until] (events at exactly [until] still fire). *)

val pending : t -> int
