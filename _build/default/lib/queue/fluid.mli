(** Slotted fluid queues with finite buffers.

    The modeling abstraction of Section II: traffic is queued in a buffer
    of [capacity] bits drained at a (possibly time-varying) rate; data
    that does not fit is lost.  Within a slot, arrivals and service net
    out before the buffer bound is applied (the paper's formula (3)), so
    a backlog equal to the capacity is legal at every slot boundary. *)

type t

type result = {
  bits_offered : float;
  bits_lost : float;
  max_backlog : float;  (** peak buffer occupancy, bits *)
  final_backlog : float;
}

val loss_fraction : result -> float
(** [bits_lost / bits_offered]; 0 when nothing was offered. *)

val create : capacity:float -> t
(** Empty queue.  [capacity] in bits; [infinity] is allowed. *)

val capacity : t -> float
val backlog : t -> float

val offer : t -> float -> float
(** [offer q bits] enqueues up to capacity, returning the bits {e lost}. *)

val drain : t -> float -> unit
(** [drain q bits] removes up to [bits] from the buffer. *)

val reset : t -> unit

val run_constant : capacity:float -> rate:float -> Rcbr_traffic.Trace.t -> result
(** Feed a whole trace through a buffer drained at constant [rate]
    (b/s). *)

val run_schedule :
  capacity:float ->
  rate_per_slot:(int -> float) ->
  Rcbr_traffic.Trace.t ->
  result
(** Same with a per-slot drain rate (b/s), e.g. an RCBR schedule. *)

val run_aggregate :
  capacity:float -> rate:float -> fps:float -> float array array -> result
(** Multiplex several per-slot arrival arrays (bits per slot, equal
    lengths) into one shared buffer drained at [rate] b/s — scenario (b)
    of Fig. 3. *)
