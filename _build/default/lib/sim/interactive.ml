module Schedule = Rcbr_core.Schedule
module Rng = Rcbr_util.Rng

type params = {
  pause_probability : float;
  mean_pause_s : float;
  pause_rate : float;
  jump_probability : float;
  scan_rate_multiplier : float;
  mean_scan_s : float;
  max_stretch : float;
}

let default_params =
  {
    pause_probability = 0.02;
    mean_pause_s = 30.;
    pause_rate = 48_000.;
    jump_probability = 0.01;
    scan_rate_multiplier = 2.;
    mean_scan_s = 5.;
    max_stretch = 1.5;
  }

let validate p =
  if p.pause_probability < 0. || p.pause_probability > 1. then
    invalid_arg "Interactive: pause_probability";
  if p.jump_probability < 0. || p.jump_probability > 1. then
    invalid_arg "Interactive: jump_probability";
  if p.pause_probability +. p.jump_probability > 1. then
    invalid_arg "Interactive: probabilities exceed 1";
  if p.mean_pause_s <= 0. then invalid_arg "Interactive: mean_pause_s";
  if p.scan_rate_multiplier < 1. then
    invalid_arg "Interactive: scan_rate_multiplier";
  if p.mean_scan_s <= 0. then invalid_arg "Interactive: mean_scan_s";
  if p.pause_rate < 0. then invalid_arg "Interactive: pause_rate";
  if p.max_stretch <= 0. then invalid_arg "Interactive: max_stretch"

let pieces rng p schedule =
  validate p;
  let n_slots = Schedule.n_slots schedule in
  let budget = p.max_stretch *. Schedule.duration schedule in
  let base = Mbac.shifted_pieces schedule ~shift:(Rng.int rng n_slots) in
  let m = Array.length base in
  let out = ref [] in
  let spent = ref 0. in
  let push duration rate =
    let duration = Float.min duration (budget -. !spent) in
    if duration > 0. then begin
      out := (duration, rate) :: !out;
      spent := !spent +. duration
    end
  in
  let idx = ref 0 in
  while !idx < m && !spent < budget do
    let duration, rate = base.(!idx) in
    push duration rate;
    incr idx;
    if !idx < m && !spent < budget then begin
      let u = Rng.float rng in
      if u < p.pause_probability then
        push (Rng.exponential rng (1. /. p.mean_pause_s)) p.pause_rate
      else if u < p.pause_probability +. p.jump_probability then begin
        (* Fast-forward / rewind: scan at an elevated rate, then resume
           at a random piece; the session still ends when the time
           budget runs out. *)
        let scan_rate = p.scan_rate_multiplier *. rate in
        push (Rng.exponential rng (1. /. p.mean_scan_s)) scan_rate;
        idx := Rng.int rng m
      end
    end
  done;
  match !out with
  | [] -> [| (1. /. Schedule.fps schedule, Schedule.rate_at schedule 0) |]
  | l -> Array.of_list (List.rev l)
