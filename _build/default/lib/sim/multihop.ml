module Schedule = Rcbr_core.Schedule
module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng

type config = {
  schedule : Rcbr_core.Schedule.t;
  hops : int;
  capacity_per_hop : float;
  transit_calls : int;
  local_calls_per_hop : int;
  horizon : float;
  seed : int;
}

type balanced_config = {
  base : config;
  routes : int;  (** parallel alternative paths, each [hops] long *)
  balance : bool;  (** least-loaded route choice vs uniform random *)
}

type metrics = {
  transit_attempts : int;
  transit_denials : int;
  local_attempts : int;
  local_denials : int;
  mean_hop_utilization : float;
}

let denial_fraction m =
  if m.transit_attempts = 0 then 0.
  else float_of_int m.transit_denials /. float_of_int m.transit_attempts

(* A call's route is a list of (route index, hop index) links. *)
type call = { links : (int * int) list; mutable rate : float; transit : bool }

let run_balanced bc =
  let c = bc.base in
  assert (c.hops >= 1 && c.capacity_per_hop > 0. && c.horizon > 0.);
  assert (c.transit_calls >= 1 && c.local_calls_per_hop >= 0);
  assert (bc.routes >= 1);
  let rng = Rng.create c.seed in
  let engine = Events.create () in
  let demand = Array.init bc.routes (fun _ -> Array.make c.hops 0.) in
  let util_integral = ref 0. and last = ref 0. in
  let advance now =
    let dt = now -. !last in
    if dt > 0. then begin
      let acc = ref 0. in
      Array.iter
        (Array.iter (fun d -> acc := !acc +. Float.min 1. (d /. c.capacity_per_hop)))
        demand;
      util_integral :=
        !util_integral +. (!acc /. float_of_int (bc.routes * c.hops) *. dt);
      last := now
    end
  in
  let transit_attempts = ref 0 and transit_denials = ref 0 in
  let local_attempts = ref 0 and local_denials = ref 0 in
  let n_slots = Schedule.n_slots c.schedule in
  let fits call new_rate =
    let delta = new_rate -. call.rate in
    List.for_all
      (fun (r, h) -> demand.(r).(h) +. delta <= c.capacity_per_hop +. 1e-9)
      call.links
  in
  let apply call new_rate =
    let delta = new_rate -. call.rate in
    List.iter (fun (r, h) -> demand.(r).(h) <- demand.(r).(h) +. delta) call.links;
    call.rate <- new_rate
  in
  (* Each call loops over its shifted pieces for the whole horizon.
     Demand is the *desired* rate (settle semantics): a denied increase
     is counted and the demand still rises — the overload shows up in
     the utilization cap. *)
  let rec piece_event call pieces idx engine =
    let now = Events.now engine in
    if now <= c.horizon then begin
      advance now;
      let idx = if idx >= Array.length pieces then 0 else idx in
      let duration, rate = pieces.(idx) in
      if rate > call.rate then begin
        if call.transit then incr transit_attempts else incr local_attempts;
        if not (fits call rate) then
          if call.transit then incr transit_denials else incr local_denials
      end;
      apply call rate;
      Events.schedule_after engine ~delay:duration
        (piece_event call pieces (idx + 1))
    end
  in
  let start_call ~links ~transit =
    let shift = Rng.int rng n_slots in
    let pieces = Mbac.shifted_pieces c.schedule ~shift in
    let call = { links; rate = 0.; transit } in
    (* Reserve the setup rate immediately so later placement decisions
       (the load balancer) see it; the first piece event is then a
       no-op rate-wise. *)
    apply call (snd pieces.(0));
    (* Desynchronize call starts within the first pieces. *)
    let offset = Rng.float rng in
    Events.schedule engine ~at:offset (piece_event call pieces 0)
  in
  let route_load r = Array.fold_left ( +. ) 0. demand.(r) in
  let pick_route () =
    if not bc.balance then Rng.int rng bc.routes
    else begin
      (* Call-level load balancing: the least-loaded alternative. *)
      let best = ref 0 in
      for r = 1 to bc.routes - 1 do
        if route_load r < route_load !best then best := r
      done;
      !best
    end
  in
  (* Interleave transit starts with tiny local warm-up so the balancer
     sees evolving loads; all calls start within the first second. *)
  for _ = 1 to c.transit_calls do
    let r = pick_route () in
    let links = List.init c.hops (fun h -> (r, h)) in
    start_call ~links ~transit:true
  done;
  for r = 0 to bc.routes - 1 do
    for h = 0 to c.hops - 1 do
      for _ = 1 to c.local_calls_per_hop do
        start_call ~links:[ (r, h) ] ~transit:false
      done
    done
  done;
  Events.run ~until:c.horizon engine;
  advance c.horizon;
  {
    transit_attempts = !transit_attempts;
    transit_denials = !transit_denials;
    local_attempts = !local_attempts;
    local_denials = !local_denials;
    mean_hop_utilization = !util_integral /. c.horizon;
  }

let run c = run_balanced { base = c; routes = 1; balance = false }
