lib/sim/multihop.mli: Rcbr_core
