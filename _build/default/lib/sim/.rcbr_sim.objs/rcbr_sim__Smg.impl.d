lib/sim/smg.ml: Array List Rcbr_core Rcbr_queue Rcbr_traffic Rcbr_util
