lib/sim/mbac.ml: Array Float List Rcbr_admission Rcbr_core Rcbr_queue Rcbr_util
