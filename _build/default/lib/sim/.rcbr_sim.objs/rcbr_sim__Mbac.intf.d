lib/sim/mbac.mli: Rcbr_admission Rcbr_core Rcbr_util
