lib/sim/smg.mli: Rcbr_core Rcbr_traffic
