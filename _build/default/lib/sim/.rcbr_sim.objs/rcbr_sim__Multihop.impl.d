lib/sim/multihop.ml: Array Float List Mbac Rcbr_core Rcbr_fault Rcbr_queue Rcbr_util
