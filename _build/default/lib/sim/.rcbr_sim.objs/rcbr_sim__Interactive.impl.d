lib/sim/interactive.ml: Array Float List Mbac Rcbr_core Rcbr_util
