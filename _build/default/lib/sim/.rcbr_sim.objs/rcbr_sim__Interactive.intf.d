lib/sim/interactive.mli: Rcbr_core Rcbr_util
