(** User interactivity over stored-video playback (Section VI).

    "Even for stored video, where the empirical bandwidth distribution
    could be computed in advance, user interactivity (fast forward,
    pause, etc.) reduces the accuracy of this descriptor."  This module
    perturbs a call's playback: pauses (the source drops to a trickle
    for a while) and jumps (fast-forward/rewind to a different point of
    the movie).  Feeding the perturbed calls to {!Mbac.run_with_pieces}
    quantifies how much a perfect a-priori descriptor degrades compared
    to the measurement-based schemes. *)

type params = {
  pause_probability : float;
      (** chance, at each renegotiation instant, that the user pauses *)
  mean_pause_s : float;  (** exponential pause duration *)
  pause_rate : float;  (** rate reserved while paused, b/s *)
  jump_probability : float;
      (** chance, at each renegotiation instant, of jumping to a
          uniformly random point of the movie *)
  scan_rate_multiplier : float;
      (** while fast-forwarding to the jump target the source scans at
          this multiple of its current rate — the demand spike that
          invalidates an a-priori descriptor *)
  mean_scan_s : float;  (** exponential scan duration before landing *)
  max_stretch : float;
      (** cap on the call's total duration as a multiple of the
          schedule duration (pauses stretch a session; the cap models
          viewers giving up) *)
}

val default_params : params
(** 2% pause (mean 30 s at 48 kb/s); 1% jump preceded by a 5 s scan at
    2x the current rate; stretch cap 1.5. *)

val validate : params -> unit

val pieces :
  Rcbr_util.Rng.t -> params -> Rcbr_core.Schedule.t -> (float * float) array
(** An interactive viewing session: a randomly phased copy of the
    schedule with pauses and jumps injected at renegotiation instants,
    truncated at [max_stretch] times the schedule duration.  Suitable as
    the [make_pieces] argument of {!Mbac.run_with_pieces}. *)
