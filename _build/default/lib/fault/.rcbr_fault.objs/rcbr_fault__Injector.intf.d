lib/fault/injector.mli: Format Plan
