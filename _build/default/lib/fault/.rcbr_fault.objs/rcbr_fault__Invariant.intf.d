lib/fault/invariant.mli: Format
