lib/fault/plan.mli:
