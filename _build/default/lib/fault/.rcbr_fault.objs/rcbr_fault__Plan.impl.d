lib/fault/plan.ml: Array List Printf
