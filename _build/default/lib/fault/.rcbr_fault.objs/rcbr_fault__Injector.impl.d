lib/fault/injector.ml: Array Format List Plan Rcbr_util
