lib/fault/invariant.ml: Array Float Format List Printf
