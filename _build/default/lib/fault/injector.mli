(** Runtime fault decisions for one connection's signalling cells.

    An injector owns one PRNG stream per hop (split from the plan's
    seed) plus a source-side stream for retransmission jitter, and
    keeps running totals of every fault it injected.  Decisions are
    consumed one per cell traversal, so a run is a deterministic
    function of the plan alone.  Reordering is modelled as the cell
    falling one slot behind its successor: with at most one request in
    flight that is observationally a one-slot delay, and it is counted
    separately in the totals. *)

type fate =
  | Deliver  (** the cell crosses this link intact *)
  | Drop  (** the cell vanishes; everything downstream never sees it *)
  | Duplicate  (** a second copy arrives right behind the first *)
  | Delay of int  (** delivered, but this many slots late *)

type totals = {
  sent : int;  (** cell-link traversals attempted *)
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
}

val no_totals : totals

type t

val create : Plan.t -> t
(** Validates the plan.  Equal plans give equal fate streams. *)

val plan : t -> Plan.t
val hops : t -> int

val fate : t -> hop:int -> fate
(** Decide the fate of one cell crossing [hop].  Consumes randomness
    from that hop's stream only (and none at all on a reliable link, so
    adding a faulty hop never perturbs the others). *)

val jitter : t -> int -> int
(** [jitter t n] is uniform in [0, n] from the source-side stream, for
    desynchronizing retransmission timers.  [jitter t 0 = 0] without
    consuming randomness. *)

val down : t -> hop:int -> slot:int -> bool
(** Whether the plan has [hop]'s port crashed during [slot]. *)

val totals : t -> totals
(** Snapshot of the faults injected so far. *)

val pp_totals : Format.formatter -> totals -> unit
