type port_view = {
  index : int;
  capacity : float;
  reserved : float;
  vci_rates : (int * float) list option;
}

type violation = { port : int; what : string }

let check ?(eps = 1e-6) ?(check_capacity = true) views =
  let out = ref [] in
  let flag port what = out := { port; what } :: !out in
  Array.iter
    (fun v ->
      let tol = eps *. Float.max 1. v.capacity in
      if v.reserved < -.tol then
        flag v.index (Printf.sprintf "negative reservation %g" v.reserved);
      if check_capacity && v.reserved > v.capacity +. tol then
        flag v.index
          (Printf.sprintf "reserved %g exceeds capacity %g" v.reserved v.capacity);
      match v.vci_rates with
      | None -> ()
      | Some rates ->
          List.iter
            (fun (vci, r) ->
              if r < -.tol then
                flag v.index (Printf.sprintf "VCI %d at negative rate %g" vci r))
            rates;
          let sum = List.fold_left (fun acc (_, r) -> acc +. r) 0. rates in
          if Float.abs (sum -. v.reserved) > tol then
            flag v.index
              (Printf.sprintf "aggregate %g != sum of per-VCI rates %g" v.reserved
                 sum))
    views;
  List.rev !out

let total_reserved views =
  Array.fold_left (fun acc v -> acc +. v.reserved) 0. views

let pp_violation ppf v = Format.fprintf ppf "port %d: %s" v.port v.what
