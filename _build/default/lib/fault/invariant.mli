(** Conservation-of-bandwidth invariant checker.

    After {e any} interleaving of grants, denials, rollbacks, crashes,
    resyncs and teardowns, every switch port must satisfy:

    - its aggregate reservation is nonnegative,
    - it never exceeds the port capacity, and
    - (when per-VCI state is kept) it equals the sum of the per-VCI
      rates the port believes.

    The checker works on plain {!port_view} data so that any layer —
    real {!Rcbr_signal} ports, or the abstract demand bookkeeping of the
    call-level simulators — can be audited without a dependency cycle. *)

type port_view = {
  index : int;  (** caller's label for the port (hop number, link id) *)
  capacity : float;
  reserved : float;  (** aggregate reservation the port believes *)
  vci_rates : (int * float) list option;
      (** per-VCI beliefs, or [None] for stateless bookkeeping *)
}

type violation = { port : int; what : string }

val check : ?eps:float -> ?check_capacity:bool -> port_view array -> violation list
(** All violations found, in port order.  [eps] (default [1e-6],
    scaled by the port capacity) absorbs float rounding.
    [check_capacity] (default true) may be disabled for bookkeeping
    that intentionally tracks demand beyond capacity (settle
    semantics). *)

val total_reserved : port_view array -> float

val pp_violation : Format.formatter -> violation -> unit
