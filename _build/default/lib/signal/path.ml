type t = { ports : Port.t array; vci : int; mutable rate : float }

let create ports ~vci ~initial_rate =
  assert (initial_rate >= 0.);
  let ports = Array.of_list ports in
  let granted = ref 0 in
  let ok = ref true in
  (try
     Array.iteri
       (fun i port ->
         match Port.process port (Rm_cell.delta ~vci initial_rate) with
         | `Granted -> granted := i + 1
         | `Denied ->
             ok := false;
             raise Exit)
       ports
   with Exit -> ());
  if not !ok then begin
    for i = 0 to !granted - 1 do
      Port.release ports.(i) ~vci ~rate:initial_rate
    done;
    failwith "Path.create: admission failed"
  end;
  { ports; vci; rate = initial_rate }

let hops t = Array.length t.ports
let rate t = t.rate

let available t =
  Array.fold_left
    (fun acc port ->
      Float.min acc (Port.capacity port -. Port.reserved port))
    infinity t.ports
  +. t.rate

let renegotiate t new_rate =
  assert (new_rate >= 0.);
  let delta = new_rate -. t.rate in
  let cell = Rm_cell.delta ~vci:t.vci delta in
  let denied = ref (-1) in
  (try
     Array.iteri
       (fun i port ->
         match Port.process port cell with
         | `Granted -> ()
         | `Denied ->
             denied := i;
             raise Exit)
       t.ports
   with Exit -> ());
  if !denied < 0 then begin
    t.rate <- new_rate;
    `Granted
  end
  else begin
    (* Roll back the hops that had already granted the delta. *)
    let undo = Rm_cell.delta ~vci:t.vci (-.delta) in
    for i = 0 to !denied - 1 do
      match Port.process t.ports.(i) undo with
      | `Granted -> ()
      | `Denied -> assert false
      (* undoing an increase always fits; undoing a decrease restores a
         reservation that fit before *)
    done;
    `Denied_at !denied
  end

let teardown t =
  Array.iter (fun port -> Port.release port ~vci:t.vci ~rate:t.rate) t.ports;
  t.rate <- 0.
