module Injector = Rcbr_fault.Injector

type t = { ports : Port.t array; vci : int; mutable rate : float }

let create port_list ~vci ~initial_rate =
  assert (initial_rate >= 0.);
  let ports = Array.of_list port_list in
  let denied = ref (-1) in
  (try
     Array.iteri
       (fun i port ->
         match Port.process port (Rm_cell.delta ~vci initial_rate) with
         | `Granted -> ()
         | `Denied ->
             denied := i;
             raise Exit)
       ports
   with Exit -> ());
  if !denied >= 0 then begin
    for i = 0 to !denied - 1 do
      Port.release ports.(i) ~vci ~rate:initial_rate
    done;
    Error (`Denied_at !denied)
  end
  else Ok { ports; vci; rate = initial_rate }

let create_exn ports ~vci ~initial_rate =
  match create ports ~vci ~initial_rate with
  | Ok t -> t
  | Error (`Denied_at hop) ->
      failwith (Printf.sprintf "Path.create: admission denied at hop %d" hop)

let hops t = Array.length t.ports
let rate t = t.rate
let vci t = t.vci
let ports t = t.ports

let available t =
  Array.fold_left
    (fun acc port ->
      Float.min acc (Port.capacity port -. Port.reserved port))
    infinity t.ports
  +. t.rate

let renegotiate t new_rate =
  assert (new_rate >= 0.);
  let delta = new_rate -. t.rate in
  let cell = Rm_cell.delta ~vci:t.vci delta in
  let denied = ref (-1) in
  (try
     Array.iteri
       (fun i port ->
         match Port.process port cell with
         | `Granted -> ()
         | `Denied ->
             denied := i;
             raise Exit)
       t.ports
   with Exit -> ());
  if !denied < 0 then begin
    t.rate <- new_rate;
    `Granted
  end
  else begin
    (* Roll back the hops that had already granted the delta. *)
    let undo = Rm_cell.delta ~vci:t.vci (-.delta) in
    for i = 0 to !denied - 1 do
      match Port.process t.ports.(i) undo with
      | `Granted -> ()
      | `Denied -> assert false
      (* undoing an increase always fits; undoing a decrease restores a
         reservation that fit before *)
    done;
    `Denied_at !denied
  end

(* --- Fault-aware signalling ------------------------------------------ *)

type request = { id : int; target : float; cell : Rm_cell.t; undo : Rm_cell.t }

let request t ~id target =
  assert (target >= 0.);
  {
    id;
    target;
    cell = Rm_cell.delta ~vci:t.vci (target -. t.rate);
    undo = Rm_cell.delta ~vci:t.vci (t.rate -. target);
  }

let request_target r = r.target

(* One traversal of the link into [hop]; [apply] is run once for a
   delivered cell and again, immediately behind it, for a duplicated
   one.  Returns the extra delivery delay, or None if the cell (or the
   port under it) is gone. *)
let traverse inj port ~hop ~apply =
  match Injector.fate inj ~hop with
  | Injector.Drop -> None
  | f ->
      if not (Port.is_up port) then None
      else begin
        apply ();
        (match f with Injector.Duplicate -> apply () | _ -> ());
        Some (match f with Injector.Delay d -> d | _ -> 0)
      end

let transmit t ~inj req =
  let n = Array.length t.ports in
  (* The request cell walks the hops in order; each grants (applying the
     delta, idempotently) and forwards, or denies and turns the cell
     around. *)
  let rec forward i extra =
    if i = n then `Through extra
    else
      let port = t.ports.(i) in
      let verdict = ref `Denied in
      match
        traverse inj port ~hop:i ~apply:(fun () ->
            verdict := Port.process_request port ~req_id:req.id req.cell)
      with
      | None -> `Lost_fwd
      | Some d -> (
          match !verdict with
          | `Granted -> forward (i + 1) (extra + d)
          | `Denied -> `Denied_here (i, extra + d))
  in
  (* The response travels back towards the source.  A denial rolls back
     each hop it passes; if it is lost mid-way the unreached hops keep
     the delta — a leak the periodic resync later repairs.  A lost
     response of either kind leaves the source to its timeout, and the
     retransmission is harmless thanks to request-id idempotency. *)
  let rec backward ~rolling j extra =
    if j < 0 then `Arrived extra
    else
      let port = t.ports.(j) in
      match
        traverse inj port ~hop:j ~apply:(fun () ->
            if rolling then Port.rollback_request port ~req_id:req.id req.undo)
      with
      | None -> `Lost_back
      | Some d -> backward ~rolling (j - 1) (extra + d)
  in
  match forward 0 0 with
  | `Lost_fwd -> `Lost
  | `Denied_here (i, extra) -> (
      let er =
        Float.max 0.
          (Port.capacity t.ports.(i) -. Port.reserved t.ports.(i)
          +. Port.vci_rate t.ports.(i) t.vci)
      in
      match backward ~rolling:true (i - 1) extra with
      | `Arrived _ -> `Denied (i, er)
      | `Lost_back -> `Lost)
  | `Through extra -> (
      match backward ~rolling:false (n - 1) extra with
      | `Arrived extra ->
          t.rate <- req.target;
          `Granted extra
      | `Lost_back -> `Lost)

let resync t ~inj =
  let cell = Rm_cell.resync ~vci:t.vci t.rate in
  let n = Array.length t.ports in
  (* Fire and forget: each hop the cell reaches snaps its belief to the
     absolute rate (an increase past a full port is refused and left for
     the next round).  A drop abandons the remaining hops this round. *)
  let rec forward i =
    if i < n then
      match
        traverse inj t.ports.(i) ~hop:i ~apply:(fun () ->
            ignore (Port.process t.ports.(i) cell))
      with
      | None -> ()
      | Some _ -> forward (i + 1)
  in
  forward 0

let teardown t =
  Array.iter (fun port -> Port.release port ~vci:t.vci ~rate:t.rate) t.ports;
  t.rate <- 0.
