(** Multi-hop renegotiation (Section III-C).

    A connection traverses one port per hop; a renegotiation succeeds
    only if every hop grants it.  On a mid-path denial the hops already
    granted are rolled back, so bookkeeping stays consistent.  As the
    paper observes, the failure probability grows with hop count — each
    hop is an independent point of failure. *)

type t

val create : Port.t list -> vci:int -> initial_rate:float -> t
(** Reserve [initial_rate] on every hop.  Raises [Failure] if any hop
    cannot fit it (releasing what was taken). *)

val hops : t -> int
val rate : t -> float

val renegotiate : t -> float -> [ `Granted | `Denied_at of int ]
(** Request an absolute new rate.  All-or-nothing across hops; on
    [`Denied_at i] (0-based hop index) the connection keeps its old
    rate everywhere. *)

val available : t -> float
(** The largest absolute rate this connection could renegotiate to right
    now: its current rate plus the tightest hop's free capacity.  This
    is the ER-field feedback of the ABR-style signaling (Section III-B):
    a denying switch tells the source what it {e can} have. *)

val teardown : t -> unit
(** Release the current rate on every hop. *)
