(** Multi-hop renegotiation (Section III-C).

    A connection traverses one port per hop; a renegotiation succeeds
    only if every hop grants it.  On a mid-path denial the hops already
    granted are rolled back, so bookkeeping stays consistent.  As the
    paper observes, the failure probability grows with hop count — each
    hop is an independent point of failure.

    Two signalling interfaces coexist.  {!renegotiate} is the idealized
    zero-loss exchange.  {!request}/{!transmit}/{!resync} model the same
    exchange over an unreliable network driven by a
    {!Rcbr_fault.Injector}: cells can be dropped, duplicated, reordered
    or delayed on every link, and a crashed port swallows them; requests
    carry an id so that retransmissions are idempotent at every hop. *)

type t

val create :
  Port.t list ->
  vci:int ->
  initial_rate:float ->
  (t, [ `Denied_at of int ]) result
(** Reserve [initial_rate] on every hop.  [Error (`Denied_at i)] when
    hop [i] cannot fit it (everything taken so far is released), so
    callers can tell admission failure from a bug. *)

val create_exn : Port.t list -> vci:int -> initial_rate:float -> t
(** {!create}, raising [Failure] on denial — for callers that sized the
    network so setup cannot fail. *)

val hops : t -> int
val rate : t -> float
val vci : t -> int

val ports : t -> Port.t array
(** The underlying ports, in hop order — exposed for fault injection
    (crash/recover) and invariant checking.  Do not mutate reservations
    behind the path's back. *)

val renegotiate : t -> float -> [ `Granted | `Denied_at of int ]
(** Request an absolute new rate over a lossless signalling plane.
    All-or-nothing across hops; on [`Denied_at i] (0-based hop index)
    the connection keeps its old rate everywhere. *)

val available : t -> float
(** The largest absolute rate this connection could renegotiate to right
    now: its current rate plus the tightest hop's free capacity.  This
    is the ER-field feedback of the ABR-style signaling (Section III-B):
    a denying switch tells the source what it {e can} have. *)

type request
(** An in-flight renegotiation: an id plus the delta cell built against
    the rate believed when it was created.  Retransmit the {e same}
    request until a response arrives — its id makes it idempotent. *)

val request : t -> id:int -> float -> request
(** [request t ~id target] builds a request for absolute rate [target].
    Ids must be fresh per logical request (never reused across
    different targets on the same path). *)

val request_target : request -> float

val transmit :
  t ->
  inj:Rcbr_fault.Injector.t ->
  request ->
  [ `Granted of int | `Denied of int * float | `Lost ]
(** One transmission attempt of [req] across the path, consuming fault
    decisions from [inj].  [`Granted extra]: every hop applied the
    delta and the acknowledgment reached the source [extra] slots late
    (sum of injected delays); the path's {!rate} is updated.
    [`Denied (hop, er)]: [hop] refused; hops before it were rolled back
    by the returning cell, and [er] is the denying hop's explicit-rate
    feedback.  [`Lost]: the request or its response vanished (fault or
    crashed port) — the source learns nothing and should retransmit the
    same request after a timeout; hops already passed keep the delta
    until then (idempotency makes the retransmission safe, and a denial
    response lost mid-rollback leaks reservations that the next
    {!resync} repairs). *)

val resync :
  t -> inj:Rcbr_fault.Injector.t -> unit
(** Send a fire-and-forget absolute-rate resync cell (footnote 2 of the
    paper) across the path, repairing any drift or leaked deltas at the
    hops it reaches.  Only call while no request is in flight. *)

val teardown : t -> unit
(** Release this connection on every hop (each port frees what {e it}
    believes the connection holds, so teardown is exact even after
    drift). *)
