type mode = Stateless | Tracked

type t = {
  mode : mode;
  capacity : float;
  mutable reserved : float;
  rates : (int, float) Hashtbl.t;
}

let create ?(mode = Tracked) ~capacity () =
  assert (capacity > 0.);
  { mode; capacity; reserved = 0.; rates = Hashtbl.create 64 }

let capacity t = t.capacity
let reserved t = t.reserved

let vci_rate t vci =
  match t.mode with
  | Stateless -> 0.
  | Tracked -> ( try Hashtbl.find t.rates vci with Not_found -> 0.)

let process t cell =
  let vci = cell.Rm_cell.vci in
  let change =
    match (t.mode, cell.Rm_cell.payload) with
    | Stateless, Rm_cell.Resync _ -> 0.
    | Stateless, Rm_cell.Delta d -> d
    | Tracked, _ ->
        Rm_cell.payload_rate_change cell ~current:(vci_rate t vci)
  in
  if change <= 0. || t.reserved +. change <= t.capacity then begin
    t.reserved <- max 0. (t.reserved +. change);
    (match t.mode with
    | Stateless -> ()
    | Tracked -> Hashtbl.replace t.rates vci (max 0. (vci_rate t vci +. change)));
    `Granted
  end
  else `Denied

let release t ~vci ~rate =
  assert (rate >= 0.);
  t.reserved <- max 0. (t.reserved -. rate);
  match t.mode with
  | Stateless -> ()
  | Tracked -> Hashtbl.remove t.rates vci

let drift t ~actual = t.reserved -. actual
