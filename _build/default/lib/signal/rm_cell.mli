(** Resource-management cells for lightweight renegotiation signaling
    (Section III-B).

    An RCBR source reuses the ABR RM-cell mechanism: the explicit-rate
    field carries the {e difference} between the old and new rates so
    the switch controller needs no per-VCI state.  Deltas drift when
    cells are lost, so sources periodically send a resynchronization
    cell carrying the absolute rate (footnote 2 of the paper). *)

type payload =
  | Delta of float  (** requested rate change, b/s (may be negative) *)
  | Resync of float  (** absolute current rate, b/s (nonnegative) *)

type t = { vci : int; payload : payload }

val delta : vci:int -> float -> t
val resync : vci:int -> float -> t
(** Requires a nonnegative rate. *)

val payload_rate_change : t -> current:float -> float
(** Rate change this cell requests given the switch's belief [current]
    about the source's rate: [Delta d] is [d]; [Resync r] is
    [r -. current]. *)
