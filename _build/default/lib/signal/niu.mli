(** The end-system network interface unit (Section III-A).

    "For such applications, we propose that an active component monitor
    the buffer between the application and the network and initiate
    renegotiations based on the buffer occupancy.  This monitor could be
    part of the session layer in an ISO protocol stack, or reside in the
    NIU for dumb endpoints."

    This module is that component, end to end: a live (online) source
    feeds its frames into a finite buffer; the monitor runs the paper's
    AR(1) + threshold rule; accepted rate changes are signaled through a
    real multi-hop {!Path} (which may deny them); denials are retried;
    grants take effect after a signaling round-trip.  It composes
    {!Rcbr_core.Online}'s decision rule, {!Path}'s admission, and
    {!Rcbr_core.Adaptation}-style failure handling into the complete
    interactive-video data path. *)

type params = {
  online : Rcbr_core.Online.params;  (** monitor thresholds and predictor *)
  buffer : float;  (** end-system buffer, bits; overflow is lost *)
  delay_slots : int;  (** signaling round-trip before a grant bites *)
  retry_slots : int option;  (** re-issue a denied request after this many
                                 slots ([None]: wait for the next trigger) *)
}

val default_params : params
(** Paper values: default online parameters, 300 kb buffer, no signaling
    delay, retry after 1 s (24 slots). *)

type outcome = {
  schedule : Rcbr_core.Schedule.t;  (** rates actually in force *)
  bits_offered : float;
  bits_lost : float;
  max_backlog : float;
  attempts : int;  (** renegotiation requests signaled *)
  failures : int;  (** requests the network denied *)
  mean_reserved : float;  (** time-average in-force rate, b/s *)
}

val stream : params -> path:Path.t -> Rcbr_traffic.Trace.t -> outcome
(** Stream a live source across the path.  The path must already hold a
    reservation (its current {!Path.rate} is the starting service rate);
    on return it holds the final renegotiated rate (the caller tears it
    down).  Requires positive [buffer] and nonnegative [delay_slots]. *)
