(** The end-system network interface unit (Section III-A).

    "For such applications, we propose that an active component monitor
    the buffer between the application and the network and initiate
    renegotiations based on the buffer occupancy.  This monitor could be
    part of the session layer in an ISO protocol stack, or reside in the
    NIU for dumb endpoints."

    This module is that component, end to end: a live (online) source
    feeds its frames into a finite buffer; the monitor runs the paper's
    AR(1) + threshold rule; accepted rate changes are signaled through a
    real multi-hop {!Path} (which may deny them); denials are retried;
    grants take effect after a signaling round-trip.

    With a {!faults} specification the same NIU runs over an unreliable
    signalling plane: RM cells are dropped, duplicated, reordered and
    delayed per the fault plan, and ports crash and recover.  The NIU
    then behaves like a real transport endpoint — per-request timeouts,
    bounded retransmissions with exponential backoff and jitter,
    idempotent request ids so retransmitted or duplicated cells never
    double-apply at a switch, periodic absolute-rate resyncs to repair
    drift, and graceful degradation (ride out on buffer, settle for the
    ER-field rate, or scale quality) when renegotiation persistently
    fails. *)

type degrade =
  | Ride_out  (** keep the old rate, absorb the burst in the buffer *)
  | Settle
      (** fall back to the ER-field available rate (the reliable path's
          behaviour, generalized) *)
  | Scale of float
      (** Settle, and additionally shed this fraction of each offered
          frame at the source while starved — quality scaling with
          bits-lost accounting in [bits_scaled] *)

type faults = {
  plan : Rcbr_fault.Plan.t;  (** what the network does to RM cells *)
  timeout_slots : int;
      (** slots without a response before retransmitting; must exceed
          [delay_slots] so a healthy round-trip never times out *)
  max_retransmits : int;  (** per request, before giving up *)
  backoff : float;  (** timeout multiplier per retransmission (>= 1) *)
  jitter_slots : int;  (** uniform extra [0..jitter] slots per timeout *)
  resync_slots : int;  (** absolute-rate resync period; 0 disables *)
  degrade : degrade;  (** policy when renegotiation persistently fails *)
}

val default_faults : Rcbr_fault.Plan.t -> faults
(** timeout 8 slots, 6 retransmits max, backoff 2x with 2 slots of
    jitter, resync every 120 slots (5 s at 24 fps), Settle. *)

type params = {
  online : Rcbr_core.Online.params;  (** monitor thresholds and predictor *)
  buffer : float;  (** end-system buffer, bits; overflow is lost *)
  delay_slots : int;  (** signaling round-trip before a grant bites *)
  retry_slots : int option;  (** re-issue a denied request after this many
                                 slots ([None]: wait for the next trigger) *)
  faults : faults option;
      (** [None] runs the idealized zero-loss signalling plane and is
          bit-identical to the historical behaviour; [Some] (even of a
          null plan) runs the retransmitting state machine *)
}

val default_params : params
(** Paper values: default online parameters, 300 kb buffer, no signaling
    delay, retry after 1 s (24 slots), no fault layer. *)

type fault_report = {
  retransmits : int;  (** cells re-sent after a timeout *)
  timeouts : int;  (** request deadlines that expired *)
  give_ups : int;  (** requests abandoned after [max_retransmits] *)
  resyncs : int;  (** periodic absolute-rate repair cells sent *)
  degraded_slots : int;  (** slots spent with an unsatisfied want *)
  bits_scaled : float;  (** bits shed at the source by [Scale] *)
  worst_retransmits : int;  (** most retransmissions any request needed *)
  crashes : int;
  recoveries : int;
  cells : Rcbr_fault.Injector.totals;  (** faults actually injected *)
  invariant_violations : int;
      (** reservation-conservation violations detected on the path's
          ports at the end of the run (0 unless there is a bug) *)
  final_drift : float;
      (** worst per-hop gap, in b/s, between a port's belief about this
          VCI and the source's granted rate — leaked reservations not
          yet repaired by resync *)
}

type outcome = {
  schedule : Rcbr_core.Schedule.t;  (** rates actually in force *)
  bits_offered : float;
  bits_lost : float;  (** buffer-overflow loss *)
  max_backlog : float;
  attempts : int;  (** renegotiation requests signaled *)
  failures : int;  (** requests the network denied *)
  mean_reserved : float;  (** time-average in-force rate, b/s *)
  faults : fault_report option;  (** present iff [params.faults] was *)
}

val stream : params -> path:Path.t -> Rcbr_traffic.Trace.t -> outcome
(** Stream a live source across the path.  The path must already hold a
    reservation (its current {!Path.rate} is the starting service rate);
    on return it holds the final renegotiated rate (the caller tears it
    down).  Requires positive [buffer] and nonnegative [delay_slots];
    with faults, requires the plan to cover exactly {!Path.hops} hops
    and [timeout_slots > delay_slots]. *)
