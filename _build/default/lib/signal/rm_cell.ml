type payload = Delta of float | Resync of float
type t = { vci : int; payload : payload }

let delta ~vci d = { vci; payload = Delta d }

let resync ~vci r =
  assert (r >= 0.);
  { vci; payload = Resync r }

let payload_rate_change t ~current =
  match t.payload with Delta d -> d | Resync r -> r -. current
