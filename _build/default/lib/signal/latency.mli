(** Signaling latency effects on RCBR schedules (Section III-C).

    A renegotiation takes effect only after the signaling round-trip (or,
    piggybacked on RSVP refreshes, at the next refresh instant).  Rate
    {e increases} that arrive late let the end-system buffer grow; this
    module transforms a schedule into the one actually in force and
    measures the damage.  Offline sources compensate by renegotiating
    early ({!anticipate}); online sources cannot. *)

val delay : Rcbr_core.Schedule.t -> seconds:float -> Rcbr_core.Schedule.t
(** Every rate change takes effect [seconds] later (rounded up to whole
    slots).  Changes pushed past the end of the connection are dropped;
    the initial rate is unchanged.  Requires [seconds >= 0]. *)

val anticipate : Rcbr_core.Schedule.t -> seconds:float -> Rcbr_core.Schedule.t
(** Offline compensation: issue every change [seconds] early (clamped to
    slot 0, where it merges into the initial rate). *)

val align_to_refresh :
  Rcbr_core.Schedule.t -> period_s:float -> Rcbr_core.Schedule.t
(** RSVP piggyback model: a change requested at [t] takes effect at the
    next refresh instant (multiples of [period_s], starting at 0).
    Changes mapping to the same refresh collapse to the latest request.
    Requires [period_s > 0]. *)

val backlog_penalty :
  original:Rcbr_core.Schedule.t ->
  modified:Rcbr_core.Schedule.t ->
  trace:Rcbr_traffic.Trace.t ->
  capacity:float ->
  float * float
(** [(extra_max_backlog_bits, loss_fraction)] of the modified schedule
    against the trace, relative to the original's peak backlog. *)
