(** Advance reservations for stored video (Section III-A-2).

    "If all systems in the network share a common time base, advance
    reservations could be done for some or all of the data stream."  A
    booking calendar for one link: piecewise-constant reserved bandwidth
    over future time, with all-or-nothing booking of whole renegotiation
    schedules.  Booking in advance turns mid-stream renegotiation
    failures into up-front call blocking. *)

type t

val create : capacity:float -> t
(** Empty calendar for a link of [capacity] b/s.  Requires a positive
    capacity. *)

val capacity : t -> float

val reserved_at : t -> float -> float
(** Total bandwidth booked at the given instant. *)

val peak_reserved : t -> from_:float -> until:float -> float
(** Maximum booked bandwidth over the window.  Requires
    [from_ < until]. *)

val book : t -> from_:float -> until:float -> rate:float -> bool
(** Reserve [rate] over [\[from_, until)] iff it fits under the capacity
    throughout; false (and no change) otherwise.  Requires nonnegative
    [rate] and [from_ < until]. *)

val book_schedule : t -> start:float -> Rcbr_core.Schedule.t -> bool
(** Book every segment of a schedule beginning at absolute time [start],
    atomically: either the whole stream is reserved or nothing is. *)

val release : t -> from_:float -> until:float -> rate:float -> unit
(** Return previously booked bandwidth (e.g. a cancelled stream). *)

val booked_area : t -> from_:float -> until:float -> float
(** Integral of the booked rate over the window, bit. *)
