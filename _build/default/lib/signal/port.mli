(** Switch output-port controller.

    The whole per-renegotiation job of an RCBR switch: two lookups (VCI
    to port, port to utilization) and one comparison — "the logic to
    modify the ER field with RCBR is simpler than that required for
    fair-share computation in ABR".

    Two bookkeeping modes demonstrate the delta-signaling tradeoff:
    [Stateless] tracks only the aggregate reservation (no per-VCI state;
    lost RM cells make the aggregate drift), while [Tracked] keeps a
    per-VCI rate so [Resync] cells can repair drift.

    For fault injection the port also models failure: it can {!crash}
    (losing every reservation, like a real switch losing soft state)
    and {!recover} empty, and it offers an {e idempotent} request
    interface ({!process_request} / {!rollback_request}) so that
    retransmitted or duplicated RM cells of the same request never
    double-apply a delta. *)

type mode = Stateless | Tracked

type t

val create : ?mode:mode -> capacity:float -> unit -> t
(** Empty port.  Default mode [Tracked]. *)

val capacity : t -> float
val reserved : t -> float
(** Aggregate reservation the controller believes is in force. *)

val mode : t -> mode

val vci_rate : t -> int -> float
(** Believed rate of a VCI; 0 if unknown or in [Stateless] mode. *)

val process : t -> Rm_cell.t -> [ `Granted | `Denied ]
(** Apply an RM cell: compute the implied rate change, grant it iff
    [reserved + change <= capacity] (decreases always succeed), and
    update the bookkeeping.  In [Stateless] mode a [Resync] cell cannot
    be interpreted (no per-VCI memory) and is treated as [Delta 0].
    A crashed port denies everything. *)

val process_request : t -> req_id:int -> Rm_cell.t -> [ `Granted | `Denied ]
(** Idempotent {!process}: if this VCI's most recent request has the
    same [req_id] and its change is still applied, acknowledge
    [`Granted] without reapplying — so retransmissions and duplicated
    cells are harmless.  A request whose change was rolled back (or
    denied) is evaluated afresh. *)

val rollback_request : t -> req_id:int -> Rm_cell.t -> unit
(** Undo request [req_id] by applying [cell] (the reverse delta) — but
    only if that request's change is currently applied here, making
    duplicated rollback cells harmless too. *)

val release : t -> vci:int -> rate:float -> unit
(** Tear-down: return the VCI's reservation to the pool (and forget the
    VCI when tracked).  In [Tracked] mode the amount freed is what the
    {e port} believes the VCI holds — exact even when signalling faults
    have made the caller's view drift; [rate] is used only in
    [Stateless] mode. *)

val crash : t -> unit
(** The port fails: it loses every reservation and all per-VCI state,
    and denies/ignores all signalling until {!recover}. *)

val recover : t -> unit
(** The port comes back up, empty — connections re-admit from scratch
    (typically via their periodic resync cells). *)

val is_up : t -> bool

val drift : t -> actual:float -> float
(** [reserved -. actual]: the bookkeeping error against the true total
    source rate, the quantity periodic resync bounds. *)

val view : t -> index:int -> Rcbr_fault.Invariant.port_view
(** Snapshot for the conservation invariant checker. *)
