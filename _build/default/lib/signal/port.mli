(** Switch output-port controller.

    The whole per-renegotiation job of an RCBR switch: two lookups (VCI
    to port, port to utilization) and one comparison — "the logic to
    modify the ER field with RCBR is simpler than that required for
    fair-share computation in ABR".

    Two bookkeeping modes demonstrate the delta-signaling tradeoff:
    [Stateless] tracks only the aggregate reservation (no per-VCI state;
    lost RM cells make the aggregate drift), while [Tracked] keeps a
    per-VCI rate so [Resync] cells can repair drift. *)

type mode = Stateless | Tracked

type t

val create : ?mode:mode -> capacity:float -> unit -> t
(** Empty port.  Default mode [Tracked]. *)

val capacity : t -> float
val reserved : t -> float
(** Aggregate reservation the controller believes is in force. *)

val vci_rate : t -> int -> float
(** Believed rate of a VCI; 0 if unknown or in [Stateless] mode. *)

val process : t -> Rm_cell.t -> [ `Granted | `Denied ]
(** Apply an RM cell: compute the implied rate change, grant it iff
    [reserved + change <= capacity] (decreases always succeed), and
    update the bookkeeping.  In [Stateless] mode a [Resync] cell cannot
    be interpreted (no per-VCI memory) and is treated as [Delta 0]. *)

val release : t -> vci:int -> rate:float -> unit
(** Tear-down: return [rate] to the pool (and forget the VCI when
    tracked). *)

val drift : t -> actual:float -> float
(** [reserved -. actual]: the bookkeeping error against the true total
    source rate, the quantity periodic resync bounds. *)
