module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Online = Rcbr_core.Online
module Predictor = Rcbr_core.Predictor
module Plan = Rcbr_fault.Plan
module Injector = Rcbr_fault.Injector
module Invariant = Rcbr_fault.Invariant

type degrade = Ride_out | Settle | Scale of float

type faults = {
  plan : Plan.t;
  timeout_slots : int;
  max_retransmits : int;
  backoff : float;
  jitter_slots : int;
  resync_slots : int;
  degrade : degrade;
}

let default_faults plan =
  {
    plan;
    timeout_slots = 8;
    max_retransmits = 6;
    backoff = 2.;
    jitter_slots = 2;
    resync_slots = 120;
    degrade = Settle;
  }

type params = {
  online : Rcbr_core.Online.params;
  buffer : float;
  delay_slots : int;
  retry_slots : int option;
  faults : faults option;
}

let default_params =
  {
    online = Online.default_params;
    buffer = 300_000.;
    delay_slots = 0;
    retry_slots = Some 24;
    faults = None;
  }

type fault_report = {
  retransmits : int;
  timeouts : int;
  give_ups : int;
  resyncs : int;
  degraded_slots : int;
  bits_scaled : float;
  worst_retransmits : int;
  crashes : int;
  recoveries : int;
  cells : Injector.totals;
  invariant_violations : int;
  final_drift : float;
}

type outcome = {
  schedule : Rcbr_core.Schedule.t;
  bits_offered : float;
  bits_lost : float;
  max_backlog : float;
  attempts : int;
  failures : int;
  mean_reserved : float;
  faults : fault_report option;
}

let quantize_up delta x =
  if x <= 0. then delta else delta *. Float.ceil (x /. delta)

(* Two quantized wants denote the same renegotiation target iff they sit
   on the same rung of the rate grid — never compare the floats
   directly, a re-predicted want one ulp away must not bypass the retry
   timer. *)
let same_grid_level delta a b = Float.abs (a -. b) < 0.5 *. delta

(* --- The zero-fault data path (the paper's idealized signalling) ----- *)

let stream_reliable p ~path trace =
  let o = p.online in
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let flush_seconds = float_of_int o.Online.flush_slots *. tau in
  let pred =
    Predictor.ar1 ~eta:o.Online.ar_coefficient
      ~initial:(Trace.frame trace 0 /. tau)
  in
  (* [in_force] drains the buffer; [granted] is what the network has
     admitted (awaiting its round-trip when they differ); [wanted] is a
     denied request kept for retry. *)
  let in_force = ref (Path.rate path) in
  let granted = ref !in_force in
  let pending = ref [] (* (effective_slot, rate) *) in
  let wanted = ref None and retry_at = ref max_int in
  let segments = ref [ { Schedule.start_slot = 0; rate = !in_force } ] in
  let backlog = ref 0. and max_backlog = ref 0. in
  let offered = ref 0. and lost = ref 0. in
  let reserved_integral = ref 0. in
  let attempts = ref 0 and failures = ref 0 in
  let accept t rate =
    granted := rate;
    if p.delay_slots = 0 then begin
      in_force := rate;
      segments := { Schedule.start_slot = t; rate } :: !segments
    end
    else pending := !pending @ [ (t + p.delay_slots, rate) ]
  in
  let request t rate =
    incr attempts;
    match Path.renegotiate path rate with
    | `Granted ->
        accept t rate;
        wanted := None
    | `Denied_at _ ->
        incr failures;
        (* ER-field feedback (Section III-B): the denying switch tells
           the source what is available; settle for it now and keep the
           real want for a retry. *)
        wanted := Some rate;
        (match p.retry_slots with
        | Some d -> retry_at := t + d
        | None -> retry_at := max_int);
        let fallback =
          o.Online.granularity
          *. Float.floor (Path.available path /. o.Online.granularity)
        in
        if fallback > !granted then
          match Path.renegotiate path fallback with
          | `Granted -> accept t fallback
          | `Denied_at _ -> ()
  in
  for t = 0 to n - 1 do
    (match !pending with
    | (at, rate) :: rest when at <= t ->
        in_force := rate;
        pending := rest;
        segments := { Schedule.start_slot = t; rate } :: !segments
    | _ -> ());
    (* Retry a previously denied request. *)
    (match !wanted with
    | Some rate when t >= !retry_at -> request t rate
    | _ -> ());
    let bits = Trace.frame trace t in
    offered := !offered +. bits;
    let net = !backlog +. bits -. (!in_force *. tau) in
    backlog := Float.min p.buffer (Float.max 0. net);
    lost := !lost +. Float.max 0. (net -. p.buffer);
    if !backlog > !max_backlog then max_backlog := !backlog;
    reserved_integral := !reserved_integral +. (!in_force *. tau);
    pred.Predictor.observe (bits /. tau);
    let flush =
      if o.Online.use_flush_term then !backlog /. flush_seconds else 0.
    in
    let prediction = pred.Predictor.forecast () +. flush in
    if t + 1 < n then begin
      let want = quantize_up o.Online.granularity prediction in
      let reference = !granted in
      let want_up = !backlog > o.Online.b_high && want > reference in
      let want_down = !backlog < o.Online.b_low && want < reference in
      (* Rate-limit the signaling: a want that was just denied waits for
         its retry timer instead of hammering the switches every slot. *)
      let already_denied =
        match !wanted with
        | Some w ->
            same_grid_level o.Online.granularity w want && t + 1 < !retry_at
        | None -> false
      in
      if (want_up || want_down) && !pending = [] && not already_denied then
        request (t + 1) want
    end
  done;
  let schedule =
    Schedule.create ~fps:(Trace.fps trace) ~n_slots:n (List.rev !segments)
  in
  {
    schedule;
    bits_offered = !offered;
    bits_lost = !lost;
    max_backlog = !max_backlog;
    attempts = !attempts;
    failures = !failures;
    mean_reserved = !reserved_integral /. (float_of_int n *. tau);
    faults = None;
  }

(* --- The same data path over an unreliable signalling plane ---------- *)

type inflight = {
  req : Path.request;
  target : float;
  is_fallback : bool;
  mutable retx : int;
  mutable deadline : int;
}

let stream_faulty p f ~path trace =
  let o = p.online in
  if Array.length f.plan.Plan.links <> Path.hops path then
    invalid_arg "Niu faults: plan covers a different number of hops than the path";
  if f.timeout_slots <= p.delay_slots then
    invalid_arg
      (Printf.sprintf
         "Niu faults: timeout_slots %d must exceed the signalling delay of %d \
          slot(s), or every request times out before its response can arrive"
         f.timeout_slots p.delay_slots);
  if f.max_retransmits < 0 then invalid_arg "Niu faults: max_retransmits < 0";
  if f.backoff < 1. then invalid_arg "Niu faults: backoff factor must be >= 1";
  if f.jitter_slots < 0 then invalid_arg "Niu faults: jitter_slots < 0";
  if f.resync_slots < 0 then invalid_arg "Niu faults: resync_slots < 0";
  (match f.degrade with
  | Scale q when not (q >= 0. && q <= 1.) ->
      invalid_arg "Niu faults: scale factor not in [0,1]"
  | _ -> ());
  let inj = Injector.create f.plan in
  let ports = Path.ports path in
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let flush_seconds = float_of_int o.Online.flush_slots *. tau in
  let pred =
    Predictor.ar1 ~eta:o.Online.ar_coefficient
      ~initial:(Trace.frame trace 0 /. tau)
  in
  let in_force = ref (Path.rate path) in
  let granted = ref !in_force in
  let pending = ref [] in
  let wanted = ref None and retry_at = ref max_int in
  let segments = ref [ { Schedule.start_slot = 0; rate = !in_force } ] in
  let backlog = ref 0. and max_backlog = ref 0. in
  let offered = ref 0. and lost = ref 0. in
  let reserved_integral = ref 0. in
  let attempts = ref 0 and failures = ref 0 in
  (* Retransmission state machine: at most one request in flight. *)
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let inflight = ref None in
  let retransmits = ref 0 and timeouts = ref 0 and give_ups = ref 0 in
  let worst_retx = ref 0 in
  let resyncs = ref 0 in
  let degraded_slots = ref 0 and bits_scaled = ref 0. in
  let crashes = ref 0 and recoveries = ref 0 in
  let degraded = ref false in
  let accept t ~extra rate =
    granted := rate;
    let effective = t + p.delay_slots + extra in
    if effective <= t then begin
      in_force := rate;
      segments := { Schedule.start_slot = t; rate } :: !segments
    end
    else pending := !pending @ [ (effective, rate) ]
  in
  let arm_deadline t retx =
    let scaled =
      Float.ceil (float_of_int f.timeout_slots *. (f.backoff ** float_of_int retx))
    in
    t + int_of_float scaled + Injector.jitter inj f.jitter_slots
  in
  (* A denial concluded: remember the want, arm the retry timer, and —
     under Settle/Scale — settle for the grid level under the ER-field
     feedback right away (generalizing the fallback of the reliable
     path).  Ride_out keeps the old rate and rides on the buffer. *)
  let on_denied t rate =
    incr failures;
    wanted := Some rate;
    (match p.retry_slots with
    | Some d -> retry_at := t + d
    | None -> retry_at := max_int);
    match f.degrade with
    | Ride_out -> ()
    | Settle | Scale _ -> (
        let fallback =
          o.Online.granularity
          *. Float.floor (Path.available path /. o.Online.granularity)
        in
        if fallback > !granted then
          let fb = Path.request path ~id:(fresh_id ()) fallback in
          match Path.transmit path ~inj fb with
          | `Granted extra -> accept t ~extra fallback
          | `Denied _ -> ()
          | `Lost ->
              inflight :=
                Some
                  {
                    req = fb;
                    target = fallback;
                    is_fallback = true;
                    retx = 0;
                    deadline = arm_deadline t 0;
                  })
  in
  let conclude t r = function
    | `Granted extra ->
        inflight := None;
        accept t ~extra r.target;
        if not r.is_fallback then begin
          wanted := None;
          degraded := false
        end
    | `Denied (_hop, _er) ->
        inflight := None;
        if not r.is_fallback then on_denied t r.target
    | `Lost -> r.deadline <- arm_deadline t r.retx
  in
  let send_request t rate =
    incr attempts;
    let req = Path.request path ~id:(fresh_id ()) rate in
    match Path.transmit path ~inj req with
    | `Granted extra ->
        accept t ~extra rate;
        wanted := None;
        degraded := false
    | `Denied _ -> on_denied t rate
    | `Lost ->
        inflight :=
          Some
            {
              req;
              target = rate;
              is_fallback = false;
              retx = 0;
              deadline = arm_deadline t 0;
            }
  in
  for t = 0 to n - 1 do
    (* Planned switch failures: a crashing port loses its reservations
       and state; on recovery it re-admits from empty (our resync cells
       rebuild its belief). *)
    List.iter
      (fun c ->
        if c.Plan.at_slot = t then begin
          Port.crash ports.(c.Plan.hop);
          incr crashes
        end;
        if c.Plan.recover_slot = t then begin
          Port.recover ports.(c.Plan.hop);
          incr recoveries
        end)
      f.plan.Plan.crashes;
    (* A granted renegotiation comes into force. *)
    (match !pending with
    | (at, rate) :: rest when at <= t ->
        in_force := rate;
        pending := rest;
        segments := { Schedule.start_slot = t; rate } :: !segments
    | _ -> ());
    (* Timeout: retransmit the same request (bounded, with exponential
       backoff and jitter), or give up and degrade. *)
    (match !inflight with
    | Some r when t >= r.deadline ->
        incr timeouts;
        if r.retx >= f.max_retransmits then begin
          incr give_ups;
          inflight := None;
          if not r.is_fallback then begin
            wanted := Some r.target;
            (match p.retry_slots with
            | Some d -> retry_at := t + d
            | None -> retry_at := max_int);
            degraded := true
          end
        end
        else begin
          r.retx <- r.retx + 1;
          incr retransmits;
          if r.retx > !worst_retx then worst_retx := r.retx;
          conclude t r (Path.transmit path ~inj r.req)
        end
    | _ -> ());
    (* Retry a previously denied (or abandoned) want. *)
    (match (!wanted, !inflight) with
    | Some rate, None when t >= !retry_at -> send_request t rate
    | _ -> ());
    (* Periodic absolute-rate resync repairs drift, leaked rollbacks and
       crashed-and-recovered hops; only while nothing is in flight so it
       cannot race an unresolved delta. *)
    if
      f.resync_slots > 0
      && t > 0
      && t mod f.resync_slots = 0
      && !inflight = None
    then begin
      Path.resync path ~inj;
      incr resyncs
    end;
    let is_degraded = !degraded || !wanted <> None in
    if is_degraded then incr degraded_slots;
    let bits = Trace.frame trace t in
    offered := !offered +. bits;
    (* Quality scaling: while degraded, shed a fraction of the offered
       bits at the source instead of overflowing the buffer. *)
    let starved =
      is_degraded
      && match !wanted with Some w -> w > !granted | None -> false
    in
    let bits_in =
      match f.degrade with
      | Scale q when starved ->
          let shed = q *. bits in
          bits_scaled := !bits_scaled +. shed;
          bits -. shed
      | _ -> bits
    in
    let net = !backlog +. bits_in -. (!in_force *. tau) in
    backlog := Float.min p.buffer (Float.max 0. net);
    lost := !lost +. Float.max 0. (net -. p.buffer);
    if !backlog > !max_backlog then max_backlog := !backlog;
    reserved_integral := !reserved_integral +. (!in_force *. tau);
    pred.Predictor.observe (bits /. tau);
    let flush =
      if o.Online.use_flush_term then !backlog /. flush_seconds else 0.
    in
    let prediction = pred.Predictor.forecast () +. flush in
    if t + 1 < n then begin
      let want = quantize_up o.Online.granularity prediction in
      let reference = !granted in
      let want_up = !backlog > o.Online.b_high && want > reference in
      let want_down = !backlog < o.Online.b_low && want < reference in
      let already_denied =
        match !wanted with
        | Some w ->
            same_grid_level o.Online.granularity w want && t + 1 < !retry_at
        | None -> false
      in
      if
        (want_up || want_down)
        && !pending = []
        && !inflight = None
        && not already_denied
      then send_request (t + 1) want
    end
  done;
  let views = Array.mapi (fun i port -> Port.view port ~index:i) ports in
  let violations = Invariant.check views in
  let final_drift =
    Array.fold_left
      (fun acc port ->
        match Port.mode port with
        | Port.Stateless -> acc
        | Port.Tracked ->
            Float.max acc
              (Float.abs (Port.vci_rate port (Path.vci path) -. !granted)))
      0. ports
  in
  let schedule =
    Schedule.create ~fps:(Trace.fps trace) ~n_slots:n (List.rev !segments)
  in
  {
    schedule;
    bits_offered = !offered;
    bits_lost = !lost;
    max_backlog = !max_backlog;
    attempts = !attempts;
    failures = !failures;
    mean_reserved = !reserved_integral /. (float_of_int n *. tau);
    faults =
      Some
        {
          retransmits = !retransmits;
          timeouts = !timeouts;
          give_ups = !give_ups;
          resyncs = !resyncs;
          degraded_slots = !degraded_slots;
          bits_scaled = !bits_scaled;
          worst_retransmits = !worst_retx;
          crashes = !crashes;
          recoveries = !recoveries;
          cells = Injector.totals inj;
          invariant_violations = List.length violations;
          final_drift;
        };
  }

let stream p ~path trace =
  let o = p.online in
  assert (o.Online.b_low >= 0. && o.Online.b_high > o.Online.b_low);
  assert (o.Online.flush_slots > 0 && o.Online.granularity > 0.);
  assert (p.buffer > 0. && p.delay_slots >= 0);
  (match p.retry_slots with Some r -> assert (r >= 1) | None -> ());
  match p.faults with
  | None -> stream_reliable p ~path trace
  | Some f -> stream_faulty p f ~path trace
