module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Online = Rcbr_core.Online
module Predictor = Rcbr_core.Predictor

type params = {
  online : Rcbr_core.Online.params;
  buffer : float;
  delay_slots : int;
  retry_slots : int option;
}

let default_params =
  {
    online = Online.default_params;
    buffer = 300_000.;
    delay_slots = 0;
    retry_slots = Some 24;
  }

type outcome = {
  schedule : Rcbr_core.Schedule.t;
  bits_offered : float;
  bits_lost : float;
  max_backlog : float;
  attempts : int;
  failures : int;
  mean_reserved : float;
}

let quantize_up delta x =
  if x <= 0. then delta else delta *. Float.ceil (x /. delta)

let stream p ~path trace =
  let o = p.online in
  assert (o.Online.b_low >= 0. && o.Online.b_high > o.Online.b_low);
  assert (o.Online.flush_slots > 0 && o.Online.granularity > 0.);
  assert (p.buffer > 0. && p.delay_slots >= 0);
  (match p.retry_slots with Some r -> assert (r >= 1) | None -> ());
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let flush_seconds = float_of_int o.Online.flush_slots *. tau in
  let pred =
    Predictor.ar1 ~eta:o.Online.ar_coefficient
      ~initial:(Trace.frame trace 0 /. tau)
  in
  (* [in_force] drains the buffer; [granted] is what the network has
     admitted (awaiting its round-trip when they differ); [wanted] is a
     denied request kept for retry. *)
  let in_force = ref (Path.rate path) in
  let granted = ref !in_force in
  let pending = ref [] (* (effective_slot, rate) *) in
  let wanted = ref None and retry_at = ref max_int in
  let segments = ref [ { Schedule.start_slot = 0; rate = !in_force } ] in
  let backlog = ref 0. and max_backlog = ref 0. in
  let offered = ref 0. and lost = ref 0. in
  let reserved_integral = ref 0. in
  let attempts = ref 0 and failures = ref 0 in
  let accept t rate =
    granted := rate;
    if p.delay_slots = 0 then begin
      in_force := rate;
      segments := { Schedule.start_slot = t; rate } :: !segments
    end
    else pending := !pending @ [ (t + p.delay_slots, rate) ]
  in
  let request t rate =
    incr attempts;
    match Path.renegotiate path rate with
    | `Granted ->
        accept t rate;
        wanted := None
    | `Denied_at _ ->
        incr failures;
        (* ER-field feedback (Section III-B): the denying switch tells
           the source what is available; settle for it now and keep the
           real want for a retry. *)
        wanted := Some rate;
        (match p.retry_slots with
        | Some d -> retry_at := t + d
        | None -> retry_at := max_int);
        let fallback =
          o.Online.granularity
          *. Float.floor (Path.available path /. o.Online.granularity)
        in
        if fallback > !granted then
          match Path.renegotiate path fallback with
          | `Granted -> accept t fallback
          | `Denied_at _ -> ()
  in
  for t = 0 to n - 1 do
    (match !pending with
    | (at, rate) :: rest when at <= t ->
        in_force := rate;
        pending := rest;
        segments := { Schedule.start_slot = t; rate } :: !segments
    | _ -> ());
    (* Retry a previously denied request. *)
    (match !wanted with
    | Some rate when t >= !retry_at -> request t rate
    | _ -> ());
    let bits = Trace.frame trace t in
    offered := !offered +. bits;
    let net = !backlog +. bits -. (!in_force *. tau) in
    backlog := Float.min p.buffer (Float.max 0. net);
    lost := !lost +. Float.max 0. (net -. p.buffer);
    if !backlog > !max_backlog then max_backlog := !backlog;
    reserved_integral := !reserved_integral +. (!in_force *. tau);
    pred.Predictor.observe (bits /. tau);
    let flush =
      if o.Online.use_flush_term then !backlog /. flush_seconds else 0.
    in
    let prediction = pred.Predictor.forecast () +. flush in
    if t + 1 < n then begin
      let want = quantize_up o.Online.granularity prediction in
      let reference = !granted in
      let want_up = !backlog > o.Online.b_high && want > reference in
      let want_down = !backlog < o.Online.b_low && want < reference in
      (* Rate-limit the signaling: a want that was just denied waits for
         its retry timer instead of hammering the switches every slot. *)
      let already_denied =
        match !wanted with
        | Some w -> w = want && t + 1 < !retry_at
        | None -> false
      in
      if (want_up || want_down) && !pending = [] && not already_denied then
        request (t + 1) want
    end
  done;
  let schedule =
    Schedule.create ~fps:(Trace.fps trace) ~n_slots:n (List.rev !segments)
  in
  {
    schedule;
    bits_offered = !offered;
    bits_lost = !lost;
    max_backlog = !max_backlog;
    attempts = !attempts;
    failures = !failures;
    mean_reserved = !reserved_integral /. (float_of_int n *. tau);
  }
