lib/signal/latency.mli: Rcbr_core Rcbr_traffic
