lib/signal/latency.ml: Array Float Hashtbl List Rcbr_core Rcbr_queue
