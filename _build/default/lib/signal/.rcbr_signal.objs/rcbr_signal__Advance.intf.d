lib/signal/advance.mli: Rcbr_core
