lib/signal/rm_cell.mli:
