lib/signal/niu.ml: Array Float List Path Port Printf Rcbr_core Rcbr_fault Rcbr_traffic
