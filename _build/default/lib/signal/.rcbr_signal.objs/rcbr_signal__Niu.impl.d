lib/signal/niu.ml: Float List Path Rcbr_core Rcbr_traffic
