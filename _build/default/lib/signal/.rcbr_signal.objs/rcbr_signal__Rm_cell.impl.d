lib/signal/rm_cell.ml:
