lib/signal/path.mli: Port Rcbr_fault
