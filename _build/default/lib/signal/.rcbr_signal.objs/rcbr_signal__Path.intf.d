lib/signal/path.mli: Port
