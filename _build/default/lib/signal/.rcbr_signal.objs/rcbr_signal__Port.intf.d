lib/signal/port.mli: Rm_cell
