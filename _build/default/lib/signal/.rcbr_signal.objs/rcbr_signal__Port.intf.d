lib/signal/port.mli: Rcbr_fault Rm_cell
