lib/signal/advance.ml: Array Float List Rcbr_core
