lib/signal/path.ml: Array Float Port Rm_cell
