lib/signal/path.ml: Array Float Port Printf Rcbr_fault Rm_cell
