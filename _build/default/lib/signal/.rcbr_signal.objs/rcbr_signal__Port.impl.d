lib/signal/port.ml: Hashtbl Rm_cell
