lib/signal/port.ml: Hashtbl Rcbr_fault Rm_cell
