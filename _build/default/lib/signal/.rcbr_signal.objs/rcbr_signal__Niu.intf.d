lib/signal/niu.mli: Path Rcbr_core Rcbr_fault Rcbr_traffic
