lib/signal/niu.mli: Path Rcbr_core Rcbr_traffic
