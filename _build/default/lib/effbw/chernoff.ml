module Numeric = Rcbr_util.Numeric

type marginal = (float * float) array

let validate m =
  if Array.length m = 0 then invalid_arg "Chernoff: empty marginal";
  let total = ref 0. in
  Array.iter
    (fun (p, _) ->
      if p < 0. then invalid_arg "Chernoff: negative probability";
      total := !total +. p)
    m;
  if Float.abs (!total -. 1.) > 1e-6 then
    invalid_arg "Chernoff: probabilities do not sum to 1"

let mean m = Array.fold_left (fun acc (p, e) -> acc +. (p *. e)) 0. m

let max_level m =
  Array.fold_left
    (fun acc (p, e) -> if p > 0. then max acc e else acc)
    neg_infinity m

let log_mgf m ~theta =
  let terms =
    Array.map
      (fun (p, e) -> if p = 0. then neg_infinity else log p +. (theta *. e))
      m
  in
  Rcbr_util.Numeric.log_sum_exp terms

let rate_function m c =
  let mu = mean m in
  let top = max_level m in
  if c <= mu then 0.
  else if c > top then infinity
  else begin
    let objective theta = (theta *. c) -. log_mgf m ~theta in
    (* The objective is concave; grow the bracket until it is decreasing
       at the right end, then golden-section. *)
    let hi = ref 1. in
    let decreasing_at x = objective x < objective (0.99 *. x) in
    while (not (decreasing_at !hi)) && !hi < 1e9 do
      hi := !hi *. 2.
    done;
    let theta_star = Numeric.golden_max ~f:objective 0. !hi in
    max 0. (objective theta_star)
  end

let overflow_estimate m ~n ~capacity_per_call =
  assert (n > 0);
  let i = rate_function m capacity_per_call in
  if i = infinity then 0. else exp (-.float_of_int n *. i)

let capacity_for_target ?(tol = 1e-6) m ~n ~target =
  assert (target > 0. && target < 1.);
  let lo = mean m and hi = max_level m in
  if overflow_estimate m ~n ~capacity_per_call:lo <= target then lo
  else
    Numeric.find_min_such_that ~tol
      ~pred:(fun c -> overflow_estimate m ~n ~capacity_per_call:c <= target)
      lo hi

let max_calls m ~capacity ~target =
  assert (capacity >= 0.);
  let mu = mean m in
  if mu <= 0. then max_int
  else begin
    let fits n =
      n > 0
      && overflow_estimate m ~n ~capacity_per_call:(capacity /. float_of_int n)
         <= target
    in
    (* Overflow probability is monotone in n (same capacity shared by
       more calls), so binary search over integers. *)
    let upper = int_of_float (capacity /. mu) + 1 in
    if not (fits 1) then 0
    else begin
      let lo = ref 1 and hi = ref upper in
      (* Invariant: fits !lo, not (fits (!hi)) or hi = upper boundary. *)
      if fits upper then upper
      else begin
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if fits mid then lo := mid else hi := mid
        done;
        !lo
      end
    end
  end
