(** Effective / equivalent bandwidth of Markov-modulated sources
    (Section V-A).

    For a Markov additive process with per-slot log moment generating
    function [Lambda(theta)] (the log spectral radius of
    [diag(e^{theta r}) P]), the large-buffer estimate of the overflow
    probability of a buffer [B] drained at rate [c] is
    [exp(-theta_star B)] where [Lambda(theta_star)/theta_star = c].
    Conversely the
    {e equivalent bandwidth} for buffer [B] and loss target [L] is
    [Lambda(theta)/theta] at [theta = -ln L / B].

    All rates and buffer sizes here are in data units per slot / data
    units; callers convert to b/s with the slot duration. *)

val log_mgf : Rcbr_markov.Modulated.t -> theta:float -> float
(** [Lambda(theta)] per slot.  [Lambda(0) = 0]; requires finite
    [theta]. *)

val effective_bandwidth : Rcbr_markov.Modulated.t -> theta:float -> float
(** [Lambda(theta)/theta] for [theta > 0]; tends to the mean rate as
    [theta -> 0] and to the peak rate as [theta -> infinity]. *)

val equivalent_bandwidth :
  Rcbr_markov.Modulated.t -> buffer:float -> target_loss:float -> float
(** Minimum drain rate (data/slot) for overflow probability
    [<= target_loss] with buffer [buffer] (data units), by the
    large-buffer estimate.  Requires [buffer > 0] and
    [0 < target_loss < 1]. *)

val multiscale_equivalent_bandwidth :
  Rcbr_markov.Multiscale.t -> buffer:float -> target_loss:float -> float
(** Formula (9): the equivalent bandwidth of a multiple time-scale source
    is the {e maximum} over its subchains of their equivalent bandwidths
    in isolation — the worst-case subchain dominates. *)

val subchain_equivalent_bandwidths :
  Rcbr_markov.Multiscale.t -> buffer:float -> target_loss:float -> float array
(** The per-subchain values whose max is formula (9); also the rates an
    ideal RCBR source renegotiates to on entering each subchain
    (Section V-A, RCBR scenario). *)

val decay_rate : Rcbr_markov.Modulated.t -> rate:float -> float
(** [theta_star] such that [effective_bandwidth theta_star = rate]: the
    exponential decay rate of the overflow probability in the buffer
    size.  Requires [mean < rate < peak]; returns [infinity] when
    [rate >= peak] and 0 when [rate <= mean]. *)
