lib/effbw/effective_bandwidth.mli: Rcbr_markov
