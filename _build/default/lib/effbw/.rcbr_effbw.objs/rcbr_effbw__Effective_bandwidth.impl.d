lib/effbw/effective_bandwidth.ml: Array Float Rcbr_markov Rcbr_util
