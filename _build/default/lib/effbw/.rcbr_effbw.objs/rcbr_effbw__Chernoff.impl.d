lib/effbw/chernoff.ml: Array Float Rcbr_util
