lib/effbw/chernoff.mli:
