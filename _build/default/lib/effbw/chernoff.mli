(** Chernoff estimates for bufferless statistical multiplexing
    (formulas (10)-(12) of the paper).

    Each of [n] independent calls spends a fraction [p_i] of its time
    demanding bandwidth [e_i]; the probability that the total demand
    exceeds the link capacity [C = n*c] is estimated as
    [exp (-n * I(c))] where [I] is the Legendre transform of the log-MGF
    of the per-call demand.  This is the loss estimate of the shared
    buffer scenario (with [e_i] the subchain mean rates) and the
    renegotiation-failure estimate of RCBR (with [e_i] the subchain
    equivalent bandwidths), and the admission-control test of
    Section VI. *)

type marginal = (float * float) array
(** [(probability, bandwidth)] pairs.  Probabilities must be
    nonnegative and sum to 1 (within 1e-6). *)

val validate : marginal -> unit
(** Raises [Invalid_argument] on a malformed marginal. *)

val mean : marginal -> float
val max_level : marginal -> float

val log_mgf : marginal -> theta:float -> float
(** [log sum_i p_i exp(theta e_i)], computed stably. *)

val rate_function : marginal -> float
  -> float
(** [rate_function m c] = [sup_theta (theta*c - log_mgf m theta)] over
    [theta >= 0].  Zero for [c <= mean m]; [+infinity] for
    [c > max_level m] (and for [c = max_level] it equals
    [-log P(max)]). *)

val overflow_estimate : marginal -> n:int -> capacity_per_call:float -> float
(** [exp (-n * rate_function m c)], the Chernoff estimate of
    [P(sum of n iid demands > n*c)].  Requires [n > 0]. *)

val capacity_for_target :
  ?tol:float -> marginal -> n:int -> target:float -> float
(** Smallest per-call capacity [c] whose {!overflow_estimate} is
    [<= target].  Requires [0 < target < 1].  Returns [max_level] if even
    that cannot meet the target (it always can, conservatively). *)

val max_calls : marginal -> capacity:float -> target:float -> int
(** Formula (12) turned into an admission rule: the largest [n] such that
    [overflow_estimate ~n ~capacity_per_call:(capacity /. n) <= target].
    0 when even one call misses the target. *)
