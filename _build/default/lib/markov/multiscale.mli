(** Multiple time-scale Markov-modulated sources (paper Section V-A,
    Fig. 4).

    The state space is a union of {e subchains}; transitions inside a
    subchain model fast dynamics (frame-to-frame correlation), while rare
    transitions between subchains model slow dynamics (scene changes).
    The rare-transition probabilities [eps] are the small parameters of
    the large-deviations analysis. *)

type subchain = { chain : Chain.t; rates : float array }
(** A fast time-scale subchain with its per-state rates (data/slot). *)

type t

val create : subchain array -> eps:float array array -> t
(** [create subchains ~eps] where [eps.(k).(j)] is the per-slot
    probability of jumping from subchain [k] to subchain [j].  Requires a
    square [eps] with zero diagonal, nonnegative entries and row sums
    < 1.  On a jump the target subchain is entered in a state drawn from
    its stationary distribution. *)

val n_subchains : t -> int
val subchain : t -> int -> subchain
val total_states : t -> int

val leave_probability : t -> int -> float
(** Per-slot probability of leaving the given subchain. *)

val slow_chain : t -> Chain.t
(** The chain over subchain indices: off-diagonal entries [eps], diagonal
    the stay probability. *)

val subchain_occupancy : t -> float array
(** Long-run fraction of time spent in each subchain (stationary law of
    {!slow_chain}). *)

val subchain_mean_rates : t -> float array
(** Stationary mean rate of each subchain considered in isolation — the
    values [m_k] of the paper. *)

val mean_rate : t -> float
(** Overall stationary mean rate: sum over subchains of occupancy times
    subchain mean. *)

val peak_rate : t -> float

val marginal : t -> (float * float) array
(** [(p_k, m_k)] pairs: time fraction and mean rate per subchain — the
    slow-time-scale marginal used in the Chernoff estimates (10)–(12). *)

val flatten : t -> Modulated.t
(** Exact single-chain representation over the union of states.  State
    [(k, s)] maps to index [offset_k + s]. *)

val simulate :
  t -> Rcbr_util.Rng.t -> steps:int -> float array * int array
(** [(data, subchain_index)] per slot, simulated directly on the
    two-level representation (no flattening).  Starts in a subchain drawn
    from {!subchain_occupancy} and a state drawn from that subchain's
    stationary law. *)

val fig4_example : unit -> t
(** The running example of the paper's Fig. 4: three subchains (quiet,
    normal, action) with rate levels spanning a 5x peak-to-mean ratio and
    rare transitions of order 1e-3 per slot. *)
