(** Markov-modulated rate processes.

    A fluid source whose per-slot data volume is a function of the state
    of a finite Markov chain — the basic single time-scale traffic model
    whose equivalent bandwidth the paper's analysis builds on. *)

type t

val create : Chain.t -> rates:float array -> t
(** [create chain ~rates] attaches a per-state rate (data per slot,
    nonnegative) to each chain state.  [rates] length must equal the
    number of states. *)

val chain : t -> Chain.t
val rates : t -> float array
val n_states : t -> int

val mean_rate : t -> float
(** Stationary mean data per slot. *)

val peak_rate : t -> float
(** Maximum per-state rate. *)

val simulate :
  t -> Rcbr_util.Rng.t -> ?init:int -> steps:int -> unit -> float array
(** Per-slot data volumes along a simulated state path.  [init] defaults
    to a state drawn from the stationary distribution. *)

val simulate_states :
  t -> Rcbr_util.Rng.t -> ?init:int -> steps:int -> unit -> int array

val on_off :
  peak:float -> p_on_to_off:float -> p_off_to_on:float -> t
(** Classical two-state on/off source: rate [peak] when on, 0 when off. *)
