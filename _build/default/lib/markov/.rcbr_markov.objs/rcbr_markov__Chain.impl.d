lib/markov/chain.ml: Array Float Rcbr_util
