lib/markov/modulated.ml: Array Chain Rcbr_util
