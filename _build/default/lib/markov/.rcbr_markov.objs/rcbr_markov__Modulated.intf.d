lib/markov/modulated.mli: Chain Rcbr_util
