lib/markov/multiscale.ml: Array Chain Modulated Rcbr_util
