lib/markov/multiscale.mli: Chain Modulated Rcbr_util
