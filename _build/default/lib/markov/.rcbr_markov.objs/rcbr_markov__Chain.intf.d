lib/markov/chain.mli: Rcbr_util
