(** Finite discrete-time Markov chains.

    The traffic models of the paper (Section V-A) are Markov-modulated
    processes; this module supplies the underlying chain machinery:
    validation, stationary distributions, reachability, and simulation. *)

type t

val create : float array array -> t
(** [create p] builds a chain from a stochastic matrix: square,
    nonnegative entries, rows summing to 1 within 1e-9 (rows are
    renormalized exactly).  Raises [Invalid_argument] otherwise. *)

val n_states : t -> int
val prob : t -> int -> int -> float
val matrix : t -> Rcbr_util.Matrix.t

val stationary : t -> float array
(** Stationary distribution [pi] with [pi P = pi], [sum pi = 1], obtained
    by a direct linear solve.  Requires an irreducible chain for the
    result to be the unique stationary law. *)

val is_irreducible : t -> bool
(** True iff the transition graph is strongly connected. *)

val step : t -> Rcbr_util.Rng.t -> int -> int
(** One transition from the given state. *)

val simulate : t -> Rcbr_util.Rng.t -> init:int -> steps:int -> int array
(** State sequence of length [steps], starting from [init] (the initial
    state is included as element 0). *)

val occupancy : int array -> n_states:int -> float array
(** Empirical fraction of time in each state. *)

val uniformize : float array array -> rate:float -> t
(** [uniformize q ~rate] converts a continuous-time generator matrix [q]
    (rows summing to 0, nonnegative off-diagonal) into the discrete
    uniformized chain [I + Q/rate].  Requires [rate >= max_i |q_ii|]. *)
