(** Multi-timescale bandwidth profile: a ladder of token buckets, one
    per time scale, policing the demanded rate of a call (after
    arXiv 1903.08075, "Multi timescale bandwidth profile and its
    application for burst-aware fairness").

    Each scale [i] is a fluid {!Rcbr_traffic.Token_bucket} with token
    rate [rates.(i)] (b/s) and burst allowance [depths.(i)] (bits).
    Short scales carry high rates and shallow buckets (they bound
    bursts), long scales low rates and deep buckets (they bound the
    sustained average).  A call that stays under every scale's
    sustained rate is never policed; a burst spends the stored credit
    of the short scales first and is clipped once any scale runs dry.

    The profile is stateless; per-call bucket state comes from
    {!attach} and is threaded through {!police} by the session layer
    ({!Rcbr_net.Session.decide}) or driver. *)

type profile = {
  rates : float array;  (** sustained token rate per scale, b/s *)
  depths : float array;  (** burst allowance per scale, bits *)
  quantum : float;
      (** policing quantum, seconds: stored credit converts to grantable
          rate as [tokens / quantum] *)
}

val scales : profile -> int

val validate : profile -> unit
(** Asserts equal ladder lengths, a positive quantum and nonnegative
    rates/depths. *)

val ladder : scales:int -> quantum:float -> mean:float -> peak:float -> profile
(** Generic ladder between a peak and a mean rate: scale 0 polices the
    shortest time scale at [peak] with one quantum of credit, the last
    scale polices the long-run [mean]; rates interpolate linearly and
    characteristic times grow x4 per scale. *)

val of_schedule : Rcbr_core.Schedule.t -> scales:int -> base_window:int -> profile
(** Profile derived from a trellis schedule: scale [i] polices windows
    of [base_window * 4^i] slots at the largest average rate the
    schedule itself sustains over any such window, with one window of
    burst-above-rate credit — so the deriving schedule always
    conforms. *)

val attach : profile -> Rcbr_traffic.Token_bucket.t array
(** Fresh per-call bucket ladder, every bucket full. *)

val police : profile -> Rcbr_traffic.Token_bucket.t array ->
  elapsed:float -> applied:float -> demanded:float -> float
(** [police p buckets ~elapsed ~applied ~demanded] settles the
    [elapsed] seconds spent at the [applied] rate against every bucket
    (tokens accrue at the profile rate and drain at the applied rate;
    an overdrawn bucket empties, it carries no debt), then returns the
    granted rate: [demanded] clipped to what every scale can sustain
    for one quantum.  Deterministic, float-order fixed. *)
