module Token_bucket = Rcbr_traffic.Token_bucket
module Schedule = Rcbr_core.Schedule

type profile = {
  rates : float array;
  depths : float array;
  quantum : float;
}

let scales p = Array.length p.rates

let validate p =
  assert (Array.length p.rates >= 1);
  assert (Array.length p.rates = Array.length p.depths);
  assert (p.quantum > 0.);
  Array.iter (fun r -> assert (r >= 0.)) p.rates;
  Array.iter (fun d -> assert (d >= 0.)) p.depths

let ladder ~scales ~quantum ~mean ~peak =
  assert (scales >= 1 && quantum > 0.);
  assert (mean >= 0. && peak >= mean);
  (* Scale 0 polices the shortest time scale at the peak rate with one
     quantum of burst credit; the last scale polices the long-run mean
     with a deep bucket.  Rates interpolate linearly between the two,
     characteristic times grow geometrically (x4 per scale). *)
  let rates =
    Array.init scales (fun i ->
        if scales = 1 then mean
        else
          let f = float_of_int i /. float_of_int (scales - 1) in
          peak +. (f *. (mean -. peak)))
  in
  let depths =
    Array.init scales (fun i -> rates.(i) *. quantum *. (4. ** float_of_int i))
  in
  let p = { rates; depths; quantum } in
  validate p;
  p

let of_schedule schedule ~scales ~base_window =
  assert (scales >= 1 && base_window >= 1);
  let rates_per_slot = Schedule.to_rates schedule in
  let n = Array.length rates_per_slot in
  let fps = Schedule.fps schedule in
  let slot = 1. /. fps in
  (* Scale [i] polices windows of [base_window * 4^i] slots: its token
     rate is the largest average the schedule itself sustains over any
     such window (so the deriving schedule always conforms), its depth
     one window of burst above that rate at the schedule's peak. *)
  let window_mean w =
    let w = min w n in
    let sum = ref 0. in
    for k = 0 to w - 1 do
      sum := !sum +. rates_per_slot.(k)
    done;
    let best = ref !sum in
    for k = w to n - 1 do
      sum := !sum +. rates_per_slot.(k) -. rates_per_slot.(k - w);
      if !sum > !best then best := !sum
    done;
    !best /. float_of_int w
  in
  let peak = Schedule.peak_rate schedule in
  let rates = Array.make scales 0. in
  let depths = Array.make scales 0. in
  for i = 0 to scales - 1 do
    let w = base_window * int_of_float (4. ** float_of_int i) in
    let r = window_mean w in
    rates.(i) <- r;
    depths.(i) <- Float.max (r *. slot) ((peak -. r) *. float_of_int w *. slot)
  done;
  let p = { rates; depths; quantum = slot *. float_of_int base_window } in
  validate p;
  p

let attach p =
  Array.init (Array.length p.rates) (fun i ->
      Token_bucket.create ~rate:p.rates.(i) ~depth:p.depths.(i))

let police p buckets ~elapsed ~applied ~demanded =
  assert (Array.length buckets = Array.length p.rates);
  (* Settle the elapsed interval: tokens accrued at the profile rate
     were spent at the applied rate; a bucket that cannot cover the
     spend empties (sustained non-conformance carries no debt). *)
  if elapsed > 0. then
    Array.iter
      (fun b ->
        Token_bucket.refill b ~dt:elapsed;
        let spent = applied *. elapsed in
        if not (Token_bucket.try_consume b spent) then
          ignore (Token_bucket.try_consume b (Token_bucket.tokens b)))
      buckets;
  (* Grant the largest rate every time scale can sustain for one
     quantum: token rate plus the stored burst credit amortized over
     the quantum. *)
  Array.fold_left
    (fun g b ->
      Float.min g
        (Token_bucket.rate b +. (Token_bucket.tokens b /. p.quantum)))
    demanded buckets
