module Schedule = Rcbr_core.Schedule

type t =
  | Renegotiate
  | Downgrade of { tiers : float array }
  | Mts_profile of Mts.profile

type decision =
  | Grant
  | Downgrade_to of { granted : float; tier : int }
  | Police_to of { granted : float }
  | Settle_floor of { granted : float; tier : int }

let name = function
  | Renegotiate -> "renegotiate"
  | Downgrade _ -> "downgrade"
  | Mts_profile _ -> "mts"

let validate = function
  | Renegotiate -> ()
  | Downgrade { tiers } ->
      assert (Array.length tiers >= 1);
      Array.iteri
        (fun i r ->
          assert (r > 0.);
          if i > 0 then assert (tiers.(i - 1) < r))
        tiers
  | Mts_profile p -> Mts.validate p

let granted_rate decision ~demanded =
  match decision with
  | Grant -> demanded
  | Downgrade_to { granted; _ } | Police_to { granted }
  | Settle_floor { granted; _ } ->
      granted

let downgraded = function
  | Grant -> false
  | Downgrade_to _ | Police_to _ | Settle_floor _ -> true

let decide_tiers ~tiers ~demanded ~fits =
  if fits demanded then Grant
  else begin
    (* Walk the ladder downward from the highest tier strictly below
       the demanded rate; grant the first that fits.  If nothing fits —
       including the floor — the call settles at the floor anyway
       (settle semantics: the overload shows up in the accounting). *)
    let k = ref (Array.length tiers - 1) in
    while !k >= 0 && tiers.(!k) >= demanded do
      decr k
    done;
    let rec walk k =
      if k < 0 then
        Settle_floor { granted = Float.min demanded tiers.(0); tier = 0 }
      else if fits tiers.(k) then Downgrade_to { granted = tiers.(k); tier = k }
      else walk (k - 1)
    in
    walk !k
  end

let upgrade ~tiers ~demanded ~applied ~fits =
  if demanded <= applied then None
  else if fits demanded then Some demanded
  else begin
    (* Highest tier above the applied rate and at most the demanded
       rate that fits; partial restorations are fine — the next spare-
       capacity event climbs further. *)
    let k = ref (Array.length tiers - 1) in
    while !k >= 0 && tiers.(!k) > demanded do
      decr k
    done;
    let rec walk k =
      if k < 0 || tiers.(k) <= applied then None
      else if fits tiers.(k) then Some tiers.(k)
      else walk (k - 1)
    in
    walk !k
  end

let tiers_of_schedule schedule ~n =
  assert (n >= 1);
  let segs = Schedule.segments schedule in
  let rates =
    Array.to_list (Array.map (fun s -> s.Schedule.rate) segs)
    |> List.sort_uniq Float.compare
    |> Array.of_list
  in
  let m = Array.length rates in
  if n >= m then rates
  else
    (* Evenly spaced picks including the min and max rate, deduped. *)
    Array.init n (fun i -> rates.(i * (m - 1) / (max 1 (n - 1))))
    |> Array.to_list |> List.sort_uniq Float.compare |> Array.of_list

let spec_doc =
  "renegotiate (settle semantics, the paper's RCBR service), downgrade \
   (tiered admission with opportunistic upgrades; optionally \
   downgrade:N for an N-tier ladder or downgrade:R1,R2,... for \
   explicit rates in b/s), or mts (multi-timescale token-bucket \
   profile policing)"

let parse_tier_list arg =
  let parts = String.split_on_char ',' arg in
  match
    List.map
      (fun s ->
        match float_of_string_opt (String.trim s) with
        | Some r when r > 0. -> r
        | _ -> raise Exit)
      parts
  with
  | rates -> Ok (Array.of_list (List.sort_uniq Float.compare rates))
  | exception Exit -> Error (Printf.sprintf "bad tier list %S" arg)

let of_spec spec ~default_tiers ~default_mts =
  match String.split_on_char ':' spec with
  | [ "renegotiate" ] -> Ok Renegotiate
  | [ "downgrade" ] -> Ok (Downgrade { tiers = default_tiers None })
  | [ "downgrade"; arg ] -> (
      match int_of_string_opt arg with
      | Some n when n >= 1 -> Ok (Downgrade { tiers = default_tiers (Some n) })
      | Some _ -> Error (Printf.sprintf "tier count in %S must be >= 1" spec)
      | None -> (
          match parse_tier_list arg with
          | Ok tiers -> Ok (Downgrade { tiers })
          | Error _ as e -> e))
  | [ "mts" ] -> Ok (Mts_profile (default_mts ()))
  | _ ->
      Error
        (Printf.sprintf
           "service %S is not renegotiate, downgrade[:TIERS] or mts" spec)
