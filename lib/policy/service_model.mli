(** The service-model contract: what a network does when a call's
    demanded rate does not fit (DESIGN.md section 15).

    The admission kernel ({!Rcbr_admission.Controller.decide}), the
    session layer ({!Rcbr_net.Session.decide} / the
    {!Rcbr_net.Store} ladder queries) and every call-level simulator
    are parameterized by a value of this type instead of hard-wiring
    settle semantics.  The type is a closed variant on purpose: models
    must be nameable from a CLI flag ({!of_spec}), deterministic, and
    free of hidden state — a closure-based registry could smuggle
    wall-clock or RNG reads past the determinism lints.

    - {!Renegotiate} — the paper's RCBR service and this repo's seed
      behaviour: a change that does not fit is counted as denied and
      settles anyway (the overload shows up in the demand accounting).
      Every driver's [Renegotiate] branch preserves its historical
      float expressions verbatim, so results are bit-identical to the
      pre-refactor code — the refactor's correctness anchor.
    - {!Downgrade} — tiered admission per arXiv 1604.00894: a change
      that does not fit walks a rate ladder downward and is granted at
      the highest tier that does; if nothing fits the call settles at
      the floor tier.  Downgraded calls are upgraded opportunistically
      on spare-capacity (departure) events, in deterministic order.
    - {!Mts_profile} — the demanded rate is policed per change against
      a per-call multi-timescale token-bucket ladder ({!Mts}); the
      granted (possibly clipped) rate settles.  Capacity overload is
      prevented statistically by the profile, not per-link. *)

type t =
  | Renegotiate
  | Downgrade of { tiers : float array }
      (** strictly ascending rate ladder, b/s; [tiers.(0)] is the floor *)
  | Mts_profile of Mts.profile

(** What the model decided for one demanded rate change.  The decision
    carries the granted rate; the caller settles it on the links and
    does its own (driver-specific) counting. *)
type decision =
  | Grant  (** the demanded rate applies as-is *)
  | Downgrade_to of { granted : float; tier : int }
      (** the demanded tier did not fit; a lower one did *)
  | Police_to of { granted : float }
      (** the MTS profile clipped the demanded rate *)
  | Settle_floor of { granted : float; tier : int }
      (** no tier fit; the call settles at the floor anyway *)

val name : t -> string
(** ["renegotiate"], ["downgrade"] or ["mts"]. *)

val validate : t -> unit
(** Asserts ladder shape (nonempty, strictly ascending, positive) and
    profile well-formedness. *)

val granted_rate : decision -> demanded:float -> float
(** The rate the decision actually grants ([demanded] for {!Grant}). *)

val downgraded : decision -> bool
(** Whether the decision granted less than demanded. *)

val decide_tiers :
  tiers:float array -> demanded:float -> fits:(float -> bool) -> decision
(** The {!Downgrade} ladder walk.  [fits rate] probes whether the
    candidate rate fits on the caller's route; probes run highest tier
    first and stop at the first fit, so the probe count is
    deterministic.  Never returns {!Police_to}. *)

val upgrade :
  tiers:float array -> demanded:float -> applied:float ->
  fits:(float -> bool) -> float option
(** Spare-capacity upgrade for a downgraded call: the demanded rate if
    it fits, else the highest ladder tier above [applied] and at most
    [demanded] that fits.  [None] when the call is already whole or
    nothing fits. *)

val tiers_of_schedule : Rcbr_core.Schedule.t -> n:int -> float array
(** Rate ladder derived from a trellis schedule: up to [n] evenly
    spaced picks from the schedule's distinct segment rates (always
    including the minimum and maximum), strictly ascending. *)

val of_spec :
  string ->
  default_tiers:(int option -> float array) ->
  default_mts:(unit -> Mts.profile) ->
  (t, string) result
(** Parse a CLI service spec: [renegotiate], [downgrade],
    [downgrade:N] (ladder of [N] tiers from [default_tiers (Some n)]),
    [downgrade:R1,R2,...] (explicit b/s rates, sorted and deduped) or
    [mts] (profile from [default_mts ()]). *)

val spec_doc : string
(** One-sentence description of the spec grammar for CLI --service
    documentation. *)
