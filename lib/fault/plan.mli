(** Declarative, seeded fault plans for the signalling path.

    A plan describes {e what can go wrong} on each hop of a connection:
    RM cells may be dropped, duplicated, reordered, or delayed on every
    link they cross, and individual switch ports may crash (losing all
    reservations) and later recover (re-admitting from empty).  A plan
    is pure data — deterministic given its seed — so any faulty run is
    exactly reproducible.  {!Injector} turns a plan into a live stream
    of per-cell fault decisions. *)

type link = {
  drop : float;  (** probability a cell vanishes on this link *)
  duplicate : float;  (** probability a second copy arrives right behind *)
  reorder : float;  (** probability the cell falls behind its successor
                        (delivered one slot late) *)
  delay : float;  (** probability of queueing delay on this link *)
  corrupt : float;
      (** probability the payload is bit-flipped in transit.  At the
          cell level ({!Injector}) a corrupted cell fails its CRC and is
          discarded like a drop; at the byte level
          ({!Rcbr_wire.Mangle}) the mangled frame is delivered and must
          be rejected by the parser. *)
  max_extra_slots : int;  (** delayed cells lag 1..max extra slots *)
}

val reliable : link
(** The zero-fault link. *)

val lossy :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?delay:float ->
  ?corrupt:float ->
  ?max_extra_slots:int ->
  unit ->
  link
(** A link with the given fault probabilities (all default 0;
    [max_extra_slots] defaults to 4). *)

type crash = {
  hop : int;  (** 0-based hop index of the crashing port *)
  at_slot : int;  (** the port goes down at this slot... *)
  recover_slot : int;  (** ...and comes back, empty, at this one *)
}

type t = {
  seed : int;  (** root of all fault randomness *)
  links : link array;  (** one entry per hop *)
  crashes : crash list;
}

val link_is_reliable : link -> bool

val null : hops:int -> t
(** The plan under which nothing ever goes wrong.  Running any faulty
    machinery under the null plan must reproduce the fault-free
    behaviour bit for bit. *)

val is_null : t -> bool

val uniform :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?delay:float ->
  ?corrupt:float ->
  ?max_extra_slots:int ->
  ?crashes:crash list ->
  hops:int ->
  seed:int ->
  unit ->
  t
(** The same fault probabilities on every hop. *)

val validate : t -> unit
(** Raises [Invalid_argument] if any probability lies outside [0, 1],
    the per-link fault probabilities sum past 1, a crash window is
    empty or negative, or a crash names a hop outside [links]. *)
