module Rng = Rcbr_util.Rng

type fate = Deliver | Drop | Duplicate | Delay of int

type totals = {
  sent : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
}

(* lint: allow R001 — [totals] is immutable; its field names merely
   shadow [t]'s mutable counters *)
let no_totals = { sent = 0; dropped = 0; duplicated = 0; delayed = 0; reordered = 0 }

type t = {
  plan : Plan.t;
  hop_rng : Rng.t array;
  source_rng : Rng.t;
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;
}

let create plan =
  Plan.validate plan;
  let root = Rng.create plan.Plan.seed in
  (* One independent stream per hop so the decision sequence on a hop
     does not depend on traffic crossing the others. *)
  let hop_rng = Array.map (fun _ -> Rng.split root) plan.Plan.links in
  {
    plan;
    hop_rng;
    source_rng = Rng.split root;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    reordered = 0;
  }

let plan t = t.plan
let hops t = Array.length t.hop_rng

let fate t ~hop =
  t.sent <- t.sent + 1;
  let l = t.plan.Plan.links.(hop) in
  if Plan.link_is_reliable l then Deliver
  else
    let rng = t.hop_rng.(hop) in
    let u = Rng.float rng in
    if u < l.Plan.drop then begin
      t.dropped <- t.dropped + 1;
      Drop
    end
    else if u < l.Plan.drop +. l.Plan.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Duplicate
    end
    else if u < l.Plan.drop +. l.Plan.duplicate +. l.Plan.reorder then begin
      t.reordered <- t.reordered + 1;
      Delay 1
    end
    else if u < l.Plan.drop +. l.Plan.duplicate +. l.Plan.reorder +. l.Plan.delay
    then begin
      t.delayed <- t.delayed + 1;
      Delay (1 + Rng.int rng l.Plan.max_extra_slots)
    end
    else if
      u
      < l.Plan.drop +. l.Plan.duplicate +. l.Plan.reorder +. l.Plan.delay
        +. l.Plan.corrupt
    then begin
      (* At the cell level a corrupted cell fails its CRC on arrival and
         is discarded — indistinguishable from a drop for the protocol
         machinery above.  The byte-level mangler delivers the damage
         instead (Rcbr_wire.Mangle). *)
      t.dropped <- t.dropped + 1;
      Drop
    end
    else Deliver

let jitter t n =
  assert (n >= 0);
  if n = 0 then 0 else Rng.int t.source_rng (n + 1)

let down t ~hop ~slot =
  List.exists
    (fun c ->
      c.Plan.hop = hop && slot >= c.Plan.at_slot && slot < c.Plan.recover_slot)
    t.plan.Plan.crashes

let totals t =
  {
    sent = t.sent;
    dropped = t.dropped;
    duplicated = t.duplicated;
    delayed = t.delayed;
    reordered = t.reordered;
  }

let pp_totals ppf (s : totals) =
  Format.fprintf ppf
    "cells sent %d, dropped %d, duplicated %d, delayed %d, reordered %d" s.sent
    s.dropped s.duplicated s.delayed s.reordered
