type link = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay : float;
  corrupt : float;
  max_extra_slots : int;
}

let reliable =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    delay = 0.;
    corrupt = 0.;
    max_extra_slots = 0;
  }

let lossy ?(drop = 0.) ?(duplicate = 0.) ?(reorder = 0.) ?(delay = 0.)
    ?(corrupt = 0.) ?(max_extra_slots = 4) () =
  { drop; duplicate; reorder; delay; corrupt; max_extra_slots }

type crash = { hop : int; at_slot : int; recover_slot : int }
type t = { seed : int; links : link array; crashes : crash list }

let null ~hops = { seed = 0; links = Array.make hops reliable; crashes = [] }

let link_is_reliable l =
  Float.equal l.drop 0. && Float.equal l.duplicate 0. && Float.equal l.reorder 0. && Float.equal l.delay 0.
  && Float.equal l.corrupt 0.

let is_null t = t.crashes = [] && Array.for_all link_is_reliable t.links

let validate t =
  let prob what p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Fault plan: %s probability %g not in [0,1]" what p)
  in
  Array.iter
    (fun l ->
      prob "drop" l.drop;
      prob "duplicate" l.duplicate;
      prob "reorder" l.reorder;
      prob "delay" l.delay;
      prob "corrupt" l.corrupt;
      if l.drop +. l.duplicate +. l.reorder +. l.delay +. l.corrupt > 1. then
        invalid_arg "Fault plan: per-link fault probabilities sum past 1";
      if l.delay > 0. && l.max_extra_slots < 1 then
        invalid_arg "Fault plan: delaying link needs max_extra_slots >= 1")
    t.links;
  List.iter
    (fun c ->
      if c.hop < 0 || c.hop >= Array.length t.links then
        invalid_arg (Printf.sprintf "Fault plan: crash at unknown hop %d" c.hop);
      if c.recover_slot <= c.at_slot then
        invalid_arg "Fault plan: crash must recover strictly after it starts")
    t.crashes

let uniform ?(drop = 0.) ?(duplicate = 0.) ?(reorder = 0.) ?(delay = 0.)
    ?(corrupt = 0.) ?(max_extra_slots = 4) ?(crashes = []) ~hops ~seed () =
  let t =
    {
      seed;
      links =
        Array.make hops
          (lossy ~drop ~duplicate ~reorder ~delay ~corrupt ~max_extra_slots ());
      crashes;
    }
  in
  validate t;
  t
