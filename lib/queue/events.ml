type t = { mutable clock : float; queue : (t -> unit) Wheel.t }
type token = { q : (t -> unit) Wheel.t; h : (t -> unit) Wheel.handle }

let create () = { clock = 0.; queue = Wheel.create () }
let now t = t.clock

let schedule_token t ~at f =
  assert (at >= t.clock);
  { q = t.queue; h = Wheel.push t.queue ~time:at f }

let schedule t ~at f = ignore (schedule_token t ~at f)

let schedule_after t ~delay f =
  assert (delay >= 0.);
  schedule t ~at:(t.clock +. delay) f

let cancel tok = Wheel.cancel tok.q tok.h
let cancelled tok = not (Wheel.live tok.h)

let step t =
  match Wheel.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      f t;
      true

let run ?(until = infinity) t =
  let continue_ = ref true in
  while !continue_ do
    match Wheel.peek t.queue with
    | None -> continue_ := false
    | Some (at, _) ->
        if at > until then continue_ := false
        else ignore (step t)
  done

let advance_to t ~at =
  assert (at >= t.clock);
  run ~until:at t;
  if at > t.clock then t.clock <- at

let pending t = Wheel.length t.queue
