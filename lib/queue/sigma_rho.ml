module Trace = Rcbr_traffic.Trace
module Numeric = Rcbr_util.Numeric

let loss_at ~trace ~buffer ~rate =
  (* Bits still buffered when the trace ends were never delivered; for a
     finite session they count against the service, otherwise a huge
     buffer would let the minimum rate fall below the source mean. *)
  let r = Fluid.run_constant ~capacity:buffer ~rate trace in
  if Float.equal r.Fluid.bits_offered 0. then 0.
  else (r.Fluid.bits_lost +. r.Fluid.final_backlog) /. r.Fluid.bits_offered

let min_rate ?(tol = 1e-4) ~trace ~buffer ~target_loss () =
  assert (buffer >= 0. && target_loss >= 0.);
  let hi = Trace.peak_rate trace in
  let pred r = loss_at ~trace ~buffer ~rate:r <= target_loss in
  Numeric.find_min_such_that ~tol ~pred 0. hi

let min_buffer ?(tol = 1e-4) ~trace ~rate ~target_loss () =
  assert (rate >= 0. && target_loss >= 0.);
  (* The max backlog of an infinite buffer bounds the needed size. *)
  let unlimited = Fluid.run_constant ~capacity:infinity ~rate trace in
  let hi = unlimited.Fluid.max_backlog in
  if Float.equal hi 0. then 0.
  else
    let pred b = loss_at ~trace ~buffer:b ~rate <= target_loss in
    Numeric.find_min_such_that ~tol ~pred 0. hi

let curve ?tol ~trace ~buffers ~target_loss () =
  Array.map
    (fun buffer -> (buffer, min_rate ?tol ~trace ~buffer ~target_loss ()))
    buffers
