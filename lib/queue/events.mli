(** Minimal discrete-event simulation engine.

    Drives the call-level experiments (Poisson arrivals, renegotiation
    events, departures).  Events at equal times fire in scheduling order,
    so simulations are deterministic.  Backed by the {!Wheel} calendar
    queue, whose pop order is property-tested identical to the binary
    {!Rcbr_util.Heap} it replaced. *)

type t

type token
(** A scheduled event that can still be {!cancel}led. *)

val create : unit -> t

val now : t -> float
(** Current simulation time; 0 before any event has fired. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** Requires [at >= now t]. *)

val schedule_token : t -> at:float -> (t -> unit) -> token
(** Like {!schedule} but returns a cancellation token. *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Requires [delay >= 0]. *)

val cancel : token -> unit
(** Remove the event from the queue if it has not fired yet; it will
    never run.  No-op once fired or already cancelled, so holders need
    not track firing themselves. *)

val cancelled : token -> bool
(** Whether the event is gone (fired or cancelled). *)

val step : t -> bool
(** Fire the earliest pending event.  False when none are pending. *)

val run : ?until:float -> t -> unit
(** Fire events until the queue is empty or the next event is past
    [until] (events at exactly [until] still fire).  The clock is left
    at the last fired event — use {!advance_to} when [now] must end up
    at the bound itself. *)

val advance_to : t -> at:float -> unit
(** [run ~until:at] and then advance the clock to exactly [at], so
    [now t = at] even when the last event fired earlier (or no event
    fired at all).  Requires [at >= now t]. *)

val pending : t -> int
(** Live (not cancelled) scheduled events. *)
