module Trace = Rcbr_traffic.Trace

type t = { cap : float; mutable backlog : float }

type result = {
  bits_offered : float;
  bits_lost : float;
  max_backlog : float;
  final_backlog : float;
}

let loss_fraction r =
  if Float.equal r.bits_offered 0. then 0. else r.bits_lost /. r.bits_offered

let create ~capacity =
  assert (capacity >= 0.);
  { cap = capacity; backlog = 0. }

let capacity t = t.cap
let backlog t = t.backlog

let offer t bits =
  assert (bits >= 0.);
  let room = t.cap -. t.backlog in
  let accepted = min bits room in
  t.backlog <- t.backlog +. accepted;
  bits -. accepted

let drain t bits =
  assert (bits >= 0.);
  t.backlog <- Float.max 0. (t.backlog -. bits)

let reset t = t.backlog <- 0.

let run_per_slot ~capacity ~slots ~arrival ~drain_per_slot =
  (* Paper convention (formula (3)): arrivals and service within a slot
     net out, and the post-drain backlog must fit the buffer; the excess
     is lost. *)
  let backlog = ref 0. in
  let offered = ref 0. and lost = ref 0. and peak = ref 0. in
  for i = 0 to slots - 1 do
    let bits = arrival i in
    offered := !offered +. bits;
    let net = !backlog +. bits -. drain_per_slot i in
    backlog := Float.min capacity (Float.max 0. net);
    lost := !lost +. Float.max 0. (net -. capacity);
    if !backlog > !peak then peak := !backlog
  done;
  {
    bits_offered = !offered;
    bits_lost = !lost;
    max_backlog = !peak;
    final_backlog = !backlog;
  }

(* Constant drain over a flat array, without the per-slot closure calls
   of [run_per_slot]: this is the inner kernel of every sigma-rho and
   SMG bisection, executed ~30 times per search point. *)
let run_constant_array ~capacity ~per_slot frames =
  let backlog = ref 0. in
  let offered = ref 0. and lost = ref 0. and peak = ref 0. in
  for i = 0 to Array.length frames - 1 do
    let bits = frames.(i) in
    offered := !offered +. bits;
    let net = !backlog +. bits -. per_slot in
    backlog := Float.min capacity (Float.max 0. net);
    lost := !lost +. Float.max 0. (net -. capacity);
    if !backlog > !peak then peak := !backlog
  done;
  {
    bits_offered = !offered;
    bits_lost = !lost;
    max_backlog = !peak;
    final_backlog = !backlog;
  }

let run_constant ~capacity ~rate trace =
  assert (rate >= 0.);
  let per_slot = rate /. Trace.fps trace in
  run_constant_array ~capacity ~per_slot (Trace.raw_frames trace)

let run_schedule ~capacity ~rate_per_slot trace =
  let dt = Trace.slot_duration trace in
  run_per_slot ~capacity ~slots:(Trace.length trace)
    ~arrival:(fun i -> Trace.frame trace i)
    ~drain_per_slot:(fun i -> rate_per_slot i *. dt)

let run_aggregate ~capacity ~rate ~fps sources =
  assert (rate >= 0. && fps > 0.);
  assert (Array.length sources > 0);
  let n = Array.length sources.(0) in
  Array.iter (fun s -> assert (Array.length s = n)) sources;
  let per_slot = rate /. fps in
  if Array.length sources = 1 then
    run_constant_array ~capacity ~per_slot sources.(0)
  else
    run_per_slot ~capacity ~slots:n
      ~arrival:(fun i -> Array.fold_left (fun acc s -> acc +. s.(i)) 0. sources)
      ~drain_per_slot:(fun _ -> per_slot)
