(* Calendar queue (a flat timing wheel with an adaptive day width).

   Buckets partition time into equal-width "days"; day [d] covers
   [d*width, (d+1)*width) and lives in bucket [d mod n_buckets].  Each
   bucket keeps its pending entries sorted by (time, seq) in a packed
   array with a head index, so the next event of the current day is the
   bucket head.  A pop scans forward day by day from the cursor; a push
   behind the cursor pulls it back.  The bucket count and width are
   rebuilt from the live population when density drifts, which keeps
   both the per-day scan and the per-bucket insertion O(1) amortized
   for the event populations simulations produce.

   Day membership is always decided by [floor (time / width)] — never
   by comparing against a precomputed day boundary — so bucketing,
   firing and cursor pull-back use the same rounding and cannot
   disagree about which day an entry belongs to.  Ties fire in push
   order via the global [seq], matching {!Rcbr_util.Heap}'s
   (priority, seq) order exactly. *)

type 'a entry = {
  time : float;
  seq : int;
  mutable live : bool;
  value : 'a;
}

type 'a handle = 'a entry

type 'a t = {
  mutable buckets : 'a entry array array;
  mutable lens : int array;  (* entries occupy [heads.(b), lens.(b)) *)
  mutable heads : int array;
  mutable width : float;  (* day length in time units, > 0 *)
  mutable vday : float;  (* cursor: current day index (integer-valued) *)
  mutable cur : int;  (* vday's bucket: vday mod n_buckets *)
  mutable size : int;  (* live entries *)
  mutable dead : int;  (* cancelled entries still buried in buckets *)
  mutable next_seq : int;
}

let min_width = 1e-9
let min_buckets = 16

let create () =
  {
    buckets = Array.make min_buckets [||];
    lens = Array.make min_buckets 0;
    heads = Array.make min_buckets 0;
    width = 1.;
    vday = 0.;
    cur = 0;
    size = 0;
    dead = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let entry_before a b =
  a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let day_of t time = Float.floor (time /. t.width)

let bucket_of_day t vd =
  (* vd is a nonnegative integer-valued float and the bucket count is a
     power of two, so the remainder is exact. *)
  int_of_float (Float.rem vd (float_of_int (Array.length t.buckets)))

let set_cursor t time =
  let vd = day_of t time in
  t.vday <- vd;
  t.cur <- bucket_of_day t vd

(* Drop cancelled entries buried at the head of bucket [b]. *)
let purge_head t b =
  let data = t.buckets.(b) in
  let h = ref t.heads.(b) in
  let len = t.lens.(b) in
  while !h < len && not data.(!h).live do
    incr h;
    t.dead <- t.dead - 1
  done;
  if !h = len then begin
    t.heads.(b) <- 0;
    t.lens.(b) <- 0
  end
  else t.heads.(b) <- !h

let insert_bucket t b e =
  let h = t.heads.(b) and len = t.lens.(b) in
  (* Lower bound: first position in [h, len) holding an entry that
     fires after [e].  [e]'s seq is the largest so far, so among equal
     times it lands last — FIFO. *)
  let lo = ref h and hi = ref len in
  let data = ref t.buckets.(b) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if entry_before e !data.(mid) then hi := mid else lo := mid + 1
  done;
  let pos = !lo in
  if pos = h && h > 0 then begin
    (* Slot before the head is free (already popped): O(1) insert. *)
    !data.(h - 1) <- e;
    t.heads.(b) <- h - 1
  end
  else begin
    if len = Array.length !data then begin
      let ndata = Array.make (max 8 (2 * len)) e in
      Array.blit !data 0 ndata 0 len;
      t.buckets.(b) <- ndata;
      data := ndata
    end;
    Array.blit !data pos !data (pos + 1) (len - pos);
    !data.(pos) <- e;
    t.lens.(b) <- len + 1
  end

let next_pow2 n =
  let p = ref 1 in
  while !p < n do
    p := !p * 2
  done;
  !p

(* Rebuild the bucket array from the live population: new bucket count
   ~ size, new width ~ 3x the mean gap between live entries.  Also
   flushes cancelled entries.  Deterministic: depends only on the live
   (time, seq) multiset and the old width. *)
let rebuild t =
  let pending = Array.make t.size None in
  let k = ref 0 in
  Array.iteri
    (fun b data ->
      for i = t.heads.(b) to t.lens.(b) - 1 do
        let e = data.(i) in
        if e.live then begin
          pending.(!k) <- Some e;
          incr k
        end
      done)
    t.buckets;
  assert (!k = t.size);
  let entries =
    Array.map (function Some e -> e | None -> assert false) pending
  in
  Array.sort
    (fun a b ->
      let c = Float.compare a.time b.time in
      if c <> 0 then c else Int.compare a.seq b.seq)
    entries;
  let n = Array.length entries in
  let nb = min (1 lsl 22) (next_pow2 (max min_buckets n)) in
  let width =
    if n >= 2 then begin
      let span = entries.(n - 1).time -. entries.(0).time in
      let w = 3. *. span /. float_of_int n in
      if Float.is_finite w && w > min_width then w else t.width
    end
    else t.width
  in
  t.buckets <- Array.make nb [||];
  t.lens <- Array.make nb 0;
  t.heads <- Array.make nb 0;
  t.width <- width;
  t.dead <- 0;
  (* Entries arrive globally sorted, so per-bucket appends stay
     sorted. *)
  Array.iter
    (fun e ->
      let b = bucket_of_day t (day_of t e.time) in
      let len = t.lens.(b) in
      let data = t.buckets.(b) in
      if len = Array.length data then begin
        let ndata = Array.make (max 8 (2 * len)) e in
        Array.blit data 0 ndata 0 len;
        t.buckets.(b) <- ndata
      end;
      t.buckets.(b).(len) <- e;
      t.lens.(b) <- len + 1)
    entries;
  if n > 0 then set_cursor t entries.(0).time

let push t ~time value =
  if not (Float.is_finite time && time >= 0.) then
    invalid_arg "Wheel.push: time must be finite and non-negative";
  let e = { time; seq = t.next_seq; live = true; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size + t.dead + 1 > 2 * Array.length t.buckets then rebuild t;
  let b = bucket_of_day t (day_of t time) in
  insert_bucket t b e;
  t.size <- t.size + 1;
  if t.size = 1 || day_of t time < t.vday then set_cursor t time;
  e

(* Find the bucket whose head is the global minimum, advancing the
   cursor to it.  Scans at most one full lap day by day; if a lap
   finds nothing (entries far in the future, or a cursor day index too
   large for float increments) it locates the minimum directly. *)
let locate t =
  if t.size = 0 then None
  else begin
    let nb = Array.length t.buckets in
    let steps = ref 0 in
    let found = ref (-1) in
    while !found < 0 do
      if !steps > nb then begin
        let best = ref (-1) in
        for b = 0 to nb - 1 do
          purge_head t b;
          if t.heads.(b) < t.lens.(b) then
            let e = t.buckets.(b).(t.heads.(b)) in
            if
              !best < 0
              || entry_before e t.buckets.(!best).(t.heads.(!best))
            then best := b
        done;
        assert (!best >= 0);
        set_cursor t t.buckets.(!best).(t.heads.(!best)).time;
        found := !best
      end
      else begin
        let b = t.cur in
        purge_head t b;
        if
          t.heads.(b) < t.lens.(b)
          && day_of t t.buckets.(b).(t.heads.(b)).time <= t.vday
        then found := b
        else begin
          let vd = t.vday +. 1. in
          t.vday <- vd;
          t.cur <- bucket_of_day t vd;
          incr steps
        end
      end
    done;
    Some !found
  end

let peek t =
  match locate t with
  | None -> None
  | Some b ->
      let e = t.buckets.(b).(t.heads.(b)) in
      Some (e.time, e.value)

let pop t =
  match locate t with
  | None -> None
  | Some b ->
      let h = t.heads.(b) in
      let e = t.buckets.(b).(h) in
      let h = h + 1 in
      if h = t.lens.(b) then begin
        t.heads.(b) <- 0;
        t.lens.(b) <- 0
      end
      else t.heads.(b) <- h;
      e.live <- false;
      t.size <- t.size - 1;
      if
        Array.length t.buckets > min_buckets
        && 4 * (t.size + t.dead) < Array.length t.buckets
      then rebuild t;
      Some (e.time, e.value)

let cancel t e =
  if e.live then begin
    e.live <- false;
    t.size <- t.size - 1;
    t.dead <- t.dead + 1;
    if t.dead > 64 && t.dead > t.size then rebuild t
  end

let live e = e.live

let clear t =
  let nb = Array.length t.buckets in
  t.buckets <- Array.make nb [||];
  Array.fill t.lens 0 nb 0;
  Array.fill t.heads 0 nb 0;
  t.size <- 0;
  t.dead <- 0;
  t.vday <- 0.;
  t.cur <- 0
