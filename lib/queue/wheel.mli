(** Calendar-queue priority queue (flat timing wheel with an adaptive
    day width) for massive event populations.

    Drop-in order-compatible with {!Rcbr_util.Heap}: entries are keyed
    by a float time, ties fire in push order (a global sequence
    number), and the (time, seq) pop order is identical to the heap's
    — property-tested in [test/test_queue.ml].  Unlike the heap it
    hands out a {!handle} per entry, so pending events can be
    cancelled in O(1) without tombstone closures; cancelled entries
    are skipped lazily and flushed when they outnumber live ones.

    Push and pop are O(1) amortized when the population's event times
    are spread over the active window (the calendar-queue regime);
    the structure rebuilds its bucket count and day width from the
    live population as it grows or drains.  Times must be finite and
    non-negative. *)

type 'a t

type 'a handle
(** One scheduled entry; valid for the queue that returned it. *)

val create : unit -> 'a t
val length : 'a t -> int
(** Live (not cancelled, not yet popped) entries. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> 'a handle
(** Schedule a value.  Requires a finite [time >= 0].  Entries pushed
    at equal times pop in push order. *)

val peek : 'a t -> (float * 'a) option
(** Earliest live entry without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live entry. *)

val cancel : 'a t -> 'a handle -> unit
(** Remove the entry if it is still pending; no-op after it has popped
    or been cancelled already (safe to call twice). *)

val live : 'a handle -> bool
(** Whether the entry is still pending (not popped, not cancelled). *)

val clear : 'a t -> unit
