module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Heap = Rcbr_util.Heap

type source =
  | Paced of { schedule : Rcbr_core.Schedule.t; offset : float }
  | Frame_burst of { trace : Rcbr_traffic.Trace.t; line_rate : float }

type stats = {
  cells : int;
  lost : int;
  max_queue : int;
  mean_queue : float;
  p99_queue : int;
  max_delay : float;
}

(* A generator produces the next cell arrival time of one source, or
   None when the source is done. *)
type generator = { next : unit -> float option }

let paced_generator schedule ~offset ~duration =
  let segs = Schedule.segments schedule in
  let n_segs = Array.length segs in
  let fps = Schedule.fps schedule in
  let seg_start i = float_of_int segs.(i).Schedule.start_slot /. fps in
  let seg_stop i =
    if i + 1 < n_segs then seg_start (i + 1)
    else float_of_int (Schedule.n_slots schedule) /. fps
  in
  let idx = ref 0 in
  let clock = ref offset in
  let rec next () =
    if !idx >= n_segs then None
    else begin
      let rate = segs.(!idx).Schedule.rate in
      let stop = seg_stop !idx +. offset in
      if rate <= 0. || !clock < seg_start !idx +. offset then begin
        (* Idle segment (or clock behind after a segment change): jump
           to the segment boundary. *)
        if rate <= 0. then begin
          incr idx;
          clock := Float.max !clock stop;
          next ()
        end
        else begin
          clock := seg_start !idx +. offset;
          next ()
        end
      end
      else if !clock >= stop then begin
        incr idx;
        next ()
      end
      else if !clock > duration then None
      else begin
        let t = !clock in
        clock := !clock +. (1. /. Cell.cell_rate ~rate);
        Some t
      end
    end
  in
  { next }

let burst_generator trace ~line_rate ~duration =
  assert (line_rate > 0.);
  let fps = Trace.fps trace in
  let spacing = Cell.wire_bits /. line_rate in
  let frame = ref 0 in
  let cell_in_frame = ref 0 in
  let cells_this_frame = ref (Cell.cells_of_bits (Trace.frame trace 0)) in
  let rec next () =
    if !frame >= Trace.length trace then None
    else if !cell_in_frame >= !cells_this_frame then begin
      incr frame;
      cell_in_frame := 0;
      if !frame < Trace.length trace then
        cells_this_frame := Cell.cells_of_bits (Trace.frame trace !frame);
      next ()
    end
    else begin
      let t =
        (float_of_int !frame /. fps)
        +. (float_of_int !cell_in_frame *. spacing)
      in
      incr cell_in_frame;
      if t > duration then None else Some t
    end
  in
  { next }

let arrivals ~sources ~duration =
  let heap = Heap.create () in
  List.iteri
    (fun i src ->
      let g =
        match src with
        | Paced { schedule; offset } ->
            paced_generator schedule ~offset ~duration
        | Frame_burst { trace; line_rate } ->
            burst_generator trace ~line_rate ~duration
      in
      match g.next () with
      | Some t -> Heap.push heap ~priority:t (i, g)
      | None -> ())
    sources;
  let rec seq () =
    match Heap.pop heap with
    | None -> Seq.Nil
    | Some (t, (i, g)) ->
        (match g.next () with
        | Some t' -> Heap.push heap ~priority:t' (i, g)
        | None -> ());
        Seq.Cons ((t, i), seq)
  in
  seq

let simulate ~port_rate ?buffer_cells ~sources ~duration () =
  assert (port_rate > 0. && duration > 0.);
  let service = Cell.service_time ~port_rate in
  let cap = match buffer_cells with None -> max_int | Some c -> c in
  assert (cap > 0);
  let heap = Heap.create () in
  let generators =
    List.map
      (fun src ->
        match src with
        | Paced { schedule; offset } -> paced_generator schedule ~offset ~duration
        | Frame_burst { trace; line_rate } ->
            burst_generator trace ~line_rate ~duration)
      sources
  in
  List.iter
    (fun g ->
      match g.next () with
      | Some t -> Heap.push heap ~priority:t g
      | None -> ())
    generators;
  (* Lindley recursion on the unfinished work: at an arrival at time t,
     the backlog that remains from the past is w = max(0, w_prev - (t -
     t_prev)); the queue the cell joins holds ceil(w / service) cells. *)
  let cells = ref 0 and lost = ref 0 in
  let work = ref 0. and last = ref 0. in
  let max_queue = ref 0 and queue_sum = ref 0. in
  let max_delay = ref 0. in
  let histogram = Hashtbl.create 256 in
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop heap with
    | None -> continue_ := false
    | Some (t, g) ->
        (match g.next () with
        | Some t' -> Heap.push heap ~priority:t' g
        | None -> ());
        incr cells;
        work := Float.max 0. (!work -. (t -. !last));
        last := t;
        let queue = int_of_float (Float.ceil (!work /. service -. 1e-9)) in
        if queue >= cap then incr lost
        else begin
          if queue > !max_queue then max_queue := queue;
          queue_sum := !queue_sum +. float_of_int queue;
          Hashtbl.replace histogram queue
            (1 + Option.value ~default:0 (Hashtbl.find_opt histogram queue));
          if !work > !max_delay then max_delay := !work;
          work := !work +. service
        end
  done;
  let accepted = !cells - !lost in
  let p99 =
    if accepted = 0 then 0
    else begin
      let keys = Rcbr_util.Tables.sorted_keys histogram in
      let threshold = 0.99 *. float_of_int accepted in
      let rec scan acc = function
        | [] -> 0
        | k :: rest ->
            let acc = acc + Hashtbl.find histogram k in
            if float_of_int acc >= threshold then k else scan acc rest
      in
      scan 0 keys
    end
  in
  {
    cells = !cells;
    lost = !lost;
    max_queue = !max_queue;
    mean_queue = (if accepted = 0 then 0. else !queue_sum /. float_of_int accepted);
    p99_queue = p99;
    max_delay = !max_delay;
  }
