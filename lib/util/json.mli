(** Minimal JSON emitter and parser for the benchmark trajectory files.

    The repository has no JSON dependency: the [BENCH_*.json] records
    only need serialization plus enough parsing for the regression
    comparator ([bench/compare.ml]) to read committed baselines back.
    Floats use the shortest decimal representation that round-trips; NaN
    and infinities (which JSON cannot express) become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val save : t -> string -> unit
(** [save v path] writes [to_string v] plus a trailing newline. *)

exception Parse_error of string

val parse : string -> t
(** Parse one JSON value (the whole string).  Numbers without fraction
    or exponent become [Int], others [Float]; [\u] escapes are decoded
    in the Latin-1 range (all the emitter produces).  Raises
    {!Parse_error} on malformed input. *)

val load : string -> t
(** {!parse} the contents of a file. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None] on
    missing keys and non-objects. *)
