(** Minimal JSON emitter for the benchmark trajectory files.

    Write-only on purpose: the repository has no JSON dependency and the
    [BENCH_*.json] records only need serialization.  Floats use the
    shortest decimal representation that round-trips; NaN and infinities
    (which JSON cannot express) become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val save : t -> string -> unit
(** [save v path] writes [to_string v] plus a trailing newline. *)
