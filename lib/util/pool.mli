(** Fixed-size domain pool with order-preserving parallel maps.

    A pool of [jobs - 1] worker domains plus the submitting thread drain
    a shared Mutex/Condition task queue.  [map]/[map_array]/[init]
    preserve input order exactly — results land at their input index —
    so for deterministic task functions the parallel result is
    bit-identical to the sequential one regardless of [jobs] or
    scheduling.  Randomized tasks stay deterministic when their
    generators are pre-split sequentially (one {!Rng.split} per task)
    before submission, which is how every caller in [lib/sim] uses it.

    Nested submissions are safe: a task may itself call [map] on the
    same pool; the inner join helps execute queued tasks instead of
    blocking its domain. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs >= 1]).
    [jobs = 1] spawns none and every map runs sequentially in the
    caller.  Default: {!default_jobs}.  Workers mask SIGINT/SIGTERM so
    those signals are always delivered to (and handled by) the
    submitting thread — see {!Interrupt}. *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one
    hardware thread to the submitting domain. *)

val jobs : t -> int

val shutdown : t -> unit
(** Waits for queued tasks to finish and joins the workers.
    Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool, shutting it down on the
    way out (also on exceptions). *)

val init : ?pool:t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init].  Without [?pool] (or with a 1-job pool) this
    is exactly [Array.init].  The first task exception (if any) is
    re-raised after all tasks settle. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
