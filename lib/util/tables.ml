(* Deterministic views of hash tables.

   [Hashtbl.iter]/[Hashtbl.fold] visit buckets in an order that depends
   on the insertion/removal history, so any float accumulation or list
   built that way is only reproducible by accident.  Result paths must
   go through these sorted-key views instead (lint rule D002,
   DESIGN.md §8); the suppressed fold below is the one sanctioned
   unordered traversal — it only collects keys, and the sort restores a
   canonical order before anything observable happens. *)

let sorted_keys ?(compare = Stdlib.compare) tbl =
  (* lint: allow D002 — key collection only; sort_uniq canonicalizes *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq compare keys

let sorted_bindings ?compare tbl =
  (* For tables maintained with [replace] (one binding per key); with
     [add]-stacked bindings only the most recent one is returned. *)
  List.map (fun k -> (k, Hashtbl.find tbl k)) (sorted_keys ?compare tbl)

let iter_sorted ?compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare tbl)

let fold_sorted ?compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ?compare tbl)
