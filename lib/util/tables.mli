(** Deterministic (sorted-key) views of hash tables.

    Lint rule D002 (DESIGN.md §8) bans raw [Hashtbl.iter]/[Hashtbl.fold]
    in result paths because bucket order depends on the table's history.
    These helpers are the sanctioned replacement: they visit keys in
    [compare] order (default: [Stdlib.compare]), so every traversal is a
    pure function of the table's contents. Pass an explicit comparator —
    e.g. [Float.compare] — for float keys. *)

val sorted_keys : ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** Distinct keys in ascending [compare] order. *)

val sorted_bindings :
  ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** [(key, value)] pairs in ascending key order. For keys with stacked
    [add] bindings, only the most recent binding is returned — the same
    one [Hashtbl.find] would. A qcheck property in [test/test_util.ml]
    pins these semantics against a reference model under forced bucket
    collisions and mixed [add]/[replace]/[remove] histories. *)

val iter_sorted :
  ?compare:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit

val fold_sorted :
  ?compare:('a -> 'a -> int) ->
  ('a -> 'b -> 'acc -> 'acc) ->
  ('a, 'b) Hashtbl.t ->
  'acc ->
  'acc
