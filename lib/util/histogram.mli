(** Weighted histograms over discrete levels.

    The admission-control machinery (Section VI) describes a call by the
    fraction of time it spends at each bandwidth level; those empirical
    distributions are built and manipulated here.  Levels are identified
    by integer index into some external level table.

    Histograms grow on demand: {!add}/{!set} on a level index beyond the
    current size extend the histogram (new levels start at weight 0), so
    one histogram can track a level table that is discovered
    incrementally.  The admission fast path relies on the in-place
    operations ({!add}, {!sub}, {!add_weighted}, {!iter_support}) being
    allocation-free once the backing array has reached its high-water
    size. *)

type t
(** Mutable histogram: weight per level index. *)

val create : levels:int -> t
(** All weights zero.  Requires [levels > 0]. *)

val levels : t -> int

val ensure : t -> levels:int -> unit
(** Grow to at least [levels] levels (new levels at weight 0); never
    shrinks.  Amortized O(1) per added level. *)

val add : t -> int -> float -> unit
(** [add h level w] accumulates weight [w >= 0] on [level], growing the
    histogram if [level] is new. *)

val sub : t -> int -> float -> unit
(** [sub h level w] removes weight [w >= 0] from an existing [level].
    The result may drift a few ulp below zero through float
    cancellation; consumers treat [<= 0] as empty. *)

val set : t -> int -> float -> unit
(** [set h level w] overwrites the weight (growing if needed). *)

val weight : t -> int -> float
(** 0 for out-of-range levels. *)

val total : t -> float

val clear : t -> unit
(** Reset every weight to 0 without releasing storage. *)

val merge : t -> t -> t
(** Pointwise sum; the two histograms must have equal [levels].  Fresh
    allocation — hot paths use {!add_weighted} instead. *)

val add_weighted : into:t -> ?scale:float -> t -> unit
(** [add_weighted ~into ~scale src] merges [scale * src] into [into] in
    place, growing [into] as needed.  [scale] defaults to 1 and must be
    nonnegative. *)

val scale : t -> float -> t
(** Pointwise multiplication by a nonnegative factor. *)

val to_distribution : t -> float array
(** Normalized probabilities (summing to 1).  Requires positive total. *)

val normalize : t -> t
(** Fresh histogram with the same shape and total mass 1 (each weight
    divided by {!total}).  Requires positive total. *)

val log_mass : ?floor:float -> t -> int -> float
(** [log_mass h level] is the log of the level's normalized mass,
    floored at [log floor] so empty bins (and out-of-range levels) yield
    a finite penalty instead of [-inf]; an all-zero histogram yields
    [log floor] everywhere.  [floor] defaults to 1e-9 and must lie in
    (0, 1].  This is the soft-decision trellis idiom: unseen transitions
    stay expandable, merely expensive. *)

val of_distribution : float array -> t
(** Histogram holding the given nonnegative weights. *)

val mean_level_value : t -> values:float array -> float
(** Expectation of [values.(level)] under the normalized histogram. *)

val iter_support : t -> (int -> float -> unit) -> unit
(** [iter_support h f] calls [f level weight] for every level with
    strictly positive weight, in ascending level order, without
    allocating. *)

val support : t -> int list
(** Level indices with strictly positive weight, ascending.  Allocates a
    list; hot paths use {!iter_support}. *)

val pp : Format.formatter -> t -> unit
