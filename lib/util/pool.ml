(* Fixed-size work pool over OCaml 5 domains.

   The pool owns [jobs - 1] worker domains draining a single
   Mutex/Condition task queue; the submitting thread of a [map] call
   helps execute queued tasks while it waits, so the effective
   parallelism is [jobs] and a map submitted from inside a pool task
   (nested parallelism) can never deadlock: the inner submitter makes
   progress on whatever is queued until its own tasks are done.

   Determinism: results are written by input index, so the output order
   never depends on the execution interleaving.  Any per-task randomness
   must be pre-split sequentially before submission (see {!Rng.split});
   [map ~jobs:k] is then bit-identical to the sequential map for every
   [k]. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a task was queued, or the pool is shutting down *)
  finished : Condition.t;  (* some task completed *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let rec worker t =
  Mutex.lock t.mutex;
  let rec take () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.work t.mutex;
      take ()
    end
  in
  match take () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker t

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            (* Workers park in [Condition.wait]; a process signal the
               kernel happens to deliver to a parked thread sits pending
               until that thread next wakes, so an interrupt could be
               delayed indefinitely (or lost to a Ctrl-C retry).  Mask
               the interactive-shutdown signals here so the kernel must
               deliver them to the submitting thread instead. *)
            ignore
              (Unix.sigprocmask SIG_BLOCK [ Sys.sigint; Sys.sigterm ]);
            (* lint: allow E001 — the pool IS the synchronization
               primitive: [worker] drains the shared queue strictly
               under [t.mutex], which the escape analysis cannot see *)
            worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Parallel ordered init: the workhorse behind [map] / [map_array]. *)
let run_indexed t n (f : int -> unit) =
  if n > 0 then begin
    let pending = ref n in
    let first_exn = ref None in
    let task i () =
      (try f i
       with e ->
         Mutex.lock t.mutex;
         if !first_exn = None then first_exn := Some e;
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      decr pending;
      Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work;
    (* Help while waiting: execute anything queued (ours or a nested
       call's) rather than blocking a whole domain on the join. *)
    while !pending > 0 do
      if not (Queue.is_empty t.queue) then begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex
      end
      else Condition.wait t.finished t.mutex
    done;
    Mutex.unlock t.mutex;
    match !first_exn with Some e -> raise e | None -> ()
  end

let init ?pool n f =
  match pool with
  | None -> Array.init n f
  | Some t when t.jobs <= 1 || n <= 1 -> Array.init n f
  | Some t ->
      let results = Array.make n None in
      run_indexed t n (fun i -> results.(i) <- Some (f i));
      Array.map (function Some v -> v | None -> assert false) results

let map_array ?pool f xs = init ?pool (Array.length xs) (fun i -> f xs.(i))

let map ?pool f xs =
  Array.to_list (map_array ?pool f (Array.of_list xs))
