type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t =
  (* A second avalanche on an independent draw decorrelates the child
     stream from the parent continuation. *)
  let s = bits64 t in
  { state = mix (Int64.logxor s 0xD1B54A32D192ED03L) }

let float t =
  (* 53 uniform bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24
     and irrelevant for simulation workloads, but we still reject the
     biased tail to keep the generator exact. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r n64 in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub n64 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let exponential t rate =
  assert (rate > 0.);
  let rec positive () =
    let u = float t in
    if u > 0. then u else positive ()
  in
  -.log (positive ()) /. rate

let normal t ~mu ~sigma =
  let rec positive () =
    let u = float t in
    if u > 0. then u else positive ()
  in
  let u1 = positive () and u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let poisson t lambda =
  assert (lambda >= 0.);
  if Float.equal lambda 0. then 0
  else if lambda > 500. then
    (* Normal approximation with continuity correction. *)
    let x = normal t ~mu:lambda ~sigma:(sqrt lambda) in
    max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. float t in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let rec positive () =
      let u = float t in
      if u > 0. then u else positive ()
    in
    int_of_float (Float.floor (log (positive ()) /. log (1. -. p)))

let choose t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  assert (total > 0.);
  let target = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
