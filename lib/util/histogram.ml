type t = { mutable w : float array; mutable levels : int }

let create ~levels =
  assert (levels > 0);
  { w = Array.make levels 0.; levels }

let levels t = t.levels

let ensure t ~levels =
  assert (levels >= 0);
  if levels > t.levels then begin
    if levels > Array.length t.w then begin
      let cap = max levels (2 * Array.length t.w) in
      let w = Array.make cap 0. in
      Array.blit t.w 0 w 0 t.levels;
      t.w <- w
    end;
    (* Slots between the old and new level count may hold stale values
       from a previous [ensure]-shrink cycle; they do not, because the
       array only ever grows and new cells start at 0. *)
    t.levels <- levels
  end

let add t level x =
  assert (x >= 0.);
  ensure t ~levels:(level + 1);
  t.w.(level) <- t.w.(level) +. x

let sub t level x =
  assert (x >= 0. && level < t.levels);
  t.w.(level) <- t.w.(level) -. x

let set t level x =
  ensure t ~levels:(level + 1);
  t.w.(level) <- x

let weight t level = if level < t.levels then t.w.(level) else 0.

let total t =
  let acc = ref 0. in
  for i = 0 to t.levels - 1 do
    acc := !acc +. t.w.(i)
  done;
  !acc

let clear t =
  for i = 0 to t.levels - 1 do
    t.w.(i) <- 0.
  done

let merge a b =
  assert (levels a = levels b);
  { w = Array.init a.levels (fun i -> a.w.(i) +. b.w.(i)); levels = a.levels }

let add_weighted ~into ?(scale = 1.) src =
  assert (scale >= 0.);
  ensure into ~levels:src.levels;
  for i = 0 to src.levels - 1 do
    into.w.(i) <- into.w.(i) +. (scale *. src.w.(i))
  done

let scale t k =
  assert (k >= 0.);
  { w = Array.init t.levels (fun i -> t.w.(i) *. k); levels = t.levels }

let to_distribution t =
  let s = total t in
  assert (s > 0.);
  Array.init t.levels (fun i -> t.w.(i) /. s)

let normalize t =
  let s = total t in
  assert (s > 0.);
  { w = Array.init t.levels (fun i -> t.w.(i) /. s); levels = t.levels }

let log_mass ?(floor = 1e-9) t level =
  assert (floor > 0. && floor <= 1.);
  let s = total t in
  let p = if s > 0. then weight t level /. s else 0. in
  Float.log (Float.max floor p)

let of_distribution p =
  Array.iter (fun x -> assert (x >= 0.)) p;
  { w = Array.copy p; levels = Array.length p }

let mean_level_value t ~values =
  let s = total t in
  assert (s > 0.);
  let acc = ref 0. in
  for i = 0 to t.levels - 1 do
    acc := !acc +. (t.w.(i) /. s *. values.(i))
  done;
  !acc

let iter_support t f =
  for i = 0 to t.levels - 1 do
    if t.w.(i) > 0. then f i t.w.(i)
  done

let support t =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if t.w.(i) > 0. then i :: acc else acc)
  in
  collect (t.levels - 1) []

let pp fmt t =
  Format.fprintf fmt "@[<h>[";
  for i = 0 to t.levels - 1 do
    if t.w.(i) > 0. then Format.fprintf fmt " %d:%.4g" i t.w.(i)
  done;
  Format.fprintf fmt " ]@]"
