type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  (* JSON has no NaN/infinity; shortest decimal that round-trips. *)
  if Float.is_nan x || Float.equal (Float.abs x) infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let save v path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* --- parsing --------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* The emitter only writes \u for control characters;
                 decode the Latin-1 range and reject the rest rather
                 than implement UTF-16 surrogates. *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else fail "unsupported \\u escape"
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          loop ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
