type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  (* JSON has no NaN/infinity; shortest decimal that round-trips. *)
  if Float.is_nan x || Float.abs x = infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let save v path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
