let bisect ?(tol = 1e-9) ?(max_iter = 200) ~f lo hi =
  let flo = f lo and fhi = f hi in
  assert (flo *. fhi <= 0.);
  if Float.equal flo 0. then lo
  else if Float.equal fhi 0. then hi
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    let width () = !hi -. !lo in
    let scale = Float.max 1. (Float.max (Float.abs !lo) (Float.abs !hi)) in
    while width () > tol *. scale && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if Float.equal fmid 0. then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    0.5 *. (!lo +. !hi)
  end

let find_min_such_that ?(tol = 1e-9) ?(max_iter = 200) ~pred lo hi =
  if pred lo then lo
  else if not (pred hi) then hi
  else begin
    let lo = ref lo and hi = ref hi in
    let iter = ref 0 in
    let scale = Float.max 1. (Float.max (Float.abs !lo) (Float.abs !hi)) in
    while !hi -. !lo > tol *. scale && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      if pred mid then hi := mid else lo := mid
    done;
    !hi
  end

let golden_max ?(tol = 1e-9) ?(max_iter = 200) ~f lo hi =
  let phi = (sqrt 5. -. 1.) /. 2. in
  let lo = ref lo and hi = ref hi in
  let x1 = ref (!hi -. (phi *. (!hi -. !lo))) in
  let x2 = ref (!lo +. (phi *. (!hi -. !lo))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  let scale = Float.max 1. (Float.max (Float.abs !lo) (Float.abs !hi)) in
  while !hi -. !lo > tol *. scale && !iter < max_iter do
    incr iter;
    if !f1 > !f2 then begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (phi *. (!hi -. !lo));
      f1 := f !x1
    end
    else begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (phi *. (!hi -. !lo));
      f2 := f !x2
    end
  done;
  0.5 *. (!lo +. !hi)

let log_sum_exp xs =
  assert (Array.length xs > 0);
  let m = Array.fold_left Float.max neg_infinity xs in
  if Float.equal m neg_infinity then neg_infinity
  else
    let s = Array.fold_left (fun a x -> a +. exp (x -. m)) 0. xs in
    m +. log s

let approx_equal ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale
