type t = { data : float array array }

let create ~rows ~cols v =
  assert (rows > 0 && cols > 0);
  { data = Array.init rows (fun _ -> Array.make cols v) }

let of_rows rows =
  assert (Array.length rows > 0);
  let cols = Array.length rows.(0) in
  Array.iter (fun r -> assert (Array.length r = cols)) rows;
  { data = Array.map Array.copy rows }

let rows t = Array.length t.data
let cols t = Array.length t.data.(0)
let get t i j = t.data.(i).(j)

let identity n =
  let m = create ~rows:n ~cols:n 0. in
  for i = 0 to n - 1 do
    m.data.(i).(i) <- 1.
  done;
  m

let transpose t =
  let r = rows t and c = cols t in
  { data = Array.init c (fun j -> Array.init r (fun i -> t.data.(i).(j))) }

let map f t = { data = Array.map (Array.map f) t.data }

let scale_rows t d =
  assert (Array.length d = rows t);
  { data = Array.mapi (fun i row -> Array.map (fun x -> d.(i) *. x) row) t.data }

let mul a b =
  assert (cols a = rows b);
  let n = rows a and m = cols b and k = cols a in
  let out = create ~rows:n ~cols:m 0. in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (a.data.(i).(l) *. b.data.(l).(j))
      done;
      out.data.(i).(j) <- !acc
    done
  done;
  out

let mat_vec t v =
  assert (Array.length v = cols t);
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun j x -> acc := !acc +. (x *. v.(j))) row;
      !acc)
    t.data

let vec_mat v t =
  assert (Array.length v = rows t);
  let out = Array.make (cols t) 0. in
  for i = 0 to rows t - 1 do
    for j = 0 to cols t - 1 do
      out.(j) <- out.(j) +. (v.(i) *. t.data.(i).(j))
    done
  done;
  out

let solve a b =
  let n = rows a in
  assert (cols a = n && Array.length b = n);
  let m = Array.map Array.copy a.data in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then failwith "Matrix.solve: singular";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for r = col + 1 to n - 1 do
      let factor = m.(r).(col) /. m.(col).(col) in
      if not (Float.equal factor 0.) then begin
        for c = col to n - 1 do
          m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for c = r + 1 to n - 1 do
      acc := !acc -. (m.(r).(c) *. x.(c))
    done;
    x.(r) <- !acc /. m.(r).(r)
  done;
  x

let perron_root ?(tol = 1e-12) ?(max_iter = 10_000) t =
  let n = rows t in
  assert (cols t = n);
  Array.iter (Array.iter (fun x -> assert (x >= 0.))) t.data;
  (* A tiny uniform perturbation makes the matrix primitive so power
     iteration converges even for periodic or reducible chains; the
     perturbation shifts the root by at most n * eps. *)
  let eps = 1e-13 in
  let v = ref (Array.make n (1. /. float_of_int n)) in
  let lambda = ref 0. in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < max_iter do
    incr iter;
    let w = mat_vec t !v in
    let sum_v = Array.fold_left ( +. ) 0. !v in
    let w = Array.map (fun x -> x +. (eps *. sum_v)) w in
    let norm = Array.fold_left ( +. ) 0. w in
    if norm <= 0. then begin
      lambda := 0.;
      continue_ := false
    end
    else begin
      let next = Array.map (fun x -> x /. norm) w in
      if Float.abs (norm -. !lambda) <= tol *. Float.max 1. norm then continue_ := false;
      lambda := norm;
      v := next
    end
  done;
  Float.max 0. (!lambda -. (eps *. float_of_int n))

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "@[<h>|";
      Array.iter (fun x -> Format.fprintf fmt " %10.4g" x) row;
      Format.fprintf fmt " |@]@,")
    t.data;
  Format.fprintf fmt "@]"
