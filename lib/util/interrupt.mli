(** Cooperative signal handling for the CLIs.

    Two styles, both defaulting to SIGINT + SIGTERM:

    {!install_flag} records the signal in a flag the program polls
    ([{!requested} ()]) at safe points — the daemon's select loop uses
    this to stop accepting, drain, and audit before exiting.

    {!install_exit} runs a flush callback and exits immediately from
    the handler — the batch simulators use this so an interrupted run
    still emits whatever stats it has printed so far instead of dying
    with a truncated stdout buffer.

    Handlers installed here replace any previous disposition for the
    chosen signals; {!reset} restores [Sys.Signal_default] (used by
    tests so a later real Ctrl-C still kills the runner). *)

val install_flag : ?signals:int list -> unit -> unit
(** Record delivery of any of [signals] (default
    [[Sys.sigint; Sys.sigterm]]); poll with {!requested}. *)

val requested : unit -> bool
(** [true] once a flagged signal has been delivered. *)

val install_exit :
  ?signals:int list -> ?code:int -> on_signal:(int -> unit) -> unit -> unit
(** On delivery, call [on_signal signal] (flush partial output here —
    keep it simple: the handler runs at an arbitrary safe point) and
    [exit code] (default 130, the shell convention for death-by-SIGINT). *)

val reset : ?signals:int list -> unit -> unit
(** Restore [Sys.Signal_default] for [signals] and clear the flag. *)
