let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  assert (n > 0);
  if n = 1 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let quantile xs q =
  assert (Array.length xs > 0 && q >= 0. && q <= 1.);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let minimum xs = Array.fold_left min xs.(0) xs
let maximum xs = Array.fold_left max xs.(0) xs

let autocorrelation xs lag =
  let n = Array.length xs in
  assert (lag >= 0 && lag < n);
  let m = mean xs in
  let var = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
  if Float.equal var 0. then 0.
  else begin
    let cov = ref 0. in
    for i = 0 to n - 1 - lag do
      cov := !cov +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
    done;
    !cov /. var
  end

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let confidence_halfwidth t =
    if t.n < 2 then infinity
    else 1.96 *. stddev t /. sqrt (float_of_int t.n)

  let relative_precision t =
    if t.n < 2 || Float.equal t.mean 0. then infinity
    else confidence_halfwidth t /. Float.abs t.mean
end
