let default_signals = [ Sys.sigint; Sys.sigterm ]

(* Atomic rather than a bare ref: signal handlers run at safe points of
   whichever domain is active, and Atomic keeps the read in the poll
   loop from being hoisted. *)
let flag = Atomic.make false

let install_flag ?(signals = default_signals) () =
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set flag true)))
    signals

let requested () = Atomic.get flag

let install_exit ?(signals = default_signals) ?(code = 130) ~on_signal () =
  List.iter
    (fun s ->
      Sys.set_signal s
        (Sys.Signal_handle
           (fun signal ->
             on_signal signal;
             exit code)))
    signals

let reset ?(signals = default_signals) () =
  List.iter (fun s -> Sys.set_signal s Sys.Signal_default) signals;
  Atomic.set flag false
