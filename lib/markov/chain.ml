module Matrix = Rcbr_util.Matrix
module Rng = Rcbr_util.Rng

type t = { p : float array array; matrix : Matrix.t }

let create rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Chain.create: empty matrix";
  let p =
    Array.map
      (fun row ->
        if Array.length row <> n then
          invalid_arg "Chain.create: matrix not square";
        let sum = Array.fold_left ( +. ) 0. row in
        Array.iter
          (fun x ->
            if x < 0. then invalid_arg "Chain.create: negative probability")
          row;
        if Float.abs (sum -. 1.) > 1e-9 then
          invalid_arg "Chain.create: row does not sum to 1";
        Array.map (fun x -> x /. sum) row)
      rows
  in
  { p; matrix = Matrix.of_rows p }

let n_states t = Array.length t.p
let prob t i j = t.p.(i).(j)
let matrix t = t.matrix

let stationary t =
  let n = n_states t in
  (* Solve pi (P - I) = 0 with the last equation replaced by sum pi = 1,
     i.e. (P - I)^T pi = 0 row-wise. *)
  let a = Array.init n (fun _ -> Array.make n 0.) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.(j).(i) <- t.p.(i).(j) -. (if i = j then 1. else 0.)
    done
  done;
  for j = 0 to n - 1 do
    a.(n - 1).(j) <- 1.
  done;
  let b = Array.make n 0. in
  b.(n - 1) <- 1.;
  let pi = Matrix.solve (Matrix.of_rows a) b in
  (* Numerical noise can leave tiny negatives; clean and renormalize. *)
  let pi = Array.map (fun x -> Float.max 0. x) pi in
  let s = Array.fold_left ( +. ) 0. pi in
  Array.map (fun x -> x /. s) pi

let reachable p from =
  let n = Array.length p in
  let seen = Array.make n false in
  let stack = ref [ from ] in
  seen.(from) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
        stack := rest;
        for j = 0 to n - 1 do
          if (not seen.(j)) && p.(s).(j) > 0. then begin
            seen.(j) <- true;
            stack := j :: !stack
          end
        done
  done;
  seen

let is_irreducible t =
  let n = n_states t in
  let fwd = reachable t.p 0 in
  let transpose = Array.init n (fun i -> Array.init n (fun j -> t.p.(j).(i))) in
  let bwd = reachable transpose 0 in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (fwd.(i) && bwd.(i)) then ok := false
  done;
  !ok

let step t rng s = Rng.choose rng t.p.(s)

let simulate t rng ~init ~steps =
  assert (steps > 0 && init >= 0 && init < n_states t);
  let out = Array.make steps init in
  for i = 1 to steps - 1 do
    out.(i) <- step t rng out.(i - 1)
  done;
  out

let occupancy states ~n_states =
  let counts = Array.make n_states 0. in
  Array.iter (fun s -> counts.(s) <- counts.(s) +. 1.) states;
  let total = float_of_int (Array.length states) in
  Array.map (fun c -> c /. total) counts

let uniformize q ~rate =
  let n = Array.length q in
  let p =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let qij = q.(i).(j) in
            if i = j then begin
              assert (rate >= Float.abs qij);
              1. +. (qij /. rate)
            end
            else begin
              assert (qij >= 0.);
              qij /. rate
            end))
  in
  create p
