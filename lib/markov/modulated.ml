module Rng = Rcbr_util.Rng

type t = { chain : Chain.t; rates : float array }

let create chain ~rates =
  assert (Array.length rates = Chain.n_states chain);
  Array.iter (fun r -> assert (r >= 0.)) rates;
  { chain; rates = Array.copy rates }

let chain t = t.chain
let rates t = Array.copy t.rates
let n_states t = Chain.n_states t.chain

let mean_rate t =
  let pi = Chain.stationary t.chain in
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. t.rates.(i))) pi;
  !acc

let peak_rate t = Array.fold_left Float.max 0. t.rates

let stationary_init t rng = Rng.choose rng (Chain.stationary t.chain)

let simulate_states t rng ?init ~steps () =
  let init = match init with Some s -> s | None -> stationary_init t rng in
  Chain.simulate t.chain rng ~init ~steps

let simulate t rng ?init ~steps () =
  let states = simulate_states t rng ?init ~steps () in
  Array.map (fun s -> t.rates.(s)) states

let on_off ~peak ~p_on_to_off ~p_off_to_on =
  assert (peak >= 0.);
  assert (p_on_to_off >= 0. && p_on_to_off <= 1.);
  assert (p_off_to_on >= 0. && p_off_to_on <= 1.);
  let chain =
    Chain.create
      [|
        [| 1. -. p_off_to_on; p_off_to_on |];
        [| p_on_to_off; 1. -. p_on_to_off |];
      |]
  in
  create chain ~rates:[| 0.; peak |]
