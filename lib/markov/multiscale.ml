module Rng = Rcbr_util.Rng

type subchain = { chain : Chain.t; rates : float array }

type t = {
  subchains : subchain array;
  eps : float array array;
  stationaries : float array array; (* per-subchain stationary laws *)
}

let create subchains ~eps =
  let k = Array.length subchains in
  assert (k > 0);
  assert (Array.length eps = k);
  Array.iteri
    (fun i row ->
      assert (Array.length row = k);
      assert (Float.equal row.(i) 0.);
      let sum = Array.fold_left ( +. ) 0. row in
      Array.iter (fun x -> assert (x >= 0.)) row;
      assert (sum < 1.))
    eps;
  Array.iter
    (fun sc -> assert (Array.length sc.rates = Chain.n_states sc.chain))
    subchains;
  let stationaries = Array.map (fun sc -> Chain.stationary sc.chain) subchains in
  { subchains; eps; stationaries }

let n_subchains t = Array.length t.subchains
let subchain t k = t.subchains.(k)

let total_states t =
  Array.fold_left (fun acc sc -> acc + Chain.n_states sc.chain) 0 t.subchains

let leave_probability t k = Array.fold_left ( +. ) 0. t.eps.(k)

let slow_chain t =
  let k = n_subchains t in
  let rows =
    Array.init k (fun i ->
        Array.init k (fun j ->
            if i = j then 1. -. leave_probability t i else t.eps.(i).(j)))
  in
  Chain.create rows

let subchain_occupancy t = Chain.stationary (slow_chain t)

let subchain_mean_rates t =
  Array.mapi
    (fun k sc ->
      let pi = t.stationaries.(k) in
      let acc = ref 0. in
      Array.iteri (fun s p -> acc := !acc +. (p *. sc.rates.(s))) pi;
      !acc)
    t.subchains

let mean_rate t =
  let occ = subchain_occupancy t in
  let means = subchain_mean_rates t in
  let acc = ref 0. in
  Array.iteri (fun k p -> acc := !acc +. (p *. means.(k))) occ;
  !acc

let peak_rate t =
  Array.fold_left
    (fun acc sc -> Float.max acc (Array.fold_left Float.max 0. sc.rates))
    0. t.subchains

let marginal t =
  let occ = subchain_occupancy t in
  let means = subchain_mean_rates t in
  Array.init (n_subchains t) (fun k -> (occ.(k), means.(k)))

let offsets t =
  let k = n_subchains t in
  let off = Array.make k 0 in
  for i = 1 to k - 1 do
    off.(i) <- off.(i - 1) + Chain.n_states t.subchains.(i - 1).chain
  done;
  off

let flatten t =
  let n = total_states t in
  let off = offsets t in
  let rows = Array.init n (fun _ -> Array.make n 0.) in
  Array.iteri
    (fun k sc ->
      let stay = 1. -. leave_probability t k in
      let nk = Chain.n_states sc.chain in
      for s = 0 to nk - 1 do
        let row = rows.(off.(k) + s) in
        (* Fast transition inside the subchain. *)
        for s' = 0 to nk - 1 do
          row.(off.(k) + s') <- stay *. Chain.prob sc.chain s s'
        done;
        (* Rare jump: enter target subchain at its stationary law. *)
        Array.iteri
          (fun j e ->
            if e > 0. then
              Array.iteri
                (fun s' p -> row.(off.(j) + s') <- row.(off.(j) + s') +. (e *. p))
                t.stationaries.(j))
          t.eps.(k)
      done)
    t.subchains;
  let chain = Chain.create rows in
  let rates = Array.make n 0. in
  Array.iteri
    (fun k sc ->
      Array.iteri (fun s r -> rates.(off.(k) + s) <- r) sc.rates)
    t.subchains;
  Modulated.create chain ~rates

let simulate t rng ~steps =
  assert (steps > 0);
  let data = Array.make steps 0. in
  let which = Array.make steps 0 in
  let k = ref (Rng.choose rng (subchain_occupancy t)) in
  let s = ref (Rng.choose rng t.stationaries.(!k)) in
  for i = 0 to steps - 1 do
    data.(i) <- t.subchains.(!k).rates.(!s);
    which.(i) <- !k;
    (* Jump decision, then the appropriate transition. *)
    let u = Rng.float rng in
    let leave = leave_probability t !k in
    if u < leave then begin
      (* Pick the target subchain proportionally to eps. *)
      let j = Rng.choose rng t.eps.(!k) in
      k := j;
      s := Rng.choose rng t.stationaries.(j)
    end
    else s := Chain.step t.subchains.(!k).chain rng !s
  done;
  (data, which)

let two_state_subchain ~low ~high ~p_up ~p_down =
  let chain =
    Chain.create [| [| 1. -. p_up; p_up |]; [| p_down; 1. -. p_down |] |]
  in
  { chain; rates = [| low; high |] }

let fig4_example () =
  (* Rates in data units per slot; a "unit" of 1.0 ~ the long-term mean.
     Quiet scenes hover near 0.4x mean, normal near 1x, action scenes
     near 3-5x with fast flicker between two levels inside each scene. *)
  let quiet = two_state_subchain ~low:0.2 ~high:0.6 ~p_up:0.1 ~p_down:0.2 in
  let normal = two_state_subchain ~low:0.7 ~high:1.5 ~p_up:0.2 ~p_down:0.2 in
  let action = two_state_subchain ~low:2.5 ~high:5.0 ~p_up:0.3 ~p_down:0.3 in
  let eps =
    [|
      [| 0.; 1.5e-3; 0.5e-3 |];
      [| 1.0e-3; 0.; 1.0e-3 |];
      [| 0.5e-3; 2.5e-3; 0. |];
    |]
  in
  create [| quiet; normal; action |] ~eps
