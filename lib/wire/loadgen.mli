(** Deterministic load-generation core for the switch daemon.

    Everything here is pure or seeded — no sockets, no clock — so the
    [bin/rcbr_loadgen] pump loop is a thin transport shell and two runs
    of the same seed produce the same op sequence, the same mangler
    draws, and (timeouts being generous next to a local socket's RTT)
    the same per-request outcomes, hence the same {!outcome_hash}. *)

type op =
  | Op_setup of { call : int; route : int array; transit : bool; rate : float }
  | Op_reneg of { call : int; rate : float }
  | Op_delta of { call : int; delta : float }
      (** fire-and-forget RM cell; no reply, no retransmission *)
  | Op_resync of { call : int; rate : float }  (** fire-and-forget *)
  | Op_teardown of { call : int }

val op_call : op -> int

val message_of_op : req:int -> op -> Codec.t
(** The wire message for one attempt of [op]; [req] is ignored by the
    fire-and-forget cells. *)

val storm :
  topology:Rcbr_net.Topology.t ->
  calls:int ->
  rounds:int ->
  rate_max:float ->
  rm_fraction:float ->
  seed:int ->
  conns:int ->
  op list array
(** One op list per connection.  Call [c] lives on connection
    [c mod conns] and walks route [c mod n_routes].  Each call is set
    up, renegotiated once per round — with probability [rm_fraction]
    the change travels as a delta RM cell instead of an acked
    renegotiation, followed every third round by a resync cell — and
    torn down.  All draws come from per-connection splitmix streams, so
    the op lists depend only on the arguments. *)

(** {1 Request bookkeeping} *)

val backoff : base:float -> attempt:int -> float
(** Exponential: [base *. 2. ** attempt], the delay armed after the
    [attempt]-th transmission (0-based). *)

type outcome =
  | Acked of float  (** the applied rate the switch confirmed *)
  | Denied of Codec.deny_reason
  | Gave_up  (** retransmit budget exhausted with no reply *)
  | Sent  (** fire-and-forget cell: offered to the wire, nothing more *)

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_hash : (int * outcome) list -> int
(** Order-insensitive digest: the pairs are sorted by request id before
    mixing, so concurrent connections hash identically however their
    completions interleave.  Equal hashes across runs mean identical
    per-request outcomes.  Registered as a determinism sink (T001) in
    the typed lint (DESIGN.md §14): renaming or moving it must update
    [Tlint.repo_config]. *)
