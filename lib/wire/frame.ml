module Reader = struct
  type t = {
    max_frame : int;
    buf : Buffer.t;
    mutable pos : int;  (* consumed prefix of [buf] *)
    mutable poisoned : Codec.error option;
  }

  let create ?(max_frame = Codec.max_frame) () =
    { max_frame; buf = Buffer.create 4096; pos = 0; poisoned = None }

  (* Shift the consumed prefix away once it dominates the buffer, so a
     long-lived connection does not grow without bound. *)
  let compact t =
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let feed t b ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length b then
      invalid_arg "Frame.Reader.feed: slice out of range";
    Buffer.add_subbytes t.buf b off len

  let feed_string t s = Buffer.add_string t.buf s

  let buffered t = Buffer.length t.buf - t.pos

  let next t =
    match t.poisoned with
    | Some e -> `Fatal e
    | None ->
        if buffered t < 4 then `Await
        else begin
          let byte i = Char.code (Buffer.nth t.buf (t.pos + i)) in
          let length =
            (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
          in
          if length > t.max_frame then begin
            let e = Codec.Oversized { length; max = t.max_frame } in
            t.poisoned <- Some e;
            `Fatal e
          end
          else if buffered t < 4 + length then `Await
          else begin
            let payload = Buffer.sub t.buf (t.pos + 4) length in
            t.pos <- t.pos + 4 + length;
            compact t;
            match Codec.decode payload with
            | Ok m -> `Msg m
            | Error e -> `Error e
          end
        end
end
