module Plan = Rcbr_fault.Plan
module Rng = Rcbr_util.Rng

type stats = {
  sent : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  corrupted : int;
}

type t = {
  link : Plan.link;
  rng : Rng.t;
  mutable held : (int * string) list;  (* (slots left, frame), oldest first *)
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable corrupted : int;
}

let create ~seed link =
  Plan.validate { Plan.seed; links = [| link |]; crashes = [] };
  {
    link;
    rng = Rng.create seed;
    held = [];
    sent = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    delayed = 0;
    corrupted = 0;
  }

(* Flip one bit of the payload, sparing the 4-byte length prefix so the
   stream stays framed — the damage must be caught downstream, by the
   parser or by the protocol. *)
let corrupt_frame t frame =
  let n = String.length frame in
  if n <= 4 then frame
  else begin
    let byte = 4 + Rng.int t.rng (n - 4) in
    let bit = Rng.int t.rng 8 in
    let b = Bytes.of_string frame in
    Bytes.set b byte (Char.chr (Char.code frame.[byte] lxor (1 lsl bit)));
    Bytes.to_string b
  end

(* One send slot has passed: age the held frames and release the due
   ones (oldest first, after the frames of this slot). *)
let tick_held t =
  let due, rest =
    List.partition (fun (slots, _) -> slots <= 1) t.held
  in
  t.held <- List.map (fun (slots, f) -> (slots - 1, f)) rest;
  List.map snd due

let send t frame =
  t.sent <- t.sent + 1;
  let l = t.link in
  let this_slot =
    if Plan.link_is_reliable l then [ frame ]
    else begin
      let u = Rng.float t.rng in
      if u < l.Plan.drop then begin
        t.dropped <- t.dropped + 1;
        []
      end
      else if u < l.Plan.drop +. l.Plan.duplicate then begin
        t.duplicated <- t.duplicated + 1;
        [ frame; frame ]
      end
      else if u < l.Plan.drop +. l.Plan.duplicate +. l.Plan.reorder then begin
        t.reordered <- t.reordered + 1;
        t.held <- t.held @ [ (1, frame) ];
        []
      end
      else if
        u < l.Plan.drop +. l.Plan.duplicate +. l.Plan.reorder +. l.Plan.delay
      then begin
        t.delayed <- t.delayed + 1;
        t.held <- t.held @ [ (1 + Rng.int t.rng l.Plan.max_extra_slots, frame) ];
        []
      end
      else if
        u
        < l.Plan.drop +. l.Plan.duplicate +. l.Plan.reorder +. l.Plan.delay
          +. l.Plan.corrupt
      then begin
        t.corrupted <- t.corrupted + 1;
        [ corrupt_frame t frame ]
      end
      else [ frame ]
    end
  in
  this_slot @ tick_held t

let flush t =
  let all = List.map snd t.held in
  t.held <- [];
  all

let stats t =
  {
    sent = t.sent;
    dropped = t.dropped;
    duplicated = t.duplicated;
    reordered = t.reordered;
    delayed = t.delayed;
    corrupted = t.corrupted;
  }
