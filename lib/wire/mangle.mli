(** Deterministic byte-level fault injection for framed streams.

    A mangler sits between a sender and its socket and applies one
    {!Rcbr_fault.Plan.link}'s fault draws to every outbound frame:
    drop, duplicate, reorder (the frame falls behind its successor),
    delay (held for 1..max_extra_slots later sends), or corrupt (one
    payload bit flipped — the length prefix is spared, so framing
    survives and the damage must be caught by {!Codec.decode} or show
    up as a misdelivered message).  All draws come from a seeded
    {!Rcbr_util.Rng} stream, so a mangled run is exactly reproducible:
    same plan, same seed, same frame sequence → same wire bytes. *)

type stats = {
  sent : int;  (** frames offered to the mangler *)
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  corrupted : int;
}

type t

val create : seed:int -> Rcbr_fault.Plan.link -> t
(** Validates the link's probabilities (as {!Rcbr_fault.Plan.validate}
    does) and seeds the draw stream. *)

val send : t -> string -> string list
(** The frames to put on the wire for this offered frame, in order —
    possibly none (dropped or held), possibly several (a duplicate, or
    held frames whose slot arrived). *)

val flush : t -> string list
(** Release every held frame (end of stream). *)

val stats : t -> stats
