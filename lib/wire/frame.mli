(** Length-prefixed framing over a byte stream.

    A {!Reader} accumulates whatever chunks the transport hands it —
    partial reads, several pipelined messages in one read, a frame split
    across ten reads — and yields complete messages in order.  A frame
    whose payload fails {!Codec.decode} is surfaced as a recoverable
    [`Error] (the length prefix kept the stream in sync, so parsing
    continues at the next frame); a length prefix beyond
    {!Codec.max_frame} poisons the reader ([`Fatal]): on a byte stream
    there is no way back into sync, the connection must be closed. *)

module Reader : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] defaults to {!Codec.max_frame}. *)

  val feed : t -> bytes -> off:int -> len:int -> unit
  (** Append [len] bytes of [b] starting at [off].  Raises
      [Invalid_argument] on an out-of-range slice (caller bug, not wire
      input). *)

  val feed_string : t -> string -> unit

  val next :
    t ->
    [ `Msg of Codec.t  (** a complete, well-formed message *)
    | `Error of Codec.error  (** a complete frame that does not decode *)
    | `Await  (** need more bytes *)
    | `Fatal of Codec.error  (** framing lost; close the connection *) ]
  (** Call repeatedly until [`Await].  After [`Fatal] the reader answers
      [`Fatal] forever. *)

  val buffered : t -> int
  (** Bytes held but not yet consumed as frames. *)
end
