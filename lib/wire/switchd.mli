(** The switch daemon's protocol core, factored out of the socket loop
    so it can be driven byte-by-byte in tests.

    A {!t} owns the real network state — {!Rcbr_net.Link} accounting
    over a {!Rcbr_net.Topology}, one {!Rcbr_net.Session} per live call,
    an optional {!Rcbr_admission.Controller} gating setups — and
    dispatches decoded {!Codec} messages against it.  Each client
    connection gets a {!conn}: a {!Frame.Reader} tolerating partial
    reads and pipelined messages, plus the connection's idempotency
    cache.  A request id seen before is answered with the cached reply
    frame and never re-applied, so client retransmissions (duplicates
    on the wire) cannot double-apply a setup, renegotiation or
    teardown.

    Time is an input ([~now], seconds since an arbitrary origin): the
    core never reads a clock, keeping it inside the repo's determinism
    contract (DESIGN.md §8) — the socket loop in [bin/rcbr_switchd.ml]
    supplies wall time under an explicit lint allowlist grant. *)

type config = {
  topology : Rcbr_net.Topology.t;
  controller : Rcbr_admission.Controller.t option;
      (** admission gate applied to setups on top of the per-link
          capacity fit; [None] admits whatever fits *)
  max_frame : int;
}

val default_config : Rcbr_net.Topology.t -> config

type stats = {
  mutable setups : int;
  mutable renegotiations : int;
  mutable teardowns : int;
  mutable deltas : int;
  mutable resyncs : int;
  mutable audits : int;
  mutable denials : int;
  mutable duplicates : int;  (** idempotency-cache hits *)
  mutable decode_errors : int;  (** frames that failed {!Codec.decode} *)
  mutable stray_cells : int;  (** RM cells for unknown VCIs *)
  mutable unexpected : int;  (** reply-typed messages sent by a client *)
  mutable underflows : int;  (** deltas clamped at rate 0 *)
}

type t

val create : config -> t
val stats : t -> stats
val links : t -> Rcbr_net.Link.t array
val sessions : t -> int
(** Live call count. *)

val draining : t -> bool

(** {1 Connections} *)

type conn

val connect : t -> conn
val handle : t -> conn -> now:float -> Codec.t -> Codec.t option
(** Dispatch one decoded message; the reply to send back, if any
    (RM cells are fire-and-forget).  Duplicate request ids short-circuit
    to the cached reply. *)

val input : t -> conn -> now:float -> string -> (string list, Codec.error) result
(** Feed raw bytes as read from the socket.  [Ok frames] are the
    encoded reply frames to queue, in order; [Error e] means framing is
    unrecoverable and the connection must be closed.  Frames that fail
    to decode are counted and skipped — the stream stays in sync. *)

(** {1 Audit and drain} *)

val audit : t -> int
(** Conservation violations right now: every link's demand must equal
    the sum of its sessions' applied rates ({!Rcbr_net.Session.audit}),
    summed in sorted call order so the float total is deterministic. *)

val total_demand : t -> float

type drain_report = { live_sessions : int; violations : int; demand : float }

val drain : t -> drain_report
(** Enter draining mode (new setups are denied with [Draining]) and run
    the final conservation audit. *)
