module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Session = Rcbr_net.Session
module Controller = Rcbr_admission.Controller
module Tables = Rcbr_util.Tables

type config = {
  topology : Topology.t;
  controller : Controller.t option;
  max_frame : int;
}

let default_config topology =
  { topology; controller = None; max_frame = Codec.max_frame }

type stats = {
  mutable setups : int;
  mutable renegotiations : int;
  mutable teardowns : int;
  mutable deltas : int;
  mutable resyncs : int;
  mutable audits : int;
  mutable denials : int;
  mutable duplicates : int;
  mutable decode_errors : int;
  mutable stray_cells : int;
  mutable unexpected : int;
  mutable underflows : int;
}

type t = {
  config : config;
  links : Link.t array;
  sessions : (int, Session.t) Hashtbl.t;
  stats : stats;
  mutable draining : bool;
}

let create config =
  {
    config;
    links = Link.of_topology config.topology;
    sessions = Hashtbl.create 64;
    stats =
      {
        setups = 0;
        renegotiations = 0;
        teardowns = 0;
        deltas = 0;
        resyncs = 0;
        audits = 0;
        denials = 0;
        duplicates = 0;
        decode_errors = 0;
        stray_cells = 0;
        unexpected = 0;
        underflows = 0;
      };
    draining = false;
  }

let stats t = t.stats
let links t = t.links
let sessions t = Hashtbl.length t.sessions
let draining t = t.draining

(* Sorted call order makes the float sums (and hence the audit verdict)
   a pure function of the daemon's state, not of hash-bucket history. *)
let session_list t = List.map snd (Tables.sorted_bindings t.sessions)

let audit t = Session.audit ~links:t.links ~sessions:(session_list t)

let total_demand t =
  Array.fold_left (fun acc l -> acc +. l.Link.demand) 0. t.links

(* --- connections ------------------------------------------------------ *)

type conn = {
  reader : Frame.Reader.t;
  seen : (int, Codec.t) Hashtbl.t;  (* request id -> cached reply *)
}

let connect t =
  {
    reader = Frame.Reader.create ~max_frame:t.config.max_frame ();
    seen = Hashtbl.create 32;
  }

(* --- dispatch --------------------------------------------------------- *)

let advance_links t ~now =
  Array.iter (fun l -> Link.advance l ~now) t.links

let route_valid t route =
  Array.for_all
    (fun id -> id >= 0 && id < Array.length t.links)
    route

let deny t ~req reason =
  t.stats.denials <- t.stats.denials + 1;
  Some (Codec.Deny { req; reason })

let do_setup t ~now ~req ~call ~route ~transit ~rate =
  t.stats.setups <- t.stats.setups + 1;
  if t.draining then deny t ~req Codec.Draining
  else if Hashtbl.mem t.sessions call then deny t ~req Codec.Duplicate_call
  else if not (route_valid t route) then deny t ~req Codec.Bad_route
  else begin
    let s = Session.make ~id:call ~route ~transit in
    if Session.blocked ~links:t.links s ~now then deny t ~req Codec.Blackout
    else
      let admitted =
        match t.config.controller with
        | Some c -> Controller.admit c ~now
        | None -> true
      in
      if not (admitted && Session.fits ~links:t.links s ~rate ~now) then
        deny t ~req Codec.Capacity
      else begin
        advance_links t ~now;
        Session.settle ~links:t.links s ~rate;
        Array.iter
          (fun id ->
            t.links.(id).Link.n_calls <- t.links.(id).Link.n_calls + 1)
          route;
        Hashtbl.replace t.sessions call s;
        (match t.config.controller with
        | Some c -> Controller.on_admit c ~now ~call ~rate
        | None -> ());
        Some (Codec.Ack { req; applied = rate })
      end
  end

let do_renegotiate t ~now ~req ~call ~rate =
  t.stats.renegotiations <- t.stats.renegotiations + 1;
  match Hashtbl.find_opt t.sessions call with
  | None -> deny t ~req Codec.Unknown_call
  | Some s ->
      if Session.blocked ~links:t.links s ~now then deny t ~req Codec.Blackout
      else if rate > s.Session.applied
              && not (Session.fits ~links:t.links s ~rate ~now)
      then deny t ~req Codec.Capacity
      else begin
        advance_links t ~now;
        Session.settle ~links:t.links s ~rate;
        (match t.config.controller with
        | Some c -> Controller.on_renegotiate c ~now ~call ~rate
        | None -> ());
        Some (Codec.Ack { req; applied = rate })
      end

let do_teardown t ~now ~req ~call =
  t.stats.teardowns <- t.stats.teardowns + 1;
  match Hashtbl.find_opt t.sessions call with
  | None -> deny t ~req Codec.Unknown_call
  | Some s ->
      advance_links t ~now;
      Session.cancel_pending s;
      Session.settle ~links:t.links s ~rate:0.;
      Array.iter
        (fun id -> t.links.(id).Link.n_calls <- t.links.(id).Link.n_calls - 1)
        s.Session.route;
      Hashtbl.remove t.sessions call;
      (match t.config.controller with
      | Some c -> Controller.on_depart c ~now ~call
      | None -> ());
      Some (Codec.Ack { req; applied = 0. })

(* RM cells apply with settle semantics — the demand moves whether or
   not it fits, exactly as in the simulators' fault path; overload shows
   up in the link accounting, never as a lost update. *)
let do_delta t ~now ~vci ~delta =
  t.stats.deltas <- t.stats.deltas + 1;
  (match Hashtbl.find_opt t.sessions vci with
  | None -> t.stats.stray_cells <- t.stats.stray_cells + 1
  | Some s ->
      let next = s.Session.applied +. delta in
      let next =
        if next < 0. then begin
          t.stats.underflows <- t.stats.underflows + 1;
          0.
        end
        else next
      in
      advance_links t ~now;
      Session.settle ~links:t.links s ~rate:next);
  None

let do_resync t ~now ~vci ~rate =
  t.stats.resyncs <- t.stats.resyncs + 1;
  (match Hashtbl.find_opt t.sessions vci with
  | None -> t.stats.stray_cells <- t.stats.stray_cells + 1
  | Some s ->
      advance_links t ~now;
      Session.settle ~links:t.links s ~rate);
  None

let do_audit t ~req =
  t.stats.audits <- t.stats.audits + 1;
  Some
    (Codec.Audit_reply
       {
         req;
         sessions = Hashtbl.length t.sessions;
         violations = audit t;
         demand = total_demand t;
       })

let dispatch t ~now (msg : Codec.t) =
  match msg with
  | Codec.Delta { vci; delta } -> do_delta t ~now ~vci ~delta
  | Codec.Resync { vci; rate } -> do_resync t ~now ~vci ~rate
  | Codec.Setup { req; call; route; transit; rate } ->
      do_setup t ~now ~req ~call ~route ~transit ~rate
  | Codec.Renegotiate { req; call; rate } -> do_renegotiate t ~now ~req ~call ~rate
  | Codec.Teardown { req; call } -> do_teardown t ~now ~req ~call
  | Codec.Audit_request { req } -> do_audit t ~req
  | Codec.Ack _ | Codec.Deny _ | Codec.Audit_reply _ ->
      (* Reply-typed traffic from a client is protocol misuse; drop it
         rather than guessing. *)
      t.stats.unexpected <- t.stats.unexpected + 1;
      None

let handle t conn ~now msg =
  match Codec.req msg with
  | Some req when Hashtbl.mem conn.seen req ->
      t.stats.duplicates <- t.stats.duplicates + 1;
      Hashtbl.find_opt conn.seen req
  | req ->
      let reply = dispatch t ~now msg in
      (match (req, reply) with
      | Some req, Some reply -> Hashtbl.replace conn.seen req reply
      | _ -> ());
      reply

let input t conn ~now bytes_str =
  Frame.Reader.feed_string conn.reader bytes_str;
  let out = ref [] in
  let rec pump () =
    match Frame.Reader.next conn.reader with
    | `Await -> Ok (List.rev !out)
    | `Fatal e -> Error e
    | `Error _ ->
        t.stats.decode_errors <- t.stats.decode_errors + 1;
        pump ()
    | `Msg msg ->
        (match handle t conn ~now msg with
        | None -> ()
        | Some reply -> out := Codec.frame reply :: !out);
        pump ()
  in
  pump ()

(* --- drain ------------------------------------------------------------ *)

type drain_report = { live_sessions : int; violations : int; demand : float }

let drain t =
  t.draining <- true;
  {
    live_sessions = Hashtbl.length t.sessions;
    violations = audit t;
    demand = total_demand t;
  }
