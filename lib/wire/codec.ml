module Rm_cell = Rcbr_signal.Rm_cell

type deny_reason =
  | Capacity
  | Blackout
  | Unknown_call
  | Duplicate_call
  | Bad_route
  | Draining
  | Downgraded

type t =
  | Delta of { vci : int; delta : float }
  | Resync of { vci : int; rate : float }
  | Setup of {
      req : int;
      call : int;
      route : int array;
      transit : bool;
      rate : float;
    }
  | Renegotiate of { req : int; call : int; rate : float }
  | Teardown of { req : int; call : int }
  | Ack of { req : int; applied : float }
  | Deny of { req : int; reason : deny_reason }
  | Audit_request of { req : int }
  | Audit_reply of { req : int; sessions : int; violations : int; demand : float }

let req = function
  | Delta _ | Resync _ -> None
  | Setup { req; _ }
  | Renegotiate { req; _ }
  | Teardown { req; _ }
  | Ack { req; _ }
  | Deny { req; _ }
  | Audit_request { req }
  | Audit_reply { req; _ } ->
      Some req

(* Bit-exact float equality so round-trip checks are strict (the codec
   moves IEEE-754 bits, not decimal renderings). *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  match (a, b) with
  | Delta a, Delta b -> a.vci = b.vci && feq a.delta b.delta
  | Resync a, Resync b -> a.vci = b.vci && feq a.rate b.rate
  | Setup a, Setup b ->
      a.req = b.req && a.call = b.call && a.transit = b.transit
      && feq a.rate b.rate && a.route = b.route
  | Renegotiate a, Renegotiate b ->
      a.req = b.req && a.call = b.call && feq a.rate b.rate
  | Teardown a, Teardown b -> a.req = b.req && a.call = b.call
  | Ack a, Ack b -> a.req = b.req && feq a.applied b.applied
  | Deny a, Deny b -> a.req = b.req && a.reason = b.reason
  | Audit_request a, Audit_request b -> a.req = b.req
  | Audit_reply a, Audit_reply b ->
      a.req = b.req && a.sessions = b.sessions && a.violations = b.violations
      && feq a.demand b.demand
  | _ -> false

let reason_to_string = function
  | Capacity -> "capacity"
  | Blackout -> "blackout"
  | Unknown_call -> "unknown-call"
  | Duplicate_call -> "duplicate-call"
  | Bad_route -> "bad-route"
  | Draining -> "draining"
  | Downgraded -> "downgraded"

let pp ppf = function
  | Delta { vci; delta } -> Format.fprintf ppf "delta vci=%d %+g" vci delta
  | Resync { vci; rate } -> Format.fprintf ppf "resync vci=%d %g" vci rate
  | Setup { req; call; route; transit; rate } ->
      Format.fprintf ppf "setup req=%d call=%d route=[%s]%s rate=%g" req call
        (String.concat ";" (Array.to_list (Array.map string_of_int route)))
        (if transit then " transit" else "")
        rate
  | Renegotiate { req; call; rate } ->
      Format.fprintf ppf "renegotiate req=%d call=%d rate=%g" req call rate
  | Teardown { req; call } -> Format.fprintf ppf "teardown req=%d call=%d" req call
  | Ack { req; applied } -> Format.fprintf ppf "ack req=%d applied=%g" req applied
  | Deny { req; reason } ->
      Format.fprintf ppf "deny req=%d %s" req (reason_to_string reason)
  | Audit_request { req } -> Format.fprintf ppf "audit req=%d" req
  | Audit_reply { req; sessions; violations; demand } ->
      Format.fprintf ppf "audit-reply req=%d sessions=%d violations=%d demand=%g"
        req sessions violations demand

(* --- validity --------------------------------------------------------- *)

let u32_max = 0xffff_ffff
let u16_max = 0xffff
let id_ok v = v >= 0 && v <= u32_max
let finite v = Float.is_finite v
let abs_rate_ok v = finite v && v >= 0.

let validate m =
  let bad fmt = Printf.ksprintf Option.some fmt in
  let id name v = if id_ok v then None else bad "%s %d outside [0, 2^32)" name v in
  let rate name v =
    if not (finite v) then bad "%s is not finite" name
    else if v < 0. then bad "%s %g is negative" name v
    else None
  in
  let fin name v = if finite v then None else bad "%s is not finite" name in
  let first = List.find_map Fun.id in
  match m with
  | Delta { vci; delta } -> first [ id "vci" vci; fin "delta" delta ]
  | Resync { vci; rate = r } -> first [ id "vci" vci; rate "rate" r ]
  | Setup { req; call; route; rate = r; _ } ->
      first
        [
          id "req" req;
          id "call" call;
          rate "rate" r;
          (if Array.length route = 0 then bad "route is empty"
           else if Array.length route > u16_max then
             bad "route has %d hops (max %d)" (Array.length route) u16_max
           else
             Array.find_opt (fun l -> l < 0 || l > u16_max) route
             |> Option.map (fun l ->
                    Printf.sprintf "route link id %d outside [0, 2^16)" l));
        ]
  | Renegotiate { req; call; rate = r } ->
      first [ id "req" req; id "call" call; rate "rate" r ]
  | Teardown { req; call } -> first [ id "req" req; id "call" call ]
  | Ack { req; applied } -> first [ id "req" req; rate "applied" applied ]
  | Deny { req; _ } -> id "req" req
  | Audit_request { req } -> id "req" req
  | Audit_reply { req; sessions; violations; demand } ->
      first
        [
          id "req" req;
          id "sessions" sessions;
          id "violations" violations;
          fin "demand" demand;
        ]

(* --- errors ----------------------------------------------------------- *)

type error =
  | Empty
  | Bad_tag of int
  | Truncated of { tag : int; need : int; have : int }
  | Trailing of { tag : int; extra : int }
  | Bad_bool of { tag : int; byte : int }
  | Bad_reason of int
  | Bad_rate of { field : string; value : float }
  | Empty_route
  | Oversized of { length : int; max : int }

let pp_error ppf = function
  | Empty -> Format.pp_print_string ppf "empty payload"
  | Bad_tag t -> Format.fprintf ppf "unknown message tag %d" t
  | Truncated { tag; need; have } ->
      Format.fprintf ppf "truncated message (tag %d): need %d bytes, have %d"
        tag need have
  | Trailing { tag; extra } ->
      Format.fprintf ppf "%d trailing byte(s) after message (tag %d)" extra tag
  | Bad_bool { tag; byte } ->
      Format.fprintf ppf "byte %d where a 0/1 flag was expected (tag %d)" byte
        tag
  | Bad_reason r -> Format.fprintf ppf "unknown deny reason code %d" r
  | Bad_rate { field; value } ->
      Format.fprintf ppf "field %s holds inadmissible rate %h" field value
  | Empty_route -> Format.pp_print_string ppf "setup carries an empty route"
  | Oversized { length; max } ->
      Format.fprintf ppf "frame length %d exceeds the %d-byte cap" length max

let error_to_string e = Format.asprintf "%a" pp_error e

(* --- encoding --------------------------------------------------------- *)

let tag_of = function
  | Delta _ -> 1
  | Resync _ -> 2
  | Setup _ -> 3
  | Renegotiate _ -> 4
  | Teardown _ -> 5
  | Ack _ -> 6
  | Deny _ -> 7
  | Audit_request _ -> 8
  | Audit_reply _ -> 9

let reason_code = function
  | Capacity -> 0
  | Blackout -> 1
  | Unknown_call -> 2
  | Duplicate_call -> 3
  | Bad_route -> 4
  | Draining -> 5
  | Downgraded -> 6

let reason_of_code = function
  | 0 -> Some Capacity
  | 1 -> Some Blackout
  | 2 -> Some Unknown_call
  | 3 -> Some Duplicate_call
  | 4 -> Some Bad_route
  | 5 -> Some Draining
  | 6 -> Some Downgraded
  | _ -> None

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u16 b (v lsr 16);
  add_u16 b v

let add_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let encode m =
  (match validate m with
  | Some why -> invalid_arg ("Rcbr_wire.Codec.encode: " ^ why)
  | None -> ());
  let b = Buffer.create 24 in
  add_u8 b (tag_of m);
  (match m with
  | Delta { vci; delta } ->
      add_u32 b vci;
      add_f64 b delta
  | Resync { vci; rate } ->
      add_u32 b vci;
      add_f64 b rate
  | Setup { req; call; route; transit; rate } ->
      add_u32 b req;
      add_u32 b call;
      add_u8 b (if transit then 1 else 0);
      add_f64 b rate;
      add_u16 b (Array.length route);
      Array.iter (add_u16 b) route
  | Renegotiate { req; call; rate } ->
      add_u32 b req;
      add_u32 b call;
      add_f64 b rate
  | Teardown { req; call } ->
      add_u32 b req;
      add_u32 b call
  | Ack { req; applied } ->
      add_u32 b req;
      add_f64 b applied
  | Deny { req; reason } ->
      add_u32 b req;
      add_u8 b (reason_code reason)
  | Audit_request { req } -> add_u32 b req
  | Audit_reply { req; sessions; violations; demand } ->
      add_u32 b req;
      add_u32 b sessions;
      add_u32 b violations;
      add_f64 b demand);
  Buffer.contents b

(* --- decoding --------------------------------------------------------- *)

let get_u8 s pos = Char.code (String.unsafe_get s pos)
let get_u16 s pos = (get_u8 s pos lsl 8) lor get_u8 s (pos + 1)

let get_u32 s pos =
  (get_u16 s pos lsl 16) lor get_u16 s (pos + 2)

let get_f64 s pos =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (get_u8 s (pos + i)))
  done;
  Int64.float_of_bits !bits

(* Every access is guarded by an explicit length check before the byte
   reads, so the unsafe gets above can never escape the buffer and the
   parser is total by construction. *)
let decode s =
  let have = String.length s in
  if have = 0 then Error Empty
  else
    let tag = get_u8 s 0 in
    let ( let* ) r k = match r with Error _ as e -> e | Ok v -> k v in
    let need n = if have < n then Error (Truncated { tag; need = n; have }) else Ok () in
    let exact n m =
      let* () = need n in
      if have > n then Error (Trailing { tag; extra = have - n }) else m ()
    in
    let fin field v =
      if Float.is_finite v then Ok v else Error (Bad_rate { field; value = v })
    in
    let abs field v =
      if abs_rate_ok v then Ok v else Error (Bad_rate { field; value = v })
    in
    match tag with
    | 1 ->
        exact 13 (fun () ->
            let* delta = fin "delta" (get_f64 s 5) in
            Ok (Delta { vci = get_u32 s 1; delta }))
    | 2 ->
        exact 13 (fun () ->
            let* rate = abs "rate" (get_f64 s 5) in
            Ok (Resync { vci = get_u32 s 1; rate }))
    | 3 ->
        let* () = need 20 in
        let n = get_u16 s 18 in
        if n = 0 then Error Empty_route
        else
          exact
            (20 + (2 * n))
            (fun () ->
              let* transit =
                match get_u8 s 9 with
                | 0 -> Ok false
                | 1 -> Ok true
                | byte -> Error (Bad_bool { tag; byte })
              in
              let* rate = abs "rate" (get_f64 s 10) in
              let route = Array.init n (fun i -> get_u16 s (20 + (2 * i))) in
              Ok
                (Setup
                   { req = get_u32 s 1; call = get_u32 s 5; route; transit; rate }))
    | 4 ->
        exact 17 (fun () ->
            let* rate = abs "rate" (get_f64 s 9) in
            Ok (Renegotiate { req = get_u32 s 1; call = get_u32 s 5; rate }))
    | 5 ->
        exact 9 (fun () ->
            Ok (Teardown { req = get_u32 s 1; call = get_u32 s 5 }))
    | 6 ->
        exact 13 (fun () ->
            let* applied = abs "applied" (get_f64 s 5) in
            Ok (Ack { req = get_u32 s 1; applied }))
    | 7 ->
        exact 6 (fun () ->
            match reason_of_code (get_u8 s 5) with
            | Some reason -> Ok (Deny { req = get_u32 s 1; reason })
            | None -> Error (Bad_reason (get_u8 s 5)))
    | 8 -> exact 5 (fun () -> Ok (Audit_request { req = get_u32 s 1 }))
    | 9 ->
        exact 21 (fun () ->
            let* demand = fin "demand" (get_f64 s 13) in
            Ok
              (Audit_reply
                 {
                   req = get_u32 s 1;
                   sessions = get_u32 s 5;
                   violations = get_u32 s 9;
                   demand;
                 }))
    | _ -> Error (Bad_tag tag)

(* --- framing ---------------------------------------------------------- *)

(* Largest encodable payload: a Setup with a 65535-hop route
   (20 + 2*65535 bytes), rounded up to a power of two for slack. *)
let max_frame = 1 lsl 18

let frame m =
  let payload = encode m in
  let b = Buffer.create (String.length payload + 4) in
  add_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* --- RM-cell bridge --------------------------------------------------- *)

let of_rm_cell (c : Rm_cell.t) =
  match c.Rm_cell.payload with
  | Rm_cell.Delta d -> Delta { vci = c.Rm_cell.vci; delta = d }
  | Rm_cell.Resync r -> Resync { vci = c.Rm_cell.vci; rate = r }

let to_rm_cell = function
  | Delta { vci; delta } -> Some (Rm_cell.delta ~vci delta)
  | Resync { vci; rate } -> Some (Rm_cell.resync ~vci rate)
  | _ -> None
