(** Byte-level wire format for the RCBR signalling plane.

    Every signalling message — RM delta/resync cells and session
    setup/renegotiate/teardown with their ack/deny/audit replies — has a
    binary encoding: one tag byte followed by fixed-width big-endian
    fields (u32 ids, IEEE-754 f64 rates, u16 route entries).  On the
    wire a message travels inside a length-prefixed frame
    ({!frame} / {!Frame.Reader}), so a stream survives partial reads and
    pipelined messages.

    The codec is a total, error-typed inversion pair in the style of
    mitls-fstar's [renegotiationInfoBytes]/[parseRenegotiationInfo]:
    {!decode} never raises — every malformed, truncated, or
    trailing-garbage buffer maps to a typed {!error} — and
    [decode (encode m) = Ok m] for every valid message, a property the
    test suite checks by qcheck round-trip and byte-fuzz. *)

(** {1 Messages} *)

type deny_reason =
  | Capacity  (** the rate does not fit on every route link *)
  | Blackout  (** a route link is inside a crash blackout *)
  | Unknown_call  (** no session with this call id *)
  | Duplicate_call  (** setup for a call id that is already live *)
  | Bad_route  (** a route link id is outside the switch's topology *)
  | Draining  (** the switch is shutting down and takes no new work *)
  | Downgraded
      (** the demanded rate was granted only at a lower service tier
          (Downgrade model, DESIGN.md section 15); the change was not
          applied as demanded *)

type t =
  | Delta of { vci : int; delta : float }
      (** RM cell: change the rate by [delta] b/s (may be negative).
          Fire-and-forget — never acked, drift is repaired by resync. *)
  | Resync of { vci : int; rate : float }
      (** RM cell: the absolute current rate, repairing delta drift. *)
  | Setup of {
      req : int;
      call : int;
      route : int array;  (** link ids, in hop order; 1..65535 entries *)
      transit : bool;
      rate : float;
    }
  | Renegotiate of { req : int; call : int; rate : float }
  | Teardown of { req : int; call : int }
  | Ack of { req : int; applied : float }
  | Deny of { req : int; reason : deny_reason }
  | Audit_request of { req : int }
  | Audit_reply of {
      req : int;
      sessions : int;
      violations : int;
      demand : float;  (** sum of link demands, b/s *)
    }

val req : t -> int option
(** The request id carried by request/reply messages; [None] for the
    fire-and-forget RM cells. *)

val equal : t -> t -> bool
(** Structural equality with floats compared by their IEEE-754 bits, so
    round-trip checks are exact (and [-0.] distinct from [0.]). *)

val pp : Format.formatter -> t -> unit

(** {1 Validity}

    Encodable messages satisfy: ids ([vci], [req], [call], [sessions],
    [violations]) in [0, 2^32); route non-empty with at most 65535
    entries, each in [0, 2^16); rates and [applied]/[demand] finite,
    with [rate] nonnegative where it is an absolute rate ([Resync],
    [Setup], [Renegotiate], [Ack]); [delta] and [demand] finite but of
    any sign.  {!decode} enforces the same constraints, so the image of
    {!encode} is exactly the set of buffers that decode [Ok]. *)

val validate : t -> string option
(** [None] when the message is encodable, or a description of the first
    violated constraint. *)

(** {1 The inversion pair} *)

type error =
  | Empty  (** zero-length payload *)
  | Bad_tag of int
  | Truncated of { tag : int; need : int; have : int }
      (** payload shorter than the message's fields require *)
  | Trailing of { tag : int; extra : int }
      (** bytes left over after a complete message *)
  | Bad_bool of { tag : int; byte : int }
  | Bad_reason of int
  | Bad_rate of { field : string; value : float }
      (** non-finite, or negative where an absolute rate is required *)
  | Empty_route  (** a [Setup] with a zero-length route *)
  | Oversized of { length : int; max : int }
      (** framing: a length prefix beyond {!max_frame} — unrecoverable
          on a stream, the connection must be torn down *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val encode : t -> string
(** The message's payload bytes (no length prefix).  Raises
    [Invalid_argument] with the {!validate} description on an
    unencodable message — construction-time discipline, mirrored by the
    parser so the pair stays inverse. *)

val decode : string -> (t, error) result
(** Total: returns a typed [Error] on every buffer that is not exactly
    the encoding of one valid message, and never raises. *)

(** {1 Framing} *)

val max_frame : int
(** Upper bound on an encodable payload (a maximal-route [Setup] plus
    slack).  {!Frame.Reader} rejects length prefixes beyond it. *)

val frame : t -> string
(** [encode m] behind a 4-byte big-endian length prefix — the unit of
    transmission. *)

(** {1 RM-cell bridge} *)

val of_rm_cell : Rcbr_signal.Rm_cell.t -> t
(** [Delta]/[Resync] carrying the cell's VCI and payload. *)

val to_rm_cell : t -> Rcbr_signal.Rm_cell.t option
(** The inverse on RM-cell messages; [None] on session signalling. *)
