module Topology = Rcbr_net.Topology
module Rng = Rcbr_util.Rng

type op =
  | Op_setup of { call : int; route : int array; transit : bool; rate : float }
  | Op_reneg of { call : int; rate : float }
  | Op_delta of { call : int; delta : float }
  | Op_resync of { call : int; rate : float }
  | Op_teardown of { call : int }

let op_call = function
  | Op_setup { call; _ }
  | Op_reneg { call; _ }
  | Op_delta { call; _ }
  | Op_resync { call; _ }
  | Op_teardown { call } ->
      call

let message_of_op ~req = function
  | Op_setup { call; route; transit; rate } ->
      Codec.Setup { req; call; route; transit; rate }
  | Op_reneg { call; rate } -> Codec.Renegotiate { req; call; rate }
  | Op_delta { call; delta } -> Codec.Delta { vci = call; delta }
  | Op_resync { call; rate } -> Codec.Resync { vci = call; rate }
  | Op_teardown { call } -> Codec.Teardown { req; call }

let storm ~topology ~calls ~rounds ~rate_max ~rm_fraction ~seed ~conns =
  if calls < 0 then invalid_arg "Loadgen.storm: calls < 0";
  if conns < 1 then invalid_arg "Loadgen.storm: conns < 1";
  if not (rate_max > 0.) then invalid_arg "Loadgen.storm: rate_max <= 0";
  if not (rm_fraction >= 0. && rm_fraction <= 1.) then
    invalid_arg "Loadgen.storm: rm_fraction outside [0,1]";
  let n_routes = Topology.n_routes topology in
  let per_conn = Array.init conns (fun c -> Rng.create (seed + (1000 * c))) in
  let ops = Array.make conns [] in
  let push c op = ops.(c) <- op :: ops.(c) in
  let conn_of call = call mod conns in
  (* The client's model of each call's rate, mirrored from the op
     semantics so deltas stay sensible (never driving the rate
     negative on the wire model). *)
  let believed = Array.make (max calls 1) 0. in
  (* Setups first, then [rounds] interleaved renegotiation waves over
     all calls, then teardowns — a storm, not per-call bursts. *)
  for call = 0 to calls - 1 do
    let c = conn_of call in
    let rng = per_conn.(c) in
    let rate = Rng.float_range rng 0.1 (0.25 *. rate_max) in
    believed.(call) <- rate;
    push c
      (Op_setup
         {
           call;
           route = topology.Topology.routes.(call mod n_routes);
           transit = Array.length topology.Topology.routes.(call mod n_routes) > 1;
           rate;
         })
  done;
  for round = 0 to rounds - 1 do
    for call = 0 to calls - 1 do
      let c = conn_of call in
      let rng = per_conn.(c) in
      let target = Rng.float_range rng 0. rate_max in
      if Rng.float rng < rm_fraction then begin
        push c (Op_delta { call; delta = target -. believed.(call) });
        believed.(call) <- target;
        if round mod 3 = 2 then push c (Op_resync { call; rate = target })
      end
      else begin
        push c (Op_reneg { call; rate = target });
        believed.(call) <- target
      end
    done
  done;
  for call = 0 to calls - 1 do
    push (conn_of call) (Op_teardown { call })
  done;
  Array.map List.rev ops

(* --- request bookkeeping ---------------------------------------------- *)

let backoff ~base ~attempt = base *. (2. ** float_of_int attempt)

type outcome =
  | Acked of float
  | Denied of Codec.deny_reason
  | Gave_up
  | Sent

let pp_outcome ppf = function
  | Acked r -> Format.fprintf ppf "acked %g" r
  | Denied reason ->
      Format.fprintf ppf "denied(%s)"
        (match reason with
        | Codec.Capacity -> "capacity"
        | Codec.Blackout -> "blackout"
        | Codec.Unknown_call -> "unknown-call"
        | Codec.Duplicate_call -> "duplicate-call"
        | Codec.Bad_route -> "bad-route"
        | Codec.Draining -> "draining"
        | Codec.Downgraded -> "downgraded")
  | Gave_up -> Format.pp_print_string ppf "gave-up"
  | Sent -> Format.pp_print_string ppf "sent"

(* FNV-1a over the (req, outcome) stream in request-id order.  The mix
   stays inside OCaml's 63-bit int; masking keeps the printed digest
   stable across platforms with the same int width. *)
let outcome_hash outcomes =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) outcomes
  in
  let mix h v = (h lxor v) * 0x100000001b3 land max_int in
  List.fold_left
    (fun h (req, outcome) ->
      let h = mix h req in
      match outcome with
      | Acked r -> mix (mix h 1) (Int64.to_int (Int64.bits_of_float r) land max_int)
      | Denied reason ->
          mix (mix h 2)
            (match reason with
            | Codec.Capacity -> 10
            | Codec.Blackout -> 11
            | Codec.Unknown_call -> 12
            | Codec.Duplicate_call -> 13
            | Codec.Bad_route -> 14
            | Codec.Draining -> 15
            | Codec.Downgraded -> 16)
      | Gave_up -> mix h 3
      | Sent -> mix h 4)
    0x2545F4914F6CDD1D sorted
