type t = { rate : float; depth : float; mutable tokens : float }

let create ~rate ~depth =
  assert (rate >= 0. && depth >= 0.);
  { rate; depth; tokens = depth }

let rate t = t.rate
let depth t = t.depth
let tokens t = t.tokens

let refill t ~dt =
  assert (dt >= 0.);
  t.tokens <- Float.min t.depth (t.tokens +. (t.rate *. dt))

let try_consume t bits =
  assert (bits >= 0.);
  if bits <= t.tokens then begin
    t.tokens <- t.tokens -. bits;
    true
  end
  else false

let conforming_fraction t ~trace =
  let dt = Trace.slot_duration trace in
  let conforming = ref 0. in
  for i = 0 to Trace.length trace - 1 do
    refill t ~dt;
    let bits = Trace.frame trace i in
    if try_consume t bits then conforming := !conforming +. bits
  done;
  let total = Trace.total_bits trace in
  if Float.equal total 0. then 1. else !conforming /. total

let min_depth_for_trace trace ~rate =
  assert (rate >= 0.);
  (* Virtual queue with infinite buffer drained at [rate]; the max
     backlog is the depth needed for zero policing loss. *)
  let per_slot = rate /. Trace.fps trace in
  let backlog = ref 0. and peak = ref 0. in
  for i = 0 to Trace.length trace - 1 do
    backlog := Float.max 0. (!backlog +. Trace.frame trace i -. per_slot);
    if !backlog > !peak then peak := !backlog
  done;
  !peak
