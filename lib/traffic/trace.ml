type t = { fps : float; frames : float array; prefix : float array }
(* [prefix.(i)] is the total bits of frames [0 .. i-1].  Computed once at
   construction: every consumer of cumulative arrivals (the trellis
   delay bound, sigma-rho searches, SMG sweeps) reads this array instead
   of re-summing the trace, and sharing it eagerly keeps the record
   immutable — safe to read from any domain of the work pool. *)

let prefix_of frames =
  let n = Array.length frames in
  let prefix = Array.make (n + 1) 0. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. frames.(i)
  done;
  prefix

let of_owned_frames ~fps frames = { fps; frames; prefix = prefix_of frames }

let create ~fps frames =
  assert (fps > 0.);
  assert (Array.length frames > 0);
  Array.iter (fun x -> assert (x >= 0.)) frames;
  of_owned_frames ~fps (Array.copy frames)

let fps t = t.fps
let length t = Array.length t.frames
let frame t i = t.frames.(i)
let frames t = Array.copy t.frames
let raw_frames t = t.frames
let prefix_sums t = t.prefix
let slot_duration t = 1. /. t.fps
let duration t = float_of_int (length t) /. t.fps
let total_bits t = t.prefix.(length t)
let mean_rate t = total_bits t /. duration t
let peak_rate t = Array.fold_left Float.max 0. t.frames *. t.fps

let window_max_bits t w =
  let n = length t in
  assert (w >= 1 && w <= n);
  let best = ref neg_infinity in
  for i = w to n do
    let sum = t.prefix.(i) -. t.prefix.(i - w) in
    if sum > !best then best := sum
  done;
  !best

let rate_in_window t ~lo ~hi =
  assert (lo >= 0 && hi < length t && lo <= hi);
  (t.prefix.(hi + 1) -. t.prefix.(lo)) *. t.fps /. float_of_int (hi - lo + 1)

let shift t k =
  let n = length t in
  let k = ((k mod n) + n) mod n in
  of_owned_frames ~fps:t.fps
    (Array.init n (fun i -> t.frames.((i + k) mod n)))

let sub t ~pos ~len =
  assert (pos >= 0 && len > 0 && pos + len <= length t);
  of_owned_frames ~fps:t.fps (Array.sub t.frames pos len)

let sustained_peak t ~threshold =
  let per_frame = threshold /. t.fps in
  let best = ref 0 and run = ref 0 in
  Array.iter
    (fun x ->
      if x >= per_frame then begin
        incr run;
        if !run > !best then best := !run
      end
      else run := 0)
    t.frames;
  !best

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%.17g\n" t.fps;
      Array.iter (fun x -> Printf.fprintf oc "%.17g\n" x) t.frames)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fps = float_of_string (String.trim (input_line ic)) in
      let frames = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" then frames := float_of_string line :: !frames
         done
       with End_of_file -> ());
      create ~fps (Array.of_list (List.rev !frames)))

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>frames: %d (%.1f s @ %.0f fps)@,mean rate: %.1f kb/s@,\
     peak frame rate: %.1f kb/s@,max 3-frame burst: %.1f kb@]"
    (length t) (duration t) t.fps
    (mean_rate t /. 1e3)
    (peak_rate t /. 1e3)
    (window_max_bits t (min 3 (length t)) /. 1e3)
