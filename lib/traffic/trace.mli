(** Frame-level traffic traces.

    A trace is the per-frame data volume (in bits) of a video stream at a
    fixed frame rate — the slotted-time workload consumed by every
    algorithm in the repository (one slot = one frame, as in Section
    IV-A). *)

type t

val create : fps:float -> float array -> t
(** [create ~fps frames] with [frames.(i)] the bits of frame [i].
    Requires [fps > 0], at least one frame, nonnegative sizes.  The array
    is copied. *)

val fps : t -> float
val length : t -> int
val frame : t -> int -> float
val frames : t -> float array
(** A fresh copy of the frame-size array. *)

val raw_frames : t -> float array
(** The trace's own frame array, {e not} a copy — read-only access for
    hot loops (the fluid-queue kernel) that cannot afford the copy of
    {!frames}.  Mutating it is undefined behaviour. *)

val prefix_sums : t -> float array
(** Cumulative arrivals: element [i] is the total bits of frames
    [0 .. i-1] (so the array has [length t + 1] entries and element 0 is
    0).  Computed once at construction and shared — do {e not} mutate.
    [prefix.(j) -. prefix.(i)] is the bits of frames [i .. j-1]. *)

val slot_duration : t -> float
(** Seconds per frame, [1 /. fps]. *)

val duration : t -> float
(** Total seconds. *)

val total_bits : t -> float

val mean_rate : t -> float
(** Long-term average in bits per second. *)

val peak_rate : t -> float
(** Largest single-frame rate in bits per second. *)

val window_max_bits : t -> int -> float
(** [window_max_bits t w] is the maximum total bits over any [w]
    consecutive frames.  Requires [1 <= w <= length]. *)

val rate_in_window : t -> lo:int -> hi:int -> float
(** Average rate (b/s) over frames [lo..hi] inclusive. *)

val shift : t -> int -> t
(** Circular shift: frame [i] of the result is frame [(i + k) mod n] of
    the input — the paper's "randomly shifted versions" of a trace. *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous slice. *)

val sustained_peak : t -> threshold:float -> int
(** Length (in frames) of the longest run whose every frame rate is at
    least [threshold] b/s. *)

val save : t -> string -> unit
(** Text format: first line [fps], then one frame size per line. *)

val load : string -> t

val pp_summary : Format.formatter -> t -> unit
