module Schedule = Rcbr_core.Schedule

(* The booked-rate function is piecewise constant; we store the change
   points in a sorted map from time to the rate delta at that instant. *)
type t = { capacity : float; mutable deltas : (float * float) list }
(* [deltas] sorted by time ascending; booked rate at time x is the sum
   of deltas at times <= x. *)

let create ~capacity =
  assert (capacity > 0.);
  { capacity; deltas = [] }

let capacity t = t.capacity

let add_delta t at delta =
  let rec insert = function
    | [] -> [ (at, delta) ]
    | (time, d) :: rest when time = at ->
        let d' = d +. delta in
        if Float.abs d' < 1e-9 then rest else (time, d') :: rest
    | (time, _) :: _ as all when time > at -> (at, delta) :: all
    | entry :: rest -> entry :: insert rest
  in
  t.deltas <- insert t.deltas

let reserved_at t x =
  List.fold_left
    (fun acc (time, d) -> if time <= x then acc +. d else acc)
    0. t.deltas

let peak_reserved t ~from_ ~until =
  assert (from_ < until);
  (* Evaluate at the window start and at every change point inside. *)
  let peak = ref (reserved_at t from_) in
  let level = ref 0. in
  List.iter
    (fun (time, d) ->
      level := !level +. d;
      if time > from_ && time < until && !level > !peak then peak := !level)
    t.deltas;
  !peak

let book t ~from_ ~until ~rate =
  assert (rate >= 0. && from_ < until);
  if Float.equal rate 0. then true
  else if peak_reserved t ~from_ ~until +. rate > t.capacity +. 1e-9 then false
  else begin
    add_delta t from_ rate;
    add_delta t until (-.rate);
    true
  end

let release t ~from_ ~until ~rate =
  assert (rate >= 0. && from_ < until);
  if rate > 0. then begin
    add_delta t from_ (-.rate);
    add_delta t until rate
  end

let book_schedule t ~start sched =
  let segs = Schedule.segments sched in
  let n = Array.length segs in
  let fps = Schedule.fps sched in
  let seg_window i =
    let stop =
      if i + 1 < n then segs.(i + 1).Schedule.start_slot
      else Schedule.n_slots sched
    in
    ( start +. (float_of_int segs.(i).Schedule.start_slot /. fps),
      start +. (float_of_int stop /. fps) )
  in
  let booked = ref [] in
  let ok = ref true in
  (try
     Array.iteri
       (fun i seg ->
         let from_, until = seg_window i in
         if seg.Schedule.rate > 0. then
           if book t ~from_ ~until ~rate:seg.Schedule.rate then
             booked := (from_, until, seg.Schedule.rate) :: !booked
           else begin
             ok := false;
             raise Exit
           end)
       segs
   with Exit -> ());
  if not !ok then
    List.iter
      (fun (from_, until, rate) -> release t ~from_ ~until ~rate)
      !booked;
  !ok

let booked_area t ~from_ ~until =
  assert (from_ < until);
  (* Integrate the piecewise-constant rate across the window. *)
  let points =
    List.filter_map
      (fun (time, _) -> if time > from_ && time < until then Some time else None)
      t.deltas
  in
  let points = from_ :: (points @ [ until ]) in
  let rec integrate acc = function
    | a :: (b :: _ as rest) ->
        integrate (acc +. (reserved_at t a *. (b -. a))) rest
    | [ _ ] | [] -> acc
  in
  integrate 0. points
