type mode = Stateless | Tracked

(* The last request id seen for a VCI and whether its delta is currently
   applied: retransmitted or duplicated RM cells of the same request
   must not double-apply, and a rolled-back request may legitimately be
   re-applied by a later retransmission. *)
type req_state = { id : int; mutable applied : bool }

type t = {
  mode : mode;
  capacity : float;
  mutable reserved : float;
  rates : (int, float) Hashtbl.t;
  last_req : (int, req_state) Hashtbl.t;
  mutable up : bool;
}

let create ?(mode = Tracked) ~capacity () =
  assert (capacity > 0.);
  {
    mode;
    capacity;
    reserved = 0.;
    rates = Hashtbl.create 64;
    last_req = Hashtbl.create 64;
    up = true;
  }

let capacity t = t.capacity
let reserved t = t.reserved
let mode t = t.mode
let is_up t = t.up

let vci_rate t vci =
  match t.mode with
  | Stateless -> 0.
  | Tracked -> ( try Hashtbl.find t.rates vci with Not_found -> 0.)

let process t cell =
  let vci = cell.Rm_cell.vci in
  let change =
    match (t.mode, cell.Rm_cell.payload) with
    | Stateless, Rm_cell.Resync _ -> 0.
    | Stateless, Rm_cell.Delta d -> d
    | Tracked, _ ->
        Rm_cell.payload_rate_change cell ~current:(vci_rate t vci)
  in
  if not t.up then `Denied
  else if change <= 0. || t.reserved +. change <= t.capacity then begin
    t.reserved <- Float.max 0. (t.reserved +. change);
    (match t.mode with
    | Stateless -> ()
    | Tracked -> Hashtbl.replace t.rates vci (Float.max 0. (vci_rate t vci +. change)));
    `Granted
  end
  else `Denied

let process_request t ~req_id cell =
  let vci = cell.Rm_cell.vci in
  match Hashtbl.find_opt t.last_req vci with
  | Some r when r.id = req_id && r.applied ->
      (* The same request again (retransmission or duplicate): it is
         already in force here, so acknowledge without reapplying. *)
      `Granted
  | _ ->
      let verdict = process t cell in
      Hashtbl.replace t.last_req vci
        { id = req_id; applied = (verdict = `Granted) };
      verdict

let rollback_request t ~req_id cell =
  let vci = cell.Rm_cell.vci in
  match Hashtbl.find_opt t.last_req vci with
  | Some r when r.id = req_id && r.applied ->
      (match process t cell with
      | `Granted -> ()
      | `Denied -> assert false
      (* undoing an increase always fits; undoing a decrease restores a
         reservation that fit before *));
      r.applied <- false
  | _ -> ()

let release t ~vci ~rate =
  assert (rate >= 0.);
  (* In Tracked mode return what this port actually believes the VCI
     holds — under signalling faults the caller's view and the port's
     may have drifted, and releasing the caller's figure would corrupt
     the other VCIs' share of the aggregate. *)
  let freed = match t.mode with Stateless -> rate | Tracked -> vci_rate t vci in
  t.reserved <- Float.max 0. (t.reserved -. freed);
  match t.mode with
  | Stateless -> ()
  | Tracked ->
      Hashtbl.remove t.rates vci;
      Hashtbl.remove t.last_req vci

let crash t =
  t.up <- false;
  t.reserved <- 0.;
  Hashtbl.reset t.rates;
  Hashtbl.reset t.last_req

let recover t = t.up <- true

let drift t ~actual = t.reserved -. actual

let view t ~index =
  {
    Rcbr_fault.Invariant.index;
    capacity = t.capacity;
    reserved = t.reserved;
    vci_rates =
      (match t.mode with
      | Stateless -> None
      | Tracked -> Some (Rcbr_util.Tables.sorted_bindings t.rates));
  }
