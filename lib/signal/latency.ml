module Schedule = Rcbr_core.Schedule
module Fluid = Rcbr_queue.Fluid
module Tables = Rcbr_util.Tables

let remap f sched =
  let n = Schedule.n_slots sched in
  let segs = Array.to_list (Schedule.segments sched) in
  let moved =
    List.filteri (fun i _ -> i > 0) segs
    |> List.filter_map (fun s ->
           let slot = f s.Schedule.start_slot in
           if slot >= n then None
           else Some { s with Schedule.start_slot = max 0 slot })
  in
  (* Collisions: a later-issued change overrides an earlier one landing
     on the same slot, and a change pushed to slot 0 overrides the
     initial rate. *)
  let first = List.hd segs in
  let table = Hashtbl.create 16 in
  Hashtbl.replace table 0 first.Schedule.rate;
  List.iter
    (fun s -> Hashtbl.replace table s.Schedule.start_slot s.Schedule.rate)
    moved;
  let slots = Tables.sorted_keys table in
  let segs' =
    List.map
      (fun slot -> { Schedule.start_slot = slot; rate = Hashtbl.find table slot })
      slots
  in
  Schedule.create ~fps:(Schedule.fps sched) ~n_slots:n segs'

let delay sched ~seconds =
  assert (seconds >= 0.);
  let slots = int_of_float (Float.ceil (seconds *. Schedule.fps sched)) in
  remap (fun s -> s + slots) sched

let anticipate sched ~seconds =
  assert (seconds >= 0.);
  let slots = int_of_float (Float.ceil (seconds *. Schedule.fps sched)) in
  remap (fun s -> s - slots) sched

let align_to_refresh sched ~period_s =
  assert (period_s > 0.);
  let fps = Schedule.fps sched in
  let period_slots = Float.max 1. (period_s *. fps) in
  remap
    (fun s ->
      int_of_float (Float.ceil (float_of_int s /. period_slots) *. period_slots))
    sched

let backlog_penalty ~original ~modified ~trace ~capacity =
  let base = Schedule.simulate_buffer original ~trace ~capacity:infinity in
  let got = Schedule.simulate_buffer modified ~trace ~capacity in
  ( got.Fluid.max_backlog -. base.Fluid.max_backlog,
    Fluid.loss_fraction got )
