module Trace = Rcbr_traffic.Trace
module Schedule = Rcbr_core.Schedule
module Fluid = Rcbr_queue.Fluid
module Sigma_rho = Rcbr_queue.Sigma_rho
module Rng = Rcbr_util.Rng
module Numeric = Rcbr_util.Numeric
module Pool = Rcbr_util.Pool

type config = {
  trace : Rcbr_traffic.Trace.t;
  schedule : Rcbr_core.Schedule.t;
  buffer : float;
  target_loss : float;
  replications : int;
  seed : int;
}

let validate c =
  if Schedule.n_slots c.schedule <> Trace.length c.trace then
    invalid_arg "Smg: schedule/trace length mismatch";
  if Schedule.fps c.schedule <> Trace.fps c.trace then
    invalid_arg "Smg: schedule/trace fps mismatch";
  if c.buffer <= 0. then invalid_arg "Smg: buffer";
  if c.target_loss < 0. then invalid_arg "Smg: target_loss";
  if c.replications <= 0 then invalid_arg "Smg: replications"

let min_capacity_cbr c =
  validate c;
  Sigma_rho.min_rate ~trace:c.trace ~buffer:c.buffer
    ~target_loss:c.target_loss ()

(* Random phases for one replication: stream 0 keeps phase 0 so a single
   stream reproduces the unshifted workload. *)
let phases rng ~n ~slots =
  Array.init n (fun i -> if i = 0 then 0 else Rng.int rng slots)

(* Replications are independent given their generator, so each gets a
   sequentially pre-split child stream and the replication bodies run on
   the pool: the result is bit-identical for every jobs count. *)
let split_rngs ~seed ~replications =
  let master = Rng.create seed in
  Array.init replications (fun _ -> Rng.split master)

let shared_aggregates ?pool c ~n =
  let slots = Trace.length c.trace in
  let frames = Trace.raw_frames c.trace in
  let rngs = split_rngs ~seed:c.seed ~replications:c.replications in
  Pool.map_array ?pool
    (fun rng ->
      let ph = phases rng ~n ~slots in
      let agg = Array.make slots 0. in
      Array.iter
        (fun shift ->
          for i = 0 to slots - 1 do
            agg.(i) <- agg.(i) +. frames.((i + shift) mod slots)
          done)
        ph;
      agg)
    rngs

let shared_loss_of_aggregates c ~n aggregates capacity_per_stream =
  let fn = float_of_int n in
  let fps = Trace.fps c.trace in
  let total =
    Array.fold_left
      (fun acc agg ->
        let r =
          Fluid.run_aggregate ~capacity:(fn *. c.buffer)
            ~rate:(fn *. capacity_per_stream) ~fps [| agg |]
        in
        (* Same convention as Sigma_rho: bits still buffered at the end
           of the session were never delivered. *)
        acc
        +.
        if Float.equal r.Fluid.bits_offered 0. then 0.
        else
          (r.Fluid.bits_lost +. r.Fluid.final_backlog) /. r.Fluid.bits_offered)
      0. aggregates
  in
  total /. float_of_int (Array.length aggregates)

let shared_loss ?pool c ~n ~capacity_per_stream =
  validate c;
  shared_loss_of_aggregates c ~n (shared_aggregates ?pool c ~n)
    capacity_per_stream

let min_capacity_shared ?pool c ~n =
  validate c;
  let aggregates = shared_aggregates ?pool c ~n in
  let hi = min_capacity_cbr c in
  let lo = Trace.mean_rate c.trace in
  let pred cap = shared_loss_of_aggregates c ~n aggregates cap <= c.target_loss in
  if pred lo then lo else Numeric.find_min_such_that ~tol:1e-4 ~pred lo hi

(* RCBR demand profiles, summarized as a descending-sorted demand array
   with prefix sums so that the loss at any capacity is O(log slots). *)
type demand_profile = { sorted : float array; prefix : float array; total : float }

let profile_of_demand demand =
  let sorted = Array.copy demand in
  Array.sort (fun a b -> compare b a) sorted;
  let nslots = Array.length sorted in
  let prefix = Array.make (nslots + 1) 0. in
  for i = 0 to nslots - 1 do
    prefix.(i + 1) <- prefix.(i) +. sorted.(i)
  done;
  { sorted; prefix; total = prefix.(nslots) }

let profile_loss p link_rate =
  (* Bits lost per slot are (demand - link)+; with the demand sorted
     descending, only a prefix exceeds the link. *)
  if Float.equal p.total 0. then 0.
  else begin
    let nslots = Array.length p.sorted in
    (* First index with sorted.(i) <= link_rate. *)
    let lo = ref 0 and hi = ref nslots in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if p.sorted.(mid) <= link_rate then hi := mid else lo := mid + 1
    done;
    let k = !lo in
    let excess = p.prefix.(k) -. (float_of_int k *. link_rate) in
    Float.max 0. excess /. p.total
  end

let rcbr_profiles ?pool c ~n =
  let slots = Schedule.n_slots c.schedule in
  let base = Schedule.to_rates c.schedule in
  let rngs = split_rngs ~seed:(c.seed + 1) ~replications:c.replications in
  Pool.map_array ?pool
    (fun rng ->
      let ph = phases rng ~n ~slots in
      let demand = Array.make slots 0. in
      Array.iter
        (fun shift ->
          for i = 0 to slots - 1 do
            demand.(i) <- demand.(i) +. base.((i + shift) mod slots)
          done)
        ph;
      profile_of_demand demand)
    rngs

let rcbr_loss_of_profiles ~n profiles capacity_per_stream =
  let link = float_of_int n *. capacity_per_stream in
  let total =
    Array.fold_left (fun acc p -> acc +. profile_loss p link) 0. profiles
  in
  total /. float_of_int (Array.length profiles)

let rcbr_loss ?pool c ~n ~capacity_per_stream =
  validate c;
  rcbr_loss_of_profiles ~n (rcbr_profiles ?pool c ~n) capacity_per_stream

let min_capacity_rcbr ?pool c ~n =
  validate c;
  let profiles = rcbr_profiles ?pool c ~n in
  let lo = Trace.mean_rate c.trace in
  let hi = Schedule.peak_rate c.schedule in
  let pred cap = rcbr_loss_of_profiles ~n profiles cap <= c.target_loss in
  if pred lo then lo else Numeric.find_min_such_that ~tol:1e-4 ~pred lo hi

(* Batched per-N searches for the Fig. 6 sweep: the points are
   independent, so they fan out over the pool (nested with the
   per-replication parallelism above, which the pool supports). *)
let min_capacities_shared ?pool c ~ns =
  validate c;
  Pool.map ?pool (fun n -> min_capacity_shared ?pool c ~n) ns

let min_capacities_rcbr ?pool c ~ns =
  validate c;
  Pool.map ?pool (fun n -> min_capacity_rcbr ?pool c ~n) ns

let asymptotic_rcbr_capacity c =
  validate c;
  Schedule.mean_rate c.schedule
